// AIMD single-loss recovery model (paper §4.2, Table 1).
//
// After one congestion signal TCP halves its congestion window and then
// grows it additively by one MSS per RTT. With the window at the
// bandwidth-delay product when the loss hits, returning to the original
// rate takes (W/2) RTTs where W is the window in segments — hours on a
// transatlantic 10 Gb/s path with 1500-byte frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xgbe::analysis {

struct AimdScenario {
  std::string path;
  double bandwidth_bps;
  double rtt_s;
  std::uint32_t mss_bytes;
};

/// Window (in segments) that fills the path: BDP / MSS.
double window_segments(double bandwidth_bps, double rtt_s,
                       std::uint32_t mss_bytes);

/// Time to return to the pre-loss rate after a single loss, seconds.
double recovery_time_s(double bandwidth_bps, double rtt_s,
                       std::uint32_t mss_bytes);

/// Payload bytes NOT transferred relative to the loss-free rate during the
/// recovery (the area of the AIMD "sawtooth" notch).
double deficit_bytes(double bandwidth_bps, double rtt_s,
                     std::uint32_t mss_bytes);

/// The five rows of Table 1.
std::vector<AimdScenario> table1_scenarios();

/// Formats seconds as the paper does ("1 hr 42 min", "17 min", "7 ms").
std::string format_duration(double seconds);

}  // namespace xgbe::analysis

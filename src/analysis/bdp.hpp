// Bandwidth-delay product and buffer-sizing helpers (§3.3 and §4.1).
#pragma once

#include <cstdint>

namespace xgbe::analysis {

/// Bandwidth-delay product in bytes.
constexpr double bdp_bytes(double bandwidth_bps, double rtt_s) {
  return bandwidth_bps * rtt_s / 8.0;
}

/// Socket buffer that advertises ~one BDP after Linux's 1/4 overhead share
/// (tcp_adv_win_scale = 2): buffer = BDP * 4/3.
constexpr std::uint32_t rcvbuf_for_bdp(double bandwidth_bps, double rtt_s) {
  return static_cast<std::uint32_t>(bdp_bytes(bandwidth_bps, rtt_s) * 4.0 /
                                    3.0);
}

/// The paper's LAN arithmetic: at 10 Gb/s and 19 us one-way latency the
/// ideal window is ~48 KB — "well below the default window setting of
/// 64 KB" (§3.3.1).
constexpr double lan_ideal_window_bytes() {
  return bdp_bytes(10e9, 2 * 19e-6);
}

}  // namespace xgbe::analysis

// Interconnect comparison data (paper §3.5.4 and Fig 5 reference lines).
//
// Published numbers for the contemporaries the paper compares against:
// Gigabit Ethernet, Myrinet (GM API and TCP/IP emulation), and Quadrics
// QsNet (Elan3 API and TCP/IP). Used by the interconnect_comparison bench
// to put the simulator's 10GbE results in context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xgbe::analysis {

struct InterconnectEntry {
  std::string name;
  std::string api;
  double bandwidth_gbps;     // sustained unidirectional
  double latency_us;         // small-message one-way
  double theoretical_gbps;   // hardware limit
  bool requires_code_change; // non-sockets API
};

/// Published comparison set from §3.5.4 (Myricom and Quadrics numbers as
/// cited by the paper; GbE from the authors' experience with e1000/Tigon3).
std::vector<InterconnectEntry> published_interconnects();

/// Ratio helpers used in the paper's summary sentences.
double bandwidth_advantage(double ours_gbps, double theirs_gbps);
double latency_advantage(double ours_us, double theirs_us);

}  // namespace xgbe::analysis

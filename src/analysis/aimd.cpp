#include "analysis/aimd.hpp"

#include <cmath>
#include <cstdio>

namespace xgbe::analysis {

double window_segments(double bandwidth_bps, double rtt_s,
                       std::uint32_t mss_bytes) {
  return bandwidth_bps * rtt_s / 8.0 / static_cast<double>(mss_bytes);
}

double recovery_time_s(double bandwidth_bps, double rtt_s,
                       std::uint32_t mss_bytes) {
  // The window drops by W/2 segments and regrows one segment per RTT.
  return window_segments(bandwidth_bps, rtt_s, mss_bytes) / 2.0 * rtt_s;
}

double deficit_bytes(double bandwidth_bps, double rtt_s,
                     std::uint32_t mss_bytes) {
  // Triangle: deficit rate starts at B/2 and closes linearly over T.
  const double t = recovery_time_s(bandwidth_bps, rtt_s, mss_bytes);
  return bandwidth_bps / 2.0 * t / 2.0 / 8.0;
}

std::vector<AimdScenario> table1_scenarios() {
  // RTTs: LAN as measured in §3.3.2 (19 us one-way through the stack);
  // Geneva-Chicago ~120 ms and Geneva-Sunnyvale ~180 ms as in §4.
  return {
      {"LAN", 10e9, 0.04e-3, 1460},
      {"Geneva - Chicago", 10e9, 120e-3, 1460},
      {"Geneva - Chicago", 10e9, 120e-3, 8960},
      {"Geneva - Sunnyvale", 10e9, 180e-3, 1460},
      {"Geneva - Sunnyvale", 10e9, 180e-3, 8960},
  };
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.0f min", seconds / 60.0);
  } else {
    const int hours = static_cast<int>(seconds / 3600.0);
    const int mins =
        static_cast<int>(std::lround((seconds - hours * 3600.0) / 60.0));
    std::snprintf(buf, sizeof(buf), "%d hr %d min", hours, mins);
  }
  return buf;
}

}  // namespace xgbe::analysis

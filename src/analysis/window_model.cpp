#include "analysis/window_model.hpp"

namespace xgbe::analysis {

WindowAlignment align_window(std::uint32_t ideal_window,
                             std::uint32_t receiver_mss,
                             std::uint32_t sender_mss) {
  WindowAlignment w{};
  w.ideal_window = ideal_window;
  w.receiver_window =
      receiver_mss ? (ideal_window / receiver_mss) * receiver_mss
                   : ideal_window;
  w.sender_window = sender_mss
                        ? (w.receiver_window / sender_mss) * sender_mss
                        : w.receiver_window;
  w.receiver_efficiency =
      ideal_window ? static_cast<double>(w.receiver_window) / ideal_window
                   : 0.0;
  w.end_to_end_efficiency =
      ideal_window ? static_cast<double>(w.sender_window) / ideal_window
                   : 0.0;
  return w;
}

std::uint32_t scale_quantize(std::uint32_t window, std::uint8_t shift) {
  return (window >> shift) << shift;
}

double segments_per_window(std::uint32_t ideal_window, std::uint32_t mss) {
  if (mss == 0) return 0.0;
  return static_cast<double>(ideal_window) / static_cast<double>(mss);
}

}  // namespace xgbe::analysis

// MSS-aligned window utilization model (paper §3.5.1, Fig 8).
//
// Both ends of a Linux 2.4 connection keep their windows MSS-aligned: the
// receiver rounds the advertised window down to a multiple of its MSS
// estimate, and the sender's congestion window is counted in whole
// segments. The usable window is therefore floor(W/MSS)*MSS at each stage,
// and the compounding loss can approach 50% when the MSS is large relative
// to the ideal window.
#pragma once

#include <cstdint>

namespace xgbe::analysis {

struct WindowAlignment {
  std::uint32_t ideal_window;      // theoretical / available bytes
  std::uint32_t receiver_window;   // after receiver-side MSS rounding
  std::uint32_t sender_window;     // after sender-side MSS rounding
  double receiver_efficiency;      // receiver_window / ideal_window
  double end_to_end_efficiency;    // sender_window / ideal_window
};

/// Applies both roundings: the receiver rounds with `receiver_mss` (its
/// estimate of the sender's MSS), then the sender rounds the advertised
/// value with its own `sender_mss` (the two can differ — the paper's
/// 8948-vs-8960 example, §3.5.1).
WindowAlignment align_window(std::uint32_t ideal_window,
                             std::uint32_t receiver_mss,
                             std::uint32_t sender_mss);

/// Extra inaccuracy from window scaling: the advertised value is quantized
/// to multiples of 2^shift.
std::uint32_t scale_quantize(std::uint32_t window, std::uint8_t shift);

/// Segments that fit an ideal window (the paper's "5.5 packets per window").
double segments_per_window(std::uint32_t ideal_window, std::uint32_t mss);

}  // namespace xgbe::analysis

#include "analysis/interconnects.hpp"

namespace xgbe::analysis {

std::vector<InterconnectEntry> published_interconnects() {
  return {
      // name, api, sustained Gb/s, latency us, theoretical Gb/s, code change
      {"Gigabit Ethernet", "TCP/IP", 0.95, 32.0, 1.0, false},
      {"Myrinet", "GM", 1.984, 6.5, 2.0, true},
      {"Myrinet", "TCP/IP", 1.853, 30.0, 2.0, false},
      {"QsNet", "Elan3", 2.456, 4.9, 3.2, true},
      {"QsNet", "TCP/IP", 2.240, 30.0, 3.2, false},
  };
}

double bandwidth_advantage(double ours_gbps, double theirs_gbps) {
  if (theirs_gbps <= 0.0) return 0.0;
  return (ours_gbps - theirs_gbps) / theirs_gbps * 100.0;
}

double latency_advantage(double ours_us, double theirs_us) {
  if (ours_us <= 0.0) return 0.0;
  return (theirs_us - ours_us) / ours_us * 100.0;
}

}  // namespace xgbe::analysis

#include "tcp/reassembly.hpp"

namespace xgbe::tcp {

bool Reassembly::is_duplicate(net::Seq seq, std::uint32_t len) const {
  // Entirely below rcv_nxt?
  if (net::seq_le(seq + len, rcv_nxt_)) return true;
  // Entirely covered by one out-of-order range?
  for (const auto& [start, rlen] : ooo_) {
    if (net::seq_le(start, seq) && net::seq_le(seq + len, start + rlen))
      return true;
  }
  return false;
}

std::uint32_t Reassembly::offer(net::Seq seq, std::uint32_t len) {
  if (len == 0) return 0;
  net::Seq end = seq + len;
  // Trim data already received in order.
  if (net::seq_lt(seq, rcv_nxt_)) {
    if (net::seq_le(end, rcv_nxt_)) return 0;  // full duplicate
    seq = rcv_nxt_;
  }

  if (net::seq_gt(seq, rcv_nxt_)) {
    // Out of order: insert [seq, end), coalescing with neighbours.
    net::Seq nstart = seq;
    net::Seq nend = end;
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      const net::Seq s = it->first;
      const net::Seq e = it->first + it->second;
      const bool overlaps =
          net::seq_le(s, nend) && net::seq_le(nstart, e);
      if (overlaps) {
        nstart = net::seq_min(nstart, s);
        nend = net::seq_max(nend, e);
        ooo_bytes_ -= it->second;
        it = ooo_.erase(it);
      } else {
        ++it;
      }
    }
    ooo_[nstart] = net::seq_span(nstart, nend);
    ooo_bytes_ += net::seq_span(nstart, nend);
    return 0;
  }

  // In order: advance rcv_nxt, then drain any now-contiguous ranges.
  std::uint32_t delivered = net::seq_span(rcv_nxt_, end);
  rcv_nxt_ = end;
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (net::seq_gt(it->first, rcv_nxt_)) break;
    const net::Seq e = it->first + it->second;
    if (net::seq_gt(e, rcv_nxt_)) {
      delivered += net::seq_span(rcv_nxt_, e);
      rcv_nxt_ = e;
    }
    ooo_bytes_ -= it->second;
    it = ooo_.erase(it);
  }
  return delivered;
}

std::string Reassembly::invariant_violation() const {
  std::uint64_t total = 0;
  bool have_prev = false;
  net::Seq prev_end = 0;
  for (const auto& [start, len] : ooo_) {
    if (len == 0) return "empty out-of-order range at " + std::to_string(start);
    if (!net::seq_gt(start, rcv_nxt_)) {
      return "out-of-order range " + std::to_string(start) +
             " not beyond rcv_nxt " + std::to_string(rcv_nxt_);
    }
    if (have_prev && !net::seq_lt(prev_end, start)) {
      return "uncoalesced/overlapping ranges at " + std::to_string(start);
    }
    prev_end = start + len;
    have_prev = true;
    total += len;
  }
  if (total != ooo_bytes_) {
    return "ooo_bytes " + std::to_string(ooo_bytes_) +
           " != sum of ranges " + std::to_string(total);
  }
  return {};
}

}  // namespace xgbe::tcp

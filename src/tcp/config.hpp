// Per-endpoint TCP configuration.
#pragma once

#include <cstdint>

#include "net/headers.hpp"

namespace xgbe::tcp {

/// Congestion-control algorithm selector (the strategy implementations live
/// in tcp/cwnd.hpp). kNewReno is the paper's Linux-2.4 behavior and the
/// default everywhere; the others extend the study (arXiv:1905.01194).
enum class CcAlgorithm : std::uint8_t { kNewReno, kCubic, kDctcp };

/// Stable lowercase name ("newreno", "cubic", "dctcp") for bench flags,
/// JSON meta, and diagnostics.
const char* cc_name(CcAlgorithm alg);

/// Parses a cc_name() string; false (and *out untouched) when unknown.
bool cc_from_name(const char* name, CcAlgorithm* out);

struct EndpointConfig {
  std::uint32_t mtu = net::kMtuStandard;
  /// RFC 1323 timestamps (12 option bytes per segment, used for RTT
  /// sampling; paper disables them on the E7505 systems, §3.4).
  bool timestamps = true;
  /// Nagle's algorithm (TCP_NODELAY clears it).
  bool nagle = true;
  /// NTTCP-style write semantics: each application write ends a record
  /// (PSH) and is segmented independently, so sub-MSS writes travel as
  /// their own segments. Iperf-style streaming sets this false and
  /// coalesces the byte stream into full-MSS segments.
  bool push_per_write = true;
  /// Socket buffer sizes; defaults mirror Linux 2.4 (87380 rcvbuf yields
  /// the 64 KB default advertised window).
  std::uint32_t rcvbuf = 87380;
  std::uint32_t sndbuf = 65536;
  /// tcp_adv_win_scale: fraction of rcvbuf reserved for skb overhead.
  int adv_win_scale = 2;
  /// TCP segmentation offload: hand super-segments up to tso_max to the
  /// adapter, which re-segments on the wire.
  bool tso = false;
  std::uint32_t tso_max = 65536;
  /// Initial congestion window in segments (Linux 2.4 default).
  std::uint32_t initial_cwnd = 2;
  /// Receiver MSS-estimate bias in bytes, modelling the estimation quirk
  /// the paper observed ("the sender using a larger MSS value than the
  /// receiver... might well be an implementation bug", §3.5.1). Positive
  /// values make the receiver round its window with an overestimate.
  std::int32_t rcv_mss_bias = 0;
  /// Disable the Linux SWS-avoidance MSS rounding of the advertised window
  /// (ablation knob; real 2.4 kernels always round).
  bool sws_round_window = true;
  /// Application reader behaviour: bytes per recv() call.
  std::uint32_t read_chunk = 65536;
  /// If false the receiving application never reads (window fills).
  bool app_reader = true;
  /// Delayed-ACK: acknowledge every `delack_segments` full segments.
  std::uint32_t delack_segments = 2;
  /// Congestion-control strategy. The default (NewReno) is byte-identical
  /// to the pre-strategy hardcoded implementation.
  CcAlgorithm cc = CcAlgorithm::kNewReno;
  /// ECN: mark outgoing data ECT, echo CE as ECE, react to ECE once per
  /// window (classic RFC 3168 for NewReno/CUBIC, per-window alpha for
  /// DCTCP). Off by default — an ecn=false endpoint never touches the ECN
  /// header bits, so existing runs are unchanged.
  bool ecn = false;

  /// Payload bytes per segment for this endpoint's MTU and options.
  std::uint32_t local_payload_per_segment() const {
    return net::payload_per_segment(mtu, timestamps);
  }
};

}  // namespace xgbe::tcp

// Passive-open listener: bounded SYN queue + accept backlog.
//
// A Listener turns inbound SYNs into per-connection Endpoints through a
// host-supplied factory, bounds how many half-open (SYN_RECEIVED) children
// and established-but-unaccepted connections may exist at once, and refuses
// overflow gracefully — counted, optionally answered with a RST, never hung.
// That is the incast/SYN-flood degradation mode: the listener sheds load
// instead of wedging the host.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class Registry;
class TraceSink;
}

namespace xgbe::tcp {

class Endpoint;

struct ListenerConfig {
  /// Max half-open (SYN_RECEIVED) children at once (Linux tcp_max_syn_backlog
  /// in miniature). 0 refuses every SYN.
  std::uint32_t syn_backlog = 64;
  /// Max established connections waiting in the accept queue (listen()'s
  /// backlog argument). Ignored while an on_accept callback is installed —
  /// immediate dispatch never queues.
  std::uint32_t accept_backlog = 64;
  /// Refused SYNs are answered with a RST (connection refused) when true;
  /// silently dropped when false (the client retries into the same wall
  /// until its handshake gives up).
  bool rst_on_overflow = true;
};

struct ListenerStats {
  std::uint64_t syns_received = 0;
  std::uint64_t accepted = 0;           // children that reached ESTABLISHED
  std::uint64_t refused_syn_queue = 0;  // SYN arrived with the queue full
  std::uint64_t refused_accept_queue = 0;  // accept backlog had no room
  std::uint64_t failed_handshakes = 0;  // children that died half-open
};

class Listener {
 public:
  struct Hooks {
    /// Builds (and registers for demux) the per-connection endpoint for an
    /// accepted SYN. The listener immediately drives it through kListen.
    std::function<Endpoint&(net::NodeId remote, net::FlowId flow)>
        make_endpoint;
    /// Sends a refusal RST answering `pkt` (host TX path).
    std::function<void(const net::Packet& pkt)> send_rst;
  };

  Listener(sim::Simulator& simulator, const ListenerConfig& config,
           Hooks hooks);

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Inbound SYN with no matching connection (host demux miss path).
  void on_syn(const net::Packet& pkt);

  /// Immediate-dispatch accept: invoked as each child establishes. When
  /// unset, children queue (bounded by accept_backlog) for accept().
  std::function<void(Endpoint&)> on_accept;

  /// Pops the oldest queued established connection (null when empty).
  Endpoint* accept();

  std::uint32_t half_open() const { return half_open_; }
  std::size_t accept_queue_depth() const { return ready_.size(); }
  /// High-water marks of the two backlog queues over the listener's life —
  /// how close a burst came to the refusal cliff even if nothing overflowed.
  std::uint32_t peak_half_open() const { return peak_half_open_; }
  std::uint32_t peak_accept_queue() const { return peak_accept_queue_; }
  const ListenerStats& stats() const { return stats_; }
  const ListenerConfig& config() const { return config_; }

  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Registers the listener counters plus a half-open gauge under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  void refuse(const net::Packet& pkt, const char* why);

  sim::Simulator& sim_;
  ListenerConfig config_;
  Hooks hooks_;
  ListenerStats stats_;
  std::uint32_t half_open_ = 0;
  std::uint32_t peak_half_open_ = 0;
  std::uint32_t peak_accept_queue_ = 0;
  std::deque<Endpoint*> ready_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace xgbe::tcp

#include "tcp/cwnd.hpp"

#include <algorithm>

namespace xgbe::tcp {

void CongestionControl::bump(std::uint32_t acked_segments) {
  for (std::uint32_t i = 0; i < acked_segments; ++i) {
    if (cwnd_ >= clamp_) return;
    if (in_slow_start()) {
      ++cwnd_;  // one segment per ACKed segment
    } else {
      // Additive increase: one segment per window's worth of ACKs.
      if (++cwnd_cnt_ >= cwnd_) {
        ++cwnd_;
        cwnd_cnt_ = 0;
      }
    }
  }
}

void CongestionControl::on_ack(std::uint32_t acked_segments) {
  if (in_recovery_) return;  // growth suspended during recovery
  bump(acked_segments);
}

bool CongestionControl::on_fast_retransmit(std::uint32_t flight_segments) {
  if (in_recovery_) return false;
  in_recovery_ = true;
  ssthresh_ = std::max<std::uint32_t>(flight_segments / 2, 2);
  cwnd_ = ssthresh_;
  inflation_ = 3;  // the three duplicate ACKs have left the network
  cwnd_cnt_ = 0;
  return true;
}

void CongestionControl::on_partial_ack() {
  if (inflation_ > 0) --inflation_;
}

void CongestionControl::on_recovery_exit() {
  in_recovery_ = false;
  inflation_ = 0;
  cwnd_ = ssthresh_;
  cwnd_cnt_ = 0;
}

void CongestionControl::on_timeout(std::uint32_t flight_segments) {
  ssthresh_ = std::max<std::uint32_t>(flight_segments / 2, 2);
  cwnd_ = 1;
  cwnd_cnt_ = 0;
  inflation_ = 0;
  in_recovery_ = false;
}

}  // namespace xgbe::tcp

#include "tcp/cwnd.hpp"

#include <algorithm>
#include <string_view>

namespace xgbe::tcp {

const char* cc_name(CcAlgorithm alg) {
  switch (alg) {
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kDctcp:
      return "dctcp";
    case CcAlgorithm::kNewReno:
      break;
  }
  return "newreno";
}

bool cc_from_name(const char* name, CcAlgorithm* out) {
  const std::string_view sv(name == nullptr ? "" : name);
  if (sv == "newreno" || sv == "reno") {
    *out = CcAlgorithm::kNewReno;
    return true;
  }
  if (sv == "cubic") {
    *out = CcAlgorithm::kCubic;
    return true;
  }
  if (sv == "dctcp") {
    *out = CcAlgorithm::kDctcp;
    return true;
  }
  return false;
}

std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgorithm alg, std::uint32_t initial_cwnd) {
  switch (alg) {
    case CcAlgorithm::kCubic:
      return std::make_unique<Cubic>(initial_cwnd);
    case CcAlgorithm::kDctcp:
      return std::make_unique<Dctcp>(initial_cwnd);
    case CcAlgorithm::kNewReno:
      break;
  }
  return std::make_unique<CongestionControl>(initial_cwnd);
}

void CongestionControl::grow(std::uint32_t acked_segments, sim::SimTime) {
  for (std::uint32_t i = 0; i < acked_segments; ++i) {
    if (in_slow_start()) {
      if (cwnd_ < clamp_) ++cwnd_;  // one segment per ACKed segment
    } else {
      // Additive increase: one segment per window's worth of ACKs. The
      // accumulator cycles even at the clamp (Linux tcp_cong_avoid_ai), so
      // growth resumes in phase if the clamp is later raised.
      if (++cwnd_cnt_ >= cwnd_) {
        cwnd_cnt_ = 0;
        if (cwnd_ < clamp_) ++cwnd_;
      }
    }
  }
}

std::uint32_t CongestionControl::ssthresh_after_loss(
    std::uint32_t flight_segments) {
  return std::max<std::uint32_t>(flight_segments / 2, 2);
}

void CongestionControl::on_ack(std::uint32_t acked_segments, sim::SimTime now) {
  if (in_recovery_) return;  // growth suspended during recovery
  grow(acked_segments, now);
}

bool CongestionControl::on_fast_retransmit(std::uint32_t flight_segments) {
  if (in_recovery_) return false;
  in_recovery_ = true;
  ssthresh_ = ssthresh_after_loss(flight_segments);
  on_loss_event();
  cwnd_ = ssthresh_;
  inflation_ = 3;  // the three duplicate ACKs have left the network
  cwnd_cnt_ = 0;
  return true;
}

void CongestionControl::on_partial_ack() {
  if (inflation_ > 0) --inflation_;
}

void CongestionControl::on_recovery_exit() {
  in_recovery_ = false;
  inflation_ = 0;
  cwnd_ = ssthresh_;
  cwnd_cnt_ = 0;
}

void CongestionControl::on_timeout(std::uint32_t flight_segments) {
  ssthresh_ = ssthresh_after_loss(flight_segments);
  on_loss_event();
  cwnd_ = 1;
  cwnd_cnt_ = 0;
  inflation_ = 0;
  in_recovery_ = false;
}

bool CongestionControl::on_ecn_window(std::uint32_t /*acked_segments*/,
                                      std::uint32_t marked_segments,
                                      sim::SimTime /*now*/) {
  // Classic RFC 3168: any CE mark in the window triggers the same
  // multiplicative decrease as a loss, at most once per window; recovery
  // already reduced, so marks during recovery are ignored.
  if (marked_segments == 0 || in_recovery_) return false;
  ssthresh_ = ssthresh_after_loss(cwnd_);
  on_loss_event();
  cwnd_ = ssthresh_;
  cwnd_cnt_ = 0;
  return true;
}

// ---------------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------------

namespace {

// Linux constants: beta = 717/1024 (multiplicative decrease to ~0.7),
// C = 0.4 expressed as delta = 410 * t_ms^3 >> 40 with t in ms, and the
// matching cube factor so K = cbrt(kCubeFactor * dist) comes out in ms.
constexpr std::uint64_t kCubicBeta = 717;
constexpr std::uint64_t kBetaScale = 1024;
constexpr std::uint64_t kCubeRttScale = 410;
constexpr std::uint64_t kCubeFactor = (1ULL << 40) / kCubeRttScale;
// Caps |t - K| so kCubeRttScale * offs^3 stays within 64 bits
// (410 * 32768^3 = 1.4e19 < 2^64). 32768 ms past the plateau the target is
// astronomically larger than any real window anyway.
constexpr std::uint64_t kMaxOffsMs = 32768;

}  // namespace

std::uint64_t Cubic::cube_root(std::uint64_t a) {
  if (a == 0) return 0;
  // Binary-search the integer cube root; 64-bit a means the root fits in
  // 22 bits, so this is at most ~22 iterations — deterministic and cheap.
  std::uint64_t lo = 1;
  std::uint64_t hi = 1ULL << 22;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (mid * mid * mid <= a) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void Cubic::update_cnt(sim::SimTime now) {
  if (epoch_start_ == 0) {
    epoch_start_ = now > 0 ? now : 1;  // keep 0 free as the sentinel
    if (cwnd_ < last_max_cwnd_) {
      // Coming back after a reduction: aim the cubic's plateau at W_max.
      k_ms_ = cube_root(kCubeFactor * (last_max_cwnd_ - cwnd_));
      origin_cwnd_ = last_max_cwnd_;
    } else {
      // Above the old plateau already: start a fresh convex exploration.
      k_ms_ = 0;
      origin_cwnd_ = cwnd_;
    }
  }
  const std::uint64_t t_ms =
      static_cast<std::uint64_t>((now - epoch_start_) / sim::msec(1));
  std::uint64_t offs =
      t_ms < k_ms_ ? k_ms_ - t_ms : t_ms - k_ms_;  // |t - K| in ms
  offs = std::min(offs, kMaxOffsMs);
  const std::uint64_t delta = (kCubeRttScale * offs * offs * offs) >> 40;
  std::uint64_t target;
  if (t_ms < k_ms_) {
    target = delta < origin_cwnd_ ? origin_cwnd_ - delta : 1;
  } else {
    target = origin_cwnd_ + delta;
  }
  if (target > cwnd_) {
    cnt_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(cwnd_ / (target - cwnd_), 1));
  } else {
    cnt_ = 100 * std::max<std::uint32_t>(cwnd_, 1);  // hold the window
  }
}

void Cubic::grow(std::uint32_t acked_segments, sim::SimTime now) {
  for (std::uint32_t i = 0; i < acked_segments; ++i) {
    if (in_slow_start()) {
      if (cwnd_ < clamp_) ++cwnd_;
      continue;
    }
    update_cnt(now);
    if (++cwnd_cnt_ >= cnt_) {
      cwnd_cnt_ = 0;
      if (cwnd_ < clamp_) ++cwnd_;
    }
  }
}

std::uint32_t Cubic::ssthresh_after_loss(std::uint32_t /*flight_segments*/) {
  // Linux bictcp_recalc_ssthresh: reduce from the *window*, with fast
  // convergence — if this loss came below the previous plateau the flow is
  // ceding bandwidth, so remember a midpoint rather than the full W_max.
  const std::uint32_t w = std::max<std::uint32_t>(cwnd_, 2);
  if (w < last_max_cwnd_) {
    last_max_cwnd_ =
        static_cast<std::uint32_t>(w * (kBetaScale + kCubicBeta) / (2 * kBetaScale));
  } else {
    last_max_cwnd_ = w;
  }
  return std::max<std::uint32_t>(
      static_cast<std::uint32_t>(w * kCubicBeta / kBetaScale), 2);
}

// ---------------------------------------------------------------------------
// DCTCP
// ---------------------------------------------------------------------------

bool Dctcp::on_ecn_window(std::uint32_t acked_segments,
                          std::uint32_t marked_segments, sim::SimTime /*now*/) {
  if (acked_segments == 0) return false;
  // alpha <- (1 - g) * alpha + g * F with g = 1/16, F in 1/1024 units.
  const std::uint64_t frac =
      (static_cast<std::uint64_t>(marked_segments) << 10) / acked_segments;
  alpha_ = alpha_ - (alpha_ >> 4) + static_cast<std::uint32_t>(frac >> 4);
  alpha_ = std::min<std::uint32_t>(alpha_, 1024);
  if (marked_segments == 0 || in_recovery_) return false;
  // cwnd <- cwnd * (1 - alpha/2): proportional to congestion extent, the
  // whole point of DCTCP — a lightly marked window barely backs off.
  const std::uint32_t cut =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(cwnd_) * (alpha_ >> 1)) >> 10);
  cwnd_ = std::max<std::uint32_t>(cwnd_ - cut, 2);
  ssthresh_ = cwnd_;
  cwnd_cnt_ = 0;
  return true;
}

}  // namespace xgbe::tcp

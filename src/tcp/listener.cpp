#include "tcp/listener.hpp"

#include <algorithm>
#include <memory>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "tcp/endpoint.hpp"

namespace xgbe::tcp {

Listener::Listener(sim::Simulator& simulator, const ListenerConfig& config,
                   Hooks hooks)
    : sim_(simulator), config_(config), hooks_(std::move(hooks)) {}

void Listener::refuse(const net::Packet& pkt, const char* why) {
  if (trace_) {
    trace_->record_packet(obs::EventType::kListenDrop, sim_.now(), pkt,
                          "listener", why);
  }
  if (config_.rst_on_overflow && hooks_.send_rst) hooks_.send_rst(pkt);
}

void Listener::on_syn(const net::Packet& pkt) {
  ++stats_.syns_received;
  if (half_open_ >= config_.syn_backlog) {
    ++stats_.refused_syn_queue;
    refuse(pkt, "syn-queue-full");
    return;
  }
  // Admission also respects the accept queue: starting a handshake we could
  // not hand over just moves the overflow two RTTs later.
  if (!on_accept && ready_.size() >= config_.accept_backlog) {
    ++stats_.refused_accept_queue;
    refuse(pkt, "accept-queue-full");
    return;
  }
  Endpoint& child = hooks_.make_endpoint(pkt.src, pkt.flow);
  child.listen();
  ++half_open_;
  peak_half_open_ = std::max(peak_half_open_, half_open_);
  // One flag shared by both continuations decides which side of the
  // half-open accounting the child leaves through.
  auto established = std::make_shared<bool>(false);
  child.on_established = [this, &child, established]() {
    *established = true;
    --half_open_;
    ++stats_.accepted;
    if (on_accept) {
      on_accept(child);
    } else if (ready_.size() < config_.accept_backlog) {
      ready_.push_back(&child);
      peak_accept_queue_ = std::max(
          peak_accept_queue_, static_cast<std::uint32_t>(ready_.size()));
    } else {
      // Raced past the admission check (callback removed mid-run): shed it.
      ++stats_.refused_accept_queue;
      child.abort();
    }
  };
  child.on_closed = [this, &child, established]() {
    if (!*established) {
      --half_open_;
      ++stats_.failed_handshakes;
    }
    // Established connections may sit in the accept queue; drop dead ones.
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (*it == &child) {
        ready_.erase(it);
        break;
      }
    }
  };
  // Drive the SYN through the child's own kListen path; retransmitted SYNs
  // reach it directly via the connection table from here on.
  child.on_packet(pkt);
}

Endpoint* Listener::accept() {
  if (ready_.empty()) return nullptr;
  Endpoint* ep = ready_.front();
  ready_.pop_front();
  return ep;
}

void Listener::register_metrics(obs::Registry& reg,
                                const std::string& prefix) const {
  auto field = [&](const char* name,
                   std::uint64_t ListenerStats::* member) {
    reg.counter(prefix + "/" + name,
                [this, member] { return stats_.*member; });
  };
  field("syns_received", &ListenerStats::syns_received);
  field("accepted", &ListenerStats::accepted);
  field("refused_syn_queue", &ListenerStats::refused_syn_queue);
  field("refused_accept_queue", &ListenerStats::refused_accept_queue);
  field("failed_handshakes", &ListenerStats::failed_handshakes);
  reg.gauge(prefix + "/half_open",
            [this] { return static_cast<double>(half_open_); });
  reg.gauge(prefix + "/accept_queue",
            [this] { return static_cast<double>(ready_.size()); });
  reg.gauge(prefix + "/half_open_peak",
            [this] { return static_cast<double>(peak_half_open_); });
  reg.gauge(prefix + "/accept_queue_peak",
            [this] { return static_cast<double>(peak_accept_queue_); });
}

}  // namespace xgbe::tcp

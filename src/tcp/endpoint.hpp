// A TCP connection endpoint bound to a simulated host.
//
// Implements enough of a Linux 2.4 TCP to reproduce the paper: Reno/NewReno
// congestion control with a segment-counted congestion window, delayed
// ACKs, RFC 1323 timestamps and window scaling, SWS-avoidance window
// advertising rounded to the receiver's MSS estimate, truesize-charged
// socket buffers, NTTCP-style per-write segmentation, and optional TSO.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "os/kernel.hpp"
#include "os/sockbuf.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/cwnd.hpp"
#include "tcp/reassembly.hpp"
#include "tcp/rtt.hpp"
#include "tcp/window.hpp"

namespace xgbe::obs {
class Registry;
class SpanProfiler;
class TraceSink;
}

namespace xgbe::tcp {

struct EndpointStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;       // payload, first transmissions
  std::uint64_t bytes_acked = 0;      // payload acknowledged
  std::uint64_t bytes_delivered = 0;  // in-order payload made readable
  std::uint64_t bytes_consumed = 0;   // payload read by the application
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dupacks_received = 0;
  std::uint64_t dupacks_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t window_update_acks = 0;
  std::uint64_t rcv_buffer_drops = 0;
  std::uint64_t window_probes = 0;   // zero-window persist probes sent
  std::uint64_t out_of_window = 0;   // segments rejected beyond the window
  std::uint64_t corrupted_delivered = 0;  // silent corruption reached the app
  // Lifecycle counters. Registered through register_lifecycle_metrics(), not
  // register_metrics(), so classic-path registry snapshots (and the golden
  // metric fingerprints derived from them) stay byte-identical.
  std::uint64_t rsts_sent = 0;
  std::uint64_t rsts_received = 0;
  std::uint64_t aborts = 0;               // local abort(): RST out, torn down
  std::uint64_t handshake_failures = 0;   // SYN/SYN-ACK retries exhausted
  std::uint64_t fin_retransmits = 0;
  std::uint64_t time_wait_absorbed = 0;   // replayed FINs eaten in TIME_WAIT
  // ECN counters. Registered only when the endpoint runs with config.ecn
  // (same golden-preserving contract as the lifecycle counters above).
  std::uint64_t ecn_ce_received = 0;      // CE-marked frames accepted
  std::uint64_t ecn_ece_sent = 0;         // segments sent carrying ECE
  std::uint64_t ecn_cwnd_reductions = 0;  // sender reductions (CWR events)
};

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,    // our FIN sent, not yet acknowledged
  kFinWait2,    // our FIN acknowledged, waiting for the peer's
  kCloseWait,   // peer's FIN received, application not done yet
  kLastAck,     // peer's FIN received and our FIN sent
  kClosing,     // simultaneous close: FINs crossed, ours not yet acked
  kTimeWait     // both FINs exchanged; 2MSL quiet period
};

/// Short stable name ("ESTABLISHED", "FIN_WAIT_1", ...) for diagnostics.
const char* state_name(TcpState state);

/// Why a connection reached kClosed; lets workloads classify outcomes
/// (completed vs refused vs aborted) without watching every transition.
enum class CloseReason : std::uint8_t {
  kNone,              // never closed (or never opened)
  kGraceful,          // FIN handshake (or local close before any SYN flew)
  kHandshakeTimeout,  // SYN / SYN-ACK retries exhausted
  kRefused,           // our SYN was answered with RST
  kReset,             // peer RST tore down an established connection
  kAborted            // local abort(): we sent the RST
};

class Endpoint {
 public:
  using EmitFn = std::function<void(const net::Packet&)>;

  /// Host bindings: the kernel charges path costs, `emit` hands a built
  /// segment to the kernel TX path + adapter.
  struct Hooks {
    os::Kernel* kernel = nullptr;
    EmitFn emit;
    net::NodeId local_node = 0;
    net::NodeId remote_node = 0;
    net::FlowId flow = 0;
  };

  Endpoint(sim::Simulator& simulator, const EndpointConfig& config,
           Hooks hooks);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- Connection management ----------------------------------------------
  void listen();
  void connect();
  /// Graceful close: queues a FIN after any pending data (the application
  /// may keep reading; half-close semantics).
  void close();
  /// Hard close: sends a RST (when a peer exists to hear it), discards all
  /// queued and in-flight data, and enters kClosed immediately.
  void abort();
  TcpState state() const { return state_; }
  /// Why the endpoint reached kClosed (kNone while it has not).
  CloseReason close_reason() const { return close_reason_; }
  /// Simulated time the current state was entered.
  sim::SimTime state_entered_at() const { return state_entered_at_; }
  bool established() const { return state_ == TcpState::kEstablished; }
  bool closed() const { return state_ == TcpState::kClosed; }
  /// Fires on transition to ESTABLISHED.
  std::function<void()> on_established;
  /// Fires when the connection is fully closed (both FINs exchanged).
  std::function<void()> on_closed;
  /// Fires when the peer's FIN arrives while we are still open (transition
  /// into kCloseWait): the read side hit EOF. A close-on-EOF server answers
  /// with close() here.
  std::function<void()> on_peer_fin;
  /// Internal teardown hook, invoked on every transition into kClosed just
  /// before on_closed. The owning host uses it to unlink the endpoint from
  /// its connection table; applications should use on_closed.
  void set_close_hook(std::function<void()> hook) {
    close_hook_ = std::move(hook);
  }

  // --- Application interface ----------------------------------------------
  /// One application write of `bytes` (<= sndbuf). `admitted` fires once
  /// the data has been copied into the socket (blocking-write semantics).
  void app_send(std::uint32_t bytes, std::function<void()> admitted);

  /// Fires whenever every byte written so far has been acknowledged.
  std::function<void()> on_all_acked;

  /// Fires after the receiving application consumes bytes (post-copy).
  std::function<void(std::uint64_t)> on_consumed;

  /// Congestion-window trace hook (time, cwnd in segments).
  std::function<void(sim::SimTime, std::uint32_t)> cwnd_trace;

  /// MAGNET sampling: every Nth data segment carries path timestamps
  /// (0 disables). Negligible simulation cost, like the real tool.
  void set_trace_sampling(std::uint32_t every_n) { trace_every_ = every_n; }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink: segment tx/rx/drop, RTO, fast retransmit, and
  /// window-update events. Null disarms; an unarmed endpoint behaves
  /// bit-identically to one built without tracing.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Arms the span profiler: journeys open when a data segment leaves the
  /// TCP layer and close when the peer application consumes the bytes.
  /// Null disarms; same zero-perturbation contract as set_trace().
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

  /// Registers every EndpointStats counter plus cwnd/flight/srtt gauges
  /// under `prefix` (e.g. "host/tx/tcp/flow1").
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Registers the connection-lifecycle counters (RSTs, aborts, handshake
  /// failures, FIN retransmits, TIME_WAIT absorption) under `prefix`. Kept
  /// out of register_metrics() so snapshots of classic steady-state
  /// workloads remain byte-identical to pre-lifecycle builds.
  void register_lifecycle_metrics(obs::Registry& reg,
                                  const std::string& prefix) const;

  /// Hard congestion-window ceiling in segments (Linux snd_cwnd_clamp).
  void set_cwnd_clamp(std::uint32_t segments) { cc_->set_clamp(segments); }

  /// Pause or resume the application reader mid-connection — models an app
  /// that stops calling read() (the receive window closes) and later comes
  /// back. Resuming drains buffered payload immediately, which sends the
  /// reopening window update.
  void set_app_reader(bool enabled) {
    config_.app_reader = enabled;
    if (enabled) maybe_read();
  }

  // --- Network interface (host demux) --------------------------------------
  /// Packet for this endpoint, after kernel receive costs were charged.
  void on_packet(const net::Packet& pkt);

  // --- Introspection --------------------------------------------------------
  /// Structural self-check for the fault-injection watchdog and the chaos
  /// harness. Verifies sender sequence-space sanity (snd_una <= snd_nxt,
  /// retransmission queue contiguous from snd_una), receive-side delivery
  /// accounting (nothing delivered beyond rcv_nxt, ready == delivered -
  /// consumed), reassembly structure, and FIN/state legality. Returns an
  /// empty string while every invariant holds, else a description of the
  /// first violation. Meant to be called between events (e.g. from
  /// sim::Watchdog ticks), not from inside packet processing.
  std::string invariant_violation() const;

  /// Transient-state liveness check for sim::Watchdog: an endpoint sitting
  /// in a handshake or teardown state longer than that state's timer budget
  /// (retries, backoff, and give-up all included, with slack) has wedged.
  /// Returns an empty string while healthy, else a description. States that
  /// may legally persist (kListen, kEstablished, kFinWait2, kCloseWait)
  /// are never reported.
  std::string stuck_violation(sim::SimTime now) const;

  const EndpointStats& stats() const { return stats_; }
  const EndpointConfig& config() const { return config_; }
  std::uint32_t mss_payload() const { return snd_mss_payload_; }
  std::uint32_t cwnd_segments() const { return cc_->cwnd(); }
  std::uint32_t ssthresh() const { return cc_->ssthresh(); }
  /// Algorithm-specific congestion state (CUBIC K in ms, DCTCP alpha in
  /// 1/1024 fixed point, 0 for Reno-family); feeds the FlowSampler column.
  std::int64_t cc_state() const { return cc_->state_gauge(); }
  /// Active congestion-control strategy (for diagnostics and tests).
  const CongestionControl& congestion() const { return *cc_; }
  std::uint32_t flight_bytes() const {
    return net::seq_span(snd_una_, snd_nxt_);
  }
  std::uint32_t peer_window() const { return rwnd_; }
  std::uint32_t last_advertised_window() const { return last_adv_win_; }
  sim::SimTime srtt() const { return rtt_.srtt(); }
  const RttEstimator& rtt() const { return rtt_; }
  const os::RxSocketBuffer& rx_buffer() const { return rxbuf_; }
  const Reassembly& reassembly() const { return reasm_; }
  std::uint64_t payload_ready() const { return payload_ready_; }
  bool reader_busy() const { return reading_; }
  std::uint32_t unsent_segments() const {
    return static_cast<std::uint32_t>(unsent_.size());
  }
  std::uint32_t unacked_segments() const {
    return static_cast<std::uint32_t>(retx_q_.size());
  }
  net::Seq snd_una() const { return snd_una_; }
  net::Seq snd_nxt() const { return snd_nxt_; }
  std::uint32_t rcv_mss_estimate() const { return rcv_mss_est_; }
  std::uint8_t window_shift() const { return snd_wscale_; }

 private:
  struct TxSegment {
    net::Seq seq = 0;
    std::uint32_t len = 0;
    bool push = false;
    std::uint32_t truesize = 0;
    std::uint32_t packets = 1;  // wire segments (for TSO super-segments)
    sim::SimTime first_sent = 0;
    bool retransmitted = false;
  };

  // Lifecycle.
  void set_state(TcpState next);
  void enter_closed(CloseReason reason);
  void cancel_handshake_timer();
  void schedule_time_wait_expiry();
  void handle_rst(const net::Packet& pkt);
  /// RST carrying our current send position (abort, refused handshake).
  void send_rst(net::Seq seq);
  /// RST answering a stray segment `in` with RFC 793 seq/ack derivation.
  void send_rst_for(const net::Packet& in);

  // TX path.
  bool can_carry_data() const {
    return state_ == TcpState::kEstablished ||
           state_ == TcpState::kCloseWait;
  }
  void admit_pending_writes();
  void maybe_send_fin();
  void handle_fin(const net::Packet& pkt);
  void enter_time_wait();
  void arm_persist_timer();
  void cancel_persist_timer();
  void on_persist_timeout();
  void enqueue_record(std::uint32_t bytes);
  std::uint32_t record_truesize(std::uint32_t bytes) const;
  void try_send();
  void send_segment(TxSegment& seg, bool retransmission);
  void retransmit_head();
  std::uint32_t flight_packets() const;
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void handle_ack(const net::Packet& pkt);
  void notify_if_drained();

  // RX path.
  void handle_data(const net::Packet& pkt);
  void maybe_read();
  /// ECE value for an outgoing ACK-bearing segment: classic mode latches
  /// ECE until the sender's CWR arrives; DCTCP mode mirrors the last CE
  /// state so the sender can reconstruct the exact mark fraction.
  bool echo_ece() const;
  void send_ack(bool window_update);
  void schedule_delayed_ack();
  std::uint32_t compute_window();
  void maybe_window_update();

  // Handshake.
  void send_syn(bool ack);
  void arm_handshake_timer();
  void handshake_established();
  void complete_handshake(const net::Packet& pkt);
  net::Packet make_packet(std::uint32_t payload, net::Seq seq) const;

  sim::Simulator& sim_;
  EndpointConfig config_;
  Hooks hooks_;
  EndpointStats stats_;
  TcpState state_ = TcpState::kClosed;
  sim::SimTime state_entered_at_ = 0;
  CloseReason close_reason_ = CloseReason::kNone;
  std::function<void()> close_hook_;
  // Bumped on every TIME_WAIT (re)arm so a superseded 2MSL expiry event
  // (made stale by a replayed FIN restarting the quiet period) is inert.
  std::uint64_t time_wait_generation_ = 0;
  int fin_retries_ = 0;

  // Negotiated parameters.
  bool ts_on_ = false;
  std::uint32_t snd_mss_payload_ = 536;
  std::uint8_t snd_wscale_ = 0;  // our receive-window shift
  std::uint32_t peer_mss_option_ = 536;

  // Sender state.
  net::Seq iss_ = 1;
  net::Seq snd_una_ = 0;
  net::Seq snd_nxt_ = 0;
  std::uint32_t rwnd_ = 0;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;
  // ECN sender state: one feedback window ends when the ACK clock reaches
  // ecn_epoch_end_; the per-window acked/marked tallies feed the strategy
  // (classic once-per-window reduction, or DCTCP's alpha update).
  net::Seq ecn_epoch_end_ = 0;
  std::uint32_t ecn_acked_segs_ = 0;
  std::uint32_t ecn_marked_segs_ = 0;
  bool cwr_pending_ = false;  // set CWR on the next outgoing data segment
  std::deque<TxSegment> unsent_;
  std::deque<TxSegment> retx_q_;
  os::TxSocketBuffer txbuf_;
  std::uint32_t dupacks_ = 0;
  net::Seq recover_ = 0;
  sim::EventId rto_timer_{};
  bool rto_armed_ = false;
  sim::EventId handshake_timer_{};
  bool handshake_armed_ = false;
  int handshake_attempts_ = 0;
  // Teardown state.
  bool fin_pending_ = false;   // close() called, FIN not yet sent
  bool fin_sent_ = false;
  net::Seq fin_seq_ = 0;       // sequence number our FIN occupies
  bool fin_received_ = false;
  // Zero-window persist timer (window probes).
  sim::EventId persist_timer_{};
  bool persist_armed_ = false;
  int persist_backoff_ = 0;
  struct PendingWrite {
    std::uint32_t bytes;
    std::function<void()> admitted;
    sim::SimTime called_at = 0;
  };
  std::deque<PendingWrite> pending_writes_;
  bool write_in_kernel_ = false;
  std::uint32_t trace_every_ = 0;
  std::uint64_t trace_counter_ = 0;
  obs::TraceSink* trace_ = nullptr;
  // Span-profiler bookkeeping: which application write produced which
  // sequence range (to bound the app-write stage), and how far the local
  // reader has consumed (to close inbound journeys). All updates are
  // gated on spans_ except the cursors, which are cheap and must stay
  // consistent whether or not a profiler is armed mid-run.
  struct WriteSpan {
    net::Seq begin_seq = 0;
    net::Seq end_seq = 0;
    sim::SimTime called_at = 0;
    sim::SimTime done_at = 0;
  };
  obs::SpanProfiler* spans_ = nullptr;
  std::deque<WriteSpan> write_spans_;
  net::Seq write_cursor_ = 0;       // next unwritten byte in send space
  net::Seq rcv_consumed_seq_ = 0;   // first unconsumed byte in rcv space

  // Receiver state.
  Reassembly reasm_;
  os::RxSocketBuffer rxbuf_;
  WindowAdvertiser wadv_;
  std::uint32_t rcv_mss_est_ = 536;
  std::uint32_t last_adv_win_ = 0;
  std::uint64_t payload_ready_ = 0;
  bool reading_ = false;
  std::uint32_t delack_count_ = 0;
  sim::EventId delack_timer_{};
  bool delack_armed_ = false;
  sim::SimTime last_ts_val_ = 0;
  // ECN receiver state.
  bool ece_pending_ = false;     // classic: latched CE, cleared by CWR
  bool dctcp_ce_state_ = false;  // DCTCP: CE state of the last data frame
};

}  // namespace xgbe::tcp

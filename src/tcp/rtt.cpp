#include "tcp/rtt.hpp"

#include <algorithm>

namespace xgbe::tcp {

namespace {

// Floor division (round toward negative infinity), matching the kernel's
// arithmetic-shift gains. Plain signed `/` truncates toward zero, so a
// small negative error (|err| < 8) contributed nothing and srtt could
// never converge downward after a path RTT decrease. Spelled as division
// because right-shifting a negative value is implementation-defined before
// C++20.
sim::SimTime floor_div(sim::SimTime a, sim::SimTime b) {
  const sim::SimTime q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

}  // namespace

void RttEstimator::sample(sim::SimTime rtt) {
  if (rtt < 0) return;
  if (n_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    min_rtt_ = rtt;
  } else {
    const sim::SimTime err = rtt - srtt_;
    srtt_ += floor_div(err, 8);  // alpha = 1/8 (srtt += err >> 3)
    rttvar_ += floor_div((err < 0 ? -err : err) - rttvar_, 4);  // beta = 1/4
    min_rtt_ = std::min(min_rtt_, rtt);
  }
  ++n_;
  backoff_shift_ = 0;
}

sim::SimTime RttEstimator::rto() const {
  sim::SimTime base = n_ == 0 ? kInitialRto : srtt_ + 4 * rttvar_;
  base = std::clamp(base, kMinRto, kMaxRto);
  const int shift = std::min(backoff_shift_, 10);
  const sim::SimTime backed = base << shift;
  return std::min(backed, kMaxRto);
}

void RttEstimator::backoff() { ++backoff_shift_; }

}  // namespace xgbe::tcp

#include "tcp/rtt.hpp"

#include <algorithm>

namespace xgbe::tcp {

void RttEstimator::sample(sim::SimTime rtt) {
  if (rtt < 0) return;
  if (n_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    min_rtt_ = rtt;
  } else {
    const sim::SimTime err = rtt - srtt_;
    srtt_ += err / 8;                                      // alpha = 1/8
    rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;     // beta = 1/4
    min_rtt_ = std::min(min_rtt_, rtt);
  }
  ++n_;
  backoff_shift_ = 0;
}

sim::SimTime RttEstimator::rto() const {
  sim::SimTime base = n_ == 0 ? kInitialRto : srtt_ + 4 * rttvar_;
  base = std::clamp(base, kMinRto, kMaxRto);
  const int shift = std::min(backoff_shift_, 10);
  const sim::SimTime backed = base << shift;
  return std::min(backed, kMaxRto);
}

void RttEstimator::backoff() { ++backoff_shift_; }

}  // namespace xgbe::tcp

// O(1) connection demultiplexing table.
//
// Keys are (remote node, flow); the local node is implicit — every host owns
// its own table — which makes the pair equivalent to the (src, dst, flow)
// triple the demux path matches on. Entries are non-owning: the host keeps
// every Endpoint alive for the whole run (timers may hold callbacks into
// them long after close), and only the *table* entry is unlinked when a
// connection reaches CLOSED. That split is what makes `table size == opens -
// closes` a checkable invariant.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/packet.hpp"

namespace xgbe::tcp {

class Endpoint;

class ConnTable {
 public:
  static std::uint64_t key(net::NodeId remote, net::FlowId flow) {
    return (static_cast<std::uint64_t>(remote) << 32) | flow;
  }

  /// False (and no change) if the (remote, flow) pair is already bound.
  bool insert(net::NodeId remote, net::FlowId flow, Endpoint* ep) {
    return map_.emplace(key(remote, flow), ep).second;
  }

  Endpoint* find(net::NodeId remote, net::FlowId flow) const {
    const auto it = map_.find(key(remote, flow));
    return it == map_.end() ? nullptr : it->second;
  }

  bool erase(net::NodeId remote, net::FlowId flow) {
    return map_.erase(key(remote, flow)) > 0;
  }

  /// Pointer-checked erase: unlinks only if the entry still maps to `ep`,
  /// so a stale close hook can never evict a successor connection that
  /// reused the (remote, flow) pair.
  bool erase(net::NodeId remote, net::FlowId flow, const Endpoint* ep) {
    const auto it = map_.find(key(remote, flow));
    if (it == map_.end() || it->second != ep) return false;
    map_.erase(it);
    return true;
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, Endpoint*> map_;
};

}  // namespace xgbe::tcp

// Receive-side segment reassembly (in-order delivery + out-of-order queue).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/seq.hpp"

namespace xgbe::net {}  // forward-include convenience

namespace xgbe::tcp {

/// Orders sequence numbers with RFC 793 wraparound comparison.
struct SeqLess {
  bool operator()(net::Seq a, net::Seq b) const { return net::seq_lt(a, b); }
};

/// Tracks the receive sequence space: rcv_nxt plus an out-of-order range
/// set. Payload bytes are counted, not stored.
class Reassembly {
 public:
  explicit Reassembly(net::Seq initial_rcv_nxt = 0)
      : rcv_nxt_(initial_rcv_nxt) {}

  net::Seq rcv_nxt() const { return rcv_nxt_; }

  /// Offers a segment [seq, seq+len). Returns the number of bytes newly
  /// made deliverable in order (0 for out-of-order or duplicate data).
  std::uint32_t offer(net::Seq seq, std::uint32_t len);

  /// True if the segment contains only already-received data.
  bool is_duplicate(net::Seq seq, std::uint32_t len) const;

  std::uint32_t ooo_bytes() const { return ooo_bytes_; }
  std::size_t ooo_ranges() const { return ooo_.size(); }

  /// Structural self-check for the fault-injection watchdog: every queued
  /// range must lie strictly beyond rcv_nxt, ranges must be disjoint with
  /// gaps between them (coalescing merged the rest), and the byte tally
  /// must match. Returns an empty string while the invariants hold.
  std::string invariant_violation() const;

 private:
  net::Seq rcv_nxt_;
  // Out-of-order ranges keyed by start seq (non-overlapping, coalesced).
  std::map<net::Seq, std::uint32_t, SeqLess> ooo_;
  std::uint32_t ooo_bytes_ = 0;
};

}  // namespace xgbe::tcp

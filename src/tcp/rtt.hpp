// RTT estimation and retransmission timeout (Jacobson/Karn, RFC 6298 with
// Linux 2.4 clamps).
#pragma once

#include "sim/time.hpp"

namespace xgbe::tcp {

class RttEstimator {
 public:
  /// Linux 2.4 bounds (HZ=100): 200 ms minimum, 120 s maximum RTO.
  static constexpr sim::SimTime kMinRto = sim::msec(200);
  static constexpr sim::SimTime kMaxRto = sim::sec(120);
  static constexpr sim::SimTime kInitialRto = sim::sec(3);

  /// Feeds one RTT measurement (Karn's rule: never from a retransmitted
  /// segment unless timestamps disambiguate).
  void sample(sim::SimTime rtt);

  /// Current retransmission timeout including backoff.
  sim::SimTime rto() const;

  /// Exponential backoff after a timeout; reset on any valid sample.
  void backoff();

  bool has_estimate() const { return n_ > 0; }
  sim::SimTime srtt() const { return srtt_; }
  sim::SimTime rttvar() const { return rttvar_; }
  sim::SimTime min_rtt() const { return min_rtt_; }

 private:
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  sim::SimTime min_rtt_ = 0;
  int backoff_shift_ = 0;
  unsigned n_ = 0;
};

}  // namespace xgbe::tcp

// Receiver window selection — Linux 2.4 tcp_select_window semantics.
//
// This is the heart of the paper's §3.5.1 analysis: the advertised window is
// rounded DOWN to a multiple of the receiver's MSS estimate (silly-window-
// syndrome avoidance, RFC 813), it can never retract below what was already
// advertised, and the free space it derives from is charged in truesize.
// With a 9 KB MSS and a ~48 KB ideal window the rounding alone costs ~17%.
#pragma once

#include <cstdint>

#include "net/seq.hpp"

namespace xgbe::tcp {

class WindowAdvertiser {
 public:
  WindowAdvertiser(bool round_to_mss, std::uint32_t max_window)
      : round_to_mss_(round_to_mss), max_window_(max_window) {}

  /// Computes the window to advertise given the current window-eligible
  /// free space, the MSS estimate, and rcv_nxt. Updates the advertised
  /// right edge.
  std::uint32_t select(std::uint32_t window_space, std::uint32_t mss_estimate,
                       net::Seq rcv_nxt) {
    std::uint32_t win = window_space;
    if (win > max_window_) win = max_window_;
    if (round_to_mss_ && mss_estimate > 0) {
      // advertised = (int)(available / MSS) * MSS  (paper footnote 6)
      win = (win / mss_estimate) * mss_estimate;
    }
    // Never shrink the already-advertised right edge (RFC 793).
    const net::Seq new_edge = rcv_nxt + win;
    if (have_adv_ && net::seq_lt(new_edge, rcv_adv_)) {
      win = net::seq_span(rcv_nxt, rcv_adv_);
    } else {
      rcv_adv_ = new_edge;
      have_adv_ = true;
    }
    return win;
  }

  /// Right edge most recently advertised.
  net::Seq rcv_adv() const { return rcv_adv_; }
  bool has_advertised() const { return have_adv_; }

  std::uint32_t max_window() const { return max_window_; }

 private:
  bool round_to_mss_;
  std::uint32_t max_window_;
  net::Seq rcv_adv_ = 0;
  bool have_adv_ = false;
};

/// Sender-side usable window: Linux keeps the congestion window in whole
/// segments, so the byte window actually usable is the advertised window
/// rounded down to the sender's own MSS (paper Fig 8).
constexpr std::uint32_t sender_usable_window(std::uint32_t advertised,
                                             std::uint32_t sender_mss) {
  if (sender_mss == 0) return advertised;
  return (advertised / sender_mss) * sender_mss;
}

}  // namespace xgbe::tcp

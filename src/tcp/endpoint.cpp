#include "tcp/endpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cassert>

#include "net/headers.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "os/kmalloc.hpp"

namespace xgbe::tcp {
namespace {

/// Delayed-ACK timer (Linux 2.4 minimum delack interval).
constexpr sim::SimTime kDelackTimeout = sim::msec(40);

/// SYN / SYN-ACK transmissions before the handshake gives up (Linux 2.4
/// tcp_syn_retries); with 3 s initial backoff the give-up lands ~93 s in.
constexpr int kMaxHandshakeAttempts = 5;

/// FIN retransmissions before the teardown aborts with a RST. Backoff can
/// start from the 3 s initial RTO when the connection never sampled an RTT.
constexpr int kMaxFinRetries = 6;

/// 2MSL quiet period; shortened from the RFC 793 minutes to keep
/// simulations snappy — nothing in the model depends on its length.
constexpr sim::SimTime kTimeWaitPeriod = sim::sec(1);

/// Watchdog budgets: longest a healthy endpoint can sit in a transient
/// state, derived from the retry counts above with generous slack.
/// Handshake: 3+6+12+24+48 s of backoff ≈ 93 s before give-up.
constexpr sim::SimTime kHandshakeStateBudget = sim::sec(120);
/// Teardown: 6 FIN retries backing off from a worst-case 3 s initial RTO
/// (sum ≈ 189 s, RTO-capped tail ≈ 309 s) before the abort path fires.
/// TIME_WAIT shares it: replayed FINs restart 2MSL only while the peer is
/// still inside this same bounded retry schedule.
constexpr sim::SimTime kTeardownStateBudget = sim::sec(400);

/// Window-scale shift needed so that `space` fits in a 16-bit field.
std::uint8_t wscale_for(std::uint32_t space) {
  std::uint8_t shift = 0;
  while (shift < 14 && (space >> shift) > 65535) ++shift;
  return shift;
}

}  // namespace

const char* state_name(TcpState state) {
  switch (state) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RECEIVED";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

Endpoint::Endpoint(sim::Simulator& simulator, const EndpointConfig& config,
                   Hooks hooks)
    : sim_(simulator),
      config_(config),
      hooks_(std::move(hooks)),
      cc_(make_congestion_control(config.cc, config.initial_cwnd)),
      txbuf_(config.sndbuf),
      rxbuf_(config.rcvbuf),
      wadv_(config.sws_round_window,
            /*max_window=*/0x3fffffffu /* refined after negotiation */) {
  assert(hooks_.kernel != nullptr);
  // Deterministic ISS derived from addressing; no security concerns here.
  iss_ = hooks_.local_node * 100003u + hooks_.flow * 17u + 1u;
}

net::Packet Endpoint::make_packet(std::uint32_t payload,
                                  net::Seq seq) const {
  net::Packet pkt;
  pkt.protocol = net::Protocol::kTcp;
  pkt.flow = hooks_.flow;
  pkt.src = hooks_.local_node;
  pkt.dst = hooks_.remote_node;
  pkt.payload_bytes = payload;
  pkt.frame_bytes = net::tcp_frame_bytes(payload, ts_on_);
  pkt.tcp.seq = seq;
  pkt.tcp.timestamps = ts_on_;
  pkt.tcp.ts_val = sim_.now();
  pkt.tcp.ts_ecr = last_ts_val_;
  pkt.created_at = sim_.now();
  return pkt;
}

// --- Lifecycle --------------------------------------------------------------

void Endpoint::set_state(TcpState next) {
  if (state_ == next) return;
  state_ = next;
  state_entered_at_ = sim_.now();
}

void Endpoint::cancel_handshake_timer() {
  if (handshake_armed_) {
    sim_.cancel(handshake_timer_);
    handshake_armed_ = false;
  }
}

void Endpoint::enter_closed(CloseReason reason) {
  if (state_ == TcpState::kClosed) return;
  set_state(TcpState::kClosed);
  close_reason_ = reason;
  // Every timer dies with the connection; a cancelled event is cheaper and
  // cleaner than a stale callback testing state.
  cancel_handshake_timer();
  cancel_rto();
  cancel_persist_timer();
  if (delack_armed_) {
    sim_.cancel(delack_timer_);
    delack_armed_ = false;
  }
  // Release send-side resources. Pending writes are dropped without their
  // `admitted` callback — a blocking write on a dead connection fails. The
  // in-kernel write continuation checks for kClosed before touching the
  // queue, so clearing here is safe even mid-write.
  unsent_.clear();
  retx_q_.clear();
  pending_writes_.clear();
  txbuf_.release(txbuf_.wmem_alloc());
  if (close_hook_) close_hook_();
  if (on_closed) on_closed();
}

void Endpoint::send_rst(net::Seq seq) {
  net::Packet pkt = make_packet(0, seq);
  pkt.tcp.flags.rst = true;
  pkt.tcp.flags.ack = true;
  pkt.tcp.ack = reasm_.rcv_nxt();
  ++stats_.rsts_sent;
  if (trace_) {
    trace_->record_packet(obs::EventType::kRst, sim_.now(), pkt, "tcp",
                          "abort");
  }
  hooks_.emit(pkt);
}

void Endpoint::send_rst_for(const net::Packet& in) {
  // RFC 793 reset generation for a segment with no connection: echo the
  // peer's ACK as our sequence when it offered one, otherwise start at 0
  // and acknowledge everything the segment occupied.
  net::Packet pkt = make_packet(0, 0);
  pkt.tcp.flags.rst = true;
  if (in.tcp.flags.ack) {
    pkt.tcp.seq = in.tcp.ack;
  } else {
    pkt.tcp.flags.ack = true;
    pkt.tcp.ack = in.tcp.seq + in.payload_bytes +
                  (in.tcp.flags.syn ? 1 : 0) + (in.tcp.flags.fin ? 1 : 0);
  }
  ++stats_.rsts_sent;
  if (trace_) {
    trace_->record_packet(obs::EventType::kRst, sim_.now(), pkt, "tcp",
                          "no-connection");
  }
  hooks_.emit(pkt);
}

void Endpoint::abort() {
  if (state_ == TcpState::kClosed) return;
  // kListen never sent anything; kTimeWait's peer is already gone.
  if (state_ != TcpState::kListen && state_ != TcpState::kTimeWait) {
    send_rst(state_ == TcpState::kSynSent ? iss_ + 1 : snd_nxt_);
  }
  ++stats_.aborts;
  enter_closed(CloseReason::kAborted);
}

void Endpoint::handle_rst(const net::Packet& pkt) {
  ++stats_.rsts_received;
  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kListen:
      // Nothing to tear down; never answer a RST with a RST.
      return;
    case TcpState::kTimeWait:
      // RFC 1337: ignore RSTs in TIME_WAIT (TIME-WAIT assassination).
      return;
    case TcpState::kSynSent:
      // Connection refused — but only a RST that acknowledges our SYN; a
      // stale or forged one must not kill the attempt.
      if (!pkt.tcp.flags.ack || pkt.tcp.ack != iss_ + 1) return;
      enter_closed(CloseReason::kRefused);
      return;
    default:
      enter_closed(CloseReason::kReset);
      return;
  }
}

// --- Handshake --------------------------------------------------------------

void Endpoint::listen() { set_state(TcpState::kListen); }

void Endpoint::connect() {
  set_state(TcpState::kSynSent);
  send_syn(/*ack=*/false);
  arm_handshake_timer();
}

void Endpoint::arm_handshake_timer() {
  // SYN / SYN-ACK retransmission with exponential backoff (RFC 6298 3 s
  // initial RTO); gives up — and tears the endpoint down — once the retry
  // budget is spent, so a black-holed handshake cannot wedge forever.
  if (handshake_armed_) return;
  if (handshake_attempts_ >= kMaxHandshakeAttempts) {
    ++stats_.handshake_failures;
    enter_closed(CloseReason::kHandshakeTimeout);
    return;
  }
  handshake_armed_ = true;
  const sim::SimTime delay = sim::sec(3) << std::min(handshake_attempts_, 4);
  handshake_timer_ = sim_.schedule(delay, [this]() {
    handshake_armed_ = false;
    if (established() || state_ == TcpState::kClosed) return;
    ++handshake_attempts_;
    if (handshake_attempts_ >= kMaxHandshakeAttempts) {
      ++stats_.handshake_failures;
      enter_closed(CloseReason::kHandshakeTimeout);
      return;
    }
    send_syn(/*ack=*/state_ == TcpState::kSynReceived);
    arm_handshake_timer();
  });
}

void Endpoint::close() {
  if (state_ == TcpState::kClosed || fin_pending_ || fin_sent_) return;
  if (state_ == TcpState::kListen || state_ == TcpState::kSynSent) {
    // No established peer to FIN: release everything (including a pending
    // SYN retransmission timer) and notify synchronously.
    enter_closed(CloseReason::kGraceful);
    return;
  }
  fin_pending_ = true;
  maybe_send_fin();
}

void Endpoint::maybe_send_fin() {
  // The FIN goes out only after every queued byte has been sent.
  if (!fin_pending_ || fin_sent_) return;
  if (!unsent_.empty() || !pending_writes_.empty() || write_in_kernel_) return;
  fin_sent_ = true;
  fin_pending_ = false;
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;  // the FIN occupies one sequence number
  net::Packet pkt = make_packet(0, fin_seq_);
  pkt.tcp.flags.fin = true;
  pkt.tcp.flags.ack = true;
  pkt.tcp.ack = reasm_.rcv_nxt();
  pkt.tcp.window = compute_window();
  hooks_.emit(pkt);
  if (!rto_armed_) arm_rto();
  set_state(state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                           : TcpState::kFinWait1);
}

void Endpoint::handle_fin(const net::Packet& pkt) {
  if (fin_received_) {
    // Retransmitted / replayed FIN: after the first FIN was accepted,
    // rcv_nxt sits one past the FIN octet, so the replay's sequence lands
    // just below it. Re-ACK it, and in TIME_WAIT restart the 2MSL quiet
    // period (RFC 793) — the replay proves our final ACK may not have
    // landed yet.
    if (pkt.tcp.seq + pkt.payload_bytes + 1 != reasm_.rcv_nxt()) return;
    if (state_ == TcpState::kTimeWait) {
      ++stats_.time_wait_absorbed;
      schedule_time_wait_expiry();
    }
    send_ack(false);
    return;
  }
  // Accept the FIN only once all data before it has arrived.
  if (pkt.tcp.seq != reasm_.rcv_nxt() + pkt.payload_bytes) return;
  fin_received_ = true;
  reasm_ = Reassembly(pkt.tcp.seq + pkt.payload_bytes + 1);
  send_ack(false);
  switch (state_) {
    case TcpState::kEstablished:
      set_state(TcpState::kCloseWait);
      if (on_peer_fin) on_peer_fin();
      break;
    case TcpState::kFinWait1:
      // Simultaneous close: the FINs crossed. handle_ack already ran for
      // this packet, so still being in kFinWait1 means our FIN is unacked.
      set_state(TcpState::kClosing);
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

void Endpoint::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  schedule_time_wait_expiry();
}

void Endpoint::schedule_time_wait_expiry() {
  // Events are not cancelled on restart; the generation stamp makes every
  // superseded expiry a no-op.
  const std::uint64_t gen = ++time_wait_generation_;
  sim_.schedule(kTimeWaitPeriod, [this, gen]() {
    if (state_ == TcpState::kTimeWait && time_wait_generation_ == gen) {
      enter_closed(CloseReason::kGraceful);
    }
  });
}

// --- Zero-window persist timer ----------------------------------------------

void Endpoint::arm_persist_timer() {
  if (persist_armed_) return;
  persist_armed_ = true;
  sim::SimTime delay = rtt_.rto() << std::min(persist_backoff_, 6);
  if (delay > sim::sec(60)) delay = sim::sec(60);
  persist_timer_ = sim_.schedule(delay, [this]() {
    persist_armed_ = false;
    on_persist_timeout();
  });
}

void Endpoint::cancel_persist_timer() {
  if (persist_armed_) {
    sim_.cancel(persist_timer_);
    persist_armed_ = false;
  }
  persist_backoff_ = 0;
}

void Endpoint::on_persist_timeout() {
  // Still zero-window? Send a one-byte window probe from the head of the
  // unsent queue; the receiver must answer with its current window even if
  // it cannot accept the byte.
  if (unsent_.empty() || !retx_q_.empty()) return;
  const std::uint32_t in_flight = net::seq_span(snd_una_, snd_nxt_);
  if (in_flight + unsent_.front().len <= rwnd_) {
    try_send();  // window opened while the timer was pending
    return;
  }
  TxSegment& head = unsent_.front();
  TxSegment probe;
  probe.len = 1;
  probe.push = false;
  probe.packets = 1;
  probe.truesize = os::skb_truesize(net::tcp_frame_bytes(1, ts_on_));
  txbuf_.charge(probe.truesize);
  head.len -= 1;
  probe.seq = snd_nxt_;
  if (head.len == 0) {
    txbuf_.release(head.truesize);
    probe.push = head.push;
    unsent_.pop_front();
  }
  send_segment(probe, /*retransmission=*/false);
  snd_nxt_ += 1;
  retx_q_.push_back(probe);
  ++stats_.window_probes;
  ++persist_backoff_;
  arm_persist_timer();
}

void Endpoint::handshake_established() { cancel_handshake_timer(); }

void Endpoint::send_syn(bool ack) {
  net::Packet pkt = make_packet(0, iss_);
  pkt.tcp.flags.syn = true;
  pkt.tcp.flags.ack = ack;
  if (ack) pkt.tcp.ack = reasm_.rcv_nxt();
  pkt.tcp.timestamps = config_.timestamps;  // offer, not yet negotiated
  pkt.tcp.mss_option =
      static_cast<std::uint16_t>(net::mss_for_mtu(config_.mtu));
  pkt.tcp.wscale_present = true;
  pkt.tcp.wscale_option =
      wscale_for(rxbuf_.full_window_space(config_.adv_win_scale));
  pkt.tcp.window = std::min<std::uint32_t>(
      rxbuf_.full_window_space(config_.adv_win_scale), 65535);
  hooks_.emit(pkt);
}

void Endpoint::complete_handshake(const net::Packet& pkt) {
  ts_on_ = config_.timestamps && pkt.tcp.timestamps;
  peer_mss_option_ = pkt.tcp.mss_option ? pkt.tcp.mss_option : 536;
  // Payload per segment: bounded by our own MTU and the peer's MSS option,
  // minus per-segment option bytes.
  const std::uint32_t local = net::mss_for_mtu(config_.mtu);
  snd_mss_payload_ = std::min<std::uint32_t>(local, peer_mss_option_) -
                     (ts_on_ ? net::kTcpTimestampOptionBytes : 0);
  snd_wscale_ =
      wscale_for(rxbuf_.full_window_space(config_.adv_win_scale));
  const std::uint32_t clamp =
      pkt.tcp.wscale_present
          ? std::min<std::uint32_t>(0x3fffffffu, 65535u << snd_wscale_)
          : 65535u;
  wadv_ = WindowAdvertiser(config_.sws_round_window, clamp);
  snd_una_ = snd_nxt_ = iss_ + 1;
  ecn_epoch_end_ = snd_nxt_;  // first ECN feedback window starts here
  write_cursor_ = snd_nxt_;
  rcv_consumed_seq_ = pkt.tcp.seq + 1;  // both callers just seeded reasm_
  rwnd_ = pkt.tcp.window;
}

// --- Application writes -----------------------------------------------------

std::uint32_t Endpoint::record_truesize(std::uint32_t bytes) const {
  // truesize the record will occupy once segmented (full segments + tail).
  const std::uint32_t mss = snd_mss_payload_;
  const std::uint32_t full = bytes / mss;
  const std::uint32_t tail = bytes % mss;
  std::uint32_t ts = full * os::skb_truesize(net::tcp_frame_bytes(mss, ts_on_));
  if (tail > 0) ts += os::skb_truesize(net::tcp_frame_bytes(tail, ts_on_));
  return ts;
}

void Endpoint::app_send(std::uint32_t bytes, std::function<void()> admitted) {
  assert(bytes > 0 && bytes <= config_.sndbuf);
  pending_writes_.push_back(
      PendingWrite{bytes, std::move(admitted), sim_.now()});
  admit_pending_writes();
}

void Endpoint::admit_pending_writes() {
  if (write_in_kernel_ || pending_writes_.empty() || !can_carry_data())
    return;
  const PendingWrite& w = pending_writes_.front();
  const std::uint32_t need = record_truesize(w.bytes);
  if (txbuf_.wmem_alloc() + need > txbuf_.sndbuf() &&
      txbuf_.wmem_alloc() > 0) {
    return;  // wait for ACKs to free space (blocking write)
  }
  write_in_kernel_ = true;
  const std::uint32_t bytes = w.bytes;
  const int nsegs =
      static_cast<int>((bytes + snd_mss_payload_ - 1) / snd_mss_payload_);
  const std::uint32_t block = os::rx_data_block(net::tcp_frame_bytes(
      std::min(bytes, snd_mss_payload_), ts_on_));
  hooks_.kernel->app_write(bytes, nsegs, block, [this, bytes]() {
    write_in_kernel_ = false;
    // The connection may have been reset/aborted while the write sat in
    // the kernel; its queues (and this write) are already gone.
    if (state_ == TcpState::kClosed || pending_writes_.empty()) return;
    PendingWrite w = std::move(pending_writes_.front());
    pending_writes_.pop_front();
    if (spans_ != nullptr) {
      write_spans_.push_back(WriteSpan{write_cursor_, write_cursor_ + bytes,
                                       w.called_at, sim_.now()});
    }
    write_cursor_ += bytes;
    enqueue_record(bytes);
    try_send();
    if (w.admitted) w.admitted();
    admit_pending_writes();
  });
}

void Endpoint::enqueue_record(std::uint32_t bytes) {
  const std::uint32_t mss = snd_mss_payload_;
  if (config_.tso && bytes > mss) {
    // Build super-segments up to tso_max; the adapter re-segments.
    std::uint32_t remaining = bytes;
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(remaining, config_.tso_max);
      TxSegment seg;
      seg.len = chunk;
      seg.push = (remaining == chunk) && config_.push_per_write;
      seg.packets = (chunk + mss - 1) / mss;
      seg.truesize =
          os::skb_truesize(net::tcp_frame_bytes(chunk > mss ? mss : chunk,
                                                ts_on_)) *
          seg.packets;
      txbuf_.charge(seg.truesize);
      unsent_.push_back(seg);
      remaining -= chunk;
    }
    return;
  }
  std::uint32_t remaining = bytes;
  // Stream semantics (no per-write record boundary): top up a sub-MSS tail
  // segment left by the previous write, so Nagle never head-of-line blocks
  // the queue on an artificial record edge.
  if (!config_.push_per_write && !unsent_.empty() &&
      unsent_.back().len < mss) {
    TxSegment& tail = unsent_.back();
    const std::uint32_t delta = std::min(mss - tail.len, remaining);
    const std::uint32_t new_truesize =
        os::skb_truesize(net::tcp_frame_bytes(tail.len + delta, ts_on_));
    txbuf_.release(tail.truesize);
    txbuf_.charge(new_truesize);
    tail.len += delta;
    tail.truesize = new_truesize;
    remaining -= delta;
  }
  while (remaining > 0) {
    const std::uint32_t chunk = std::min(remaining, mss);
    TxSegment seg;
    seg.len = chunk;
    seg.push = (remaining == chunk) && config_.push_per_write;
    seg.truesize = os::skb_truesize(net::tcp_frame_bytes(chunk, ts_on_));
    txbuf_.charge(seg.truesize);
    unsent_.push_back(seg);
    remaining -= chunk;
  }
}

// --- Sender -----------------------------------------------------------------

std::uint32_t Endpoint::flight_packets() const {
  std::uint32_t n = 0;
  for (const auto& seg : retx_q_) n += seg.packets;
  return n;
}

void Endpoint::try_send() {
  if (!can_carry_data()) return;
  while (!unsent_.empty()) {
    TxSegment& seg = unsent_.front();
    const std::uint32_t fp = flight_packets();
    const std::uint32_t budget =
        cc_->usable_cwnd() > fp ? cc_->usable_cwnd() - fp : 0;
    if (budget == 0) break;
    if (seg.packets > budget) {
      // A TSO super-segment larger than the congestion window: send what
      // the window allows now (Linux tso_fragment) and keep the rest.
      if (seg.packets == 1) break;
      const std::uint32_t take = budget * snd_mss_payload_;
      if (take == 0 || take >= seg.len) break;
      TxSegment head;
      head.len = take;
      head.push = false;
      head.packets = budget;
      head.truesize = record_truesize(take);
      txbuf_.release(seg.truesize);
      seg.len -= take;
      seg.packets = (seg.len + snd_mss_payload_ - 1) / snd_mss_payload_;
      seg.truesize = record_truesize(seg.len);
      txbuf_.charge(head.truesize + seg.truesize);
      unsent_.push_front(head);
      continue;
    }
    const std::uint32_t in_flight = net::seq_span(snd_una_, snd_nxt_);
    if (in_flight + seg.len > rwnd_) {
      // Zero-window deadlock guard: with nothing in flight there will be
      // no ACK to reopen the window — start probing (persist timer).
      if (retx_q_.empty() && in_flight == 0) arm_persist_timer();
      break;
    }
    // Nagle: hold a sub-MSS segment while data is outstanding, unless the
    // application uses write-per-record semantics (NTTCP behaviour).
    if (config_.nagle && !config_.push_per_write &&
        seg.len < snd_mss_payload_ && !retx_q_.empty()) {
      break;
    }
    seg.seq = snd_nxt_;
    cancel_persist_timer();
    send_segment(seg, /*retransmission=*/false);
    snd_nxt_ += seg.len;
    retx_q_.push_back(seg);
    unsent_.pop_front();
  }
  maybe_send_fin();
}

void Endpoint::send_segment(TxSegment& seg, bool retransmission) {
  net::Packet pkt = make_packet(seg.len, seg.seq);
  pkt.tcp.flags.ack = true;
  pkt.tcp.ack = reasm_.rcv_nxt();
  pkt.tcp.window = compute_window();
  pkt.tcp.push = seg.push;
  pkt.tcp.is_retransmit = retransmission;
  if (config_.ecn) {
    if (seg.len > 0) pkt.ect = true;  // data travels ECN-capable
    if (cwr_pending_) {
      pkt.tcp.flags.cwr = true;
      cwr_pending_ = false;
    }
    if (echo_ece()) {
      pkt.tcp.flags.ece = true;
      ++stats_.ecn_ece_sent;
    }
  }
  if (seg.packets > 1) pkt.tcp.tso_mss = snd_mss_payload_;
  if (trace_every_ != 0 && (++trace_counter_ % trace_every_) == 0) {
    pkt.trace.enabled = true;
  }
  if (!retransmission) {
    seg.first_sent = sim_.now();
    stats_.bytes_sent += seg.len;
  } else {
    seg.retransmitted = true;
    ++stats_.retransmits;
  }
  stats_.segments_sent += seg.packets;
  if (trace_) {
    trace_->record_packet(obs::EventType::kSegTx, sim_.now(), pkt, "tcp",
                          retransmission ? "retransmission" : "");
  }
  if (spans_ != nullptr && seg.len > 0) {
    if (retransmission) {
      // A retransmitted segment no longer measures the clean path; drop its
      // journey (counted as aborted) rather than pollute the breakdown.
      spans_->abort(pkt);
    } else {
      // Locate the application write whose bytes this segment carries; its
      // call/admit times bound the app-write stage. Writes fully behind
      // this segment's sequence are done opening journeys.
      while (!write_spans_.empty() &&
             net::seq_le(write_spans_.front().end_seq, seg.seq)) {
        write_spans_.pop_front();
      }
      if (!write_spans_.empty() &&
          net::seq_le(write_spans_.front().begin_seq, seg.seq)) {
        const WriteSpan& ws = write_spans_.front();
        spans_->begin(pkt, ws.called_at, ws.done_at, sim_.now());
      }
    }
  }
  hooks_.emit(pkt);
  if (!rto_armed_) arm_rto();
  if (cwnd_trace) cwnd_trace(sim_.now(), cc_->cwnd());
}

void Endpoint::retransmit_head() {
  if (retx_q_.empty()) return;
  send_segment(retx_q_.front(), /*retransmission=*/true);
}

void Endpoint::arm_rto() {
  rto_armed_ = true;
  rto_timer_ = sim_.schedule(rtt_.rto(), [this]() {
    rto_armed_ = false;
    on_rto();
  });
}

void Endpoint::cancel_rto() {
  if (rto_armed_) {
    sim_.cancel(rto_timer_);
    rto_armed_ = false;
  }
}

void Endpoint::on_rto() {
  if (retx_q_.empty()) {
    if (fin_sent_ && net::seq_le(snd_una_, fin_seq_) &&
        state_ != TcpState::kClosed) {
      // Retransmit the FIN — boundedly. A peer that will never ACK (dead,
      // or its address black-holed) must not pin this endpoint in
      // FIN_WAIT_1 / LAST_ACK / CLOSING forever.
      if (++fin_retries_ > kMaxFinRetries) {
        abort();
        return;
      }
      ++stats_.fin_retransmits;
      net::Packet pkt = make_packet(0, fin_seq_);
      pkt.tcp.flags.fin = true;
      pkt.tcp.flags.ack = true;
      pkt.tcp.ack = reasm_.rcv_nxt();
      pkt.tcp.window = compute_window();
      pkt.tcp.is_retransmit = true;
      hooks_.emit(pkt);
      rtt_.backoff();
      arm_rto();
    }
    return;
  }
  ++stats_.timeouts;
  if (trace_) {
    obs::TraceEvent ev;
    ev.at = sim_.now();
    ev.type = obs::EventType::kRto;
    ev.src = hooks_.local_node;
    ev.dst = hooks_.remote_node;
    ev.flow = hooks_.flow;
    ev.seq = snd_una_;
    ev.len = flight_bytes();
    ev.where = "tcp";
    trace_->record(ev);
  }
  cc_->on_timeout(flight_packets());
  rtt_.backoff();
  dupacks_ = 0;
  retransmit_head();
  if (!rto_armed_) arm_rto();
}

void Endpoint::notify_if_drained() {
  if (retx_q_.empty() && unsent_.empty() && pending_writes_.empty() &&
      on_all_acked) {
    on_all_acked();
  }
}

void Endpoint::handle_ack(const net::Packet& pkt) {
  const std::uint32_t old_rwnd = rwnd_;
  rwnd_ = pkt.tcp.window;
  const net::Seq ack = pkt.tcp.ack;

  if (net::seq_gt(ack, snd_una_)) {
    // New data acknowledged.
    std::uint32_t acked_segments = 0;
    std::uint32_t freed_truesize = 0;
    bool rtt_sampled = false;
    while (!retx_q_.empty() &&
           net::seq_le(retx_q_.front().seq + retx_q_.front().len, ack)) {
      const TxSegment& seg = retx_q_.front();
      acked_segments += seg.packets;
      freed_truesize += seg.truesize;
      stats_.bytes_acked += seg.len;
      if (!seg.retransmitted && !rtt_sampled && !ts_on_) {
        rtt_.sample(sim_.now() - seg.first_sent);
        rtt_sampled = true;
      }
      retx_q_.pop_front();
    }
    // Byte-granular ACK landing inside a (TSO super-)segment: trim the
    // covered prefix so congestion accounting sees the acked packets.
    if (!retx_q_.empty() && net::seq_gt(ack, retx_q_.front().seq)) {
      TxSegment& f = retx_q_.front();
      const std::uint32_t covered = net::seq_span(f.seq, ack);
      const std::uint32_t old_packets = f.packets;
      const std::uint32_t old_truesize = f.truesize;
      f.seq = ack;
      f.len -= covered;
      f.packets = (f.len + snd_mss_payload_ - 1) / snd_mss_payload_;
      f.truesize = record_truesize(f.len);
      acked_segments += old_packets - f.packets;
      freed_truesize += old_truesize > f.truesize
                            ? old_truesize - f.truesize
                            : 0;
      stats_.bytes_acked += covered;
    }
    if (ts_on_ && pkt.tcp.ts_ecr > 0) {
      rtt_.sample(sim_.now() - pkt.tcp.ts_ecr);
    }
    snd_una_ = ack;
    txbuf_.release(freed_truesize);

    if (cc_->in_recovery()) {
      if (net::seq_ge(ack, recover_)) {
        cc_->on_recovery_exit();
        dupacks_ = 0;
      } else {
        // NewReno partial ACK: retransmit the next hole immediately.
        cc_->on_partial_ack();
        retransmit_head();
      }
    } else {
      cc_->on_ack(acked_segments, sim_.now());
      dupacks_ = 0;
    }

    if (config_.ecn) {
      // Accumulate this window's mark fraction; an ECE-flagged ACK marks
      // the segments it newly acknowledges. When the ACK clock crosses the
      // epoch boundary, hand the tallies to the strategy (classic: at most
      // one multiplicative decrease per window; DCTCP: alpha update plus a
      // proportional cut) and open the next window at snd_nxt.
      ecn_acked_segs_ += acked_segments;
      if (pkt.tcp.flags.ece) ecn_marked_segs_ += acked_segments;
      if (net::seq_ge(ack, ecn_epoch_end_)) {
        if (cc_->on_ecn_window(ecn_acked_segs_, ecn_marked_segs_,
                               sim_.now())) {
          cwr_pending_ = true;
          ++stats_.ecn_cwnd_reductions;
        }
        ecn_acked_segs_ = 0;
        ecn_marked_segs_ = 0;
        ecn_epoch_end_ = snd_nxt_;
      }
    }

    cancel_rto();
    if (!retx_q_.empty() || (fin_sent_ && net::seq_le(ack, fin_seq_))) {
      arm_rto();
    }
    if (fin_sent_ && net::seq_gt(ack, fin_seq_)) {
      // Our FIN is acknowledged.
      if (state_ == TcpState::kFinWait1) {
        set_state(TcpState::kFinWait2);
      } else if (state_ == TcpState::kClosing) {
        // Simultaneous close completes: both FINs flew and are acked.
        enter_time_wait();
        notify_if_drained();
        return;
      } else if (state_ == TcpState::kLastAck) {
        enter_closed(CloseReason::kGraceful);
        notify_if_drained();
        return;
      }
    }
    admit_pending_writes();
    try_send();
    notify_if_drained();
    return;
  }

  // RFC 5681 duplicate ACK: no payload, no SYN/FIN, no window change, and
  // outstanding data. Window updates must not trigger fast retransmit.
  if (ack == snd_una_ && !retx_q_.empty() && pkt.payload_bytes == 0 &&
      pkt.tcp.window == old_rwnd) {
    ++stats_.dupacks_received;
    ++dupacks_;
    if (cc_->in_recovery()) {
      cc_->on_dupack_in_recovery();
      try_send();
    } else if (dupacks_ == 3) {
      ++stats_.fast_retransmits;
      if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kFastRetransmit;
        ev.src = hooks_.local_node;
        ev.dst = hooks_.remote_node;
        ev.flow = hooks_.flow;
        ev.seq = snd_una_;
        ev.len = flight_bytes();
        ev.where = "tcp";
        trace_->record(ev);
      }
      recover_ = snd_nxt_;
      cc_->on_fast_retransmit(flight_packets());
      retransmit_head();
      cancel_rto();
      arm_rto();
    }
    return;
  }
  // Window update or stale ACK: the rwnd_ update above may unblock sends.
  if (rwnd_ > old_rwnd) cancel_persist_timer();
  try_send();
}

// --- Receiver ---------------------------------------------------------------

std::uint32_t Endpoint::compute_window() {
  const std::uint32_t space = rxbuf_.window_space(config_.adv_win_scale);
  std::uint32_t est = rcv_mss_est_;
  if (config_.rcv_mss_bias != 0) {
    const std::int64_t biased =
        static_cast<std::int64_t>(est) + config_.rcv_mss_bias;
    est = biased < 1 ? 1u : static_cast<std::uint32_t>(biased);
  }
  std::uint32_t win = wadv_.select(space, est, reasm_.rcv_nxt());
  // Window-scale granularity: values are transmitted as win >> shift.
  win = (win >> snd_wscale_) << snd_wscale_;
  last_adv_win_ = win;
  return win;
}

void Endpoint::handle_data(const net::Packet& pkt) {
#ifdef XGBE_TRACE_ACKS
  std::fprintf(stderr, "[%lld] node%u data seq=%u len=%u\n",
               (long long)sim_.now(), hooks_.local_node, pkt.tcp.seq,
               pkt.payload_bytes);
#endif
  ++stats_.segments_received;
  if (ts_on_ && pkt.tcp.timestamps) last_ts_val_ = pkt.tcp.ts_val;

  // Reject data beyond the advertised right edge (zero-window probes land
  // here); answer with the current window so the prober unsticks.
  if (wadv_.has_advertised() &&
      net::seq_ge(pkt.tcp.seq, wadv_.rcv_adv())) {
    ++stats_.out_of_window;
    if (trace_) {
      trace_->record_packet(obs::EventType::kSegDrop, sim_.now(), pkt, "tcp",
                            "out-of-window");
    }
    if (spans_) spans_->abort(pkt);
    send_ack(false);
    return;
  }
  if (reasm_.is_duplicate(pkt.tcp.seq, pkt.payload_bytes)) {
    ++stats_.dupacks_sent;
    send_ack(false);
    return;
  }
  if (!rxbuf_.charge_frame(pkt.frame_bytes, pkt.payload_bytes)) {
    ++stats_.rcv_buffer_drops;
    if (trace_) {
      trace_->record_packet(obs::EventType::kSegDrop, sim_.now(), pkt, "tcp",
                            "sockbuf-full");
    }
    if (spans_) spans_->abort(pkt);
    send_ack(false);  // re-advertise the (closed) window
    return;
  }
  if (pkt.corrupted) ++stats_.corrupted_delivered;
  if (config_.ecn) {
    if (pkt.ce) ++stats_.ecn_ce_received;
    if (config_.cc == CcAlgorithm::kDctcp) {
      // DCTCP receiver state machine: on a CE-state flip, immediately ACK
      // everything before this segment under the OLD state so the sender's
      // per-window mark tally stays exact, then latch the new state.
      if (pkt.ce != dctcp_ce_state_) {
        if (delack_count_ > 0) send_ack(false);
        dctcp_ce_state_ = pkt.ce;
      }
    } else {
      // Classic RFC 3168: latch ECE on CE and hold it until CWR arrives.
      if (pkt.tcp.flags.cwr) ece_pending_ = false;
      if (pkt.ce) ece_pending_ = true;
    }
  }
  if (trace_) {
    trace_->record_packet(obs::EventType::kSegRx, sim_.now(), pkt, "tcp");
  }
  // TCP accepted the segment: the rx-stack stage ends here and the journey
  // waits in app-read (reassembly + reader wakeup + copy) until consumed.
  if (spans_) spans_->mark(pkt, obs::Stage::kAppRead, sim_.now());
  // Linux tcp_measure_rcv_mss: track the largest segment recently seen.
  rcv_mss_est_ = std::max(rcv_mss_est_, pkt.payload_bytes);

  const std::uint32_t delivered = reasm_.offer(pkt.tcp.seq, pkt.payload_bytes);
  if (delivered > 0) {
    stats_.bytes_delivered += delivered;
    payload_ready_ += delivered;
    maybe_read();
    ++delack_count_;
    if (delack_count_ >= config_.delack_segments) {
      send_ack(false);
    } else {
      schedule_delayed_ack();
    }
  } else {
    // Out of order: immediate duplicate ACK (fast-retransmit trigger).
    ++stats_.dupacks_sent;
    send_ack(false);
  }
}

void Endpoint::schedule_delayed_ack() {
  if (delack_armed_) return;
  delack_armed_ = true;
  delack_timer_ = sim_.schedule(kDelackTimeout, [this]() {
    delack_armed_ = false;
    if (delack_count_ > 0) send_ack(false);
  });
}

bool Endpoint::echo_ece() const {
  if (!config_.ecn) return false;
  if (config_.cc == CcAlgorithm::kDctcp) return dctcp_ce_state_;
  return ece_pending_;
}

void Endpoint::send_ack(bool window_update) {
#ifdef XGBE_TRACE_ACKS
  std::fprintf(stderr, "[%lld] node%u send_ack wu=%d ack=%u win=%u count=%u\n",
               (long long)sim_.now(), hooks_.local_node, (int)window_update,
               reasm_.rcv_nxt(), last_adv_win_, delack_count_);
#endif
  delack_count_ = 0;
  if (delack_armed_) {
    sim_.cancel(delack_timer_);
    delack_armed_ = false;
  }
  net::Packet pkt = make_packet(0, snd_nxt_);
  pkt.tcp.flags.ack = true;
  pkt.tcp.ack = reasm_.rcv_nxt();
  pkt.tcp.window = compute_window();
  if (echo_ece()) {
    pkt.tcp.flags.ece = true;
    ++stats_.ecn_ece_sent;
  }
  ++stats_.acks_sent;
  if (window_update) {
    ++stats_.window_update_acks;
    if (trace_) {
      trace_->record_packet(obs::EventType::kWindowUpdate, sim_.now(), pkt,
                            "tcp");
    }
  }
  hooks_.emit(pkt);
}

void Endpoint::maybe_read() {
  if (!config_.app_reader || reading_ || payload_ready_ == 0) return;
  const auto chunk = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(payload_ready_, config_.read_chunk));
  reading_ = true;
  hooks_.kernel->app_read(chunk, [this, chunk]() {
    reading_ = false;
    payload_ready_ -= chunk;
    rxbuf_.release_payload(chunk);
    stats_.bytes_consumed += chunk;
    rcv_consumed_seq_ += chunk;
    // Close journeys before on_consumed: a ping-pong app replies inside
    // that callback at this same instant, and the reply's journey must not
    // observe an unfinished inbound one.
    if (spans_ != nullptr) {
      spans_->finish_consumed(hooks_.flow, hooks_.remote_node,
                              rcv_consumed_seq_, sim_.now());
    }
    if (on_consumed) on_consumed(chunk);
    maybe_window_update();
    maybe_read();
  });
}

void Endpoint::maybe_window_update() {
  // Advertise freed space if it moves the edge by >= 2 * MSS-estimate or
  // reopens a closed window (Linux tcp_data_snd_check heuristics).
  const std::uint32_t space = rxbuf_.window_space(config_.adv_win_scale);
  std::uint32_t candidate = std::min(space, wadv_.max_window());
  if (config_.sws_round_window && rcv_mss_est_ > 0) {
    candidate = (candidate / rcv_mss_est_) * rcv_mss_est_;
  }
  const bool reopened = last_adv_win_ == 0 && candidate > 0;
  if (reopened || candidate >= last_adv_win_ + 2 * rcv_mss_est_) {
    send_ack(true);
  }
}

// --- Invariants -------------------------------------------------------------

std::string Endpoint::invariant_violation() const {
  // Pre-sequence-space states have nothing to check yet.
  if (state_ == TcpState::kClosed || state_ == TcpState::kListen ||
      state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    return {};
  }
  if (net::seq_gt(snd_una_, snd_nxt_)) {
    return "snd_una " + std::to_string(snd_una_) + " ahead of snd_nxt " +
           std::to_string(snd_nxt_);
  }
  const bool fin_outstanding =
      fin_sent_ && net::seq_le(snd_una_, fin_seq_);
  if (!retx_q_.empty()) {
    if (retx_q_.front().seq != snd_una_) {
      return "retransmission queue head " +
             std::to_string(retx_q_.front().seq) + " != snd_una " +
             std::to_string(snd_una_);
    }
    net::Seq expect = snd_una_;
    for (const TxSegment& seg : retx_q_) {
      if (seg.seq != expect) {
        return "retransmission queue gap at " + std::to_string(seg.seq) +
               " (expected " + std::to_string(expect) + ")";
      }
      expect = seg.seq + seg.len;
    }
    const net::Seq data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
    if (expect != data_end) {
      return "retransmission queue ends at " + std::to_string(expect) +
             ", not at " + std::to_string(data_end);
    }
  } else {
    const std::uint32_t span = net::seq_span(snd_una_, snd_nxt_);
    if (span != 0 && !(fin_outstanding && span == 1)) {
      return "unacked span of " + std::to_string(span) +
             " bytes with an empty retransmission queue";
    }
  }
  // Exactly-once delivery accounting.
  if (stats_.bytes_acked > stats_.bytes_sent) {
    return "acked " + std::to_string(stats_.bytes_acked) +
           " bytes > sent " + std::to_string(stats_.bytes_sent);
  }
  if (stats_.bytes_consumed > stats_.bytes_delivered) {
    return "consumed " + std::to_string(stats_.bytes_consumed) +
           " bytes > delivered " + std::to_string(stats_.bytes_delivered);
  }
  if (payload_ready_ != stats_.bytes_delivered - stats_.bytes_consumed) {
    return "payload_ready " + std::to_string(payload_ready_) +
           " != delivered - consumed";
  }
  std::string reasm = reasm_.invariant_violation();
  if (!reasm.empty()) return "reassembly: " + reasm;
  // FIN / state-machine legality.
  if (fin_sent_ && (state_ == TcpState::kEstablished ||
                    state_ == TcpState::kCloseWait)) {
    return "FIN sent but state still carries data";
  }
  if (state_ == TcpState::kFinWait2 && fin_outstanding) {
    return "FIN_WAIT_2 entered with our FIN unacknowledged";
  }
  if (fin_received_ &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
       state_ == TcpState::kFinWait2)) {
    return "peer FIN processed but state never advanced";
  }
  return {};
}

std::string Endpoint::stuck_violation(sim::SimTime now) const {
  sim::SimTime budget = 0;
  switch (state_) {
    case TcpState::kSynSent:
    case TcpState::kSynReceived:
      budget = kHandshakeStateBudget;
      break;
    case TcpState::kFinWait1:
    case TcpState::kLastAck:
    case TcpState::kClosing:
    case TcpState::kTimeWait:
      budget = kTeardownStateBudget;
      break;
    default:
      // kClosed/kListen/kEstablished/kFinWait2/kCloseWait may legally
      // persist: no local timer is obliged to move them.
      return {};
  }
  const sim::SimTime in_state = now - state_entered_at_;
  if (in_state <= budget) return {};
  return std::string("endpoint stuck in ") + state_name(state_) + " for " +
         std::to_string(sim::to_seconds(in_state)) + " s (budget " +
         std::to_string(sim::to_seconds(budget)) + " s)";
}

// --- Demux ------------------------------------------------------------------

void Endpoint::on_packet(const net::Packet& pkt) {
  // RSTs short-circuit every state's normal processing.
  if (pkt.tcp.flags.rst) {
    handle_rst(pkt);
    return;
  }
  switch (state_) {
    case TcpState::kListen:
      if (pkt.tcp.flags.syn && !pkt.tcp.flags.ack) {
        reasm_ = Reassembly(pkt.tcp.seq + 1);
        // Record negotiated parameters now; established on the final ACK.
        complete_handshake(pkt);
        set_state(TcpState::kSynReceived);
        send_syn(/*ack=*/true);
        arm_handshake_timer();
      }
      return;
    case TcpState::kSynSent:
      if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) {
        reasm_ = Reassembly(pkt.tcp.seq + 1);
        complete_handshake(pkt);
        last_ts_val_ = pkt.tcp.ts_val;
        set_state(TcpState::kEstablished);
        handshake_established();
        send_ack(false);
        if (on_established) on_established();
        try_send();
      }
      return;
    case TcpState::kSynReceived:
      if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn) {
        set_state(TcpState::kEstablished);
        handshake_established();
        rwnd_ = pkt.tcp.window;
        if (on_established) on_established();
        try_send();
      }
      return;
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kCloseWait:
    case TcpState::kLastAck:
    case TcpState::kClosing:
    case TcpState::kTimeWait:
      break;
    case TcpState::kClosed:
      // RFC 793: a live segment reaching a closed endpoint earns a RST so
      // the peer's retransmissions die quickly instead of timing out.
      send_rst_for(pkt);
      return;
  }

  if (pkt.tcp.flags.fin) {
    if (pkt.payload_bytes > 0) handle_data(pkt);
    if (pkt.tcp.flags.ack) handle_ack(pkt);
    handle_fin(pkt);
    return;
  }
  if (pkt.payload_bytes > 0) {
    handle_data(pkt);
    // Piggybacked ACK processing.
    if (pkt.tcp.flags.ack) handle_ack(pkt);
  } else if (pkt.tcp.flags.ack) {
    handle_ack(pkt);
  }
}

void Endpoint::register_metrics(obs::Registry& reg,
                                const std::string& prefix) const {
  auto field = [&](const char* name,
                   std::uint64_t EndpointStats::* member) {
    reg.counter(prefix + "/" + name,
                [this, member] { return stats_.*member; });
  };
  field("segments_sent", &EndpointStats::segments_sent);
  field("segments_received", &EndpointStats::segments_received);
  field("bytes_sent", &EndpointStats::bytes_sent);
  field("bytes_acked", &EndpointStats::bytes_acked);
  field("bytes_delivered", &EndpointStats::bytes_delivered);
  field("bytes_consumed", &EndpointStats::bytes_consumed);
  field("retransmits", &EndpointStats::retransmits);
  field("fast_retransmits", &EndpointStats::fast_retransmits);
  field("timeouts", &EndpointStats::timeouts);
  field("dupacks_received", &EndpointStats::dupacks_received);
  field("dupacks_sent", &EndpointStats::dupacks_sent);
  field("acks_sent", &EndpointStats::acks_sent);
  field("window_update_acks", &EndpointStats::window_update_acks);
  field("rcv_buffer_drops", &EndpointStats::rcv_buffer_drops);
  field("window_probes", &EndpointStats::window_probes);
  field("out_of_window", &EndpointStats::out_of_window);
  field("corrupted_delivered", &EndpointStats::corrupted_delivered);
  reg.gauge(prefix + "/cwnd_segments",
            [this] { return static_cast<double>(cwnd_segments()); });
  reg.gauge(prefix + "/flight_bytes",
            [this] { return static_cast<double>(flight_bytes()); });
  reg.gauge(prefix + "/srtt_us",
            [this] { return sim::to_seconds(srtt()) * 1e6; });
  // Algorithm-specific surface, registered only off the default path so
  // classic NewReno snapshots (and the goldens hashed from them) stay
  // byte-identical.
  if (config_.cc != CcAlgorithm::kNewReno) {
    reg.gauge(prefix + "/cc_state",
              [this] { return static_cast<double>(cc_state()); });
  }
  if (config_.ecn) {
    field("ecn_ce_received", &EndpointStats::ecn_ce_received);
    field("ecn_ece_sent", &EndpointStats::ecn_ece_sent);
    field("ecn_cwnd_reductions", &EndpointStats::ecn_cwnd_reductions);
  }
}

void Endpoint::register_lifecycle_metrics(obs::Registry& reg,
                                          const std::string& prefix) const {
  auto field = [&](const char* name,
                   std::uint64_t EndpointStats::* member) {
    reg.counter(prefix + "/" + name,
                [this, member] { return stats_.*member; });
  };
  field("rsts_sent", &EndpointStats::rsts_sent);
  field("rsts_received", &EndpointStats::rsts_received);
  field("aborts", &EndpointStats::aborts);
  field("handshake_failures", &EndpointStats::handshake_failures);
  field("fin_retransmits", &EndpointStats::fin_retransmits);
  field("time_wait_absorbed", &EndpointStats::time_wait_absorbed);
}

}  // namespace xgbe::tcp

// Reno/NewReno congestion control in Linux style: the congestion window is
// counted in whole segments, which is one half of the MSS-alignment
// phenomenon the paper analyses in §3.5.1 (the other half is the receiver's
// MSS-rounded advertised window).
#pragma once

#include <cstdint>
#include <limits>

namespace xgbe::tcp {

class CongestionControl {
 public:
  explicit CongestionControl(std::uint32_t initial_cwnd = 2)
      : cwnd_(initial_cwnd) {}

  /// Congestion window in segments.
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  bool in_recovery() const { return in_recovery_; }

  /// A new cumulative ACK arrived covering `acked_segments` segments.
  void on_ack(std::uint32_t acked_segments);

  /// Third duplicate ACK: fast retransmit. `flight_segments` is the number
  /// of segments outstanding. Returns true if we entered recovery.
  bool on_fast_retransmit(std::uint32_t flight_segments);

  /// Additional duplicate ACK while in recovery (window inflation).
  void on_dupack_in_recovery() { ++inflation_; }

  /// Partial ACK during NewReno recovery (stay in recovery, deflate).
  void on_partial_ack();

  /// Recovery completed (ACK reached the recovery point).
  void on_recovery_exit();

  /// Retransmission timeout: collapse to one segment.
  void on_timeout(std::uint32_t flight_segments);

  /// Usable window in segments including recovery inflation.
  std::uint32_t usable_cwnd() const { return cwnd_ + inflation_; }

  /// Hard upper bound (snd_cwnd_clamp); used to model the flow-window cap
  /// trick of the WAN experiment when socket buffers bound the window.
  void set_clamp(std::uint32_t clamp) { clamp_ = clamp; }

 private:
  void bump(std::uint32_t acked_segments);

  std::uint32_t cwnd_;
  std::uint32_t ssthresh_ = std::numeric_limits<std::uint32_t>::max() / 2;
  std::uint32_t cwnd_cnt_ = 0;  // CA accumulator (Linux snd_cwnd_cnt)
  std::uint32_t inflation_ = 0;
  std::uint32_t clamp_ = std::numeric_limits<std::uint32_t>::max() / 2;
  bool in_recovery_ = false;
};

}  // namespace xgbe::tcp

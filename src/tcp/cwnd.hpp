// Pluggable congestion control in Linux style: the congestion window is
// counted in whole segments, which is one half of the MSS-alignment
// phenomenon the paper analyses in §3.5.1 (the other half is the receiver's
// MSS-rounded advertised window).
//
// The base class IS the algorithm the paper measured — Linux-2.4
// Reno/NewReno — and stays directly instantiable so the default path is
// byte-identical to the pre-strategy implementation. Cubic and Dctcp
// override the growth/reduction hooks; everything is integer arithmetic so
// the simulator's bit-identical rerun invariant holds for every algorithm.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "sim/time.hpp"
#include "tcp/config.hpp"

namespace xgbe::tcp {

class CongestionControl {
 public:
  explicit CongestionControl(std::uint32_t initial_cwnd = 2)
      : cwnd_(initial_cwnd) {}
  virtual ~CongestionControl() = default;

  /// Congestion window in segments.
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  bool in_recovery() const { return in_recovery_; }

  /// A new cumulative ACK arrived covering `acked_segments` segments.
  /// `now` feeds time-based algorithms (CUBIC); Reno-family ignores it.
  void on_ack(std::uint32_t acked_segments, sim::SimTime now = 0);

  /// Third duplicate ACK: fast retransmit. `flight_segments` is the number
  /// of segments outstanding. Returns true if we entered recovery.
  bool on_fast_retransmit(std::uint32_t flight_segments);

  /// Additional duplicate ACK while in recovery (window inflation).
  void on_dupack_in_recovery() { ++inflation_; }

  /// Partial ACK during NewReno recovery (stay in recovery, deflate).
  void on_partial_ack();

  /// Recovery completed (ACK reached the recovery point).
  void on_recovery_exit();

  /// Retransmission timeout: collapse to one segment.
  void on_timeout(std::uint32_t flight_segments);

  /// One ECN feedback window closed: of `acked_segments` newly acknowledged
  /// segments, `marked_segments` carried ECE. Returns true when the sender
  /// reduced and must set CWR on the next data segment. The base class
  /// implements the classic RFC 3168 response (at most one multiplicative
  /// decrease per window); Dctcp overrides with the alpha-proportional cut.
  virtual bool on_ecn_window(std::uint32_t acked_segments,
                             std::uint32_t marked_segments, sim::SimTime now);

  /// Usable window in segments including recovery inflation, never past the
  /// clamp (inflation used to escape snd_cwnd_clamp; see ISSUE 9).
  std::uint32_t usable_cwnd() const {
    const std::uint32_t usable = cwnd_ + inflation_;
    return usable < clamp_ ? usable : clamp_;
  }

  /// Hard upper bound (snd_cwnd_clamp); used to model the flow-window cap
  /// trick of the WAN experiment when socket buffers bound the window.
  void set_clamp(std::uint32_t clamp) { clamp_ = clamp; }

  /// Stable algorithm name for logs and the FlowSampler column.
  virtual const char* name() const { return "newreno"; }

  /// One algorithm-specific gauge for observability: CUBIC exports K (ms),
  /// DCTCP exports alpha (1/1024 fixed point), Reno-family exports 0.
  virtual std::int64_t state_gauge() const { return 0; }

 protected:
  /// Window growth outside recovery. The default is Reno: slow start below
  /// ssthresh, additive increase above. Linux clamp semantics: every ACKed
  /// segment is processed and `cwnd_cnt_` keeps cycling at the clamp — only
  /// the `++cwnd_` is suppressed (the pre-fix code returned early, freezing
  /// the accumulator mid-window and discarding the rest of the ACK).
  virtual void grow(std::uint32_t acked_segments, sim::SimTime now);

  /// Slow-start / loss-response threshold after a loss event; `cwnd_` still
  /// holds the pre-reduction window when this runs. Reno halves the flight.
  virtual std::uint32_t ssthresh_after_loss(std::uint32_t flight_segments);

  /// Loss event notification (fast retransmit, timeout, or classic ECN
  /// reduction) — runs after ssthresh_after_loss, before the window is cut.
  /// CUBIC resets its epoch here.
  virtual void on_loss_event() {}

  std::uint32_t cwnd_;
  std::uint32_t ssthresh_ = std::numeric_limits<std::uint32_t>::max() / 2;
  std::uint32_t cwnd_cnt_ = 0;  // CA accumulator (Linux snd_cwnd_cnt)
  std::uint32_t inflation_ = 0;
  std::uint32_t clamp_ = std::numeric_limits<std::uint32_t>::max() / 2;
  bool in_recovery_ = false;
};

/// CUBIC (RFC 8312) in Linux's fixed-point formulation: the window grows as
/// a cubic of wall-clock time since the last reduction, making growth
/// RTT-independent — and, relevant to §3.5.1, the target is NOT a multiple
/// of anything, so the fig8 MSS-alignment staircase disappears. Time is
/// measured in milliseconds; all arithmetic is 64-bit integer (beta and the
/// cube factor use Linux's 717/1024 and 410/2^40 constants), so reruns stay
/// bit-identical.
class Cubic : public CongestionControl {
 public:
  explicit Cubic(std::uint32_t initial_cwnd = 2)
      : CongestionControl(initial_cwnd) {}

  const char* name() const override { return "cubic"; }
  /// K in ms: time from epoch start to the pre-loss plateau.
  std::int64_t state_gauge() const override {
    return static_cast<std::int64_t>(k_ms_);
  }

 protected:
  void grow(std::uint32_t acked_segments, sim::SimTime now) override;
  std::uint32_t ssthresh_after_loss(std::uint32_t flight_segments) override;
  void on_loss_event() override { epoch_start_ = 0; }

 private:
  void update_cnt(sim::SimTime now);
  static std::uint64_t cube_root(std::uint64_t a);

  std::uint32_t last_max_cwnd_ = 0;  // W_max before the last reduction
  sim::SimTime epoch_start_ = 0;     // 0 = epoch not started (sentinel)
  std::uint32_t origin_cwnd_ = 0;    // plateau the cubic aims back at
  std::uint64_t k_ms_ = 0;           // K, in milliseconds
  std::uint32_t cnt_ = 1;            // ACKs per cwnd increment (>= 1)
};

/// DCTCP-style ECN-reactive sender: maintains a per-window estimate `alpha`
/// of the fraction of CE-marked segments (EWMA with gain 1/16, in 1/1024
/// fixed point) and, when a window saw any marks, cuts cwnd proportionally
/// (cwnd -= cwnd * alpha / 2) instead of halving. Loss handling is
/// inherited from NewReno, as in the real stack. Pair with an ECN-marking
/// switch AQM (link::AqmMode::kEcnThreshold) for the incast comparison.
class Dctcp : public CongestionControl {
 public:
  explicit Dctcp(std::uint32_t initial_cwnd = 2)
      : CongestionControl(initial_cwnd) {}

  const char* name() const override { return "dctcp"; }
  /// alpha in 1/1024 fixed point (1024 = every segment marked).
  std::int64_t state_gauge() const override {
    return static_cast<std::int64_t>(alpha_);
  }

  bool on_ecn_window(std::uint32_t acked_segments,
                     std::uint32_t marked_segments, sim::SimTime now) override;

 private:
  // Start pessimistic (alpha = 1) like Linux: the first marked window cuts
  // hard, then the EWMA converges to the true mark fraction.
  std::uint32_t alpha_ = 1024;
};

/// Builds the strategy for a config selection. `initial_cwnd` in segments.
std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgorithm alg, std::uint32_t initial_cwnd);

}  // namespace xgbe::tcp

// Cluster fabric builder: racks of hosts under ToR switches, a spine tier,
// and ECMP-trunked uplinks — the scale-out topology the paper's single
// tuned path feeds into.
//
// Layout and naming are systematic so that observability consumers (the
// drop ledger, tools::fleet_doctor) can classify components from registry
// paths alone:
//
//   hosts         "r<R>h<H>"
//   ToR switches  "tor<R>"            (one per rack)
//   spines        "spine<S>"
//   access links  "r<R>h<H>-tor<R>"
//   trunks        "trunk-tor<R>-spine<S>-<K>"   (K parallel trunks per
//                                                (rack, spine) bundle)
//
// Forwarding: each ToR knows its own hosts on access ports and hashes
// everything else over ALL of its uplink trunks (one ECMP group spanning
// every spine); each spine hashes a rack's hosts over the trunks of its
// bundle toward that rack. The hash is a pure function of (src, dst, flow)
// and table-programming order — see EthernetSwitch::learn_group — so path
// choice is bit-identical across reruns, shard counts, and thread counts
// (the ECMP determinism rule).
//
// Sharding: rack r lands on shard r % shards (hosts + ToR together, so
// intra-rack traffic stays shard-local), spine s on shard s % shards. The
// placement balances load only; results cannot depend on it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/fleet.hpp"
#include "link/switch.hpp"

namespace xgbe::core {

struct FabricOptions {
  std::size_t racks = 2;
  std::size_t hosts_per_rack = 3;
  std::size_t spines = 1;
  /// Parallel trunks per (rack, spine) bundle — the ECMP trunking width.
  std::size_t trunks_per_spine = 2;
  /// Event-queue shards (>= 1; the fabric always runs the parallel engine).
  std::size_t shards = 1;
  /// Worker threads for window execution (0 = engine default). Execution
  /// only — any value must give identical results.
  unsigned threads = 0;
  std::uint32_t mtu = 9000;
  double host_rate_bps = 10e9;
  double trunk_rate_bps = 10e9;
  /// Intra-rack fiber; also the engine lookahead floor, so short values
  /// mean thin windows and many barriers.
  sim::SimTime host_propagation = sim::usec(2);
  sim::SimTime trunk_propagation = sim::usec(5);
  /// ToR access-port egress buffers are kept deliberately small so incast
  /// overdrive collapses visibly in the per-port counters.
  std::uint32_t tor_port_buffer_bytes = 256 * 1024;
  /// ToR trunk-facing ports get the deeper share of packet memory (as real
  /// switches allocate it), so a downlink incast does not masquerade as
  /// trunk congestion.
  std::uint32_t tor_uplink_buffer_bytes = 1024 * 1024;
  std::uint32_t spine_port_buffer_bytes = 1024 * 1024;
  /// Congestion control + ECN for every host in the fabric (threaded into
  /// the rack tuning profile; defaults preserve the golden baselines).
  tcp::CcAlgorithm cc = tcp::CcAlgorithm::kNewReno;
  bool ecn = false;
  /// Egress AQM on the ToR switches (RED / ECN marking). Inactive by
  /// default; pair kEcnThreshold with cc = kDctcp + ecn for the incast
  /// comparison. Spines keep tail drop — the shallow access ports are
  /// where the paper-style collapse lives.
  link::AqmSpec tor_aqm;
  /// Targeted faults, resolved at build time (rate overrides must be baked
  /// into the LinkSpec before the link exists).
  fault::FleetPlan faults;
};

/// A built fabric: the sharded testbed plus coordinate accessors.
class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);

  Testbed& testbed() { return tb_; }
  const Testbed& testbed() const { return tb_; }
  const FabricOptions& options() const { return opt_; }

  std::size_t racks() const { return opt_.racks; }
  std::size_t hosts_per_rack() const { return opt_.hosts_per_rack; }
  std::size_t host_count() const { return opt_.racks * opt_.hosts_per_rack; }

  Host& host(std::size_t rack, std::size_t h) {
    return *hosts_.at(rack).at(h);
  }
  /// Rack-major flat indexing (host i = rack i/hosts_per_rack).
  Host& host_flat(std::size_t i) {
    return host(i / opt_.hosts_per_rack, i % opt_.hosts_per_rack);
  }
  link::EthernetSwitch& tor(std::size_t rack) { return *tors_.at(rack); }
  link::EthernetSwitch& spine(std::size_t s) { return *spines_.at(s); }
  link::Link& host_link(std::size_t rack, std::size_t h) {
    return *host_links_.at(rack).at(h);
  }
  link::Link& trunk(std::size_t rack, std::size_t spine, std::size_t k) {
    return *trunks_.at(rack).at(spine).at(k);
  }

  /// Rack uplink oversubscription: host capacity into a ToR over trunk
  /// capacity out of it.
  double oversubscription() const;

  /// Canonical component name a fault entry resolves to — the string the
  /// fleet doctor's findings use, so tests can assert localization.
  std::string fault_component(const fault::FleetFault& f) const;

  /// Registers every component (Testbed::register_metrics).
  void register_metrics(obs::Registry& reg) const { tb_.register_metrics(reg); }

  /// FNV-1a over the full registry snapshot JSON — the fleet determinism
  /// criterion (equal across reruns, shard counts, and thread counts).
  std::uint64_t fingerprint() const;

 private:
  FabricOptions opt_;
  Testbed tb_;
  std::vector<std::vector<Host*>> hosts_;            // [rack][h]
  std::vector<std::vector<link::Link*>> host_links_; // [rack][h]
  std::vector<link::EthernetSwitch*> tors_;
  std::vector<link::EthernetSwitch*> spines_;
  std::vector<std::vector<std::vector<link::Link*>>> trunks_;  // [r][s][k]
};

}  // namespace xgbe::core

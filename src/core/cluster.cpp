#include "core/cluster.hpp"

#include <cstring>

#include "hw/presets.hpp"
#include "obs/registry.hpp"

namespace xgbe::core::cluster {

std::unique_ptr<Cluster> build(const Options& options) {
  auto c = std::make_unique<Cluster>(options.shards);
  // 0 keeps the engine's default resolution (env override, then hardware
  // concurrency); set_threads(0) would instead force the serial path.
  if (options.threads != 0) c->tb.engine().set_threads(options.threads);
  if (!options.shard_traces.empty()) {
    c->tb.set_shard_trace_sinks(options.shard_traces);
  }
  const auto system = hw::presets::pe2650();
  const auto tuning = TuningProfile::with_big_windows(options.mtu);

  if (options.hosts <= 1) {
    // Single host: a self-rescheduling timer chain stands in for traffic
    // (the endpoint map is flow-keyed, so a host cannot stream to itself).
    // No links means Testbed never computes a lookahead; the chain period
    // is a safe stand-in (one shard holds all events anyway).
    c->tb.add_host_on(0, "solo", system, tuning);
    c->tb.engine().set_lookahead(options.propagation);
    auto tick = std::make_shared<std::function<void()>>();
    sim::Simulator& s0 = c->tb.shard_simulator(0);
    std::weak_ptr<std::function<void()>> weak = tick;
    *tick = [&s0, weak]() {
      s0.schedule(sim::nsec(100), [weak]() {
        if (auto t = weak.lock()) (*t)();
      });
    };
    (*tick)();
    c->writers.push_back(std::move(tick));
    return c;
  }

  const std::size_t npairs = options.hosts / 2;
  link::LinkSpec wire;
  wire.propagation = options.propagation;
  for (std::size_t i = 0; i < npairs; ++i) {
    // Contiguous partition, both ends of a pair together: all traffic is
    // intra-shard, so shards only meet at the window barrier — the
    // embarrassingly-parallel best case the scaling bench wants to measure.
    const std::size_t shard = i * options.shards / npairs;
    auto& tx = c->tb.add_host_on(shard, "tx" + std::to_string(i), system,
                                 tuning);
    auto& rx = c->tb.add_host_on(shard, "rx" + std::to_string(i), system,
                                 tuning);
    link::Link& l = c->tb.connect(tx, rx, wire);
    if (options.link_fault.active()) {
      fault::FaultPlan plan = options.link_fault;
      plan.seed ^= 0x9e3779b97f4a7c15ULL * (i + 1);  // decorrelate per pair
      l.set_fault_plan(plan);
    }
    c->conns.push_back(c->tb.open_connection(tx, rx, tx.endpoint_config(),
                                             rx.endpoint_config()));
  }
  return c;
}

void drive(Cluster& cluster, sim::SimTime warmup, sim::SimTime window) {
  for (auto& conn : cluster.conns) {
    cluster.tb.run_until_established(conn);
  }
  // One counter per pair: each is written only by its server's shard.
  // Sized once before arming so the element addresses stay stable.
  cluster.pair_consumed.assign(cluster.conns.size(), 0);
  for (std::size_t i = 0; i < cluster.conns.size(); ++i) {
    auto& conn = cluster.conns[i];
    auto* consumed = &cluster.pair_consumed[i];
    conn.server->on_consumed = [consumed](std::uint64_t b) { *consumed += b; };
    // Weak self-capture, as in bench drive_flows_gbps: a strong capture
    // would make the std::function own itself and leak.
    auto writer = std::make_shared<std::function<void()>>();
    auto* client = conn.client;
    std::weak_ptr<std::function<void()>> weak = writer;
    *writer = [weak, client]() {
      client->app_send(65536, [weak]() {
        if (auto w = weak.lock()) (*w)();
      });
    };
    (*writer)();
    cluster.writers.push_back(std::move(writer));
  }
  cluster.tb.run_for(warmup + window);
  for (auto& conn : cluster.conns) conn.server->on_consumed = nullptr;
  cluster.consumed = 0;
  for (const std::uint64_t b : cluster.pair_consumed) cluster.consumed += b;
}

std::uint64_t fingerprint(Cluster& cluster) {
  obs::Registry reg;
  cluster.tb.register_metrics(reg);
  const std::string json = reg.snapshot().to_json();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char ch : json) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace xgbe::core::cluster

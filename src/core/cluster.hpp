// Canonical multi-host cluster workload for the parallel engine.
//
// One topology definition shared by the scaling bench (bench/sim_core.cpp)
// and the determinism suite (tests/test_parallel_engine.cpp): N hosts wired
// as back-to-back pairs, each pair driving a continuous TCP stream. The
// topology is a function of (hosts, spec) only — the shard count changes
// where components live, never what they do — so two clusters built with
// different shard counts must produce bit-identical simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "fault/fault.hpp"

namespace xgbe::core::cluster {

struct Options {
  std::size_t hosts = 2;   // 1 = single host running a timer-chain load
  std::size_t shards = 1;  // event-queue shards (>= 1; the engine is always on)
  /// Pair-link propagation delay; doubles as the engine lookahead, so a
  /// larger value means fatter windows and fewer barriers.
  sim::SimTime propagation = sim::usec(5);
  std::uint32_t mtu = 9000;
  /// Worker threads for window execution (0 = engine default). Part of the
  /// execution, not the topology: any value must give identical results.
  unsigned threads = 0;
  /// When active, installed on every pair link with the seed decorrelated
  /// per pair (never per shard — the fault schedule is part of the workload
  /// and must not depend on the partition).
  fault::FaultPlan link_fault;
  /// Per-shard trace sinks (size must equal `shards`; empty = no tracing).
  /// Armed before the topology is built so links record per direction too.
  std::vector<obs::TraceSink*> shard_traces;
};

/// A built cluster: the testbed plus the open connections (one per pair).
struct Cluster {
  explicit Cluster(std::size_t shards) : tb(shards) {}

  Testbed tb;
  std::vector<Testbed::Connection> conns;
  /// Writer continuations keeping each pair's stream saturated; populated by
  /// drive(). Held here so queued completions stay valid across calls.
  std::vector<std::shared_ptr<std::function<void()>>> writers;
  /// Bytes each pair's server app read. Per-pair (not one shared counter)
  /// because the callbacks run on the destination's shard worker — a shared
  /// counter would be written from every thread.
  std::vector<std::uint64_t> pair_consumed;
  std::uint64_t consumed = 0;  // sum of pair_consumed, filled by drive()
};

/// Builds the pair topology. Pairs are placed contiguously across shards
/// (pair i on shard i*shards/npairs, both ends together); a single host
/// gets a self-rescheduling timer chain instead of a peer.
std::unique_ptr<Cluster> build(const Options& options);

/// Establishes every connection, arms continuous writers, and runs
/// `warmup + window` of simulated time. Safe to call once per cluster.
void drive(Cluster& cluster, sim::SimTime warmup, sim::SimTime window);

/// FNV-1a over the full metrics-registry snapshot (every per-host, per-link,
/// per-flow counter the testbed exposes, rendered deterministically). Equal
/// fingerprints across shard counts is the determinism criterion.
std::uint64_t fingerprint(Cluster& cluster);

}  // namespace xgbe::core::cluster

#include "core/tuning.hpp"

namespace xgbe::core {

TuningProfile TuningProfile::stock(std::uint32_t mtu_bytes) {
  TuningProfile t;
  t.label = "stock," + std::to_string(mtu_bytes) + "MTU,SMP,512PCI";
  t.mtu = mtu_bytes;
  return t;
}

TuningProfile TuningProfile::with_pci_burst(std::uint32_t mtu_bytes) {
  TuningProfile t = stock(mtu_bytes);
  t.label = std::to_string(mtu_bytes) + "MTU,SMP,4096PCI";
  t.mmrbc = 4096;
  return t;
}

TuningProfile TuningProfile::with_uniprocessor(std::uint32_t mtu_bytes) {
  TuningProfile t = with_pci_burst(mtu_bytes);
  t.label = std::to_string(mtu_bytes) + "MTU,UP,4096PCI";
  t.kernel = os::KernelMode::kUniprocessor;
  return t;
}

TuningProfile TuningProfile::with_big_windows(std::uint32_t mtu_bytes) {
  TuningProfile t = with_uniprocessor(mtu_bytes);
  t.label = std::to_string(mtu_bytes) + "MTU,UP,4096PCI,256kbuf";
  t.rcvbuf = 256 * 1024;
  t.sndbuf = 256 * 1024;
  return t;
}

TuningProfile TuningProfile::lan_tuned(std::uint32_t mtu_bytes) {
  return with_big_windows(mtu_bytes);
}

TuningProfile TuningProfile::wan(std::uint32_t buffer_bytes) {
  TuningProfile t;
  t.label = "wan,9000MTU,bdp-buffers";
  t.mtu = net::kMtuJumbo;
  t.mmrbc = 4096;
  t.kernel = os::KernelMode::kUniprocessor;
  t.rcvbuf = buffer_bytes;
  // The send buffer holds the retransmit queue charged in truesize (a
  // jumbo frame occupies a 16 KB block for ~9 KB of payload), so it must
  // be roughly twice the target window to keep the pipe full.
  t.sndbuf = buffer_bytes * 2;
  t.txqueuelen = 10000;  // /sbin/ifconfig eth1 txqueuelen 10000 (§4.1)
  return t;
}

TuningProfile TuningProfile::future_offload(std::uint32_t mtu_bytes) {
  TuningProfile t = lan_tuned(mtu_bytes);
  t.label = std::to_string(mtu_bytes) + "MTU,rddp+csa";
  t.header_splitting = true;
  t.adapter_on_mch = true;
  t.intr_delay = 0;
  return t;
}

std::vector<TuningProfile> TuningProfile::ladder(std::uint32_t mtu_bytes) {
  return {stock(mtu_bytes), with_pci_burst(mtu_bytes),
          with_uniprocessor(mtu_bytes), with_big_windows(mtu_bytes)};
}

}  // namespace xgbe::core

// Fleet scenario catalogue: canonical cluster workloads over a core::Fabric.
//
// Three traffic shapes cover the failure surface the fleet doctor needs to
// see: incast (N workers answer one aggregator in synchronized rounds — the
// classic ToR buffer killer), all-to-all rounds (every host streams to a
// rotating peer, exercising every trunk of every bundle), and RPC churn
// (short-lived client/server connections through a listener, via
// core::churn). Each runs to a byte-exact expectation so a scenario either
// `completed` or visibly did not — degraded runs are the point, not an
// error.
//
// All scheduling is per-shard (Testbed::simulator_for) and all counters are
// single-writer, so every scenario is bit-identical across reruns, shard
// counts, and thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "core/churn.hpp"
#include "core/fabric.hpp"

namespace xgbe::obs {
class MetricScraper;
}

namespace xgbe::core::fleet {

enum class Scenario : std::uint8_t { kIncast, kAllToAll, kRpcChurn };

const char* scenario_name(Scenario s);

/// RPC-churn options sized for a fabric run: a short burst that drains in
/// ~2 s of simulated time even when a fault strands handshakes.
churn::Options default_rpc();

struct Options {
  Scenario scenario = Scenario::kIncast;

  // --- kIncast ---------------------------------------------------------------
  /// Response size per worker per round. The default keeps a clean run just
  /// under the fabric's ToR port buffer (workers * bytes < 256 KiB for the
  /// default geometry), so tail drops on a clean fabric are exactly zero;
  /// raise it past the buffer to demonstrate incast collapse.
  std::uint32_t incast_bytes = 24 * 1024;
  std::size_t incast_rounds = 3;
  /// Gap between synchronized rounds.
  sim::SimTime round_period = sim::msec(2);

  // --- kAllToAll -------------------------------------------------------------
  std::uint32_t a2a_bytes = 16 * 1024;
  std::size_t a2a_rounds = 2;

  // --- kRpcChurn -------------------------------------------------------------
  churn::Options rpc = default_rpc();

  /// Settle time after the last expected byte (ACKs, retransmit tails).
  sim::SimTime drain = sim::msec(30);
  /// Hard stop for degraded runs that never reach the byte expectation
  /// (incomplete flows are then aborted so the ledger still balances).
  sim::SimTime deadline = sim::sec(2);

  /// Optional time-resolved telemetry: armed on the fabric's testbed for
  /// the scenario's duration (disarmed again before run() returns). The
  /// scraper samples its own Registry — build one over the fabric before
  /// calling run(). Arming never perturbs the run: results, counters, and
  /// executed-event counts are bit-identical to an unarmed run.
  obs::MetricScraper* scraper = nullptr;
};

struct Result {
  std::string name;
  std::uint64_t bytes_expected = 0;
  std::uint64_t bytes_consumed = 0;  // application-level, receiver side
  /// Every expected byte arrived before the deadline (for kRpcChurn: every
  /// opened connection reached a terminal bucket and none were refused or
  /// aborted).
  bool completed = false;
  sim::SimTime finished_at = 0;
  churn::Result rpc;  // kRpcChurn only
};

/// Runs one scenario on a built fabric. The fabric carries the counters —
/// snapshot its registry (and tools::DropReport ledgers) afterwards.
Result run(Fabric& fabric, const Options& opt);

}  // namespace xgbe::core::fleet

#include "core/testbed.hpp"

#include "obs/registry.hpp"
#include "obs/scrape.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::core {

Host& Testbed::add_host(const std::string& name,
                        const hw::SystemSpec& system,
                        const TuningProfile& tuning,
                        const nic::AdapterSpec& adapter) {
  return add_host_on(0, name, system, tuning, adapter);
}

Host& Testbed::add_host_on(std::size_t shard, const std::string& name,
                           const hw::SystemSpec& system,
                           const TuningProfile& tuning,
                           const nic::AdapterSpec& adapter) {
  hosts_.push_back(std::make_unique<Host>(shard_sim(shard), system, tuning,
                                          adapter, next_node(), name));
  host_shards_.push_back(shard);
  if (obs::TraceSink* sink = shard_trace(shard)) hosts_.back()->set_trace(sink);
  if (spans_) hosts_.back()->set_span_profiler(spans_);
  return *hosts_.back();
}

/// Shard index a host was placed on (0 in classic mode).
static std::size_t index_of(const std::vector<std::unique_ptr<Host>>& hosts,
                            const Host& host) {
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i].get() == &host) return i;
  }
  return 0;
}

link::Link& Testbed::make_link(std::size_t shard_a, std::size_t shard_b,
                               const link::LinkSpec& spec, std::string name) {
  if (engine_) {
    links_.push_back(std::make_unique<link::Link>(*engine_, shard_a, shard_b,
                                                  spec, std::move(name)));
    // The lookahead is the minimum propagation anywhere in the topology —
    // computed over all links, which is always a safe (if conservative)
    // bound for the cross-shard subset.
    min_propagation_ = std::min(min_propagation_, spec.propagation);
    engine_->set_lookahead(min_propagation_);
  } else {
    links_.push_back(
        std::make_unique<link::Link>(sim_, spec, std::move(name)));
  }
  link::Link* wire = links_.back().get();
  if (!shard_traces_.empty()) {
    wire->set_trace(/*from_a=*/true, shard_traces_[shard_a]);
    wire->set_trace(/*from_a=*/false, shard_traces_[shard_b]);
  } else if (trace_) {
    wire->set_trace(trace_);
  }
  if (spans_) wire->set_span_profiler(spans_);
  return *wire;
}

link::Link& Testbed::connect(Host& a, Host& b, const link::LinkSpec& spec,
                             std::size_t a_adapter, std::size_t b_adapter) {
  const std::size_t shard_a = host_shards_[index_of(hosts_, a)];
  const std::size_t shard_b = host_shards_[index_of(hosts_, b)];
  link::Link& wire =
      make_link(shard_a, shard_b, spec, a.name() + "<->" + b.name());
  a.adapter(a_adapter).connect(&wire, /*side_a=*/true);
  b.adapter(b_adapter).connect(&wire, /*side_a=*/false);
  return wire;
}

link::EthernetSwitch& Testbed::add_switch(const link::SwitchSpec& spec,
                                          const std::string& name) {
  return add_switch_on(0, spec, name);
}

link::EthernetSwitch& Testbed::add_switch_on(std::size_t shard,
                                             const link::SwitchSpec& spec,
                                             const std::string& name) {
  switches_.push_back(std::make_unique<link::EthernetSwitch>(
      shard_sim(shard), spec,
      name.empty() ? "switch" + std::to_string(switches_.size()) : name));
  switch_shards_.push_back(shard);
  if (obs::TraceSink* sink = shard_trace(shard)) {
    switches_.back()->set_trace(sink);
  }
  if (spans_) switches_.back()->set_span_profiler(spans_);
  return *switches_.back();
}

std::size_t Testbed::shard_of(const Host& host) const {
  return host_shards_[index_of(hosts_, host)];
}

std::size_t Testbed::switch_shard(const link::EthernetSwitch& sw) const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == &sw) return switch_shards_[i];
  }
  return 0;
}

link::Link& Testbed::connect_to_switch(Host& host, link::EthernetSwitch& sw,
                                       const link::LinkSpec& spec,
                                       std::size_t adapter_index,
                                       const std::string& link_name) {
  const std::size_t host_shard = host_shards_[index_of(hosts_, host)];
  const std::size_t sw_shard = switch_shard(sw);
  link::Link& wire = make_link(
      host_shard, sw_shard, spec,
      link_name.empty() ? host.name() + "<->switch" : link_name);
  host.adapter(adapter_index).connect(&wire, /*side_a=*/true);
  const int port = sw.add_port(&wire, /*side_a=*/false);
  sw.learn(host.node(), port);
  return wire;
}

Testbed::TrunkPorts Testbed::connect_switches(link::EthernetSwitch& a,
                                              link::EthernetSwitch& b,
                                              const link::LinkSpec& spec,
                                              const std::string& link_name) {
  link::Link& wire =
      make_link(switch_shard(a), switch_shard(b), spec, link_name);
  TrunkPorts trunk;
  trunk.wire = &wire;
  trunk.port_a = a.add_port(&wire, /*side_a=*/true);
  trunk.port_b = b.add_port(&wire, /*side_a=*/false);
  return trunk;
}

std::vector<link::Link*> Testbed::build_wan_path(
    Host& a, Host& b, const std::vector<link::LinkSpec>& circuits,
    const link::SwitchSpec& router) {
  // n circuits need n+1 routers; hosts hang off the edge routers with
  // short 10GbE links.
  const std::size_t nrouters = circuits.size() + 1;
  std::vector<link::EthernetSwitch*> routers;
  routers.reserve(nrouters);
  for (std::size_t i = 0; i < nrouters; ++i) {
    routers.push_back(&add_switch(router));
  }

  // Host access links.
  link::LinkSpec access;  // default 10GbE LAN spec
  connect_to_switch(a, *routers.front(), access);
  connect_to_switch(b, *routers.back(), access);

  std::vector<link::Link*> circuit_links;
  circuit_links.reserve(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    // Routers from add_switch() live on shard 0.
    link::Link* wire =
        &make_link(0, 0, circuits[i], "circuit" + std::to_string(i));
    const int lo_port = routers[i]->add_port(wire, /*side_a=*/true);
    const int hi_port = routers[i + 1]->add_port(wire, /*side_a=*/false);
    // Teach every router the direction of each host.
    routers[i]->learn(b.node(), lo_port);
    routers[i + 1]->learn(a.node(), hi_port);
    circuit_links.push_back(wire);
  }
  return circuit_links;
}

Testbed::Connection Testbed::open_connection(
    Host& from, Host& to, const tcp::EndpointConfig& client_config,
    const tcp::EndpointConfig& server_config, std::size_t from_adapter,
    std::size_t to_adapter) {
  Connection conn;
  conn.flow = flow_counter_++;
  conn.client = &from.create_endpoint(client_config, conn.flow, to.node(),
                                      from_adapter);
  conn.server = &to.create_endpoint(server_config, conn.flow, from.node(),
                                    to_adapter);
  conn.server->listen();
  conn.client->connect();
  if (sampler_ != nullptr) {
    tcp::Endpoint* ep = conn.client;
    sampler_->watch(conn.flow, [ep]() {
      obs::FlowSampler::Sample s;
      s.cwnd_segments = ep->cwnd_segments();
      s.ssthresh_segments = ep->ssthresh();
      s.flight_bytes = ep->flight_bytes();
      s.rwnd_bytes = ep->peer_window();
      s.srtt = ep->srtt();
      s.cc_state = ep->cc_state();
      return s;
    });
  }
  return conn;
}

bool Testbed::run_until_established(const Connection& conn,
                                    sim::SimTime timeout) {
  const sim::SimTime deadline = now() + timeout;
  while (now() < deadline &&
         !(conn.client->established() && conn.server->established())) {
    const sim::SimTime step = sim::usec(100);
    run_until(std::min(deadline, now() + step));
  }
  return conn.client->established() && conn.server->established();
}

void Testbed::set_trace_sink(obs::TraceSink* sink) {
  trace_ = sink;
  if (sink == nullptr) return;
  for (auto& host : hosts_) host->set_trace(sink);
  for (auto& wire : links_) wire->set_trace(sink);
  for (auto& sw : switches_) sw->set_trace(sink);
}

void Testbed::set_shard_trace_sinks(std::vector<obs::TraceSink*> sinks) {
  shard_traces_ = std::move(sinks);
  if (shard_traces_.empty()) return;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i]->set_trace(shard_traces_[host_shards_[i]]);
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->set_trace(shard_traces_[switch_shards_[i]]);
  }
  // Existing links cannot be revisited per direction here (their shard
  // placement is not stored); arm shard sinks before building the topology.
}

void Testbed::set_span_profiler(obs::SpanProfiler* spans) {
  // The span profiler keeps one journey map across all components; in
  // sharded mode that would be written from every worker thread, so the
  // sharded testbed leaves it disarmed (classic runs are the profiling
  // path — same model, same code, one thread).
  if (engine_) return;
  spans_ = spans;
  if (spans == nullptr) return;
  for (auto& host : hosts_) host->set_span_profiler(spans);
  for (auto& wire : links_) wire->set_span_profiler(spans);
  for (auto& sw : switches_) sw->set_span_profiler(spans);
}

void Testbed::set_metric_scraper(obs::MetricScraper* scraper) {
  // Both modes: the scraper observes boundaries through the TimeHook
  // interface, which the classic simulator fires between events and the
  // sharded engine fires at barriers — single-threaded in either case.
  scraper_ = scraper;
  if (engine_) {
    engine_->set_time_hook(scraper);
  } else {
    sim_.set_time_hook(scraper);
  }
}

void Testbed::set_flow_sampler(obs::FlowSampler* sampler) {
  // Same single-writer argument as the span profiler: classic mode only.
  if (engine_) return;
  sampler_ = sampler;
  if (sampler != nullptr) sampler->attach(sim_);
}

namespace {

/// Uniquifies duplicate component names: the first occurrence keeps its
/// name, later ones get "#<i>" appended so registry paths never collide.
class NameDedup {
 public:
  std::string unique(const std::string& name) {
    const int n = seen_[name]++;
    if (n == 0) return name;
    return name + "#" + std::to_string(n);
  }

 private:
  std::map<std::string, int> seen_;
};

}  // namespace

void Testbed::register_metrics(obs::Registry& reg) const {
  NameDedup hosts, links, switches;
  for (const auto& host : hosts_) {
    host->register_metrics(reg, hosts.unique(host->name()));
  }
  for (const auto& wire : links_) {
    wire->register_metrics(reg, "link/" + links.unique(wire->name()));
  }
  for (const auto& sw : switches_) {
    sw->register_metrics(reg, "switch/" + switches.unique(sw->name()));
  }
}

}  // namespace xgbe::core

#include "core/testbed.hpp"

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::core {

Host& Testbed::add_host(const std::string& name,
                        const hw::SystemSpec& system,
                        const TuningProfile& tuning,
                        const nic::AdapterSpec& adapter) {
  hosts_.push_back(std::make_unique<Host>(sim_, system, tuning, adapter,
                                          next_node(), name));
  if (trace_) hosts_.back()->set_trace(trace_);
  if (spans_) hosts_.back()->set_span_profiler(spans_);
  return *hosts_.back();
}

link::Link& Testbed::connect(Host& a, Host& b, const link::LinkSpec& spec,
                             std::size_t a_adapter, std::size_t b_adapter) {
  links_.push_back(std::make_unique<link::Link>(
      sim_, spec, a.name() + "<->" + b.name()));
  link::Link* wire = links_.back().get();
  if (trace_) wire->set_trace(trace_);
  if (spans_) wire->set_span_profiler(spans_);
  a.adapter(a_adapter).connect(wire, /*side_a=*/true);
  b.adapter(b_adapter).connect(wire, /*side_a=*/false);
  return *wire;
}

link::EthernetSwitch& Testbed::add_switch(const link::SwitchSpec& spec) {
  switches_.push_back(std::make_unique<link::EthernetSwitch>(
      sim_, spec, "switch" + std::to_string(switches_.size())));
  if (trace_) switches_.back()->set_trace(trace_);
  if (spans_) switches_.back()->set_span_profiler(spans_);
  return *switches_.back();
}

link::Link& Testbed::connect_to_switch(Host& host, link::EthernetSwitch& sw,
                                       const link::LinkSpec& spec,
                                       std::size_t adapter_index) {
  links_.push_back(std::make_unique<link::Link>(
      sim_, spec, host.name() + "<->switch"));
  link::Link* wire = links_.back().get();
  if (trace_) wire->set_trace(trace_);
  if (spans_) wire->set_span_profiler(spans_);
  host.adapter(adapter_index).connect(wire, /*side_a=*/true);
  const int port = sw.add_port(wire, /*side_a=*/false);
  sw.learn(host.node(), port);
  return *wire;
}

std::vector<link::Link*> Testbed::build_wan_path(
    Host& a, Host& b, const std::vector<link::LinkSpec>& circuits,
    const link::SwitchSpec& router) {
  // n circuits need n+1 routers; hosts hang off the edge routers with
  // short 10GbE links.
  const std::size_t nrouters = circuits.size() + 1;
  std::vector<link::EthernetSwitch*> routers;
  routers.reserve(nrouters);
  for (std::size_t i = 0; i < nrouters; ++i) {
    routers.push_back(&add_switch(router));
  }

  // Host access links.
  link::LinkSpec access;  // default 10GbE LAN spec
  connect_to_switch(a, *routers.front(), access);
  connect_to_switch(b, *routers.back(), access);

  std::vector<link::Link*> circuit_links;
  circuit_links.reserve(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    links_.push_back(std::make_unique<link::Link>(
        sim_, circuits[i], "circuit" + std::to_string(i)));
    link::Link* wire = links_.back().get();
    if (trace_) wire->set_trace(trace_);
    if (spans_) wire->set_span_profiler(spans_);
    const int lo_port = routers[i]->add_port(wire, /*side_a=*/true);
    const int hi_port = routers[i + 1]->add_port(wire, /*side_a=*/false);
    // Teach every router the direction of each host.
    routers[i]->learn(b.node(), lo_port);
    routers[i + 1]->learn(a.node(), hi_port);
    circuit_links.push_back(wire);
  }
  return circuit_links;
}

Testbed::Connection Testbed::open_connection(
    Host& from, Host& to, const tcp::EndpointConfig& client_config,
    const tcp::EndpointConfig& server_config, std::size_t from_adapter,
    std::size_t to_adapter) {
  Connection conn;
  conn.flow = flow_counter_++;
  conn.client = &from.create_endpoint(client_config, conn.flow, to.node(),
                                      from_adapter);
  conn.server = &to.create_endpoint(server_config, conn.flow, from.node(),
                                    to_adapter);
  conn.server->listen();
  conn.client->connect();
  if (sampler_ != nullptr) {
    tcp::Endpoint* ep = conn.client;
    sampler_->watch(conn.flow, [ep]() {
      obs::FlowSampler::Sample s;
      s.cwnd_segments = ep->cwnd_segments();
      s.ssthresh_segments = ep->ssthresh();
      s.flight_bytes = ep->flight_bytes();
      s.rwnd_bytes = ep->peer_window();
      s.srtt = ep->srtt();
      return s;
    });
  }
  return conn;
}

bool Testbed::run_until_established(const Connection& conn,
                                    sim::SimTime timeout) {
  const sim::SimTime deadline = sim_.now() + timeout;
  while (sim_.now() < deadline &&
         !(conn.client->established() && conn.server->established())) {
    const sim::SimTime step = sim::usec(100);
    sim_.run_until(std::min(deadline, sim_.now() + step));
  }
  return conn.client->established() && conn.server->established();
}

void Testbed::set_trace_sink(obs::TraceSink* sink) {
  trace_ = sink;
  if (sink == nullptr) return;
  for (auto& host : hosts_) host->set_trace(sink);
  for (auto& wire : links_) wire->set_trace(sink);
  for (auto& sw : switches_) sw->set_trace(sink);
}

void Testbed::set_span_profiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  if (spans == nullptr) return;
  for (auto& host : hosts_) host->set_span_profiler(spans);
  for (auto& wire : links_) wire->set_span_profiler(spans);
  for (auto& sw : switches_) sw->set_span_profiler(spans);
}

void Testbed::set_flow_sampler(obs::FlowSampler* sampler) {
  sampler_ = sampler;
  if (sampler != nullptr) sampler->attach(sim_);
}

namespace {

/// Uniquifies duplicate component names: the first occurrence keeps its
/// name, later ones get "#<i>" appended so registry paths never collide.
class NameDedup {
 public:
  std::string unique(const std::string& name) {
    const int n = seen_[name]++;
    if (n == 0) return name;
    return name + "#" + std::to_string(n);
  }

 private:
  std::map<std::string, int> seen_;
};

}  // namespace

void Testbed::register_metrics(obs::Registry& reg) const {
  NameDedup hosts, links, switches;
  for (const auto& host : hosts_) {
    host->register_metrics(reg, hosts.unique(host->name()));
  }
  for (const auto& wire : links_) {
    wire->register_metrics(reg, "link/" + links.unique(wire->name()));
  }
  for (const auto& sw : switches_) {
    sw->register_metrics(reg, "switch/" + switches.unique(sw->name()));
  }
}

}  // namespace xgbe::core

#include "core/fleet.hpp"

#include <memory>
#include <vector>

#include "tcp/endpoint.hpp"

namespace xgbe::core::fleet {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kIncast:
      return "incast";
    case Scenario::kAllToAll:
      return "all-to-all";
    case Scenario::kRpcChurn:
      return "rpc-churn";
  }
  return "?";
}

churn::Options default_rpc() {
  churn::Options o;
  o.connections = 150;
  o.arrival_rate_hz = 2000.0;
  o.min_bytes = 1024;
  o.max_bytes = 32768;
  o.max_concurrent = 32;
  o.drain_timeout = sim::sec(2);
  return o;
}

namespace {

/// One flow with its receiver-side byte counter. Counters live in a deque-
/// stable vector sized before arming; each is written only by the receiving
/// host's shard.
struct Flow {
  Testbed::Connection conn;
  Host* sender = nullptr;
};

/// Drives a set of established flows through synchronized send rounds:
/// round k fires `bytes` on every sender at k * period (scheduled on each
/// sender's shard), then runs until every byte landed or the deadline.
Result drive_rounds(Fabric& fabric, const Options& opt, const char* name,
                    std::vector<Flow>& flows, std::size_t rounds,
                    std::uint32_t bytes, sim::SimTime period) {
  Testbed& tb = fabric.testbed();
  Result res;
  res.name = name;
  res.bytes_expected =
      static_cast<std::uint64_t>(flows.size()) * rounds * bytes;

  for (auto& f : flows) tb.run_until_established(f.conn);

  std::vector<std::uint64_t> consumed(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto* counter = &consumed[i];
    flows[i].conn.server->on_consumed = [counter](std::uint64_t b) {
      *counter += b;
    };
  }
  // Synchronized rounds: every sender fires at the same instant — that
  // simultaneity is the incast signature, so no jitter is added.
  for (std::size_t k = 0; k < rounds; ++k) {
    for (auto& f : flows) {
      tcp::Endpoint* ep = f.conn.client;
      tb.simulator_for(*f.sender)
          .schedule(static_cast<sim::SimTime>(k) * period,
                    [ep, bytes]() { ep->app_send(bytes, nullptr); });
    }
  }

  const std::uint64_t per_flow =
      static_cast<std::uint64_t>(rounds) * bytes;
  const sim::SimTime deadline = tb.now() + opt.deadline;
  const auto total = [&]() {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : consumed) sum += b;
    return sum;
  };
  while (total() < res.bytes_expected && tb.now() < deadline) {
    tb.run_for(sim::msec(1));
  }
  // Deterministic quiescence: flows the fault starved are aborted (their
  // retransmit clocks die with them), then the drain lands every in-flight
  // frame — the conservation ledger must balance even on degraded runs.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (consumed[i] < per_flow) flows[i].conn.client->abort();
  }
  tb.run_for(opt.drain);
  res.bytes_consumed = total();
  res.completed = res.bytes_consumed == res.bytes_expected;
  res.finished_at = tb.now();
  for (auto& f : flows) f.conn.server->on_consumed = nullptr;
  return res;
}

Result run_incast(Fabric& fabric, const Options& opt) {
  Testbed& tb = fabric.testbed();
  Host& agg = fabric.host(0, 0);
  std::vector<Flow> flows;
  for (std::size_t i = 1; i < fabric.host_count(); ++i) {
    Host& worker = fabric.host_flat(i);
    Flow f;
    f.sender = &worker;
    f.conn = tb.open_connection(worker, agg, worker.endpoint_config(),
                                agg.endpoint_config());
    flows.push_back(f);
  }
  return drive_rounds(fabric, opt, scenario_name(Scenario::kIncast), flows,
                      opt.incast_rounds, opt.incast_bytes, opt.round_period);
}

Result run_all_to_all(Fabric& fabric, const Options& opt) {
  Testbed& tb = fabric.testbed();
  const std::size_t n = fabric.host_count();
  // Round r: host i streams to host (i + r + 1) % n — a rotating
  // derangement, so every round loads every host symmetrically and over the
  // rounds every trunk bundle sees traffic. One connection per (i, r).
  std::vector<Flow> flows;
  for (std::size_t r = 0; r < opt.a2a_rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      Host& src = fabric.host_flat(i);
      Host& dst = fabric.host_flat((i + r + 1) % n);
      Flow f;
      f.sender = &src;
      f.conn = tb.open_connection(src, dst, src.endpoint_config(),
                                  dst.endpoint_config());
      flows.push_back(f);
    }
  }
  // Each flow carries exactly one round's payload (fired at r * period), so
  // this drives its own loop instead of drive_rounds' every-flow rounds.
  Result res;
  res.name = scenario_name(Scenario::kAllToAll);
  res.bytes_expected =
      static_cast<std::uint64_t>(flows.size()) * opt.a2a_bytes;

  for (auto& f : flows) tb.run_until_established(f.conn);

  std::vector<std::uint64_t> consumed(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto* counter = &consumed[i];
    flows[i].conn.server->on_consumed = [counter](std::uint64_t b) {
      *counter += b;
    };
  }
  const std::uint32_t bytes = opt.a2a_bytes;
  for (std::size_t r = 0; r < opt.a2a_rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      Flow& f = flows[r * n + i];
      tcp::Endpoint* ep = f.conn.client;
      tb.simulator_for(*f.sender)
          .schedule(static_cast<sim::SimTime>(r) * opt.round_period,
                    [ep, bytes]() { ep->app_send(bytes, nullptr); });
    }
  }

  const sim::SimTime deadline = tb.now() + opt.deadline;
  const auto total = [&]() {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : consumed) sum += b;
    return sum;
  };
  while (total() < res.bytes_expected && tb.now() < deadline) {
    tb.run_for(sim::msec(1));
  }
  // Same quiescence rule as drive_rounds: abort what the fault starved.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (consumed[i] < bytes) flows[i].conn.client->abort();
  }
  tb.run_for(opt.drain);
  res.bytes_consumed = total();
  res.completed = res.bytes_consumed == res.bytes_expected;
  res.finished_at = tb.now();
  for (auto& f : flows) f.conn.server->on_consumed = nullptr;
  return res;
}

Result run_rpc_churn(Fabric& fabric, const Options& opt) {
  Testbed& tb = fabric.testbed();
  // Cross-rack pair: the RPC stream traverses the trunks, so trunk faults
  // show up as refused/aborted connections, not just byte deficits.
  Host& client = fabric.host(0, 0);
  Host& server =
      fabric.host(fabric.racks() - 1, fabric.hosts_per_rack() - 1);
  Result res;
  res.name = scenario_name(Scenario::kRpcChurn);
  res.rpc = churn::run(tb, client, server, opt.rpc);
  tb.run_for(opt.drain);
  res.bytes_expected = 0;  // sizes are drawn, not fixed; the ledger is exact
  res.bytes_consumed = res.rpc.bytes_acked;
  res.completed = res.rpc.conserved() &&
                  res.rpc.completed == res.rpc.opened &&
                  res.rpc.opened == opt.rpc.connections;
  res.finished_at = tb.now();
  return res;
}

}  // namespace

Result run(Fabric& fabric, const Options& opt) {
  if (opt.scraper != nullptr) {
    fabric.testbed().set_metric_scraper(opt.scraper);
  }
  Result res;
  switch (opt.scenario) {
    case Scenario::kIncast:
      res = run_incast(fabric, opt);
      break;
    case Scenario::kAllToAll:
      res = run_all_to_all(fabric, opt);
      break;
    case Scenario::kRpcChurn:
      res = run_rpc_churn(fabric, opt);
      break;
  }
  if (opt.scraper != nullptr) {
    fabric.testbed().set_metric_scraper(nullptr);
  }
  return res;
}

}  // namespace xgbe::core::fleet

// Connection-churn workload: thousands of short-lived TCP connections.
//
// The paper's workloads are long bulk transfers; grid and NOW traffic also
// stresses the other end of the spectrum — many small flows opening and
// closing in quick succession. The churn generator drives that pattern
// against the full connection lifecycle (handshake, transfer, FIN teardown,
// TIME_WAIT) through a Host listener: Poisson arrivals, heavy-tailed
// (bounded-Pareto) flow sizes, a cap on concurrently active transfers, and
// exact terminal accounting — every connection it opens lands in exactly
// one of {completed, refused, aborted}, fault plans notwithstanding.
//
// Works in classic and sharded mode: the driver's mutable state (arrival
// process, client-endpoint callbacks, Result tallies) is touched only by
// events on the client's shard, and the listener only by the server's, so
// the single-writer rule holds and results stay partition-invariant.
#pragma once

#include <cstdint>

#include "core/testbed.hpp"
#include "sim/time.hpp"
#include "tcp/listener.hpp"

namespace xgbe::core::churn {

struct Options {
  /// Seeds the workload's arrival/size draws (independent of fault seeds).
  std::uint64_t seed = 0x10c4a11;
  /// Connections to open over the run.
  std::uint32_t connections = 1000;
  /// Poisson arrival rate (exponential interarrival gaps).
  double arrival_rate_hz = 500.0;
  /// Bounded-Pareto flow-size tail index; ~1.1-1.5 is the classic
  /// mice-and-elephants mix.
  double pareto_alpha = 1.3;
  std::uint32_t min_bytes = 2048;
  std::uint32_t max_bytes = 262144;  // larger than sndbuf is fine (chunked)
  /// Cap on concurrently *transferring* connections; arrivals beyond it are
  /// deferred until a transfer finishes (TIME_WAIT residents don't count —
  /// the application has moved on, only the kernel remembers).
  std::uint32_t max_concurrent = 64;
  /// Grace period after the expected arrival span for retries, give-ups
  /// (handshake exhaustion takes ~93 s), and teardown to resolve.
  /// Stragglers still open at the deadline are aborted, so the terminal
  /// accounting stays exact.
  sim::SimTime drain_timeout = sim::sec(150);
  /// Server-side backlog knobs (SYN queue / accept queue / refusal RSTs).
  tcp::ListenerConfig listener;
};

struct Result {
  std::uint64_t opened = 0;
  std::uint64_t completed = 0;  // established, transferred, closed gracefully
  std::uint64_t refused = 0;    // never established: RST, give-up, overflow
  std::uint64_t aborted = 0;    // established, then reset or harness-aborted
  std::uint64_t bytes_acked = 0;       // payload acked across completed conns
  sim::SimTime first_open = 0;
  sim::SimTime last_close = 0;
  sim::SimTime fct_sum = 0;  // flow completion time (connect -> all acked),
  sim::SimTime fct_max = 0;  // completed connections only

  /// Every opened connection reached exactly one terminal bucket.
  bool conserved() const { return opened == completed + refused + aborted; }
  double connections_per_sec() const {
    const double span = sim::to_seconds(last_close - first_open);
    return span > 0.0 ? static_cast<double>(completed) / span : 0.0;
  }
  double fct_mean_seconds() const {
    return completed > 0
               ? sim::to_seconds(fct_sum) / static_cast<double>(completed)
               : 0.0;
  }
};

/// Runs the churn workload: installs a close-on-EOF listener on `server`
/// (via Host::listen with `opt.listener`), opens `opt.connections` flows
/// from `client`, and drives the testbed until every opened connection
/// reaches a terminal state or the drain deadline passes (stragglers are
/// aborted, keeping Result::conserved() exact). When `live` is non-null it
/// is used as the working result, so a sim::Watchdog armed by the caller
/// can watch progress (completed + refused + aborted) during the run.
Result run(Testbed& bed, Host& client, Host& server, const Options& opt,
           Result* live = nullptr);

}  // namespace xgbe::core::churn

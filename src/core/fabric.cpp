#include "core/fabric.hpp"

#include <algorithm>

#include "hw/presets.hpp"
#include "obs/registry.hpp"

namespace xgbe::core {

namespace {

std::string host_name(std::size_t rack, std::size_t h) {
  return "r" + std::to_string(rack) + "h" + std::to_string(h);
}

std::string trunk_name(std::size_t rack, std::size_t spine, std::size_t k) {
  return "trunk-tor" + std::to_string(rack) + "-spine" + std::to_string(spine) +
         "-" + std::to_string(k);
}

}  // namespace

Fabric::Fabric(const FabricOptions& options)
    : opt_(options), tb_(std::max<std::size_t>(1, options.shards)) {
  const std::size_t shards = std::max<std::size_t>(1, opt_.shards);
  if (opt_.threads != 0) tb_.engine().set_threads(opt_.threads);

  const auto system = hw::presets::pe2650();
  auto tuning = TuningProfile::with_big_windows(opt_.mtu);
  tuning.cc = opt_.cc;
  tuning.ecn = opt_.ecn;

  // Rate overrides (the misconfigured link) must be known before the link is
  // built, so resolve them up front.
  const auto link_rate = [&](fault::FleetFault::Target target, std::size_t rack,
                             std::size_t a, std::size_t b,
                             double fallback) -> double {
    for (const auto& f : opt_.faults.faults) {
      if (f.target != target || f.rate_override_bps <= 0.0) continue;
      if (f.rack != rack) continue;
      if (target == fault::FleetFault::Target::kHostLink && f.host == a) {
        return f.rate_override_bps;
      }
      if (target == fault::FleetFault::Target::kTrunk && f.spine == a &&
          f.trunk == b) {
        return f.rate_override_bps;
      }
    }
    return fallback;
  };

  link::SwitchSpec tor_spec;
  tor_spec.port_buffer_bytes = opt_.tor_port_buffer_bytes;
  tor_spec.port_metrics = true;
  tor_spec.aqm = opt_.tor_aqm;
  link::SwitchSpec spine_spec;
  spine_spec.port_buffer_bytes = opt_.spine_port_buffer_bytes;
  spine_spec.port_metrics = true;

  // --- Racks: ToR + hosts + access links, all on the rack's shard ----------
  hosts_.resize(opt_.racks);
  host_links_.resize(opt_.racks);
  tors_.reserve(opt_.racks);
  for (std::size_t r = 0; r < opt_.racks; ++r) {
    const std::size_t shard = r % shards;
    tors_.push_back(
        &tb_.add_switch_on(shard, tor_spec, "tor" + std::to_string(r)));
    for (std::size_t h = 0; h < opt_.hosts_per_rack; ++h) {
      Host& host = tb_.add_host_on(shard, host_name(r, h), system, tuning);
      link::LinkSpec access;
      access.rate_bps = link_rate(fault::FleetFault::Target::kHostLink, r, h, 0,
                                  opt_.host_rate_bps);
      access.propagation = opt_.host_propagation;
      access.detail_metrics = true;
      link::Link& wire =
          tb_.connect_to_switch(host, *tors_[r], access, /*adapter_index=*/0,
                                host.name() + "-tor" + std::to_string(r));
      hosts_[r].push_back(&host);
      host_links_[r].push_back(&wire);
    }
  }

  // --- Spine tier + trunk bundles ------------------------------------------
  spines_.reserve(opt_.spines);
  for (std::size_t s = 0; s < opt_.spines; ++s) {
    spines_.push_back(&tb_.add_switch_on(s % shards, spine_spec,
                                         "spine" + std::to_string(s)));
  }

  // Trunks are created rack-major, spine-major, so ECMP group port order —
  // and with it the hash mapping — is a pure function of the geometry.
  trunks_.resize(opt_.racks);
  // ToR-side uplink ports per rack (spine-major order) and spine-side ports
  // per (rack, spine) bundle, collected for group programming below.
  std::vector<std::vector<int>> tor_uplinks(opt_.racks);
  std::vector<std::vector<std::vector<int>>> spine_ports(
      opt_.racks, std::vector<std::vector<int>>(opt_.spines));
  for (std::size_t r = 0; r < opt_.racks; ++r) {
    trunks_[r].resize(opt_.spines);
    for (std::size_t s = 0; s < opt_.spines; ++s) {
      for (std::size_t k = 0; k < opt_.trunks_per_spine; ++k) {
        link::LinkSpec spec;
        spec.rate_bps = link_rate(fault::FleetFault::Target::kTrunk, r, s, k,
                                  opt_.trunk_rate_bps);
        spec.propagation = opt_.trunk_propagation;
        spec.detail_metrics = true;
        const Testbed::TrunkPorts ports = tb_.connect_switches(
            *tors_[r], *spines_[s], spec, trunk_name(r, s, k));
        trunks_[r][s].push_back(ports.wire);
        tors_[r]->set_port_buffer(ports.port_a, opt_.tor_uplink_buffer_bytes);
        tor_uplinks[r].push_back(ports.port_a);
        spine_ports[r][s].push_back(ports.port_b);
      }
    }
  }

  // --- ECMP programming ------------------------------------------------------
  // ToR r: every remote host hashes over all of r's uplinks. Spine s: rack
  // r's hosts hash over the (r, s) bundle. Program in rack/host order so the
  // tables are built identically every run.
  for (std::size_t r = 0; r < opt_.racks; ++r) {
    for (std::size_t rr = 0; rr < opt_.racks; ++rr) {
      if (rr == r) continue;
      for (Host* remote : hosts_[rr]) {
        tors_[r]->learn_group(remote->node(), tor_uplinks[r]);
      }
    }
  }
  for (std::size_t s = 0; s < opt_.spines; ++s) {
    for (std::size_t r = 0; r < opt_.racks; ++r) {
      for (Host* h : hosts_[r]) {
        spines_[s]->learn_group(h->node(), spine_ports[r][s]);
      }
    }
  }

  // --- Fault installation -----------------------------------------------------
  // Seeds decorrelate per entry from the plan seed only (never from shard
  // placement): the fault schedule is part of the workload.
  for (std::size_t i = 0; i < opt_.faults.faults.size(); ++i) {
    const auto& f = opt_.faults.faults[i];
    const std::uint64_t entry_seed =
        opt_.faults.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    switch (f.target) {
      case fault::FleetFault::Target::kHostLink:
        if (f.wire.active()) {
          fault::FaultPlan plan = f.wire;
          plan.seed ^= entry_seed;
          host_link(f.rack, f.host).set_fault_plan(plan);
        }
        break;
      case fault::FleetFault::Target::kTrunk:
        if (f.wire.active()) {
          fault::FaultPlan plan = f.wire;
          plan.seed ^= entry_seed;
          trunk(f.rack, f.spine, f.trunk).set_fault_plan(plan);
        }
        break;
      case fault::FleetFault::Target::kHost: {
        fault::HostFaultPlan plan = f.host_plan;
        plan.seed ^= entry_seed;
        host(f.rack, f.host).set_host_fault_plan(plan);
        break;
      }
    }
  }
}

double Fabric::oversubscription() const {
  const double in = static_cast<double>(opt_.hosts_per_rack) *
                    opt_.host_rate_bps;
  const double out = static_cast<double>(opt_.spines) *
                     static_cast<double>(opt_.trunks_per_spine) *
                     opt_.trunk_rate_bps;
  return out > 0.0 ? in / out : 0.0;
}

std::string Fabric::fault_component(const fault::FleetFault& f) const {
  switch (f.target) {
    case fault::FleetFault::Target::kHostLink:
      return host_name(f.rack, f.host) + "-tor" + std::to_string(f.rack);
    case fault::FleetFault::Target::kTrunk:
      return trunk_name(f.rack, f.spine, f.trunk);
    case fault::FleetFault::Target::kHost:
      return host_name(f.rack, f.host);
  }
  return {};
}

std::uint64_t Fabric::fingerprint() const {
  obs::Registry reg;
  register_metrics(reg);
  const std::string json = reg.snapshot().to_json();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char ch : json) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace xgbe::core

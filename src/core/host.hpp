// Simulated host: hardware + kernel + adapters + TCP endpoints, assembled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tuning.hpp"
#include "fault/host_fault.hpp"
#include "hw/system.hpp"
#include "net/packet.hpp"
#include "nic/adapter.hpp"
#include "os/kernel.hpp"
#include "sim/simulator.hpp"
#include "tcp/conn_table.hpp"
#include "tcp/endpoint.hpp"
#include "tcp/listener.hpp"

namespace xgbe::core {

/// One machine in the testbed. Owns the kernel model (CPUs + memory bus),
/// one or more adapters (each with its own dedicated PCI-X segment, as in
/// the paper's testbed), and any TCP endpoints living on the host.
class Host {
 public:
  Host(sim::Simulator& simulator, const hw::SystemSpec& system,
       const TuningProfile& tuning, const nic::AdapterSpec& adapter,
       net::NodeId node, std::string name);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  net::NodeId node() const { return node_; }
  const hw::SystemSpec& system() const { return system_; }
  const TuningProfile& tuning() const { return tuning_; }

  os::Kernel& kernel() { return *kernel_; }
  const os::Kernel& kernel() const { return *kernel_; }
  nic::Adapter& adapter(std::size_t i = 0) { return *adapters_.at(i); }
  const nic::Adapter& adapter(std::size_t i = 0) const {
    return *adapters_.at(i);
  }
  std::size_t adapter_count() const { return adapters_.size(); }

  /// Adds another adapter on its own PCI-X bus (the paper's dual-adapter
  /// test, §3.5.2). Returns the adapter index.
  std::size_t add_adapter(const nic::AdapterSpec& spec);

  /// Default endpoint configuration derived from the tuning profile.
  tcp::EndpointConfig endpoint_config() const;

  /// Creates a TCP endpoint bound to the given adapter; the host demuxes
  /// inbound segments matching (remote, flow) to it. The endpoint stays
  /// alive for the rest of the run (timers may reference it long after it
  /// closes); only its connection-table entry is unlinked on close.
  tcp::Endpoint& create_endpoint(const tcp::EndpointConfig& config,
                                 net::FlowId flow, net::NodeId remote,
                                 std::size_t adapter_index = 0);

  /// Installs the passive-open listener: demux misses that carry a bare SYN
  /// are offered to it, and it clones per-connection endpoints (configured
  /// with `ep_config`) into the connection table. One listener per host.
  tcp::Listener& listen(const tcp::ListenerConfig& config,
                        const tcp::EndpointConfig& ep_config,
                        std::size_t adapter_index = 0);
  tcp::Listener* listener() { return listener_.get(); }
  const tcp::Listener* listener() const { return listener_.get(); }

  // --- Connection-lifecycle accounting --------------------------------------
  /// Endpoints ever created on this host / transitions into kClosed.
  std::uint64_t conn_opens() const { return conn_opens_; }
  std::uint64_t conn_closes() const { return conn_closes_; }
  /// Live (non-closed) connections in the demux table.
  std::size_t connection_count() const { return conn_table_.size(); }
  /// RSTs this host generated for segments matching no connection.
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  /// Lifecycle invariant sweep for sim::Watchdog: the connection-table
  /// identity (size == opens - closes) plus every endpoint's transient-state
  /// budget. Empty while healthy.
  std::string lifecycle_violation(sim::SimTime now) const;

  /// Opts this host's endpoints into lifecycle-counter registration (RSTs,
  /// aborts, handshake failures, ...). Off by default so classic-workload
  /// registry snapshots stay byte-identical; listen() turns it on.
  void set_lifecycle_metrics(bool enabled) { lifecycle_metrics_ = enabled; }

  /// Raw transmit used by pktgen: bypasses the TCP/IP stack entirely.
  void raw_transmit(const net::Packet& pkt, std::size_t adapter_index = 0);

  /// Sink for non-TCP traffic (pktgen receiver side).
  std::function<void(const net::Packet&)> raw_sink;

  /// Observation tap invoked for every packet after kernel receive
  /// processing, before endpoint dispatch (MAGNET attaches here).
  std::function<void(const net::Packet&)> packet_tap;

  /// CPU load approximation over the current measurement window.
  double cpu_load() const { return kernel_->cpu_load(); }
  void mark_load_window() { kernel_->mark_load_window(); }

  // --- Host-path fault injection -------------------------------------------
  /// Arms a host-resource fault plan: the kernel and every adapter on this
  /// host share one injector (one seeded RNG, per-cause counters). An
  /// inactive plan (the default) changes nothing, bit for bit.
  void set_host_fault_plan(const fault::HostFaultPlan& plan) {
    host_faults_.set_plan(plan);
  }
  fault::HostFaultInjector& host_faults() { return host_faults_; }
  const fault::HostFaultCounters& host_fault_counters() const {
    return host_faults_.counters();
  }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink on the kernel, every adapter, and every endpoint —
  /// existing and future (components created later inherit the sink).
  void set_trace(obs::TraceSink* sink);

  /// Arms the span profiler the same way (kernel + adapters + endpoints,
  /// existing and future). Null disarms.
  void set_span_profiler(obs::SpanProfiler* spans);

  /// Registers the whole host under `prefix`: kernel at "/kernel", adapters
  /// at "/nic<i>", endpoints at "/tcp/flow<id>", plus host-fault counters
  /// and demux accounting. Endpoints created after this call are not
  /// captured; register after the topology settles (Testbed does).
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  // --- Drop-ledger accounting ----------------------------------------------
  /// Frames that completed kernel receive processing and reached demux —
  /// the host-boundary "delivered" term of the conservation identity.
  std::uint64_t frames_demuxed() const { return frames_demuxed_; }
  /// Demuxed frames no endpoint or raw sink claimed.
  std::uint64_t frames_unclaimed() const { return frames_unclaimed_; }
  /// TCP-level receive-buffer drops summed across this host's endpoints
  /// (post-delivery discards, recovered by retransmission).
  std::uint64_t sockbuf_drops() const;

 private:
  void demux(const net::Packet& pkt);
  void send_rst_for(const net::Packet& pkt, std::size_t adapter_index = 0);

  sim::Simulator& sim_;
  std::string name_;
  net::NodeId node_;
  hw::SystemSpec system_;
  TuningProfile tuning_;
  std::unique_ptr<os::Kernel> kernel_;
  std::vector<std::unique_ptr<nic::Adapter>> adapters_;
  // Owning store (append-only graveyard: endpoints are never destroyed
  // mid-run) plus the non-owning O(1) demux table of live connections.
  struct EndpointSlot {
    net::NodeId remote;
    net::FlowId flow;
    std::unique_ptr<tcp::Endpoint> ep;
  };
  std::vector<EndpointSlot> endpoints_;
  tcp::ConnTable conn_table_;
  std::unique_ptr<tcp::Listener> listener_;
  // Listeners replaced by a re-listen, parked so Registry probe closures
  // registered against them stay valid (see Host::listen()).
  std::vector<std::unique_ptr<tcp::Listener>> retired_listeners_;
  std::uint64_t conn_opens_ = 0;
  std::uint64_t conn_closes_ = 0;
  std::uint64_t rsts_sent_ = 0;
  bool lifecycle_metrics_ = false;
  // Segment-emit continuations capture a whole Packet (too big for the
  // inline callback buffer); pooled records keep the tx path allocation-free.
  sim::Pool<net::Packet> emit_rec_pool_;
  fault::HostFaultInjector host_faults_;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  std::uint64_t frames_demuxed_ = 0;
  std::uint64_t frames_unclaimed_ = 0;
};

}  // namespace xgbe::core

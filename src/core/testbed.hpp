// Testbed: builds topologies of hosts, switches, and WAN paths, and opens
// TCP connections across them.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/host.hpp"
#include "core/tuning.hpp"
#include "hw/presets.hpp"
#include "link/link.hpp"
#include "link/switch.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class FlowSampler;
class MetricScraper;
class SpanProfiler;
}

namespace xgbe::core {

class Testbed {
 public:
  Testbed() = default;

  /// Sharded testbed: the topology is partitioned across `shards` event
  /// queues advanced by the parallel engine. Components placed on different
  /// shards may only talk through links (which is all the model ever does).
  /// Results are bit-identical for any shard count.
  explicit Testbed(std::size_t shards)
      : engine_(std::make_unique<sim::ShardedEngine>(shards)) {}

  bool sharded() const { return engine_ != nullptr; }
  sim::ShardedEngine& engine() { return *engine_; }

  /// Classic-mode simulator. In sharded mode use shard_simulator()/engine().
  sim::Simulator& simulator() { return sim_; }
  sim::Simulator& shard_simulator(std::size_t shard) {
    return engine_ ? engine_->shard(shard) : sim_;
  }
  sim::SimTime now() const { return engine_ ? engine_->now() : sim_.now(); }

  /// Creates a host with one adapter. Default adapter: Intel PRO/10GbE.
  /// In sharded mode the host lands on shard 0.
  Host& add_host(const std::string& name, const hw::SystemSpec& system,
                 const TuningProfile& tuning,
                 const nic::AdapterSpec& adapter = nic::intel_pro10gbe());

  /// Sharded placement: creates the host on the given shard. The shard
  /// assignment is part of the topology, not of the execution — any
  /// assignment produces bit-identical results; a good one balances load.
  Host& add_host_on(std::size_t shard, const std::string& name,
                    const hw::SystemSpec& system, const TuningProfile& tuning,
                    const nic::AdapterSpec& adapter = nic::intel_pro10gbe());

  /// Back-to-back crossover fiber between two hosts (Fig 2a).
  link::Link& connect(Host& a, Host& b,
                      const link::LinkSpec& spec = link::LinkSpec{},
                      std::size_t a_adapter = 0, std::size_t b_adapter = 0);

  /// Adds a switch (Fig 2b/2c: the Foundry FastIron 1500 by default).
  /// In sharded mode the switch lands on shard 0; use add_switch_on().
  /// An empty `name` keeps the historical "switch<n>" auto-name.
  link::EthernetSwitch& add_switch(
      const link::SwitchSpec& spec = link::SwitchSpec{},
      const std::string& name = "");

  /// Sharded placement for switches.
  link::EthernetSwitch& add_switch_on(
      std::size_t shard, const link::SwitchSpec& spec = link::SwitchSpec{},
      const std::string& name = "");

  /// Wires a host adapter to a switch port and teaches the switch the
  /// host's address. An empty `link_name` keeps the historical
  /// "<host><->switch" auto-name.
  link::Link& connect_to_switch(Host& host, link::EthernetSwitch& sw,
                                const link::LinkSpec& spec = link::LinkSpec{},
                                std::size_t adapter_index = 0,
                                const std::string& link_name = "");

  /// A switch-to-switch trunk: the link plus the port index it got on each
  /// switch (inputs for ECMP group programming).
  struct TrunkPorts {
    link::Link* wire = nullptr;
    int port_a = -1;  // on `a` (the link's A side)
    int port_b = -1;  // on `b`
  };

  /// Wires two switches together (ToR uplink, spine trunk, ...). No
  /// forwarding entries are learned — the caller programs routes (or ECMP
  /// groups) on both switches explicitly.
  TrunkPorts connect_switches(link::EthernetSwitch& a, link::EthernetSwitch& b,
                              const link::LinkSpec& spec,
                              const std::string& link_name);

  /// Builds a WAN path between two hosts: host links into edge routers and
  /// a chain of circuits between routers (§4.1, Fig 9). Returns the
  /// circuit links (for drop/queue statistics).
  std::vector<link::Link*> build_wan_path(
      Host& a, Host& b, const std::vector<link::LinkSpec>& circuits,
      const link::SwitchSpec& router);

  /// A client-server endpoint pair.
  struct Connection {
    tcp::Endpoint* client = nullptr;  // active opener / typical sender
    tcp::Endpoint* server = nullptr;  // passive opener / typical receiver
    net::FlowId flow = 0;
  };

  /// Creates endpoints on both hosts and starts the three-way handshake.
  Connection open_connection(Host& from, Host& to,
                             const tcp::EndpointConfig& client_config,
                             const tcp::EndpointConfig& server_config,
                             std::size_t from_adapter = 0,
                             std::size_t to_adapter = 0);

  /// Runs the simulation until the connection is established (or timeout).
  /// Returns true on success.
  bool run_until_established(const Connection& conn,
                             sim::SimTime timeout = sim::sec(5));

  void run_for(sim::SimTime duration) {
    if (engine_) {
      engine_->run_until(engine_->now() + duration);
    } else {
      sim_.run_until(sim_.now() + duration);
    }
  }
  void run() {
    if (engine_) {
      engine_->run();
    } else {
      sim_.run();
    }
  }
  void run_until(sim::SimTime horizon) {
    if (engine_) {
      engine_->run_until(horizon);
    } else {
      sim_.run_until(horizon);
    }
  }

  net::NodeId next_node() { return node_counter_++; }
  /// Allocates a fresh testbed-unique flow id (workloads that open
  /// connections outside open_connection(), e.g. core::churn).
  net::FlowId next_flow() { return flow_counter_++; }

  /// Shard a host was placed on (0 in classic mode).
  std::size_t shard_of(const Host& host) const;
  /// Simulator a host's components schedule on: its shard's queue in
  /// sharded mode, the classic simulator otherwise. Workloads that schedule
  /// events touching one host's state (arrival processes, synchronized
  /// senders) must use this so the event fires on the owning shard.
  sim::Simulator& simulator_for(const Host& host) {
    return shard_sim(shard_of(host));
  }

  // --- Component iteration (drop-ledger and doctor harvesting) -------------
  std::size_t host_count() const { return hosts_.size(); }
  const Host& host_at(std::size_t i) const { return *hosts_.at(i); }
  Host& host_at(std::size_t i) { return *hosts_.at(i); }
  std::size_t link_count() const { return links_.size(); }
  const link::Link& link_at(std::size_t i) const { return *links_.at(i); }
  std::size_t switch_count() const { return switches_.size(); }
  const link::EthernetSwitch& switch_at(std::size_t i) const {
    return *switches_.at(i);
  }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink across the whole testbed: every existing host,
  /// link, and switch, and everything created afterwards. Null disarms
  /// future components but does not revisit existing ones with null;
  /// disarm before teardown by not using the sink instead. Classic mode
  /// only — a single sink shared across shards would race; use
  /// set_shard_trace_sinks() in sharded mode.
  void set_trace_sink(obs::TraceSink* sink);
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Sharded tracing: one sink per shard (size must equal the shard
  /// count). Every component records into its own shard's sink, and each
  /// link direction into its transmitter's — appends never cross threads.
  /// Merge the sinks with obs::merge_sorted() for a partition-invariant
  /// view. Arm before building the topology; existing components are
  /// revisited like in classic mode.
  void set_shard_trace_sinks(std::vector<obs::TraceSink*> sinks);

  /// Arms the span profiler across the whole testbed, same fan-out and
  /// lifetime rules as set_trace_sink(). The profiler must outlive the
  /// testbed or be disarmed before teardown.
  void set_span_profiler(obs::SpanProfiler* spans);
  obs::SpanProfiler* span_profiler() const { return spans_; }

  /// Arms the flow sampler: every connection opened *after* this call gets
  /// a read-only probe of the client endpoint's cwnd/ssthresh/flight/
  /// rwnd/srtt, sampled every sampler interval. Arm before
  /// open_connection(); existing connections are not revisited.
  void set_flow_sampler(obs::FlowSampler* sampler);
  obs::FlowSampler* flow_sampler() const { return sampler_; }

  /// Arms a metric scraper (null disarms) as the testbed's time hook: in
  /// classic mode it fires between events at each scrape boundary; in
  /// sharded mode it fires at lookahead barriers, single-threaded, once
  /// committed time reaches each boundary. Either way it schedules nothing
  /// and only reads probes, so armed runs are bit-identical to unarmed —
  /// executed-event counts included — for any shard/thread count. The
  /// scraper (and the Registry it samples) must outlive the armed run or be
  /// disarmed first.
  void set_metric_scraper(obs::MetricScraper* scraper);
  obs::MetricScraper* metric_scraper() const { return scraper_; }

  /// Registers the whole testbed: hosts by name, links under
  /// "link/<name>", switches under "switch/<name>" (duplicate names get a
  /// "#<i>" suffix so paths stay unique). Call after the topology and
  /// connections exist.
  void register_metrics(obs::Registry& reg) const;

 private:
  /// Simulator a component on `shard` should schedule on.
  sim::Simulator& shard_sim(std::size_t shard) {
    return engine_ ? engine_->shard(shard) : sim_;
  }
  /// Trace sink for components on `shard` (null when tracing is off).
  obs::TraceSink* shard_trace(std::size_t shard) const {
    if (!shard_traces_.empty()) return shard_traces_[shard];
    return trace_;
  }
  link::Link& make_link(std::size_t shard_a, std::size_t shard_b,
                        const link::LinkSpec& spec, std::string name);
  std::size_t switch_shard(const link::EthernetSwitch& sw) const;

  // Declared before the component containers: destroyed after them, so
  // events still queued at teardown (whose callbacks hold pool handles into
  // component-owned pools) die after the components do — the pools'
  // refcounted control blocks make that order safe.
  sim::Simulator sim_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<link::Link>> links_;
  std::vector<std::unique_ptr<link::EthernetSwitch>> switches_;
  std::vector<std::size_t> host_shards_;    // parallel to hosts_
  std::vector<std::size_t> switch_shards_;  // parallel to switches_
  sim::SimTime min_propagation_ = std::numeric_limits<sim::SimTime>::max();
  net::NodeId node_counter_ = 1;
  net::FlowId flow_counter_ = 1;
  obs::TraceSink* trace_ = nullptr;
  std::vector<obs::TraceSink*> shard_traces_;
  obs::SpanProfiler* spans_ = nullptr;
  obs::FlowSampler* sampler_ = nullptr;
  obs::MetricScraper* scraper_ = nullptr;
};

}  // namespace xgbe::core

// Tuning profiles: every knob the paper turns, with named presets for each
// rung of the §3.3 optimization ladder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "os/config.hpp"
#include "sim/time.hpp"
#include "tcp/config.hpp"

namespace xgbe::core {

struct TuningProfile {
  std::string label = "stock";
  std::uint32_t mtu = net::kMtuStandard;
  /// PCI-X maximum memory read byte count; 0 keeps the system default.
  std::uint32_t mmrbc = 0;
  os::KernelMode kernel = os::KernelMode::kSmp;
  os::RxApi rx_api = os::RxApi::kOldApi;
  std::uint32_t rcvbuf = 87380;   // tcp_rmem[1]
  std::uint32_t sndbuf = 65536;   // tcp_wmem[1]
  bool timestamps = true;
  /// Interrupt coalescing delay (rx-usecs); the paper's default is 5 µs,
  /// turning it off shaves another 5 µs of latency (Fig 7).
  sim::SimTime intr_delay = sim::usec(5);
  bool tso = false;
  bool csum_offload = true;
  std::uint32_t txqueuelen = 100;
  /// §3.5.3 forward-looking offloads: header-splitting direct data
  /// placement (aLAST / RDMA-over-IP) and a CSA-style adapter on the
  /// memory controller hub. Not available on the 2003 hardware; modeled to
  /// reproduce the paper's §5 projection ("throughput approaching 8 Gb/s,
  /// end-to-end latencies below 10 us, and a CPU load approaching zero").
  bool header_splitting = false;
  bool adapter_on_mch = false;
  /// Per-frame probability of in-host data damage after the adapter's
  /// checksum check (data-integrity experiments; 0 in all paper configs).
  double rx_corruption_rate = 0.0;
  /// Congestion control for every endpoint on the host; the NewReno
  /// default is the paper's Linux-2.4 stack (and the golden baseline).
  tcp::CcAlgorithm cc = tcp::CcAlgorithm::kNewReno;
  /// ECN negotiation for every endpoint (pair with a marking switch AQM).
  bool ecn = false;

  /// The hypothetical next-generation profile of §5.
  static TuningProfile future_offload(std::uint32_t mtu_bytes);

  // --- The optimization ladder of §3.3 -------------------------------------

  /// Rung 0: stock TCP, SMP kernel, MMRBC 512, default windows.
  static TuningProfile stock(std::uint32_t mtu_bytes);

  /// Rung 1: + PCI-X burst size (MMRBC) raised to 4096.
  static TuningProfile with_pci_burst(std::uint32_t mtu_bytes);

  /// Rung 2: + uniprocessor kernel.
  static TuningProfile with_uniprocessor(std::uint32_t mtu_bytes);

  /// Rung 3: + oversized (256 KB) socket buffers — the "256kbuf" curves.
  static TuningProfile with_big_windows(std::uint32_t mtu_bytes);

  /// Fully tuned LAN profile at the given MTU (Fig 5 configuration).
  static TuningProfile lan_tuned(std::uint32_t mtu_bytes);

  /// WAN profile used for the Internet2 LSR run: jumbo frames, buffers set
  /// to the path bandwidth-delay product, long txqueuelen (§4.1).
  static TuningProfile wan(std::uint32_t buffer_bytes);

  /// The whole ladder in order, for the lan_tuning_ladder example.
  static std::vector<TuningProfile> ladder(std::uint32_t mtu_bytes);
};

}  // namespace xgbe::core

#include "core/churn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "sim/random.hpp"
#include "tcp/endpoint.hpp"

namespace xgbe::core::churn {

namespace {

struct Conn {
  tcp::Endpoint* ep = nullptr;
  sim::SimTime opened_at = 0;
  sim::SimTime done_at = 0;  // transfer finished (all payload acked)
  std::uint32_t bytes = 0;
  bool established = false;
  bool transfer_done = false;  // no longer counts against max_concurrent
  bool closed = false;
};

struct Driver {
  Testbed& bed;
  Host& client;
  Host& server;
  const Options& opt;
  Result& res;
  sim::Simulator& sim;
  sim::Rng rng;
  tcp::EndpointConfig client_cfg;
  std::deque<Conn> conns;  // deque: stable addresses for callback captures
  std::uint32_t scheduled = 0;  // arrival events issued so far
  std::uint32_t deferred = 0;   // arrivals waiting for a concurrency slot
  std::uint32_t active = 0;     // connections still counting against the cap
  std::uint64_t finished = 0;   // connections that reached kClosed
  sim::EventId arrival_event_{};
  bool arrival_pending_ = false;
  /// Set once the deadline passes: aborting a straggler frees its
  /// concurrency slot, which must NOT admit a deferred arrival mid-cleanup
  /// (a fresh SYN_SENT connection nobody will ever close would leak from
  /// the connection ledger — and appending to `conns` would invalidate the
  /// abort loop's iterators).
  bool draining = false;

  sim::SimTime interarrival() {
    // Exponential gap; 1 - u keeps log() off zero.
    const double u = rng.next_double();
    const double s = -std::log(1.0 - u) / opt.arrival_rate_hz;
    return std::max<sim::SimTime>(sim::from_seconds(s), 1);
  }

  std::uint32_t draw_size() {
    // Bounded Pareto via inverse CDF: x = L * (1 - u(1 - (L/H)^a))^(-1/a).
    const double u = rng.next_double();
    const double l = static_cast<double>(opt.min_bytes);
    const double h = static_cast<double>(opt.max_bytes);
    const double ratio = std::pow(l / h, opt.pareto_alpha);
    const double x = l * std::pow(1.0 - u * (1.0 - ratio),
                                  -1.0 / opt.pareto_alpha);
    return std::clamp(static_cast<std::uint32_t>(x), opt.min_bytes,
                      opt.max_bytes);
  }

  void pump_arrivals() {
    if (scheduled >= opt.connections) {
      arrival_pending_ = false;
      return;
    }
    ++scheduled;
    arrival_pending_ = true;
    arrival_event_ = sim.schedule(interarrival(), [this]() {
      arrival_pending_ = false;
      if (active < opt.max_concurrent) {
        open_one();
      } else {
        ++deferred;
      }
      pump_arrivals();
    });
  }

  void open_deferred() {
    if (draining) return;
    while (deferred > 0 && active < opt.max_concurrent) {
      --deferred;
      open_one();
    }
  }

  /// The connection stops counting against max_concurrent: either its
  /// transfer completed (the application would close and move on) or it
  /// died. Frees a slot for a deferred arrival.
  void finish_transfer(Conn* c) {
    if (c->transfer_done) return;
    c->transfer_done = true;
    c->done_at = sim.now();
    --active;
    open_deferred();
  }

  void open_one() {
    conns.emplace_back();
    Conn* c = &conns.back();
    c->bytes = draw_size();
    c->opened_at = sim.now();
    tcp::Endpoint& ep =
        client.create_endpoint(client_cfg, bed.next_flow(), server.node());
    c->ep = &ep;
    ++res.opened;
    ++active;
    if (res.opened == 1) res.first_open = sim.now();

    ep.on_established = [this, c]() {
      c->established = true;
      // Queue the whole flow as blocking writes; chunks respect the
      // per-write sndbuf ceiling.
      std::uint32_t remaining = c->bytes;
      while (remaining > 0) {
        const std::uint32_t chunk = std::min(remaining, client_cfg.sndbuf);
        c->ep->app_send(chunk, nullptr);
        remaining -= chunk;
      }
    };
    ep.on_all_acked = [this, c]() {
      // Fires on every full drain (including window-update ACKs before any
      // write); only the drain that covers the whole flow finishes it.
      if (c->transfer_done || !c->established) return;
      if (c->ep->stats().bytes_acked < c->bytes) return;
      finish_transfer(c);
      c->ep->close();
    };
    ep.on_closed = [this, c]() {
      if (c->closed) return;
      c->closed = true;
      ++finished;
      res.last_close = sim.now();
      if (!c->established) {
        ++res.refused;
      } else if (c->ep->close_reason() == tcp::CloseReason::kGraceful) {
        ++res.completed;
        res.bytes_acked += c->bytes;
        const sim::SimTime fct = c->done_at - c->opened_at;
        res.fct_sum += fct;
        res.fct_max = std::max(res.fct_max, fct);
      } else {
        ++res.aborted;
      }
      finish_transfer(c);  // no-op if the transfer already completed
    };
    ep.connect();
  }

  bool done() const {
    return res.opened == opt.connections && finished == opt.connections;
  }
};

}  // namespace

Result run(Testbed& bed, Host& client, Host& server, const Options& opt,
           Result* live) {
  Result local;
  Result& res = live != nullptr ? *live : local;
  res = Result{};
  if (opt.connections == 0) return res;

  // Close-on-EOF server: each accepted child answers the client's FIN with
  // its own. The callbacks capture only host-owned objects, so the listener
  // keeps working after this function returns.
  tcp::Listener& listener =
      server.listen(opt.listener, server.endpoint_config());
  listener.on_accept = [](tcp::Endpoint& ep) {
    ep.on_peer_fin = [&ep]() { ep.close(); };
  };
  client.set_lifecycle_metrics(true);

  // In sharded mode every driver mutation (arrival events, the client
  // endpoints' callbacks, Result tallies) happens on the client's shard, so
  // the driver schedules on that shard's simulator. Listener work stays on
  // the server's shard, reached only through the wire.
  Driver d{bed,       client, server, opt, res, bed.simulator_for(client),
           sim::Rng(opt.seed), client.endpoint_config()};
  d.pump_arrivals();

  // Expected span of the arrival process plus the drain grace; everything
  // (retries, give-ups, TIME_WAIT) must resolve inside it.
  const sim::SimTime deadline =
      bed.now() +
      sim::from_seconds(static_cast<double>(opt.connections) /
                        opt.arrival_rate_hz) +
      opt.drain_timeout;
  while (!d.done() && bed.now() < deadline) {
    const sim::SimTime before = bed.now();
    bed.run_for(sim::msec(200));
    if (bed.now() == before) break;  // stopped (watchdog trip) — bail out
  }

  // Deterministic cleanup: abort stragglers so every opened connection
  // lands in a terminal bucket, then detach the callbacks (they capture
  // this stack frame) so nothing dangles if the caller keeps simulating.
  if (d.arrival_pending_) d.sim.cancel(d.arrival_event_);
  d.draining = true;
  for (Conn& c : d.conns) {
    if (!c.closed && c.ep != nullptr) c.ep->abort();
  }
  for (Conn& c : d.conns) {
    if (c.ep == nullptr) continue;
    c.ep->on_established = nullptr;
    c.ep->on_all_acked = nullptr;
    c.ep->on_closed = nullptr;
  }
  return res;
}

}  // namespace xgbe::core::churn

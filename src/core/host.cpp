#include "core/host.hpp"

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace xgbe::core {

Host::Host(sim::Simulator& simulator, const hw::SystemSpec& system,
           const TuningProfile& tuning, const nic::AdapterSpec& adapter,
           net::NodeId node, std::string name)
    : sim_(simulator),
      name_(std::move(name)),
      node_(node),
      system_(system),
      tuning_(tuning) {
  os::KernelConfig kc;
  kc.mode = tuning.kernel;
  kc.rx_api = tuning.rx_api;
  kc.rcvbuf_bytes = tuning.rcvbuf;
  kc.sndbuf_bytes = tuning.sndbuf;
  kc.txqueuelen = tuning.txqueuelen;
  kc.header_splitting = tuning.header_splitting;
  kernel_ = std::make_unique<os::Kernel>(simulator, system_, kc);
  kernel_->set_host_faults(&host_faults_);
  add_adapter(adapter);
}

std::size_t Host::add_adapter(const nic::AdapterSpec& spec) {
  nic::AdapterSpec s = spec;
  s.intr_delay = tuning_.intr_delay;
  s.csum_offload = spec.csum_offload && tuning_.csum_offload;
  s.on_mch = s.on_mch || tuning_.adapter_on_mch;
  s.rx_corruption_rate = tuning_.rx_corruption_rate;
  const std::uint32_t mmrbc =
      tuning_.mmrbc != 0 ? tuning_.mmrbc : system_.default_mmrbc;
  const std::size_t index = adapters_.size();
  adapters_.push_back(std::make_unique<nic::Adapter>(
      sim_, s, system_.pcix, system_.memory, mmrbc, kernel_->membus(),
      name_ + "/eth" + std::to_string(index)));
  nic::Adapter* raw = adapters_.back().get();
  raw->set_host_faults(&host_faults_);
  if (trace_) raw->set_trace(trace_, node_);
  if (spans_) raw->set_span_profiler(spans_);
  raw->set_rx_handler([this, raw](net::PacketBatch batch) {
    kernel_->rx_interrupt(std::move(batch), raw->spec().csum_offload,
                          [this](const net::Packet& pkt) { demux(pkt); });
  });
  return index;
}

tcp::EndpointConfig Host::endpoint_config() const {
  tcp::EndpointConfig c;
  c.mtu = tuning_.mtu;
  c.timestamps = tuning_.timestamps;
  c.rcvbuf = tuning_.rcvbuf;
  c.sndbuf = tuning_.sndbuf;
  c.tso = tuning_.tso;
  return c;
}

tcp::Endpoint& Host::create_endpoint(const tcp::EndpointConfig& config,
                                     net::FlowId flow, net::NodeId remote,
                                     std::size_t adapter_index) {
  tcp::Endpoint::Hooks hooks;
  hooks.kernel = kernel_.get();
  hooks.local_node = node_;
  hooks.remote_node = remote;
  hooks.flow = flow;
  nic::Adapter* out = adapters_.at(adapter_index).get();
  hooks.emit = [this, out](const net::Packet& pkt) {
    auto rec = emit_rec_pool_.acquire();
    *rec = pkt;
    kernel_->segment_tx(pkt, [out, rec]() { out->transmit(*rec); });
  };
  auto [it, inserted] = endpoints_.emplace(
      flow, std::make_unique<tcp::Endpoint>(sim_, config, std::move(hooks)));
  if (trace_) it->second->set_trace(trace_);
  if (spans_) it->second->set_span_profiler(spans_);
  return *it->second;
}

void Host::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  kernel_->set_trace(sink, node_);
  for (auto& adapter : adapters_) adapter->set_trace(sink, node_);
  for (auto& [flow, ep] : endpoints_) ep->set_trace(sink);
}

void Host::set_span_profiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  kernel_->set_span_profiler(spans);
  for (auto& adapter : adapters_) adapter->set_span_profiler(spans);
  for (auto& [flow, ep] : endpoints_) ep->set_span_profiler(spans);
}

void Host::register_metrics(obs::Registry& reg,
                            const std::string& prefix) const {
  kernel_->register_metrics(reg, prefix + "/kernel");
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    adapters_[i]->register_metrics(reg, prefix + "/nic" + std::to_string(i));
  }
  // Unordered-map iteration order is arbitrary, but paths are unique per
  // flow and the registry sorts by path, so snapshots stay deterministic.
  for (const auto& [flow, ep] : endpoints_) {
    ep->register_metrics(reg, prefix + "/tcp/flow" + std::to_string(flow));
  }
  fault::register_metrics(reg, prefix + "/host_fault", host_faults_);
  reg.counter(prefix + "/frames_demuxed", [this] { return frames_demuxed_; });
  reg.counter(prefix + "/frames_unclaimed",
              [this] { return frames_unclaimed_; });
}

void Host::raw_transmit(const net::Packet& pkt, std::size_t adapter_index) {
  adapters_.at(adapter_index)->transmit(pkt);
}

void Host::demux(const net::Packet& pkt) {
  ++frames_demuxed_;
  if (packet_tap) packet_tap(pkt);
  if (pkt.protocol == net::Protocol::kTcp) {
    const auto it = endpoints_.find(pkt.flow);
    if (it != endpoints_.end()) {
      it->second->on_packet(pkt);
    } else {
      ++frames_unclaimed_;
    }
    return;
  }
  if (raw_sink) {
    raw_sink(pkt);
  } else {
    ++frames_unclaimed_;
  }
}

std::uint64_t Host::sockbuf_drops() const {
  std::uint64_t drops = 0;
  for (const auto& [flow, ep] : endpoints_) {
    drops += ep->stats().rcv_buffer_drops;
  }
  return drops;
}

}  // namespace xgbe::core

#include "core/host.hpp"

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace xgbe::core {

Host::Host(sim::Simulator& simulator, const hw::SystemSpec& system,
           const TuningProfile& tuning, const nic::AdapterSpec& adapter,
           net::NodeId node, std::string name)
    : sim_(simulator),
      name_(std::move(name)),
      node_(node),
      system_(system),
      tuning_(tuning) {
  os::KernelConfig kc;
  kc.mode = tuning.kernel;
  kc.rx_api = tuning.rx_api;
  kc.rcvbuf_bytes = tuning.rcvbuf;
  kc.sndbuf_bytes = tuning.sndbuf;
  kc.txqueuelen = tuning.txqueuelen;
  kc.header_splitting = tuning.header_splitting;
  kernel_ = std::make_unique<os::Kernel>(simulator, system_, kc);
  kernel_->set_host_faults(&host_faults_);
  add_adapter(adapter);
}

std::size_t Host::add_adapter(const nic::AdapterSpec& spec) {
  nic::AdapterSpec s = spec;
  s.intr_delay = tuning_.intr_delay;
  s.csum_offload = spec.csum_offload && tuning_.csum_offload;
  s.on_mch = s.on_mch || tuning_.adapter_on_mch;
  s.rx_corruption_rate = tuning_.rx_corruption_rate;
  const std::uint32_t mmrbc =
      tuning_.mmrbc != 0 ? tuning_.mmrbc : system_.default_mmrbc;
  const std::size_t index = adapters_.size();
  adapters_.push_back(std::make_unique<nic::Adapter>(
      sim_, s, system_.pcix, system_.memory, mmrbc, kernel_->membus(),
      name_ + "/eth" + std::to_string(index)));
  nic::Adapter* raw = adapters_.back().get();
  raw->set_host_faults(&host_faults_);
  if (trace_) raw->set_trace(trace_, node_);
  if (spans_) raw->set_span_profiler(spans_);
  raw->set_rx_handler([this, raw](net::PacketBatch batch) {
    kernel_->rx_interrupt(std::move(batch), raw->spec().csum_offload,
                          [this](const net::Packet& pkt) { demux(pkt); });
  });
  return index;
}

tcp::EndpointConfig Host::endpoint_config() const {
  tcp::EndpointConfig c;
  c.mtu = tuning_.mtu;
  c.timestamps = tuning_.timestamps;
  c.rcvbuf = tuning_.rcvbuf;
  c.sndbuf = tuning_.sndbuf;
  c.tso = tuning_.tso;
  c.cc = tuning_.cc;
  c.ecn = tuning_.ecn;
  return c;
}

tcp::Endpoint& Host::create_endpoint(const tcp::EndpointConfig& config,
                                     net::FlowId flow, net::NodeId remote,
                                     std::size_t adapter_index) {
  tcp::Endpoint::Hooks hooks;
  hooks.kernel = kernel_.get();
  hooks.local_node = node_;
  hooks.remote_node = remote;
  hooks.flow = flow;
  nic::Adapter* out = adapters_.at(adapter_index).get();
  hooks.emit = [this, out](const net::Packet& pkt) {
    auto rec = emit_rec_pool_.acquire();
    *rec = pkt;
    kernel_->segment_tx(pkt, [out, rec]() { out->transmit(*rec); });
  };
  endpoints_.push_back(EndpointSlot{
      remote, flow,
      std::make_unique<tcp::Endpoint>(sim_, config, std::move(hooks))});
  tcp::Endpoint* ep = endpoints_.back().ep.get();
  if (conn_table_.insert(remote, flow, ep)) {
    ++conn_opens_;
    ep->set_close_hook([this, remote, flow, ep]() {
      if (conn_table_.erase(remote, flow, ep)) ++conn_closes_;
    });
  }
  if (trace_) ep->set_trace(trace_);
  if (spans_) ep->set_span_profiler(spans_);
  return *ep;
}

tcp::Listener& Host::listen(const tcp::ListenerConfig& config,
                            const tcp::EndpointConfig& ep_config,
                            std::size_t adapter_index) {
  tcp::Listener::Hooks hooks;
  hooks.make_endpoint = [this, ep_config,
                         adapter_index](net::NodeId remote,
                                        net::FlowId flow) -> tcp::Endpoint& {
    return create_endpoint(ep_config, flow, remote, adapter_index);
  };
  hooks.send_rst = [this, adapter_index](const net::Packet& pkt) {
    send_rst_for(pkt, adapter_index);
  };
  // Retire (never destroy) a replaced listener: a Registry armed before a
  // re-listen holds probe closures over the old listener's counters, and a
  // scraper can fire them at any later boundary. Listeners schedule no
  // events and hold no pool handles, so parking them is free; retired
  // listeners keep their counters but are not re-registered.
  if (listener_) retired_listeners_.push_back(std::move(listener_));
  listener_ = std::make_unique<tcp::Listener>(sim_, config, std::move(hooks));
  if (trace_) listener_->set_trace(trace_);
  lifecycle_metrics_ = true;
  return *listener_;
}

void Host::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  kernel_->set_trace(sink, node_);
  for (auto& adapter : adapters_) adapter->set_trace(sink, node_);
  for (auto& slot : endpoints_) slot.ep->set_trace(sink);
  if (listener_) listener_->set_trace(sink);
}

void Host::set_span_profiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  kernel_->set_span_profiler(spans);
  for (auto& adapter : adapters_) adapter->set_span_profiler(spans);
  for (auto& slot : endpoints_) slot.ep->set_span_profiler(spans);
}

void Host::register_metrics(obs::Registry& reg,
                            const std::string& prefix) const {
  kernel_->register_metrics(reg, prefix + "/kernel");
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    adapters_[i]->register_metrics(reg, prefix + "/nic" + std::to_string(i));
  }
  // Paths are unique per flow and the registry sorts by path, so snapshots
  // stay deterministic regardless of creation order.
  for (const auto& slot : endpoints_) {
    const std::string ep_prefix =
        prefix + "/tcp/flow" + std::to_string(slot.flow);
    slot.ep->register_metrics(reg, ep_prefix);
    if (lifecycle_metrics_) slot.ep->register_lifecycle_metrics(reg, ep_prefix);
  }
  if (lifecycle_metrics_) {
    reg.counter(prefix + "/conn_opens", [this] { return conn_opens_; });
    reg.counter(prefix + "/conn_closes", [this] { return conn_closes_; });
    reg.counter(prefix + "/rsts_unmatched", [this] { return rsts_sent_; });
    reg.gauge(prefix + "/connections",
              [this] { return static_cast<double>(conn_table_.size()); });
  }
  if (listener_) listener_->register_metrics(reg, prefix + "/listener");
  fault::register_metrics(reg, prefix + "/host_fault", host_faults_);
  reg.counter(prefix + "/frames_demuxed", [this] { return frames_demuxed_; });
  reg.counter(prefix + "/frames_unclaimed",
              [this] { return frames_unclaimed_; });
}

void Host::raw_transmit(const net::Packet& pkt, std::size_t adapter_index) {
  adapters_.at(adapter_index)->transmit(pkt);
}

void Host::send_rst_for(const net::Packet& in, std::size_t adapter_index) {
  // RFC 793 reset for a segment matching no connection: echo the ACK as our
  // sequence when it carried one, otherwise acknowledge the whole segment.
  net::Packet pkt;
  pkt.protocol = net::Protocol::kTcp;
  pkt.flow = in.flow;
  pkt.src = node_;
  pkt.dst = in.src;
  pkt.frame_bytes = net::tcp_frame_bytes(0, false);
  pkt.created_at = sim_.now();
  pkt.tcp.flags.rst = true;
  if (in.tcp.flags.ack) {
    pkt.tcp.seq = in.tcp.ack;
  } else {
    pkt.tcp.flags.ack = true;
    pkt.tcp.ack = in.tcp.seq + in.payload_bytes +
                  (in.tcp.flags.syn ? 1 : 0) + (in.tcp.flags.fin ? 1 : 0);
  }
  ++rsts_sent_;
  if (trace_) {
    trace_->record_packet(obs::EventType::kRst, sim_.now(), pkt, "host",
                          "no-connection");
  }
  nic::Adapter* out = adapters_.at(adapter_index).get();
  auto rec = emit_rec_pool_.acquire();
  *rec = pkt;
  kernel_->segment_tx(pkt, [out, rec]() { out->transmit(*rec); });
}

void Host::demux(const net::Packet& pkt) {
  ++frames_demuxed_;
  if (packet_tap) packet_tap(pkt);
  if (pkt.protocol == net::Protocol::kTcp) {
    if (tcp::Endpoint* ep = conn_table_.find(pkt.src, pkt.flow)) {
      ep->on_packet(pkt);
      return;
    }
    if (listener_ != nullptr && pkt.tcp.flags.syn && !pkt.tcp.flags.ack &&
        !pkt.tcp.flags.rst) {
      listener_->on_syn(pkt);
      return;
    }
    ++frames_unclaimed_;
    // Live segments to a dead or unknown connection earn a RST so the
    // peer's retransmissions die quickly; RSTs are never answered.
    if (!pkt.tcp.flags.rst) send_rst_for(pkt);
    return;
  }
  if (raw_sink) {
    raw_sink(pkt);
  } else {
    ++frames_unclaimed_;
  }
}

std::string Host::lifecycle_violation(sim::SimTime now) const {
  if (conn_table_.size() != conn_opens_ - conn_closes_) {
    return name_ + ": connection table holds " +
           std::to_string(conn_table_.size()) + " entries, expected opens " +
           std::to_string(conn_opens_) + " - closes " +
           std::to_string(conn_closes_);
  }
  for (const auto& slot : endpoints_) {
    const std::string stuck = slot.ep->stuck_violation(now);
    if (!stuck.empty()) {
      return name_ + "/flow" + std::to_string(slot.flow) + ": " + stuck;
    }
  }
  return {};
}

std::uint64_t Host::sockbuf_drops() const {
  std::uint64_t drops = 0;
  for (const auto& slot : endpoints_) {
    drops += slot.ep->stats().rcv_buffer_drops;
  }
  return drops;
}

}  // namespace xgbe::core

// Socket buffer accounting (Linux 2.4 semantics).
#pragma once

#include <cstdint>

#include "os/kmalloc.hpp"

namespace xgbe::os {

/// Receive-side socket memory accounting.
///
/// The limit (`rcvbuf`) is charged in truesize, not payload bytes, so the
/// power-of-2 rounding of large-MTU frames silently shrinks the usable
/// window. The advertised window derives from the free space scaled by
/// tcp_adv_win_scale (Linux reserves 1/4 of the space for metadata overhead).
class RxSocketBuffer {
 public:
  explicit RxSocketBuffer(std::uint32_t rcvbuf_bytes)
      : rcvbuf_(rcvbuf_bytes) {}

  /// Charges one received frame. Returns false (and charges nothing) if the
  /// allocation would exceed the hard limit — the kernel drops the packet.
  bool charge_frame(std::uint32_t frame_bytes, std::uint32_t payload_bytes);

  /// Releases accounting for `payload_bytes` consumed by the application.
  /// Frees proportional truesize (skbs are freed as their payload is read).
  void release_payload(std::uint32_t payload_bytes);

  std::uint32_t rcvbuf() const { return rcvbuf_; }
  std::uint32_t rmem_alloc() const { return rmem_alloc_; }
  std::uint32_t payload_queued() const { return payload_queued_; }

  /// Free space available for new allocations (truesize terms).
  std::uint32_t free_space() const {
    return rmem_alloc_ >= rcvbuf_ ? 0 : rcvbuf_ - rmem_alloc_;
  }

  /// Window-eligible space: Linux reserves 1/(2^tcp_adv_win_scale) of the
  /// buffer for overhead; the 2.4 default of 2 yields 3/4 of free space.
  std::uint32_t window_space(int adv_win_scale = 2) const {
    const std::uint32_t f = free_space();
    return f - (f >> adv_win_scale);
  }

  /// Largest window the whole (empty) buffer could ever advertise.
  std::uint32_t full_window_space(int adv_win_scale = 2) const {
    return rcvbuf_ - (rcvbuf_ >> adv_win_scale);
  }

  std::uint64_t drops() const { return drops_; }

 private:
  std::uint32_t rcvbuf_;
  std::uint32_t rmem_alloc_ = 0;
  std::uint32_t payload_queued_ = 0;
  // Sum of truesize per payload byte currently queued; lets release_payload
  // uncharge exactly even when frame sizes vary.
  double truesize_per_payload_ = 0.0;
  std::uint64_t drops_ = 0;
};

/// Transmit-side accounting: payload bytes queued but not yet acknowledged,
/// bounded by the send-buffer size. Charged in truesize as well (Linux
/// charges wmem in truesize), using the block the tx path allocates.
class TxSocketBuffer {
 public:
  explicit TxSocketBuffer(std::uint32_t sndbuf_bytes)
      : sndbuf_(sndbuf_bytes) {}

  /// Space available for an application write, in payload bytes, assuming
  /// segments of roughly `frame_bytes` frames carrying `payload` each.
  std::uint32_t writable_payload(std::uint32_t frame_bytes,
                                 std::uint32_t payload) const;

  void charge(std::uint32_t truesize) { wmem_alloc_ += truesize; }
  void release(std::uint32_t truesize) {
    wmem_alloc_ = wmem_alloc_ > truesize ? wmem_alloc_ - truesize : 0;
  }

  std::uint32_t sndbuf() const { return sndbuf_; }
  std::uint32_t wmem_alloc() const { return wmem_alloc_; }
  bool full() const { return wmem_alloc_ >= sndbuf_; }

 private:
  std::uint32_t sndbuf_;
  std::uint32_t wmem_alloc_ = 0;
};

}  // namespace xgbe::os

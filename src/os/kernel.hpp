// Kernel runtime model: where TX/RX path costs are charged to host resources.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/host_fault.hpp"
#include "hw/system.hpp"
#include "net/packet.hpp"
#include "os/config.hpp"
#include "os/costs.hpp"
#include "sim/pool.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class Registry;
class SpanProfiler;
class TraceSink;
}

namespace xgbe::os {

/// Per-host kernel model.
///
/// Owns the host's CPU and memory-bus resources and charges the Linux 2.4
/// network path costs to them: syscalls and copies in process context on the
/// "app" CPU, interrupt and protocol processing on the IRQ CPU (the P4 Xeon
/// SMP kernel of the paper pins all NIC interrupts to a single CPU), with
/// the SMP kernel paying a locking/cache-bouncing multiplier. The
/// continuation-passing style keeps control flow inside the discrete-event
/// simulation: each method charges resource time and invokes the callback
/// when the modeled work completes.
class Kernel {
 public:
  // Completion continuations ride the event hot path, so they use the
  // simulator's allocation-free callback type; Deliver is invoked once per
  // packet through a shared copy and stays a std::function.
  using Done = sim::InlineCallback;
  using Deliver = std::function<void(const net::Packet&)>;

  Kernel(sim::Simulator& simulator, const hw::SystemSpec& spec,
         const KernelConfig& config);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Transmit path -------------------------------------------------------
  /// Application write entering the socket: syscall + skb allocations +
  /// copy_from_user of `payload_bytes` (split across `nsegs` segments of
  /// data blocks sized `seg_block_bytes` each).
  void app_write(std::uint64_t payload_bytes, int nsegs,
                 std::uint32_t seg_block_bytes, Done done);

  /// Per-segment TCP/IP transmit work ending with the doorbell PIO; `emit`
  /// runs when the segment has been handed to the adapter.
  void segment_tx(const net::Packet& pkt, Done emit);

  // --- Receive path --------------------------------------------------------
  /// Handles one NIC interrupt carrying `pkts` (already DMA'd to memory).
  /// `deliver` is invoked per packet once protocol processing finishes.
  /// `csum_offloaded` reflects the adapter's receive-checksum capability.
  /// The pooled-handle form is the adapter's hot path: per-packet
  /// continuations share the batch handle and a pooled Deliver copy, so an
  /// interrupt costs zero allocations in steady state.
  void rx_interrupt(net::PacketBatch pkts, bool csum_offloaded,
                    Deliver deliver);

  /// Convenience overload for direct callers (unit tests, tools): wraps the
  /// vector in a pooled batch.
  void rx_interrupt(std::vector<net::Packet> pkts, bool csum_offloaded,
                    Deliver deliver);

  /// Application read: syscall + copy_to_user of `payload_bytes`.
  void app_read(std::uint64_t payload_bytes, Done done);

  // --- Resources & reporting ----------------------------------------------
  sim::Resource& membus() { return membus_; }
  sim::Resource& irq_cpu() { return *cpus_.front(); }
  sim::Resource& app_cpu();

  /// Number of CPUs the kernel actually uses (1 for the UP kernel).
  int active_cpus() const;

  /// Approximates /proc/loadavg over the current window: utilization of the
  /// busiest CPU the kernel uses.
  double cpu_load() const;
  void mark_load_window();

  /// Frames dropped because the software checksum caught corruption.
  std::uint64_t csum_drops() const { return csum_drops_; }

  /// Arms (or clears) the host-path fault injector shared with the host's
  /// adapters. The kernel consults it for skb-allocation failures and
  /// scheduler pauses; null or inactive means zero behavioral change.
  void set_host_faults(fault::HostFaultInjector* injector) {
    host_faults_ = injector;
  }

  const KernelCosts& costs() const { return costs_; }
  const KernelConfig& config() const { return config_; }
  const hw::SystemSpec& system() const { return spec_; }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink: receive-path frame discards (failed skb
  /// allocation, software-checksum rejection) emit kSegDrop events tagged
  /// with this host's node id.
  void set_trace(obs::TraceSink* sink, net::NodeId node) {
    trace_ = sink;
    trace_node_ = node;
  }

  /// Registers checksum-drop and CPU-load probes under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler so receive-path discards abort their journeys.
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

  /// Schedules `done` when both a CPU job and a memory-bus job complete;
  /// models a memcpy occupying core and bus simultaneously.
  void copy_job(sim::Resource& cpu, sim::SimTime cpu_cost,
                sim::SimTime bus_cost, Done done);

 private:
  double mode_factor() const { return costs_.mode_factor(config_.mode); }
  sim::SimTime per_packet_rx_cost(const net::Packet& pkt,
                                  bool csum_offloaded) const;
  bool host_faults_active() const {
    return host_faults_ != nullptr && host_faults_->active();
  }

  /// Fan-in join for copy_job: one pooled record replaces the two
  /// make_shared allocations the old implementation paid per copy.
  struct CopyJoin {
    int remaining = 0;
    Done done;
  };

  sim::Simulator& sim_;
  hw::SystemSpec spec_;
  KernelConfig config_;
  KernelCosts costs_;
  sim::Resource membus_;
  std::vector<std::unique_ptr<sim::Resource>> cpus_;
  sim::Pool<CopyJoin> join_pool_;
  sim::Pool<Deliver> deliver_pool_;
  net::PacketBatchPool batch_pool_;  // for the vector convenience overload
  std::uint64_t csum_drops_ = 0;
  fault::HostFaultInjector* host_faults_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  net::NodeId trace_node_ = net::kInvalidNode;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::os

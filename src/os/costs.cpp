#include "os/costs.hpp"

namespace xgbe::os {

KernelCosts KernelCosts::scaled_for(const hw::SystemSpec& spec) {
  const double cpu = spec.cpu_scale();
  const double fsb = spec.fsb_scale();

  KernelCosts c{};
  // CPU-bound costs (scale with clock speed).
  c.syscall = sim::usec_f(0.45 * cpu);
  c.skb_alloc = sim::usec_f(0.30 * cpu);
  c.skb_alloc_order = sim::usec_f(0.22 * cpu);
  c.tx_proto = sim::usec_f(0.55 * cpu);
  c.tx_driver = sim::usec_f(0.30 * cpu);
  c.rx_queue_oldapi = sim::usec_f(0.45 * cpu);
  c.rx_poll_napi = sim::usec_f(0.18 * cpu);
  c.rx_proto = sim::usec_f(0.90 * cpu);
  c.ack_rx = sim::usec_f(0.55 * cpu);
  c.timestamp_extra = sim::usec_f(0.10 * cpu);
  c.csum_per_byte = sim::psec(static_cast<std::int64_t>(450.0 * cpu));
  // FSB/device-bound costs (uncached accesses, cacheline transfers).
  c.doorbell = sim::usec_f(0.25 * fsb);
  c.irq_entry = sim::usec_f(0.90 * fsb);
  c.smp_bounce = sim::usec_f(1.00 * fsb);
  c.wakeup = sim::usec_f(4.40 * (0.4 * cpu + 0.6 * fsb));
  c.smp_factor = 1.60;
  // Memory-path penalties shrink with FSB speed.
  c.rx_copy_factor = 1.0 + 0.50 * fsb;
  c.tx_copy_factor = 1.0 + 0.15 * fsb;
  c.alloc_ghost_factor = 1.0 * fsb * fsb;
  if (c.alloc_ghost_factor > 1.0) c.alloc_ghost_factor = 1.0;
  return c;
}

}  // namespace xgbe::os

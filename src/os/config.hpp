// Kernel configuration knobs (the sysctl/boot-time switches the paper turns).
#pragma once

#include <cstdint>

namespace xgbe::os {

enum class KernelMode : std::uint8_t {
  kSmp,          // SMP kernel: NIC interrupts pinned to CPU0, locking costs
  kUniprocessor  // UP kernel: single CPU, no SMP overheads (§3.3)
};

enum class RxApi : std::uint8_t {
  kOldApi,  // each packet queued separately in interrupt context
  kNapi     // interrupt only flags work; packets polled outside irq context
};

struct KernelConfig {
  KernelMode mode = KernelMode::kSmp;
  RxApi rx_api = RxApi::kOldApi;
  /// Socket buffer sizes (sysctl net.ipv4.tcp_rmem[1] / tcp_wmem[1]).
  /// Defaults are the Linux 2.4 values: 87380 rcvbuf yields the 64 KB
  /// default window the paper mentions once the 1/4 overhead share is taken.
  std::uint32_t rcvbuf_bytes = 87380;
  std::uint32_t sndbuf_bytes = 65536;
  /// Device transmit queue length (ifconfig txqueuelen), packets.
  std::uint32_t txqueuelen = 100;
  /// Header-splitting / direct data placement (the paper's §3.5.3 proposal:
  /// an aLAST-style engine, or RDMA-over-IP / RDDP): the adapter places
  /// payloads directly into application memory and hands only headers to
  /// the kernel, eliminating the socket copies on both paths.
  bool header_splitting = false;
};

}  // namespace xgbe::os

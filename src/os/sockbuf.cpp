#include "os/sockbuf.hpp"

namespace xgbe::os {

bool RxSocketBuffer::charge_frame(std::uint32_t frame_bytes,
                                  std::uint32_t payload_bytes) {
  const std::uint32_t truesize = skb_truesize(frame_bytes);
  // Data inside the advertised window must not be dropped just because
  // power-of-2 rounding made truesize overshoot rcvbuf: Linux prunes and
  // collapses the receive queue (tcp_prune_queue) to compact memory, and
  // only drops once genuinely out of space. The window computation is
  // already zero once rmem_alloc reaches rcvbuf, which bounds the
  // overshoot; 2x is the tcp_rmem pressure ceiling.
  if (rmem_alloc_ > 2 * rcvbuf_) {
    ++drops_;
    return false;
  }
  rmem_alloc_ += truesize;
  if (payload_bytes > 0) {
    const double total_ts =
        truesize_per_payload_ * payload_queued_ + truesize;
    payload_queued_ += payload_bytes;
    truesize_per_payload_ = total_ts / payload_queued_;
  } else {
    // Pure control segment: freed immediately after processing.
    rmem_alloc_ -= truesize;
  }
  return true;
}

void RxSocketBuffer::release_payload(std::uint32_t payload_bytes) {
  if (payload_bytes > payload_queued_) payload_bytes = payload_queued_;
  const auto release_ts = static_cast<std::uint32_t>(
      truesize_per_payload_ * static_cast<double>(payload_bytes) + 0.5);
  rmem_alloc_ = rmem_alloc_ > release_ts ? rmem_alloc_ - release_ts : 0;
  payload_queued_ -= payload_bytes;
  if (payload_queued_ == 0) {
    rmem_alloc_ = 0;  // avoid rounding residue once drained
    truesize_per_payload_ = 0.0;
  }
}

std::uint32_t TxSocketBuffer::writable_payload(std::uint32_t frame_bytes,
                                               std::uint32_t payload) const {
  if (full() || payload == 0) return 0;
  const std::uint32_t free_ts = sndbuf_ - wmem_alloc_;
  const std::uint32_t per_seg = skb_truesize(frame_bytes);
  const std::uint32_t segs = free_ts / per_seg;
  return segs * payload;
}

}  // namespace xgbe::os

// Kernel path cost model.
//
// Base constants are calibrated to the 2.2 GHz / 400 MHz-FSB Dell PE2650 and
// scaled per SystemSpec: CPU-bound costs with clock speed, device/cacheline
// costs with FSB speed. MAGNET-style per-packet profiling in the paper is
// the empirical counterpart of this table.
#pragma once

#include "hw/system.hpp"
#include "os/config.hpp"
#include "sim/time.hpp"

namespace xgbe::os {

struct KernelCosts {
  sim::SimTime syscall;          // send()/recv() entry + exit
  sim::SimTime skb_alloc;        // allocate + prime one skb
  sim::SimTime skb_alloc_order;  // extra cost per block-size doubling >4 KB
  sim::SimTime wakeup;           // scheduler wakeup of a sleeping reader
  sim::SimTime tx_proto;         // TCP/IP transmit work per segment
  sim::SimTime tx_driver;        // driver xmit + descriptor setup
  sim::SimTime doorbell;         // uncached PIO write to the NIC (FSB-bound)
  sim::SimTime irq_entry;        // interrupt entry/exit (FSB-bound)
  sim::SimTime rx_queue_oldapi;  // per packet queued in irq context
  sim::SimTime rx_poll_napi;     // per packet polled outside irq context
  sim::SimTime rx_proto;         // TCP/IP receive work per data segment
  sim::SimTime ack_rx;           // processing a pure ACK at the sender
  sim::SimTime timestamp_extra;  // per segment when timestamps are on
  sim::SimTime csum_per_byte;    // software checksum when offload disabled
  sim::SimTime smp_bounce;       // cacheline bouncing per packet (SMP only)
  double smp_factor;             // multiplier on kernel costs (SMP kernel)
  /// Copying cold (just-DMA'd) data runs slower than a STREAM copy; the
  /// penalty shrinks with FSB speed (bus turnaround dominated).
  double rx_copy_factor;
  /// Transmit copies read a warm user buffer; small penalty.
  double tx_copy_factor;
  /// Fraction of the power-of-2 allocation slack that turns into memory-bus
  /// traffic (allocator stress + write-allocate on oversized blocks).
  double alloc_ghost_factor;

  /// Builds the cost table for a host, applying clock and FSB scaling.
  static KernelCosts scaled_for(const hw::SystemSpec& spec);

  /// CPU cost of allocating one data block of `block_bytes` (power-of-2
  /// rounding included by the caller): the buddy/slab work grows with the
  /// block order — the paper's "far greater stress on the kernel's
  /// memory-allocation subsystem" (§3.3).
  sim::SimTime alloc_cost(std::uint32_t block_bytes) const {
    sim::SimTime c = skb_alloc;
    for (std::uint32_t b = 8192; b <= block_bytes; b <<= 1) {
      c += skb_alloc_order;
    }
    return c;
  }

  /// Multiplier in effect for a given kernel mode.
  double mode_factor(KernelMode mode) const {
    return mode == KernelMode::kSmp ? smp_factor : 1.0;
  }
};

}  // namespace xgbe::os

// Linux 2.4-style kmalloc size classes and skb truesize accounting.
//
// The kernel allocates packet data buffers from pools of power-of-2 sized
// blocks. A 9000-byte-MTU frame therefore lands in a 16384-byte block,
// wasting ~7 KB; an 8160-byte MTU lets the whole frame (payload + TCP/IP +
// Ethernet headers) fit an 8192-byte block. Socket receive-buffer limits are
// charged in *truesize* (block + sk_buff struct), which is the mechanism
// behind the paper's throughput dips (§3.3, §3.5.1) and the 8160-byte-MTU
// optimization (Fig 5).
#pragma once

#include <cstdint>

namespace xgbe::os {

/// Smallest and largest general-purpose kmalloc caches in Linux 2.4.
inline constexpr std::uint32_t kKmallocMinBlock = 32;
inline constexpr std::uint32_t kKmallocMaxBlock = 131072;

/// Slack the driver adds when sizing the skb data area (alignment padding
/// plus shared-info tail in later kernels; 16 bytes in the 2.4 e1000-class
/// drivers this models).
inline constexpr std::uint32_t kSkbDataPad = 16;

/// Size of struct sk_buff charged to the socket on top of the data block.
inline constexpr std::uint32_t kSkbStructBytes = 160;

/// Rounds `size` up to the kmalloc block that would satisfy it.
constexpr std::uint32_t kmalloc_block(std::uint32_t size) {
  std::uint32_t block = kKmallocMinBlock;
  while (block < size && block < kKmallocMaxBlock) block <<= 1;
  return block;
}

/// Data block backing a received frame of `frame_bytes` (Ethernet header
/// through CRC).
constexpr std::uint32_t rx_data_block(std::uint32_t frame_bytes) {
  return kmalloc_block(frame_bytes + kSkbDataPad);
}

/// truesize charged against the socket receive buffer for one frame.
constexpr std::uint32_t skb_truesize(std::uint32_t frame_bytes) {
  return rx_data_block(frame_bytes) + kSkbStructBytes;
}

/// Bytes wasted (allocated but unused) by the power-of-2 rounding.
constexpr std::uint32_t rx_alloc_waste(std::uint32_t frame_bytes) {
  return rx_data_block(frame_bytes) - (frame_bytes + kSkbDataPad);
}

}  // namespace xgbe::os

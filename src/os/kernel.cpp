#include "os/kernel.hpp"

#include <algorithm>

#include "hw/memory.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "os/kmalloc.hpp"

namespace xgbe::os {

Kernel::Kernel(sim::Simulator& simulator, const hw::SystemSpec& spec,
               const KernelConfig& config)
    : sim_(simulator),
      spec_(spec),
      config_(config),
      costs_(KernelCosts::scaled_for(spec)),
      membus_(simulator, spec.name + "/membus") {
  const int ncpus =
      config_.mode == KernelMode::kUniprocessor ? 1 : spec_.cpu_count;
  cpus_.reserve(static_cast<std::size_t>(ncpus));
  for (int i = 0; i < ncpus; ++i) {
    cpus_.push_back(std::make_unique<sim::Resource>(
        simulator, spec.name + "/cpu" + std::to_string(i)));
  }
}

sim::Resource& Kernel::app_cpu() {
  // On an SMP kernel the benchmark process runs away from the IRQ CPU;
  // the UP kernel has only one CPU for everything.
  return cpus_.size() > 1 ? *cpus_[1] : *cpus_[0];
}

int Kernel::active_cpus() const { return static_cast<int>(cpus_.size()); }

void Kernel::copy_job(sim::Resource& cpu, sim::SimTime cpu_cost,
                      sim::SimTime bus_cost, Done done) {
  auto join = join_pool_.acquire();
  join->remaining = 2;
  join->done = std::move(done);
  auto arm = [join]() {
    if (--join->remaining == 0 && join->done) {
      join->done();
      join->done = nullptr;  // release captures now, not at node reuse
    }
  };
  cpu.submit(cpu_cost, arm);
  membus_.submit(bus_cost, std::move(arm));
}

void Kernel::app_write(std::uint64_t payload_bytes, int nsegs,
                       std::uint32_t seg_block_bytes, Done done) {
  if (host_faults_active()) {
    // A descheduled writer cannot enter the kernel until it runs again.
    const sim::SimTime resume = host_faults_->sched_resume_at(sim_.now());
    if (resume > sim_.now()) {
      host_faults_->count_sched_defer();
      sim_.schedule(resume - sim_.now(),
                    [this, payload_bytes, nsegs, seg_block_bytes,
                     done = std::move(done)]() mutable {
                      app_write(payload_bytes, nsegs, seg_block_bytes,
                                std::move(done));
                    });
      return;
    }
    // kmalloc under pressure: -ENOBUFS, the blocked writer backs off and
    // retries. Nothing is lost; the transfer just slows down.
    const std::uint32_t block =
        config_.header_splitting ? 256u : seg_block_bytes;
    if (host_faults_->alloc_fails(block, /*rx=*/false)) {
      sim_.schedule(host_faults_->plan().alloc_retry_backoff,
                    [this, payload_bytes, nsegs, seg_block_bytes,
                     done = std::move(done)]() mutable {
                      app_write(payload_bytes, nsegs, seg_block_bytes,
                                std::move(done));
                    });
      return;
    }
  }
  const double f = mode_factor();
  const auto nseg_t = static_cast<sim::SimTime>(std::max(nsegs, 1));
  if (config_.header_splitting) {
    // Zero-copy transmit: pin the user pages and build headers only; the
    // adapter DMAs payload straight from application memory.
    const auto fixed0 = static_cast<sim::SimTime>(
        static_cast<double>(costs_.syscall +
                            nseg_t * costs_.alloc_cost(256)) *
        f);
    app_cpu().submit(fixed0, std::move(done));
    return;
  }
  const sim::SimTime fixed = static_cast<sim::SimTime>(
      static_cast<double>(costs_.syscall +
                          nseg_t * costs_.alloc_cost(seg_block_bytes)) *
      f);
  const auto cpu_cost =
      fixed +
      static_cast<sim::SimTime>(
          static_cast<double>(hw::cpu_copy_time(spec_.memory, payload_bytes)) *
          costs_.tx_copy_factor);
  const auto bus_cost = static_cast<sim::SimTime>(
      static_cast<double>(hw::bus_time(spec_.memory, payload_bytes, 2)) *
      costs_.tx_copy_factor);
  copy_job(app_cpu(), cpu_cost, bus_cost, std::move(done));
}

void Kernel::segment_tx(const net::Packet& pkt, Done emit) {
  const double f = mode_factor();
  // Data segments go out from process context; pure ACKs are generated in
  // softirq context on the interrupt CPU (they must not queue behind the
  // reader's copy_to_user work) and carry no data to map or checksum.
  const bool softirq_ack =
      pkt.protocol == net::Protocol::kTcp && pkt.payload_bytes == 0;
  sim::SimTime cost =
      softirq_ack ? (costs_.tx_proto / 2 + costs_.tx_driver / 2 +
                     costs_.doorbell)
                  : (costs_.tx_proto + costs_.tx_driver + costs_.doorbell);
  if (pkt.tcp.timestamps) cost += costs_.timestamp_extra;
  cost = static_cast<sim::SimTime>(static_cast<double>(cost) * f);
  if (config_.mode == KernelMode::kSmp) cost += costs_.smp_bounce / 2;
  (softirq_ack ? irq_cpu() : app_cpu()).submit(cost, std::move(emit));
}

sim::SimTime Kernel::per_packet_rx_cost(const net::Packet& pkt,
                                        bool csum_offloaded) const {
  const double f = mode_factor();
  const bool pure_ack = pkt.payload_bytes == 0 && pkt.tcp.flags.ack &&
                        pkt.protocol == net::Protocol::kTcp;
  sim::SimTime cost = config_.rx_api == RxApi::kOldApi
                          ? costs_.rx_queue_oldapi
                          : costs_.rx_poll_napi;
  if (config_.header_splitting && !pure_ack) {
    // Direct data placement: the kernel touches only the header; the tiny
    // header skb comes from a small cache.
    cost += costs_.rx_proto / 2 + costs_.alloc_cost(256);
  } else {
    cost += pure_ack ? costs_.ack_rx : costs_.rx_proto;
    if (!pure_ack) {
      // Replacement skb allocation for the ring (power-of-2 block).
      cost += costs_.alloc_cost(kmalloc_block(pkt.frame_bytes + kSkbDataPad));
    }
  }
  if (pkt.tcp.timestamps) cost += costs_.timestamp_extra;
  if (!csum_offloaded && pkt.payload_bytes > 0) {
    cost += costs_.csum_per_byte *
            static_cast<sim::SimTime>(pkt.payload_bytes);
  }
  cost = static_cast<sim::SimTime>(static_cast<double>(cost) * f);
  if (config_.mode == KernelMode::kSmp) cost += costs_.smp_bounce;
  return cost;
}

void Kernel::rx_interrupt(std::vector<net::Packet> pkts, bool csum_offloaded,
                          Deliver deliver) {
  auto batch = batch_pool_.acquire();
  *batch = std::move(pkts);
  rx_interrupt(std::move(batch), csum_offloaded, std::move(deliver));
}

void Kernel::rx_interrupt(net::PacketBatch pkts, bool csum_offloaded,
                          Deliver deliver) {
  if (!pkts) return;
  // Interrupt entry/exit is mostly fixed hardware cost; the SMP kernel adds
  // only a mild penalty here (no shared socket state touched yet).
  const double entry_f = config_.mode == KernelMode::kSmp ? 1.2 : 1.0;
  const auto entry = static_cast<sim::SimTime>(
      static_cast<double>(costs_.irq_entry) * entry_f);
  irq_cpu().submit(entry);
  // Old API: all per-packet queueing happens in interrupt context, then
  // protocol processing follows on the same CPU (softirq affinity). NAPI
  // only schedules the poll from the interrupt; per-packet work is cheaper.
  // Either way the work serializes on the IRQ CPU, which is the point of
  // the paper's SMP observation. The per-packet continuations share the
  // pooled batch handle and a pooled Deliver copy (24 bytes of capture —
  // inline, no allocation), instead of the two make_shared the pre-pool
  // implementation paid per interrupt.
  const net::PacketBatch& shared = pkts;
  auto cb = deliver_pool_.acquire();
  *cb = std::move(deliver);
  for (std::size_t i = 0; i < shared->size(); ++i) {
    const net::Packet& pkt = (*shared)[i];
    // Host-path fault: no replacement skb for the ring slot — the driver
    // drops the frame and TCP retransmission recovers it. The failed
    // allocation attempt still burns IRQ-CPU time.
    if (host_faults_active() && pkt.payload_bytes > 0) {
      const std::uint32_t block =
          config_.header_splitting
              ? 256u
              : kmalloc_block(pkt.frame_bytes + kSkbDataPad);
      if (host_faults_->alloc_fails(block, /*rx=*/true)) {
        irq_cpu().submit(static_cast<sim::SimTime>(
            static_cast<double>(costs_.alloc_cost(block)) * mode_factor()));
        if (trace_) {
          trace_->record_packet(obs::EventType::kSegDrop, sim_.now(), pkt,
                                "kernel", "alloc-fail");
        }
        if (spans_) spans_->abort(pkt);
        continue;
      }
    }
    const sim::SimTime cost = per_packet_rx_cost(pkt, csum_offloaded);
    // Power-of-2 allocation slack becomes real memory-bus traffic
    // (allocator stress, write-allocate on oversized blocks): this is why
    // an 8160-byte MTU (8 KB block, no slack) outruns 9000 (16 KB block,
    // ~7 KB slack) in Fig 5.
    if (pkt.payload_bytes > 0 && !config_.header_splitting) {
      const std::uint32_t block = kmalloc_block(pkt.frame_bytes + kSkbDataPad);
      const std::uint32_t slack = block - (pkt.frame_bytes + kSkbDataPad);
      const auto ghost = static_cast<std::uint64_t>(
          static_cast<double>(slack) * costs_.alloc_ghost_factor);
      if (ghost > 0) membus_.submit(hw::bus_time(spec_.memory, ghost, 1));
    }
    // Software checksumming (done on the host, after the data crossed the
    // buses) catches in-host corruption; adapter-offloaded checksums were
    // verified before the damage happened and let it through (§3.5.3).
    if (!csum_offloaded && pkt.corrupted) {
      ++csum_drops_;
      irq_cpu().submit(cost);  // the verify work is still spent
      if (trace_) {
        trace_->record_packet(obs::EventType::kSegDrop, sim_.now(), pkt,
                              "kernel", "csum");
      }
      if (spans_) spans_->abort(pkt);
      continue;
    }
    irq_cpu().submit(cost, [shared, cb, i]() { (*cb)((*shared)[i]); });
  }
}

void Kernel::app_read(std::uint64_t payload_bytes, Done done) {
  if (host_faults_active()) {
    // A descheduled reader stops draining the socket: the receive buffer
    // fills, the advertised window closes, and the peer's persist probes
    // take over until the process runs again.
    const sim::SimTime resume = host_faults_->sched_resume_at(sim_.now());
    if (resume > sim_.now()) {
      host_faults_->count_sched_defer();
      sim_.schedule(resume - sim_.now(),
                    [this, payload_bytes, done = std::move(done)]() mutable {
                      app_read(payload_bytes, std::move(done));
                    });
      return;
    }
  }
  const double f = mode_factor();
  const auto fixed =
      static_cast<sim::SimTime>(static_cast<double>(costs_.syscall) * f);
  if (config_.header_splitting) {
    // Payload already sits in application memory; the read only returns.
    sim_.schedule(costs_.wakeup, [this, fixed, done = std::move(done)]() mutable {
      app_cpu().submit(fixed, std::move(done));
    });
    return;
  }
  const auto cpu_cost =
      fixed +
      static_cast<sim::SimTime>(
          static_cast<double>(hw::cpu_copy_time(spec_.memory, payload_bytes)) *
          costs_.rx_copy_factor);
  const auto bus_cost = static_cast<sim::SimTime>(
      static_cast<double>(hw::bus_time(spec_.memory, payload_bytes, 2)) *
      costs_.rx_copy_factor);
  // The blocked reader must first be woken and scheduled; that latency is
  // dead time, not CPU load.
  sim_.schedule(costs_.wakeup, [this, cpu_cost, bus_cost,
                                done = std::move(done)]() mutable {
    copy_job(app_cpu(), cpu_cost, bus_cost, std::move(done));
  });
}

double Kernel::cpu_load() const {
  double load = 0.0;
  for (const auto& cpu : cpus_) load = std::max(load, cpu->utilization());
  return load;
}

void Kernel::mark_load_window() {
  for (auto& cpu : cpus_) cpu->mark_window();
  membus_.mark_window();
}

void Kernel::register_metrics(obs::Registry& reg,
                              const std::string& prefix) const {
  reg.counter(prefix + "/csum_drops", [this] { return csum_drops_; });
  reg.gauge(prefix + "/cpu_load", [this] { return cpu_load(); });
}

}  // namespace xgbe::os

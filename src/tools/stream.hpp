// STREAM-style memory bandwidth probe: times large copies through the
// host's CPU + memory-bus resources (§3.2 uses STREAM to compare the
// PE2650, PE4600, and Intel E7505 memory subsystems).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"

namespace xgbe::tools {

struct StreamOptions {
  std::uint64_t array_bytes = 8 * 1024 * 1024;
  std::uint32_t iterations = 10;
};

struct StreamResult {
  double copy_bytes_per_sec = 0.0;
  double copy_gbps() const { return copy_bytes_per_sec * 8.0 / 1e9; }
};

/// Measures the simulated copy bandwidth on an otherwise idle host.
StreamResult run_stream(core::Testbed& tb, core::Host& host,
                        const StreamOptions& options = {});

}  // namespace xgbe::tools

#include "tools/pktgen.hpp"

#include <memory>

#include "net/headers.hpp"

namespace xgbe::tools {

PktgenResult run_pktgen(core::Testbed& tb, core::Host& sender,
                        core::Host& receiver, const PktgenOptions& options,
                        std::size_t adapter_index) {
  PktgenResult result;
  sim::Simulator& sim = tb.simulator();

  struct State {
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_payload = 0;
    std::uint64_t rx_wire = 0;
    std::uint64_t window_frames = 0;
    std::uint64_t window_payload = 0;
    std::uint64_t window_wire = 0;
    bool running = true;
  };
  auto st = std::make_shared<State>();

  receiver.raw_sink = [st](const net::Packet& pkt) {
    ++st->rx_frames;
    st->rx_payload += pkt.payload_bytes;
    st->rx_wire += pkt.wire_bytes();
  };

  net::Packet proto;
  proto.protocol = net::Protocol::kUdp;
  proto.src = sender.node();
  proto.dst = receiver.node();
  proto.payload_bytes = options.payload;
  proto.frame_bytes = net::udp_frame_bytes(options.payload);

  const sim::SimTime loop_cost = static_cast<sim::SimTime>(
      static_cast<double>(options.base_loop_cost) *
      sender.system().cpu_scale());
  nic::Adapter& nicdev = sender.adapter(adapter_index);
  os::Kernel& kernel = sender.kernel();

  // The pktgen loop runs as a kernel thread: pay the per-packet loop cost
  // on a CPU, then hand the frame to the driver. Throttle on the driver
  // queue so the loop self-paces to the bottleneck (bus or wire).
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [st, loop, &kernel, &nicdev, &sim, proto, loop_cost]() {
    if (!st->running) return;
    if (nicdev.tx_backlog() > 32) {
      sim.schedule(sim::usec(2), [loop]() { (*loop)(); });
      return;
    }
    kernel.app_cpu().submit(loop_cost, [st, loop, &nicdev, proto]() {
      if (!st->running) return;
      nicdev.transmit(proto);
      (*loop)();
    });
  };
  (*loop)();

  sim.run_until(sim.now() + options.warmup);
  st->window_frames = st->rx_frames;
  st->window_payload = st->rx_payload;
  st->window_wire = st->rx_wire;
  sender.mark_load_window();
  const sim::SimTime t0 = sim.now();
  sim.run_until(t0 + options.duration);
  const double secs = sim::to_seconds(sim.now() - t0);
  st->running = false;
  receiver.raw_sink = nullptr;
  *loop = nullptr;  // break the loop's self-reference cycle

  if (secs <= 0) return result;
  const std::uint64_t frames = st->rx_frames - st->window_frames;
  result.completed = frames > 0;
  result.frames = frames;
  result.packets_per_sec = static_cast<double>(frames) / secs;
  result.payload_bps =
      static_cast<double>(st->rx_payload - st->window_payload) * 8.0 / secs;
  result.throughput_bps =
      static_cast<double>(st->rx_wire - st->window_wire) * 8.0 / secs;
  result.sender_load = sender.cpu_load();
  return result;
}

}  // namespace xgbe::tools

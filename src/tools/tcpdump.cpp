#include "tools/tcpdump.hpp"

#include <cstdio>

namespace xgbe::tools {

std::string format_frame(sim::SimTime at, const net::Packet& pkt) {
  char buf[256];
  const double secs = sim::to_seconds(at);
  int n = std::snprintf(buf, sizeof(buf), "%12.6f %u > %u: ", secs, pkt.src,
                        pkt.dst);
  std::string line(buf, static_cast<std::size_t>(n));

  if (pkt.protocol == net::Protocol::kUdp) {
    std::snprintf(buf, sizeof(buf), "UDP, length %u", pkt.payload_bytes);
    return line + buf;
  }
  if (pkt.protocol == net::Protocol::kRaw) {
    std::snprintf(buf, sizeof(buf), "RAW, length %u", pkt.frame_bytes);
    return line + buf;
  }

  std::string flags;
  if (pkt.tcp.flags.syn) flags += 'S';
  if (pkt.tcp.flags.fin) flags += 'F';
  if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn && !pkt.tcp.flags.fin &&
      pkt.payload_bytes == 0) {
    flags += '.';
  } else if (pkt.tcp.flags.ack && (pkt.tcp.flags.syn || pkt.tcp.flags.fin)) {
    flags += '.';
  }
  if (pkt.tcp.push) flags += 'P';
  if (flags.empty()) flags = ".";
  line += "Flags [" + flags + "], ";

  if (pkt.payload_bytes > 0) {
    std::snprintf(buf, sizeof(buf), "seq %u:%u, ", pkt.tcp.seq,
                  pkt.tcp.seq + pkt.payload_bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "seq %u, ", pkt.tcp.seq);
  }
  line += buf;
  if (pkt.tcp.flags.ack) {
    std::snprintf(buf, sizeof(buf), "ack %u, ", pkt.tcp.ack);
    line += buf;
  }
  std::snprintf(buf, sizeof(buf), "win %u, ", pkt.tcp.window);
  line += buf;
  if (pkt.tcp.flags.syn) {
    std::snprintf(buf, sizeof(buf), "options [mss %u%s%s], ",
                  pkt.tcp.mss_option,
                  pkt.tcp.wscale_present ? ",wscale" : "",
                  pkt.tcp.timestamps ? ",TS" : "");
    line += buf;
  } else if (pkt.tcp.timestamps) {
    line += "options [TS], ";
  }
  if (pkt.tcp.is_retransmit) line += "retransmission, ";
  if (pkt.corrupted) line += "corrupt, ";
  std::snprintf(buf, sizeof(buf), "length %u", pkt.payload_bytes);
  line += buf;
  return line;
}

std::string fault_summary(const link::Link& wire) {
  const fault::FaultCounters c = wire.fault_counters();
  std::string line = wire.name() + ": " + fault::describe(c);
  if (wire.drops_queue() > 0) {
    line += ", " + std::to_string(wire.drops_queue()) + " queue drops";
  }
  const fault::FaultPlan& ab = wire.fault_injector(true).plan();
  if (ab.active()) line += " [plan: " + fault::describe(ab) + "]";
  return line;
}

std::unique_ptr<sim::Recorder> make_fault_recorder(sim::Simulator& simulator,
                                                   const link::Link& wire,
                                                   sim::SimTime interval) {
  auto rec = std::make_unique<sim::Recorder>(
      simulator, interval, [&wire]() {
        return static_cast<double>(wire.fault_counters().total_drops() +
                                   wire.drops_queue());
      });
  rec->start();
  return rec;
}

void Capture::attach(link::Link& wire) {
  wire.tap = [this](const net::Packet& pkt, bool) { on_frame(pkt); };
}

void Capture::detach(link::Link& wire) { wire.tap = nullptr; }

void Capture::on_frame(const net::Packet& pkt) {
  ++seen_;
  if (options_.filter && !options_.filter(pkt)) return;
  ++recorded_;
  lines_.push_back(format_frame(sim_.now(), pkt));
  while (lines_.size() > options_.max_lines) lines_.pop_front();
}

std::string Capture::text() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace xgbe::tools

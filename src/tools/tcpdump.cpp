#include "tools/tcpdump.hpp"

namespace xgbe::tools {

std::string format_wire_event(const obs::TraceEvent& ev) {
  std::string line;
  // node.flow > node.flow mirrors tcpdump's host.port notation: the flow id
  // plays the port pair, so the connection 4-tuple (src, dst, flow) is
  // readable off every line.
  obs::append_format(line, "%12.6f %u.%u > %u.%u: ", sim::to_seconds(ev.at),
                     ev.src, ev.flow, ev.dst, ev.flow);

  const auto proto = static_cast<net::Protocol>(ev.proto);
  if (proto == net::Protocol::kUdp) {
    obs::append_format(line, "UDP, length %u", ev.len);
  } else if (proto == net::Protocol::kRaw) {
    obs::append_format(line, "RAW, length %u", ev.wire_len);
  } else {
    const bool syn = (ev.flags & obs::kFlagSyn) != 0;
    const bool fin = (ev.flags & obs::kFlagFin) != 0;
    const bool rst = (ev.flags & obs::kFlagRst) != 0;
    const bool ack = (ev.flags & obs::kFlagAck) != 0;
    std::string flags;
    if (syn) flags += 'S';
    if (fin) flags += 'F';
    if (rst) flags += 'R';
    if (ack && !syn && !fin && !rst && ev.len == 0) {
      flags += '.';
    } else if (ack && (syn || fin || rst)) {
      flags += '.';
    }
    if ((ev.flags & obs::kFlagPush) != 0) flags += 'P';
    if (flags.empty()) flags = ".";
    line += "Flags [" + flags + "], ";

    if (ev.len > 0) {
      obs::append_format(line, "seq %u:%u, ", ev.seq, ev.seq + ev.len);
    } else {
      obs::append_format(line, "seq %u, ", ev.seq);
    }
    if (ack) obs::append_format(line, "ack %u, ", ev.ack);
    obs::append_format(line, "win %u, ", ev.window);
    if (syn) {
      obs::append_format(line, "options [mss %u%s%s], ",
                         static_cast<unsigned>(ev.mss),
                         (ev.flags & obs::kFlagWscale) != 0 ? ",wscale" : "",
                         (ev.flags & obs::kFlagTimestamps) != 0 ? ",TS" : "");
    } else if ((ev.flags & obs::kFlagTimestamps) != 0) {
      line += "options [TS], ";
    }
    if ((ev.flags & obs::kFlagRetransmit) != 0) line += "retransmission, ";
    if ((ev.flags & obs::kFlagCorrupt) != 0) line += "corrupt, ";
    obs::append_format(line, "length %u", ev.len);
  }

  if (ev.type == obs::EventType::kWireDrop) {
    obs::append_format(line, " ** dropped (%s)",
                       ev.detail != nullptr && *ev.detail != '\0'
                           ? ev.detail
                           : "unknown");
  }
  return line;
}

std::string format_frame(sim::SimTime at, const net::Packet& pkt) {
  return format_wire_event(
      obs::packet_event(obs::EventType::kWireTx, at, pkt));
}

std::string fault_summary(const link::Link& wire) {
  const fault::FaultCounters c = wire.fault_counters();
  std::string line = wire.name() + ": " + fault::describe(c);
  if (wire.drops_queue() > 0) {
    line += ", " + std::to_string(wire.drops_queue()) + " queue drops";
  }
  const fault::FaultPlan& ab = wire.fault_injector(true).plan();
  if (ab.active()) line += " [plan: " + fault::describe(ab) + "]";
  return line;
}

std::unique_ptr<sim::Recorder> make_fault_recorder(sim::Simulator& simulator,
                                                   const link::Link& wire,
                                                   sim::SimTime interval) {
  auto rec = std::make_unique<sim::Recorder>(
      simulator, interval, [&wire]() {
        return static_cast<double>(wire.fault_counters().total_drops() +
                                   wire.drops_queue());
      });
  rec->start();
  return rec;
}

Capture::Capture(sim::Simulator& simulator, const CaptureOptions& options)
    : sim_(simulator), options_(options), sink_(/*capacity=*/1) {
  sink_.filter = [this](const obs::TraceEvent& ev) {
    if (ev.type != obs::EventType::kWireTx &&
        ev.type != obs::EventType::kWireDrop) {
      return false;
    }
    ++seen_;
    if (options_.filter && !options_.filter(ev)) return false;
    ++recorded_;
    return true;
  };
  sink_.on_record = [this](const obs::TraceEvent& ev) {
    lines_.push_back(format_wire_event(ev));
    while (lines_.size() > options_.max_lines) lines_.pop_front();
  };
}

void Capture::attach(link::Link& wire) { wire.set_trace(&sink_); }

void Capture::detach(link::Link& wire) { wire.set_trace(nullptr); }

std::string Capture::text() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace xgbe::tools

// tcpdump-style wire capture (§3.2: "tcpdump is commonly available and used
// for analyzing protocols at the wire level" — the paper used it alongside
// MAGNET to diagnose the window/MSS pathologies of §3.5.1).
//
// A Capture is now a formatter over the observability trace: it owns an
// obs::TraceSink, arms it on a Link, and renders each wire event as one
// tcpdump-like line. Frames lost to fault injection appear with a
// " ** dropped (<cause>)" suffix — the old wire tap never saw the verdict.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "link/link.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"

namespace xgbe::tools {

struct CaptureOptions {
  /// Keep at most this many lines (oldest dropped first), like `tcpdump -c`
  /// but ring-buffered.
  std::size_t max_lines = 10000;
  /// Only record wire events matching this predicate (null = everything).
  std::function<bool(const obs::TraceEvent&)> filter;
};

/// Formats one wire event as a tcpdump-like line, e.g.
///   "12.345678 1 > 2: Flags [S], seq 100021, win 65535, options [mss 8960,wscale 0,TS], length 0"
///   "12.345901 1 > 2: Flags [.], seq 100022:109970, ack 200025, win 62636, length 8948"
/// kWireDrop events gain a trailing " ** dropped (<cause>)".
std::string format_wire_event(const obs::TraceEvent& ev);

/// Formats one frame directly (builds the trace event internally).
std::string format_frame(sim::SimTime at, const net::Packet& pkt);

/// One-line fault report for a link, `netstat -i`-style: the plan in force
/// plus cumulative per-cause counters (scripted injector + both directions
/// + queue tail drops). Bench output uses it to show *why* a lossy run
/// degraded.
std::string fault_summary(const link::Link& wire);

/// Builds a recorder sampling the link's cumulative fault-induced drops at
/// `interval`, yielding a loss timeline that lines up with cwnd traces.
std::unique_ptr<sim::Recorder> make_fault_recorder(sim::Simulator& simulator,
                                                   const link::Link& wire,
                                                   sim::SimTime interval);

class Capture {
 public:
  explicit Capture(sim::Simulator& simulator,
                   const CaptureOptions& options = {});

  /// Arms this capture's sink on the link (replacing any sink already
  /// armed there, like the old tap-stealing semantics).
  void attach(link::Link& wire);
  /// Disarms the link's trace sink.
  void detach(link::Link& wire);

  const std::deque<std::string>& lines() const { return lines_; }
  /// Wire events seen (transmissions and drops, before the filter).
  std::uint64_t frames_seen() const { return seen_; }
  std::uint64_t frames_recorded() const { return recorded_; }
  void clear() { lines_.clear(); }

  /// Convenience: concatenates all lines.
  std::string text() const;

  /// The underlying sink (e.g. to hand to attach_flight_recorder).
  obs::TraceSink& sink() { return sink_; }

 private:
  sim::Simulator& sim_;
  CaptureOptions options_;
  obs::TraceSink sink_;
  std::deque<std::string> lines_;
  std::uint64_t seen_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace xgbe::tools

#include "tools/drop_report.hpp"

namespace xgbe::tools {

namespace {

void add_entry(std::vector<DropReport::Entry>& entries,
               const std::string& cause, std::uint64_t count) {
  if (count == 0) return;
  for (DropReport::Entry& e : entries) {
    if (e.cause == cause) {
      e.count += count;
      return;
    }
  }
  entries.push_back({cause, count});
}

}  // namespace

void DropReport::add_drop(const std::string& cause, std::uint64_t count) {
  add_entry(drops, cause, count);
}

void DropReport::add_tcp_discard(const std::string& cause,
                                 std::uint64_t count) {
  add_entry(tcp_discards, cause, count);
}

void DropReport::add_connections(std::uint64_t opened, std::uint64_t completed,
                                 std::uint64_t refused,
                                 std::uint64_t aborted) {
  conn_opened += opened;
  conn_completed += completed;
  conn_refused += refused;
  conn_aborted += aborted;
}

std::int64_t DropReport::connections_unaccounted() const {
  return static_cast<std::int64_t>(conn_opened) -
         static_cast<std::int64_t>(conn_completed) -
         static_cast<std::int64_t>(conn_refused) -
         static_cast<std::int64_t>(conn_aborted);
}

std::uint64_t DropReport::total_drops() const {
  std::uint64_t total = 0;
  for (const Entry& e : drops) total += e.count;
  return total;
}

std::int64_t DropReport::unaccounted() const {
  return static_cast<std::int64_t>(offered) -
         static_cast<std::int64_t>(delivered) -
         static_cast<std::int64_t>(total_drops());
}

void DropReport::add_host(const core::Host& host) {
  delivered += host.frames_demuxed();
  const std::string prefix = host.name() + "/";
  for (std::size_t i = 0; i < host.adapter_count(); ++i) {
    const nic::Adapter& ad = host.adapter(i);
    offered += ad.tx_frames();
    const fault::FaultCounters& rxf = ad.rx_fault_counters();
    offered += rxf.duplicates;  // injected at the MAC, never transmitted
    add_drop(prefix + "adapter-rx-fault", rxf.total_drops());
    add_drop(prefix + "rx-ring-full", ad.rx_dropped_ring());
  }
  add_drop(prefix + "alloc-fail-rx", host.host_fault_counters().alloc_fail_rx);
  add_drop(prefix + "csum-reject", host.kernel().csum_drops());
  add_tcp_discard(prefix + "sockbuf-full", host.sockbuf_drops());
  if (const tcp::Listener* ls = host.listener()) {
    ListenerUsage u;
    u.host = host.name();
    u.syns = ls->stats().syns_received;
    u.refused = ls->stats().refused_syn_queue + ls->stats().refused_accept_queue;
    u.peak_half_open = ls->peak_half_open();
    u.syn_backlog = ls->config().syn_backlog;
    u.peak_accept_queue = ls->peak_accept_queue();
    u.accept_backlog = ls->config().accept_backlog;
    listeners_.push_back(std::move(u));
  }
}

void DropReport::add_link(const link::Link& wire) {
  const fault::FaultCounters f = wire.fault_counters();
  offered += f.duplicates;
  add_drop(wire.name() + "/wire-fault", f.total_drops());
  add_drop(wire.name() + "/queue-overflow", wire.drops_queue());
}

void DropReport::add_switch(const link::EthernetSwitch& sw) {
  const fault::FaultCounters& f = sw.fault_counters();
  offered += f.duplicates;
  add_drop(sw.name() + "/fabric-fault", f.total_drops());
  add_drop(sw.name() + "/no-route", sw.dropped_no_route());
  add_drop(sw.name() + "/port-buffer-full", sw.dropped_queue_full());
  add_drop(sw.name() + "/red-early-drop", sw.dropped_red());
}

void DropReport::add_testbed(const core::Testbed& bed) {
  for (std::size_t i = 0; i < bed.host_count(); ++i) add_host(bed.host_at(i));
  for (std::size_t i = 0; i < bed.link_count(); ++i) add_link(bed.link_at(i));
  for (std::size_t i = 0; i < bed.switch_count(); ++i) {
    add_switch(bed.switch_at(i));
  }
}

std::string DropReport::render() const {
  std::string out = "drop ledger: offered=" + std::to_string(offered) +
                    " delivered=" + std::to_string(delivered) +
                    " drops=" + std::to_string(total_drops()) +
                    " unaccounted=" + std::to_string(unaccounted()) +
                    (conserved() ? " (conserved)" : " (LEAK)");
  for (const Entry& e : drops) {
    out += "\n  drop " + e.cause + " = " + std::to_string(e.count);
  }
  for (const Entry& e : tcp_discards) {
    out += "\n  tcp-recovered " + e.cause + " = " + std::to_string(e.count);
  }
  if (conn_opened != 0 || !connections_conserved()) {
    out += "\nconnection ledger: opened=" + std::to_string(conn_opened) +
           " completed=" + std::to_string(conn_completed) +
           " refused=" + std::to_string(conn_refused) +
           " aborted=" + std::to_string(conn_aborted) +
           " unaccounted=" + std::to_string(connections_unaccounted()) +
           (connections_conserved() ? " (conserved)" : " (LEAK)");
  }
  for (const ListenerUsage& u : listeners_) {
    out += "\n  listener " + u.host + ": syns=" + std::to_string(u.syns) +
           " refused=" + std::to_string(u.refused) + " peak_half_open=" +
           std::to_string(u.peak_half_open) + "/" +
           std::to_string(u.syn_backlog) + " peak_accept_queue=" +
           std::to_string(u.peak_accept_queue) + "/" +
           std::to_string(u.accept_backlog);
  }
  return out;
}

}  // namespace xgbe::tools

// netperf workloads (§3.2: "the experimental results from these two tools
// correspond to another oft-used tool called netperf").
//
// TCP_STREAM: one-way bulk transfer for a fixed duration (like iperf but
// with netperf's default message size). TCP_RR: synchronous
// request/response, reported in transactions per second.
#pragma once

#include <cstdint>

#include "core/testbed.hpp"

namespace xgbe::tools {

struct NetperfStreamOptions {
  std::uint32_t send_size = 16384;  // netperf -m default-ish
  sim::SimTime warmup = sim::msec(30);
  sim::SimTime duration = sim::msec(200);
};

struct NetperfStreamResult {
  bool completed = false;
  double throughput_bps = 0.0;
  double throughput_gbps() const { return throughput_bps / 1e9; }
};

NetperfStreamResult run_netperf_stream(core::Testbed& tb,
                                       core::Testbed::Connection& conn,
                                       core::Host& sender,
                                       core::Host& receiver,
                                       const NetperfStreamOptions& options);

struct NetperfRrOptions {
  std::uint32_t request_size = 1;   // netperf TCP_RR defaults: 1 byte
  std::uint32_t response_size = 1;  // each way
  std::uint32_t transactions = 200;
  std::uint32_t warmup_transactions = 20;
  sim::SimTime timeout = sim::sec(60);
};

struct NetperfRrResult {
  bool completed = false;
  double transactions_per_sec = 0.0;
  double mean_latency_us = 0.0;  // per transaction (full round trip)
};

/// The connection endpoints should use netpipe_config() semantics
/// (NODELAY, prompt ACKs), as real netperf RR tests do.
NetperfRrResult run_netperf_rr(core::Testbed& tb,
                               core::Testbed::Connection& conn,
                               const NetperfRrOptions& options);

}  // namespace xgbe::tools

#include "tools/netperf.hpp"

#include <memory>

namespace xgbe::tools {

NetperfStreamResult run_netperf_stream(core::Testbed& tb,
                                       core::Testbed::Connection& conn,
                                       core::Host& sender,
                                       core::Host& receiver,
                                       const NetperfStreamOptions& options) {
  (void)sender;
  (void)receiver;
  NetperfStreamResult result;
  if (!conn.client->established() && !tb.run_until_established(conn)) {
    return result;
  }
  sim::Simulator& sim = tb.simulator();

  auto consumed = std::make_shared<std::uint64_t>(0);
  conn.server->on_consumed = [consumed](std::uint64_t b) { *consumed += b; };

  auto running = std::make_shared<bool>(true);
  auto writer = std::make_shared<std::function<void()>>();
  *writer = [running, writer, &conn, &options]() {
    if (!*running) return;
    conn.client->app_send(options.send_size, [writer]() { (*writer)(); });
  };
  (*writer)();

  sim.run_until(sim.now() + options.warmup);
  const std::uint64_t base = *consumed;
  const sim::SimTime t0 = sim.now();
  sim.run_until(t0 + options.duration);
  *running = false;
  conn.server->on_consumed = nullptr;
  *writer = nullptr;  // break the writer's self-reference cycle

  const double secs = sim::to_seconds(sim.now() - t0);
  result.completed = secs > 0;
  result.throughput_bps =
      secs > 0 ? static_cast<double>(*consumed - base) * 8.0 / secs : 0.0;
  return result;
}

NetperfRrResult run_netperf_rr(core::Testbed& tb,
                               core::Testbed::Connection& conn,
                               const NetperfRrOptions& options) {
  NetperfRrResult result;
  if (!conn.client->established() && !tb.run_until_established(conn)) {
    return result;
  }
  sim::Simulator& sim = tb.simulator();

  struct State {
    std::uint32_t remaining;
    std::uint32_t warmup_left;
    std::uint64_t client_rx = 0;
    std::uint64_t server_rx = 0;
    sim::SimTime measure_start = 0;
    sim::SimTime finished_at = 0;
    bool done = false;
  };
  auto st = std::make_shared<State>();
  st->remaining = options.transactions;
  st->warmup_left = options.warmup_transactions;

  auto send_request = std::make_shared<std::function<void()>>();
  *send_request = [&conn, &options]() {
    conn.client->app_send(options.request_size, nullptr);
  };

  conn.server->on_consumed = [st, &conn, &options](std::uint64_t bytes) {
    st->server_rx += bytes;
    while (st->server_rx >= options.request_size) {
      st->server_rx -= options.request_size;
      conn.server->app_send(options.response_size, nullptr);
    }
  };

  conn.client->on_consumed = [st, send_request, &sim,
                              &options](std::uint64_t bytes) {
    st->client_rx += bytes;
    if (st->client_rx < options.response_size) return;
    st->client_rx -= options.response_size;
    if (st->warmup_left > 0) {
      if (--st->warmup_left == 0) st->measure_start = sim.now();
    } else if (--st->remaining == 0) {
      st->done = true;
      st->finished_at = sim.now();
      sim.stop();
      return;
    }
    (*send_request)();
  };

  const sim::SimTime t0 = sim.now();
  (*send_request)();
  sim.run_until(t0 + options.timeout);

  conn.server->on_consumed = nullptr;
  conn.client->on_consumed = nullptr;
  if (!st->done) return result;

  const sim::SimTime start =
      st->measure_start > 0 ? st->measure_start : t0;
  const double secs = sim::to_seconds(st->finished_at - start);
  result.completed = secs > 0;
  result.transactions_per_sec =
      secs > 0 ? options.transactions / secs : 0.0;
  result.mean_latency_us = result.transactions_per_sec > 0
                               ? 1e6 / result.transactions_per_sec
                               : 0.0;
  return result;
}

}  // namespace xgbe::tools

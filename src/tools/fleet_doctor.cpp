#include "tools/fleet_doctor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/registry.hpp"
#include "obs/scrape.hpp"

namespace xgbe::tools {

void accumulate(MetricMap& merged, const obs::Snapshot& snap) {
  for (const obs::Sample& s : snap.samples) {
    merged[s.path] +=
        s.kind == obs::Kind::kCounter ? static_cast<double>(s.count) : s.value;
  }
}

namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segs;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      segs.push_back(path.substr(start));
      break;
    }
    segs.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return segs;
}

bool is_trunk_name(const std::string& link) {
  return link.rfind("trunk-", 0) == 0;
}

std::string link_kind(const std::string& link) {
  if (is_trunk_name(link)) return "trunk";
  if (link.find("-tor") != std::string::npos) return "access-link";
  return "link";
}

// Per-component evidence pulled out of the path map.
struct LinkAgg {
  double burst = 0, uniform = 0, forced = 0, carrier = 0, corruptions = 0,
         handshake = 0, flaps = 0, rate = 0, frames = 0;
};
struct PortAgg {
  double dropped = 0, peak = 0, forwarded = 0;
};
struct HostAgg {
  double dma = 0, alloc = 0, ring = 0;
};

std::string fmt(double v) { return obs::format_double(v); }

}  // namespace

Verdict diagnose(const MetricMap& metrics, const DropReport& ledger,
                 const DoctorThresholds& th) {
  std::map<std::string, LinkAgg> links;
  // (switch, egress link) — ordered, so iteration (and with it finding
  // order among equals) is deterministic.
  std::map<std::pair<std::string, std::string>, PortAgg> ports;
  std::map<std::string, HostAgg> hosts;

  for (const auto& [path, value] : metrics) {
    const std::vector<std::string> segs = split_path(path);
    if (segs.size() >= 3 && segs[0] == "link") {
      LinkAgg& l = links[segs[1]];
      if (segs.size() == 4 && segs[2] == "fault") {
        if (segs[3] == "drops_burst") l.burst = value;
        else if (segs[3] == "drops_uniform") l.uniform = value;
        else if (segs[3] == "drops_forced") l.forced = value;
        else if (segs[3] == "drops_carrier") l.carrier = value;
        else if (segs[3] == "drops_handshake") l.handshake = value;
        else if (segs[3] == "corruptions") l.corruptions = value;
        else if (segs[3] == "flaps") l.flaps = value;
      } else if (segs.size() == 3 && segs[2] == "rate_bps") {
        l.rate = value;
      } else if (segs.size() == 3 && segs[2] == "frames_delivered") {
        l.frames = value;
      }
    } else if (segs.size() == 5 && segs[0] == "switch" && segs[2] == "port") {
      PortAgg& p = ports[{segs[1], segs[3]}];
      if (segs[4] == "dropped_queue_full") p.dropped = value;
      else if (segs[4] == "peak_queued_bytes") p.peak = value;
      else if (segs[4] == "forwarded") p.forwarded = value;
    } else if (segs.size() == 3 && segs[1] == "host_fault") {
      HostAgg& h = hosts[segs[0]];
      if (segs[2] == "dma_throttled") h.dma = value;
      else if (segs[2] == "alloc_fail_rx" || segs[2] == "alloc_fail_tx")
        h.alloc += value;
      else if (segs[2] == "ring_stall_drops" || segs[2] == "tx_ring_stalls")
        h.ring += value;
    }
  }

  Verdict v;
  v.frames_conserved = ledger.conserved();
  v.connections_conserved = ledger.connections_conserved();

  // --- Wire faults ----------------------------------------------------------
  for (const auto& [name, l] : links) {
    const double cable = l.burst + l.uniform + l.forced + l.corruptions +
                         l.handshake;
    if (cable >= th.min_drops) {
      v.findings.push_back(
          {name, link_kind(name), "bad-cable", cable, 0.0,
           "burst=" + fmt(l.burst) + " uniform=" + fmt(l.uniform) +
               " corruptions=" + fmt(l.corruptions)});
    }
    if (l.carrier >= th.min_drops || l.flaps >= 1.0) {
      v.findings.push_back({name, link_kind(name), "carrier-flap",
                            std::max(l.carrier, l.flaps), 0.0,
                            "flaps=" + fmt(l.flaps) +
                                " carrier_drops=" + fmt(l.carrier)});
    }
  }

  // --- Half-speed trunks ----------------------------------------------------
  // The "negotiated speed" check: a trunk's configured rate against the
  // modal rate of all trunks. Rates are summed across scenario runs, which
  // scales every trunk uniformly, so the ratio test is unaffected.
  {
    std::map<double, std::size_t> rate_votes;
    for (const auto& [name, l] : links) {
      if (is_trunk_name(name) && l.rate > 0) ++rate_votes[l.rate];
    }
    double modal = 0;
    std::size_t best = 0;
    for (const auto& [rate, n] : rate_votes) {
      if (n > best || (n == best && rate > modal)) {
        modal = rate;
        best = n;
      }
    }
    for (const auto& [name, l] : links) {
      if (!is_trunk_name(name) || l.rate <= 0 || modal <= 0) continue;
      if (l.rate < th.half_speed_ratio * modal) {
        // Severity proxy: the capacity deficit fraction, scaled so a
        // genuinely misconfigured link outranks incidental drop counts.
        const double deficit = (modal - l.rate) / modal;
        v.findings.push_back({name, "trunk", "half-speed-link",
                              deficit * 10000.0, 0.0,
                              "rate_bps=" + fmt(l.rate) +
                                  " bundle_modal=" + fmt(modal)});
      }
    }
  }

  // --- Switch-port congestion ----------------------------------------------
  for (const auto& [key, p] : ports) {
    if (p.dropped < th.min_drops) continue;
    const auto& [sw, egress] = key;
    const char* cause =
        is_trunk_name(egress) ? "congested-trunk" : "incast-collapse";
    v.findings.push_back({sw + ":" + egress, "switch-port", cause, p.dropped,
                          0.0,
                          "tail_drops=" + fmt(p.dropped) +
                              " peak_queued_bytes=" + fmt(p.peak) +
                              " forwarded=" + fmt(p.forwarded)});
  }

  // --- Host pathologies -----------------------------------------------------
  for (const auto& [name, h] : hosts) {
    if (h.dma >= th.min_drops) {
      v.findings.push_back({name, "host", "host-dma-throttle", h.dma, 0.0,
                            "dma_throttled=" + fmt(h.dma)});
    }
    if (h.alloc >= th.min_drops) {
      v.findings.push_back({name, "host", "host-memory-pressure", h.alloc,
                            0.0, "alloc_failures=" + fmt(h.alloc)});
    }
    if (h.ring >= th.min_drops) {
      v.findings.push_back({name, "host", "host-ring-stall", h.ring, 0.0,
                            "ring_stalls=" + fmt(h.ring)});
    }
  }

  // --- Conservation ---------------------------------------------------------
  if (!v.frames_conserved) {
    const double leak = std::abs(static_cast<double>(ledger.unaccounted()));
    v.findings.push_back({"fleet", "ledger", "ledger-leak", leak, 0.0,
                          "frames_unaccounted=" + fmt(leak)});
  }
  if (!v.connections_conserved) {
    const double leak =
        std::abs(static_cast<double>(ledger.connections_unaccounted()));
    v.findings.push_back({"fleet", "ledger", "ledger-leak", leak, 0.0,
                          "connections_unaccounted=" + fmt(leak)});
  }

  double total = 0;
  for (const Finding& f : v.findings) total += f.magnitude;
  for (Finding& f : v.findings) {
    f.share = total > 0 ? f.magnitude / total : 0.0;
  }
  std::sort(v.findings.begin(), v.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.magnitude != b.magnitude) return a.magnitude > b.magnitude;
              if (a.cause != b.cause) return a.cause < b.cause;
              return a.component < b.component;
            });
  return v;
}

void apply_timeline(Verdict& v,
                    const std::vector<obs::detect::Episode>& episodes) {
  struct Window {
    sim::SimTime onset = 0;
    sim::SimTime clear = 0;
    bool cleared = true;
    std::uint64_t episodes = 0;
  };
  // (component, cause) — the same key the findings carry.
  std::map<std::pair<std::string, std::string>, Window> windows;
  for (const obs::detect::Episode& e : episodes) {
    const std::vector<std::string> segs = split_path(e.series);
    std::string component;
    if (segs.size() >= 2 && segs[0] == "link") {
      component = segs[1];
    } else if (segs.size() >= 4 && segs[0] == "switch" && segs[2] == "port") {
      component = segs[1] + ":" + segs[3];
    } else if (segs.size() == 3 && segs[1] == "host_fault") {
      component = segs[0];
    } else {
      continue;  // queue depth / srtt / rate series carry no finding key
    }
    Window& w = windows[{component, e.cause}];
    if (w.episodes == 0 || e.onset < w.onset) w.onset = e.onset;
    if (e.cleared) {
      w.clear = std::max(w.clear, e.clear);
    } else {
      w.cleared = false;
    }
    ++w.episodes;
  }
  for (Finding& f : v.findings) {
    const auto it = windows.find({f.component, f.cause});
    if (it == windows.end()) continue;
    const Window& w = it->second;
    f.timed = true;
    f.onset = w.onset;
    f.clear = w.cleared ? w.clear : 0;
    f.cleared = w.cleared;
    f.episodes = w.episodes;
    f.transient = w.episodes > 1;
  }
}

std::string Verdict::render() const {
  if (clean()) return "fleet doctor: clean bill — no findings";
  std::string out = "fleet doctor: " + std::to_string(findings.size()) +
                    " finding(s), worst first";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "\n  #" + std::to_string(i + 1) + " " + f.component + " [" +
           f.kind + "] " + f.cause + " magnitude=" + fmt(f.magnitude) +
           " share=" + fmt(f.share) + " :: " + f.evidence;
    if (f.timed) {
      out += " :: onset=" + std::to_string(f.onset) + "ps";
      if (f.cleared) {
        out += " clear=" + std::to_string(f.clear) + "ps";
      } else {
        out += " never-cleared";
      }
      out += f.transient ? " transient" : " persistent";
      out += " episodes=" + std::to_string(f.episodes);
    }
  }
  if (!frames_conserved) out += "\n  frame ledger: LEAK";
  if (!connections_conserved) out += "\n  connection ledger: LEAK";
  return out;
}

std::string Verdict::to_json() const {
  std::string out = "{\"schema\":\"xgbe-fleet-doctor/2\"";
  out += ",\"clean\":" + std::string(clean() ? "true" : "false");
  out += ",\"frames_conserved\":" +
         std::string(frames_conserved ? "true" : "false");
  out += ",\"connections_conserved\":" +
         std::string(connections_conserved ? "true" : "false");
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out += ",";
    out += "{\"component\":\"" + obs::json_escape(f.component) + "\"";
    out += ",\"kind\":\"" + obs::json_escape(f.kind) + "\"";
    out += ",\"cause\":\"" + obs::json_escape(f.cause) + "\"";
    out += ",\"magnitude\":" + fmt(f.magnitude);
    out += ",\"share\":" + fmt(f.share);
    out += ",\"evidence\":\"" + obs::json_escape(f.evidence) + "\"";
    out += ",\"timed\":" + std::string(f.timed ? "true" : "false");
    out += ",\"onset_ps\":" + std::to_string(f.onset);
    out += ",\"clear_ps\":" + std::to_string(f.clear);
    out += ",\"cleared\":" + std::string(f.cleared ? "true" : "false");
    out += ",\"episodes\":" + std::to_string(f.episodes);
    out += ",\"transient\":" + std::string(f.transient ? "true" : "false");
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FleetDoctorReport::transcript() const {
  std::string out = "fleet-doctor session: " +
                    std::to_string(scenarios.size()) + " scenario(s)";
  for (const auto& s : scenarios) {
    out += "\nscenario " + s.name + ": expected=" +
           std::to_string(s.bytes_expected) + " consumed=" +
           std::to_string(s.bytes_consumed) +
           (s.completed ? " (completed)" : " (INCOMPLETE)");
    if (s.name == "rpc-churn") {
      out += " rpc opened=" + std::to_string(s.rpc.opened) + " completed=" +
             std::to_string(s.rpc.completed) + " refused=" +
             std::to_string(s.rpc.refused) + " aborted=" +
             std::to_string(s.rpc.aborted);
    }
  }
  out += "\n" + ledger.render();
  out += "\n" + verdict.render();
  return out;
}

FleetDoctorReport run_fleet_doctor(const FleetDoctorOptions& options) {
  std::vector<core::fleet::Options> scenarios = options.scenarios;
  if (scenarios.empty()) {
    core::fleet::Options incast;
    incast.scenario = core::fleet::Scenario::kIncast;
    core::fleet::Options a2a;
    a2a.scenario = core::fleet::Scenario::kAllToAll;
    core::fleet::Options rpc;
    rpc.scenario = core::fleet::Scenario::kRpcChurn;
    scenarios = {incast, a2a, rpc};
  }

  FleetDoctorReport rep;
  MetricMap merged;
  const bool timed = options.scrape_period > 0;
  for (const auto& scen : scenarios) {
    // A fresh fabric per scenario: fault schedules restart and counters
    // never bleed between runs, so the matrix cells are independent.
    core::Fabric fabric(options.fabric);
    // Timeline mode: register at build time, so the scrape registry holds
    // only infrastructure probes (links, switches, host kernels/faults) —
    // nothing a scenario creates or retires mid-run — and arm a scraper
    // through the scenario. The scraper fires between events / at barriers,
    // so the run itself is bit-identical to an untimed one.
    obs::Registry scrape_reg;
    std::unique_ptr<obs::MetricScraper> scraper;
    core::fleet::Options scen_run = scen;
    if (timed) {
      fabric.register_metrics(scrape_reg);
      obs::ScrapeOptions so;
      so.period = options.scrape_period;
      so.max_points = options.scrape_max_points;
      scraper = std::make_unique<obs::MetricScraper>(scrape_reg, so);
      scen_run.scraper = scraper.get();
    }
    core::fleet::Result res = core::fleet::run(fabric, scen_run);
    if (timed) {
      std::vector<obs::detect::Episode> eps =
          obs::detect::run_detectors(scraper->store(), options.detect);
      rep.episodes.insert(rep.episodes.end(), eps.begin(), eps.end());
    }
    obs::Registry reg;
    fabric.register_metrics(reg);
    accumulate(merged, reg.snapshot());
    rep.ledger.add_testbed(fabric.testbed());
    if (scen.scenario == core::fleet::Scenario::kRpcChurn) {
      rep.ledger.add_connections(res.rpc.opened, res.rpc.completed,
                                 res.rpc.refused, res.rpc.aborted);
    }
    rep.scenarios.push_back(std::move(res));
  }
  rep.verdict = diagnose(merged, rep.ledger, options.thresholds);
  if (timed) apply_timeline(rep.verdict, rep.episodes);
  return rep;
}

}  // namespace xgbe::tools

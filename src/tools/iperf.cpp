#include "tools/iperf.hpp"

#include <memory>

namespace xgbe::tools {

IperfResult run_iperf(core::Testbed& tb, core::Testbed::Connection& conn,
                      core::Host& sender, core::Host& receiver,
                      const IperfOptions& options) {
  IperfResult result;
  if (!conn.client->established() && !tb.run_until_established(conn)) {
    return result;
  }
  sim::Simulator& sim = tb.simulator();

  struct State {
    std::uint64_t consumed = 0;
    std::uint64_t window_base = 0;
    bool running = true;
  };
  auto st = std::make_shared<State>();

  conn.server->on_consumed = [st](std::uint64_t bytes) {
    st->consumed += bytes;
  };

  auto writer = std::make_shared<std::function<void()>>();
  *writer = [st, writer, &conn, &options]() {
    if (!st->running) return;
    conn.client->app_send(options.write_size, [writer]() { (*writer)(); });
  };
  (*writer)();

  // Warmup, then a measurement window.
  sim.run_until(sim.now() + options.warmup);
  st->window_base = st->consumed;
  sender.mark_load_window();
  receiver.mark_load_window();
  const sim::SimTime t0 = sim.now();
  sim.run_until(t0 + options.duration);
  const sim::SimTime t1 = sim.now();
  st->running = false;
  conn.server->on_consumed = nullptr;
  *writer = nullptr;  // break the writer's self-reference cycle

  const std::uint64_t bytes = st->consumed - st->window_base;
  const double secs = sim::to_seconds(t1 - t0);
  result.completed = secs > 0;
  result.bytes = bytes;
  result.throughput_bps =
      secs > 0 ? static_cast<double>(bytes) * 8.0 / secs : 0.0;
  result.sender_load = sender.cpu_load();
  result.receiver_load = receiver.cpu_load();
  return result;
}

}  // namespace xgbe::tools

#include "tools/stream.hpp"

#include <memory>

namespace xgbe::tools {

StreamResult run_stream(core::Testbed& tb, core::Host& host,
                        const StreamOptions& options) {
  sim::Simulator& sim = tb.simulator();
  os::Kernel& kernel = host.kernel();

  auto remaining = std::make_shared<std::uint32_t>(options.iterations);
  auto finished = std::make_shared<sim::SimTime>(0);

  const sim::SimTime cpu_cost =
      hw::cpu_copy_time(host.system().memory, options.array_bytes);
  const sim::SimTime bus_cost =
      hw::bus_time(host.system().memory, options.array_bytes, 2);

  auto iterate = std::make_shared<std::function<void()>>();
  *iterate = [=, &kernel, &sim]() {
    kernel.copy_job(kernel.app_cpu(), cpu_cost, bus_cost, [=, &sim]() {
      if (--*remaining == 0) {
        *finished = sim.now();
        sim.stop();
        return;
      }
      (*iterate)();
    });
  };

  const sim::SimTime t0 = sim.now();
  (*iterate)();
  sim.run_until(t0 + sim::sec(60));
  *iterate = nullptr;  // break the loop's self-reference cycle

  StreamResult result;
  const double secs = sim::to_seconds(*finished - t0);
  if (secs > 0) {
    result.copy_bytes_per_sec =
        static_cast<double>(options.array_bytes) * options.iterations / secs;
  }
  return result;
}

}  // namespace xgbe::tools

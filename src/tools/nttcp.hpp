// NTTCP workload: sends a fixed number of fixed-size application writes and
// measures application-to-application throughput (the paper's primary
// bandwidth tool, §3.2).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"

namespace xgbe::tools {

struct NttcpOptions {
  std::uint32_t payload = 8192;  // bytes per write ("packet size")
  std::uint32_t count = 32768;   // number of writes (paper default)
  sim::SimTime timeout = sim::sec(120);
};

struct NttcpResult {
  bool completed = false;
  double throughput_bps = 0.0;  // application payload bits/s
  double elapsed_s = 0.0;
  std::uint64_t bytes = 0;
  double sender_load = 0.0;
  double receiver_load = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t receiver_drops = 0;

  double throughput_gbps() const { return throughput_bps / 1e9; }
};

/// Runs NTTCP over an established (or establishing) connection. The
/// connection's client side transmits. Blocks (in simulated time) until the
/// receiver has consumed every byte or the timeout expires.
NttcpResult run_nttcp(core::Testbed& tb, core::Testbed::Connection& conn,
                      core::Host& sender, core::Host& receiver,
                      const NttcpOptions& options);

}  // namespace xgbe::tools

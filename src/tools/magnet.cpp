#include "tools/magnet.hpp"

#include <memory>

#include "tools/nttcp.hpp"

namespace xgbe::tools {

const MagnetStage* MagnetReport::stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const MagnetStage* MagnetReport::hottest() const {
  const MagnetStage* best = nullptr;
  for (const auto& s : stages) {
    if (best == nullptr || s.us.mean() > best->us.mean()) best = &s;
  }
  return best;
}

MagnetReport run_magnet(core::Testbed& tb, core::Testbed::Connection& conn,
                        core::Host& sender, core::Host& receiver,
                        const MagnetOptions& options) {
  MagnetReport report;
  report.stages = {
      {"tx_host", {}},   // TCP emit -> adapter (kernel tx path + queue)
      {"tx_dma", {}},    // adapter -> DMA read complete (PCI-X)
      {"wire", {}},      // DMA done -> last bit at the peer NIC
      {"rx_dma", {}},    // arrival -> DMA write complete
      {"coalesce", {}},  // DMA done -> interrupt raised
      {"rx_kernel", {}}, // interrupt -> protocol processing done
  };
  sim::OnlineStats total;

  conn.client->set_trace_sampling(options.sample_every);
  auto sampled = std::make_shared<std::uint64_t>(0);
  auto* stages = &report.stages;
  receiver.packet_tap = [sampled, stages, &tb](const net::Packet& pkt) {
    if (!pkt.trace.enabled || pkt.payload_bytes == 0) return;
    ++*sampled;
    const auto& t = pkt.trace;
    auto span_us = [](sim::SimTime a, sim::SimTime b) {
      return sim::to_microseconds(b - a);
    };
    (*stages)[0].us.add(span_us(pkt.created_at, t.t_nic));
    (*stages)[1].us.add(span_us(t.t_nic, t.t_dma_done));
    (*stages)[2].us.add(span_us(t.t_dma_done, t.t_rx_arrive));
    (*stages)[3].us.add(span_us(t.t_rx_arrive, t.t_rx_dma));
    (*stages)[4].us.add(span_us(t.t_rx_dma, t.t_irq));
    (*stages)[5].us.add(span_us(t.t_irq, tb.now()));
  };

  NttcpOptions nt;
  nt.payload = options.payload;
  nt.count = options.count;
  nt.timeout = options.timeout;
  const NttcpResult r = run_nttcp(tb, conn, sender, receiver, nt);

  receiver.packet_tap = nullptr;
  conn.client->set_trace_sampling(0);

  report.completed = r.completed;
  report.sampled_packets = *sampled;
  report.throughput_gbps = r.throughput_gbps();
  double sum = 0.0;
  for (const auto& s : report.stages) sum += s.us.mean();
  report.total_us_mean = sum;
  return report;
}

}  // namespace xgbe::tools

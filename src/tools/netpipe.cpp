#include "tools/netpipe.hpp"

#include <memory>

#include "obs/span.hpp"

namespace xgbe::tools {

NetpipeResult run_netpipe(core::Testbed& tb, core::Testbed::Connection& conn,
                          const NetpipeOptions& options) {
  NetpipeResult result;
  if (!conn.client->established() && !tb.run_until_established(conn)) {
    return result;
  }
  sim::Simulator& sim = tb.simulator();

  struct State {
    std::uint32_t payload;
    std::uint32_t remaining;
    std::uint32_t warmup_left;
    std::uint64_t client_rx = 0;  // bytes of the current pong received
    std::uint64_t server_rx = 0;  // bytes of the current ping received
    sim::SimTime ping_sent = 0;
    sim::SampleSet rtts;
    bool done = false;
  };
  auto st = std::make_shared<State>();
  st->payload = options.payload;
  st->remaining = options.iterations;
  st->warmup_left = options.warmup_iterations;

  auto send_ping = std::make_shared<std::function<void()>>();
  *send_ping = [st, &conn, &sim]() {
    st->ping_sent = sim.now();
    conn.client->app_send(st->payload, nullptr);
  };

  conn.server->on_consumed = [st, &conn](std::uint64_t bytes) {
    st->server_rx += bytes;
    if (st->server_rx >= st->payload) {
      st->server_rx -= st->payload;
      conn.server->app_send(st->payload, nullptr);  // pong
    }
  };

  obs::SpanProfiler* spans = options.spans;
  conn.client->on_consumed = [st, send_ping, spans,
                              &sim](std::uint64_t bytes) {
    st->client_rx += bytes;
    if (st->client_rx < st->payload) return;
    st->client_rx -= st->payload;
    if (st->warmup_left > 0) {
      // Warmup boundary: clear the profiler so its ledger covers exactly
      // the measured iterations (the path is quiescent at this instant —
      // the last warmup pong's journey just closed).
      if (--st->warmup_left == 0 && spans != nullptr) spans->reset();
    } else {
      st->rtts.add(sim::to_microseconds(sim.now() - st->ping_sent));
      if (--st->remaining == 0) {
        st->done = true;
        sim.stop();
        return;
      }
    }
    (*send_ping)();
  };

  const sim::SimTime t0 = sim.now();
  if (spans != nullptr && options.warmup_iterations == 0) spans->reset();
  (*send_ping)();
  sim.run_until(t0 + options.timeout);

  conn.server->on_consumed = nullptr;
  conn.client->on_consumed = nullptr;
  if (!st->done) return result;

  const sim::OnlineStats s = st->rtts.summary();
  result.completed = true;
  result.rtt_us = s.mean();
  result.rtt_stddev_us = s.stddev();
  result.min_rtt_us = s.min();
  result.max_rtt_us = s.max();
  result.latency_us = s.mean() / 2.0;
  return result;
}

}  // namespace xgbe::tools

// MAGNET: per-packet path profiling (§3.2, §5).
//
// The paper uses MAGNET to "trace and profile the paths taken by individual
// packets through the TCP stack with negligible effect on network
// performance", quantifying "how many packets take each possible path, the
// cost of each path" — and closes by instrumenting the stack with it to get
// "an unprecedentedly high-resolution picture of the most expensive aspects
// of TCP processing overhead".
//
// This re-implementation samples every Nth data segment, stamps it at each
// stage of the simulated path, and aggregates per-stage residence times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "sim/stats.hpp"

namespace xgbe::tools {

struct MagnetOptions {
  std::uint32_t payload = 8000;
  std::uint32_t count = 2000;
  std::uint32_t sample_every = 10;  // trace every Nth segment
  sim::SimTime timeout = sim::sec(120);
};

/// One pipeline stage's residence-time statistics.
struct MagnetStage {
  std::string name;
  sim::OnlineStats us;  // residence time in microseconds
};

struct MagnetReport {
  bool completed = false;
  std::uint64_t sampled_packets = 0;
  double throughput_gbps = 0.0;
  /// Stages in path order: tx host (TCP + driver + queueing), TX DMA,
  /// wire (+switch), RX DMA, interrupt coalescing, RX kernel.
  std::vector<MagnetStage> stages;
  double total_us_mean = 0.0;

  const MagnetStage* stage(const std::string& name) const;
  /// The most expensive stage by mean residence time.
  const MagnetStage* hottest() const;
};

/// Runs an NTTCP transfer with MAGNET sampling enabled on the sender and a
/// collection tap on the receiver; returns per-stage cost statistics.
MagnetReport run_magnet(core::Testbed& tb, core::Testbed::Connection& conn,
                        core::Host& sender, core::Host& receiver,
                        const MagnetOptions& options);

}  // namespace xgbe::tools

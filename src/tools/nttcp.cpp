#include "tools/nttcp.hpp"

#include <memory>

namespace xgbe::tools {

NttcpResult run_nttcp(core::Testbed& tb, core::Testbed::Connection& conn,
                      core::Host& sender, core::Host& receiver,
                      const NttcpOptions& options) {
  NttcpResult result;
  if (!conn.client->established() && !tb.run_until_established(conn)) {
    return result;
  }

  sim::Simulator& sim = tb.simulator();
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(options.payload) * options.count;

  struct State {
    std::uint32_t writes_left;
    std::uint64_t consumed = 0;
    sim::SimTime finished_at = 0;
    bool done = false;
  };
  auto st = std::make_shared<State>();
  st->writes_left = options.count;

  sender.mark_load_window();
  receiver.mark_load_window();
  const sim::SimTime t0 = sim.now();
  const std::uint64_t base_retx = conn.client->stats().retransmits;
  const std::uint64_t base_segs = conn.client->stats().segments_sent;
  const std::uint64_t base_drops = conn.server->stats().rcv_buffer_drops;

  conn.server->on_consumed = [st, total_bytes, &sim](std::uint64_t bytes) {
    st->consumed += bytes;
    if (st->consumed >= total_bytes && !st->done) {
      st->done = true;
      st->finished_at = sim.now();
      sim.stop();
    }
  };

  // Blocking-write loop: the next write is issued when the previous one has
  // been copied into the socket.
  auto writer = std::make_shared<std::function<void()>>();
  *writer = [st, writer, &conn, &options]() {
    if (st->writes_left == 0) return;
    --st->writes_left;
    conn.client->app_send(options.payload, [writer]() { (*writer)(); });
  };
  (*writer)();

  sim.run_until(t0 + options.timeout);

  conn.server->on_consumed = nullptr;
  *writer = nullptr;  // break the writer's self-reference cycle
  if (!st->done) return result;  // timed out or deadlocked

  result.completed = true;
  result.bytes = st->consumed;
  result.elapsed_s = sim::to_seconds(st->finished_at - t0);
  result.throughput_bps =
      result.elapsed_s > 0
          ? static_cast<double>(st->consumed) * 8.0 / result.elapsed_s
          : 0.0;
  result.sender_load = sender.cpu_load();
  result.receiver_load = receiver.cpu_load();
  result.retransmits = conn.client->stats().retransmits - base_retx;
  result.segments_sent = conn.client->stats().segments_sent - base_segs;
  result.receiver_drops = conn.server->stats().rcv_buffer_drops - base_drops;
  return result;
}

}  // namespace xgbe::tools

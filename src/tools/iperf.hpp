// Iperf workload: streams for a fixed duration and reports the steady-state
// rate. Iperf coalesces the byte stream into full-MSS segments (set
// push_per_write=false on the sending endpoint for faithful semantics).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"

namespace xgbe::tools {

struct IperfOptions {
  std::uint32_t write_size = 65536;
  sim::SimTime warmup = sim::msec(30);
  sim::SimTime duration = sim::msec(200);
};

struct IperfResult {
  bool completed = false;
  double throughput_bps = 0.0;
  std::uint64_t bytes = 0;
  double sender_load = 0.0;
  double receiver_load = 0.0;

  double throughput_gbps() const { return throughput_bps / 1e9; }
};

IperfResult run_iperf(core::Testbed& tb, core::Testbed::Connection& conn,
                      core::Host& sender, core::Host& receiver,
                      const IperfOptions& options);

/// Endpoint configuration tweak for iperf semantics (stream coalescing).
inline tcp::EndpointConfig iperf_config(tcp::EndpointConfig base) {
  base.push_per_write = false;
  return base;
}

}  // namespace xgbe::tools

// Per-cause drop ledger: every frame offered to the network must be either
// delivered or accounted to a named drop cause.
//
// The conservation identity is evaluated at the host demux boundary:
//
//   offered == delivered + sum(per-cause drops)
//
// where `offered` is every frame the hosts' adapters put on the wire plus
// every frame injected along the path (fault-layer duplicates), and
// `delivered` is every frame that completed kernel receive processing and
// reached Host::demux. Discards after that boundary (TCP receive-buffer
// overflow) are recovered by retransmission and reported separately; they
// are not identity terms. The identity only holds at quiescence — drain the
// simulator after the transfer closes before harvesting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/host.hpp"
#include "core/testbed.hpp"
#include "link/link.hpp"
#include "link/switch.hpp"

namespace xgbe::tools {

/// Accumulates offered/delivered counts and named drop causes from the
/// components of a testbed, then checks and renders the conservation
/// identity. Harvest every host, link, and switch a frame could traverse;
/// a missing component shows up as a nonzero `unaccounted()`.
struct DropReport {
  struct Entry {
    std::string cause;
    std::uint64_t count = 0;
  };

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::vector<Entry> drops;         // pre-delivery losses: identity terms
  std::vector<Entry> tcp_discards;  // post-delivery, recovered by TCP

  // Connection ledger: every connection a workload opened must land in
  // exactly one terminal bucket. Evaluated at quiescence, like the frame
  // identity:
  //
  //   conn_opened == conn_completed + conn_refused + conn_aborted
  std::uint64_t conn_opened = 0;
  std::uint64_t conn_completed = 0;  // graceful close after the transfer
  std::uint64_t conn_refused = 0;    // never established: RST or give-up
  std::uint64_t conn_aborted = 0;    // established, then reset or aborted

  /// Adds `count` to the named cause (merging repeat causes); zero counts
  /// are dropped so reports only show what actually happened.
  void add_drop(const std::string& cause, std::uint64_t count);
  void add_tcp_discard(const std::string& cause, std::uint64_t count);

  /// Folds a workload's connection outcomes into the ledger (additive, so
  /// several workloads can share one report).
  void add_connections(std::uint64_t opened, std::uint64_t completed,
                       std::uint64_t refused, std::uint64_t aborted);

  std::uint64_t total_drops() const;
  /// offered - delivered - total_drops: zero iff every frame is accounted.
  std::int64_t unaccounted() const;
  bool conserved() const { return unaccounted() == 0; }
  /// opened - completed - refused - aborted: zero iff every connection
  /// reached exactly one terminal bucket.
  std::int64_t connections_unaccounted() const;
  bool connections_conserved() const { return connections_unaccounted() == 0; }

  /// Harvests one host: its adapters' transmitted frames into `offered`,
  /// frames demuxed into `delivered`, and the receive-side drop causes
  /// (adapter rx faults, ring overflow, failed skb allocations, software
  /// checksum rejects) plus TCP sockbuf discards.
  void add_host(const core::Host& host);
  /// Harvests one link: fault drops and queue tail-drops from both
  /// directions; injected duplicates count as offered.
  void add_link(const link::Link& wire);
  /// Harvests one switch: fabric fault drops, unroutable frames, and port
  /// buffer tail-drops; injected duplicates count as offered. Causes are
  /// named per switch so a fleet report localizes them.
  void add_switch(const link::EthernetSwitch& sw);

  /// Harvests the whole testbed: every host, link, and switch — the
  /// fleet-wide ledger in one call.
  void add_testbed(const core::Testbed& bed);

  /// One line per fact, identity verdict first.
  std::string render() const;

 private:
  /// Listener backlog usage of harvested hosts (rendered, not identity
  /// terms — refusals are connection-ledger territory).
  struct ListenerUsage {
    std::string host;
    std::uint64_t syns = 0;
    std::uint64_t refused = 0;  // both queues
    std::uint32_t peak_half_open = 0;
    std::uint32_t syn_backlog = 0;
    std::uint32_t peak_accept_queue = 0;
    std::uint32_t accept_backlog = 0;
  };
  std::vector<ListenerUsage> listeners_;
};

}  // namespace xgbe::tools

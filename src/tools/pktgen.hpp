// Linux packet generator: a kernel-level loop transmitting pre-formed UDP
// frames directly to the adapter, bypassing the TCP/IP stack and its copies
// (single-copy). The paper uses it to find the host's raw data-movement
// ceiling: ~5.5 Gb/s at 8160-byte packets on the PE2650 (§3.5.2).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"

namespace xgbe::tools {

struct PktgenOptions {
  std::uint32_t payload = 8160 - 28;  // UDP payload so the IP packet = 8160
  sim::SimTime duration = sim::msec(100);
  sim::SimTime warmup = sim::msec(10);
  /// Per-packet cost of the pktgen kernel loop (skb clone + driver entry),
  /// scaled by the host's CPU clock.
  sim::SimTime base_loop_cost = sim::usec_f(1.05);
};

struct PktgenResult {
  bool completed = false;
  double packets_per_sec = 0.0;
  double throughput_bps = 0.0;  // total wire-frame bits per second
  double payload_bps = 0.0;
  double sender_load = 0.0;
  std::uint64_t frames = 0;

  double throughput_gbps() const { return throughput_bps / 1e9; }
};

/// Blasts UDP frames from `sender` to `receiver` over an existing topology.
PktgenResult run_pktgen(core::Testbed& tb, core::Host& sender,
                        core::Host& receiver, const PktgenOptions& options,
                        std::size_t adapter_index = 0);

}  // namespace xgbe::tools

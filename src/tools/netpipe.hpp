// NetPipe workload: single-message ping-pong; end-to-end latency is the
// averaged round-trip time divided by two (§3.2, Figs 6-7).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"
#include "sim/stats.hpp"

namespace xgbe::tools {

struct NetpipeOptions {
  std::uint32_t payload = 1;  // bytes per ping
  std::uint32_t iterations = 100;
  std::uint32_t warmup_iterations = 10;
  sim::SimTime timeout = sim::sec(30);
  /// Optional span profiler (also arm it on the testbed): reset at the
  /// warmup boundary, so its aggregates cover exactly the measured
  /// iterations — 2 journeys (ping + pong) per iteration, and the summed
  /// journey time equals the summed measured RTTs.
  obs::SpanProfiler* spans = nullptr;
};

struct NetpipeResult {
  bool completed = false;
  double latency_us = 0.0;      // one-way, averaged
  double rtt_us = 0.0;          // full round trip, averaged
  double rtt_stddev_us = 0.0;
  double min_rtt_us = 0.0;
  double max_rtt_us = 0.0;
};

NetpipeResult run_netpipe(core::Testbed& tb, core::Testbed::Connection& conn,
                          const NetpipeOptions& options);

/// Endpoint configuration tweak for netpipe semantics: tiny messages must
/// fly immediately (NODELAY) and be acknowledged promptly.
inline tcp::EndpointConfig netpipe_config(tcp::EndpointConfig base) {
  base.nagle = false;
  base.push_per_write = true;
  base.delack_segments = 1;  // ping-pong: every segment answers anyway
  return base;
}

}  // namespace xgbe::tools

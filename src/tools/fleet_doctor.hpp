// fleet_doctor: automated fault localization for a cluster fabric.
//
// The doctor never looks at simulator internals: its only inputs are
// obs::Registry snapshots (summed across a scenario matrix) and the
// DropReport conservation ledgers — exactly what a fleet operator could
// scrape off real machines. From those it emits a ranked list of findings,
// each naming a component (the fabric's canonical names), a cause class,
// and the evidence, plus a machine-readable JSON verdict.
//
// Cause classes and their signatures:
//
//   bad-cable            link fault drops_burst/drops_uniform/corruptions
//   carrier-flap         link fault flaps / drops_carrier
//   half-speed-link      trunk rate_bps below its bundle's modal rate
//   congested-trunk      switch-port tail drops toward a trunk
//   incast-collapse      switch-port tail drops toward an access link
//   host-dma-throttle    host_fault dma_throttled
//   host-memory-pressure host_fault alloc_fail_rx/alloc_fail_tx
//   host-ring-stall      host_fault ring_stall_drops / tx_ring_stalls
//   ledger-leak          a conservation identity failed to balance
//
// A clean fabric produces an empty findings list — the doctor's silence is
// part of the contract (tests assert it).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "core/fleet.hpp"
#include "obs/registry.hpp"
#include "tools/drop_report.hpp"

namespace xgbe::tools {

/// Registry paths to summed values: counters contribute their count,
/// gauges their value. Summing across scenario runs keeps counters exact
/// and scales every gauge uniformly, so ratio comparisons (the half-speed
/// rule) stay valid.
using MetricMap = std::map<std::string, double>;

/// Folds one snapshot into the map (additive).
void accumulate(MetricMap& merged, const obs::Snapshot& snap);

struct DoctorThresholds {
  /// Smallest drop count worth a finding (the sim is deterministic, so any
  /// nonzero count is real; raise this only to focus a noisy report).
  double min_drops = 1.0;
  /// A trunk whose rate is below this fraction of its bundle's modal rate
  /// is flagged half-speed.
  double half_speed_ratio = 0.9;
};

struct Finding {
  std::string component;  // canonical fabric name ("r1h0", "trunk-tor1-...")
  std::string kind;       // "access-link" | "trunk" | "switch-port" |
                          // "host" | "ledger"
  std::string cause;      // cause class slug (header table)
  double magnitude = 0.0; // ranking key: drop count or severity proxy
  double share = 0.0;     // magnitude / sum of all magnitudes
  std::string evidence;   // human-readable supporting numbers
};

struct Verdict {
  /// Ranked worst-first: (magnitude desc, cause asc, component asc) — a
  /// total order, so the verdict is bit-identical across reruns.
  std::vector<Finding> findings;
  bool frames_conserved = true;
  bool connections_conserved = true;

  bool clean() const { return findings.empty(); }
  /// One line per finding, rank first.
  std::string render() const;
  /// Machine-readable verdict, schema "xgbe-fleet-doctor/1". Deterministic:
  /// doubles via obs::format_double, fixed key order.
  std::string to_json() const;
};

/// Pure analysis: localizes faults from the merged metrics and the ledger.
Verdict diagnose(const MetricMap& metrics, const DropReport& ledger,
                 const DoctorThresholds& thresholds = {});

struct FleetDoctorOptions {
  core::FabricOptions fabric;
  /// Scenario matrix; empty runs the canonical three (incast, all-to-all,
  /// RPC churn).
  std::vector<core::fleet::Options> scenarios;
  DoctorThresholds thresholds;
};

struct FleetDoctorReport {
  Verdict verdict;
  std::vector<core::fleet::Result> scenarios;
  DropReport ledger;
  /// The full session: scenario outcomes, ledger, ranked findings.
  std::string transcript() const;
};

/// Runs the scenario matrix (a fresh fabric per scenario, so faults and
/// counters never bleed between runs), accumulates the evidence, and
/// diagnoses once over the whole matrix.
FleetDoctorReport run_fleet_doctor(const FleetDoctorOptions& options);

}  // namespace xgbe::tools

// fleet_doctor: automated fault localization for a cluster fabric.
//
// The doctor never looks at simulator internals: its only inputs are
// obs::Registry snapshots (summed across a scenario matrix) and the
// DropReport conservation ledgers — exactly what a fleet operator could
// scrape off real machines. From those it emits a ranked list of findings,
// each naming a component (the fabric's canonical names), a cause class,
// and the evidence, plus a machine-readable JSON verdict.
//
// Cause classes and their signatures:
//
//   bad-cable            link fault drops_burst/drops_uniform/corruptions
//   carrier-flap         link fault flaps / drops_carrier
//   half-speed-link      trunk rate_bps below its bundle's modal rate
//   congested-trunk      switch-port tail drops toward a trunk
//   incast-collapse      switch-port tail drops toward an access link
//   host-dma-throttle    host_fault dma_throttled
//   host-memory-pressure host_fault alloc_fail_rx/alloc_fail_tx
//   host-ring-stall      host_fault ring_stall_drops / tx_ring_stalls
//   ledger-leak          a conservation identity failed to balance
//
// A clean fabric produces an empty findings list — the doctor's silence is
// part of the contract (tests assert it).
//
// Timeline mode (scrape_period > 0) additionally answers *when*: every
// scenario runs under a MetricScraper, obs::detect turns the series into
// episodes, and each finding gains (onset, clear) timestamps plus a
// transient-vs-persistent classification — all without perturbing the run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "core/fleet.hpp"
#include "obs/detect.hpp"
#include "obs/registry.hpp"
#include "tools/drop_report.hpp"

namespace xgbe::tools {

/// Registry paths to summed values: counters contribute their count,
/// gauges their value. Summing across scenario runs keeps counters exact
/// and scales every gauge uniformly, so ratio comparisons (the half-speed
/// rule) stay valid.
using MetricMap = std::map<std::string, double>;

/// Folds one snapshot into the map (additive).
void accumulate(MetricMap& merged, const obs::Snapshot& snap);

struct DoctorThresholds {
  /// Smallest drop count worth a finding (the sim is deterministic, so any
  /// nonzero count is real; raise this only to focus a noisy report).
  double min_drops = 1.0;
  /// A trunk whose rate is below this fraction of its bundle's modal rate
  /// is flagged half-speed.
  double half_speed_ratio = 0.9;
};

struct Finding {
  std::string component;  // canonical fabric name ("r1h0", "trunk-tor1-...")
  std::string kind;       // "access-link" | "trunk" | "switch-port" |
                          // "host" | "ledger"
  std::string cause;      // cause class slug (header table)
  double magnitude = 0.0; // ranking key: drop count or severity proxy
  double share = 0.0;     // magnitude / sum of all magnitudes
  std::string evidence;   // human-readable supporting numbers

  // --- Timeline (set when the doctor ran with a scrape period) -------------
  bool timed = false;       // the fields below are meaningful
  sim::SimTime onset = 0;   // earliest episode onset across the matrix
  sim::SimTime clear = 0;   // latest confirmed clear (0 when never cleared)
  bool cleared = false;     // every matched episode cleared before run end
  std::uint64_t episodes = 0;  // distinct detector episodes matched
  /// Episodic pathology: it cleared and recurred (more than one distinct
  /// episode) — a flapping carrier rather than a dead cable.
  bool transient = false;
};

struct Verdict {
  /// Ranked worst-first: (magnitude desc, cause asc, component asc) — a
  /// total order, so the verdict is bit-identical across reruns.
  std::vector<Finding> findings;
  bool frames_conserved = true;
  bool connections_conserved = true;

  bool clean() const { return findings.empty(); }
  /// One line per finding, rank first.
  std::string render() const;
  /// Machine-readable verdict, schema "xgbe-fleet-doctor/2" (the /1 schema
  /// lacked the per-finding timed/onset_ps/clear_ps/cleared/episodes/
  /// transient fields). Deterministic: doubles via obs::format_double,
  /// fixed key order — byte-identical across reruns, shard counts, and
  /// thread counts.
  std::string to_json() const;
};

/// Pure analysis: localizes faults from the merged metrics and the ledger.
Verdict diagnose(const MetricMap& metrics, const DropReport& ledger,
                 const DoctorThresholds& thresholds = {});

/// Folds detector episodes into the verdict's findings, matched on
/// (component, cause): a finding's onset is the earliest matched episode's
/// onset, its clear the latest confirmed clear, `transient` marks episodic
/// (recurred after clearing) pathologies. Unmatched episodes are ignored —
/// the evidence bar for a finding stays diagnose()'s.
void apply_timeline(Verdict& v,
                    const std::vector<obs::detect::Episode>& episodes);

struct FleetDoctorOptions {
  core::FabricOptions fabric;
  /// Scenario matrix; empty runs the canonical three (incast, all-to-all,
  /// RPC churn).
  std::vector<core::fleet::Options> scenarios;
  DoctorThresholds thresholds;
  /// Timeline mode: when > 0, every scenario runs with a MetricScraper at
  /// this cadence over the fabric's infrastructure probes (registered at
  /// build time — links, switches, hosts; no per-flow endpoints), the
  /// detectors turn the series into episodes, and findings carry
  /// onset/clear/transient. 0 keeps the classic untimed doctor.
  sim::SimTime scrape_period = 0;
  /// Per-series ring bound for the timeline scraper.
  std::size_t scrape_max_points = 4096;
  obs::detect::DetectOptions detect;
};

struct FleetDoctorReport {
  Verdict verdict;
  std::vector<core::fleet::Result> scenarios;
  DropReport ledger;
  /// Timeline mode only: every detector episode across the matrix, sorted
  /// by (series, onset) within each scenario and concatenated in scenario
  /// order.
  std::vector<obs::detect::Episode> episodes;
  /// The full session: scenario outcomes, ledger, ranked findings.
  std::string transcript() const;
};

/// Runs the scenario matrix (a fresh fabric per scenario, so faults and
/// counters never bleed between runs), accumulates the evidence, and
/// diagnoses once over the whole matrix.
FleetDoctorReport run_fleet_doctor(const FleetDoctorOptions& options);

}  // namespace xgbe::tools

// Protocol header and framing size model.
//
// The simulator never carries payload bytes — only sizes — so the header
// model is the authoritative source of every overhead constant: Ethernet
// framing, IP/TCP/UDP headers, TCP options, and the MTU/MSS arithmetic the
// paper's analysis (§3.5.1) revolves around.
#pragma once

#include <cstdint>

namespace xgbe::net {

// Ethernet framing (10GbE is full-duplex only; no collisions to model).
inline constexpr std::uint32_t kEthHeaderBytes = 14;    // dst+src+ethertype
inline constexpr std::uint32_t kEthCrcBytes = 4;        // FCS
inline constexpr std::uint32_t kEthPreambleBytes = 8;   // preamble + SFD
inline constexpr std::uint32_t kEthIfgBytes = 12;       // inter-frame gap
inline constexpr std::uint32_t kEthMinFrameBytes = 64;  // hdr+payload+crc

// Overhead bytes per frame beyond (eth header + payload + CRC) that still
// occupy the wire: preamble and inter-frame gap.
inline constexpr std::uint32_t kEthWireGapBytes =
    kEthPreambleBytes + kEthIfgBytes;

inline constexpr std::uint32_t kIpHeaderBytes = 20;   // IPv4, no options
inline constexpr std::uint32_t kTcpHeaderBytes = 20;  // base TCP header
inline constexpr std::uint32_t kUdpHeaderBytes = 8;

// TCP timestamp option occupies 10 bytes padded to 12 on every segment when
// negotiated (RFC 1323 appendix A alignment).
inline constexpr std::uint32_t kTcpTimestampOptionBytes = 12;

// Standard MTU values from the paper.
inline constexpr std::uint32_t kMtuStandard = 1500;
inline constexpr std::uint32_t kMtuJumbo = 9000;
inline constexpr std::uint32_t kMtu8160 = 8160;   // fits an 8 KB kmalloc block
inline constexpr std::uint32_t kMtu16000 = 16000; // adapter maximum

/// MSS implied by an MTU with no TCP options ("Loosely speaking,
/// MSS = MTU - packet headers").
constexpr std::uint32_t mss_for_mtu(std::uint32_t mtu) {
  return mtu - kIpHeaderBytes - kTcpHeaderBytes;
}

/// Per-segment payload capacity once per-segment options are deducted.
constexpr std::uint32_t payload_per_segment(std::uint32_t mtu,
                                            bool timestamps) {
  return mss_for_mtu(mtu) - (timestamps ? kTcpTimestampOptionBytes : 0);
}

/// Full frame size on the wire (excluding preamble/IFG) for a TCP segment
/// carrying `payload` bytes.
constexpr std::uint32_t tcp_frame_bytes(std::uint32_t payload,
                                        bool timestamps) {
  return kEthHeaderBytes + kIpHeaderBytes + kTcpHeaderBytes +
         (timestamps ? kTcpTimestampOptionBytes : 0) + payload + kEthCrcBytes;
}

/// Full frame size on the wire for a UDP datagram carrying `payload` bytes.
constexpr std::uint32_t udp_frame_bytes(std::uint32_t payload) {
  return kEthHeaderBytes + kIpHeaderBytes + kUdpHeaderBytes + payload +
         kEthCrcBytes;
}

/// Bytes a frame occupies on the wire including preamble and IFG; enforces
/// the Ethernet minimum frame size.
constexpr std::uint32_t wire_occupancy_bytes(std::uint32_t frame_bytes) {
  const std::uint32_t f =
      frame_bytes < kEthMinFrameBytes ? kEthMinFrameBytes : frame_bytes;
  return f + kEthWireGapBytes;
}

/// Payload efficiency of a TCP stream at a given MTU: payload bits delivered
/// per bit of wire time.
constexpr double tcp_wire_efficiency(std::uint32_t mtu, bool timestamps) {
  const std::uint32_t payload = payload_per_segment(mtu, timestamps);
  const std::uint32_t wire =
      wire_occupancy_bytes(tcp_frame_bytes(payload, timestamps));
  return static_cast<double>(payload) / static_cast<double>(wire);
}

}  // namespace xgbe::net

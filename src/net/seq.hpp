// TCP sequence-number arithmetic (mod 2^32, RFC 793 comparison rules).
#pragma once

#include <cstdint>

namespace xgbe::net {

using Seq = std::uint32_t;

/// a < b in sequence space.
constexpr bool seq_lt(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(Seq a, Seq b) { return seq_lt(b, a); }
constexpr bool seq_ge(Seq a, Seq b) { return seq_le(b, a); }

/// Distance from a to b (b - a) interpreted as a forward span.
constexpr std::uint32_t seq_span(Seq a, Seq b) { return b - a; }

constexpr Seq seq_max(Seq a, Seq b) { return seq_ge(a, b) ? a : b; }
constexpr Seq seq_min(Seq a, Seq b) { return seq_le(a, b) ? a : b; }

/// True if x lies in the half-open interval [lo, hi) in sequence space.
constexpr bool seq_in(Seq x, Seq lo, Seq hi) {
  return seq_le(lo, x) && seq_lt(x, hi);
}

}  // namespace xgbe::net

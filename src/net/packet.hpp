// Simulated packet representation.
//
// Packets carry sizes and protocol metadata, never payload bytes; the
// simulator models where time goes, not what the data says.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.hpp"
#include "net/seq.hpp"
#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace xgbe::net {

/// Network-wide node address (host or router port). Assigned by the testbed.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Identifies a transport flow (connection) within the simulation.
using FlowId = std::uint32_t;

enum class Protocol : std::uint8_t { kTcp, kUdp, kRaw };

/// TCP flag bits (subset the simulator uses).
struct TcpFlags {
  bool syn = false;
  bool fin = false;
  bool ack = false;
  bool rst = false;
  /// ECN echo: receiver tells the sender it saw a CE-marked frame.
  bool ece = false;
  /// Congestion-window-reduced: sender acknowledges the ECE echo.
  bool cwr = false;
};

/// True for segments that belong to connection setup/teardown rather than
/// the data path (SYN, FIN, RST). The fault layer's handshake-phase plans
/// target exactly these.
inline bool is_lifecycle_segment(const TcpFlags& flags) {
  return flags.syn || flags.fin || flags.rst;
}

/// TCP-specific segment metadata.
struct TcpMeta {
  Seq seq = 0;           // first payload byte
  Seq ack = 0;           // cumulative ack (valid if flags.ack)
  TcpFlags flags;
  std::uint32_t window = 0;      // advertised receive window, bytes (scaled)
  bool timestamps = false;       // RFC 1323 timestamp option present
  sim::SimTime ts_val = 0;       // our timestamp clock (ps granularity here)
  sim::SimTime ts_ecr = 0;       // echoed timestamp
  std::uint16_t mss_option = 0;  // SYN-only MSS option (0 = absent)
  std::uint8_t wscale_option = 0;   // SYN-only window-scale shift
  bool wscale_present = false;      // SYN-only: window scaling offered
  bool is_retransmit = false;    // instrumentation only
  /// Non-zero on a TSO super-segment: the adapter re-segments the payload
  /// into frames of at most this many payload bytes (§3.3.2 "Large Send").
  std::uint32_t tso_mss = 0;
  bool push = false;  // PSH: end of an application write
};

/// Per-packet path timestamps for MAGNET-style profiling (§3.2: "MAGNET
/// allowed us to trace and profile the paths taken by individual packets
/// through the TCP stack"). Only filled for sampled packets.
struct PathTrace {
  bool enabled = false;
  sim::SimTime t_nic = 0;      // driver handed the frame to the adapter
  sim::SimTime t_dma_done = 0; // TX DMA read complete
  sim::SimTime t_rx_arrive = 0;  // last bit arrived from the wire
  sim::SimTime t_rx_dma = 0;     // RX DMA write complete
  sim::SimTime t_irq = 0;        // interrupt raised to the kernel
};

/// A frame in flight. The struct is a plain value; copies are cheap.
struct Packet {
  std::uint64_t id = 0;       // unique per simulation, for tracing
  Protocol protocol = Protocol::kRaw;
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t frame_bytes = 0;    // eth header .. CRC inclusive
  std::uint32_t payload_bytes = 0;  // transport payload only
  TcpMeta tcp;                      // valid when protocol == kTcp
  /// Payload damaged on the I/O/memory path AFTER any adapter-side
  /// checksum verification (§3.5.3: "the adapter must still transfer data
  /// across the memory and I/O buses, introducing a potential source of
  /// data errors, errors that a TOE has no way to detect or correct").
  bool corrupted = false;
  /// ECN codepoints (RFC 3168): `ect` set by an ECN-capable sender on data
  /// frames, `ce` stamped by an AQM-enabled switch instead of dropping.
  bool ect = false;
  bool ce = false;
  sim::SimTime created_at = 0;      // when the transport layer emitted it
  sim::SimTime sent_at = 0;         // when serialization onto the wire began
  PathTrace trace;                  // MAGNET sampling (usually disabled)

  /// Wire occupancy (frame + preamble + IFG, min-frame enforced).
  std::uint32_t wire_bytes() const {
    return wire_occupancy_bytes(frame_bytes);
  }
};

/// Builds a bare (payload-less) TCP control segment frame size.
constexpr std::uint32_t tcp_ack_frame_bytes(bool timestamps) {
  return tcp_frame_bytes(0, timestamps);
}

/// Pooled interrupt batch: the adapter recycles batch vectors (capacity and
/// all) through a free list, and the kernel's per-packet continuations share
/// the handle instead of a std::make_shared copy — the NIC→kernel handoff
/// allocates nothing in steady state.
using PacketBatchPool = sim::Pool<std::vector<Packet>>;
using PacketBatch = PacketBatchPool::Handle;

}  // namespace xgbe::net

#include "hw/presets.hpp"

namespace xgbe::hw::presets {

SystemSpec pe2650() {
  SystemSpec s;
  s.name = "Dell PowerEdge 2650";
  s.chipset = "ServerWorks GC-LE";
  s.cpu_count = 2;
  s.cpu_ghz = 2.2;
  s.fsb_mhz = 400.0;
  // STREAM copy on these boxes lands near 1.07 GB/s; the paper infers the
  // GC-HE of the PE4600 is "nearly 50% better" at 12.8 Gb/s (1.6 GB/s).
  s.memory.traversal_bytes_per_sec = 2.15e9;
  s.pcix.clock_mhz = 133.0;
  s.pcix.width_bits = 64;
  // The GC-LE PCI-X bridge pays a high per-transaction cost; this constant
  // reproduces the stock (MMRBC 512) jumbo-frame ceiling of ~2.7 Gb/s.
  s.pcix.burst_overhead = sim::nsec(900);
  s.pcix.descriptor_overhead = sim::nsec(1800);
  s.pcix.write_overhead = sim::nsec(400);
  s.default_mmrbc = 512;
  return s;
}

SystemSpec pe4600() {
  SystemSpec s;
  s.name = "Dell PowerEdge 4600";
  s.chipset = "ServerWorks GC-HE";
  s.cpu_count = 2;
  s.cpu_ghz = 2.4;
  s.fsb_mhz = 400.0;
  s.memory.traversal_bytes_per_sec = 3.2e9;  // STREAM ~12.8 Gb/s copy
  s.pcix.clock_mhz = 100.0;
  s.pcix.width_bits = 64;
  s.pcix.burst_overhead = sim::nsec(850);
  s.pcix.descriptor_overhead = sim::nsec(1700);
  s.pcix.write_overhead = sim::nsec(400);
  s.default_mmrbc = 512;
  return s;
}

SystemSpec intel_e7505() {
  SystemSpec s;
  s.name = "Intel E7505 (dual 2.66 GHz)";
  s.chipset = "Intel E7505";
  s.cpu_count = 2;
  s.cpu_ghz = 2.66;
  s.fsb_mhz = 533.0;
  // STREAM "within a few percent" of the PE2650 (§3.5.2); the faster FSB,
  // not memory bandwidth, explains the out-of-box throughput gap.
  s.memory.traversal_bytes_per_sec = 2.3e9;
  s.pcix.clock_mhz = 100.0;
  s.pcix.width_bits = 64;
  s.pcix.burst_overhead = sim::nsec(450);
  s.pcix.descriptor_overhead = sim::nsec(900);
  s.pcix.write_overhead = sim::nsec(300);
  s.default_mmrbc = 4096;  // E7505 BIOS defaults to large bursts
  return s;
}

SystemSpec itanium2_quad() {
  SystemSpec s;
  s.name = "Itanium-II quad 1.0 GHz";
  s.chipset = "HP zx1";
  s.cpu_count = 4;
  // Itanium-II retires kernel path work comparably to a much
  // higher-clocked Xeon; use an effective scalar clock.
  s.cpu_ghz = 2.6;
  s.fsb_mhz = 400.0;
  s.memory.traversal_bytes_per_sec = 6.4e9;
  s.pcix.clock_mhz = 133.0;
  s.pcix.width_bits = 64;
  s.pcix.burst_overhead = sim::nsec(350);
  s.pcix.descriptor_overhead = sim::nsec(800);
  s.pcix.write_overhead = sim::nsec(250);
  s.default_mmrbc = 4096;
  return s;
}

SystemSpec wan_endpoint() {
  SystemSpec s = pe2650();
  s.name = "WAN endpoint (dual 2.4 GHz Xeon)";
  s.cpu_ghz = 2.4;
  s.default_mmrbc = 4096;
  return s;
}

SystemSpec gbe_client() {
  SystemSpec s;
  s.name = "GbE client";
  s.chipset = "Intel e1000-class";
  s.cpu_count = 1;
  s.cpu_ghz = 2.0;
  s.fsb_mhz = 400.0;
  s.memory.traversal_bytes_per_sec = 2.0e9;
  s.pcix.clock_mhz = 66.0;
  s.pcix.width_bits = 64;
  s.pcix.burst_overhead = sim::nsec(500);
  s.pcix.descriptor_overhead = sim::nsec(1000);
  s.pcix.write_overhead = sim::nsec(400);
  s.default_mmrbc = 512;
  return s;
}

}  // namespace xgbe::hw::presets

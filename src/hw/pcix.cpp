#include "hw/pcix.hpp"

namespace xgbe::hw {

sim::SimTime dma_read_service_time(const PcixSpec& spec, std::uint32_t bytes,
                                   std::uint32_t mmrbc) {
  const sim::SimTime data = sim::transfer_time(bytes, spec.rate_bps());
  const auto bursts = static_cast<sim::SimTime>(burst_count(bytes, mmrbc));
  return data + bursts * spec.burst_overhead + spec.descriptor_overhead;
}

sim::SimTime dma_write_service_time(const PcixSpec& spec,
                                    std::uint32_t bytes) {
  return sim::transfer_time(bytes, spec.rate_bps()) + spec.write_overhead;
}

double effective_read_rate_bps(const PcixSpec& spec,
                               std::uint32_t frame_bytes,
                               std::uint32_t mmrbc) {
  if (frame_bytes == 0) return 0.0;
  const sim::SimTime t = dma_read_service_time(spec, frame_bytes, mmrbc);
  return static_cast<double>(frame_bytes) * 8.0 / sim::to_seconds(t);
}

}  // namespace xgbe::hw

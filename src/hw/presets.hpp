// System presets for every host platform the paper measures.
#pragma once

#include "hw/system.hpp"

namespace xgbe::hw::presets {

/// Dell PowerEdge 2650: dual 2.2 GHz Xeon, 400 MHz FSB, ServerWorks GC-LE,
/// dedicated 133 MHz PCI-X. The paper's main LAN/SAN testbed.
SystemSpec pe2650();

/// Dell PowerEdge 4600: dual 2.4 GHz Xeon, 400 MHz FSB, ServerWorks GC-HE
/// (higher memory bandwidth: STREAM reported 12.8 Gb/s), 100 MHz PCI-X.
SystemSpec pe4600();

/// Intel-provided E7505 system: dual 2.66 GHz Xeon, 533 MHz FSB, 100 MHz
/// PCI-X. Reached 4.64 Gb/s essentially out of the box (§3.4).
SystemSpec intel_e7505();

/// Quad 1.0 GHz Itanium-II (HP zx1 class chipset), 133 MHz PCI-X. Reached
/// 7.2 Gb/s with aggregated inbound flows (§3.4).
SystemSpec itanium2_quad();

/// WAN endpoint used for the Internet2 Land Speed Record: dual 2.4 GHz Xeon,
/// 2 GB memory, dedicated 133 MHz PCI-X (§4.1).
SystemSpec wan_endpoint();

/// Commodity GbE client used as a fan-in/fan-out peer in the multi-flow
/// switch tests; the GbE NIC, not the host, is its bottleneck.
SystemSpec gbe_client();

}  // namespace xgbe::hw::presets

// PCI-X bus model.
//
// The Intel PRO/10GbE adapter sits on a 64-bit PCI-X bus (100 or 133 MHz).
// DMA transfers are split into bursts of at most MMRBC (maximum memory read
// byte count) bytes; each burst pays a fixed transaction overhead
// (arbitration, attribute phase, target initial latency). The paper's MMRBC
// 512 -> 4096 optimization (§3.3) is exactly this amortization.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace xgbe::hw {

struct PcixSpec {
  double clock_mhz = 133.0;
  std::uint32_t width_bits = 64;
  /// Fixed overhead per memory-READ transaction (split-transaction wait on
  /// the bridge). Chipset-dependent: the ServerWorks GC-LE bridge of the
  /// PE2650 pays noticeably more than Intel's E7505 or the HP zx1.
  sim::SimTime burst_overhead = sim::nsec(900);
  /// Per-frame overhead on the transmit (read) path: descriptor fetch plus
  /// the initial split-read latency.
  sim::SimTime descriptor_overhead = sim::nsec(1800);
  /// Per-frame overhead on the receive path. DMA writes to host memory are
  /// posted and stream at full rate, so this is small and MMRBC-independent
  /// (MMRBC = maximum memory READ byte count).
  sim::SimTime write_overhead = sim::nsec(400);

  /// Raw data rate of the bus in bits per second.
  double rate_bps() const { return clock_mhz * 1e6 * width_bits; }
};

/// Legal MMRBC register values on PCI-X.
inline constexpr std::uint32_t kMmrbcValues[] = {512, 1024, 2048, 4096};

constexpr bool is_valid_mmrbc(std::uint32_t v) {
  return v == 512 || v == 1024 || v == 2048 || v == 4096;
}

/// Number of bus bursts needed to move `bytes` with the given MMRBC.
constexpr std::uint32_t burst_count(std::uint32_t bytes, std::uint32_t mmrbc) {
  if (bytes == 0) return 0;
  return (bytes + mmrbc - 1) / mmrbc;
}

/// Transmit-side DMA (adapter READS the frame from host memory): data time
/// plus per-MMRBC-burst overhead plus the per-frame descriptor round trip.
sim::SimTime dma_read_service_time(const PcixSpec& spec, std::uint32_t bytes,
                                   std::uint32_t mmrbc);

/// Receive-side DMA (adapter WRITES the frame into host memory): posted
/// writes stream at the bus rate with only a small per-frame overhead.
sim::SimTime dma_write_service_time(const PcixSpec& spec,
                                    std::uint32_t bytes);

/// Effective transmit throughput (bits/s of frame data) the bus sustains
/// for frames of `frame_bytes` at the given MMRBC (analysis/ablation use).
double effective_read_rate_bps(const PcixSpec& spec,
                               std::uint32_t frame_bytes,
                               std::uint32_t mmrbc);

}  // namespace xgbe::hw

// Host system description.
#pragma once

#include <cstdint>
#include <string>

#include "hw/memory.hpp"
#include "hw/pcix.hpp"

namespace xgbe::hw {

/// Static description of a host platform: CPUs, front-side bus, chipset
/// memory bandwidth, and the PCI-X segment the 10GbE adapter sits on.
/// Kernel path costs in the OS model scale with cpu and FSB speed relative
/// to the reference 2.2 GHz / 400 MHz Dell PE2650.
struct SystemSpec {
  std::string name = "generic";
  std::string chipset = "generic";
  int cpu_count = 2;
  double cpu_ghz = 2.2;
  double fsb_mhz = 400.0;
  MemorySpec memory;
  PcixSpec pcix;
  /// Power-on MMRBC value (BIOS default); tuning may override it.
  std::uint32_t default_mmrbc = 512;

  /// Scale factor for CPU-bound kernel path costs (1.0 on the PE2650).
  double cpu_scale() const { return 2.2 / cpu_ghz; }

  /// Scale factor for FSB-latency-bound costs such as uncached device
  /// register access and descriptor cache misses (1.0 on the PE2650).
  /// The paper (§5) singles out FSB speed as the strongest predictor of
  /// out-of-box throughput.
  double fsb_scale() const { return 400.0 / fsb_mhz; }
};

}  // namespace xgbe::hw

// Memory subsystem model.
//
// The shared memory bus is one of the three serialized resources on a host's
// data path (with the CPUs and the PCI-X bus). Capacity is expressed as a
// raw traversal bandwidth: a CPU copy costs two traversals (read + write), a
// DMA transfer one. The paper's "triple copy" receive path — DMA into kernel
// memory, then copy_to_user read + write — therefore costs three traversals
// per byte, and the host's ~5.5 Gb/s data-movement ceiling falls out of the
// arithmetic rather than being hard-coded.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace xgbe::hw {

struct MemorySpec {
  /// Raw single-traversal bandwidth in bytes/second. STREAM "copy" reports
  /// roughly half this (it performs a read and a write per byte).
  double traversal_bytes_per_sec = 2.15e9;

  /// Bandwidth a STREAM-style copy benchmark would report, bytes/second.
  double stream_copy_bytes_per_sec() const {
    return traversal_bytes_per_sec / 2.0;
  }
};

/// Time the memory bus is occupied by `traversals` passes over `bytes`.
inline sim::SimTime bus_time(const MemorySpec& spec, std::uint64_t bytes,
                             int traversals) {
  const double seconds = static_cast<double>(bytes) *
                         static_cast<double>(traversals) /
                         spec.traversal_bytes_per_sec;
  return sim::from_seconds(seconds);
}

/// CPU time spent executing a memcpy of `bytes` (the CPU is occupied for the
/// read+write duration; it cannot retire other work meanwhile).
inline sim::SimTime cpu_copy_time(const MemorySpec& spec,
                                  std::uint64_t bytes) {
  return bus_time(spec, bytes, 2);
}

}  // namespace xgbe::hw

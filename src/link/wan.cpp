#include "link/wan.hpp"

namespace xgbe::link::wan {

sim::SimTime propagation_for_km(double km) {
  return static_cast<sim::SimTime>(km * kFiberPsPerKm);
}

LinkSpec oc192_pos(double km, std::uint32_t queue_limit_bytes) {
  LinkSpec s;
  s.rate_bps = kOc192LineRateBps;
  s.framing = Framing::kPos;
  s.propagation = propagation_for_km(km);
  s.queue_limit_bytes = queue_limit_bytes;
  return s;
}

LinkSpec oc48_pos(double km, std::uint32_t queue_limit_bytes) {
  LinkSpec s;
  s.rate_bps = kOc48LineRateBps;
  s.framing = Framing::kPos;
  s.propagation = propagation_for_km(km);
  s.queue_limit_bytes = queue_limit_bytes;
  return s;
}

SwitchSpec router_spec(std::uint32_t buffer_bytes) {
  SwitchSpec s;
  s.fabric_latency = sim::usec(25);
  s.backplane_bps = 640e9;
  // Carrier routers of the GSR 12406 / T640 era carried hundreds of
  // milliseconds of buffering per OC-48/OC-192 port; anything much smaller
  // tail-drops slow-start bursts long before the flow window fills.
  s.port_buffer_bytes = buffer_bytes;
  return s;
}

}  // namespace xgbe::link::wan

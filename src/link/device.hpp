// Attachment point interface for anything that terminates a link.
#pragma once

#include "net/packet.hpp"

namespace xgbe::link {

/// A device that can receive fully-arrived frames (adapter, switch port,
/// WAN hop). Store-and-forward semantics: deliver() fires only when the
/// last bit has arrived.
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  virtual void deliver(const net::Packet& pkt) = 0;
};

}  // namespace xgbe::link

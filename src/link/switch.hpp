// Store-and-forward Ethernet switch (Foundry FastIron 1500 class).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "link/device.hpp"
#include "link/link.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::link {

/// Active queue management flavor for a switch's egress ports.
enum class AqmMode : std::uint8_t {
  kTailDrop,      // classic: drop only when the port buffer is full
  kRed,           // RED early drop on the EWMA queue depth
  kRedEcn,        // RED, but ECT frames are CE-marked instead of dropped
  kEcnThreshold,  // DCTCP-style: mark ECT frames past an instantaneous K
};

/// Per-port AQM configuration. All arithmetic is integer and the random
/// draw is a per-port xorshift64* stream seeded from `seed` and the port
/// index, so drop/mark decisions are bit-identical across reruns, shard
/// counts, and thread counts (each switch's egress events already execute
/// in deterministic order on its owning shard).
struct AqmSpec {
  AqmMode mode = AqmMode::kTailDrop;
  /// RED thresholds on the *average* queue depth in bytes: below min the
  /// frame always passes, above max it always drops/marks, in between the
  /// probability ramps linearly up to max_p_permil/1000.
  std::uint32_t min_threshold_bytes = 0;
  std::uint32_t max_threshold_bytes = 0;
  std::uint32_t max_p_permil = 100;
  /// EWMA gain: avg += (instantaneous - avg) / 2^ewma_shift per arrival
  /// (Floyd/Jacobson w_q = 1/512 at the default).
  int ewma_shift = 9;
  /// kEcnThreshold: mark when the instantaneous depth would exceed this
  /// (the DCTCP "K" parameter, in bytes).
  std::uint32_t mark_threshold_bytes = 0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  bool active() const { return mode != AqmMode::kTailDrop; }
};

struct SwitchSpec {
  /// Forwarding latency through the fabric once a frame has fully arrived.
  /// Calibrated to the ~6 µs delta the paper measures between back-to-back
  /// (19 µs) and through-switch (25 µs) latency.
  sim::SimTime fabric_latency = sim::usec_f(5.9);
  /// Aggregate backplane bandwidth (48 Gb/s per the paper's FastIron 1500
  /// configuration note: "total backplane bandwidth (480 Gb/s)" in the
  /// datasheet, 48 Gb/s per module; far beyond these tests either way).
  double backplane_bps = 480e9;
  /// Output-queue capacity per port, bytes (tail drop beyond this).
  std::uint32_t port_buffer_bytes = 2 * 1024 * 1024;
  /// Opt-in per-port observability: register_metrics() additionally exposes
  /// each port's forwarded/tail-drop counters and queue-depth gauges under
  /// "<prefix>/port/<link-name>/...". Off by default so pre-existing
  /// topologies keep byte-identical registry snapshots (the golden-file
  /// contract); the fabric builder turns it on.
  bool port_metrics = false;
  /// Egress AQM (RED / ECN marking). Inactive by default: tail drop only,
  /// and no AQM counters appear in registry snapshots.
  AqmSpec aqm;
};

/// Output-queued store-and-forward switch. Each port terminates one Link;
/// forwarding is by destination NodeId (the testbed populates the table).
/// A destination may map to a *group* of ports (ECMP trunking): the egress
/// is picked by a deterministic hash of the frame's (src, dst, flow), so a
/// flow always takes one path (no intra-flow reordering) and the choice
/// depends only on packet fields and table-programming order — never on
/// shard partitioning or thread scheduling.
class EthernetSwitch {
 public:
  EthernetSwitch(sim::Simulator& simulator, const SwitchSpec& spec,
                 std::string name);
  ~EthernetSwitch();

  EthernetSwitch(const EthernetSwitch&) = delete;
  EthernetSwitch& operator=(const EthernetSwitch&) = delete;

  /// Adds a port wired to `wire`; the switch occupies `side_a` of the link
  /// if true, side b otherwise. Returns the port index.
  int add_port(Link* wire, bool side_a);

  /// Overrides one port's egress buffer capacity (real switches give uplink
  /// ports the deeper share of packet memory). 0 restores the switch-wide
  /// spec().port_buffer_bytes.
  void set_port_buffer(int port, std::uint32_t bytes);

  /// Maps a destination address to an egress port.
  void learn(net::NodeId node, int port);

  /// Maps a destination address to an ECMP group: each frame picks one of
  /// `ports` by flow hash. The port order is part of the forwarding state —
  /// program it identically across runs (topology construction does).
  void learn_group(net::NodeId node, std::vector<int> ports);

  const SwitchSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_queue_full() const { return dropped_queue_full_; }
  /// AQM outcomes (0 unless spec().aqm is active).
  std::uint64_t dropped_red() const { return dropped_red_; }
  std::uint64_t ce_marked() const { return ce_marked_; }
  std::uint32_t queued_bytes(int port) const;

  // --- Per-port accounting --------------------------------------------------
  std::size_t port_count() const { return ports_.size(); }
  std::uint64_t port_forwarded(int port) const;
  std::uint64_t port_dropped_queue_full(int port) const;
  /// High-water mark of the port's egress queue, bytes.
  std::uint32_t port_peak_queued(int port) const;
  std::uint64_t port_dropped_red(int port) const;
  std::uint64_t port_ce_marked(int port) const;
  /// Name of the link the port terminates ("" when detached).
  const std::string& port_link_name(int port) const;

  /// Faults applied at ingress, before forwarding: a misbehaving fabric
  /// drops, corrupts, duplicates, or delays frames crossing it.
  void set_fault_plan(const fault::FaultPlan& plan) { fault_.set_plan(plan); }
  fault::FaultInjector& fault_injector() { return fault_; }
  const fault::FaultCounters& fault_counters() const {
    return fault_.counters();
  }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink: fabric fault drops, no-route drops, and egress
  /// tail drops emit kWireDrop events annotated with this switch's name.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Registers forwarding and fault counters under `prefix`; when
  /// spec().port_metrics is set, also per-port counters and queue gauges.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler: ingress marks the switch-queue stage (the
  /// egress link's transmit then re-marks wire); drops abort the journey.
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  class Port;
  /// One forwarding entry: a single port or an ECMP group.
  struct Route {
    std::vector<int> ports;
  };
  void on_frame(int ingress, const net::Packet& pkt);
  void egress_frame(int port, const net::Packet& pkt);
  int pick_port(const Route& route, const net::Packet& pkt) const;

  sim::Simulator& sim_;
  SwitchSpec spec_;
  std::string name_;
  sim::Resource backplane_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<net::NodeId, Route> fdb_;
  fault::FaultInjector fault_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  std::uint64_t dropped_red_ = 0;
  std::uint64_t ce_marked_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::link

// Store-and-forward Ethernet switch (Foundry FastIron 1500 class).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "link/device.hpp"
#include "link/link.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::link {

struct SwitchSpec {
  /// Forwarding latency through the fabric once a frame has fully arrived.
  /// Calibrated to the ~6 µs delta the paper measures between back-to-back
  /// (19 µs) and through-switch (25 µs) latency.
  sim::SimTime fabric_latency = sim::usec_f(5.9);
  /// Aggregate backplane bandwidth (48 Gb/s per the paper's FastIron 1500
  /// configuration note: "total backplane bandwidth (480 Gb/s)" in the
  /// datasheet, 48 Gb/s per module; far beyond these tests either way).
  double backplane_bps = 480e9;
  /// Output-queue capacity per port, bytes (tail drop beyond this).
  std::uint32_t port_buffer_bytes = 2 * 1024 * 1024;
};

/// Output-queued store-and-forward switch. Each port terminates one Link;
/// forwarding is by destination NodeId (the testbed populates the table).
class EthernetSwitch {
 public:
  EthernetSwitch(sim::Simulator& simulator, const SwitchSpec& spec,
                 std::string name);
  ~EthernetSwitch();

  EthernetSwitch(const EthernetSwitch&) = delete;
  EthernetSwitch& operator=(const EthernetSwitch&) = delete;

  /// Adds a port wired to `wire`; the switch occupies `side_a` of the link
  /// if true, side b otherwise. Returns the port index.
  int add_port(Link* wire, bool side_a);

  /// Maps a destination address to an egress port.
  void learn(net::NodeId node, int port);

  const SwitchSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_queue_full() const { return dropped_queue_full_; }
  std::uint32_t queued_bytes(int port) const;

  /// Faults applied at ingress, before forwarding: a misbehaving fabric
  /// drops, corrupts, duplicates, or delays frames crossing it.
  void set_fault_plan(const fault::FaultPlan& plan) { fault_.set_plan(plan); }
  fault::FaultInjector& fault_injector() { return fault_; }
  const fault::FaultCounters& fault_counters() const {
    return fault_.counters();
  }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink: fabric fault drops, no-route drops, and egress
  /// tail drops emit kWireDrop events annotated with this switch's name.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Registers forwarding and fault counters under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler: ingress marks the switch-queue stage (the
  /// egress link's transmit then re-marks wire); drops abort the journey.
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  class Port;
  void on_frame(int ingress, const net::Packet& pkt);
  void egress_frame(int port, const net::Packet& pkt);

  sim::Simulator& sim_;
  SwitchSpec spec_;
  std::string name_;
  sim::Resource backplane_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<net::NodeId, int> fdb_;
  fault::FaultInjector fault_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::link

#include "link/link.hpp"

#include <cassert>

#include "net/headers.hpp"

namespace xgbe::link {

Link::Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name)
    : sim_(simulator),
      spec_(spec),
      name_(std::move(name)),
      ab_(simulator, name_ + "/ab"),
      ba_(simulator, name_ + "/ba"),
      rng_(spec.loss_seed) {}

std::uint32_t Link::occupancy_bytes(const net::Packet& pkt) const {
  if (spec_.framing == Framing::kEthernet) return pkt.wire_bytes();
  // POS: the IP packet is re-framed in PPP/HDLC; strip the Ethernet header
  // and CRC, add the POS overhead.
  const std::uint32_t eth_overhead =
      net::kEthHeaderBytes + net::kEthCrcBytes;
  const std::uint32_t ip_bytes = pkt.frame_bytes > eth_overhead
                                     ? pkt.frame_bytes - eth_overhead
                                     : pkt.frame_bytes;
  return ip_bytes + kPosFrameOverheadBytes;
}

double Link::effective_rate_bps() const {
  return spec_.framing == Framing::kPos
             ? spec_.rate_bps * spec_.sonet_efficiency
             : spec_.rate_bps;
}

sim::SimTime Link::serialization_time(const net::Packet& pkt) const {
  return sim::transfer_time(occupancy_bytes(pkt), effective_rate_bps());
}

std::uint32_t Link::backlog(const NetDevice* from) const {
  return from == a_ ? ab_.backlog_bytes : ba_.backlog_bytes;
}

void Link::transmit(const NetDevice* from, const net::Packet& pkt,
                    sim::InlineCallback tx_done) {
  assert(from == a_ || from == b_);
  const bool forward = (from == a_);
  Direction& dir = forward ? ab_ : ba_;
  NetDevice* sink = forward ? b_ : a_;

  if (spec_.queue_limit_bytes != 0 &&
      dir.backlog_bytes + pkt.frame_bytes > spec_.queue_limit_bytes) {
    ++drops_queue_;
    if (tx_done) sim_.schedule(0, std::move(tx_done));
    return;
  }

  if (tap) tap(pkt, forward);
  dir.backlog_bytes += pkt.frame_bytes;
  const sim::SimTime ser = serialization_time(pkt);
  const sim::SimTime done_at = dir.pipe.submit(
      ser, [this, &dir, bytes = pkt.frame_bytes,
            tx_done = std::move(tx_done)]() mutable {
        dir.backlog_bytes =
            dir.backlog_bytes > bytes ? dir.backlog_bytes - bytes : 0;
        if (tx_done) tx_done();
      });

  if (forced_drops_ > 0 && pkt.payload_bytes > 0) {
    --forced_drops_;
    ++drops_forced_;
    return;
  }
  const bool lost = spec_.loss_rate > 0.0 && rng_.chance(spec_.loss_rate);
  if (lost) {
    ++drops_random_;
    return;
  }
  if (sink != nullptr) {
    ++frames_;
    bytes_ += pkt.frame_bytes;
    sim_.schedule_at(done_at + spec_.propagation,
                     [sink, pkt]() { sink->deliver(pkt); });
  }
}

}  // namespace xgbe::link

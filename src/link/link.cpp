#include "link/link.hpp"

#include <cassert>

#include "net/headers.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::link {

namespace {

fault::FaultPlan legacy_plan(const LinkSpec& spec) {
  fault::FaultPlan plan;
  plan.seed = spec.loss_seed;
  plan.loss_rate = spec.loss_rate;
  return plan;
}

// Reverse-direction decorrelation constant, same as set_fault_plan().
constexpr std::uint64_t kReverseSeedMix = 0x9e3779b97f4a7c15ULL;

}  // namespace

Link::Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name)
    : spec_(spec),
      name_(std::move(name)),
      ab_(simulator, name_ + "/ab"),
      ba_(simulator, name_ + "/ba"),
      script_(legacy_plan(spec)) {
  ab_.script = &script_;
  ba_.script = &script_;
}

Link::Link(sim::ShardedEngine& engine, std::size_t shard_a,
           std::size_t shard_b, const LinkSpec& spec, std::string name)
    : spec_(spec),
      name_(std::move(name)),
      sharded_(true),
      ab_(engine.shard(shard_a), name_ + "/ab"),
      ba_(engine.shard(shard_b), name_ + "/ba"),
      script_(legacy_plan(spec)) {
  // The two directions run on different threads, so the legacy loss plan
  // splits into per-direction injectors with decorrelated seeds (mirroring
  // set_fault_plan's forward/reverse split). The shared script_ stays idle.
  fault::FaultPlan forward = legacy_plan(spec);
  fault::FaultPlan reverse = forward;
  reverse.seed = forward.seed ^ kReverseSeedMix;
  ab_.own_script.set_plan(forward);
  ba_.own_script.set_plan(reverse);
  ab_.script = &ab_.own_script;
  ba_.script = &ba_.own_script;
  // Every delivery — same-shard ones included, so results cannot depend on
  // where hosts landed — goes through a barrier-committed channel. The
  // destination of a->b traffic is the B side's shard (where ba_ transmits
  // from) and vice versa.
  ab_.use_channel = true;
  ba_.use_channel = true;
  ab_channel_.bind(this, /*forward=*/true, ba_.sim);
  ba_channel_.bind(this, /*forward=*/false, ab_.sim);
  engine.register_channel(&ab_channel_);
  engine.register_channel(&ba_channel_);
}

void Link::set_fault_plan(const fault::FaultPlan& plan) {
  fault_ab_.set_plan(plan);
  fault::FaultPlan reverse = plan;
  reverse.seed = plan.seed ^ kReverseSeedMix;
  fault_ba_.set_plan(reverse);
}

void Link::set_fault_plan(const fault::FaultPlan& plan, bool from_a) {
  (from_a ? fault_ab_ : fault_ba_).set_plan(plan);
}

fault::FaultCounters Link::fault_counters() const {
  fault::FaultCounters total = script_.counters();
  total += ab_.own_script.counters();
  total += ba_.own_script.counters();
  total += fault_ab_.counters();
  total += fault_ba_.counters();
  return total;
}

std::uint32_t Link::occupancy_bytes(const net::Packet& pkt) const {
  if (spec_.framing == Framing::kEthernet) return pkt.wire_bytes();
  // POS: the IP packet is re-framed in PPP/HDLC; strip the Ethernet header
  // and CRC, add the POS overhead.
  const std::uint32_t eth_overhead =
      net::kEthHeaderBytes + net::kEthCrcBytes;
  const std::uint32_t ip_bytes = pkt.frame_bytes > eth_overhead
                                     ? pkt.frame_bytes - eth_overhead
                                     : pkt.frame_bytes;
  return ip_bytes + kPosFrameOverheadBytes;
}

double Link::effective_rate_bps() const {
  return spec_.framing == Framing::kPos
             ? spec_.rate_bps * spec_.sonet_efficiency
             : spec_.rate_bps;
}

sim::SimTime Link::serialization_time(const net::Packet& pkt) const {
  return sim::transfer_time(occupancy_bytes(pkt), effective_rate_bps());
}

std::uint32_t Link::backlog(const NetDevice* from) const {
  return from == a_ ? ab_.backlog_bytes : ba_.backlog_bytes;
}

void Link::Channel::commit_entry(std::size_t index) {
  NetDevice* sink = forward_ ? link_->b_ : link_->a_;
  if (sink == nullptr) return;
  // Conservative lookahead guarantees the arrival lands strictly past the
  // window the frame was transmitted in, so the destination clock has not
  // reached it yet; schedule_at never has to clamp.
  assert(entries_[index].at >= dst_->now());
  auto rec = pool_.acquire();
  rec->pkt = entries_[index].pkt;
  rec->sink = sink;
  dst_->schedule_at(entries_[index].at,
                    [rec]() { rec->sink->deliver(rec->pkt); });
}

void Link::transmit(const NetDevice* from, const net::Packet& pkt,
                    sim::InlineCallback tx_done) {
  assert(from == a_ || from == b_);
  const bool forward = (from == a_);
  Direction& dir = forward ? ab_ : ba_;
  NetDevice* sink = forward ? b_ : a_;
  sim::Simulator& sim = *dir.sim;

  if (spec_.queue_limit_bytes != 0 &&
      dir.backlog_bytes + pkt.frame_bytes > spec_.queue_limit_bytes) {
    ++dir.drops_queue;
    if (dir.trace) {
      dir.trace->record_packet(obs::EventType::kWireDrop, sim.now(), pkt,
                               name_.c_str(), "queue-full");
    }
    if (spans_) spans_->abort(pkt);
    if (tx_done) sim.schedule(0, std::move(tx_done));
    return;
  }

  if (tap) tap(pkt, forward);
  dir.backlog_bytes += pkt.frame_bytes;
  if (dir.backlog_bytes > dir.peak_backlog) {
    dir.peak_backlog = dir.backlog_bytes;
  }
  const sim::SimTime ser = serialization_time(pkt);
  sim::SimTime done_at;
  if (tx_done) {
    // The continuation closes over a caller callback that can exceed the
    // inline buffer; park it in a pooled node so the hot path stays
    // allocation-free. The node is cleared after firing so whatever the
    // callback captured is released immediately, not at node reuse.
    auto cont = dir.cont_pool.acquire();
    *cont = std::move(tx_done);
    done_at = dir.pipe.submit(
        ser, [dirp = &dir, bytes = pkt.frame_bytes, cont]() {
          dirp->backlog_bytes =
              dirp->backlog_bytes > bytes ? dirp->backlog_bytes - bytes : 0;
          (*cont)();
          *cont = nullptr;
        });
  } else {
    done_at =
        dir.pipe.submit(ser, [dirp = &dir, bytes = pkt.frame_bytes]() {
          dirp->backlog_bytes =
              dirp->backlog_bytes > bytes ? dirp->backlog_bytes - bytes : 0;
        });
  }

  // Scripted/legacy injector first (forced drops + LinkSpec loss), then the
  // direction's own plan. A frame the script loses never reaches the
  // directional injector — it is already off the wire. In classic mode both
  // directions share one script RNG in transmit order; sharded mode uses
  // per-direction scripts so the draw sequence cannot depend on thread
  // interleaving.
  const sim::SimTime now = sim.now();
  fault::FaultDecision verdict = dir.script->decide(pkt, now);
  if (!verdict.drop) {
    fault::FaultInjector& dir_fault = forward ? fault_ab_ : fault_ba_;
    if (dir_fault.active()) {
      const fault::FaultDecision extra = dir_fault.decide(pkt, now);
      if (extra.drop) {
        verdict = extra;
      } else {
        verdict.corrupt = verdict.corrupt || extra.corrupt;
        verdict.duplicate = extra.duplicate;
        verdict.extra_delay = extra.extra_delay;
        verdict.duplicate_delay = extra.duplicate_delay;
      }
    }
  }
  // One trace event per frame, emitted after the verdict so drops carry
  // their cause. The sink consumes no randomness, so emission position
  // cannot perturb the fault RNG sequence.
  if (dir.trace) {
    if (verdict.drop) {
      dir.trace->record_packet(obs::EventType::kWireDrop, now, pkt,
                               name_.c_str(), fault::cause_name(verdict.cause));
    } else {
      dir.trace->record_packet(obs::EventType::kWireTx, now, pkt,
                               name_.c_str());
    }
  }
  // The wire stage opens here and accumulates per hop (pipe queueing +
  // serialization + propagation all land in it).
  if (spans_ != nullptr) {
    if (verdict.drop) {
      spans_->abort(pkt);
    } else {
      spans_->mark(pkt, obs::Stage::kWire, now);
    }
  }
  if (verdict.drop) return;

  if (sink != nullptr) {
    ++dir.frames;
    dir.bytes += pkt.frame_bytes;
    net::Packet out = pkt;
    if (verdict.corrupt) out.corrupted = true;
    const sim::SimTime arrival =
        done_at + spec_.propagation + verdict.extra_delay;
    if (dir.use_channel) {
      Channel& channel = forward ? ab_channel_ : ba_channel_;
      channel.push(arrival, out);
      if (verdict.duplicate) {
        channel.push(arrival + verdict.duplicate_delay, out);
      }
    } else {
      auto rec = dir.delivery_pool.acquire();
      rec->pkt = out;
      rec->sink = sink;
      sim.schedule_at(arrival, [rec]() { rec->sink->deliver(rec->pkt); });
      if (verdict.duplicate) {
        auto dup = dir.delivery_pool.acquire();
        dup->pkt = out;
        dup->sink = sink;
        sim.schedule_at(arrival + verdict.duplicate_delay,
                        [dup]() { dup->sink->deliver(dup->pkt); });
      }
    }
  }
}

void Link::register_metrics(obs::Registry& reg,
                            const std::string& prefix) const {
  reg.counter(prefix + "/frames_delivered",
              [this] { return frames_delivered(); });
  reg.counter(prefix + "/bytes_delivered",
              [this] { return bytes_delivered(); });
  reg.counter(prefix + "/drops_queue", [this] { return drops_queue(); });
  // Aggregate of the scripted injector and both directional injectors.
  auto field = [&](const char* name,
                   std::uint64_t fault::FaultCounters::* member) {
    reg.counter(prefix + "/fault/" + name,
                [this, member] { return fault_counters().*member; });
  };
  field("frames_seen", &fault::FaultCounters::frames_seen);
  field("drops_forced", &fault::FaultCounters::drops_forced);
  field("drops_uniform", &fault::FaultCounters::drops_uniform);
  field("drops_burst", &fault::FaultCounters::drops_burst);
  field("drops_carrier", &fault::FaultCounters::drops_carrier);
  // Only plans that use the handshake-loss family expose its counter:
  // pre-existing plans keep byte-identical registry snapshots.
  if (fault_injector(true).plan().handshake_loss_rate > 0.0 ||
      fault_injector(false).plan().handshake_loss_rate > 0.0) {
    field("drops_handshake", &fault::FaultCounters::drops_handshake);
  }
  field("corruptions", &fault::FaultCounters::corruptions);
  field("duplicates", &fault::FaultCounters::duplicates);
  field("reorders", &fault::FaultCounters::reorders);
  field("flaps", &fault::FaultCounters::flaps);
  if (!spec_.detail_metrics) return;
  // Per-direction split plus the configured line rate: the fleet doctor's
  // inputs for direction attribution and negotiated-speed comparison.
  reg.gauge(prefix + "/rate_bps", [this] { return spec_.rate_bps; });
  const auto direction = [&](const char* tag, const Direction& dir) {
    const std::string p = prefix + "/" + tag;
    reg.counter(p + "/frames_delivered", [&dir] { return dir.frames; });
    reg.counter(p + "/bytes_delivered", [&dir] { return dir.bytes; });
    reg.counter(p + "/drops_queue", [&dir] { return dir.drops_queue; });
    reg.gauge(p + "/peak_backlog_bytes", [&dir] {
      return static_cast<double>(dir.peak_backlog);
    });
  };
  direction("ab", ab_);
  direction("ba", ba_);
}

}  // namespace xgbe::link

#include "link/link.hpp"

#include <cassert>

#include "net/headers.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::link {

namespace {

fault::FaultPlan legacy_plan(const LinkSpec& spec) {
  fault::FaultPlan plan;
  plan.seed = spec.loss_seed;
  plan.loss_rate = spec.loss_rate;
  return plan;
}

}  // namespace

Link::Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name)
    : sim_(simulator),
      spec_(spec),
      name_(std::move(name)),
      ab_(simulator, name_ + "/ab"),
      ba_(simulator, name_ + "/ba"),
      script_(legacy_plan(spec)) {}

void Link::set_fault_plan(const fault::FaultPlan& plan) {
  fault_ab_.set_plan(plan);
  fault::FaultPlan reverse = plan;
  reverse.seed = plan.seed ^ 0x9e3779b97f4a7c15ULL;
  fault_ba_.set_plan(reverse);
}

void Link::set_fault_plan(const fault::FaultPlan& plan, bool from_a) {
  (from_a ? fault_ab_ : fault_ba_).set_plan(plan);
}

fault::FaultCounters Link::fault_counters() const {
  fault::FaultCounters total = script_.counters();
  total += fault_ab_.counters();
  total += fault_ba_.counters();
  return total;
}

std::uint32_t Link::occupancy_bytes(const net::Packet& pkt) const {
  if (spec_.framing == Framing::kEthernet) return pkt.wire_bytes();
  // POS: the IP packet is re-framed in PPP/HDLC; strip the Ethernet header
  // and CRC, add the POS overhead.
  const std::uint32_t eth_overhead =
      net::kEthHeaderBytes + net::kEthCrcBytes;
  const std::uint32_t ip_bytes = pkt.frame_bytes > eth_overhead
                                     ? pkt.frame_bytes - eth_overhead
                                     : pkt.frame_bytes;
  return ip_bytes + kPosFrameOverheadBytes;
}

double Link::effective_rate_bps() const {
  return spec_.framing == Framing::kPos
             ? spec_.rate_bps * spec_.sonet_efficiency
             : spec_.rate_bps;
}

sim::SimTime Link::serialization_time(const net::Packet& pkt) const {
  return sim::transfer_time(occupancy_bytes(pkt), effective_rate_bps());
}

std::uint32_t Link::backlog(const NetDevice* from) const {
  return from == a_ ? ab_.backlog_bytes : ba_.backlog_bytes;
}

void Link::transmit(const NetDevice* from, const net::Packet& pkt,
                    sim::InlineCallback tx_done) {
  assert(from == a_ || from == b_);
  const bool forward = (from == a_);
  Direction& dir = forward ? ab_ : ba_;
  NetDevice* sink = forward ? b_ : a_;

  if (spec_.queue_limit_bytes != 0 &&
      dir.backlog_bytes + pkt.frame_bytes > spec_.queue_limit_bytes) {
    ++drops_queue_;
    if (trace_) {
      trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                            name_.c_str(), "queue-full");
    }
    if (spans_) spans_->abort(pkt);
    if (tx_done) sim_.schedule(0, std::move(tx_done));
    return;
  }

  if (tap) tap(pkt, forward);
  dir.backlog_bytes += pkt.frame_bytes;
  const sim::SimTime ser = serialization_time(pkt);
  const sim::SimTime done_at = dir.pipe.submit(
      ser, [this, &dir, bytes = pkt.frame_bytes,
            tx_done = std::move(tx_done)]() mutable {
        dir.backlog_bytes =
            dir.backlog_bytes > bytes ? dir.backlog_bytes - bytes : 0;
        if (tx_done) tx_done();
      });

  // Shared scripted/legacy injector first (forced drops + LinkSpec loss,
  // one RNG across both directions), then the direction's own plan. A
  // frame the script loses never reaches the directional injector — it is
  // already off the wire.
  const sim::SimTime now = sim_.now();
  fault::FaultDecision verdict = script_.decide(pkt, now);
  if (!verdict.drop) {
    fault::FaultInjector& dir_fault = forward ? fault_ab_ : fault_ba_;
    if (dir_fault.active()) {
      const fault::FaultDecision extra = dir_fault.decide(pkt, now);
      if (extra.drop) {
        verdict = extra;
      } else {
        verdict.corrupt = verdict.corrupt || extra.corrupt;
        verdict.duplicate = extra.duplicate;
        verdict.extra_delay = extra.extra_delay;
        verdict.duplicate_delay = extra.duplicate_delay;
      }
    }
  }
  // One trace event per frame, emitted after the verdict so drops carry
  // their cause. The sink consumes no randomness, so emission position
  // cannot perturb the fault RNG sequence.
  if (trace_) {
    if (verdict.drop) {
      trace_->record_packet(obs::EventType::kWireDrop, now, pkt,
                            name_.c_str(), fault::cause_name(verdict.cause));
    } else {
      trace_->record_packet(obs::EventType::kWireTx, now, pkt, name_.c_str());
    }
  }
  // The wire stage opens here and accumulates per hop (pipe queueing +
  // serialization + propagation all land in it).
  if (spans_ != nullptr) {
    if (verdict.drop) {
      spans_->abort(pkt);
    } else {
      spans_->mark(pkt, obs::Stage::kWire, now);
    }
  }
  if (verdict.drop) return;

  if (sink != nullptr) {
    ++frames_;
    bytes_ += pkt.frame_bytes;
    net::Packet out = pkt;
    if (verdict.corrupt) out.corrupted = true;
    const sim::SimTime arrival =
        done_at + spec_.propagation + verdict.extra_delay;
    sim_.schedule_at(arrival, [sink, out]() { sink->deliver(out); });
    if (verdict.duplicate) {
      sim_.schedule_at(arrival + verdict.duplicate_delay,
                       [sink, out]() { sink->deliver(out); });
    }
  }
}

void Link::register_metrics(obs::Registry& reg,
                            const std::string& prefix) const {
  reg.counter(prefix + "/frames_delivered", [this] { return frames_; });
  reg.counter(prefix + "/bytes_delivered", [this] { return bytes_; });
  reg.counter(prefix + "/drops_queue", [this] { return drops_queue_; });
  // Aggregate of the scripted injector and both directional injectors.
  auto field = [&](const char* name,
                   std::uint64_t fault::FaultCounters::* member) {
    reg.counter(prefix + "/fault/" + name,
                [this, member] { return fault_counters().*member; });
  };
  field("frames_seen", &fault::FaultCounters::frames_seen);
  field("drops_forced", &fault::FaultCounters::drops_forced);
  field("drops_uniform", &fault::FaultCounters::drops_uniform);
  field("drops_burst", &fault::FaultCounters::drops_burst);
  field("drops_carrier", &fault::FaultCounters::drops_carrier);
  field("corruptions", &fault::FaultCounters::corruptions);
  field("duplicates", &fault::FaultCounters::duplicates);
  field("reorders", &fault::FaultCounters::reorders);
  field("flaps", &fault::FaultCounters::flaps);
}

}  // namespace xgbe::link

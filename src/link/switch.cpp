#include "link/switch.hpp"

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::link {

/// One switch port: receives frames from its link and forwards them into
/// the fabric; egress frames queue here until the link transmitter frees.
class EthernetSwitch::Port : public NetDevice {
 public:
  Port(EthernetSwitch& parent, int index, Link* wire, bool side_a)
      : parent_(parent), index_(index), wire_(wire), side_a_(side_a) {
    if (side_a_) {
      wire_->attach_a(this);
    } else {
      wire_->attach_b(this);
    }
  }

  void deliver(const net::Packet& pkt) override {
    parent_.on_frame(index_, pkt);
  }

  void send(const net::Packet& pkt) {
    queued_ += pkt.frame_bytes;
    wire_->transmit(this, pkt, [this, bytes = pkt.frame_bytes]() {
      queued_ = queued_ > bytes ? queued_ - bytes : 0;
    });
  }

  std::uint32_t queued() const { return queued_; }

 private:
  EthernetSwitch& parent_;
  int index_;
  Link* wire_;
  bool side_a_;
  std::uint32_t queued_ = 0;
};

EthernetSwitch::EthernetSwitch(sim::Simulator& simulator,
                               const SwitchSpec& spec, std::string name)
    : sim_(simulator),
      spec_(spec),
      name_(std::move(name)),
      backplane_(simulator, name_ + "/backplane") {}

EthernetSwitch::~EthernetSwitch() = default;

int EthernetSwitch::add_port(Link* wire, bool side_a) {
  const int index = static_cast<int>(ports_.size());
  ports_.push_back(std::make_unique<Port>(*this, index, wire, side_a));
  return index;
}

void EthernetSwitch::learn(net::NodeId node, int port) { fdb_[node] = port; }

std::uint32_t EthernetSwitch::queued_bytes(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->queued();
}

void EthernetSwitch::on_frame(int /*ingress*/, const net::Packet& pkt) {
  net::Packet frame = pkt;
  fault::FaultDecision verdict;
  if (fault_.active()) {
    verdict = fault_.decide(pkt, sim_.now());
    if (verdict.drop) {
      if (trace_) {
        trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                              name_.c_str(),
                              fault::cause_name(verdict.cause));
      }
      if (spans_) spans_->abort(pkt);
      return;
    }
    if (verdict.corrupt) frame.corrupted = true;
  }
  const auto it = fdb_.find(frame.dst);
  if (it == fdb_.end()) {
    ++dropped_no_route_;
    if (trace_) {
      trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                            name_.c_str(), "no-route");
    }
    if (spans_) spans_->abort(pkt);
    return;
  }
  const int egress = it->second;
  // Frame fully arrived and routed: the first wire hop ends, time in the
  // fabric + egress queue belongs to switch-queue (until the egress link's
  // transmit re-enters wire).
  if (spans_) spans_->mark(frame, obs::Stage::kSwitchQueue, sim_.now());
  // The fabric moves the frame to the egress queue; model its bandwidth as
  // a shared serialized resource plus fixed pipeline latency.
  const sim::SimTime fabric_time =
      sim::transfer_time(frame.frame_bytes, spec_.backplane_bps);
  backplane_.submit(fabric_time);
  const sim::SimTime cross = spec_.fabric_latency + fabric_time;
  sim_.schedule(cross + verdict.extra_delay,
                [this, egress, frame]() { egress_frame(egress, frame); });
  if (verdict.duplicate) {
    sim_.schedule(cross + verdict.extra_delay + verdict.duplicate_delay,
                  [this, egress, frame]() { egress_frame(egress, frame); });
  }
}

void EthernetSwitch::egress_frame(int port, const net::Packet& pkt) {
  Port& out = *ports_.at(static_cast<std::size_t>(port));
  if (out.queued() + pkt.frame_bytes > spec_.port_buffer_bytes) {
    ++dropped_queue_full_;  // tail drop
    if (trace_) {
      trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                            name_.c_str(), "port-buffer-full");
    }
    if (spans_) spans_->abort(pkt);
    return;
  }
  ++forwarded_;
  out.send(pkt);
}

void EthernetSwitch::register_metrics(obs::Registry& reg,
                                      const std::string& prefix) const {
  reg.counter(prefix + "/forwarded", [this] { return forwarded_; });
  reg.counter(prefix + "/dropped_no_route",
              [this] { return dropped_no_route_; });
  reg.counter(prefix + "/dropped_queue_full",
              [this] { return dropped_queue_full_; });
  fault::register_metrics(reg, prefix + "/fault", fault_);
}

}  // namespace xgbe::link

#include "link/switch.hpp"

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::link {

/// One switch port: receives frames from its link and forwards them into
/// the fabric; egress frames queue here until the link transmitter frees.
class EthernetSwitch::Port : public NetDevice {
 public:
  enum class AqmVerdict { kPass, kMark, kEarlyDrop };

  Port(EthernetSwitch& parent, int index, Link* wire, bool side_a)
      : parent_(parent), index_(index), wire_(wire), side_a_(side_a) {
    if (side_a_) {
      wire_->attach_a(this);
    } else {
      wire_->attach_b(this);
    }
    // Per-port deterministic RED stream: seed from the spec and the port
    // index so two ports never share a sequence, never zero.
    rng_ = parent_.spec_.aqm.seed ^
           (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index_ + 1));
    if (rng_ == 0) rng_ = 0x2545f4914f6cdd1dULL;
  }

  void deliver(const net::Packet& pkt) override {
    parent_.on_frame(index_, pkt);
  }

  void send(const net::Packet& pkt) {
    queued_ += pkt.frame_bytes;
    if (queued_ > peak_queued_) peak_queued_ = queued_;
    ++forwarded_;
    wire_->transmit(this, pkt, [this, bytes = pkt.frame_bytes]() {
      queued_ = queued_ > bytes ? queued_ - bytes : 0;
    });
  }

  void note_tail_drop() { ++dropped_full_; }
  void note_red_drop() { ++dropped_red_; }
  void note_ce_mark() { ++ce_marked_; }

  /// AQM decision for a frame about to enter this port's egress queue.
  /// Mutates the EWMA average and (on a probabilistic draw) the RNG, so it
  /// must be called exactly once per arriving frame.
  AqmVerdict aqm_decide(const net::Packet& pkt, const AqmSpec& aqm) {
    const std::uint64_t inst =
        static_cast<std::uint64_t>(queued_) + pkt.frame_bytes;
    if (aqm.mode == AqmMode::kEcnThreshold) {
      // DCTCP-style marking: instantaneous depth against K. Non-ECT
      // traffic is left to the tail-drop limit.
      if (pkt.ect && inst > aqm.mark_threshold_bytes) return AqmVerdict::kMark;
      return AqmVerdict::kPass;
    }
    // RED on the EWMA of the instantaneous depth (<<8 fixed point; the
    // truncating division is deterministic, which is all we need).
    const std::int64_t diff =
        static_cast<std::int64_t>(inst << 8) - avg_queued_;
    avg_queued_ += diff / (std::int64_t{1} << aqm.ewma_shift);
    const std::uint64_t avg_bytes =
        avg_queued_ > 0 ? static_cast<std::uint64_t>(avg_queued_) >> 8 : 0;
    if (avg_bytes < aqm.min_threshold_bytes) return AqmVerdict::kPass;
    bool hit = true;
    if (avg_bytes < aqm.max_threshold_bytes) {
      const std::uint64_t span =
          aqm.max_threshold_bytes - aqm.min_threshold_bytes;
      const std::uint64_t p_permil =
          aqm.max_p_permil * (avg_bytes - aqm.min_threshold_bytes) / span;
      hit = next_random() % 1000 < p_permil;
    }
    if (!hit) return AqmVerdict::kPass;
    if (aqm.mode == AqmMode::kRedEcn && pkt.ect) return AqmVerdict::kMark;
    return AqmVerdict::kEarlyDrop;
  }

  void set_buffer_override(std::uint32_t bytes) { buffer_override_ = bytes; }
  std::uint32_t buffer_limit(std::uint32_t spec_default) const {
    return buffer_override_ != 0 ? buffer_override_ : spec_default;
  }

  std::uint32_t queued() const { return queued_; }
  std::uint32_t peak_queued() const { return peak_queued_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_full() const { return dropped_full_; }
  std::uint64_t dropped_red() const { return dropped_red_; }
  std::uint64_t ce_marked() const { return ce_marked_; }
  const std::string& link_name() const {
    static const std::string kDetached;
    return wire_ != nullptr ? wire_->name() : kDetached;
  }

 private:
  EthernetSwitch& parent_;
  int index_;
  Link* wire_;
  bool side_a_;
  std::uint32_t queued_ = 0;
  std::uint32_t peak_queued_ = 0;
  std::uint32_t buffer_override_ = 0;  // 0: use the switch-wide spec value
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_full_ = 0;
  std::uint64_t dropped_red_ = 0;
  std::uint64_t ce_marked_ = 0;
  std::int64_t avg_queued_ = 0;  // RED EWMA, bytes << 8
  std::uint64_t rng_ = 1;        // xorshift64* state

  std::uint64_t next_random() {
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    return rng_ * 0x2545f4914f6cdd1dULL;
  }
};

EthernetSwitch::EthernetSwitch(sim::Simulator& simulator,
                               const SwitchSpec& spec, std::string name)
    : sim_(simulator),
      spec_(spec),
      name_(std::move(name)),
      backplane_(simulator, name_ + "/backplane") {}

EthernetSwitch::~EthernetSwitch() = default;

int EthernetSwitch::add_port(Link* wire, bool side_a) {
  const int index = static_cast<int>(ports_.size());
  ports_.push_back(std::make_unique<Port>(*this, index, wire, side_a));
  return index;
}

void EthernetSwitch::set_port_buffer(int port, std::uint32_t bytes) {
  ports_.at(static_cast<std::size_t>(port))->set_buffer_override(bytes);
}

void EthernetSwitch::learn(net::NodeId node, int port) {
  fdb_[node] = Route{{port}};
}

void EthernetSwitch::learn_group(net::NodeId node, std::vector<int> ports) {
  fdb_[node] = Route{std::move(ports)};
}

std::uint32_t EthernetSwitch::queued_bytes(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->queued();
}

std::uint64_t EthernetSwitch::port_forwarded(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->forwarded();
}

std::uint64_t EthernetSwitch::port_dropped_queue_full(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->dropped_full();
}

std::uint32_t EthernetSwitch::port_peak_queued(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->peak_queued();
}

const std::string& EthernetSwitch::port_link_name(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->link_name();
}

std::uint64_t EthernetSwitch::port_dropped_red(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->dropped_red();
}

std::uint64_t EthernetSwitch::port_ce_marked(int port) const {
  return ports_.at(static_cast<std::size_t>(port))->ce_marked();
}

int EthernetSwitch::pick_port(const Route& route,
                              const net::Packet& pkt) const {
  if (route.ports.size() == 1) return route.ports.front();
  // FNV-1a over the flow identity. Depends only on packet fields and the
  // programmed port order, so the path choice is identical across reruns,
  // shard counts, and thread counts (the ECMP determinism rule).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(pkt.src));
  mix(static_cast<std::uint64_t>(pkt.dst));
  mix(static_cast<std::uint64_t>(pkt.flow));
  return route.ports[h % route.ports.size()];
}

void EthernetSwitch::on_frame(int /*ingress*/, const net::Packet& pkt) {
  net::Packet frame = pkt;
  fault::FaultDecision verdict;
  if (fault_.active()) {
    verdict = fault_.decide(pkt, sim_.now());
    if (verdict.drop) {
      if (trace_) {
        trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                              name_.c_str(),
                              fault::cause_name(verdict.cause));
      }
      if (spans_) spans_->abort(pkt);
      return;
    }
    if (verdict.corrupt) frame.corrupted = true;
  }
  const auto it = fdb_.find(frame.dst);
  if (it == fdb_.end() || it->second.ports.empty()) {
    ++dropped_no_route_;
    if (trace_) {
      trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                            name_.c_str(), "no-route");
    }
    if (spans_) spans_->abort(pkt);
    return;
  }
  const int egress = pick_port(it->second, frame);
  // Frame fully arrived and routed: the first wire hop ends, time in the
  // fabric + egress queue belongs to switch-queue (until the egress link's
  // transmit re-enters wire).
  if (spans_) spans_->mark(frame, obs::Stage::kSwitchQueue, sim_.now());
  // The fabric moves the frame to the egress queue; model its bandwidth as
  // a shared serialized resource plus fixed pipeline latency.
  const sim::SimTime fabric_time =
      sim::transfer_time(frame.frame_bytes, spec_.backplane_bps);
  backplane_.submit(fabric_time);
  const sim::SimTime cross = spec_.fabric_latency + fabric_time;
  sim_.schedule(cross + verdict.extra_delay,
                [this, egress, frame]() { egress_frame(egress, frame); });
  if (verdict.duplicate) {
    sim_.schedule(cross + verdict.extra_delay + verdict.duplicate_delay,
                  [this, egress, frame]() { egress_frame(egress, frame); });
  }
}

void EthernetSwitch::egress_frame(int port, const net::Packet& pkt) {
  Port& out = *ports_.at(static_cast<std::size_t>(port));
  net::Packet frame = pkt;
  if (spec_.aqm.active()) {
    switch (out.aqm_decide(frame, spec_.aqm)) {
      case Port::AqmVerdict::kPass:
        break;
      case Port::AqmVerdict::kMark:
        frame.ce = true;
        ++ce_marked_;
        out.note_ce_mark();
        break;
      case Port::AqmVerdict::kEarlyDrop:
        ++dropped_red_;
        out.note_red_drop();
        if (trace_) {
          trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                                name_.c_str(), "red-early-drop");
        }
        if (spans_) spans_->abort(pkt);
        return;
    }
  }
  if (out.queued() + frame.frame_bytes >
      out.buffer_limit(spec_.port_buffer_bytes)) {
    ++dropped_queue_full_;  // tail drop
    out.note_tail_drop();
    if (trace_) {
      trace_->record_packet(obs::EventType::kWireDrop, sim_.now(), pkt,
                            name_.c_str(), "port-buffer-full");
    }
    if (spans_) spans_->abort(pkt);
    return;
  }
  ++forwarded_;
  out.send(frame);
}

void EthernetSwitch::register_metrics(obs::Registry& reg,
                                      const std::string& prefix) const {
  reg.counter(prefix + "/forwarded", [this] { return forwarded_; });
  reg.counter(prefix + "/dropped_no_route",
              [this] { return dropped_no_route_; });
  reg.counter(prefix + "/dropped_queue_full",
              [this] { return dropped_queue_full_; });
  // AQM counters only exist when AQM is on, so legacy tail-drop topologies
  // keep byte-identical registry snapshots.
  if (spec_.aqm.active()) {
    reg.counter(prefix + "/dropped_red", [this] { return dropped_red_; });
    reg.counter(prefix + "/ce_marked", [this] { return ce_marked_; });
  }
  fault::register_metrics(reg, prefix + "/fault", fault_);
  if (!spec_.port_metrics) return;
  for (const auto& port : ports_) {
    // Keyed by the attached link's name (unique within a fabric), so the
    // fleet doctor can tell which neighbor a congested port faces.
    const std::string p = prefix + "/port/" + port->link_name();
    const Port* raw = port.get();
    reg.counter(p + "/forwarded", [raw] { return raw->forwarded(); });
    reg.counter(p + "/dropped_queue_full",
                [raw] { return raw->dropped_full(); });
    if (spec_.aqm.active()) {
      reg.counter(p + "/dropped_red", [raw] { return raw->dropped_red(); });
      reg.counter(p + "/ce_marked", [raw] { return raw->ce_marked(); });
    }
    reg.gauge(p + "/queued_bytes",
              [raw] { return static_cast<double>(raw->queued()); });
    reg.gauge(p + "/peak_queued_bytes",
              [raw] { return static_cast<double>(raw->peak_queued()); });
  }
}

}  // namespace xgbe::link

// WAN circuit presets for the Internet2 Land Speed Record path (§4.1):
// Sunnyvale --(Level3 OC-192 POS)--> StarLight/Chicago --(LHCnet OC-48
// POS)--> Geneva. Routers along the path are modeled with the
// EthernetSwitch class configured with router-grade latency and buffers.
#pragma once

#include "link/link.hpp"
#include "link/switch.hpp"

namespace xgbe::link::wan {

/// SONET line rates.
inline constexpr double kOc48LineRateBps = 2.48832e9;
inline constexpr double kOc192LineRateBps = 9.95328e9;

/// Fiber propagation, picoseconds per kilometre (~4.9 µs/km in glass).
inline constexpr double kFiberPsPerKm = 4.9e6;

/// Route mileage. The great-circle Sunnyvale–Geneva distance is ~9,400 km;
/// the record route measured 10,037 km and saw ~180 ms RTT, implying extra
/// routed mileage — the segment lengths below reproduce the measured RTT.
inline constexpr double kSunnyvaleChicagoKm = 5600.0;
inline constexpr double kChicagoGenevaKm = 12300.0;

sim::SimTime propagation_for_km(double km);

/// OC-192 POS circuit (Sunnyvale–Chicago leg).
LinkSpec oc192_pos(double km, std::uint32_t queue_limit_bytes = 0);

/// OC-48 POS circuit (transatlantic LHCnet leg — the path bottleneck).
LinkSpec oc48_pos(double km, std::uint32_t queue_limit_bytes = 0);

/// Router configuration (GSR 12406 / Juniper T640 / 76xx class): store and
/// forward with deeper buffers and higher pipeline latency than a LAN
/// switch.
SwitchSpec router_spec(std::uint32_t buffer_bytes = 96 * 1024 * 1024);

}  // namespace xgbe::link::wan

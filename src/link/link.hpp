// Full-duplex point-to-point link (LAN fiber or WAN POS circuit).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "link/device.hpp"
#include "net/packet.hpp"
#include "sim/pool.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class Registry;
class SpanProfiler;
class TraceSink;
}

namespace xgbe::link {

enum class Framing : std::uint8_t {
  kEthernet,  // preamble + IFG + min-frame padding on the wire
  kPos        // packet-over-SONET: Ethernet framing replaced by PPP/HDLC
};

struct LinkSpec {
  double rate_bps = 10e9;  // 10GbE by default
  sim::SimTime propagation = sim::nsec(450);  // ~90 m of fiber
  Framing framing = Framing::kEthernet;
  /// For POS: payload fraction of the line rate left after SONET section/
  /// line/path overhead (87/90 columns minus path overhead ≈ 0.9596).
  double sonet_efficiency = 0.9596;
  /// Transmit-queue capacity per direction, bytes. 0 = unbounded (a host
  /// NIC never overruns its own wire; router circuits set a real limit).
  std::uint32_t queue_limit_bytes = 0;
  /// Independent random frame-loss probability (bit errors etc.).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 0x5eedULL;
  /// Opt-in per-direction observability: register_metrics() additionally
  /// exposes each direction's delivery/drop counters, backlog high-water
  /// marks, and the configured line rate (the "negotiated speed" a fleet
  /// doctor compares against its bundle). Off by default so pre-existing
  /// topologies keep byte-identical registry snapshots; the fabric builder
  /// turns it on.
  bool detail_metrics = false;
};

/// POS per-frame overhead: PPP/HDLC flag+address+control+protocol+FCS.
inline constexpr std::uint32_t kPosFrameOverheadBytes = 9;

/// Two independent serialization pipes (full duplex — 10GbE has no
/// half-duplex mode) with propagation delay, optional queue limit (tail
/// drop), and optional random loss.
///
/// Two construction modes:
///  - Classic: both directions schedule on one Simulator and deliver frames
///    by scheduling directly into it — the original single-threaded path,
///    byte-identical to its pre-sharding behavior.
///  - Sharded: each direction lives on its transmitter's shard; deliveries
///    (including same-shard ones, so results cannot depend on the partition)
///    are buffered in per-direction exchange channels that the engine
///    commits at window barriers. All mutable per-frame state (counters,
///    backlog, fault RNG, trace sink) is per-direction, so the two shard
///    workers never share a cache line they write.
class Link {
 public:
  Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name);

  /// Sharded-mode link between `shard_a` (the A side's shard) and `shard_b`.
  /// Registers one exchange channel per direction with the engine — link
  /// creation order therefore defines the cross-shard merge order and must
  /// be identical across runs (it is: topology construction is code).
  Link(sim::ShardedEngine& engine, std::size_t shard_a, std::size_t shard_b,
       const LinkSpec& spec, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attaches endpoint devices. Either side may be set independently so
  /// switches can wire ports incrementally.
  void attach_a(NetDevice* a) { a_ = a; }
  void attach_b(NetDevice* b) { b_ = b; }
  NetDevice* a() const { return a_; }
  NetDevice* b() const { return b_; }

  /// Serializes `pkt` from side `from` toward the other side; the callback
  /// (optional) fires when serialization completes (transmitter freed),
  /// whether or not the frame was dropped.
  void transmit(const NetDevice* from, const net::Packet& pkt,
                sim::InlineCallback tx_done = nullptr);

  const LinkSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t frames_delivered() const { return ab_.frames + ba_.frames; }
  std::uint64_t bytes_delivered() const { return ab_.bytes + ba_.bytes; }
  std::uint64_t drops_queue() const {
    return ab_.drops_queue + ba_.drops_queue;
  }

  // --- Per-direction accounting (from_a: the a->b direction) ----------------
  std::uint64_t frames_delivered(bool from_a) const {
    return (from_a ? ab_ : ba_).frames;
  }
  std::uint64_t bytes_delivered(bool from_a) const {
    return (from_a ? ab_ : ba_).bytes;
  }
  std::uint64_t drops_queue(bool from_a) const {
    return (from_a ? ab_ : ba_).drops_queue;
  }
  /// High-water mark of the direction's transmit backlog, bytes.
  std::uint32_t peak_backlog(bool from_a) const {
    return (from_a ? ab_ : ba_).peak_backlog;
  }
  std::uint64_t drops_random() const {
    return script_.counters().drops_uniform +
           ab_.own_script.counters().drops_uniform +
           ba_.own_script.counters().drops_uniform;
  }

  // --- Fault injection ------------------------------------------------------
  /// Installs `plan` on both directions (the reverse direction gets a
  /// decorrelated seed so loss on data and ACK paths is independent).
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Installs `plan` on one direction only (a->b when from_a); the other
  /// direction is left untouched. Directional plans are how the recovery
  /// tests black-hole ACKs without touching the data path.
  void set_fault_plan(const fault::FaultPlan& plan, bool from_a);

  fault::FaultInjector& fault_injector(bool from_a) {
    return from_a ? fault_ab_ : fault_ba_;
  }
  const fault::FaultInjector& fault_injector(bool from_a) const {
    return from_a ? fault_ab_ : fault_ba_;
  }

  /// Aggregate of the scripted/legacy injector and both directions.
  fault::FaultCounters fault_counters() const;

  /// Deprecated shim: forces the next `n` data-carrying frames (payload >
  /// 0) to be lost, whichever direction offers them first. The Table 1
  /// loss-recovery experiments predate the fault layer and still call
  /// this; new code should use fault_injector(from_a).inject_drops(n).
  /// Sharded links apply the drops to the a->b direction (the two
  /// directions no longer share an injector there).
  void inject_drops(int n) {
    (sharded_ ? ab_.own_script : script_).inject_drops(n);
  }

  std::uint64_t drops_forced() const {
    return script_.counters().drops_forced +
           ab_.own_script.counters().drops_forced +
           ba_.own_script.counters().drops_forced +
           fault_ab_.counters().drops_forced + fault_ba_.counters().drops_forced;
  }

  /// Bytes occupying the wire for one frame under this link's framing.
  std::uint32_t occupancy_bytes(const net::Packet& pkt) const;

  /// Serialization time of one frame on this link.
  sim::SimTime serialization_time(const net::Packet& pkt) const;

  /// Effective data rate (bits/s available to frames).
  double effective_rate_bps() const;

  /// Backlog queued for transmission from the given side, bytes.
  std::uint32_t backlog(const NetDevice* from) const;

  /// Wire tap: invoked for every frame as it begins serialization (before
  /// any loss), with the direction. Some recovery tests attach here; the
  /// capture tool now rides the trace sink instead. Classic mode only — in
  /// sharded mode the two directions run on different threads.
  std::function<void(const net::Packet&, bool from_side_a)> tap;

  // --- Observability --------------------------------------------------------
  /// Arms (or disarms, with null) the trace sink on both directions. Every
  /// frame offered to the wire emits exactly one event: kWireTx when it
  /// serializes, or kWireDrop with the cause when it is lost.
  void set_trace(obs::TraceSink* sink) {
    ab_.trace = sink;
    ba_.trace = sink;
  }

  /// Per-direction sink, for sharded mode: each direction records into its
  /// transmitting shard's sink so appends never race.
  void set_trace(bool from_a, obs::TraceSink* sink) {
    (from_a ? ab_ : ba_).trace = sink;
  }

  /// Registers this link's delivery and fault counters under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler: each frame that serializes marks the wire
  /// stage; drops abort the journey. Null disarms (zero perturbation).
  /// Classic mode only (the sharded testbed never arms it).
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  /// One scheduled delivery: the frame plus its destination device,
  /// pool-recycled so steady-state delivery allocates nothing.
  struct DeliveryRec {
    net::Packet pkt;
    NetDevice* sink = nullptr;
  };

  struct Direction {
    Direction(sim::Simulator& simulator, const std::string& n)
        : sim(&simulator), pipe(simulator, n) {}
    sim::Simulator* sim;  // the transmitter's shard
    sim::Resource pipe;
    std::uint32_t backlog_bytes = 0;
    std::uint32_t peak_backlog = 0;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops_queue = 0;
    // Which legacy/scripted injector this direction consults: the shared
    // `script_` in classic mode (both directions draw from one RNG, keeping
    // pre-fault-layer seeds bit-identical), `own_script` in sharded mode.
    fault::FaultInjector* script = nullptr;
    fault::FaultInjector own_script;
    obs::TraceSink* trace = nullptr;
    bool use_channel = false;
    // Classic-mode pools (sharded deliveries use the channel's pool).
    sim::Pool<DeliveryRec> delivery_pool;
    sim::Pool<sim::InlineCallback> cont_pool;
  };

  /// Exchange buffer for one direction of a sharded link. Appended to by
  /// the transmitting shard's worker during a window; drained by the engine
  /// at the barrier. The delivery pool is likewise alternately touched by
  /// the barrier thread (acquire at commit) and the destination shard's
  /// worker (release after delivery) — never concurrently, ordered by the
  /// engine's barrier mutex.
  class Channel final : public sim::ExchangeChannel {
   public:
    void bind(Link* link, bool forward, sim::Simulator* dst) {
      link_ = link;
      forward_ = forward;
      dst_ = dst;
    }
    void push(sim::SimTime at, const net::Packet& pkt) {
      entries_.push_back({at, pkt});
    }

    std::size_t pending() const override { return entries_.size(); }
    sim::SimTime entry_time(std::size_t index) const override {
      return entries_[index].at;
    }
    void commit_entry(std::size_t index) override;
    void clear_window() override { entries_.clear(); }

   private:
    struct Pending {
      sim::SimTime at;
      net::Packet pkt;
    };
    Link* link_ = nullptr;
    bool forward_ = true;
    sim::Simulator* dst_ = nullptr;
    std::vector<Pending> entries_;
    sim::Pool<DeliveryRec> pool_;
  };

  LinkSpec spec_;
  std::string name_;
  bool sharded_ = false;
  NetDevice* a_ = nullptr;
  NetDevice* b_ = nullptr;
  Direction ab_;
  Direction ba_;
  Channel ab_channel_;
  Channel ba_channel_;
  // Shared by both directions in classic mode, like the pre-fault-layer
  // loss knob: carries the LinkSpec loss_rate/loss_seed plan plus deprecated
  // forced drops, and consumes RNG draws in transmit order so legacy seeds
  // stay bit-identical. Unused (counters all zero) in sharded mode.
  fault::FaultInjector script_;
  // Per-direction plans installed through set_fault_plan().
  fault::FaultInjector fault_ab_;
  fault::FaultInjector fault_ba_;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::link

// Full-duplex point-to-point link (LAN fiber or WAN POS circuit).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "link/device.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::link {

enum class Framing : std::uint8_t {
  kEthernet,  // preamble + IFG + min-frame padding on the wire
  kPos        // packet-over-SONET: Ethernet framing replaced by PPP/HDLC
};

struct LinkSpec {
  double rate_bps = 10e9;  // 10GbE by default
  sim::SimTime propagation = sim::nsec(450);  // ~90 m of fiber
  Framing framing = Framing::kEthernet;
  /// For POS: payload fraction of the line rate left after SONET section/
  /// line/path overhead (87/90 columns minus path overhead ≈ 0.9596).
  double sonet_efficiency = 0.9596;
  /// Transmit-queue capacity per direction, bytes. 0 = unbounded (a host
  /// NIC never overruns its own wire; router circuits set a real limit).
  std::uint32_t queue_limit_bytes = 0;
  /// Independent random frame-loss probability (bit errors etc.).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 0x5eedULL;
};

/// POS per-frame overhead: PPP/HDLC flag+address+control+protocol+FCS.
inline constexpr std::uint32_t kPosFrameOverheadBytes = 9;

/// Two independent serialization pipes (full duplex — 10GbE has no
/// half-duplex mode) with propagation delay, optional queue limit (tail
/// drop), and optional random loss.
class Link {
 public:
  Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attaches endpoint devices. Either side may be set independently so
  /// switches can wire ports incrementally.
  void attach_a(NetDevice* a) { a_ = a; }
  void attach_b(NetDevice* b) { b_ = b; }
  NetDevice* a() const { return a_; }
  NetDevice* b() const { return b_; }

  /// Serializes `pkt` from side `from` toward the other side; the callback
  /// (optional) fires when serialization completes (transmitter freed),
  /// whether or not the frame was dropped.
  void transmit(const NetDevice* from, const net::Packet& pkt,
                sim::InlineCallback tx_done = nullptr);

  const LinkSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t frames_delivered() const { return frames_; }
  std::uint64_t bytes_delivered() const { return bytes_; }
  std::uint64_t drops_queue() const { return drops_queue_; }
  std::uint64_t drops_random() const { return drops_random_; }

  /// Forces the next `n` data-carrying frames (payload > 0) to be lost.
  /// Used by the loss-recovery experiments (Table 1 validation) to inject
  /// a precisely-timed single loss.
  void inject_drops(int n) { forced_drops_ += n; }

  std::uint64_t drops_forced() const { return drops_forced_; }

  /// Bytes occupying the wire for one frame under this link's framing.
  std::uint32_t occupancy_bytes(const net::Packet& pkt) const;

  /// Serialization time of one frame on this link.
  sim::SimTime serialization_time(const net::Packet& pkt) const;

  /// Effective data rate (bits/s available to frames).
  double effective_rate_bps() const;

  /// Backlog queued for transmission from the given side, bytes.
  std::uint32_t backlog(const NetDevice* from) const;

  /// Wire tap: invoked for every frame as it begins serialization (before
  /// any loss), with the direction. tcpdump-style captures attach here.
  std::function<void(const net::Packet&, bool from_side_a)> tap;

 private:
  struct Direction {
    Direction(sim::Simulator& simulator, const std::string& n)
        : pipe(simulator, n) {}
    sim::Resource pipe;
    std::uint32_t backlog_bytes = 0;
  };

  sim::Simulator& sim_;
  LinkSpec spec_;
  std::string name_;
  NetDevice* a_ = nullptr;
  NetDevice* b_ = nullptr;
  Direction ab_;
  Direction ba_;
  sim::Rng rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_queue_ = 0;
  std::uint64_t drops_random_ = 0;
  int forced_drops_ = 0;
  std::uint64_t drops_forced_ = 0;
};

}  // namespace xgbe::link

// Full-duplex point-to-point link (LAN fiber or WAN POS circuit).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fault/fault.hpp"
#include "link/device.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class Registry;
class SpanProfiler;
class TraceSink;
}

namespace xgbe::link {

enum class Framing : std::uint8_t {
  kEthernet,  // preamble + IFG + min-frame padding on the wire
  kPos        // packet-over-SONET: Ethernet framing replaced by PPP/HDLC
};

struct LinkSpec {
  double rate_bps = 10e9;  // 10GbE by default
  sim::SimTime propagation = sim::nsec(450);  // ~90 m of fiber
  Framing framing = Framing::kEthernet;
  /// For POS: payload fraction of the line rate left after SONET section/
  /// line/path overhead (87/90 columns minus path overhead ≈ 0.9596).
  double sonet_efficiency = 0.9596;
  /// Transmit-queue capacity per direction, bytes. 0 = unbounded (a host
  /// NIC never overruns its own wire; router circuits set a real limit).
  std::uint32_t queue_limit_bytes = 0;
  /// Independent random frame-loss probability (bit errors etc.).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 0x5eedULL;
};

/// POS per-frame overhead: PPP/HDLC flag+address+control+protocol+FCS.
inline constexpr std::uint32_t kPosFrameOverheadBytes = 9;

/// Two independent serialization pipes (full duplex — 10GbE has no
/// half-duplex mode) with propagation delay, optional queue limit (tail
/// drop), and optional random loss.
class Link {
 public:
  Link(sim::Simulator& simulator, const LinkSpec& spec, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attaches endpoint devices. Either side may be set independently so
  /// switches can wire ports incrementally.
  void attach_a(NetDevice* a) { a_ = a; }
  void attach_b(NetDevice* b) { b_ = b; }
  NetDevice* a() const { return a_; }
  NetDevice* b() const { return b_; }

  /// Serializes `pkt` from side `from` toward the other side; the callback
  /// (optional) fires when serialization completes (transmitter freed),
  /// whether or not the frame was dropped.
  void transmit(const NetDevice* from, const net::Packet& pkt,
                sim::InlineCallback tx_done = nullptr);

  const LinkSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t frames_delivered() const { return frames_; }
  std::uint64_t bytes_delivered() const { return bytes_; }
  std::uint64_t drops_queue() const { return drops_queue_; }
  std::uint64_t drops_random() const {
    return script_.counters().drops_uniform;
  }

  // --- Fault injection ------------------------------------------------------
  /// Installs `plan` on both directions (the reverse direction gets a
  /// decorrelated seed so loss on data and ACK paths is independent).
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Installs `plan` on one direction only (a->b when from_a); the other
  /// direction is left untouched. Directional plans are how the recovery
  /// tests black-hole ACKs without touching the data path.
  void set_fault_plan(const fault::FaultPlan& plan, bool from_a);

  fault::FaultInjector& fault_injector(bool from_a) {
    return from_a ? fault_ab_ : fault_ba_;
  }
  const fault::FaultInjector& fault_injector(bool from_a) const {
    return from_a ? fault_ab_ : fault_ba_;
  }

  /// Aggregate of the scripted/legacy injector and both directions.
  fault::FaultCounters fault_counters() const;

  /// Deprecated shim: forces the next `n` data-carrying frames (payload >
  /// 0) to be lost, whichever direction offers them first. The Table 1
  /// loss-recovery experiments predate the fault layer and still call
  /// this; new code should use fault_injector(from_a).inject_drops(n).
  void inject_drops(int n) { script_.inject_drops(n); }

  std::uint64_t drops_forced() const {
    return script_.counters().drops_forced + fault_ab_.counters().drops_forced +
           fault_ba_.counters().drops_forced;
  }

  /// Bytes occupying the wire for one frame under this link's framing.
  std::uint32_t occupancy_bytes(const net::Packet& pkt) const;

  /// Serialization time of one frame on this link.
  sim::SimTime serialization_time(const net::Packet& pkt) const;

  /// Effective data rate (bits/s available to frames).
  double effective_rate_bps() const;

  /// Backlog queued for transmission from the given side, bytes.
  std::uint32_t backlog(const NetDevice* from) const;

  /// Wire tap: invoked for every frame as it begins serialization (before
  /// any loss), with the direction. Some recovery tests attach here; the
  /// capture tool now rides the trace sink instead.
  std::function<void(const net::Packet&, bool from_side_a)> tap;

  // --- Observability --------------------------------------------------------
  /// Arms (or disarms, with null) the trace sink. Every frame offered to
  /// the wire emits exactly one event: kWireTx when it serializes, or
  /// kWireDrop with the cause when it is lost.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Registers this link's delivery and fault counters under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler: each frame that serializes marks the wire
  /// stage; drops abort the journey. Null disarms (zero perturbation).
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  struct Direction {
    Direction(sim::Simulator& simulator, const std::string& n)
        : pipe(simulator, n) {}
    sim::Resource pipe;
    std::uint32_t backlog_bytes = 0;
  };

  sim::Simulator& sim_;
  LinkSpec spec_;
  std::string name_;
  NetDevice* a_ = nullptr;
  NetDevice* b_ = nullptr;
  Direction ab_;
  Direction ba_;
  // Shared by both directions, like the pre-fault-layer loss knob: carries
  // the LinkSpec loss_rate/loss_seed plan plus deprecated forced drops, and
  // consumes RNG draws in transmit order so legacy seeds stay bit-identical.
  fault::FaultInjector script_;
  // Per-direction plans installed through set_fault_plan().
  fault::FaultInjector fault_ab_;
  fault::FaultInjector fault_ba_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_queue_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::link

// Fleet-level fault plans: wire and host fault injection targeted at
// topology coordinates instead of component pointers.
//
// A FleetPlan is pure data, like FaultPlan and HostFaultPlan: it names
// *where* in a rack/spine fabric a fault lives (rack R's host H, the access
// link under it, or trunk T of the rack's bundle toward spine S) and *what*
// the fault is. The fabric builder (core::Fabric) resolves coordinates to
// components at construction time — including rate overrides, which must be
// baked into the LinkSpec before the link exists. Seeds are decorrelated
// per fault entry from the plan seed, never from shard placement, so the
// fault schedule is part of the workload and partition-invariant.
//
// The catalogue builders encode the failure classes of real cluster
// burn-in: the bad cable (bursty loss), the flapping trunk (carrier
// outages), the misconfigured half-speed link (negotiation fell back), and
// the PCIe-starved straggler host (DMA throttled) — the
// DDNStorage/net_sanitizer failure matrix, in simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/host_fault.hpp"
#include "sim/time.hpp"

namespace xgbe::fault {

/// One targeted fault: a topology coordinate plus the plans to install
/// there. Which coordinate fields matter depends on `target`.
struct FleetFault {
  enum class Target : std::uint8_t {
    kHostLink,  // the access link of host (rack, host)
    kTrunk,     // trunk `trunk` of the (rack, spine) bundle
    kHost       // host (rack, host) itself
  };

  Target target = Target::kHostLink;
  std::size_t rack = 0;
  std::size_t host = 0;   // kHostLink / kHost
  std::size_t spine = 0;  // kTrunk
  std::size_t trunk = 0;  // kTrunk: index within the (rack, spine) bundle

  /// Wire plan for kHostLink / kTrunk (installed on both directions; seed
  /// decorrelated per entry by the fabric builder).
  FaultPlan wire;
  /// Host plan for kHost.
  HostFaultPlan host_plan;
  /// Nonzero: the link is built at this rate instead of the fabric default
  /// (the misconfigured half-speed link). Applies to kHostLink / kTrunk.
  double rate_override_bps = 0.0;

  /// Human label, e.g. "trunk rack1-spine0-0: bad cable".
  std::string label;
};

/// A set of targeted faults for one fabric. Builders append catalogue
/// entries; compose freely (several faults at once is a valid matrix cell).
struct FleetPlan {
  /// Folded into every entry's plan seed (entry index decorrelates entries
  /// from each other), so two plans with different fleet seeds draw
  /// independent fault schedules over the same coordinates.
  std::uint64_t seed = 0xF1EE7ULL;
  std::vector<FleetFault> faults;

  bool active() const { return !faults.empty(); }

  // --- Catalogue -----------------------------------------------------------
  /// Bursty (Gilbert–Elliott) loss on a host's access link: the bad cable
  /// in the rack.
  FleetPlan& bad_cable_host_link(std::size_t rack, std::size_t host);

  /// Bursty loss on one trunk of a (rack, spine) bundle.
  FleetPlan& bad_cable_trunk(std::size_t rack, std::size_t spine,
                             std::size_t trunk);

  /// Periodic carrier outages on one trunk: `count` windows of `down` each,
  /// the first starting at `first_down`, one per `period`.
  FleetPlan& flapping_trunk(std::size_t rack, std::size_t spine,
                            std::size_t trunk,
                            sim::SimTime first_down = sim::msec(5),
                            sim::SimTime period = sim::msec(10),
                            sim::SimTime down = sim::msec(1),
                            std::size_t count = 4);

  /// One trunk of a bundle negotiated to a fraction of the fabric rate
  /// (default: half speed).
  FleetPlan& half_speed_trunk(std::size_t rack, std::size_t spine,
                              std::size_t trunk, double rate_bps);

  /// DMA-throttled straggler: host (rack, host)'s PCI-X bus degrades to a
  /// small MMRBC inside [start, end).
  FleetPlan& dma_throttled_host(std::size_t rack, std::size_t host,
                                sim::SimTime start, sim::SimTime end,
                                std::uint32_t mmrbc = 512);
};

}  // namespace xgbe::fault

// Deterministic host-path fault injection: resource exhaustion inside the
// end host, the side of the stack the paper identifies as the real
// bottleneck (§3.4, Fig 5).
//
// Where FaultPlan makes the *wire* hostile, HostFaultPlan makes the *host*
// run out of things: kmalloc refuses an skb under memory pressure, the
// driver stops replenishing the adapter's descriptor rings, interrupts go
// missing (or storm with coalescing off), the PCI-X bus degrades to a
// smaller effective MMRBC or freezes in arbitration, and the application
// process gets descheduled so the socket stops draining. Every decision
// draws from one sim::Rng seeded by the plan — same plan, same traffic,
// same faults, every run — and every injected event lands in a per-cause
// counter so the tools::DropLedger can reconcile frame conservation
// exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace xgbe::fault {

/// Half-open interval of simulated time: contains t iff start <= t < end.
struct TimeWindow {
  sim::SimTime start = 0;
  sim::SimTime end = 0;

  bool contains(sim::SimTime t) const { return t >= start && t < end; }
};

/// Composable host-resource fault description. Pure data, like FaultPlan:
/// hand it to core::Host::set_host_fault_plan and the host's kernel and
/// adapters consult the shared HostFaultInjector it arms.
struct HostFaultPlan {
  std::uint64_t seed = 0x4057ULL;  // "host"

  // --- (1) allocation failure ----------------------------------------------
  /// Probability one skb data-block allocation fails (kmalloc returning
  /// NULL under pressure). On the receive path the driver drops the frame
  /// (no replacement buffer for the ring); on the transmit path the blocked
  /// writer backs off and retries.
  double alloc_fail_rate = 0.0;
  /// Only blocks of at least this many bytes can fail — large orders feel
  /// the pressure first, exactly the §3.3 "stress on the kernel's
  /// memory-allocation subsystem" mechanism.
  std::uint32_t alloc_fail_min_block = 0;
  /// Total failures allowed before the pressure lifts; -1 = unlimited.
  int alloc_fail_budget = -1;
  /// Transmit-side retry backoff after a failed write-path allocation.
  sim::SimTime alloc_retry_backoff = sim::usec(50);

  // --- (2) descriptor-ring stalls ------------------------------------------
  /// Windows where the driver stops replenishing the receive ring: consumed
  /// descriptors stay consumed, the ring fills, and further frames land in
  /// rx_dropped_ring until the window ends and a refill catches up.
  std::vector<TimeWindow> rx_ring_stalls;
  /// Windows where no new transmit descriptors are posted: DMA pauses and
  /// the driver queue (tx_backlog) grows until the window ends.
  std::vector<TimeWindow> tx_ring_stalls;

  // --- (3) interrupt faults ------------------------------------------------
  /// Probability a due receive interrupt never fires. DMA'd frames sit in
  /// host memory until the next interrupt or the recovery poll.
  double irq_miss_rate = 0.0;
  /// Watchdog-poll period that rescues a missed interrupt (the driver's
  /// slow-path timer). Must be > 0 whenever irq_miss_rate > 0.
  sim::SimTime irq_recovery_poll = sim::msec(2);
  /// Windows where interrupt coalescing is forced off: one interrupt per
  /// frame, saturating the IRQ CPU (the paper's §3.3.2 storm case).
  std::vector<TimeWindow> irq_storms;

  // --- (4) DMA / PCI-X throttling ------------------------------------------
  /// Windows of degraded PCI-X service charged through hw::pcix.
  std::vector<TimeWindow> dma_throttles;
  /// Effective MMRBC inside a throttle window (clamped to the configured
  /// register value, so it can only degrade).
  std::uint32_t dma_mmrbc = 512;
  /// Extra per-frame bus-arbitration latency inside a throttle window.
  sim::SimTime dma_freeze = 0;

  // --- (5) scheduler pauses ------------------------------------------------
  /// Windows where the application process is descheduled: socket reads and
  /// writes entering the kernel are deferred to the window's end, so the
  /// receiver stops draining (sockbuf pressure, zero-window advertisement,
  /// persist probes) and the sender stops feeding.
  std::vector<TimeWindow> sched_pauses;

  bool active() const {
    return alloc_fail_rate > 0.0 || !rx_ring_stalls.empty() ||
           !tx_ring_stalls.empty() || irq_miss_rate > 0.0 ||
           !irq_storms.empty() || !dma_throttles.empty() ||
           !sched_pauses.empty();
  }

  // Builder-style helpers keep test matrices readable.
  HostFaultPlan& with_seed(std::uint64_t s) { seed = s; return *this; }
  HostFaultPlan& with_alloc_failure(double rate, int budget = -1,
                                    std::uint32_t min_block = 0) {
    alloc_fail_rate = rate;
    alloc_fail_budget = budget;
    alloc_fail_min_block = min_block;
    return *this;
  }
  HostFaultPlan& with_rx_ring_stall(sim::SimTime start, sim::SimTime end) {
    rx_ring_stalls.push_back(TimeWindow{start, end});
    return *this;
  }
  HostFaultPlan& with_tx_ring_stall(sim::SimTime start, sim::SimTime end) {
    tx_ring_stalls.push_back(TimeWindow{start, end});
    return *this;
  }
  HostFaultPlan& with_irq_miss(double rate,
                               sim::SimTime poll = sim::msec(2)) {
    irq_miss_rate = rate;
    irq_recovery_poll = poll;
    return *this;
  }
  HostFaultPlan& with_irq_storm(sim::SimTime start, sim::SimTime end) {
    irq_storms.push_back(TimeWindow{start, end});
    return *this;
  }
  HostFaultPlan& with_dma_throttle(sim::SimTime start, sim::SimTime end,
                                   std::uint32_t mmrbc = 512,
                                   sim::SimTime freeze = 0) {
    dma_throttles.push_back(TimeWindow{start, end});
    dma_mmrbc = mmrbc;
    dma_freeze = freeze;
    return *this;
  }
  HostFaultPlan& with_sched_pause(sim::SimTime start, sim::SimTime end) {
    sched_pauses.push_back(TimeWindow{start, end});
    return *this;
  }
};

/// Per-host fault tally. Frame-dropping causes (alloc_fail_rx, plus the
/// ring-stall drops the adapter books under rx_dropped_ring) feed the
/// tools::DropLedger conservation identity; the rest quantify degradation
/// that TCP absorbs without losing frames.
struct HostFaultCounters {
  std::uint64_t allocs_seen = 0;     // allocations offered to the injector
  std::uint64_t alloc_fail_rx = 0;   // rx frames dropped: no skb for ring
  std::uint64_t alloc_fail_tx = 0;   // tx writes deferred: -ENOBUFS + retry
  std::uint64_t ring_stall_drops = 0;  // ring drops attributable to a stall
  std::uint64_t tx_ring_stalls = 0;  // DMA attempts deferred by a tx stall
  std::uint64_t irq_missed = 0;      // due interrupts that never fired
  std::uint64_t irq_recovered = 0;   // batches rescued by the recovery poll
  std::uint64_t irq_storm_interrupts = 0;  // per-frame interrupts in a storm
  std::uint64_t dma_throttled = 0;   // frames charged degraded bus service
  std::uint64_t sched_defers = 0;    // app syscalls deferred by a pause

  HostFaultCounters& operator+=(const HostFaultCounters& o);
};

/// Runtime a host arms. The kernel asks it about allocations and scheduler
/// pauses; every adapter on the host asks it about ring stalls, interrupt
/// faults, and DMA throttling. All randomness comes from one seeded Rng
/// consulted only for faults the plan enables, in event order — so an
/// inactive injector draws nothing and perturbs nothing.
class HostFaultInjector {
 public:
  HostFaultInjector() : HostFaultInjector(HostFaultPlan{}) {}
  explicit HostFaultInjector(const HostFaultPlan& plan);

  /// Re-arms with a new plan (counters reset, RNG reseeded).
  void set_plan(const HostFaultPlan& plan);
  const HostFaultPlan& plan() const { return plan_; }
  bool active() const { return plan_.active(); }

  // --- (1) allocation failure ----------------------------------------------
  /// One skb data-block allocation of `block_bytes`; draws the RNG only
  /// when allocation failure is enabled and the block is eligible. `rx`
  /// selects which counter a failure lands in.
  bool alloc_fails(std::uint32_t block_bytes, bool rx);

  // --- (2) descriptor-ring stalls (pure time windows, no RNG) --------------
  bool rx_ring_stalled(sim::SimTime now) const;
  bool tx_ring_stalled(sim::SimTime now) const;
  /// End of the stall window containing `now` (0 when not stalled).
  sim::SimTime rx_stall_end(sim::SimTime now) const;
  sim::SimTime tx_stall_end(sim::SimTime now) const;
  void count_ring_stall_drop() { ++counters_.ring_stall_drops; }
  void count_tx_stall() { ++counters_.tx_ring_stalls; }

  // --- (3) interrupt faults ------------------------------------------------
  /// One due interrupt raise; draws the RNG only when misses are enabled.
  bool interrupt_missed(sim::SimTime now);
  bool irq_storm(sim::SimTime now) const;
  void count_irq_recovered() { ++counters_.irq_recovered; }
  void count_storm_interrupt() { ++counters_.irq_storm_interrupts; }

  // --- (4) DMA throttling (pure time windows, no RNG) ----------------------
  bool dma_throttled(sim::SimTime now) const;
  void count_dma_throttled() { ++counters_.dma_throttled; }

  // --- (5) scheduler pauses (pure time windows, no RNG) --------------------
  /// When `now` falls inside a pause window, the time the app process runs
  /// again; otherwise 0.
  sim::SimTime sched_resume_at(sim::SimTime now) const;
  void count_sched_defer() { ++counters_.sched_defers; }

  const HostFaultCounters& counters() const { return counters_; }

 private:
  HostFaultPlan plan_;
  sim::Rng rng_;
  std::uint64_t alloc_failures_ = 0;
  HostFaultCounters counters_;
};

/// One-line description of a plan ("alloc-fail 1%, 1 rx-ring stall, ...").
std::string describe(const HostFaultPlan& plan);

/// One-line counter rendering ("3 alloc-fail-rx, 2 irq missed, ...").
std::string describe(const HostFaultCounters& c);

}  // namespace xgbe::fault

namespace xgbe::obs {
class Registry;
}

namespace xgbe::fault {

/// Registers every HostFaultCounters field under `prefix` (e.g.
/// "host/tx/fault"). The injector must outlive the registry's probes.
void register_metrics(obs::Registry& reg, const std::string& prefix,
                      const HostFaultInjector& inj);

}  // namespace xgbe::fault

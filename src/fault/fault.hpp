// Deterministic fault injection for links, switches, and adapters.
//
// A FaultPlan composes scripted and stochastic path misbehaviour — uniform
// random loss, Gilbert–Elliott bursty loss, payload corruption (exercising
// the §3.5.3 checksum path), duplication, reordering via bounded extra
// delay, and timed carrier flaps. A FaultInjector is the runtime a device
// hosts: it draws every random decision from one sim::Rng seeded by the
// plan, so a given (plan, traffic) pair reproduces the exact same fault
// sequence on every run. Transcontinental-transfer measurements show bursty
// loss and reordering — not uniform drops — dominate real WAN paths, which
// is why the burst model is first-class here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace xgbe::fault {

/// Why a frame was dropped (per-cause counters and capture annotations).
enum class DropCause : std::uint8_t {
  kNone,
  kForced,     // scripted inject_drops()
  kUniform,    // independent per-frame loss
  kBurst,      // Gilbert–Elliott bad-state loss
  kCarrier,    // link flap: carrier down
  kHandshake   // handshake-phase loss (SYN/FIN/RST segments only)
};

/// Two-state Markov loss model. Each frame first resolves the state
/// transition, then draws against the state's loss probability. Expected
/// burst length is 1 / p_exit_bad frames.
struct GilbertElliott {
  double p_enter_bad = 0.0;  // good -> bad transition probability per frame
  double p_exit_bad = 0.2;   // bad -> good transition probability per frame
  double loss_good = 0.0;    // loss probability in the good state
  double loss_bad = 1.0;     // loss probability in the bad state

  bool enabled() const { return p_enter_bad > 0.0 || loss_good > 0.0; }
};

/// One scripted carrier outage: every frame offered to the wire in
/// [down_at, up_at) is lost. up_at < 0 means the carrier never comes back.
struct LinkFlap {
  sim::SimTime down_at = 0;
  sim::SimTime up_at = -1;
};

/// Composable fault description. All probabilities are per frame; all
/// randomness derives from `seed`, so two runs of the same plan over the
/// same traffic are bit-identical.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;

  /// Independent per-frame loss probability.
  double loss_rate = 0.0;
  /// Loss probability applied only to lifecycle segments (SYN, FIN, RST):
  /// the connection-churn failure mode where handshakes and teardowns die
  /// while the data path stays clean. The RNG is consulted for this family
  /// only when the knob is nonzero, so plans without it keep their exact
  /// draw sequences.
  double handshake_loss_rate = 0.0;
  /// Bursty (Gilbert–Elliott) loss; enabled when p_enter_bad > 0.
  GilbertElliott burst;
  /// Payload bit-damage probability (data frames only): the frame arrives
  /// with pkt.corrupted set, feeding the checksum path and the endpoint's
  /// corrupted_delivered counter.
  double corrupt_rate = 0.0;
  /// Probability a frame is delivered twice (second copy trails by a
  /// random delay in (0, jitter_max]).
  double duplicate_rate = 0.0;
  /// Probability a frame is held back by a random extra delay in
  /// (0, jitter_max], reordering it behind later frames.
  double reorder_rate = 0.0;
  /// Upper bound for reorder / duplicate extra delay.
  sim::SimTime jitter_max = sim::usec(100);
  /// Scripted carrier outages, in ascending down_at order.
  std::vector<LinkFlap> flaps;
  /// Restrict the stochastic faults (loss/burst/duplicate/reorder) to
  /// data-carrying frames, sparing pure ACKs.
  bool data_only = false;

  bool any_stochastic() const {
    return loss_rate > 0.0 || handshake_loss_rate > 0.0 ||
           burst.enabled() || corrupt_rate > 0.0 ||
           duplicate_rate > 0.0 || reorder_rate > 0.0;
  }
  bool active() const { return any_stochastic() || !flaps.empty(); }

  // Builder-style helpers keep test matrices readable.
  FaultPlan& with_seed(std::uint64_t s) { seed = s; return *this; }
  FaultPlan& with_loss(double p) { loss_rate = p; return *this; }
  FaultPlan& with_handshake_loss(double p) {
    handshake_loss_rate = p;
    return *this;
  }
  FaultPlan& with_burst(const GilbertElliott& ge) { burst = ge; return *this; }
  FaultPlan& with_corruption(double p) { corrupt_rate = p; return *this; }
  FaultPlan& with_duplication(double p) { duplicate_rate = p; return *this; }
  FaultPlan& with_reordering(double p, sim::SimTime max_delay) {
    reorder_rate = p;
    jitter_max = max_delay;
    return *this;
  }
  FaultPlan& with_flap(sim::SimTime down_at, sim::SimTime up_at) {
    flaps.push_back(LinkFlap{down_at, up_at});
    return *this;
  }
  FaultPlan& only_data() { data_only = true; return *this; }
};

/// Per-device fault tally, sampleable through sim::Recorder and printable
/// through tools::fault_summary so bench output shows *why* throughput
/// degraded.
struct FaultCounters {
  std::uint64_t frames_seen = 0;
  std::uint64_t drops_forced = 0;
  std::uint64_t drops_uniform = 0;
  std::uint64_t drops_burst = 0;
  std::uint64_t drops_carrier = 0;
  std::uint64_t drops_handshake = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t flaps = 0;  // carrier up->down transitions observed

  std::uint64_t total_drops() const {
    return drops_forced + drops_uniform + drops_burst + drops_carrier +
           drops_handshake;
  }
  FaultCounters& operator+=(const FaultCounters& o);
};

/// The verdict for one frame.
struct FaultDecision {
  bool drop = false;
  DropCause cause = DropCause::kNone;
  bool corrupt = false;
  bool duplicate = false;
  sim::SimTime extra_delay = 0;      // reorder hold-back
  sim::SimTime duplicate_delay = 0;  // trailing-copy offset
};

/// Runtime a device hosts. decide() is called once per frame in transmit
/// order; the RNG is consulted only for faults the plan actually enables,
/// so an inactive (or loss-only) injector reproduces the draw sequence of
/// the pre-fault-layer loss knob exactly.
class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultPlan{}) {}
  explicit FaultInjector(const FaultPlan& plan);

  /// True when the plan injects anything stochastic or scripted. Forced
  /// drops keep working on an inactive injector.
  bool active() const { return plan_.active() || forced_drops_ > 0; }

  /// Re-arms the injector with a new plan (counters reset, RNG reseeded).
  void set_plan(const FaultPlan& plan);
  const FaultPlan& plan() const { return plan_; }

  /// Scripted: lose the next `n` data-carrying frames (payload > 0). The
  /// Table 1 single-loss experiments and the deprecated Link::inject_drops
  /// shim ride this.
  void inject_drops(int n) { forced_drops_ += n; }
  int pending_forced_drops() const { return forced_drops_; }

  /// Resolves one frame offered at simulated time `now`.
  FaultDecision decide(const net::Packet& pkt, sim::SimTime now);

  const FaultCounters& counters() const { return counters_; }

 private:
  bool carrier_down(sim::SimTime now);

  FaultPlan plan_;
  sim::Rng rng_;
  int forced_drops_ = 0;
  bool burst_bad_ = false;
  bool was_down_ = false;
  FaultCounters counters_;
};

/// One-line description of a plan ("loss 1%, burst(0.001->0.2), dup 0.5%").
std::string describe(const FaultPlan& plan);

/// One-line counter rendering ("7 drops (2 uniform, 5 burst), 1 corrupt").
std::string describe(const FaultCounters& c);

/// Short stable name for a drop cause ("uniform", "burst", ...); used by
/// trace annotations and capture lines.
const char* cause_name(DropCause cause);

}  // namespace xgbe::fault

namespace xgbe::obs {
class Registry;
}

namespace xgbe::fault {

/// Registers every FaultCounters field under `prefix` (e.g.
/// "link/a<->b/fault"). The injector must outlive the registry's probes.
void register_metrics(obs::Registry& reg, const std::string& prefix,
                      const FaultInjector& inj);

}  // namespace xgbe::fault

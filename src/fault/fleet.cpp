#include "fault/fleet.hpp"

namespace xgbe::fault {

namespace {

std::string coord(const char* what, std::size_t rack, std::size_t a,
                  std::size_t b = static_cast<std::size_t>(-1)) {
  std::string s = std::string(what) + " rack" + std::to_string(rack) + "-" +
                  std::to_string(a);
  if (b != static_cast<std::size_t>(-1)) s += "-" + std::to_string(b);
  return s;
}

/// The bad-cable signature: short dense loss bursts, clean between them.
/// Entry probability is high enough that even a link carrying only a few
/// dozen frames across a scenario matrix shows unambiguous bursts.
FaultPlan bad_cable_plan() {
  FaultPlan plan;
  plan.burst.p_enter_bad = 0.08;
  plan.burst.p_exit_bad = 0.25;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  return plan;
}

}  // namespace

FleetPlan& FleetPlan::bad_cable_host_link(std::size_t rack, std::size_t host) {
  FleetFault f;
  f.target = FleetFault::Target::kHostLink;
  f.rack = rack;
  f.host = host;
  f.wire = bad_cable_plan();
  f.label = coord("host-link", rack, host) + ": bad cable";
  faults.push_back(std::move(f));
  return *this;
}

FleetPlan& FleetPlan::bad_cable_trunk(std::size_t rack, std::size_t spine,
                                      std::size_t trunk) {
  FleetFault f;
  f.target = FleetFault::Target::kTrunk;
  f.rack = rack;
  f.spine = spine;
  f.trunk = trunk;
  f.wire = bad_cable_plan();
  f.label = coord("trunk", rack, spine, trunk) + ": bad cable";
  faults.push_back(std::move(f));
  return *this;
}

FleetPlan& FleetPlan::flapping_trunk(std::size_t rack, std::size_t spine,
                                     std::size_t trunk, sim::SimTime first_down,
                                     sim::SimTime period, sim::SimTime down,
                                     std::size_t count) {
  FleetFault f;
  f.target = FleetFault::Target::kTrunk;
  f.rack = rack;
  f.spine = spine;
  f.trunk = trunk;
  for (std::size_t i = 0; i < count; ++i) {
    const sim::SimTime at = first_down + static_cast<sim::SimTime>(i) * period;
    f.wire.with_flap(at, at + down);
  }
  f.label = coord("trunk", rack, spine, trunk) + ": flapping";
  faults.push_back(std::move(f));
  return *this;
}

FleetPlan& FleetPlan::half_speed_trunk(std::size_t rack, std::size_t spine,
                                       std::size_t trunk, double rate_bps) {
  FleetFault f;
  f.target = FleetFault::Target::kTrunk;
  f.rack = rack;
  f.spine = spine;
  f.trunk = trunk;
  f.rate_override_bps = rate_bps;
  f.label = coord("trunk", rack, spine, trunk) + ": negotiated low speed";
  faults.push_back(std::move(f));
  return *this;
}

FleetPlan& FleetPlan::dma_throttled_host(std::size_t rack, std::size_t host,
                                         sim::SimTime start, sim::SimTime end,
                                         std::uint32_t mmrbc) {
  FleetFault f;
  f.target = FleetFault::Target::kHost;
  f.rack = rack;
  f.host = host;
  f.host_plan.with_dma_throttle(start, end, mmrbc);
  f.label = coord("host", rack, host) + ": DMA throttled";
  faults.push_back(std::move(f));
  return *this;
}

}  // namespace xgbe::fault

#include "fault/host_fault.hpp"

#include <cstdio>

#include "obs/registry.hpp"

namespace xgbe::fault {
namespace {

bool in_any(const std::vector<TimeWindow>& windows, sim::SimTime t) {
  for (const TimeWindow& w : windows) {
    if (w.contains(t)) return true;
  }
  return false;
}

sim::SimTime end_of(const std::vector<TimeWindow>& windows, sim::SimTime t) {
  for (const TimeWindow& w : windows) {
    if (w.contains(t)) return w.end;
  }
  return 0;
}

}  // namespace

HostFaultCounters& HostFaultCounters::operator+=(const HostFaultCounters& o) {
  allocs_seen += o.allocs_seen;
  alloc_fail_rx += o.alloc_fail_rx;
  alloc_fail_tx += o.alloc_fail_tx;
  ring_stall_drops += o.ring_stall_drops;
  tx_ring_stalls += o.tx_ring_stalls;
  irq_missed += o.irq_missed;
  irq_recovered += o.irq_recovered;
  irq_storm_interrupts += o.irq_storm_interrupts;
  dma_throttled += o.dma_throttled;
  sched_defers += o.sched_defers;
  return *this;
}

HostFaultInjector::HostFaultInjector(const HostFaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

void HostFaultInjector::set_plan(const HostFaultPlan& plan) {
  plan_ = plan;
  rng_.reseed(plan.seed);
  alloc_failures_ = 0;
  counters_ = HostFaultCounters{};
}

bool HostFaultInjector::alloc_fails(std::uint32_t block_bytes, bool rx) {
  if (plan_.alloc_fail_rate <= 0.0) return false;
  ++counters_.allocs_seen;
  if (block_bytes < plan_.alloc_fail_min_block) return false;
  if (plan_.alloc_fail_budget >= 0 &&
      alloc_failures_ >=
          static_cast<std::uint64_t>(plan_.alloc_fail_budget)) {
    return false;
  }
  if (!rng_.chance(plan_.alloc_fail_rate)) return false;
  ++alloc_failures_;
  if (rx) {
    ++counters_.alloc_fail_rx;
  } else {
    ++counters_.alloc_fail_tx;
  }
  return true;
}

bool HostFaultInjector::rx_ring_stalled(sim::SimTime now) const {
  return in_any(plan_.rx_ring_stalls, now);
}

bool HostFaultInjector::tx_ring_stalled(sim::SimTime now) const {
  return in_any(plan_.tx_ring_stalls, now);
}

sim::SimTime HostFaultInjector::rx_stall_end(sim::SimTime now) const {
  return end_of(plan_.rx_ring_stalls, now);
}

sim::SimTime HostFaultInjector::tx_stall_end(sim::SimTime now) const {
  return end_of(plan_.tx_ring_stalls, now);
}

bool HostFaultInjector::interrupt_missed(sim::SimTime) {
  if (plan_.irq_miss_rate <= 0.0) return false;
  if (!rng_.chance(plan_.irq_miss_rate)) return false;
  ++counters_.irq_missed;
  return true;
}

bool HostFaultInjector::irq_storm(sim::SimTime now) const {
  return in_any(plan_.irq_storms, now);
}

bool HostFaultInjector::dma_throttled(sim::SimTime now) const {
  return in_any(plan_.dma_throttles, now);
}

sim::SimTime HostFaultInjector::sched_resume_at(sim::SimTime now) const {
  return end_of(plan_.sched_pauses, now);
}

std::string describe(const HostFaultPlan& plan) {
  char buf[96];
  std::string out = "host-seed ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(plan.seed));
  out += buf;
  if (plan.alloc_fail_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", alloc-fail %.3g%%",
                  plan.alloc_fail_rate * 100.0);
    out += buf;
    if (plan.alloc_fail_budget >= 0) {
      std::snprintf(buf, sizeof(buf), " (budget %d)", plan.alloc_fail_budget);
      out += buf;
    }
    if (plan.alloc_fail_min_block > 0) {
      std::snprintf(buf, sizeof(buf), " (blocks >= %u)",
                    plan.alloc_fail_min_block);
      out += buf;
    }
  }
  if (!plan.rx_ring_stalls.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu rx-ring stall(s)",
                  plan.rx_ring_stalls.size());
    out += buf;
  }
  if (!plan.tx_ring_stalls.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu tx-ring stall(s)",
                  plan.tx_ring_stalls.size());
    out += buf;
  }
  if (plan.irq_miss_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", irq-miss %.3g%% (poll %.0f us)",
                  plan.irq_miss_rate * 100.0,
                  sim::to_microseconds(plan.irq_recovery_poll));
    out += buf;
  }
  if (!plan.irq_storms.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu irq storm(s)",
                  plan.irq_storms.size());
    out += buf;
  }
  if (!plan.dma_throttles.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu dma throttle(s) (mmrbc %u)",
                  plan.dma_throttles.size(), plan.dma_mmrbc);
    out += buf;
  }
  if (!plan.sched_pauses.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu sched pause(s)",
                  plan.sched_pauses.size());
    out += buf;
  }
  return out;
}

std::string describe(const HostFaultCounters& c) {
  char buf[64];
  std::string out;
  bool first = true;
  auto part = [&](std::uint64_t n, const char* label) {
    if (n == 0) return;
    if (!first) out += ", ";
    std::snprintf(buf, sizeof(buf), "%llu %s",
                  static_cast<unsigned long long>(n), label);
    out += buf;
    first = false;
  };
  part(c.alloc_fail_rx, "alloc-fail-rx");
  part(c.alloc_fail_tx, "alloc-fail-tx");
  part(c.ring_stall_drops, "ring-stall drops");
  part(c.tx_ring_stalls, "tx stalls");
  part(c.irq_missed, "irq missed");
  part(c.irq_recovered, "irq recovered");
  part(c.irq_storm_interrupts, "storm irqs");
  part(c.dma_throttled, "dma throttled");
  part(c.sched_defers, "sched defers");
  if (first) out = "clean";
  return out;
}

void register_metrics(obs::Registry& reg, const std::string& prefix,
                      const HostFaultInjector& inj) {
  auto field = [&](const char* name,
                   std::uint64_t HostFaultCounters::* member) {
    reg.counter(prefix + "/" + name,
                [&inj, member] { return inj.counters().*member; });
  };
  field("allocs_seen", &HostFaultCounters::allocs_seen);
  field("alloc_fail_rx", &HostFaultCounters::alloc_fail_rx);
  field("alloc_fail_tx", &HostFaultCounters::alloc_fail_tx);
  field("ring_stall_drops", &HostFaultCounters::ring_stall_drops);
  field("tx_ring_stalls", &HostFaultCounters::tx_ring_stalls);
  field("irq_missed", &HostFaultCounters::irq_missed);
  field("irq_recovered", &HostFaultCounters::irq_recovered);
  field("irq_storm_interrupts", &HostFaultCounters::irq_storm_interrupts);
  field("dma_throttled", &HostFaultCounters::dma_throttled);
  field("sched_defers", &HostFaultCounters::sched_defers);
}

}  // namespace xgbe::fault

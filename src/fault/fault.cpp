#include "fault/fault.hpp"

#include <cstdio>

#include "obs/registry.hpp"

namespace xgbe::fault {

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) {
  frames_seen += o.frames_seen;
  drops_forced += o.drops_forced;
  drops_uniform += o.drops_uniform;
  drops_burst += o.drops_burst;
  drops_carrier += o.drops_carrier;
  drops_handshake += o.drops_handshake;
  corruptions += o.corruptions;
  duplicates += o.duplicates;
  reorders += o.reorders;
  flaps += o.flaps;
  return *this;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

void FaultInjector::set_plan(const FaultPlan& plan) {
  plan_ = plan;
  rng_.reseed(plan.seed);
  forced_drops_ = 0;
  burst_bad_ = false;
  was_down_ = false;
  counters_ = FaultCounters{};
}

bool FaultInjector::carrier_down(sim::SimTime now) {
  bool down = false;
  for (const LinkFlap& f : plan_.flaps) {
    if (now >= f.down_at && (f.up_at < 0 || now < f.up_at)) {
      down = true;
      break;
    }
  }
  if (down && !was_down_) ++counters_.flaps;
  was_down_ = down;
  return down;
}

FaultDecision FaultInjector::decide(const net::Packet& pkt,
                                    sim::SimTime now) {
  FaultDecision d;
  ++counters_.frames_seen;

  // Scripted losses resolve first and consume no randomness.
  if (forced_drops_ > 0 && pkt.payload_bytes > 0) {
    --forced_drops_;
    ++counters_.drops_forced;
    d.drop = true;
    d.cause = DropCause::kForced;
    return d;
  }
  if (!plan_.flaps.empty() && carrier_down(now)) {
    ++counters_.drops_carrier;
    d.drop = true;
    d.cause = DropCause::kCarrier;
    return d;
  }

  const bool eligible = !plan_.data_only || pkt.payload_bytes > 0;

  // Stochastic faults draw in a fixed order, and only when enabled, so the
  // draw sequence for a given plan is stable regardless of which other
  // fault families other plans use.
  if (plan_.handshake_loss_rate > 0.0 &&
      pkt.protocol == net::Protocol::kTcp &&
      net::is_lifecycle_segment(pkt.tcp.flags) &&
      rng_.chance(plan_.handshake_loss_rate)) {
    ++counters_.drops_handshake;
    d.drop = true;
    d.cause = DropCause::kHandshake;
    return d;
  }
  if (plan_.burst.enabled() && eligible) {
    if (burst_bad_) {
      if (rng_.chance(plan_.burst.p_exit_bad)) burst_bad_ = false;
    } else {
      if (rng_.chance(plan_.burst.p_enter_bad)) burst_bad_ = true;
    }
    const double p =
        burst_bad_ ? plan_.burst.loss_bad : plan_.burst.loss_good;
    if (p > 0.0 && rng_.chance(p)) {
      ++counters_.drops_burst;
      d.drop = true;
      d.cause = DropCause::kBurst;
      return d;
    }
  }
  if (plan_.loss_rate > 0.0 && eligible && rng_.chance(plan_.loss_rate)) {
    ++counters_.drops_uniform;
    d.drop = true;
    d.cause = DropCause::kUniform;
    return d;
  }
  if (plan_.corrupt_rate > 0.0 && pkt.payload_bytes > 0 &&
      rng_.chance(plan_.corrupt_rate)) {
    ++counters_.corruptions;
    d.corrupt = true;
  }
  if (plan_.duplicate_rate > 0.0 && eligible &&
      rng_.chance(plan_.duplicate_rate)) {
    ++counters_.duplicates;
    d.duplicate = true;
    d.duplicate_delay =
        1 + static_cast<sim::SimTime>(rng_.next_below(
                static_cast<std::uint64_t>(plan_.jitter_max)));
  }
  if (plan_.reorder_rate > 0.0 && eligible &&
      rng_.chance(plan_.reorder_rate)) {
    ++counters_.reorders;
    d.extra_delay =
        1 + static_cast<sim::SimTime>(rng_.next_below(
                static_cast<std::uint64_t>(plan_.jitter_max)));
  }
  return d;
}

std::string describe(const FaultPlan& plan) {
  char buf[96];
  std::string out = "seed ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(plan.seed));
  out += buf;
  if (plan.loss_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", loss %.3g%%", plan.loss_rate * 100.0);
    out += buf;
  }
  if (plan.handshake_loss_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", handshake-loss %.3g%%",
                  plan.handshake_loss_rate * 100.0);
    out += buf;
  }
  if (plan.burst.enabled()) {
    std::snprintf(buf, sizeof(buf), ", burst(%.3g->%.3g, bad %.3g%%)",
                  plan.burst.p_enter_bad, plan.burst.p_exit_bad,
                  plan.burst.loss_bad * 100.0);
    out += buf;
  }
  if (plan.corrupt_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", corrupt %.3g%%",
                  plan.corrupt_rate * 100.0);
    out += buf;
  }
  if (plan.duplicate_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", dup %.3g%%",
                  plan.duplicate_rate * 100.0);
    out += buf;
  }
  if (plan.reorder_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), ", reorder %.3g%% (<=%.0f us)",
                  plan.reorder_rate * 100.0,
                  sim::to_microseconds(plan.jitter_max));
    out += buf;
  }
  if (!plan.flaps.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu flap(s)", plan.flaps.size());
    out += buf;
  }
  if (plan.data_only) out += ", data-only";
  return out;
}

std::string describe(const FaultCounters& c) {
  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%llu drops",
                static_cast<unsigned long long>(c.total_drops()));
  out += buf;
  if (c.total_drops() > 0) {
    out += " (";
    bool first = true;
    auto part = [&](std::uint64_t n, const char* label) {
      if (n == 0) return;
      if (!first) out += ", ";
      std::snprintf(buf, sizeof(buf), "%llu %s",
                    static_cast<unsigned long long>(n), label);
      out += buf;
      first = false;
    };
    part(c.drops_forced, "forced");
    part(c.drops_uniform, "uniform");
    part(c.drops_burst, "burst");
    part(c.drops_carrier, "carrier");
    part(c.drops_handshake, "handshake");
    out += ")";
  }
  std::snprintf(buf, sizeof(buf),
                ", %llu corrupt, %llu dup, %llu reorder, %llu flap",
                static_cast<unsigned long long>(c.corruptions),
                static_cast<unsigned long long>(c.duplicates),
                static_cast<unsigned long long>(c.reorders),
                static_cast<unsigned long long>(c.flaps));
  out += buf;
  return out;
}

const char* cause_name(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kForced: return "forced";
    case DropCause::kUniform: return "uniform";
    case DropCause::kBurst: return "burst";
    case DropCause::kCarrier: return "carrier";
    case DropCause::kHandshake: return "handshake";
  }
  return "?";
}

void register_metrics(obs::Registry& reg, const std::string& prefix,
                      const FaultInjector& inj) {
  auto field = [&](const char* name, std::uint64_t FaultCounters::* member) {
    reg.counter(prefix + "/" + name,
                [&inj, member] { return inj.counters().*member; });
  };
  field("frames_seen", &FaultCounters::frames_seen);
  field("drops_forced", &FaultCounters::drops_forced);
  field("drops_uniform", &FaultCounters::drops_uniform);
  field("drops_burst", &FaultCounters::drops_burst);
  field("drops_carrier", &FaultCounters::drops_carrier);
  // Registered only when the plan uses the handshake family: keeps registry
  // snapshots (and the golden metric fingerprints built from them)
  // byte-identical for every pre-existing plan.
  if (inj.plan().handshake_loss_rate > 0.0) {
    field("drops_handshake", &FaultCounters::drops_handshake);
  }
  field("corruptions", &FaultCounters::corruptions);
  field("duplicates", &FaultCounters::duplicates);
  field("reorders", &FaultCounters::reorders);
  field("flaps", &FaultCounters::flaps);
}

}  // namespace xgbe::fault

// End-to-end byte-stream integrity oracle.
//
// The simulator never carries payload bytes, so "did the stream survive?"
// is answered from the endpoint accounting instead: every application byte
// must be sent once, acknowledged once, delivered in order exactly once,
// and consumed exactly once — and with host-side checksums enabled no
// corrupted frame may reach the application (§3.5.3). The chaos soak and
// bench/data_integrity share this oracle so they cannot drift apart.
//
// Header-only on purpose: xgbe_fault stays a sim+net library while the
// oracle reaches into tcp::EndpointStats; consumers (tests, benches) link
// xgbe_tcp through xgbe_core anyway.
#pragma once

#include <cstdint>
#include <string>

#include "tcp/endpoint.hpp"

namespace xgbe::fault {

struct IntegrityReport {
  bool ok = true;
  std::string detail;  // first failed check, human-readable

  void fail(std::string msg) {
    if (!ok) return;  // keep the first failure
    ok = false;
    detail = std::move(msg);
  }
};

/// Verifies a finished one-way transfer of `expected_bytes` from the
/// endpoint owning `tx` to the endpoint owning `rx`. `checksums_on` means
/// the receive path computed checksums on the host (adapter offload
/// disabled), i.e. in-host corruption must have been caught, not delivered.
inline IntegrityReport verify_stream_integrity(const tcp::EndpointStats& tx,
                                               const tcp::EndpointStats& rx,
                                               std::uint64_t expected_bytes,
                                               bool checksums_on) {
  IntegrityReport r;
  auto expect_eq = [&r](std::uint64_t got, std::uint64_t want,
                        const char* what) {
    if (got != want) {
      r.fail(std::string(what) + ": got " + std::to_string(got) +
             ", want " + std::to_string(want));
    }
  };
  // Exactly-once send: first transmissions cover the stream once, no more.
  expect_eq(tx.bytes_sent, expected_bytes, "sender first-transmission bytes");
  // Exactly-once acknowledgement (cumulative ACKs never double-count).
  expect_eq(tx.bytes_acked, expected_bytes, "sender acknowledged bytes");
  // Exactly-once, in-order delivery and consumption at the receiver.
  expect_eq(rx.bytes_delivered, expected_bytes, "receiver delivered bytes");
  expect_eq(rx.bytes_consumed, expected_bytes, "receiver consumed bytes");
  if (checksums_on && rx.corrupted_delivered != 0) {
    r.fail("silent corruption reached the application: " +
           std::to_string(rx.corrupted_delivered) +
           " corrupted segment(s) delivered with checksums on");
  }
  return r;
}

}  // namespace xgbe::fault

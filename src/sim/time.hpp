// Simulation time base and unit helpers.
//
// All simulated time is kept as an integer count of picoseconds. At 10 Gb/s
// one byte serializes in exactly 800 ps, so picosecond resolution keeps wire
// arithmetic exact; a signed 64-bit count covers ~106 days of simulated time,
// far beyond any experiment in this repository.
#pragma once

#include <cstdint>

namespace xgbe::sim {

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1'000;
inline constexpr SimTime kMicrosecond = 1'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000;

/// Converts a duration in seconds (floating point) to SimTime.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Converts SimTime to seconds.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts SimTime to microseconds.
constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Duration helpers for readable call sites: `usec(5)`, `msec(40)`.
constexpr SimTime psec(std::int64_t n) { return n * kPicosecond; }
constexpr SimTime nsec(std::int64_t n) { return n * kNanosecond; }
constexpr SimTime usec(std::int64_t n) { return n * kMicrosecond; }
constexpr SimTime msec(std::int64_t n) { return n * kMillisecond; }
constexpr SimTime sec(std::int64_t n) { return n * kSecond; }

/// Fractional-microsecond helper (e.g. `usec_f(0.25)`).
constexpr SimTime usec_f(double n) {
  return static_cast<SimTime>(n * static_cast<double>(kMicrosecond));
}

/// Time needed to move `bytes` at `bits_per_second` (rounded up to whole ps).
constexpr SimTime transfer_time(std::int64_t bytes, double bits_per_second) {
  const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_second;
  const double ps = seconds * static_cast<double>(kSecond);
  const auto whole = static_cast<SimTime>(ps);
  return whole + (static_cast<double>(whole) < ps ? 1 : 0);
}

/// Steady-state rate in bits/s implied by `bytes` delivered over `elapsed`.
constexpr double rate_bps(std::int64_t bytes, SimTime elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / to_seconds(elapsed);
}

}  // namespace xgbe::sim

// Serialized service resources (buses, CPUs, wires).
#pragma once

#include <cstdint>
#include <string>

#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

/// A FIFO server that processes one request at a time.
///
/// Models any serialized shared resource on the data path: a PCI-X bus, a
/// memory bus, a CPU, the serialization side of a link. Work submitted while
/// the resource is busy queues behind it (work-conserving, non-preemptive).
/// Busy time is accumulated so callers can report utilization — this is how
/// the /proc/loadavg observations in the paper are reproduced.
class Resource {
 public:
  Resource(Simulator& simulator, std::string name)
      : sim_(simulator), name_(std::move(name)) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueues a job of length `cost`; `done` (optional) fires at completion.
  /// Returns the completion time.
  SimTime submit(SimTime cost, InlineCallback done = nullptr);

  /// Earliest time a newly submitted job would start.
  SimTime available_at() const {
    return busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  }

  /// True if a job submitted now would start immediately.
  bool idle() const { return busy_until_ <= sim_.now(); }

  /// Total busy time accumulated since construction (or last reset).
  SimTime busy_time() const { return busy_accum_; }

  /// Fraction of the window [window_start, now] this resource was busy.
  /// Uses the busy-time snapshot taken by mark_window().
  double utilization() const;

  /// Starts a fresh utilization window at the current time.
  void mark_window();

  const std::string& name() const { return name_; }

  std::uint64_t jobs_completed() const { return jobs_; }

 private:
  Simulator& sim_;
  std::string name_;
  SimTime busy_until_ = 0;
  SimTime busy_accum_ = 0;
  SimTime window_start_ = 0;
  SimTime window_busy_base_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace xgbe::sim

#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace xgbe::sim {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

OnlineStats SampleSet::summary() const {
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<std::ptrdiff_t>(counts_.size()))
    idx = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace xgbe::sim

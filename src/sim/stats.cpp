#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace xgbe::sim {

#ifndef NDEBUG
/// Debug canary: flags concurrent use of one SampleSet (e.g. sharing a set
/// across bench/parallel_sweep.hpp workers). Every entry point takes the
/// guard; two overlapping holders mean a data race the sanitizers may miss.
struct SampleSetUseGuard {
  explicit SampleSetUseGuard(const SampleSet& s) : set(s) {
    const int prev = set.in_use_.fetch_add(1, std::memory_order_acq_rel);
    assert(prev == 0 && "SampleSet used concurrently (see class comment)");
    (void)prev;
  }
  ~SampleSetUseGuard() { set.in_use_.fetch_sub(1, std::memory_order_acq_rel); }
  const SampleSet& set;
};
#define XGBE_SAMPLESET_GUARD(s) SampleSetUseGuard guard_(s)
#else
#define XGBE_SAMPLESET_GUARD(s) (void)0
#endif

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  XGBE_SAMPLESET_GUARD(*this);
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

OnlineStats SampleSet::summary() const {
  XGBE_SAMPLESET_GUARD(*this);
  // Welford accumulation is order-sensitive in floating point; samples_ is
  // never reordered, so this result is independent of quantile() calls.
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (counts_.empty()) return;
  const std::size_t last = counts_.size() - 1;
  std::size_t idx = 0;
  if (!std::isfinite(x)) {
    // NaN and -inf clamp low, +inf clamps high: deterministic, no UB from
    // casting an unrepresentable double.
    idx = (x > 0.0) ? last : 0;
  } else {
    const double span = hi_ - lo_;
    if (span > 0.0) {
      const double pos = (x - lo_) / span * static_cast<double>(counts_.size());
      if (pos <= 0.0) {
        idx = 0;
      } else if (pos >= static_cast<double>(counts_.size())) {
        idx = last;
      } else {
        idx = static_cast<std::size_t>(pos);
        if (idx > last) idx = last;  // guard FP edge at pos ~ size
      }
    }
    // Zero/negative span (degenerate range): everything lands in bucket 0.
  }
  ++counts_[idx];
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace xgbe::sim

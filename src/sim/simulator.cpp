#include "sim/simulator.hpp"

#include <limits>

namespace xgbe::sim {

void Simulator::run_until(SimTime horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // A boundary hook fires once every event at or before its due time has
    // executed — i.e. when the next pending event lies strictly past the
    // boundary. Firing happens *between* events and touches no simulation
    // state, so armed runs stay bit-identical (executed-event count
    // included). The clock is deliberately left alone: the boundary time
    // travels in the advance() argument.
    if (hook_ != nullptr) {
      while (hook_->due() < queue_.next_time() && hook_->due() <= horizon) {
        hook_->advance(hook_->due());
      }
    }
    if (queue_.next_time() > horizon) {
      now_ = horizon;
      return;
    }
    auto fired = queue_.pop();
    now_ = fired.time;
    ++executed_;
    // Null callbacks are legal (e.g. Resource completion markers that only
    // exist to advance the clock).
    if (fired.cb) fired.cb();
  }
  // The pending set drained (or stop() fired) before the horizon: advance
  // the clock to the horizon anyway so bounded waits always make progress.
  // run() passes SimTime max as its horizon; leave the clock alone there.
  if (!stopped_ && horizon != std::numeric_limits<SimTime>::max()) {
    if (now_ < horizon) now_ = horizon;
    // State is frozen up to the horizon, so every boundary in (last event,
    // horizon] is observable now. run() (horizon = max) takes no tail —
    // there is no bound to observe up to.
    if (hook_ != nullptr) {
      while (hook_->due() <= horizon) hook_->advance(hook_->due());
    }
  }
}

}  // namespace xgbe::sim

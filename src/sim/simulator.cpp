#include "sim/simulator.hpp"

#include <limits>

namespace xgbe::sim {

void Simulator::run_until(SimTime horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.next_time() > horizon) {
      now_ = horizon;
      return;
    }
    auto fired = queue_.pop();
    now_ = fired.time;
    ++executed_;
    // Null callbacks are legal (e.g. Resource completion markers that only
    // exist to advance the clock).
    if (fired.cb) fired.cb();
  }
  // The pending set drained (or stop() fired) before the horizon: advance
  // the clock to the horizon anyway so bounded waits always make progress.
  // run() passes SimTime max as its horizon; leave the clock alone there.
  if (!stopped_ && horizon != std::numeric_limits<SimTime>::max() &&
      now_ < horizon) {
    now_ = horizon;
  }
}

}  // namespace xgbe::sim

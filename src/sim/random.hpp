// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64 — fast, high quality, and fully
// reproducible across platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>

namespace xgbe::sim {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x10f1b17e5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); unbiased via bitmask rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    std::uint64_t x;
    do {
      x = next_u64() & mask;
    } while (x >= bound);
    return x;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace xgbe::sim

// Online statistics used throughout the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#endif

namespace xgbe::sim {

/// Welford single-pass mean / variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples with exact quantiles; suitable for the modest sample
/// counts produced by these experiments (latency sweeps, per-flow rates).
///
/// NOT thread-safe, not even for const calls: quantile() lazily builds a
/// mutable sorted cache. Under bench/parallel_sweep.hpp each sweep point
/// must own its own SampleSet; sharing one across worker threads is a data
/// race, and debug builds assert on any concurrent access. summary() reads
/// the samples in insertion order regardless of whether quantile() has run,
/// so its (order-sensitive) Welford result never depends on sort state.
class SampleSet {
 public:
  SampleSet() = default;
  // Copies transfer the samples only; the sorted cache is rebuilt on demand
  // and the debug-use canary starts fresh in the copy.
  SampleSet(const SampleSet& other) : samples_(other.samples_) {}
  SampleSet& operator=(const SampleSet& other) {
    samples_ = other.samples_;
    sorted_.clear();
    sorted_valid_ = false;
    return *this;
  }

  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double quantile(double q) const;  // q in [0,1], linear interpolation
  double median() const { return quantile(0.5); }
  OnlineStats summary() const;

 private:
  std::vector<double> samples_;  // insertion order, never reordered
  mutable std::vector<double> sorted_;  // lazy cache for quantile()
  mutable bool sorted_valid_ = false;
#ifndef NDEBUG
  mutable std::atomic<int> in_use_{0};  // concurrent-access canary
#endif
  friend struct SampleSetUseGuard;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_low(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace xgbe::sim

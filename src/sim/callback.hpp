// Small-buffer-optimized event callback.
//
// Scheduling a simulation event must not allocate: every in-tree capture set
// on the hot path (timer lambdas capturing `this`, completion continuations
// capturing a couple of shared_ptrs) fits a 48-byte inline buffer. Larger
// callables still work through a heap fallback, so the type is a drop-in
// replacement for std::function<void()> at the scheduling boundary — with
// two deliberate differences: it is move-only (so it can hold move-only
// captures, e.g. a continuation that owns another InlineCallback), and
// invoking an empty callback is a no-op contractually guarded by callers
// (the simulator tests with operator bool before dispatch).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace xgbe::sim {

class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  /// True when callables of type F are stored inline (no allocation).
  /// Exposed so tests can pin the size budget of hot-path capture sets.
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      manage_ = &manage_inline<D>;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(storage_, &p, sizeof(p));
      invoke_ = &invoke_heap<D>;
      manage_ = &manage_heap<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Precondition: non-empty.
  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  using Invoke = void (*)(void*);
  // Moves the callable from `src` into `dst` (raw storage), or destroys it
  // when `dst` is null. After a move the source is dead; the caller clears
  // its function pointers instead of destroying again.
  using Manage = void (*)(void* src, void* dst);

  template <typename D>
  static void invoke_inline(void* s) {
    (*std::launder(reinterpret_cast<D*>(s)))();
  }
  template <typename D>
  static void manage_inline(void* s, void* d) {
    D* f = std::launder(reinterpret_cast<D*>(s));
    if (d != nullptr) ::new (d) D(std::move(*f));
    f->~D();
  }
  template <typename D>
  static void invoke_heap(void* s) {
    D* p;
    std::memcpy(&p, s, sizeof(p));
    (*p)();
  }
  template <typename D>
  static void manage_heap(void* s, void* d) {
    D* p;
    std::memcpy(&p, s, sizeof(p));
    if (d != nullptr) {
      std::memcpy(d, &p, sizeof(p));
    } else {
      delete p;
    }
  }

  void steal(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace xgbe::sim

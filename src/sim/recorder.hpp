// Periodic time-series sampling of simulation state.
//
// A Recorder calls a sampler at a fixed simulated-time interval and stores
// (time, value) points — the facility behind congestion-window trajectories
// and utilization timelines in the examples and benches.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

class Recorder {
 public:
  using Sampler = std::function<double()>;

  Recorder(Simulator& simulator, SimTime interval, Sampler sampler)
      : sim_(simulator), interval_(interval), sampler_(std::move(sampler)) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Starts sampling (first sample after one interval).
  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  const std::vector<std::pair<SimTime, double>>& samples() const {
    return samples_;
  }

  /// Largest sampled value (0 if empty).
  double peak() const {
    double best = 0.0;
    for (const auto& [t, v] : samples_) {
      (void)t;
      if (v > best) best = v;
    }
    return best;
  }

  /// First sample time at which the value reached `threshold` (-1 if never).
  SimTime time_to_reach(double threshold) const {
    for (const auto& [t, v] : samples_) {
      if (v >= threshold) return t;
    }
    return -1;
  }

 private:
  void arm() {
    pending_ = sim_.schedule(interval_, [this]() {
      if (!running_) return;
      samples_.emplace_back(sim_.now(), sampler_());
      arm();
    });
  }

  Simulator& sim_;
  SimTime interval_;
  Sampler sampler_;
  std::vector<std::pair<SimTime, double>> samples_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace xgbe::sim

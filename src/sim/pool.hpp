// Free-list object pool for event-loop hot paths.
//
// The simulation's steady-state malloc traffic comes from a handful of
// per-frame and per-interrupt control records: link delivery records
// (~200-byte Packet captures that overflow InlineCallback's inline buffer),
// NIC interrupt batches (a fresh std::vector per interrupt), and the
// shared-ownership blocks the kernel model used to build with
// std::make_shared. A Pool recycles those records through a free list so the
// steady state allocates nothing: a released node keeps its value object
// alive (vectors keep their capacity) and the next acquire() hands it back.
//
// Threading contract: a Pool is single-threaded, like the event queue it
// feeds. In the sharded engine every pool is owned by one shard (or by one
// exchange channel, whose pool is touched only by the owning shard's worker
// and, between windows, by the barrier thread) — frees never cross shards
// inside a window, so no locks and no atomic refcounts are needed.
//
// Lifetime: handles are refcounted and may outlive the Pool (events still
// pending in an EventQueue can hold handles while the owning component is
// torn down first — the queue dies with the Simulator, after the component).
// The free list lives in a control block that survives until both the Pool
// and the last handle are gone; nodes released after the Pool's death are
// simply freed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xgbe::sim {

/// Bounded-retention object pool. `T` must be default-constructible.
/// acquire() returns a refcounted Handle; the node returns to the free list
/// when the last Handle dies. Reused values are handed back AS-IS (that is
/// the point: vectors keep capacity) — callers reset the fields they use.
template <typename T>
class Pool {
  struct Shared;
  struct Node {
    T value{};
    std::uint32_t refs = 0;
    Shared* shared = nullptr;
  };

  struct Shared {
    std::vector<Node*> free;
    std::size_t max_free = 0;
    std::size_t live = 0;   // nodes currently referenced by handles
    bool pool_alive = true;
    // Diagnostics for the pool tests and metrics.
    std::uint64_t allocated = 0;  // fresh heap nodes
    std::uint64_t reused = 0;     // acquires served from the free list
  };

  static void release(Node* node) {
    if (node == nullptr || --node->refs != 0) return;
    Shared* shared = node->shared;
    --shared->live;
    if (!shared->pool_alive) {
      delete node;
      if (shared->live == 0) delete shared;
      return;
    }
    if (shared->free.size() < shared->max_free) {
      shared->free.push_back(node);
    } else {
      delete node;  // retention cap reached: exhaustion fallback is the heap
    }
  }

 public:
  /// Refcounted pointer to a pooled value. Copyable (the kernel shares one
  /// interrupt batch across per-packet continuations); not thread-safe.
  class Handle {
   public:
    Handle() = default;
    Handle(const Handle& other) : node_(other.node_) {
      if (node_ != nullptr) ++node_->refs;
    }
    Handle(Handle&& other) noexcept : node_(other.node_) {
      other.node_ = nullptr;
    }
    Handle& operator=(const Handle& other) {
      if (this != &other) {
        Node* old = node_;
        node_ = other.node_;
        if (node_ != nullptr) ++node_->refs;
        release(old);
      }
      return *this;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release(node_);
        node_ = other.node_;
        other.node_ = nullptr;
      }
      return *this;
    }
    ~Handle() { release(node_); }

    T* operator->() const { return &node_->value; }
    T& operator*() const { return node_->value; }
    T* get() const { return node_ != nullptr ? &node_->value : nullptr; }
    explicit operator bool() const { return node_ != nullptr; }
    void reset() {
      release(node_);
      node_ = nullptr;
    }

   private:
    friend class Pool;
    explicit Handle(Node* node) : node_(node) {}
    Node* node_ = nullptr;
  };

  /// `max_free`: nodes retained for reuse. More live handles than that is
  /// fine — acquire() falls back to plain heap allocation and release()
  /// frees past the cap, so an exhausted pool degrades to malloc, never
  /// fails.
  explicit Pool(std::size_t max_free = 256) : shared_(new Shared) {
    shared_->max_free = max_free;
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    for (Node* node : shared_->free) delete node;
    shared_->free.clear();
    shared_->pool_alive = false;
    if (shared_->live == 0) delete shared_;
    // else: the last outstanding Handle deletes the control block.
  }

  /// Returns a handle to a (possibly recycled) value. The value's previous
  /// contents are preserved on reuse; overwrite what you use.
  Handle acquire() {
    Node* node;
    if (!shared_->free.empty()) {
      node = shared_->free.back();
      shared_->free.pop_back();
      ++shared_->reused;
    } else {
      node = new Node;
      node->shared = shared_;
      ++shared_->allocated;
    }
    node->refs = 1;
    ++shared_->live;
    return Handle(node);
  }

  /// Fresh heap nodes ever created (steady state: stops growing).
  std::uint64_t allocated() const { return shared_->allocated; }
  /// Acquires served from the free list.
  std::uint64_t reused() const { return shared_->reused; }
  /// Nodes currently referenced by live handles.
  std::size_t live() const { return shared_->live; }
  /// Nodes parked on the free list right now.
  std::size_t free_size() const { return shared_->free.size(); }
  std::size_t max_free() const { return shared_->max_free; }

 private:
  Shared* shared_;
};

}  // namespace xgbe::sim

#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <tuple>

namespace xgbe::sim {

namespace {

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

/// Window edge (inclusive) for a window starting at `start`, bounded by the
/// run horizon. Saturating so run() (horizon = max) never overflows.
SimTime window_edge(SimTime start, SimTime lookahead, SimTime horizon) {
  const SimTime last =
      start > kForever - lookahead ? kForever : start + lookahead - 1;
  return last < horizon ? last : horizon;
}

unsigned thread_override_from_env() {
  const char* env = std::getenv("XGBE_SHARD_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 1;
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t shard_count) {
  assert(shard_count > 0);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
}

ShardedEngine::~ShardedEngine() { stop_workers(); }

std::uint32_t ShardedEngine::register_channel(ExchangeChannel* channel) {
  channels_.push_back(channel);
  return static_cast<std::uint32_t>(channels_.size() - 1);
}

void ShardedEngine::set_lookahead(SimTime lookahead) {
  lookahead_ = lookahead < 1 ? 1 : lookahead;
}

void ShardedEngine::set_threads(unsigned threads) {
  stop_workers();
  threads_ = threads;
  threads_resolved_ = true;
}

std::uint64_t ShardedEngine::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->executed_events();
  return total;
}

SimTime ShardedEngine::global_next_event_time() const {
  SimTime earliest = kForever;
  for (const auto& shard : shards_) {
    earliest = std::min(earliest, shard->next_event_time());
  }
  return earliest;
}

void ShardedEngine::run_until(SimTime horizon) {
  stopped_ = false;
  stop_requested_.store(false, std::memory_order_relaxed);
  for (;;) {
    // The window start is the earliest pending event anywhere. Both it and
    // the lookahead are partition-invariant, so the window sequence — and
    // with it the whole committed schedule — is too.
    const SimTime window_start = global_next_event_time();
    if (window_start == kForever || window_start > horizon) break;
    const SimTime edge = window_edge(window_start, lookahead_, horizon);
    execute_window(edge);
    ++windows_;
    // Commit even when stopping: buffered entries are scheduled (not
    // executed), and leaving them in the channels would let a resumed run
    // commit them into a window that has already passed.
    commit_exchange();
    bool shard_stopped = false;
    for (const auto& shard : shards_) shard_stopped |= shard->stopped();
    if (shard_stopped || stop_requested_.load(std::memory_order_relaxed)) {
      stopped_ = true;
      return;
    }
    if (!check_watchdog(edge)) {
      stopped_ = true;
      return;
    }
    // Barrier hook: every event at or before `edge` has executed and the
    // window's exchange is committed, so boundaries up to the edge are
    // observable — single-threaded, zero events, zero perturbation. The
    // boundary (not the edge) travels as the observation time, keeping the
    // recorded timestamps independent of the lookahead.
    if (hook_ != nullptr) {
      while (hook_->due() <= edge) hook_->advance(hook_->due());
    }
  }
  // Event supply ended (or starts past the horizon): advance every shard
  // clock to the horizon so bounded waits make progress, exactly like
  // Simulator::run_until. run() passes SimTime max; leave clocks alone then.
  if (horizon != kForever) {
    for (auto& shard : shards_) shard->run_until(horizon);
    now_ = horizon;
    if (hook_ != nullptr) {
      while (hook_->due() <= horizon) hook_->advance(hook_->due());
    }
  } else {
    for (const auto& shard : shards_) now_ = std::max(now_, shard->now());
  }
}

void ShardedEngine::execute_window(SimTime edge_inclusive) {
  if (!threads_resolved_) {
    const unsigned env = thread_override_from_env();
    if (env != 0) {
      threads_ = env;
    } else if (threads_ == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads_ = hw == 0 ? 1 : hw;
    }
    threads_resolved_ = true;
  }
  const std::size_t useful =
      std::min<std::size_t>(threads_, shards_.size());
  if (useful <= 1) {
    for (auto& shard : shards_) shard->run_until(edge_inclusive);
    now_ = edge_inclusive;
    return;
  }
  start_workers();
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_edge_ = edge_inclusive;
    pool_next_shard_.store(0, std::memory_order_relaxed);
    pool_done_ = 0;
    ++pool_generation_;
    pool_work_cv_.notify_all();
    pool_done_cv_.wait(lock, [this] { return pool_done_ == workers_.size(); });
  }
  now_ = edge_inclusive;
}

void ShardedEngine::start_workers() {
  if (!workers_.empty()) return;
  const std::size_t count = std::min<std::size_t>(threads_, shards_.size());
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ShardedEngine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_quit_ = true;
    pool_work_cv_.notify_all();
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  pool_quit_ = false;
}

void ShardedEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    SimTime edge;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_work_cv_.wait(lock, [this, seen_generation] {
        return pool_quit_ || pool_generation_ != seen_generation;
      });
      if (pool_quit_) return;
      seen_generation = pool_generation_;
      edge = pool_edge_;
    }
    // Claim shards by atomic ticket until the window is fully executed.
    // A shard is only ever touched by the worker holding its ticket, and
    // ticket handoff between windows is ordered by the pool mutex.
    for (;;) {
      const std::size_t i =
          pool_next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards_.size()) break;
      shards_[i]->run_until(edge);
    }
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (++pool_done_ == workers_.size()) pool_done_cv_.notify_all();
    }
  }
}

void ShardedEngine::commit_exchange() {
  commit_order_.clear();
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    const std::size_t n = channels_[c]->pending();
    for (std::size_t i = 0; i < n; ++i) {
      commit_order_.push_back(
          {channels_[c]->entry_time(i), c, static_cast<std::uint32_t>(i)});
    }
  }
  // (time, channel, append index): unique, total, and independent of the
  // partition — channel ids follow topology construction order, not shard
  // layout. Committed entries therefore take identical queue sequence
  // numbers in every configuration.
  std::sort(commit_order_.begin(), commit_order_.end(),
            [](const CommitKey& a, const CommitKey& b) {
              return std::tie(a.at, a.channel, a.index) <
                     std::tie(b.at, b.channel, b.index);
            });
  for (const CommitKey& key : commit_order_) {
    channels_[key.channel]->commit_entry(key.index);
  }
  exchanged_ += commit_order_.size();
  for (ExchangeChannel* channel : channels_) channel->clear_window();
}

void ShardedEngine::watch_progress(std::string name,
                                   std::function<std::uint64_t()> fn) {
  progress_.push_back({std::move(name), std::move(fn), 0, false});
}

void ShardedEngine::add_trip_context(std::string name,
                                     std::function<std::string()> fn) {
  contexts_.push_back({std::move(name), std::move(fn)});
}

void ShardedEngine::arm_watchdog(EngineWatchdogOptions options) {
  watchdog_options_ = options;
  if (watchdog_options_.interval < 1) watchdog_options_.interval = 1;
  watchdog_armed_ = true;
  tripped_ = false;
  stalled_ = 0;
  diagnosis_.clear();
  next_check_ = now_ + watchdog_options_.interval;
  for (auto& counter : progress_) counter.primed = false;
}

bool ShardedEngine::check_watchdog(SimTime committed) {
  if (!watchdog_armed_) return true;
  // Evaluate once per interval boundary crossed by this window. The check
  // schedule depends only on committed time, which is partition-invariant,
  // and evaluation only reads counters — armed runs stay bit-identical.
  while (committed >= next_check_) {
    bool moved = false;
    std::string stalled_names;
    for (auto& counter : progress_) {
      const std::uint64_t value = counter.fn();
      if (!counter.primed || value != counter.last) moved = true;
      if (counter.primed && value == counter.last) {
        if (!stalled_names.empty()) stalled_names += ", ";
        stalled_names += counter.name;
      }
      counter.primed = true;
      counter.last = value;
    }
    stalled_ = moved ? 0 : stalled_ + 1;
    if (!progress_.empty() && stalled_ >= watchdog_options_.stalled_ticks) {
      std::string why = "no progress for " + std::to_string(stalled_) +
                        " checks (stalled: " + stalled_names + ")";
      trip(std::move(why));
      return false;
    }
    if (next_check_ > kForever - watchdog_options_.interval) {
      next_check_ = kForever;
      break;
    }
    next_check_ += watchdog_options_.interval;
  }
  return true;
}

void ShardedEngine::trip(std::string why) {
  tripped_ = true;
  diagnosis_ = "engine watchdog tripped at t=" + std::to_string(now_) +
               "ps: " + std::move(why);
  for (const auto& context : contexts_) {
    diagnosis_ += "\n  " + context.name + ": " + context.fn();
  }
  if (on_trip) on_trip(diagnosis_);
}

}  // namespace xgbe::sim

// Discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

/// Single-threaded deterministic discrete-event simulator.
///
/// Components schedule callbacks; run() executes them in (time, schedule
/// order) until the pending set drains, a stop is requested, or a horizon is
/// reached. A Simulator is the root object every model component holds a
/// reference to; it owns nothing but the clock and the event set.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` picoseconds from now (>= 0).
  EventId schedule(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Schedules `cb` at absolute time `at` (clamped to `now()`).
  EventId schedule_at(SimTime at, EventQueue::Callback cb) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or stop() is called.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs until `horizon` (inclusive for events at exactly `horizon`),
  /// the event set drains, or stop() is called. The clock advances to the
  /// last executed event, never past `horizon`.
  void run_until(SimTime horizon);

  /// Requests that run() return after the current event completes.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Number of events executed so far (diagnostic / test hook).
  std::uint64_t executed_events() const { return executed_; }

  /// True while events remain scheduled.
  bool has_pending() const { return !queue_.empty(); }

  /// Earliest pending event time, or SimTime max when the set is drained.
  /// The sharded engine polls this across shards to pick the next window.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.next_time();
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace xgbe::sim

// Discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

/// Boundary-driven observation hook (e.g. obs::MetricScraper): fires at
/// fixed sim-time boundaries WITHOUT scheduling events, so arming one
/// perturbs nothing — executed-event counts and all simulation state stay
/// bit-identical to an unarmed run.
///
/// Contract: due() names the next boundary the hook wants to observe;
/// advance(at) is called with `at == due()` once every event at or before
/// that boundary has executed (the classic simulator fires between events;
/// the sharded engine fires at lookahead barriers, where the whole fabric
/// is quiescent). advance() must strictly increase due() and must not
/// schedule, cancel, or otherwise mutate simulation state — read-only
/// probes only.
class TimeHook {
 public:
  virtual ~TimeHook() = default;
  /// Next boundary this hook wants to observe.
  virtual SimTime due() const = 0;
  /// Observes boundary `at` (== due()). Must strictly increase due().
  virtual void advance(SimTime at) = 0;
};

/// Single-threaded deterministic discrete-event simulator.
///
/// Components schedule callbacks; run() executes them in (time, schedule
/// order) until the pending set drains, a stop is requested, or a horizon is
/// reached. A Simulator is the root object every model component holds a
/// reference to; it owns nothing but the clock and the event set.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` picoseconds from now (>= 0).
  EventId schedule(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Schedules `cb` at absolute time `at` (clamped to `now()`).
  EventId schedule_at(SimTime at, EventQueue::Callback cb) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or stop() is called.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs until `horizon` (inclusive for events at exactly `horizon`),
  /// the event set drains, or stop() is called. The clock advances to the
  /// last executed event, never past `horizon`.
  void run_until(SimTime horizon);

  /// Requests that run() return after the current event completes.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Number of events executed so far (diagnostic / test hook).
  std::uint64_t executed_events() const { return executed_; }

  /// True while events remain scheduled.
  bool has_pending() const { return !queue_.empty(); }

  /// Earliest pending event time, or SimTime max when the set is drained.
  /// The sharded engine polls this across shards to pick the next window.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.next_time();
  }

  /// Arms a boundary hook (null disarms). The hook fires between events —
  /// it is NOT an event, so executed_events() and the whole schedule stay
  /// bit-identical to an unarmed run. In sharded mode install the hook on
  /// the engine (ShardedEngine::set_time_hook), not on a shard.
  void set_time_hook(TimeHook* hook) { hook_ = hook; }
  TimeHook* time_hook() const { return hook_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  TimeHook* hook_ = nullptr;
};

}  // namespace xgbe::sim

#include "sim/watchdog.hpp"

namespace xgbe::sim {

void Watchdog::arm() {
  if (armed_ || tripped_) return;
  armed_ = true;
  stalled_ = 0;
  for (Counter& c : counters_) c.primed = false;
  pending_ = sim_.schedule(options_.interval, [this]() {
    armed_ = false;
    tick();
  });
}

void Watchdog::disarm() {
  if (!armed_) return;
  sim_.cancel(pending_);
  armed_ = false;
}

void Watchdog::tick() {
  for (const Invariant& inv : invariants_) {
    std::string violation = inv.fn();
    if (!violation.empty()) {
      trip("invariant '" + inv.name + "' violated at t=" +
           std::to_string(to_seconds(sim_.now())) + "s: " + violation);
      return;
    }
  }
  bool moved = counters_.empty();  // nothing watched => never a stall
  for (Counter& c : counters_) {
    const std::uint64_t v = c.fn();
    if (!c.primed || v != c.last) moved = true;
    c.primed = true;
    c.last = v;
  }
  if (moved) {
    stalled_ = 0;
  } else if (++stalled_ >= options_.stalled_ticks) {
    std::string why = "no forward progress for " +
                      std::to_string(to_seconds(
                          options_.interval * options_.stalled_ticks)) +
                      "s of simulated time (now t=" +
                      std::to_string(to_seconds(sim_.now())) + "s); stalled:";
    for (const Counter& c : counters_) {
      why += " " + c.name + "=" + std::to_string(c.last);
    }
    trip(std::move(why));
    return;
  }
  armed_ = true;
  pending_ = sim_.schedule(options_.interval, [this]() {
    armed_ = false;
    tick();
  });
}

void Watchdog::trip(std::string why) {
  tripped_ = true;
  for (const Context& ctx : contexts_) {
    const std::string snapshot = ctx.fn();
    if (!snapshot.empty()) why += "; " + ctx.name + ": " + snapshot;
  }
  diagnosis_ = std::move(why);
  if (on_trip) on_trip(diagnosis_);
  if (options_.stop_simulation) sim_.stop();
}

}  // namespace xgbe::sim

#include "sim/resource.hpp"

namespace xgbe::sim {

SimTime Resource::submit(SimTime cost, InlineCallback done) {
  if (cost < 0) cost = 0;
  const SimTime start = available_at();
  const SimTime finish = start + cost;
  busy_until_ = finish;
  busy_accum_ += cost;
  ++jobs_;
  // Always schedule the completion event (even without a callback) so the
  // simulation clock covers all resource activity.
  sim_.schedule_at(finish, std::move(done));
  return finish;
}

double Resource::utilization() const {
  // Busy time can extend past `now` (queued work); clamp the numerator so a
  // saturated resource reports 1.0 rather than >1.
  const SimTime window = sim_.now() - window_start_;
  if (window <= 0) return 0.0;
  SimTime busy = busy_accum_ - window_busy_base_;
  // Subtract the portion of accumulated busy time scheduled beyond `now`.
  if (busy_until_ > sim_.now()) busy -= (busy_until_ - sim_.now());
  if (busy < 0) busy = 0;
  if (busy > window) busy = window;
  return static_cast<double>(busy) / static_cast<double>(window);
}

void Resource::mark_window() {
  window_start_ = sim_.now();
  window_busy_base_ = busy_accum_;
  if (busy_until_ > sim_.now()) {
    // Work already queued past `now` belongs to the new window.
    window_busy_base_ -= (busy_until_ - sim_.now());
  }
}

}  // namespace xgbe::sim

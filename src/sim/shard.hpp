// Sharded parallel event engine: conservative-lookahead windows over
// per-shard Simulators.
//
// The topology is partitioned into shards, each owning a private Simulator
// (event queue + clock) whose components never touch another shard's state.
// The engine advances all shards in lockstep windows of width L, the
// lookahead — the minimum propagation delay over all cross-shard links. A
// window [W, W+L) is safe to execute concurrently because any event one
// shard creates for another is a frame crossing a link: it cannot arrive
// earlier than serialization (>= 1 ps; transfer_time rounds up) plus that
// link's propagation (>= L), i.e. strictly after the window edge. This is
// the classic conservative null-message/window scheme, with the global
// barrier playing the role of the null messages.
//
// Cross-shard events never touch a foreign event queue directly. Each link
// direction that crosses a shard boundary appends pending deliveries to its
// own ExchangeChannel buffer (single-writer: only the transmitting shard's
// worker touches it inside a window). At the barrier the engine commits all
// buffered entries into their destination queues in a fixed merge order —
// (timestamp, channel id, per-channel append index) — where channel ids are
// assigned in topology construction order. Every key in that order is
// independent of how hosts were partitioned and of the thread count, so the
// committed schedule, and therefore the whole simulation, is bit-identical
// for any shard/thread count, including one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

/// Deterministic buffer of events crossing a shard boundary. The
/// transmitting shard appends entries during a window; the engine drains the
/// buffer at the barrier, committing entries into the destination shard's
/// queue in global merge order. Implementations keep entries in append
/// order; `index` in commit_entry() refers to that order.
class ExchangeChannel {
 public:
  virtual ~ExchangeChannel() = default;

  /// Entries appended during the window just executed.
  virtual std::size_t pending() const = 0;

  /// Scheduled (destination) time of entry `index`.
  virtual SimTime entry_time(std::size_t index) const = 0;

  /// Schedules entry `index` into the destination shard's event queue.
  /// Called only between windows, in global merge order.
  virtual void commit_entry(std::size_t index) = 0;

  /// Discards the window's entries after they were all committed.
  virtual void clear_window() = 0;
};

/// Engine-level watchdog options; mirrors sim::Watchdog::Options. The engine
/// watchdog is evaluated at window barriers (not via scheduled events), so
/// arming it perturbs nothing: armed runs are bit-identical to unarmed.
struct EngineWatchdogOptions {
  /// Committed simulated time between checks.
  SimTime interval = msec(100);
  /// Consecutive no-progress checks before the watchdog trips.
  int stalled_ticks = 10;
};

/// Runs N shard Simulators under conservative lookahead with barrier-
/// committed exchange channels. Deterministic for any shard/thread count.
class ShardedEngine {
 public:
  explicit ShardedEngine(std::size_t shard_count);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  ~ShardedEngine();

  std::size_t shard_count() const { return shards_.size(); }
  Simulator& shard(std::size_t i) { return *shards_[i]; }
  const Simulator& shard(std::size_t i) const { return *shards_[i]; }

  /// Registers a channel; ids are assigned in call order, which must follow
  /// topology construction order (it is part of the merge order, so it must
  /// not depend on the partition). Returns the channel id.
  std::uint32_t register_channel(ExchangeChannel* channel);

  /// Sets the lookahead (window width). Must be <= the minimum propagation
  /// delay over all cross-shard links; Testbed computes it as the minimum
  /// over ALL links, which is always safe. Clamped to >= 1 ps.
  void set_lookahead(SimTime lookahead);
  SimTime lookahead() const { return lookahead_; }

  /// Worker threads for window execution. 0 or 1 runs shards inline on the
  /// caller's thread; results are identical either way. The XGBE_SHARD_THREADS
  /// environment variable, when set, overrides this at first run.
  void set_threads(unsigned threads);
  unsigned threads() const { return threads_; }

  /// Runs until every shard drains or a stop is requested (engine stop() or
  /// any shard's Simulator::stop(), e.g. a per-shard watchdog tripping).
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs windows until `horizon` (inclusive for events at exactly
  /// `horizon`). Advances every shard clock to `horizon` when the event
  /// supply ends early, mirroring Simulator::run_until.
  void run_until(SimTime horizon);

  /// Requests that run() return at the next barrier.
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  /// True when the last run ended on a stop (engine or any shard).
  bool stopped() const { return stopped_; }

  /// Committed global time (== horizon after a completed run_until).
  SimTime now() const { return now_; }

  /// Sum of events executed across all shards.
  std::uint64_t executed_events() const;

  /// Lookahead windows executed so far.
  std::uint64_t windows() const { return windows_; }

  /// Cross-shard events committed through exchange channels so far.
  std::uint64_t exchanged() const { return exchanged_; }

  // --- Engine watchdog ------------------------------------------------------
  // The per-shard sim::Watchdog ticks via scheduled events, which would
  // perturb the window schedule and race the shard it did not run on. The
  // engine-level watchdog instead evaluates progress counters at barriers
  // whenever committed time crosses an interval boundary: zero events, zero
  // perturbation, single-threaded evaluation.

  /// Registers a monotonic progress counter (may read any shard's state —
  /// evaluated only between windows).
  void watch_progress(std::string name, std::function<std::uint64_t()> fn);

  /// Registers a diagnostic context provider, evaluated only on trip.
  void add_trip_context(std::string name, std::function<std::string()> fn);

  void arm_watchdog(EngineWatchdogOptions options = {});
  void disarm_watchdog() { watchdog_armed_ = false; }
  bool watchdog_armed() const { return watchdog_armed_; }
  bool tripped() const { return tripped_; }
  const std::string& diagnosis() const { return diagnosis_; }

  /// Invoked once when the watchdog trips, after the diagnosis is set.
  std::function<void(const std::string&)> on_trip;

  // --- Barrier time hook ----------------------------------------------------
  /// Arms a boundary hook (null disarms), evaluated at window barriers like
  /// the engine watchdog: the hook fires after a window's exchange commit,
  /// single-threaded, once committed time reaches its due boundary — so it
  /// may read any shard's state, schedules nothing, and armed runs stay
  /// bit-identical to unarmed (executed-event counts included). The barrier
  /// sequence depends only on committed time and the lookahead, both
  /// partition-invariant, so hook observations are identical for any
  /// shard/thread count.
  void set_time_hook(TimeHook* hook) { hook_ = hook; }
  TimeHook* time_hook() const { return hook_; }

 private:
  struct ProgressCounter {
    std::string name;
    std::function<std::uint64_t()> fn;
    std::uint64_t last = 0;
    bool primed = false;
  };
  struct TripContext {
    std::string name;
    std::function<std::string()> fn;
  };
  // Merge key for one buffered exchange entry; (channel, index) is unique,
  // so the order is total and partition-invariant.
  struct CommitKey {
    SimTime at;
    std::uint32_t channel;
    std::uint32_t index;
  };

  /// Earliest pending event time across shards (SimTime max when drained).
  SimTime global_next_event_time() const;

  /// Executes one window: every shard runs to `edge_inclusive`.
  void execute_window(SimTime edge_inclusive);

  /// Commits all buffered channel entries in merge order.
  void commit_exchange();

  /// Evaluates the watchdog for every interval boundary crossed when
  /// committed time reaches `committed`. Returns false when it tripped.
  bool check_watchdog(SimTime committed);
  void trip(std::string why);

  void start_workers();
  void stop_workers();
  void worker_loop();

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<ExchangeChannel*> channels_;
  SimTime lookahead_ = 1;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::atomic<bool> stop_requested_{false};
  std::uint64_t windows_ = 0;
  std::uint64_t exchanged_ = 0;
  std::vector<CommitKey> commit_order_;  // scratch, reused across barriers

  // Worker pool (generation-counted barrier). Workers claim shards with an
  // atomic ticket; all other shared state is handed over under the mutex,
  // which is what makes the scheme ThreadSanitizer-clean.
  unsigned threads_ = 0;          // 0 = resolve at first run
  bool threads_resolved_ = false;
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable pool_work_cv_;
  std::condition_variable pool_done_cv_;
  std::uint64_t pool_generation_ = 0;
  SimTime pool_edge_ = 0;
  std::atomic<std::size_t> pool_next_shard_{0};
  std::size_t pool_done_ = 0;
  bool pool_quit_ = false;

  TimeHook* hook_ = nullptr;

  // Watchdog state.
  bool watchdog_armed_ = false;
  bool tripped_ = false;
  EngineWatchdogOptions watchdog_options_;
  SimTime next_check_ = 0;
  int stalled_ = 0;
  std::vector<ProgressCounter> progress_;
  std::vector<TripContext> contexts_;
  std::string diagnosis_;
};

}  // namespace xgbe::sim

// Deterministic pending-event set.
//
// Events are ordered by (time, insertion sequence); the sequence tiebreak
// makes simulations bit-for-bit reproducible regardless of heap internals.
//
// The pending set is an indexed 4-ary min-heap: every live event's heap
// position is tracked through a handle table, so cancel() removes the entry
// from the heap in O(log n) instead of deferring to a lazy skip list. Handles
// are (slot, generation) pairs; firing or cancelling an event bumps the
// slot's generation, which makes stale EventIds (cancel-after-fire,
// duplicate cancel) exact no-ops.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

/// Opaque handle for cancelling a scheduled event. A default-constructed
/// EventId refers to nothing; cancelling it is a harmless no-op.
struct EventId {
  std::uint32_t slot = 0xffffffffu;
  std::uint32_t gen = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedules `cb` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event. Precondition: !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback cb;
  };
  Fired pop();

  /// Total events ever scheduled (diagnostic).
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // determinism tiebreak: (time, seq) is a total order
    std::uint32_t handle;
    Callback cb;
  };

  struct HandleRec {
    std::uint32_t pos;  // index into heap_, kFreePos when not live
    std::uint32_t gen;
  };
  static constexpr std::uint32_t kFreePos = 0xffffffffu;
  static constexpr std::size_t kArity = 4;

  static bool before(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::uint32_t acquire_handle(std::uint32_t pos);
  void release_handle(std::uint32_t h);
  void remove_at(std::size_t i);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<HandleRec> handles_;
  std::vector<std::uint32_t> free_handles_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace xgbe::sim

// Deterministic pending-event set.
//
// Events are ordered by (time, insertion sequence); the sequence tiebreak
// makes simulations bit-for-bit reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace xgbe::sim {

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback cb;
  };
  Fired pop();

  /// Total events ever scheduled (diagnostic).
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;

  bool is_cancelled(std::uint64_t seq) const;
  void forget_cancelled(std::uint64_t seq);
};

}  // namespace xgbe::sim

#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace xgbe::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  const std::uint32_t h = acquire_handle(pos);
  heap_.push_back(Entry{at, seq, h, std::move(cb)});
  sift_up(heap_.size() - 1);
  return EventId{h, handles_[h].gen};
}

void EventQueue::cancel(EventId id) {
  if (id.slot >= handles_.size()) return;
  const HandleRec rec = handles_[id.slot];
  if (rec.gen != id.gen || rec.pos == kFreePos) return;
  release_handle(id.slot);
  remove_at(rec.pos);
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty());
  Entry& root = heap_.front();
  Fired fired{root.time, std::move(root.cb)};
  release_handle(root.handle);
  remove_at(0);
  return fired;
}

std::uint32_t EventQueue::acquire_handle(std::uint32_t pos) {
  if (!free_handles_.empty()) {
    const std::uint32_t h = free_handles_.back();
    free_handles_.pop_back();
    handles_[h].pos = pos;
    return h;
  }
  // Generations start at 1 so a default-constructed EventId (gen 0) can
  // never match a live handle.
  handles_.push_back(HandleRec{pos, 1});
  return static_cast<std::uint32_t>(handles_.size() - 1);
}

void EventQueue::release_handle(std::uint32_t h) {
  handles_[h].pos = kFreePos;
  ++handles_[h].gen;  // invalidates every outstanding EventId for this slot
  free_handles_.push_back(h);
}

void EventQueue::remove_at(std::size_t i) {
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    heap_[i] = std::move(heap_[last]);
    handles_[heap_[i].handle].pos = static_cast<std::uint32_t>(i);
    heap_.pop_back();
    if (i > 0 && before(heap_[i], heap_[(i - 1) / kArity])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  } else {
    heap_.pop_back();
  }
}

void EventQueue::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t p = (i - 1) / kArity;
    if (!before(e, heap_[p])) break;
    heap_[i] = std::move(heap_[p]);
    handles_[heap_[i].handle].pos = static_cast<std::uint32_t>(i);
    i = p;
  }
  heap_[i] = std::move(e);
  handles_[heap_[i].handle].pos = static_cast<std::uint32_t>(i);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    handles_[heap_[i].handle].pos = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = std::move(e);
  handles_[heap_[i].handle].pos = static_cast<std::uint32_t>(i);
}

}  // namespace xgbe::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace xgbe::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return;
  // We cannot know cheaply whether the event is still in the heap; record the
  // seq and skip it lazily. Duplicate cancels are filtered here.
  if (!cancelled_.insert(id.seq).second) return;
  if (live_ > 0) --live_;
}

bool EventQueue::is_cancelled(std::uint64_t seq) const {
  return cancelled_.count(seq) != 0;
}

void EventQueue::forget_cancelled(std::uint64_t seq) {
  cancelled_.erase(seq);
}

void EventQueue::drop_cancelled() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() && is_cancelled(self->heap_.top().seq)) {
    self->forget_cancelled(self->heap_.top().seq);
    self->heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; moving the callback out is safe because
  // the entry is popped immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.cb)};
  heap_.pop();
  assert(live_ > 0);
  --live_;
  return fired;
}

}  // namespace xgbe::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace xgbe::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return;
  // We cannot know cheaply whether the event is still in the heap; record the
  // seq and skip it lazily. Duplicate cancels are filtered here.
  if (is_cancelled(id.seq)) return;
  cancelled_.push_back(id.seq);
  std::sort(cancelled_.begin(), cancelled_.end());
  if (live_ > 0) --live_;
}

bool EventQueue::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

void EventQueue::forget_cancelled(std::uint64_t seq) {
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
  if (it != cancelled_.end() && *it == seq) cancelled_.erase(it);
}

void EventQueue::drop_cancelled() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() && is_cancelled(self->heap_.top().seq)) {
    self->forget_cancelled(self->heap_.top().seq);
    self->heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; moving the callback out is safe because
  // the entry is popped immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.cb)};
  heap_.pop();
  assert(live_ > 0);
  --live_;
  return fired;
}

}  // namespace xgbe::sim

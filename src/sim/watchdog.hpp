// Forward-progress and invariant watchdog for simulation runs.
//
// A hung experiment (a connection stalled with its timers wedged, a
// component livelocked on self-rescheduling events) would otherwise spin
// the event loop forever — or worse, drain it silently with the transfer
// incomplete. The watchdog ticks at a fixed simulated interval, evaluates
// registered invariant checks, and compares registered progress counters
// against their last values; after `stalled_ticks` consecutive intervals
// with no counter movement (or on the first invariant violation) it trips:
// records a diagnosis, invokes the optional on_trip hook, and stops the
// simulator so run() returns with a clean failure instead of hanging.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {

class Watchdog {
 public:
  struct Options {
    /// Simulated time between checks.
    SimTime interval = msec(100);
    /// Consecutive no-progress intervals before the watchdog trips.
    int stalled_ticks = 10;
    /// Call Simulator::stop() when tripping (almost always wanted; tests
    /// that only want the diagnosis can turn it off).
    bool stop_simulation = true;
  };

  explicit Watchdog(Simulator& simulator) : sim_(simulator) {}
  Watchdog(Simulator& simulator, Options options)
      : sim_(simulator), options_(options) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() { disarm(); }

  /// Registers a monotonic progress counter (e.g. bytes acknowledged +
  /// bytes consumed). Any movement across the watched set resets the stall
  /// count; a tick where none move counts toward tripping.
  void watch_progress(std::string name, std::function<std::uint64_t()> fn) {
    counters_.push_back({std::move(name), std::move(fn), 0, false});
  }

  /// Registers an invariant: returns an empty string while the invariant
  /// holds, or a description of the violation. Checked every tick; a
  /// violation trips the watchdog immediately.
  void add_invariant(std::string name, std::function<std::string()> fn) {
    invariants_.push_back({std::move(name), std::move(fn)});
  }

  /// Registers a diagnostic context provider: its string is appended to the
  /// diagnosis line when the watchdog trips (e.g. a fault-counter snapshot
  /// naming the injected causes of the stall). Evaluated only on trip.
  void add_context(std::string name, std::function<std::string()> fn) {
    contexts_.push_back({std::move(name), std::move(fn)});
  }

  /// Starts ticking. The pending tick keeps the event queue non-empty, so
  /// disarm() (or destruction) is required before expecting run() to drain.
  void arm();

  /// Cancels the pending tick. Safe to call repeatedly.
  void disarm();

  bool armed() const { return armed_; }
  bool tripped() const { return tripped_; }
  const std::string& diagnosis() const { return diagnosis_; }

  /// Invoked once when the watchdog trips (after the diagnosis is set,
  /// before the simulator is stopped).
  std::function<void(const std::string&)> on_trip;

 private:
  struct Counter {
    std::string name;
    std::function<std::uint64_t()> fn;
    std::uint64_t last = 0;
    bool primed = false;
  };
  struct Invariant {
    std::string name;
    std::function<std::string()> fn;
  };
  struct Context {
    std::string name;
    std::function<std::string()> fn;
  };

  void tick();
  void trip(std::string why);

  Simulator& sim_;
  Options options_;
  std::vector<Counter> counters_;
  std::vector<Invariant> invariants_;
  std::vector<Context> contexts_;
  EventId pending_{};
  bool armed_ = false;
  bool tripped_ = false;
  int stalled_ = 0;
  std::string diagnosis_;
};

}  // namespace xgbe::sim

#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {

namespace {

constexpr const char* kStageNames[kStageCount] = {
    "app-write",   "sockbuf", "tx-ring",       "tx-dma",   "wire",
    "switch-queue", "rx-ring", "intr-coalesce", "rx-stack", "app-read",
};

double ps_to_us(std::int64_t ps) { return static_cast<double>(ps) * 1e-6; }

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::int64_t SpanBreakdown::stage_sum_ps() const {
  std::int64_t sum = 0;
  for (std::int64_t ps : stage_total_ps) sum += ps;
  return sum;
}

double SpanBreakdown::stage_mean_us(Stage stage) const {
  if (journeys == 0) return 0.0;
  return ps_to_us(stage_total_ps[static_cast<std::size_t>(stage)]) /
         static_cast<double>(journeys);
}

double SpanBreakdown::end_to_end_mean_us() const {
  if (journeys == 0) return 0.0;
  return ps_to_us(end_to_end_total_ps) / static_cast<double>(journeys);
}

std::string format_breakdown_table(const SpanBreakdown& b,
                                   double measured_us) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "  %-14s %12s %8s\n", "stage", "mean (us)", "share");
  out += line;
  const double e2e = b.end_to_end_mean_us();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const double mean = b.stage_mean_us(stage);
    const double share = e2e > 0.0 ? 100.0 * mean / e2e : 0.0;
    std::snprintf(line, sizeof line, "  %-14s %12.4f %7.1f%%\n",
                  stage_name(stage), mean, share);
    out += line;
  }
  std::snprintf(line, sizeof line, "  %-14s %12.4f %7.1f%%  (%llu journeys",
                "end-to-end", e2e, e2e > 0.0 ? 100.0 : 0.0,
                static_cast<unsigned long long>(b.journeys));
  out += line;
  if (b.aborted != 0 || b.overflowed != 0) {
    std::snprintf(line, sizeof line, ", %llu aborted, %llu overflowed",
                  static_cast<unsigned long long>(b.aborted),
                  static_cast<unsigned long long>(b.overflowed));
    out += line;
  }
  out += ")\n";
  if (measured_us >= 0.0) {
    std::snprintf(line, sizeof line, "  %-14s %12.4f\n", "measured",
                  measured_us);
    out += line;
  }
  return out;
}

std::string breakdown_json(const SpanBreakdown& b) {
  std::string out = "{\"journeys\":" + std::to_string(b.journeys);
  out += ",\"opened\":" + std::to_string(b.opened);
  out += ",\"aborted\":" + std::to_string(b.aborted);
  out += ",\"overflowed\":" + std::to_string(b.overflowed);
  out += ",\"end_to_end\":{\"total_ps\":" +
         std::to_string(b.end_to_end_total_ps) +
         ",\"mean_us\":" + format_double(b.end_to_end_mean_us()) + "}";
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const Stage stage = static_cast<Stage>(i);
    if (i != 0) out += ",";
    out += "{\"stage\":\"";
    out += stage_name(stage);
    out += "\",\"total_ps\":" + std::to_string(b.stage_total_ps[i]) +
           ",\"mean_us\":" + format_double(b.stage_mean_us(stage)) + "}";
  }
  out += "]}";
  return out;
}

SpanProfiler::SpanProfiler(double hist_max_us, std::size_t hist_buckets,
                           std::size_t max_open)
    : e2e_hist_(0.0, hist_max_us, hist_buckets),
      hist_max_us_(hist_max_us),
      hist_buckets_(hist_buckets),
      max_open_(max_open) {
  stage_hist_.reserve(kStageCount);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_hist_.emplace_back(0.0, hist_max_us, hist_buckets);
  }
}

bool SpanProfiler::eligible(const net::Packet& pkt) {
  return pkt.protocol == net::Protocol::kTcp && pkt.payload_bytes > 0 &&
         !pkt.tcp.flags.syn && !pkt.tcp.flags.fin;
}

void SpanProfiler::begin(const net::Packet& pkt, sim::SimTime write_call,
                         sim::SimTime write_done, sim::SimTime emitted) {
  if (!eligible(pkt)) return;
  const Key key{pkt.flow, pkt.src, pkt.tcp.seq};
  // A stale journey under the same key (e.g. sequence wrap in a very long
  // run) is superseded rather than corrupted.
  if (auto it = open_.find(key); it != open_.end()) {
    open_.erase(it);
    ++aborted_;
  }
  if (open_.size() >= max_open_) {
    ++overflowed_;
    return;
  }
  Journey j;
  j.begin_at = write_call;
  j.dur[static_cast<std::size_t>(Stage::kAppWrite)] = write_done - write_call;
  j.dur[static_cast<std::size_t>(Stage::kSockbuf)] = emitted - write_done;
  j.last_stage = Stage::kTxRing;
  j.last_at = emitted;
  j.len = pkt.payload_bytes;
  open_.emplace(key, j);
  ++opened_;
}

void SpanProfiler::mark(const net::Packet& pkt, Stage stage, sim::SimTime at) {
  if (!eligible(pkt)) return;
  auto it = open_.find(Key{pkt.flow, pkt.src, pkt.tcp.seq});
  if (it == open_.end()) return;
  Journey& j = it->second;
  j.dur[static_cast<std::size_t>(j.last_stage)] += at - j.last_at;
  j.last_stage = stage;
  j.last_at = at;
}

void SpanProfiler::abort(const net::Packet& pkt) {
  if (!eligible(pkt)) return;
  if (open_.erase(Key{pkt.flow, pkt.src, pkt.tcp.seq}) != 0) ++aborted_;
}

void SpanProfiler::finish_consumed(net::FlowId flow, net::NodeId src,
                                   net::Seq consumed_upto, sim::SimTime at) {
  // Keys order by (flow, src, seq); scan the whole flow+src range and close
  // every journey whose payload the receiver has fully consumed.
  auto it = open_.lower_bound(Key{flow, src, 0});
  while (it != open_.end() && it->first.flow == flow &&
         it->first.src == src) {
    Journey& j = it->second;
    if (net::seq_le(it->first.seq + j.len, consumed_upto)) {
      finish(j, at);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void SpanProfiler::finish(Journey& j, sim::SimTime at) {
  j.dur[static_cast<std::size_t>(j.last_stage)] += at - j.last_at;
  const std::int64_t total = at - j.begin_at;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_total_ps_[i] += j.dur[i];
    stage_hist_[i].add(ps_to_us(j.dur[i]));
  }
  end_to_end_total_ps_ += total;
  e2e_hist_.add(ps_to_us(total));
  ++journeys_;
}

void SpanProfiler::reset() {
  open_.clear();
  stage_total_ps_.fill(0);
  end_to_end_total_ps_ = 0;
  journeys_ = opened_ = aborted_ = overflowed_ = 0;
  stage_hist_.clear();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_hist_.emplace_back(0.0, hist_max_us_, hist_buckets_);
  }
  e2e_hist_ = sim::Histogram(0.0, hist_max_us_, hist_buckets_);
}

SpanBreakdown SpanProfiler::breakdown() const {
  SpanBreakdown b;
  b.stage_total_ps = stage_total_ps_;
  b.end_to_end_total_ps = end_to_end_total_ps_;
  b.journeys = journeys_;
  b.opened = opened_;
  b.aborted = aborted_;
  b.overflowed = overflowed_;
  return b;
}

const sim::Histogram& SpanProfiler::stage_histogram(Stage stage) const {
  return stage_hist_[static_cast<std::size_t>(stage)];
}

const sim::Histogram& SpanProfiler::end_to_end_histogram() const {
  return e2e_hist_;
}

FlowSampler::FlowSampler(sim::SimTime interval, std::size_t max_samples)
    : interval_(interval < 1 ? 1 : interval), max_samples_(max_samples) {}

void FlowSampler::attach(sim::Simulator& sim) {
  sim_ = &sim;
  arm();
}

void FlowSampler::watch(net::FlowId flow, Probe probe) {
  probes_.emplace_back(flow, std::move(probe));
  arm();
}

void FlowSampler::arm() {
  if (armed_ || sim_ == nullptr || probes_.empty()) return;
  if (rows_.size() >= max_samples_) return;
  armed_ = true;
  timer_ = sim_->schedule(interval_, [this]() {
    armed_ = false;
    tick();
  });
}

void FlowSampler::tick() {
  for (auto& [flow, probe] : probes_) {
    if (rows_.size() >= max_samples_) break;
    rows_.push_back(Row{sim_->now(), flow, probe()});
  }
  arm();
}

void FlowSampler::stop() {
  if (armed_ && sim_ != nullptr) sim_->cancel(timer_);
  armed_ = false;
}

void FlowSampler::reset() {
  stop();
  sim_ = nullptr;
  probes_.clear();
  rows_.clear();
}

std::string FlowSampler::to_csv() const {
  std::string out =
      "at_ps,flow,cwnd_segments,ssthresh_segments,flight_bytes,srtt_us,"
      "rwnd_bytes,cc_state\n";
  for (const Row& r : rows_) {
    out += std::to_string(r.at) + "," + std::to_string(r.flow) + "," +
           std::to_string(r.sample.cwnd_segments) + "," +
           std::to_string(r.sample.ssthresh_segments) + "," +
           std::to_string(r.sample.flight_bytes) + "," +
           format_double(sim::to_microseconds(r.sample.srtt)) + "," +
           std::to_string(r.sample.rwnd_bytes) + "," +
           std::to_string(r.sample.cc_state) + "\n";
  }
  return out;
}

std::string FlowSampler::to_jsonl() const {
  std::string out;
  for (const Row& r : rows_) {
    out += "{\"at_ps\":" + std::to_string(r.at) +
           ",\"flow\":" + std::to_string(r.flow) +
           ",\"cwnd_segments\":" + std::to_string(r.sample.cwnd_segments) +
           ",\"ssthresh_segments\":" +
           std::to_string(r.sample.ssthresh_segments) +
           ",\"flight_bytes\":" + std::to_string(r.sample.flight_bytes) +
           ",\"srtt_us\":" + format_double(sim::to_microseconds(r.sample.srtt)) +
           ",\"rwnd_bytes\":" + std::to_string(r.sample.rwnd_bytes) +
           ",\"cc_state\":" + std::to_string(r.sample.cc_state) + "}\n";
  }
  return out;
}

std::string series_json(const FlowSampler& sampler) {
  std::string out =
      "{\"interval_ps\":" + std::to_string(sampler.interval()) +
      ",\"columns\":[\"at_ps\",\"flow\",\"cwnd_segments\","
      "\"ssthresh_segments\",\"flight_bytes\",\"srtt_us\",\"rwnd_bytes\","
      "\"cc_state\"]"
      ",\"rows\":[";
  bool first = true;
  for (const FlowSampler::Row& r : sampler.rows()) {
    if (!first) out += ",";
    first = false;
    out += "[" + std::to_string(r.at) + "," + std::to_string(r.flow) + "," +
           std::to_string(r.sample.cwnd_segments) + "," +
           std::to_string(r.sample.ssthresh_segments) + "," +
           std::to_string(r.sample.flight_bytes) + "," +
           format_double(sim::to_microseconds(r.sample.srtt)) + "," +
           std::to_string(r.sample.rwnd_bytes) + "," +
           std::to_string(r.sample.cc_state) + "]";
  }
  out += "]}";
  return out;
}

}  // namespace xgbe::obs

// Changepoint/threshold detection over scraped time series.
//
// The paper's methodology is to localize a pathology *in time* — watch the
// sequence plot, find where throughput collapses, match that window against
// reassembly/drop counters. obs::detect mechanizes that: it walks the
// columnar series a MetricScraper recorded and emits episodes —
// (onset_time, clear_time, severity) — for the pathologies the testbed can
// exhibit: fault-counter onsets (cable damage, carrier flaps), switch-port
// tail-drop bursts (incast collapse / trunk congestion), queue-depth
// saturation, srtt inflation, and per-link delivery-rate collapse.
//
// All detectors are pure integer arithmetic over i64 points — no floats, no
// smoothing windows with rounding, no wall-clock — so episode lists are
// byte-identical across reruns, shard counts, and thread counts. Cause
// slugs deliberately reuse the fleet_doctor vocabulary ("carrier-flap",
// "bad-cable", "incast-collapse", ...) so episodes fold directly into
// doctor findings as timeline evidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scrape.hpp"
#include "sim/time.hpp"

namespace xgbe::obs::detect {

/// One detected pathology window on one series.
struct Episode {
  std::string series;  // registry path the detector walked
  std::string cause;   // fleet_doctor cause slug ("carrier-flap", ...)
  sim::SimTime onset = 0;  // first scrape boundary where the condition held
  sim::SimTime clear = 0;  // first boundary confirmed quiet (0 if never)
  bool cleared = false;    // false: still active when the series ended
  std::int64_t severity = 0;  // cause-specific magnitude (see detectors)
};

struct DetectOptions {
  /// Consecutive quiet scrape intervals before a counter episode clears.
  /// The clear timestamp is the *first* quiet boundary, so this only delays
  /// confirmation, never shifts the reported window.
  int clear_intervals = 2;
  /// Rate-collapse arms only once some interval moved at least this many
  /// units — near-idle series never produce collapse noise.
  std::int64_t rate_floor = 8;
  /// Queue saturation opens at value * den >= max * num (default 3/4 of the
  /// series' own peak).
  std::int64_t queue_saturation_num = 3;
  std::int64_t queue_saturation_den = 4;
  /// Queue-depth series whose peak never reaches this (milli-bytes — the
  /// gauge unit) are skipped entirely: a port that briefly holds a frame is
  /// not saturating.
  std::int64_t queue_floor = 8192 * 1000;
  /// Gauge inflation opens at value > factor * baseline (first nonzero).
  std::int64_t inflation_factor = 2;
};

/// Counter onset: an episode opens at the first boundary whose interval
/// delta is positive and clears after `clear_intervals` quiet intervals.
/// Severity = total increase across the episode (for a flaps counter this
/// IS the flap count).
std::vector<Episode> detect_increase(const std::vector<SeriesPoint>& points,
                                     const std::string& series,
                                     const std::string& cause,
                                     const DetectOptions& opt = {});

/// Gauge threshold: opens at value >= threshold, clears at the first
/// boundary back below. Severity = peak value inside the episode.
std::vector<Episode> detect_threshold(const std::vector<SeriesPoint>& points,
                                      const std::string& series,
                                      const std::string& cause,
                                      std::int64_t threshold);

/// Delivery-rate collapse: once any interval delta reaches `rate_floor`,
/// an episode opens at the first boundary whose delta falls to a quarter
/// (or less) of the running peak delta, and clears when deltas recover
/// above that line. Severity = number of collapsed intervals.
std::vector<Episode> detect_rate_collapse(
    const std::vector<SeriesPoint>& points, const std::string& series,
    const std::string& cause, const DetectOptions& opt = {});

/// Applies the path-keyed detector policy to every series in the store:
///
///   */fault/{flaps,drops_carrier}            increase   carrier-flap
///   */fault/{drops_burst,drops_uniform,
///            drops_forced,corruptions,
///            drops_handshake,duplicates,
///            reorders}                       increase   bad-cable
///   switch/*/port/<egress>/dropped_queue_full increase  congested-trunk
///                                       (trunk egress) | incast-collapse
///   */host_fault/dma_throttled               increase   host-dma-throttle
///   */host_fault/alloc_fail_{rx,tx}          increase   host-memory-pressure
///   */host_fault/{ring_stall_drops,
///                 tx_ring_stalls}            increase   host-ring-stall
///   */queued_bytes                           threshold  queue-saturation
///   *srtt* (gauges)                          inflation  srtt-inflation
///   link/*/frames_delivered                  collapse   rate-collapse
///
/// Episodes come back sorted by (series, onset) — a total order, since a
/// series' episodes are disjoint in time.
std::vector<Episode> run_detectors(const TimeSeriesStore& store,
                                   const DetectOptions& opt = {});

/// Deterministic JSON array:
/// [{"series":..,"cause":..,"onset_ps":N,"clear_ps":N,"cleared":b,
///   "severity":N},...]
std::string episodes_json(const std::vector<Episode>& episodes);

}  // namespace xgbe::obs::detect

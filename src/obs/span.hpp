// Per-segment latency attribution (span profiler) and per-flow time-series
// sampling.
//
// SpanProfiler follows each data segment through the pipeline stages the
// paper's latency ledger argues about (Fig. 6/7: where do the 19 us go?):
//
//   app-write -> sockbuf -> tx-ring -> tx-dma -> wire -> switch-queue
//             -> rx-ring -> intr-coalesce -> rx-stack -> app-read
//
// Stamps come from the same choke points that feed obs::TraceSink and obey
// the same zero-perturbation contract: every hook is null-pointer-gated, the
// profiler draws no random numbers and schedules no events, so an armed run
// is bit-identical to an unarmed one (asserted by test).
//
// Accounting is telescoping: a journey remembers only the stage it is
// currently in and when it entered; each mark() charges the elapsed interval
// to the stage being left. Durations are integer picoseconds, so the stage
// totals sum to the end-to-end total *exactly* — the breakdown is a ledger,
// not an approximation. Repeated marks of the same stage (e.g. the two wire
// hops around a switch) simply accumulate.
//
// FlowSampler is the time-series half: a fixed-interval sampler of
// cwnd/ssthresh/flightsize/srtt/rwnd per flow (the paper's WAN cwnd-evolution
// view of the land-speed-record run). Unlike the profiler it *does* schedule
// its own timer events, but every probe is a read-only closure, so simulation
// results still match an unarmed run bit-for-bit (only the executed-event
// count differs).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {
class Simulator;
}

namespace xgbe::obs {

/// Pipeline stages a data segment passes through, in path order. Each value
/// names the interval *ending* at the corresponding choke point; see
/// stage_name() for the labels used in tables and JSON.
enum class Stage : std::uint8_t {
  kAppWrite = 0,  // app_send() called -> kernel admitted the write
  kSockbuf,       // write admitted -> segment built and handed to the driver
  kTxRing,        // driver queue + tx descriptor ring wait -> DMA starts
  kTxDma,         // DMA read across the I/O bus -> first bit on the wire
  kWire,          // serialization + propagation (accumulates per hop)
  kSwitchQueue,   // switch ingress -> egress port begins transmit
  kRxRing,        // last bit arrived -> RX DMA write complete
  kIntrCoalesce,  // DMA complete -> interrupt raised (coalescing hold-off)
  kRxStack,       // interrupt -> TCP accepted the segment (stack + reasm)
  kAppRead,       // accepted -> application consumed the bytes
};

inline constexpr std::size_t kStageCount = 10;

/// Display name for a stage ("app-write", "intr-coalesce", ...).
const char* stage_name(Stage stage);

/// Aggregated attribution result. All _ps totals are exact integer sums of
/// journey stage durations; stage_total_ps sums to end_to_end_total_ps by
/// construction (asserted by the stage-conservation test).
struct SpanBreakdown {
  std::array<std::int64_t, kStageCount> stage_total_ps{};
  std::int64_t end_to_end_total_ps = 0;
  std::uint64_t journeys = 0;    // completed (consumed) journeys
  std::uint64_t opened = 0;      // journeys started
  std::uint64_t aborted = 0;     // dropped / retransmitted / superseded
  std::uint64_t overflowed = 0;  // not tracked: open-set cap reached

  std::int64_t stage_sum_ps() const;
  double stage_mean_us(Stage stage) const;
  double end_to_end_mean_us() const;
};

/// Aligned text table of per-stage means; the end-to-end row is the exact
/// sum of the stage rows. Pass the independently measured latency (e.g.
/// NetPIPE's RTT/2) as `measured_us` to print a cross-check row; pass a
/// negative value to omit it.
std::string format_breakdown_table(const SpanBreakdown& b,
                                   double measured_us = -1.0);

/// Deterministic JSON rendering (fixed key order, integers for _ps totals,
/// shortest-round-trip doubles for the derived means).
std::string breakdown_json(const SpanBreakdown& b);

/// Follows individual data segments through the pipeline. Armed via the
/// set_span_profiler() fan-out on core::Testbed / core::Host; every model
/// hook is a no-op when the component's pointer is null.
class SpanProfiler {
 public:
  explicit SpanProfiler(double hist_max_us = 100.0,
                        std::size_t hist_buckets = 100,
                        std::size_t max_open = 4096);

  /// Opens a journey for `pkt` (the first frame carrying a tracked write).
  /// `write_call`/`write_done` bound the app-write stage, `emitted` is when
  /// the segment left the TCP layer (closing the sockbuf stage). Ineligible
  /// packets (non-TCP, empty payload, SYN/FIN) are ignored.
  void begin(const net::Packet& pkt, sim::SimTime write_call,
             sim::SimTime write_done, sim::SimTime emitted);

  /// Charges the interval since the previous mark to the stage the journey
  /// is leaving, then enters `stage` at `at`. Unknown packets are ignored
  /// (e.g. TSO sub-frames after the first, or journeys opened before a
  /// reset()).
  void mark(const net::Packet& pkt, Stage stage, sim::SimTime at);

  /// Abandons the journey for `pkt` (drop, retransmission supersedes it).
  void abort(const net::Packet& pkt);

  /// Closes every open journey on `flow` from `src` whose payload lies
  /// entirely below `consumed_upto` (the receiver's cumulative consumed
  /// sequence): charges the final app-read interval and folds the journey
  /// into the aggregates.
  void finish_consumed(net::FlowId flow, net::NodeId src, net::Seq
                       consumed_upto, sim::SimTime at);

  /// Drops all aggregates *and* open journeys; used at a bench warmup
  /// boundary so the breakdown covers exactly the measured iterations.
  void reset();

  SpanBreakdown breakdown() const;
  const sim::Histogram& stage_histogram(Stage stage) const;
  const sim::Histogram& end_to_end_histogram() const;
  std::size_t open_journeys() const { return open_.size(); }

 private:
  struct Key {
    net::FlowId flow = 0;
    net::NodeId src = 0;
    net::Seq seq = 0;  // first payload byte
    bool operator<(const Key& o) const {
      if (flow != o.flow) return flow < o.flow;
      if (src != o.src) return src < o.src;
      return seq < o.seq;
    }
  };
  struct Journey {
    std::array<std::int64_t, kStageCount> dur{};
    sim::SimTime begin_at = 0;  // app_send() call time
    sim::SimTime last_at = 0;
    Stage last_stage = Stage::kAppWrite;
    std::uint32_t len = 0;  // payload bytes
  };

  static bool eligible(const net::Packet& pkt);
  void finish(Journey& j, sim::SimTime at);

  // std::map: deterministic iteration for finish_consumed()'s range scan.
  std::map<Key, Journey> open_;
  std::array<std::int64_t, kStageCount> stage_total_ps_{};
  std::int64_t end_to_end_total_ps_ = 0;
  std::uint64_t journeys_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t overflowed_ = 0;
  std::vector<sim::Histogram> stage_hist_;
  sim::Histogram e2e_hist_;
  double hist_max_us_;
  std::size_t hist_buckets_;
  std::size_t max_open_;
};

/// Fixed-interval per-flow sampler of the TCP state variables the paper's
/// WAN analysis plots (cwnd evolution over the land-speed-record transfer).
///
/// The sampler lives above the TCP layer: core::Testbed registers a
/// read-only probe closure per connection (keeping obs free of a tcp
/// dependency). Arm it *before* opening connections; rows are appended in
/// (time, watch-registration) order, so output is deterministic.
class FlowSampler {
 public:
  struct Sample {
    std::uint32_t cwnd_segments = 0;
    std::uint32_t ssthresh_segments = 0;
    std::uint64_t flight_bytes = 0;
    std::uint64_t rwnd_bytes = 0;
    sim::SimTime srtt = 0;
    /// Algorithm-specific congestion state (CUBIC K in ms, DCTCP alpha in
    /// 1/1024 fixed point, 0 for Reno-family).
    std::int64_t cc_state = 0;
  };
  using Probe = std::function<Sample()>;

  struct Row {
    sim::SimTime at = 0;
    net::FlowId flow = 0;
    Sample sample;
  };

  explicit FlowSampler(sim::SimTime interval,
                       std::size_t max_samples = 65536);
  ~FlowSampler() { stop(); }
  FlowSampler(const FlowSampler&) = delete;
  FlowSampler& operator=(const FlowSampler&) = delete;

  /// Binds the sampler to a simulator clock (done by
  /// Testbed::set_flow_sampler). The first tick fires one interval later.
  void attach(sim::Simulator& sim);

  /// Registers a flow probe; sampled every interval from the next tick.
  void watch(net::FlowId flow, Probe probe);

  /// Cancels the pending tick. Call before draining the simulator if the
  /// run should end (the self-rearming timer otherwise keeps the event set
  /// non-empty until max_samples). Safe to call repeatedly.
  void stop();

  /// Stops, drops all probes and rows, and detaches from the simulator so
  /// the sampler can be re-armed against a fresh testbed.
  void reset();

  sim::SimTime interval() const { return interval_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// "at_ps,flow,cwnd_segments,ssthresh_segments,flight_bytes,srtt_us,
  /// rwnd_bytes,cc_state" header plus one line per row. Byte-identical
  /// across reruns.
  std::string to_csv() const;
  /// One JSON object per line, same fields as the CSV.
  std::string to_jsonl() const;

 private:
  void tick();
  void arm();

  sim::Simulator* sim_ = nullptr;
  sim::SimTime interval_;
  std::size_t max_samples_;
  std::vector<std::pair<net::FlowId, Probe>> probes_;
  std::vector<Row> rows_;
  sim::EventId timer_{};
  bool armed_ = false;
};

/// Deterministic JSON rendering of a sampler's series for the bench result
/// log: {"interval_ps":..,"columns":[..],"rows":[[..],..]}.
std::string series_json(const FlowSampler& sampler);

}  // namespace xgbe::obs

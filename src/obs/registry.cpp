#include "obs/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "obs/trace.hpp"

namespace xgbe::obs {

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan literals; clamp to a recognizable sentinel.
    if (std::isnan(v)) return "\"nan\"";
    return v > 0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_format(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Sample* Snapshot::find(std::string_view path) const {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), path,
      [](const Sample& s, std::string_view p) { return s.path < p; });
  if (it == samples.end() || it->path != path) return nullptr;
  return &*it;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":\"" + json_escape(s.path) + "\"";
    switch (s.kind) {
      case Kind::kCounter:
        append_format(out, ",\"kind\":\"counter\",\"value\":%llu",
                      static_cast<unsigned long long>(s.count));
        break;
      case Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + format_double(s.value);
        break;
      case Kind::kDistribution:
        append_format(out, ",\"kind\":\"distribution\",\"count\":%llu",
                      static_cast<unsigned long long>(s.count));
        out += ",\"mean\":" + format_double(s.value);
        out += ",\"min\":" + format_double(s.min);
        out += ",\"max\":" + format_double(s.max);
        out += ",\"stddev\":" + format_double(s.stddev);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "path,kind,value,count,min,max,stddev\n";
  for (const Sample& s : samples) {
    out += s.path;
    switch (s.kind) {
      case Kind::kCounter:
        append_format(out, ",counter,%llu,%llu,0,0,0\n",
                      static_cast<unsigned long long>(s.count),
                      static_cast<unsigned long long>(s.count));
        break;
      case Kind::kGauge:
        out += ",gauge," + format_double(s.value) + ",0,0,0,0\n";
        break;
      case Kind::kDistribution:
        out += ",distribution," + format_double(s.value) + ",";
        append_format(out, "%llu", static_cast<unsigned long long>(s.count));
        out += "," + format_double(s.min) + "," + format_double(s.max) +
               "," + format_double(s.stddev) + "\n";
        break;
    }
  }
  return out;
}

void Registry::counter(std::string path,
                       std::function<std::uint64_t()> probe) {
  Probe p;
  p.kind = Kind::kCounter;
  p.counter = std::move(probe);
  probes_[std::move(path)] = std::move(p);
}

void Registry::gauge(std::string path, std::function<double()> probe) {
  Probe p;
  p.kind = Kind::kGauge;
  p.gauge = std::move(probe);
  probes_[std::move(path)] = std::move(p);
}

void Registry::distribution(std::string path,
                            std::function<sim::OnlineStats()> probe) {
  Probe p;
  p.kind = Kind::kDistribution;
  p.distribution = std::move(probe);
  probes_[std::move(path)] = std::move(p);
}

Sample Registry::sample_probe(const std::string& path, const Probe& probe) {
  Sample s;
  s.path = path;
  s.kind = probe.kind;
  switch (probe.kind) {
    case Kind::kCounter:
      s.count = probe.counter();
      break;
    case Kind::kGauge:
      s.value = probe.gauge();
      break;
    case Kind::kDistribution: {
      const sim::OnlineStats stats = probe.distribution();
      s.count = stats.count();
      s.value = stats.mean();
      s.min = stats.min();
      s.max = stats.max();
      s.stddev = stats.stddev();
      break;
    }
  }
  return s;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.samples.reserve(probes_.size());
  for (const auto& [path, probe] : probes_) {
    snap.samples.push_back(sample_probe(path, probe));
  }
  return snap;
}

Snapshot Registry::snapshot_prefixes(
    const std::vector<std::string>& prefixes) const {
  if (prefixes.empty()) return snapshot();
  Snapshot snap;
  for (const auto& [path, probe] : probes_) {
    bool match = false;
    for (const std::string& prefix : prefixes) {
      if (path.compare(0, prefix.size(), prefix) == 0) {
        match = true;
        break;
      }
    }
    if (match) snap.samples.push_back(sample_probe(path, probe));
  }
  return snap;
}

}  // namespace xgbe::obs

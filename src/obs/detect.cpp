#include "obs/detect.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace xgbe::obs::detect {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<Episode> detect_increase(const std::vector<SeriesPoint>& points,
                                     const std::string& series,
                                     const std::string& cause,
                                     const DetectOptions& opt) {
  std::vector<Episode> out;
  Episode ep;
  bool open = false;
  int quiet = 0;
  sim::SimTime first_quiet = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t delta = points[i].value - points[i - 1].value;
    if (delta > 0) {
      if (!open) {
        ep = Episode{series, cause, points[i].at, 0, false, 0};
        open = true;
      }
      ep.severity += delta;
      quiet = 0;
    } else if (open) {
      if (quiet == 0) first_quiet = points[i].at;
      if (++quiet >= opt.clear_intervals) {
        ep.clear = first_quiet;
        ep.cleared = true;
        out.push_back(ep);
        open = false;
        quiet = 0;
      }
    }
  }
  if (open) out.push_back(ep);
  return out;
}

std::vector<Episode> detect_threshold(const std::vector<SeriesPoint>& points,
                                      const std::string& series,
                                      const std::string& cause,
                                      std::int64_t threshold) {
  std::vector<Episode> out;
  Episode ep;
  bool open = false;
  for (const SeriesPoint& p : points) {
    if (p.value >= threshold) {
      if (!open) {
        ep = Episode{series, cause, p.at, 0, false, p.value};
        open = true;
      }
      ep.severity = std::max(ep.severity, p.value);
    } else if (open) {
      ep.clear = p.at;
      ep.cleared = true;
      out.push_back(ep);
      open = false;
    }
  }
  if (open) out.push_back(ep);
  return out;
}

std::vector<Episode> detect_rate_collapse(
    const std::vector<SeriesPoint>& points, const std::string& series,
    const std::string& cause, const DetectOptions& opt) {
  std::vector<Episode> out;
  Episode ep;
  bool open = false;
  std::int64_t peak_delta = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t delta = points[i].value - points[i - 1].value;
    peak_delta = std::max(peak_delta, delta);
    const bool collapsed = peak_delta >= opt.rate_floor && delta * 4 <= peak_delta;
    if (collapsed) {
      if (!open) {
        ep = Episode{series, cause, points[i].at, 0, false, 0};
        open = true;
      }
      ++ep.severity;
    } else if (open) {
      ep.clear = points[i].at;
      ep.cleared = true;
      out.push_back(ep);
      open = false;
    }
  }
  if (open) out.push_back(ep);
  return out;
}

std::vector<Episode> run_detectors(const TimeSeriesStore& store,
                                   const DetectOptions& opt) {
  std::vector<Episode> out;
  for (const std::string& name : store.series_names()) {
    const std::vector<SeriesPoint> pts = store.points(name);
    if (pts.size() < 2) continue;
    std::vector<Episode> eps;
    if (ends_with(name, "/fault/flaps") ||
        ends_with(name, "/fault/drops_carrier")) {
      eps = detect_increase(pts, name, "carrier-flap", opt);
    } else if (ends_with(name, "/fault/drops_burst") ||
               ends_with(name, "/fault/drops_uniform") ||
               ends_with(name, "/fault/drops_forced") ||
               ends_with(name, "/fault/corruptions") ||
               ends_with(name, "/fault/drops_handshake") ||
               ends_with(name, "/fault/duplicates") ||
               ends_with(name, "/fault/reorders")) {
      eps = detect_increase(pts, name, "bad-cable", opt);
    } else if (ends_with(name, "/dropped_queue_full") &&
               name.rfind("switch/", 0) == 0) {
      // switch/<sw>/port/<egress>/dropped_queue_full — the egress link name
      // decides trunk congestion vs incast collapse, like the doctor.
      const std::size_t tail = name.rfind('/');
      const std::size_t head = name.rfind('/', tail - 1);
      const std::string egress = name.substr(head + 1, tail - head - 1);
      const bool trunk = egress.rfind("trunk-", 0) == 0;
      eps = detect_increase(pts, name,
                            trunk ? "congested-trunk" : "incast-collapse",
                            opt);
    } else if (ends_with(name, "/host_fault/dma_throttled")) {
      eps = detect_increase(pts, name, "host-dma-throttle", opt);
    } else if (ends_with(name, "/host_fault/alloc_fail_rx") ||
               ends_with(name, "/host_fault/alloc_fail_tx")) {
      eps = detect_increase(pts, name, "host-memory-pressure", opt);
    } else if (ends_with(name, "/host_fault/ring_stall_drops") ||
               ends_with(name, "/host_fault/tx_ring_stalls")) {
      eps = detect_increase(pts, name, "host-ring-stall", opt);
    } else if (ends_with(name, "/queued_bytes")) {
      std::int64_t peak = 0;
      for (const SeriesPoint& p : pts) peak = std::max(peak, p.value);
      if (peak >= opt.queue_floor && opt.queue_saturation_den > 0) {
        const std::int64_t threshold =
            peak * opt.queue_saturation_num / opt.queue_saturation_den;
        eps = detect_threshold(pts, name, "queue-saturation", threshold);
      }
    } else if (name.find("srtt") != std::string::npos &&
               store.unit(name) == "milli") {
      std::int64_t baseline = 0;
      for (const SeriesPoint& p : pts) {
        if (p.value > 0) {
          baseline = p.value;
          break;
        }
      }
      if (baseline > 0) {
        eps = detect_threshold(pts, name, "srtt-inflation",
                               baseline * opt.inflation_factor + 1);
      }
    } else if (ends_with(name, "/frames_delivered") &&
               name.rfind("link/", 0) == 0) {
      eps = detect_rate_collapse(pts, name, "rate-collapse", opt);
    }
    out.insert(out.end(), eps.begin(), eps.end());
  }
  // series_names() is sorted and per-series episodes are chronological, so
  // the list is already (series, onset)-ordered; keep the sort as the
  // stated contract anyway.
  std::sort(out.begin(), out.end(), [](const Episode& a, const Episode& b) {
    if (a.series != b.series) return a.series < b.series;
    if (a.onset != b.onset) return a.onset < b.onset;
    return a.cause < b.cause;
  });
  return out;
}

std::string episodes_json(const std::vector<Episode>& episodes) {
  std::string out = "[";
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const Episode& e = episodes[i];
    if (i != 0) out += ',';
    out += "{\"series\":\"" + json_escape(e.series) + "\",\"cause\":\"" +
           json_escape(e.cause) + "\"";
    append_format(out,
                  ",\"onset_ps\":%lld,\"clear_ps\":%lld,\"cleared\":%s,"
                  "\"severity\":%lld}",
                  static_cast<long long>(e.onset),
                  static_cast<long long>(e.clear),
                  e.cleared ? "true" : "false",
                  static_cast<long long>(e.severity));
  }
  out += ']';
  return out;
}

}  // namespace xgbe::obs::detect

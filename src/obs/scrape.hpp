// Time-resolved telemetry: fixed-cadence metric scraping into a bounded
// columnar time-series store.
//
// The paper's diagnosis method is time-resolved — tcpdump traces taken
// *while* a transfer runs, not one end-of-run counter dump — and the obs
// layer so far only supports terminal Registry snapshots. MetricScraper
// closes the gap: armed via core::Testbed it samples a configurable subset
// of Registry probes at a fixed sim-time cadence through the sim::TimeHook
// boundary interface, which fires *between* events. The scraper schedules
// nothing, draws no randomness, and mutates no simulation state, so an
// armed run is bit-identical to an unarmed one — executed-event count
// included — in classic mode and under ShardedEngine at any shard/thread
// count (barriers are partition-invariant, so scrape boundaries and the
// observed values are too).
//
// TimeSeriesStore keeps one delta-encoded i64 column per probe path: the
// first point is stored absolute, every later point as (dt, dv) against its
// predecessor. A ring bound (`max_points`) folds the oldest delta into the
// base on overflow, so memory stays bounded on arbitrarily long runs while
// the retained tail decodes exactly. All exports (CSV, JSONL, series_json)
// are byte-identical across reruns.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace xgbe::obs {

/// One decoded sample: the scrape boundary it was taken at plus the mapped
/// integer value (see MetricScraper for the unit mapping).
struct SeriesPoint {
  sim::SimTime at = 0;
  std::int64_t value = 0;
};

/// Bounded columnar store of integer time series, keyed by series name
/// (registry path). Append order per series must be time-monotone (the
/// scraper's cadence guarantees it).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t max_points = 4096);

  /// Appends one point; evicts the series' oldest point first when the ring
  /// bound is reached. `unit` labels the series on first touch ("count" for
  /// counters/distributions, "milli" for gauges).
  void append(const std::string& series, sim::SimTime at, std::int64_t value,
              const char* unit = "count");

  std::size_t max_points() const { return max_points_; }
  std::size_t series_count() const { return series_.size(); }
  std::uint64_t total_points() const;
  /// Sorted (map order) series names.
  std::vector<std::string> series_names() const;
  /// Decoded points of one series, oldest first (empty when unknown).
  std::vector<SeriesPoint> points(const std::string& series) const;
  /// Points dropped off the ring's old end for one series.
  std::uint64_t evicted(const std::string& series) const;
  const std::string& unit(const std::string& series) const;

  void clear();

  /// "series,unit,at_ps,value" header plus one row per point, series in
  /// path order. Byte-identical across reruns.
  std::string to_csv() const;
  /// One JSON object per line, same fields as the CSV.
  std::string to_jsonl() const;
  /// Compact per-series JSON for the bench result log:
  /// {"series":[{"path":..,"unit":..,"evicted":N,"points":[[at_ps,v],..]},..]}
  std::string series_json() const;
  /// FNV-1a over to_csv() — the determinism criterion for gates.
  std::uint64_t fingerprint() const;

 private:
  struct Series {
    std::string unit;
    sim::SimTime base_at = 0;
    std::int64_t base_value = 0;
    bool any = false;
    // (dt, dv) against the previous point; prefix sums decode exactly.
    std::deque<std::pair<sim::SimTime, std::int64_t>> deltas;
    // Decoded newest point, cached so appends stay O(1).
    sim::SimTime last_at = 0;
    std::int64_t last_value = 0;
    std::uint64_t evicted = 0;
  };

  std::size_t max_points_;
  // std::map: iteration (and with it every export) is sorted by path.
  std::map<std::string, Series> series_;
};

struct ScrapeOptions {
  /// Sim-time between scrapes (boundaries at period, 2*period, ...).
  sim::SimTime period = sim::msec(1);
  /// Ring bound per series.
  std::size_t max_points = 4096;
  /// Probe-path prefixes to sample; empty samples every registered probe.
  /// Non-matching probes are never evaluated.
  std::vector<std::string> prefixes;
};

/// Samples a Registry at a fixed cadence into a TimeSeriesStore. Value
/// mapping keeps everything integer: counters record their count,
/// distributions their sample count, and gauges llround(value * 1000)
/// ("milli" units — e.g. srtt_us gauges become integer nanoseconds).
///
/// Arm via Testbed::set_metric_scraper() (classic: between-event firing;
/// sharded: lookahead-barrier firing — samples observe the first barrier at
/// or after each boundary, timestamped with the nominal boundary). The
/// registry and scraper must outlive the armed run or be disarmed first.
class MetricScraper : public sim::TimeHook {
 public:
  explicit MetricScraper(const Registry& registry, ScrapeOptions options = {});

  // sim::TimeHook
  sim::SimTime due() const override { return due_; }
  void advance(sim::SimTime at) override;

  const ScrapeOptions& options() const { return opt_; }
  std::uint64_t scrapes() const { return scrapes_; }
  TimeSeriesStore& store() { return store_; }
  const TimeSeriesStore& store() const { return store_; }

  /// Full scrape JSON for the bench result log:
  /// {"period_ps":N,"scrapes":N,"series":[...]}.
  std::string scrape_json() const;

 private:
  const Registry& registry_;
  ScrapeOptions opt_;
  TimeSeriesStore store_;
  sim::SimTime due_;
  std::uint64_t scrapes_ = 0;
};

}  // namespace xgbe::obs

// Metrics registry: one place to read every counter in the testbed.
//
// The registry is pull-based: components register named probes (closures
// over their existing counters) and pay nothing on the hot path — a probe
// runs only when snapshot() is called. Paths are hierarchical slash-joined
// names ("tx/tcp/flow1/retransmits", "link/tx<->rx/drops_queue"); a
// snapshot is sorted by path, so two identically-seeded runs render
// byte-identical JSON/CSV.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace xgbe::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kDistribution };

/// One sampled metric. Counters fill `count`; gauges fill `value`;
/// distributions fill `count` (n) plus value (mean) / min / max / stddev.
struct Sample {
  std::string path;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// A point-in-time reading of every registered probe, sorted by path.
struct Snapshot {
  std::vector<Sample> samples;

  /// Binary search by exact path; null if absent.
  const Sample* find(std::string_view path) const;

  /// Deterministic renderings: no wall-clock timestamps, doubles via
  /// shortest-round-trip formatting, fixed key order.
  std::string to_json() const;
  std::string to_csv() const;
};

class Registry {
 public:
  /// Registers a monotonic counter probe. Re-registering a path replaces
  /// the previous probe (components re-register after reconfiguration).
  void counter(std::string path, std::function<std::uint64_t()> probe);
  /// Registers an instantaneous-value probe.
  void gauge(std::string path, std::function<double()> probe);
  /// Registers a distribution probe (summary statistics of a sample set).
  void distribution(std::string path, std::function<sim::OnlineStats()> probe);

  std::size_t size() const { return probes_.size(); }
  Snapshot snapshot() const;

  /// Samples only probes whose path starts with one of `prefixes` (every
  /// probe when the list is empty). Non-matching probes are never invoked —
  /// a scraper restricted to live subsystems cannot trip over stale
  /// closures elsewhere. Sorted by path like snapshot().
  Snapshot snapshot_prefixes(const std::vector<std::string>& prefixes) const;

 private:
  struct Probe;
  static Sample sample_probe(const std::string& path, const Probe& probe);
  struct Probe {
    Kind kind = Kind::kCounter;
    std::function<std::uint64_t()> counter;
    std::function<double()> gauge;
    std::function<sim::OnlineStats()> distribution;
  };
  // std::map: iteration (and therefore snapshot order) is sorted by path.
  std::map<std::string, Probe> probes_;
};

/// Shortest-round-trip decimal rendering of a double ("0.25", "1e-05");
/// deterministic across runs, exact on read-back. Shared by the snapshot
/// exporters and the bench JSON writer.
std::string format_double(double v);

/// Minimal JSON string escaping for paths/labels.
std::string json_escape(std::string_view s);

}  // namespace xgbe::obs

#include "obs/scrape.hpp"

#include <cassert>
#include <cmath>

#include "obs/trace.hpp"

namespace xgbe::obs {

TimeSeriesStore::TimeSeriesStore(std::size_t max_points)
    : max_points_(max_points < 1 ? 1 : max_points) {}

void TimeSeriesStore::append(const std::string& series, sim::SimTime at,
                             std::int64_t value, const char* unit) {
  Series& s = series_[series];
  if (!s.any) {
    s.unit = unit;
    s.base_at = at;
    s.base_value = value;
    s.last_at = at;
    s.last_value = value;
    s.any = true;
    return;
  }
  if (max_points_ == 1) {
    s.base_at = at;
    s.base_value = value;
    s.last_at = at;
    s.last_value = value;
    ++s.evicted;
    return;
  }
  if (s.deltas.size() + 1 >= max_points_) {
    // Ring full: fold the oldest delta into the base. The retained tail
    // still decodes exactly; only the evicted head is forgotten.
    s.base_at += s.deltas.front().first;
    s.base_value += s.deltas.front().second;
    s.deltas.pop_front();
    ++s.evicted;
  }
  assert(at >= s.last_at && "time-series appends must be time-monotone");
  s.deltas.emplace_back(at - s.last_at, value - s.last_value);
  s.last_at = at;
  s.last_value = value;
}

std::uint64_t TimeSeriesStore::total_points() const {
  std::uint64_t total = 0;
  for (const auto& [name, s] : series_) {
    total += s.any ? 1 + s.deltas.size() : 0;
  }
  return total;
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

std::vector<SeriesPoint> TimeSeriesStore::points(
    const std::string& series) const {
  std::vector<SeriesPoint> out;
  const auto it = series_.find(series);
  if (it == series_.end() || !it->second.any) return out;
  const Series& s = it->second;
  out.reserve(1 + s.deltas.size());
  SeriesPoint p{s.base_at, s.base_value};
  out.push_back(p);
  for (const auto& [dt, dv] : s.deltas) {
    p.at += dt;
    p.value += dv;
    out.push_back(p);
  }
  return out;
}

std::uint64_t TimeSeriesStore::evicted(const std::string& series) const {
  const auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.evicted;
}

const std::string& TimeSeriesStore::unit(const std::string& series) const {
  static const std::string kEmpty;
  const auto it = series_.find(series);
  return it == series_.end() ? kEmpty : it->second.unit;
}

void TimeSeriesStore::clear() { series_.clear(); }

std::string TimeSeriesStore::to_csv() const {
  std::string out = "series,unit,at_ps,value\n";
  for (const auto& [name, s] : series_) {
    for (const SeriesPoint& p : points(name)) {
      out += name;
      out += ',';
      out += s.unit;
      append_format(out, ",%lld,%lld\n", static_cast<long long>(p.at),
                    static_cast<long long>(p.value));
    }
  }
  return out;
}

std::string TimeSeriesStore::to_jsonl() const {
  std::string out;
  for (const auto& [name, s] : series_) {
    for (const SeriesPoint& p : points(name)) {
      out += "{\"series\":\"" + json_escape(name) + "\",\"unit\":\"" +
             json_escape(s.unit) + "\"";
      append_format(out, ",\"at_ps\":%lld,\"value\":%lld}\n",
                    static_cast<long long>(p.at),
                    static_cast<long long>(p.value));
    }
  }
  return out;
}

std::string TimeSeriesStore::series_json() const {
  std::string out = "{\"series\":[";
  bool first_series = true;
  for (const auto& [name, s] : series_) {
    if (!first_series) out += ',';
    first_series = false;
    out += "{\"path\":\"" + json_escape(name) + "\",\"unit\":\"" +
           json_escape(s.unit) + "\"";
    append_format(out, ",\"evicted\":%llu,\"points\":[",
                  static_cast<unsigned long long>(s.evicted));
    bool first_point = true;
    for (const SeriesPoint& p : points(name)) {
      if (!first_point) out += ',';
      first_point = false;
      append_format(out, "[%lld,%lld]", static_cast<long long>(p.at),
                    static_cast<long long>(p.value));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::uint64_t TimeSeriesStore::fingerprint() const {
  // FNV-1a, same constants as Fabric::fingerprint.
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : to_csv()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

MetricScraper::MetricScraper(const Registry& registry, ScrapeOptions options)
    : registry_(registry), opt_(std::move(options)), store_(opt_.max_points) {
  if (opt_.period < 1) opt_.period = 1;
  due_ = opt_.period;
}

void MetricScraper::advance(sim::SimTime at) {
  const Snapshot snap = registry_.snapshot_prefixes(opt_.prefixes);
  for (const Sample& s : snap.samples) {
    switch (s.kind) {
      case Kind::kCounter:
      case Kind::kDistribution:
        store_.append(s.path, at, static_cast<std::int64_t>(s.count), "count");
        break;
      case Kind::kGauge:
        store_.append(s.path, at, std::llround(s.value * 1000.0), "milli");
        break;
    }
  }
  ++scrapes_;
  due_ = at + opt_.period;
}

std::string MetricScraper::scrape_json() const {
  std::string out;
  append_format(out, "{\"period_ps\":%lld,\"scrapes\":%llu,",
                static_cast<long long>(opt_.period),
                static_cast<unsigned long long>(scrapes_));
  const std::string series = store_.series_json();
  // series_json() is {"series":[...]}; splice its body into this object.
  out += series.substr(1, series.size() - 2);
  out += '}';
  return out;
}

}  // namespace xgbe::obs

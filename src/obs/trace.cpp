#include "obs/trace.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <tuple>

#include "sim/watchdog.hpp"

namespace xgbe::obs {

const char* event_name(EventType type) {
  switch (type) {
    case EventType::kWireTx: return "wire-tx";
    case EventType::kWireDrop: return "wire-drop";
    case EventType::kSegTx: return "seg-tx";
    case EventType::kSegRx: return "seg-rx";
    case EventType::kSegDrop: return "seg-drop";
    case EventType::kRto: return "rto";
    case EventType::kFastRetransmit: return "fast-retx";
    case EventType::kWindowUpdate: return "window-update";
    case EventType::kRingStall: return "ring-stall";
    case EventType::kRingRefill: return "ring-refill";
    case EventType::kFault: return "fault";
    case EventType::kRst: return "rst";
    case EventType::kListenDrop: return "listen-drop";
  }
  return "?";
}

void append_format(std::string& out, const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n < 0) return;  // encoding error: append nothing rather than garbage
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  // Truncated: re-run into a buffer of the exact required size.
  std::string big(static_cast<std::size_t>(n), '\0');
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size() + 1, fmt, args);
  va_end(args);
  out += big;
}

TraceEvent packet_event(EventType type, sim::SimTime at,
                        const net::Packet& pkt, const char* where,
                        const char* detail) {
  TraceEvent ev;
  ev.at = at;
  ev.type = type;
  ev.proto = static_cast<std::uint8_t>(pkt.protocol);
  ev.src = pkt.src;
  ev.dst = pkt.dst;
  ev.flow = pkt.flow;
  ev.seq = pkt.tcp.seq;
  ev.ack = pkt.tcp.ack;
  ev.len = pkt.payload_bytes;
  ev.wire_len = pkt.frame_bytes;
  ev.window = pkt.tcp.window;
  ev.mss = pkt.tcp.mss_option;
  ev.where = where;
  ev.detail = detail;
  if (pkt.tcp.flags.syn) ev.flags |= kFlagSyn;
  if (pkt.tcp.flags.fin) ev.flags |= kFlagFin;
  if (pkt.tcp.flags.ack) ev.flags |= kFlagAck;
  if (pkt.tcp.flags.rst) ev.flags |= kFlagRst;
  if (pkt.tcp.push) ev.flags |= kFlagPush;
  if (pkt.tcp.is_retransmit) ev.flags |= kFlagRetransmit;
  if (pkt.corrupted) ev.flags |= kFlagCorrupt;
  if (pkt.tcp.timestamps) ev.flags |= kFlagTimestamps;
  if (pkt.tcp.wscale_present) ev.flags |= kFlagWscale;
  return ev;
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceSink::record(const TraceEvent& ev) {
  ++offered_;
  if (filter && !filter(ev)) return;
  ++recorded_;
  ring_[next_] = ev;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  if (stream_ != nullptr) *stream_ << to_jsonl(ev) << '\n';
  if (on_record) on_record(ev);
}

const TraceEvent& TraceSink::event(std::size_t i) const {
  // Oldest retained event sits at next_ once the ring has wrapped.
  const std::size_t start = size_ < ring_.size() ? 0 : next_;
  return ring_[(start + i) % ring_.size()];
}

std::vector<TraceEvent> TraceSink::tail(std::size_t n) const {
  const std::size_t take = n < size_ ? n : size_;
  std::vector<TraceEvent> out;
  out.reserve(take);
  for (std::size_t i = size_ - take; i < size_; ++i) out.push_back(event(i));
  return out;
}

void TraceSink::clear() {
  next_ = 0;
  size_ = 0;
}

std::string format_event(const TraceEvent& ev) {
  std::string out;
  append_format(out, "[%.6f] %s", sim::to_seconds(ev.at),
                event_name(ev.type));
  if (ev.where != nullptr && *ev.where != '\0') {
    append_format(out, " @%s", ev.where);
  }
  if (ev.src != net::kInvalidNode || ev.dst != net::kInvalidNode) {
    append_format(out, " %u>%u", ev.src, ev.dst);
  }
  if (ev.flow != 0) append_format(out, " flow%u", ev.flow);
  if (ev.flags != 0) {
    std::string f;
    if (ev.flags & kFlagSyn) f += 'S';
    if (ev.flags & kFlagFin) f += 'F';
    if (ev.flags & kFlagRst) f += 'R';
    if (ev.flags & kFlagAck) f += '.';
    if (ev.flags & kFlagPush) f += 'P';
    if (ev.flags & kFlagRetransmit) f += 'r';
    if (ev.flags & kFlagCorrupt) f += 'C';
    if (!f.empty()) append_format(out, " [%s]", f.c_str());
  }
  append_format(out, " seq=%u", ev.seq);
  if (ev.flags & kFlagAck) append_format(out, " ack=%u", ev.ack);
  if (ev.len != 0) append_format(out, " len=%u", ev.len);
  if (ev.window != 0) append_format(out, " win=%u", ev.window);
  if (ev.mss != 0) append_format(out, " mss=%u", ev.mss);
  if (ev.detail != nullptr && *ev.detail != '\0') {
    append_format(out, " (%s)", ev.detail);
  }
  return out;
}

std::string format_tail(const TraceSink& sink, std::size_t n) {
  const std::vector<TraceEvent> events = sink.tail(n);
  if (events.empty()) return "";
  std::string out = "last " + std::to_string(events.size()) + " events: ";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += " | ";
    out += format_event(events[i]);
  }
  return out;
}

std::string to_jsonl(const TraceEvent& ev) {
  std::string out;
  append_format(out, "{\"at_ps\":%lld,\"type\":\"%s\"",
                static_cast<long long>(ev.at), event_name(ev.type));
  append_format(out, ",\"src\":%u,\"dst\":%u,\"flow\":%u", ev.src, ev.dst,
                ev.flow);
  append_format(out, ",\"seq\":%u,\"ack\":%u,\"len\":%u,\"win\":%u", ev.seq,
                ev.ack, ev.len, ev.window);
  if (ev.mss != 0) append_format(out, ",\"mss\":%u", ev.mss);
  if (ev.flags != 0) append_format(out, ",\"flags\":%u", ev.flags);
  if (ev.where != nullptr && *ev.where != '\0') {
    append_format(out, ",\"where\":\"%s\"", ev.where);
  }
  if (ev.detail != nullptr && *ev.detail != '\0') {
    append_format(out, ",\"detail\":\"%s\"", ev.detail);
  }
  out += '}';
  return out;
}

void attach_flight_recorder(sim::Watchdog& dog, const TraceSink& sink,
                            std::size_t events) {
  dog.add_context("flight-recorder", [&sink, events]() {
    return format_tail(sink, events);
  });
}

namespace {

/// Total order over every deterministic field, so the merged sequence does
/// not depend on which sink an event came from. Ties across all fields are
/// genuinely identical events; their relative order is irrelevant.
bool event_less(const TraceEvent& a, const TraceEvent& b) {
  auto key = [](const TraceEvent& e) {
    return std::tie(e.at, e.src, e.dst, e.flow, e.seq, e.ack, e.len,
                    e.wire_len, e.window, e.flags, e.mss, e.proto);
  };
  if (key(a) != key(b)) return key(a) < key(b);
  if (a.type != b.type) return a.type < b.type;
  const int w = std::strcmp(a.where, b.where);
  if (w != 0) return w < 0;
  return std::strcmp(a.detail, b.detail) < 0;
}

void fnv1a(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
}

}  // namespace

std::vector<TraceEvent> merge_sorted(
    const std::vector<const TraceSink*>& sinks) {
  std::vector<TraceEvent> merged;
  for (const TraceSink* sink : sinks) {
    if (sink == nullptr) continue;
    for (std::size_t i = 0; i < sink->size(); ++i) {
      merged.push_back(sink->event(i));
    }
  }
  std::stable_sort(merged.begin(), merged.end(), event_less);
  return merged;
}

std::uint64_t fingerprint(const std::vector<TraceEvent>& events) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const TraceEvent& ev : events) {
    auto mix = [&h](auto v) { fnv1a(h, &v, sizeof(v)); };
    mix(ev.at);
    mix(static_cast<std::uint8_t>(ev.type));
    mix(ev.proto);
    mix(ev.flags);
    mix(ev.src);
    mix(ev.dst);
    mix(ev.flow);
    mix(ev.seq);
    mix(ev.ack);
    mix(ev.len);
    mix(ev.wire_len);
    mix(ev.window);
    mix(ev.mss);
    fnv1a(h, ev.where, std::strlen(ev.where));
    fnv1a(h, ev.detail, std::strlen(ev.detail));
  }
  return h;
}

}  // namespace xgbe::obs

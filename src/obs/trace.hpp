// Typed event trace: the observability layer's timeline.
//
// A TraceSink is a ring-buffer flight recorder (plus an optional full JSONL
// stream) fed from the same choke points tcpdump and MAGNET already tap:
// segment tx/rx/drop, RTO and fast retransmit, window updates, descriptor-
// ring stalls and refills, and fault-injection decisions. Components hold a
// plain `obs::TraceSink*` that defaults to null; every emission site is
// gated on that pointer, consumes no randomness, and schedules no events,
// so an unarmed trace leaves the simulation bit-identical to a build with
// no trace at all.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {
class Watchdog;
}

namespace xgbe::obs {

enum class EventType : std::uint8_t {
  kWireTx,          // frame began serialization onto a link
  kWireDrop,        // frame lost on the path (queue tail drop, fault, ...)
  kSegTx,           // TCP segment handed to the kernel TX path
  kSegRx,           // TCP segment accepted by the receiver
  kSegDrop,         // segment discarded in a host (ring, csum, sockbuf, ...)
  kRto,             // retransmission timeout fired
  kFastRetransmit,  // third duplicate ACK triggered fast retransmit
  kWindowUpdate,    // receiver sent a window-update ACK
  kRingStall,       // descriptor ring stopped being replenished / posted
  kRingRefill,      // deferred ring slots caught up
  kFault,           // fault injector made a non-drop decision worth noting
  kRst,             // RST segment generated (abort, refusal, stray segment)
  kListenDrop       // listener refused a SYN (queue or backlog overflow)
};

/// Short stable name ("seg-tx", "ring-stall", ...) for formatting.
const char* event_name(EventType type);

// TraceEvent::flags bits (TCP header flags plus trace annotations).
inline constexpr std::uint16_t kFlagSyn = 1u << 0;
inline constexpr std::uint16_t kFlagFin = 1u << 1;
inline constexpr std::uint16_t kFlagAck = 1u << 2;
inline constexpr std::uint16_t kFlagPush = 1u << 3;
inline constexpr std::uint16_t kFlagRetransmit = 1u << 4;
inline constexpr std::uint16_t kFlagCorrupt = 1u << 5;
inline constexpr std::uint16_t kFlagTimestamps = 1u << 6;
inline constexpr std::uint16_t kFlagWscale = 1u << 7;
inline constexpr std::uint16_t kFlagRst = 1u << 8;

/// One trace record. Plain value, fixed size, no allocation: cheap enough
/// to emit on packet paths when a sink is armed. `where` and `detail` must
/// point at storage that outlives the sink's use of the event (string
/// literals, or a component's own name buffer).
struct TraceEvent {
  sim::SimTime at = 0;
  EventType type = EventType::kWireTx;
  std::uint8_t proto = 0;  // static_cast of net::Protocol
  std::uint16_t flags = 0;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  net::FlowId flow = 0;
  net::Seq seq = 0;
  net::Seq ack = 0;
  std::uint32_t len = 0;       // payload bytes (or a count for ring events)
  std::uint32_t wire_len = 0;  // full frame bytes on the wire
  std::uint32_t window = 0;
  std::uint16_t mss = 0;          // SYN option (0 = absent)
  const char* where = "";         // reporting component
  const char* detail = "";        // cause / annotation
};

/// Builds a TraceEvent from a packet's metadata (flags, seq/ack, window,
/// SYN options), stamped `at`.
TraceEvent packet_event(EventType type, sim::SimTime at,
                        const net::Packet& pkt, const char* where = "",
                        const char* detail = "");

/// printf-append with the snprintf return value honoured: the output string
/// always receives the complete formatted text, falling back to a heap
/// buffer when the stack buffer would truncate.
void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Ring-buffer flight recorder. Single-threaded, like the simulation that
/// feeds it: one sink belongs to one simulator.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1024);

  /// Only record events matching this predicate (null = everything).
  std::function<bool(const TraceEvent&)> filter;
  /// Invoked after an event is stored (tools::Capture formats lines here).
  std::function<void(const TraceEvent&)> on_record;

  void record(const TraceEvent& ev);
  void record_packet(EventType type, sim::SimTime at, const net::Packet& pkt,
                     const char* where = "", const char* detail = "") {
    record(packet_event(type, at, pkt, where, detail));
  }

  /// Events offered to the sink (before the filter).
  std::uint64_t offered() const { return offered_; }
  /// Events stored (after the filter); may exceed capacity() — older
  /// entries were overwritten.
  std::uint64_t recorded() const { return recorded_; }
  /// Events currently retained in the ring.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// i = 0 is the oldest retained event.
  const TraceEvent& event(std::size_t i) const;
  /// Up to the last `n` events, oldest first.
  std::vector<TraceEvent> tail(std::size_t n) const;
  void clear();

  /// Streams every recorded event as one JSON line (null disables). The
  /// stream sees events after the filter, like the ring.
  void stream_to(std::ostream* os) { stream_ = os; }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t recorded_ = 0;
  std::ostream* stream_ = nullptr;
};

/// Compact one-line rendering, e.g.
///   "[0.001234] seg-tx 1>2 flow1 seq=100021 len=8948 ack=200025 win=62636"
std::string format_event(const TraceEvent& ev);

/// The last `n` events, formatted and joined with " | " (empty string for
/// an empty sink). This is what a watchdog autopsy appends.
std::string format_tail(const TraceSink& sink, std::size_t n);

/// One event as a JSON object (single line, no trailing newline).
std::string to_jsonl(const TraceEvent& ev);

/// Registers the sink's tail as a watchdog trip context: the autopsy line
/// gains "flight-recorder: <last n events>". The sink must outlive the
/// watchdog. Lives here (not in sim) so sim keeps zero obs dependencies.
void attach_flight_recorder(sim::Watchdog& dog, const TraceSink& sink,
                            std::size_t events = 8);

/// Merges per-shard sinks into one partition-invariant timeline. Events are
/// stably sorted by (timestamp, then every payload field): two runs of the
/// same workload on different shard counts produce the same merged vector
/// even though each records into a different set of sinks. Only the retained
/// ring contents merge — size the sinks to hold the whole run when the
/// merged view must be complete.
std::vector<TraceEvent> merge_sorted(
    const std::vector<const TraceSink*>& sinks);

/// FNV-1a over the merged events' deterministic fields (`where`/`detail`
/// pointers are hashed by content, not address). Equal fingerprints ⇔
/// equal timelines, which is how the determinism suite compares shard
/// counts without storing golden traces.
std::uint64_t fingerprint(const std::vector<TraceEvent>& events);

}  // namespace xgbe::obs

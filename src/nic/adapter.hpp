// Network adapter model (Intel PRO/10GbE LR and e1000-class GbE).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/host_fault.hpp"
#include "hw/memory.hpp"
#include "hw/pcix.hpp"
#include "link/device.hpp"
#include "link/link.hpp"
#include "sim/random.hpp"
#include "net/packet.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace xgbe::obs {
class Registry;
class SpanProfiler;
class TraceSink;
}

namespace xgbe::nic {

struct AdapterSpec {
  std::string model = "Intel PRO/10GbE LR";
  double line_rate_bps = 10e9;
  std::uint32_t max_mtu = 16000;  // largest MTU the 82597EX supports
  bool csum_offload = true;       // TCP/IP checksum offload (§2)
  bool tso_capable = true;        // TCP segmentation offload ("Large Send")
  std::uint32_t tx_ring = 4096;
  std::uint32_t rx_ring = 4096;
  /// Interrupt coalescing delay: time the adapter waits after a receive
  /// before raising the interrupt, batching packets (§3.3.2). 0 disables.
  sim::SimTime intr_delay = sim::usec(5);
  /// Packets per interrupt cap; a full batch raises the interrupt early.
  std::uint32_t max_coalesce = 64;
  /// On-board transmit FIFO; DMA stalls when serialization falls behind.
  std::uint32_t tx_fifo_bytes = 512 * 1024;
  /// Probability that a received frame is damaged on the PCI/memory path
  /// after the adapter verified its checksum (bus errors, marginal
  /// hardware, heat — §3.5.3). Host-side software checksums catch these;
  /// adapter-offloaded checksums cannot.
  double rx_corruption_rate = 0.0;
  std::uint64_t corruption_seed = 0xc0de;
  /// Communication Streaming Architecture (§3.5.3): the adapter hangs off
  /// the memory controller hub instead of the PCI-X bus, so frame transfers
  /// move at memory speed with no I/O-bus transaction overhead.
  bool on_mch = false;
};

/// The 10GbE server adapter the paper studies.
AdapterSpec intel_pro10gbe();
/// Commodity GbE adapter for the multi-flow fan-in clients.
AdapterSpec intel_e1000();

/// Adapter runtime: owns its dedicated PCI-X bus segment, DMAs frames
/// between host memory and the wire, and coalesces receive interrupts.
class Adapter : public link::NetDevice {
 public:
  /// `rx_handler` is the kernel's interrupt entry: it receives the batch of
  /// frames already placed in host memory. The batch is a pooled handle so
  /// interrupt delivery recycles vectors instead of allocating them.
  using RxHandler = std::function<void(net::PacketBatch)>;

  Adapter(sim::Simulator& simulator, const AdapterSpec& spec,
          const hw::PcixSpec& bus, const hw::MemorySpec& mem,
          std::uint32_t mmrbc, sim::Resource& membus, std::string name);

  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  /// Wires the adapter to a link side.
  void connect(link::Link* wire, bool side_a);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  /// Driver entry point: DMA the frame from host memory and serialize it.
  /// Honors TSO (tcp.tso_mss != 0 splits the payload into MSS-sized wire
  /// frames after a single DMA).
  void transmit(net::Packet pkt);

  /// Frame fully arrived from the wire (link::NetDevice).
  void deliver(const net::Packet& pkt) override;

  /// Reconfigures the interrupt coalescing delay (ethtool -C rx-usecs).
  void set_intr_delay(sim::SimTime delay) { spec_.intr_delay = delay; }
  /// Reconfigures the PCI-X MMRBC register (setpci).
  void set_mmrbc(std::uint32_t mmrbc);

  const AdapterSpec& spec() const { return spec_; }
  std::uint32_t mmrbc() const { return mmrbc_; }
  sim::Resource& pci_bus() { return pci_; }

  /// Frames waiting for DMA (driver queue depth); pktgen throttles on this.
  std::size_t tx_backlog() const { return tx_queue_.size(); }

  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t rx_dropped_ring() const { return rx_dropped_ring_; }
  std::uint64_t interrupts_raised() const { return interrupts_; }

  /// Faults applied to frames arriving from the wire, before the receive
  /// ring: a flaky MAC/PHY losing, damaging, or stuttering frames. The
  /// legacy rx_corruption_rate knob is independent and stays bit-identical.
  void set_rx_fault_plan(const fault::FaultPlan& plan) {
    rx_fault_.set_plan(plan);
  }
  fault::FaultInjector& rx_fault_injector() { return rx_fault_; }
  const fault::FaultCounters& rx_fault_counters() const {
    return rx_fault_.counters();
  }

  /// Arms (or clears) the host-path fault injector shared with the host's
  /// kernel. The adapter consults it for descriptor-ring stalls, missed /
  /// storming interrupts, and PCI-X DMA throttling; null or inactive means
  /// zero behavioral change.
  void set_host_faults(fault::HostFaultInjector* injector) {
    host_faults_ = injector;
  }

  // --- Observability --------------------------------------------------------
  /// Arms the trace sink: ring-full drops emit kSegDrop ("rx-ring-full"),
  /// replenish stalls emit kRingStall/kRingRefill. `node` identifies this
  /// adapter's host in the events.
  void set_trace(obs::TraceSink* sink, net::NodeId node) {
    trace_ = sink;
    trace_node_ = node;
  }

  /// Registers frame/interrupt counters and the rx fault tally under
  /// `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix) const;

  /// Arms the span profiler: stamps tx-dma start, rx-ring arrival, RX DMA
  /// completion, and interrupt delivery. Null disarms (zero perturbation).
  void set_span_profiler(obs::SpanProfiler* spans) { spans_ = spans; }

 private:
  void receive_frame(const net::Packet& arrived);
  void dma_next_tx();
  void emit_wire_frames(const net::Packet& pkt);
  void try_raise_interrupt();
  void raise_interrupt();
  bool host_faults_active() const {
    return host_faults_ != nullptr && host_faults_->active();
  }
  /// Extra PCI-X service time while a DMA-throttle window is open, and the
  /// MMRBC clamp it imposes (identity outside a window).
  std::uint32_t effective_mmrbc_now();
  sim::SimTime dma_freeze_now();
  void arm_tx_stall_recovery();
  void arm_rx_replenish_recovery();
  void arm_irq_recovery_poll();

  sim::Simulator& sim_;
  AdapterSpec spec_;
  std::string name_;
  hw::PcixSpec bus_spec_;
  hw::MemorySpec mem_spec_;
  std::uint32_t mmrbc_;
  sim::Resource pci_;
  sim::Resource& membus_;
  link::Link* wire_ = nullptr;
  bool side_a_ = true;
  sim::Rng corruption_rng_;
  fault::FaultInjector rx_fault_;
  fault::HostFaultInjector* host_faults_ = nullptr;
  RxHandler rx_handler_;

  std::deque<net::Packet> tx_queue_;  // awaiting DMA
  bool tx_dma_active_ = false;
  std::uint32_t tx_fifo_used_ = 0;

  // DMA completion records and interrupt batches are pool-recycled: a
  // Packet capture overflows InlineCallback's 48-byte inline buffer, so
  // without the pools every frame and every interrupt would heap-allocate.
  sim::Pool<net::Packet> dma_rec_pool_;
  net::PacketBatchPool batch_pool_;
  net::PacketBatch rx_batch_;  // DMA'd, awaiting interrupt (may be empty)
  sim::EventId rx_timer_{};
  bool rx_timer_armed_ = false;
  std::uint32_t rx_ring_used_ = 0;

  // Host-fault bookkeeping: ring slots consumed but not replenished during
  // an rx-ring stall, and the one-shot recovery events that undo each fault.
  std::uint32_t rx_ring_unreplenished_ = 0;
  bool rx_replenish_armed_ = false;
  bool tx_stall_recovery_armed_ = false;
  bool irq_poll_armed_ = false;

  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t rx_dropped_ring_ = 0;
  std::uint64_t interrupts_ = 0;

  obs::TraceSink* trace_ = nullptr;
  net::NodeId trace_node_ = net::kInvalidNode;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace xgbe::nic

#include "nic/adapter.hpp"

#include "hw/memory.hpp"
#include "net/headers.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace xgbe::nic {

AdapterSpec intel_pro10gbe() { return AdapterSpec{}; }

AdapterSpec intel_e1000() {
  AdapterSpec s;
  s.model = "Intel PRO/1000 (e1000)";
  s.line_rate_bps = 1e9;
  s.max_mtu = 9000;  // jumbo-capable GbE (Intel e1000 / Tigon3 class)
  s.tx_ring = 256;
  s.rx_ring = 256;
  s.intr_delay = sim::usec(20);
  s.max_coalesce = 32;
  s.tx_fifo_bytes = 64 * 1024;
  return s;
}

Adapter::Adapter(sim::Simulator& simulator, const AdapterSpec& spec,
                 const hw::PcixSpec& bus, const hw::MemorySpec& mem,
                 std::uint32_t mmrbc, sim::Resource& membus, std::string name)
    : sim_(simulator),
      spec_(spec),
      name_(std::move(name)),
      bus_spec_(bus),
      mem_spec_(mem),
      mmrbc_(mmrbc),
      pci_(simulator, name_ + "/pcix"),
      membus_(membus),
      corruption_rng_(spec.corruption_seed) {}

namespace {

obs::TraceEvent ring_event(obs::EventType type, sim::SimTime at,
                           net::NodeId node, std::uint32_t slots,
                           const char* where, const char* detail) {
  obs::TraceEvent ev;
  ev.at = at;
  ev.type = type;
  ev.src = node;
  ev.len = slots;
  ev.where = where;
  ev.detail = detail;
  return ev;
}

}  // namespace

void Adapter::connect(link::Link* wire, bool side_a) {
  wire_ = wire;
  side_a_ = side_a;
  if (side_a) {
    wire->attach_a(this);
  } else {
    wire->attach_b(this);
  }
}

void Adapter::set_mmrbc(std::uint32_t mmrbc) {
  if (hw::is_valid_mmrbc(mmrbc)) mmrbc_ = mmrbc;
}

void Adapter::transmit(net::Packet pkt) {
  if (pkt.trace.enabled) pkt.trace.t_nic = sim_.now();
  tx_queue_.push_back(std::move(pkt));
  if (!tx_dma_active_) dma_next_tx();
}

void Adapter::dma_next_tx() {
  if (tx_queue_.empty()) {
    tx_dma_active_ = false;
    return;
  }
  // Host fault: no transmit descriptors are being posted — DMA pauses and
  // the driver queue grows until the stall window ends.
  if (host_faults_active() && host_faults_->tx_ring_stalled(sim_.now())) {
    tx_dma_active_ = false;
    host_faults_->count_tx_stall();
    if (trace_) {
      trace_->record(ring_event(
          obs::EventType::kRingStall, sim_.now(), trace_node_,
          static_cast<std::uint32_t>(tx_queue_.size()), name_.c_str(),
          "tx-ring"));
    }
    arm_tx_stall_recovery();
    return;
  }
  // Stall DMA while the on-board FIFO is full (wire slower than the bus).
  if (tx_fifo_used_ + tx_queue_.front().frame_bytes > spec_.tx_fifo_bytes) {
    tx_dma_active_ = false;
    return;
  }
  tx_dma_active_ = true;
  net::Packet pkt = tx_queue_.front();
  tx_queue_.pop_front();
  // Descriptor posted and the DMA engine picked it up: tx-ring ends here.
  if (spans_) spans_->mark(pkt, obs::Stage::kTxDma, sim_.now());

  const sim::SimTime bus_time =
      (spec_.on_mch
           ? hw::bus_time(mem_spec_, pkt.frame_bytes, 1) + sim::nsec(150)
           : hw::dma_read_service_time(bus_spec_, pkt.frame_bytes,
                                       effective_mmrbc_now())) +
      dma_freeze_now();
  // The DMA read traverses host memory once; account the contention.
  membus_.submit(hw::bus_time(mem_spec_, pkt.frame_bytes, 1));
  // The completion closes over the whole Packet, which would overflow the
  // inline callback buffer; park it in a pooled record instead.
  auto rec = dma_rec_pool_.acquire();
  *rec = std::move(pkt);
  pci_.submit(bus_time, [this, rec]() {
    if (rec->trace.enabled) rec->trace.t_dma_done = sim_.now();
    tx_fifo_used_ += rec->frame_bytes;
    emit_wire_frames(*rec);
    dma_next_tx();
  });
}

void Adapter::emit_wire_frames(const net::Packet& pkt) {
  if (wire_ == nullptr) return;
  auto send_one = [this](const net::Packet& frame) {
    ++tx_frames_;
    wire_->transmit(this, frame, [this, bytes = frame.frame_bytes]() {
      tx_fifo_used_ = tx_fifo_used_ > bytes ? tx_fifo_used_ - bytes : 0;
      if (!tx_dma_active_) dma_next_tx();
    });
  };

  if (pkt.tcp.tso_mss == 0 || pkt.payload_bytes <= pkt.tcp.tso_mss) {
    send_one(pkt);
    return;
  }
  // TSO: re-segment the super-segment into wire frames; headers are
  // replicated per frame by the adapter.
  std::uint32_t offset = 0;
  while (offset < pkt.payload_bytes) {
    const std::uint32_t chunk =
        std::min(pkt.tcp.tso_mss, pkt.payload_bytes - offset);
    net::Packet frame = pkt;
    frame.tcp.tso_mss = 0;
    frame.tcp.seq = pkt.tcp.seq + offset;
    frame.payload_bytes = chunk;
    frame.frame_bytes = net::tcp_frame_bytes(chunk, pkt.tcp.timestamps);
    frame.tcp.push = pkt.tcp.push && (offset + chunk == pkt.payload_bytes);
    send_one(frame);
    offset += chunk;
  }
}

void Adapter::deliver(const net::Packet& arrived) {
  if (!rx_fault_.active()) {
    receive_frame(arrived);
    return;
  }
  const fault::FaultDecision verdict = rx_fault_.decide(arrived, sim_.now());
  if (verdict.drop) return;
  net::Packet frame = arrived;
  if (verdict.corrupt) frame.corrupted = true;
  if (verdict.duplicate) {
    sim_.schedule(verdict.extra_delay + verdict.duplicate_delay,
                  [this, frame]() { receive_frame(frame); });
  }
  if (verdict.extra_delay > 0) {
    sim_.schedule(verdict.extra_delay,
                  [this, frame]() { receive_frame(frame); });
    return;
  }
  receive_frame(frame);
}

void Adapter::receive_frame(const net::Packet& arrived) {
  if (rx_ring_used_ >= spec_.rx_ring) {
    ++rx_dropped_ring_;
    // Attribute the drop when a replenish stall (not plain overload) is
    // what kept the ring full.
    if (host_faults_active() && rx_ring_unreplenished_ > 0) {
      host_faults_->count_ring_stall_drop();
    }
    if (trace_) {
      trace_->record_packet(obs::EventType::kSegDrop, sim_.now(), arrived,
                            name_.c_str(), "rx-ring-full");
    }
    if (spans_) spans_->abort(arrived);
    return;
  }
  ++rx_ring_used_;
  net::Packet pkt = arrived;
  // Last bit off the wire, frame in a ring buffer: wire stage ends here.
  if (spans_) spans_->mark(pkt, obs::Stage::kRxRing, sim_.now());
  if (pkt.trace.enabled) pkt.trace.t_rx_arrive = sim_.now();
  const sim::SimTime bus_time =
      (spec_.on_mch
           ? hw::bus_time(mem_spec_, pkt.frame_bytes, 1) + sim::nsec(100)
           : hw::dma_write_service_time(bus_spec_, pkt.frame_bytes)) +
      dma_freeze_now();
  // The DMA write traverses host memory once.
  membus_.submit(hw::bus_time(mem_spec_, pkt.frame_bytes, 1));
  auto rec = dma_rec_pool_.acquire();
  *rec = pkt;
  pci_.submit(bus_time, [this, rec]() {
    if (rec->trace.enabled) rec->trace.t_rx_dma = sim_.now();
    // RX DMA write landed in host memory; the interrupt hold-off begins.
    if (spans_) spans_->mark(*rec, obs::Stage::kIntrCoalesce, sim_.now());
    if (spec_.rx_corruption_rate > 0.0 && rec->payload_bytes > 0 &&
        corruption_rng_.chance(spec_.rx_corruption_rate)) {
      rec->corrupted = true;  // damaged after the adapter's checksum check
    }
    ++rx_frames_;
    if (!rx_batch_) {
      rx_batch_ = batch_pool_.acquire();
      rx_batch_->clear();  // recycled vectors keep capacity, not contents
    }
    rx_batch_->push_back(std::move(*rec));
    // An irq-storm window forces coalescing off: one interrupt per frame.
    const bool storm =
        host_faults_active() && host_faults_->irq_storm(sim_.now());
    if (spec_.intr_delay == 0 || storm ||
        rx_batch_->size() >= spec_.max_coalesce) {
      if (rx_timer_armed_) {
        sim_.cancel(rx_timer_);
        rx_timer_armed_ = false;
      }
      try_raise_interrupt();
    } else if (!rx_timer_armed_) {
      rx_timer_armed_ = true;
      rx_timer_ = sim_.schedule(spec_.intr_delay, [this]() {
        rx_timer_armed_ = false;
        try_raise_interrupt();
      });
    }
  });
}

void Adapter::try_raise_interrupt() {
  if (!rx_batch_ || rx_batch_->empty()) return;
  if (host_faults_active()) {
    if (host_faults_->interrupt_missed(sim_.now())) {
      // The IRQ line never asserts; DMA'd frames sit in host memory until
      // the next interrupt raises the batch or the recovery poll fires.
      arm_irq_recovery_poll();
      return;
    }
    if (host_faults_->irq_storm(sim_.now())) {
      host_faults_->count_storm_interrupt();
    }
  }
  raise_interrupt();
}

void Adapter::raise_interrupt() {
  if (!rx_batch_ || rx_batch_->empty()) return;
  ++interrupts_;
  // The driver refills the ring as it pulls the batch in the ISR — unless a
  // replenish stall is in force, in which case the consumed slots stay
  // consumed until the window ends.
  const auto batch_slots = static_cast<std::uint32_t>(rx_batch_->size());
  if (host_faults_active() && host_faults_->rx_ring_stalled(sim_.now())) {
    rx_ring_unreplenished_ += batch_slots;
    if (trace_) {
      trace_->record(ring_event(obs::EventType::kRingStall, sim_.now(),
                                trace_node_, batch_slots, name_.c_str(),
                                "rx-ring"));
    }
    arm_rx_replenish_recovery();
  } else {
    rx_ring_used_ -= batch_slots;
  }
  net::PacketBatch batch = std::move(rx_batch_);
  for (net::Packet& p : *batch) {
    if (p.trace.enabled) p.trace.t_irq = sim_.now();
    // Interrupt asserted: hold-off ends, the kernel rx path starts.
    if (spans_) spans_->mark(p, obs::Stage::kRxStack, sim_.now());
  }
  if (rx_handler_) rx_handler_(std::move(batch));
}

std::uint32_t Adapter::effective_mmrbc_now() {
  if (host_faults_active() && host_faults_->dma_throttled(sim_.now())) {
    const std::uint32_t clamp = host_faults_->plan().dma_mmrbc;
    if (hw::is_valid_mmrbc(clamp) && clamp < mmrbc_) return clamp;
  }
  return mmrbc_;
}

sim::SimTime Adapter::dma_freeze_now() {
  if (host_faults_active() && host_faults_->dma_throttled(sim_.now())) {
    host_faults_->count_dma_throttled();
    return host_faults_->plan().dma_freeze;
  }
  return 0;
}

void Adapter::arm_tx_stall_recovery() {
  if (tx_stall_recovery_armed_) return;
  const sim::SimTime end = host_faults_->tx_stall_end(sim_.now());
  if (end <= sim_.now()) return;
  tx_stall_recovery_armed_ = true;
  sim_.schedule(end - sim_.now(), [this]() {
    tx_stall_recovery_armed_ = false;
    if (!tx_dma_active_) dma_next_tx();
  });
}

void Adapter::arm_rx_replenish_recovery() {
  if (rx_replenish_armed_) return;
  const sim::SimTime end = host_faults_->rx_stall_end(sim_.now());
  if (end <= sim_.now()) return;
  rx_replenish_armed_ = true;
  sim_.schedule(end - sim_.now(), [this]() {
    rx_replenish_armed_ = false;
    // The driver's refill path catches up on every deferred slot at once.
    const std::uint32_t refilled =
        std::min(rx_ring_used_, rx_ring_unreplenished_);
    rx_ring_used_ -= refilled;
    rx_ring_unreplenished_ = 0;
    if (trace_) {
      trace_->record(ring_event(obs::EventType::kRingRefill, sim_.now(),
                                trace_node_, refilled, name_.c_str(),
                                "rx-ring"));
    }
  });
}

void Adapter::register_metrics(obs::Registry& reg,
                               const std::string& prefix) const {
  reg.counter(prefix + "/tx_frames", [this] { return tx_frames_; });
  reg.counter(prefix + "/rx_frames", [this] { return rx_frames_; });
  reg.counter(prefix + "/rx_dropped_ring",
              [this] { return rx_dropped_ring_; });
  reg.counter(prefix + "/interrupts", [this] { return interrupts_; });
  fault::register_metrics(reg, prefix + "/rx_fault", rx_fault_);
}

void Adapter::arm_irq_recovery_poll() {
  if (irq_poll_armed_) return;
  irq_poll_armed_ = true;
  sim_.schedule(host_faults_->plan().irq_recovery_poll, [this]() {
    irq_poll_armed_ = false;
    if (rx_batch_ && !rx_batch_->empty()) {
      host_faults_->count_irq_recovered();
      raise_interrupt();
    }
  });
}

}  // namespace xgbe::nic

#!/usr/bin/env python3
"""Diff two bench --json result logs and fail on regressions.

Compares the per-point counters of `current` against `baseline` (points are
matched by name). Any counter whose value moved by more than the tolerance —
or any baseline point/counter missing from `current` — is a regression and
the script exits 1. Points or counters that exist only in `current` are
reported but allowed: the schema grows additively.

The simulator is deterministic, so the default tolerances are tight
(rel 1e-6, abs 1e-9): a "diff" here means the model changed, not that the
measurement was noisy. Loosen the tolerances when diffing across intentional
model changes to see the magnitude of every shift.

Time-resolved telemetry (schema xgbe-bench/3) is diffed structurally, not
point-by-point: scrape entries are matched by label, and a matched entry
must agree on series count, total point count, and a canonical-JSON
fingerprint of the series data and the detector episodes. Entries that
exist only in `current` are allowed (an unarmed golden stays valid when the
current run is armed); entries the baseline has but `current` lost are
regressions. The tolerance flags do not apply — the series are integer
samples of a deterministic run, so any drift is a model change.

Stdlib-only so CI can run it on a bare python3.

Usage:
  bench_diff.py baseline.json current.json [--rel-tol R] [--abs-tol A]
  bench_diff.py --self-test

Exit codes: 0 = no regression, 1 = regression / missing data,
2 = usage or I/O error.
"""

import argparse
import hashlib
import json
import sys

SENTINELS = {"nan", "inf", "-inf"}


def _load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def _points_by_name(doc):
    points = {}
    for point in doc.get("points", []):
        if isinstance(point, dict) and isinstance(point.get("name"), str):
            points[point["name"]] = point.get("counters", {})
    return points


def _scrapes_by_label(doc):
    entries = {}
    for entry in doc.get("scrapes", []):
        if isinstance(entry, dict) and isinstance(entry.get("label"), str):
            entries[entry["label"]] = entry
    return entries


def _fingerprint(obj):
    """Canonical-JSON digest: stable across key order and whitespace."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _scrape_shape(entry):
    """(series count, total point count) of one scrapes[] entry."""
    scrape = entry.get("scrape")
    series = scrape.get("series", []) if isinstance(scrape, dict) else []
    points = sum(
        len(s.get("points", [])) for s in series if isinstance(s, dict))
    return len(series), points


def diff_scrapes(baseline, current, out=sys.stdout):
    """Structural scrape diff; returns the number of regressions."""
    base = _scrapes_by_label(baseline)
    cur = _scrapes_by_label(current)
    regressions = 0

    for label in sorted(base):
        if label not in cur:
            print(f"MISSING scrape {label!r} (present in baseline)", file=out)
            regressions += 1
            continue
        base_series, base_points = _scrape_shape(base[label])
        cur_series, cur_points = _scrape_shape(cur[label])
        if base_series != cur_series:
            print(f"DIFF scrape {label}: series {base_series} -> {cur_series}",
                  file=out)
            regressions += 1
        if base_points != cur_points:
            print(f"DIFF scrape {label}: points {base_points} -> {cur_points}",
                  file=out)
            regressions += 1
        for part in ("scrape", "episodes"):
            base_fp = _fingerprint(base[label].get(part))
            cur_fp = _fingerprint(cur[label].get(part))
            if base_fp != cur_fp:
                print(f"DIFF scrape {label}: {part} fingerprint "
                      f"{base_fp} -> {cur_fp}", file=out)
                regressions += 1

    for label in sorted(set(cur) - set(base)):
        print(f"NEW scrape {label}", file=out)
    return regressions


def _differs(base, cur, rel_tol, abs_tol):
    """True when the two counter values are meaningfully different."""
    if isinstance(base, str) or isinstance(cur, str):
        # nan/inf sentinels: only an exact sentinel match is equal.
        return base != cur
    return abs(cur - base) > abs_tol + rel_tol * abs(base)


def diff(baseline, current, rel_tol, abs_tol, out=sys.stdout):
    """Returns the number of regressions; prints one line per finding."""
    base_points = _points_by_name(baseline)
    cur_points = _points_by_name(current)
    regressions = 0

    for name in sorted(base_points):
        if name not in cur_points:
            print(f"MISSING point {name!r} (present in baseline)", file=out)
            regressions += 1
            continue
        base_counters = base_points[name]
        cur_counters = cur_points[name]
        for key in sorted(base_counters):
            if key not in cur_counters:
                print(f"MISSING counter {name!r}:{key!r}", file=out)
                regressions += 1
                continue
            base_value = base_counters[key]
            cur_value = cur_counters[key]
            if _differs(base_value, cur_value, rel_tol, abs_tol):
                if isinstance(base_value, str) or isinstance(cur_value, str):
                    detail = f"{base_value!r} -> {cur_value!r}"
                else:
                    delta = cur_value - base_value
                    pct = (100.0 * delta / base_value) if base_value else float("inf")
                    detail = f"{base_value:g} -> {cur_value:g} ({delta:+g}, {pct:+.4g}%)"
                print(f"DIFF {name}:{key}: {detail}", file=out)
                regressions += 1
        for key in sorted(set(cur_counters) - set(base_counters)):
            print(f"NEW counter {name}:{key} = {cur_counters[key]}", file=out)

    for name in sorted(set(cur_points) - set(base_points)):
        print(f"NEW point {name}", file=out)

    regressions += diff_scrapes(baseline, current, out=out)
    return regressions


def self_test():
    """Exercises the matcher without touching the filesystem."""
    baseline = {
        "schema": "xgbe-bench/2",
        "binary": "fig6",
        "points": [
            {"name": "a", "counters": {"latency_us": 18.2087, "rtt_us": 36.4174}},
            {"name": "b", "counters": {"gbps": 2.37, "special": "nan"}},
        ],
    }
    import copy
    import io

    identical = copy.deepcopy(baseline)
    assert diff(baseline, identical, 1e-6, 1e-9, out=io.StringIO()) == 0, \
        "identical logs must not diff"

    perturbed = copy.deepcopy(baseline)
    perturbed["points"][0]["counters"]["latency_us"] *= 1.5
    assert diff(baseline, perturbed, 1e-6, 1e-9, out=io.StringIO()) == 1, \
        "a 50% latency regression must be caught"
    assert diff(baseline, perturbed, 0.6, 1e-9, out=io.StringIO()) == 0, \
        "a loose rel-tol must absorb it"

    missing = copy.deepcopy(baseline)
    del missing["points"][1]
    assert diff(baseline, missing, 1e-6, 1e-9, out=io.StringIO()) == 1, \
        "a dropped point must be caught"

    dropped_counter = copy.deepcopy(baseline)
    del dropped_counter["points"][0]["counters"]["rtt_us"]
    assert diff(baseline, dropped_counter, 1e-6, 1e-9, out=io.StringIO()) == 1, \
        "a dropped counter must be caught"

    sentinel = copy.deepcopy(baseline)
    sentinel["points"][1]["counters"]["special"] = "inf"
    assert diff(baseline, sentinel, 1e-6, 1e-9, out=io.StringIO()) == 1, \
        "a sentinel flip must be caught"

    additive = copy.deepcopy(baseline)
    additive["points"][0]["counters"]["new_metric"] = 1.0
    additive["points"].append({"name": "c", "counters": {"x": 1}})
    assert diff(baseline, additive, 1e-6, 1e-9, out=io.StringIO()) == 0, \
        "additive growth must be allowed"

    # --- structural scrape diff (schema xgbe-bench/3) ---------------------
    scraped = copy.deepcopy(baseline)
    scraped["schema"] = "xgbe-bench/3"
    scraped["scrapes"] = [{
        "label": "a",
        "scrape": {
            "period_ps": 1000000, "scrapes": 3,
            "series": [{
                "path": "switch/tor0/dropped_queue_full", "unit": "count",
                "evicted": 0,
                "points": [[1000000, 0], [2000000, 4], [3000000, 9]],
            }],
        },
        "episodes": [{
            "series": "switch/tor0/dropped_queue_full",
            "cause": "incast-collapse", "onset_ps": 2000000,
            "clear_ps": 0, "cleared": False, "severity": 9,
        }],
    }]

    same_scrape = copy.deepcopy(scraped)
    assert diff(scraped, same_scrape, 1e-6, 1e-9, out=io.StringIO()) == 0, \
        "identical scrapes must not diff"

    armed_only_current = copy.deepcopy(baseline)
    assert diff(armed_only_current, scraped, 1e-6, 1e-9,
                out=io.StringIO()) == 0, \
        "a scrape that exists only in current must be allowed"
    assert diff(scraped, armed_only_current, 1e-6, 1e-9,
                out=io.StringIO()) == 1, \
        "a scrape the baseline has but current lost must be caught"

    mutated_point = copy.deepcopy(scraped)
    mutated_point["scrapes"][0]["scrape"]["series"][0]["points"][2][1] = 10
    assert diff(scraped, mutated_point, 1e-6, 1e-9, out=io.StringIO()) == 1, \
        "a mutated sample must be caught by the fingerprint"

    dropped_point = copy.deepcopy(scraped)
    del dropped_point["scrapes"][0]["scrape"]["series"][0]["points"][2]
    assert diff(scraped, dropped_point, 1e-6, 1e-9, out=io.StringIO()) == 2, \
        "a dropped sample must be caught by point count and fingerprint"

    mutated_episode = copy.deepcopy(scraped)
    mutated_episode["scrapes"][0]["episodes"][0]["onset_ps"] = 3000000
    assert diff(scraped, mutated_episode, 1e-6, 1e-9,
                out=io.StringIO()) == 1, \
        "a shifted episode onset must be caught"

    extra_series = copy.deepcopy(scraped)
    extra_series["scrapes"][0]["scrape"]["series"].append({
        "path": "switch/tor1/dropped_queue_full", "unit": "count",
        "evicted": 0, "points": [[1000000, 0]],
    })
    assert diff(scraped, extra_series, 1e-6, 1e-9, out=io.StringIO()) == 3, \
        "an extra series must be caught (series, points, fingerprint)"

    print("bench_diff.py self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline result log")
    parser.add_argument("current", nargs="?", help="current result log")
    parser.add_argument("--rel-tol", type=float, default=1e-6)
    parser.add_argument("--abs-tol", type=float, default=1e-9)
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in behaviour checks and exit")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable input: {exc}", file=sys.stderr)
        return 2
    regressions = diff(baseline, current, args.rel_tol, args.abs_tol)
    npoints = len(_points_by_name(baseline))
    nscrapes = len(_scrapes_by_label(baseline))
    if regressions == 0:
        print(f"OK: {npoints} baseline points matched within tolerance, "
              f"{nscrapes} scrapes matched structurally")
        return 0
    print(f"FAIL: {regressions} regression(s) against {npoints} baseline points",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

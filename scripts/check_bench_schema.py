#!/usr/bin/env python3
"""Validate a bench --json result log against the xgbe-bench contract.

Accepts all schema versions: "xgbe-bench/1" (points + snapshots),
"xgbe-bench/2", which adds span-profiler stage breakdowns and flow-sampler
time series, and "xgbe-bench/3", which adds metric-scraper captures
(per-series integer points plus detector episodes) under "scrapes". For v2+
the validator also enforces the telescoping-ledger invariant: every
breakdown's stage total_ps values must sum *exactly* to its end_to_end
total_ps. For v3 it checks every scrape series' points are time-monotone
integer pairs and every episode carries a coherent (onset, clear) window.

Stdlib-only (no jsonschema dependency): this script hand-implements the
checks that bench/results.schema.json documents, so CI can run it on a
bare python3. Exits non-zero with one line per violation.

Usage: check_bench_schema.py result.json [result2.json ...]
"""

import json
import sys

NUMERIC_SENTINELS = {"nan", "inf", "-inf"}
METRIC_KINDS = {"counter", "gauge", "distribution"}
SCHEMAS = {"xgbe-bench/1", "xgbe-bench/2", "xgbe-bench/3"}
SCRAPE_UNITS = {"count", "milli"}
STAGES = ["app-write", "sockbuf", "tx-ring", "tx-dma", "wire", "switch-queue",
          "rx-ring", "intr-coalesce", "rx-stack", "app-read"]
SERIES_COLUMNS = ["at_ps", "flow", "cwnd_segments", "ssthresh_segments",
                  "flight_bytes", "srtt_us", "rwnd_bytes", "cc_state"]
# meta["cc"] appears only for non-default runs (--cc / XGBE_CC); when
# present it must name a known congestion-control algorithm.
CC_ALGORITHMS = {"newreno", "cubic", "dctcp"}


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        if not (isinstance(value, str) and value in NUMERIC_SENTINELS):
            _err(errors, path, f"expected number or nan/inf sentinel, got {value!r}")


def _check_metric(errors, path, metric):
    if not isinstance(metric, dict):
        _err(errors, path, "metric must be an object")
        return
    mpath = metric.get("path")
    if not isinstance(mpath, str) or not mpath:
        _err(errors, path, "missing non-empty 'path'")
    kind = metric.get("kind")
    if kind not in METRIC_KINDS:
        _err(errors, path, f"bad kind {kind!r}")
        return
    if kind == "counter":
        if not isinstance(metric.get("value"), int) or isinstance(metric.get("value"), bool):
            _err(errors, path, "counter 'value' must be an integer")
    elif kind == "gauge":
        _check_number(errors, path + ".value", metric.get("value"))
    else:  # distribution
        if not isinstance(metric.get("count"), int):
            _err(errors, path, "distribution 'count' must be an integer")
        for key in ("mean", "min", "max", "stddev"):
            _check_number(errors, f"{path}.{key}", metric.get(key))


def _check_nonneg_int(errors, path, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        _err(errors, path, f"expected non-negative integer, got {value!r}")


def _check_breakdown(errors, where, entry):
    if not isinstance(entry, dict):
        _err(errors, where, "must be an object")
        return
    if not isinstance(entry.get("label"), str) or not entry.get("label"):
        _err(errors, where, "missing non-empty 'label'")
    b = entry.get("breakdown")
    if not isinstance(b, dict):
        _err(errors, where, "missing 'breakdown' object")
        return
    for key in ("journeys", "opened", "aborted", "overflowed"):
        _check_nonneg_int(errors, f"{where}.{key}", b.get(key))
    e2e = b.get("end_to_end")
    if not isinstance(e2e, dict):
        _err(errors, where, "missing 'end_to_end' object")
        return
    _check_nonneg_int(errors, f"{where}.end_to_end.total_ps", e2e.get("total_ps"))
    _check_number(errors, f"{where}.end_to_end.mean_us", e2e.get("mean_us"))
    stages = b.get("stages")
    if not isinstance(stages, list):
        _err(errors, where, "missing 'stages' array")
        return
    names = [s.get("stage") for s in stages if isinstance(s, dict)]
    if names != STAGES:
        _err(errors, f"{where}.stages",
             f"stages must be exactly {STAGES} in order, got {names}")
        return
    total = 0
    for j, s in enumerate(stages):
        _check_nonneg_int(errors, f"{where}.stages[{j}].total_ps", s.get("total_ps"))
        _check_number(errors, f"{where}.stages[{j}].mean_us", s.get("mean_us"))
        if isinstance(s.get("total_ps"), int):
            total += s["total_ps"]
    if isinstance(e2e.get("total_ps"), int) and total != e2e["total_ps"]:
        _err(errors, where,
             f"stage conservation violated: sum(stages.total_ps)={total} != "
             f"end_to_end.total_ps={e2e['total_ps']}")


def _check_series(errors, where, entry):
    if not isinstance(entry, dict):
        _err(errors, where, "must be an object")
        return
    if not isinstance(entry.get("label"), str) or not entry.get("label"):
        _err(errors, where, "missing non-empty 'label'")
    series = entry.get("series")
    if not isinstance(series, dict):
        _err(errors, where, "missing 'series' object")
        return
    interval = series.get("interval_ps")
    if not isinstance(interval, int) or isinstance(interval, bool) or interval < 1:
        _err(errors, f"{where}.series.interval_ps", "must be a positive integer")
    if series.get("columns") != SERIES_COLUMNS:
        _err(errors, f"{where}.series.columns",
             f"must be exactly {SERIES_COLUMNS}")
    rows = series.get("rows")
    if not isinstance(rows, list):
        _err(errors, f"{where}.series.rows", "must be an array")
        return
    for j, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(SERIES_COLUMNS):
            _err(errors, f"{where}.series.rows[{j}]",
                 f"must be an array of {len(SERIES_COLUMNS)} numbers")
            continue
        for k, value in enumerate(row):
            _check_number(errors, f"{where}.series.rows[{j}][{k}]", value)


def _check_scrape(errors, where, entry):
    if not isinstance(entry, dict):
        _err(errors, where, "must be an object")
        return
    if not isinstance(entry.get("label"), str) or not entry.get("label"):
        _err(errors, where, "missing non-empty 'label'")
    scrape = entry.get("scrape")
    if not isinstance(scrape, dict):
        _err(errors, where, "missing 'scrape' object")
        return
    period = scrape.get("period_ps")
    if not isinstance(period, int) or isinstance(period, bool) or period < 1:
        _err(errors, f"{where}.scrape.period_ps", "must be a positive integer")
    _check_nonneg_int(errors, f"{where}.scrape.scrapes", scrape.get("scrapes"))
    series = scrape.get("series")
    if not isinstance(series, list):
        _err(errors, f"{where}.scrape.series", "must be an array")
        return
    paths = [s.get("path") for s in series if isinstance(s, dict)]
    if paths != sorted(paths):
        _err(errors, f"{where}.scrape.series",
             "paths must be sorted (determinism contract)")
    for j, s in enumerate(series):
        swhere = f"{where}.scrape.series[{j}]"
        if not isinstance(s, dict):
            _err(errors, swhere, "must be an object")
            continue
        if not isinstance(s.get("path"), str) or not s.get("path"):
            _err(errors, swhere, "missing non-empty 'path'")
        if s.get("unit") not in SCRAPE_UNITS:
            _err(errors, f"{swhere}.unit",
                 f"expected one of {sorted(SCRAPE_UNITS)}, got {s.get('unit')!r}")
        _check_nonneg_int(errors, f"{swhere}.evicted", s.get("evicted"))
        points = s.get("points")
        if not isinstance(points, list):
            _err(errors, swhere, "missing 'points' array")
            continue
        prev_at = None
        for k, p in enumerate(points):
            if (not isinstance(p, list) or len(p) != 2
                    or any(isinstance(v, bool) or not isinstance(v, int)
                           for v in p)):
                _err(errors, f"{swhere}.points[{k}]",
                     "must be an [at_ps, value] integer pair")
                continue
            if prev_at is not None and p[0] < prev_at:
                _err(errors, f"{swhere}.points[{k}]",
                     "at_ps must be non-decreasing")
            prev_at = p[0]
    episodes = entry.get("episodes")
    if not isinstance(episodes, list):
        _err(errors, where, "missing 'episodes' array")
        return
    for j, e in enumerate(episodes):
        ewhere = f"{where}.episodes[{j}]"
        if not isinstance(e, dict):
            _err(errors, ewhere, "must be an object")
            continue
        for key in ("series", "cause"):
            if not isinstance(e.get(key), str) or not e.get(key):
                _err(errors, ewhere, f"missing non-empty {key!r}")
        _check_nonneg_int(errors, f"{ewhere}.onset_ps", e.get("onset_ps"))
        _check_nonneg_int(errors, f"{ewhere}.clear_ps", e.get("clear_ps"))
        if not isinstance(e.get("cleared"), bool):
            _err(errors, f"{ewhere}.cleared", "must be a boolean")
        if not isinstance(e.get("severity"), int) or isinstance(e.get("severity"), bool):
            _err(errors, f"{ewhere}.severity", "must be an integer")
        if (e.get("cleared") is True and isinstance(e.get("onset_ps"), int)
                and isinstance(e.get("clear_ps"), int)
                and e["clear_ps"] < e["onset_ps"]):
            _err(errors, ewhere, "cleared episode must have clear_ps >= onset_ps")


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        _err(errors, "schema",
             f"expected one of {sorted(SCHEMAS)}, got {schema!r}")
    if not isinstance(doc.get("binary"), str) or not doc.get("binary"):
        _err(errors, "binary", "must be a non-empty string")

    # Optional run-environment facts (e.g. XGBE_SHARD_THREADS). Emitted only
    # when the run recorded at least one, so its absence is fine.
    meta = doc.get("meta")
    if meta is not None:
        if not isinstance(meta, dict):
            _err(errors, "meta", "must be an object when present")
        else:
            for key, value in meta.items():
                if not isinstance(value, str):
                    _err(errors, f"meta[{key!r}]",
                         f"must be a string, got {value!r}")
            cc = meta.get("cc")
            if cc is not None and cc not in CC_ALGORITHMS:
                _err(errors, "meta['cc']",
                     f"expected one of {sorted(CC_ALGORITHMS)}, got {cc!r}")

    points = doc.get("points")
    if not isinstance(points, list):
        _err(errors, "points", "must be an array")
        points = []
    for i, point in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            _err(errors, where, "must be an object")
            continue
        if not isinstance(point.get("name"), str) or not point.get("name"):
            _err(errors, where, "missing non-empty 'name'")
        counters = point.get("counters")
        if not isinstance(counters, dict):
            _err(errors, where, "missing 'counters' object")
            continue
        for key, value in counters.items():
            _check_number(errors, f"{where}.counters[{key!r}]", value)

    snapshots = doc.get("snapshots")
    if not isinstance(snapshots, list):
        _err(errors, "snapshots", "must be an array")
        snapshots = []
    labels = [s.get("label") for s in snapshots if isinstance(s, dict)]
    if labels != sorted(labels):
        _err(errors, "snapshots", "labels must be sorted (determinism contract)")
    for i, snap in enumerate(snapshots):
        where = f"snapshots[{i}]"
        if not isinstance(snap, dict):
            _err(errors, where, "must be an object")
            continue
        if not isinstance(snap.get("label"), str) or not snap.get("label"):
            _err(errors, where, "missing non-empty 'label'")
        inner = snap.get("snapshot")
        if not isinstance(inner, dict) or not isinstance(inner.get("metrics"), list):
            _err(errors, where, "missing 'snapshot.metrics' array")
            continue
        metrics = inner["metrics"]
        paths = [m.get("path") for m in metrics if isinstance(m, dict)]
        if paths != sorted(paths):
            _err(errors, f"{where}.snapshot.metrics",
                 "paths must be sorted (determinism contract)")
        for j, metric in enumerate(metrics):
            _check_metric(errors, f"{where}.snapshot.metrics[{j}]", metric)

    if schema in ("xgbe-bench/2", "xgbe-bench/3"):
        checkers = [("breakdowns", _check_breakdown),
                    ("timeseries", _check_series)]
        if schema == "xgbe-bench/3":
            checkers.append(("scrapes", _check_scrape))
        for key, checker in checkers:
            entries = doc.get(key)
            if not isinstance(entries, list):
                _err(errors, key, "must be an array (required in this schema)")
                continue
            labels = [e.get("label") for e in entries if isinstance(e, dict)]
            if labels != sorted(labels):
                _err(errors, key, "labels must be sorted (determinism contract)")
            for i, entry in enumerate(entries):
                checker(errors, f"{key}[{i}]", entry)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for filename in argv[1:]:
        try:
            with open(filename, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{filename}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = validate(doc)
        if errors:
            failed = True
            for error in errors:
                print(f"{filename}: {error}", file=sys.stderr)
        else:
            npoints = len(doc.get("points", []))
            nsnaps = len(doc.get("snapshots", []))
            nbreak = len(doc.get("breakdowns", []))
            nseries = len(doc.get("timeseries", []))
            nscrapes = len(doc.get("scrapes", []))
            print(f"{filename}: OK ({npoints} points, {nsnaps} snapshots, "
                  f"{nbreak} breakdowns, {nseries} timeseries, "
                  f"{nscrapes} scrapes)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

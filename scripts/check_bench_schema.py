#!/usr/bin/env python3
"""Validate a bench --json result log against the xgbe-bench/1 contract.

Stdlib-only (no jsonschema dependency): this script hand-implements the
checks that bench/results.schema.json documents, so CI can run it on a
bare python3. Exits non-zero with one line per violation.

Usage: check_bench_schema.py result.json [result2.json ...]
"""

import json
import sys

NUMERIC_SENTINELS = {"nan", "inf", "-inf"}
METRIC_KINDS = {"counter", "gauge", "distribution"}


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        if not (isinstance(value, str) and value in NUMERIC_SENTINELS):
            _err(errors, path, f"expected number or nan/inf sentinel, got {value!r}")


def _check_metric(errors, path, metric):
    if not isinstance(metric, dict):
        _err(errors, path, "metric must be an object")
        return
    mpath = metric.get("path")
    if not isinstance(mpath, str) or not mpath:
        _err(errors, path, "missing non-empty 'path'")
    kind = metric.get("kind")
    if kind not in METRIC_KINDS:
        _err(errors, path, f"bad kind {kind!r}")
        return
    if kind == "counter":
        if not isinstance(metric.get("value"), int) or isinstance(metric.get("value"), bool):
            _err(errors, path, "counter 'value' must be an integer")
    elif kind == "gauge":
        _check_number(errors, path + ".value", metric.get("value"))
    else:  # distribution
        if not isinstance(metric.get("count"), int):
            _err(errors, path, "distribution 'count' must be an integer")
        for key in ("mean", "min", "max", "stddev"):
            _check_number(errors, f"{path}.{key}", metric.get(key))


def validate(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != "xgbe-bench/1":
        _err(errors, "schema", f"expected 'xgbe-bench/1', got {doc.get('schema')!r}")
    if not isinstance(doc.get("binary"), str) or not doc.get("binary"):
        _err(errors, "binary", "must be a non-empty string")

    points = doc.get("points")
    if not isinstance(points, list):
        _err(errors, "points", "must be an array")
        points = []
    for i, point in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            _err(errors, where, "must be an object")
            continue
        if not isinstance(point.get("name"), str) or not point.get("name"):
            _err(errors, where, "missing non-empty 'name'")
        counters = point.get("counters")
        if not isinstance(counters, dict):
            _err(errors, where, "missing 'counters' object")
            continue
        for key, value in counters.items():
            _check_number(errors, f"{where}.counters[{key!r}]", value)

    snapshots = doc.get("snapshots")
    if not isinstance(snapshots, list):
        _err(errors, "snapshots", "must be an array")
        snapshots = []
    labels = [s.get("label") for s in snapshots if isinstance(s, dict)]
    if labels != sorted(labels):
        _err(errors, "snapshots", "labels must be sorted (determinism contract)")
    for i, snap in enumerate(snapshots):
        where = f"snapshots[{i}]"
        if not isinstance(snap, dict):
            _err(errors, where, "must be an object")
            continue
        if not isinstance(snap.get("label"), str) or not snap.get("label"):
            _err(errors, where, "missing non-empty 'label'")
        inner = snap.get("snapshot")
        if not isinstance(inner, dict) or not isinstance(inner.get("metrics"), list):
            _err(errors, where, "missing 'snapshot.metrics' array")
            continue
        metrics = inner["metrics"]
        paths = [m.get("path") for m in metrics if isinstance(m, dict)]
        if paths != sorted(paths):
            _err(errors, f"{where}.snapshot.metrics",
                 "paths must be sorted (determinism contract)")
        for j, metric in enumerate(metrics):
            _check_metric(errors, f"{where}.snapshot.metrics[{j}]", metric)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for filename in argv[1:]:
        try:
            with open(filename, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{filename}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = validate(doc)
        if errors:
            failed = True
            for error in errors:
                print(f"{filename}: {error}", file=sys.stderr)
        else:
            npoints = len(doc.get("points", []))
            nsnaps = len(doc.get("snapshots", []))
            print(f"{filename}: OK ({npoints} points, {nsnaps} snapshots)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

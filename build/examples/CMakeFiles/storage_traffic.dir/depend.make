# Empty dependencies file for storage_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/storage_traffic.dir/storage_traffic.cpp.o"
  "CMakeFiles/storage_traffic.dir/storage_traffic.cpp.o.d"
  "storage_traffic"
  "storage_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

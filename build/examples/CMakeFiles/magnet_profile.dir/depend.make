# Empty dependencies file for magnet_profile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/magnet_profile.dir/magnet_profile.cpp.o"
  "CMakeFiles/magnet_profile.dir/magnet_profile.cpp.o.d"
  "magnet_profile"
  "magnet_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magnet_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wan_record.dir/wan_record.cpp.o"
  "CMakeFiles/wan_record.dir/wan_record.cpp.o.d"
  "wan_record"
  "wan_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wan_record.
# This may be replaced when dependencies are built.

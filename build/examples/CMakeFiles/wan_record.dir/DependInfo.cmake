
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/wan_record.cpp" "examples/CMakeFiles/wan_record.dir/wan_record.cpp.o" "gcc" "examples/CMakeFiles/wan_record.dir/wan_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xgbe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/xgbe_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xgbe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/xgbe_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/xgbe_link.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/xgbe_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xgbe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xgbe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xgbe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for lan_tuning_ladder.
# This may be replaced when dependencies are built.

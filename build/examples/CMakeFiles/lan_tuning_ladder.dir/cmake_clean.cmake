file(REMOVE_RECURSE
  "CMakeFiles/lan_tuning_ladder.dir/lan_tuning_ladder.cpp.o"
  "CMakeFiles/lan_tuning_ladder.dir/lan_tuning_ladder.cpp.o.d"
  "lan_tuning_ladder"
  "lan_tuning_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lan_tuning_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

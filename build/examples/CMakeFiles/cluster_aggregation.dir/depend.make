# Empty dependencies file for cluster_aggregation.
# This may be replaced when dependencies are built.

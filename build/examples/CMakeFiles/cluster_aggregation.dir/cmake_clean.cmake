file(REMOVE_RECURSE
  "CMakeFiles/cluster_aggregation.dir/cluster_aggregation.cpp.o"
  "CMakeFiles/cluster_aggregation.dir/cluster_aggregation.cpp.o.d"
  "cluster_aggregation"
  "cluster_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for xgbe_nic.
# This may be replaced when dependencies are built.

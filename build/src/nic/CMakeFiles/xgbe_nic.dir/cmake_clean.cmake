file(REMOVE_RECURSE
  "CMakeFiles/xgbe_nic.dir/adapter.cpp.o"
  "CMakeFiles/xgbe_nic.dir/adapter.cpp.o.d"
  "libxgbe_nic.a"
  "libxgbe_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

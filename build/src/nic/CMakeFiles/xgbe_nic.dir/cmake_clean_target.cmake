file(REMOVE_RECURSE
  "libxgbe_nic.a"
)

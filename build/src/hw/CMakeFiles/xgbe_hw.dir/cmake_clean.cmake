file(REMOVE_RECURSE
  "CMakeFiles/xgbe_hw.dir/pcix.cpp.o"
  "CMakeFiles/xgbe_hw.dir/pcix.cpp.o.d"
  "CMakeFiles/xgbe_hw.dir/presets.cpp.o"
  "CMakeFiles/xgbe_hw.dir/presets.cpp.o.d"
  "libxgbe_hw.a"
  "libxgbe_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for xgbe_hw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libxgbe_hw.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_link.dir/link.cpp.o"
  "CMakeFiles/xgbe_link.dir/link.cpp.o.d"
  "CMakeFiles/xgbe_link.dir/switch.cpp.o"
  "CMakeFiles/xgbe_link.dir/switch.cpp.o.d"
  "CMakeFiles/xgbe_link.dir/wan.cpp.o"
  "CMakeFiles/xgbe_link.dir/wan.cpp.o.d"
  "libxgbe_link.a"
  "libxgbe_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

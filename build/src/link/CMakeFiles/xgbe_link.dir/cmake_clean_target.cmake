file(REMOVE_RECURSE
  "libxgbe_link.a"
)

# Empty dependencies file for xgbe_link.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cwnd.cpp" "src/tcp/CMakeFiles/xgbe_tcp.dir/cwnd.cpp.o" "gcc" "src/tcp/CMakeFiles/xgbe_tcp.dir/cwnd.cpp.o.d"
  "/root/repo/src/tcp/endpoint.cpp" "src/tcp/CMakeFiles/xgbe_tcp.dir/endpoint.cpp.o" "gcc" "src/tcp/CMakeFiles/xgbe_tcp.dir/endpoint.cpp.o.d"
  "/root/repo/src/tcp/reassembly.cpp" "src/tcp/CMakeFiles/xgbe_tcp.dir/reassembly.cpp.o" "gcc" "src/tcp/CMakeFiles/xgbe_tcp.dir/reassembly.cpp.o.d"
  "/root/repo/src/tcp/rtt.cpp" "src/tcp/CMakeFiles/xgbe_tcp.dir/rtt.cpp.o" "gcc" "src/tcp/CMakeFiles/xgbe_tcp.dir/rtt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xgbe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xgbe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xgbe_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_tcp.dir/cwnd.cpp.o"
  "CMakeFiles/xgbe_tcp.dir/cwnd.cpp.o.d"
  "CMakeFiles/xgbe_tcp.dir/endpoint.cpp.o"
  "CMakeFiles/xgbe_tcp.dir/endpoint.cpp.o.d"
  "CMakeFiles/xgbe_tcp.dir/reassembly.cpp.o"
  "CMakeFiles/xgbe_tcp.dir/reassembly.cpp.o.d"
  "CMakeFiles/xgbe_tcp.dir/rtt.cpp.o"
  "CMakeFiles/xgbe_tcp.dir/rtt.cpp.o.d"
  "libxgbe_tcp.a"
  "libxgbe_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

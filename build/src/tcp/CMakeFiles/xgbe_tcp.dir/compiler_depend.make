# Empty compiler generated dependencies file for xgbe_tcp.
# This may be replaced when dependencies are built.

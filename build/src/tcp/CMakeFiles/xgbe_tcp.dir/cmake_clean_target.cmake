file(REMOVE_RECURSE
  "libxgbe_tcp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_tools.dir/iperf.cpp.o"
  "CMakeFiles/xgbe_tools.dir/iperf.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/magnet.cpp.o"
  "CMakeFiles/xgbe_tools.dir/magnet.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/netperf.cpp.o"
  "CMakeFiles/xgbe_tools.dir/netperf.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/netpipe.cpp.o"
  "CMakeFiles/xgbe_tools.dir/netpipe.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/nttcp.cpp.o"
  "CMakeFiles/xgbe_tools.dir/nttcp.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/pktgen.cpp.o"
  "CMakeFiles/xgbe_tools.dir/pktgen.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/stream.cpp.o"
  "CMakeFiles/xgbe_tools.dir/stream.cpp.o.d"
  "CMakeFiles/xgbe_tools.dir/tcpdump.cpp.o"
  "CMakeFiles/xgbe_tools.dir/tcpdump.cpp.o.d"
  "libxgbe_tools.a"
  "libxgbe_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/iperf.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/iperf.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/iperf.cpp.o.d"
  "/root/repo/src/tools/magnet.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/magnet.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/magnet.cpp.o.d"
  "/root/repo/src/tools/netperf.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/netperf.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/netperf.cpp.o.d"
  "/root/repo/src/tools/netpipe.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/netpipe.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/netpipe.cpp.o.d"
  "/root/repo/src/tools/nttcp.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/nttcp.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/nttcp.cpp.o.d"
  "/root/repo/src/tools/pktgen.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/pktgen.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/pktgen.cpp.o.d"
  "/root/repo/src/tools/stream.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/stream.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/stream.cpp.o.d"
  "/root/repo/src/tools/tcpdump.cpp" "src/tools/CMakeFiles/xgbe_tools.dir/tcpdump.cpp.o" "gcc" "src/tools/CMakeFiles/xgbe_tools.dir/tcpdump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xgbe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/xgbe_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/xgbe_link.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/xgbe_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xgbe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xgbe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xgbe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

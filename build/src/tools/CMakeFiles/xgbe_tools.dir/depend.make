# Empty dependencies file for xgbe_tools.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libxgbe_tools.a"
)

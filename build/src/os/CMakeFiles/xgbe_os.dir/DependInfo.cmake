
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/costs.cpp" "src/os/CMakeFiles/xgbe_os.dir/costs.cpp.o" "gcc" "src/os/CMakeFiles/xgbe_os.dir/costs.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/xgbe_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/xgbe_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/sockbuf.cpp" "src/os/CMakeFiles/xgbe_os.dir/sockbuf.cpp.o" "gcc" "src/os/CMakeFiles/xgbe_os.dir/sockbuf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xgbe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xgbe_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_os.dir/costs.cpp.o"
  "CMakeFiles/xgbe_os.dir/costs.cpp.o.d"
  "CMakeFiles/xgbe_os.dir/kernel.cpp.o"
  "CMakeFiles/xgbe_os.dir/kernel.cpp.o.d"
  "CMakeFiles/xgbe_os.dir/sockbuf.cpp.o"
  "CMakeFiles/xgbe_os.dir/sockbuf.cpp.o.d"
  "libxgbe_os.a"
  "libxgbe_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for xgbe_os.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libxgbe_os.a"
)

# Empty dependencies file for xgbe_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_analysis.dir/aimd.cpp.o"
  "CMakeFiles/xgbe_analysis.dir/aimd.cpp.o.d"
  "CMakeFiles/xgbe_analysis.dir/interconnects.cpp.o"
  "CMakeFiles/xgbe_analysis.dir/interconnects.cpp.o.d"
  "CMakeFiles/xgbe_analysis.dir/window_model.cpp.o"
  "CMakeFiles/xgbe_analysis.dir/window_model.cpp.o.d"
  "libxgbe_analysis.a"
  "libxgbe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

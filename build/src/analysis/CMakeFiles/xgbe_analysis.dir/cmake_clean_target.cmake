file(REMOVE_RECURSE
  "libxgbe_analysis.a"
)

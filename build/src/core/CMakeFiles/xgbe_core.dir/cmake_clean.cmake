file(REMOVE_RECURSE
  "CMakeFiles/xgbe_core.dir/host.cpp.o"
  "CMakeFiles/xgbe_core.dir/host.cpp.o.d"
  "CMakeFiles/xgbe_core.dir/testbed.cpp.o"
  "CMakeFiles/xgbe_core.dir/testbed.cpp.o.d"
  "CMakeFiles/xgbe_core.dir/tuning.cpp.o"
  "CMakeFiles/xgbe_core.dir/tuning.cpp.o.d"
  "libxgbe_core.a"
  "libxgbe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

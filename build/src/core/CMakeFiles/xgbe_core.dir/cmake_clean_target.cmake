file(REMOVE_RECURSE
  "libxgbe_core.a"
)

# Empty dependencies file for xgbe_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xgbe_sim.dir/event_queue.cpp.o"
  "CMakeFiles/xgbe_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/xgbe_sim.dir/resource.cpp.o"
  "CMakeFiles/xgbe_sim.dir/resource.cpp.o.d"
  "CMakeFiles/xgbe_sim.dir/simulator.cpp.o"
  "CMakeFiles/xgbe_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/xgbe_sim.dir/stats.cpp.o"
  "CMakeFiles/xgbe_sim.dir/stats.cpp.o.d"
  "libxgbe_sim.a"
  "libxgbe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgbe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

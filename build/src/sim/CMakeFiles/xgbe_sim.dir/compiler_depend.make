# Empty compiler generated dependencies file for xgbe_sim.
# This may be replaced when dependencies are built.

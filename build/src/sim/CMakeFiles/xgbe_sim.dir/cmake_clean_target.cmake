file(REMOVE_RECURSE
  "libxgbe_sim.a"
)

file(REMOVE_RECURSE
  "../bench/interconnect_comparison"
  "../bench/interconnect_comparison.pdb"
  "CMakeFiles/interconnect_comparison.dir/interconnect_comparison.cpp.o"
  "CMakeFiles/interconnect_comparison.dir/interconnect_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for interconnect_comparison.
# This may be replaced when dependencies are built.

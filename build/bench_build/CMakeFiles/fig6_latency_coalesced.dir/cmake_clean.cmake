file(REMOVE_RECURSE
  "../bench/fig6_latency_coalesced"
  "../bench/fig6_latency_coalesced.pdb"
  "CMakeFiles/fig6_latency_coalesced.dir/fig6_latency_coalesced.cpp.o"
  "CMakeFiles/fig6_latency_coalesced.dir/fig6_latency_coalesced.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latency_coalesced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

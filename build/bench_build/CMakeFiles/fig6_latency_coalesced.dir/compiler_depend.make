# Empty compiler generated dependencies file for fig6_latency_coalesced.
# This may be replaced when dependencies are built.

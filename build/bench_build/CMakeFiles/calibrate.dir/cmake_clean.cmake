file(REMOVE_RECURSE
  "../devtools/calibrate"
  "../devtools/calibrate.pdb"
  "CMakeFiles/calibrate.dir/calibrate.cpp.o"
  "CMakeFiles/calibrate.dir/calibrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

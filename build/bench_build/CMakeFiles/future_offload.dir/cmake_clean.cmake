file(REMOVE_RECURSE
  "../bench/future_offload"
  "../bench/future_offload.pdb"
  "CMakeFiles/future_offload.dir/future_offload.cpp.o"
  "CMakeFiles/future_offload.dir/future_offload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

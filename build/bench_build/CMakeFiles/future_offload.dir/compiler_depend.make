# Empty compiler generated dependencies file for future_offload.
# This may be replaced when dependencies are built.

# Empty dependencies file for multiflow_paths.
# This may be replaced when dependencies are built.

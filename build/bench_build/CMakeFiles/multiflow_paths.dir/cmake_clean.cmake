file(REMOVE_RECURSE
  "../bench/multiflow_paths"
  "../bench/multiflow_paths.pdb"
  "CMakeFiles/multiflow_paths.dir/multiflow_paths.cpp.o"
  "CMakeFiles/multiflow_paths.dir/multiflow_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiflow_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig8_window_alignment.
# This may be replaced when dependencies are built.

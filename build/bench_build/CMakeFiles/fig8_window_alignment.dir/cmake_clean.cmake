file(REMOVE_RECURSE
  "../bench/fig8_window_alignment"
  "../bench/fig8_window_alignment.pdb"
  "CMakeFiles/fig8_window_alignment.dir/fig8_window_alignment.cpp.o"
  "CMakeFiles/fig8_window_alignment.dir/fig8_window_alignment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_window_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/anecdotal_systems"
  "../bench/anecdotal_systems.pdb"
  "CMakeFiles/anecdotal_systems.dir/anecdotal_systems.cpp.o"
  "CMakeFiles/anecdotal_systems.dir/anecdotal_systems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anecdotal_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for anecdotal_systems.
# This may be replaced when dependencies are built.

# Empty dependencies file for wan_lsr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/wan_lsr"
  "../bench/wan_lsr.pdb"
  "CMakeFiles/wan_lsr.dir/wan_lsr.cpp.o"
  "CMakeFiles/wan_lsr.dir/wan_lsr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_lsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/table1_loss_recovery"
  "../bench/table1_loss_recovery.pdb"
  "CMakeFiles/table1_loss_recovery.dir/table1_loss_recovery.cpp.o"
  "CMakeFiles/table1_loss_recovery.dir/table1_loss_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_loss_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_loss_recovery.
# This may be replaced when dependencies are built.

# Empty dependencies file for pktgen_ceiling.
# This may be replaced when dependencies are built.

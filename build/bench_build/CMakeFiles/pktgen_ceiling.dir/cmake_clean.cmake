file(REMOVE_RECURSE
  "../bench/pktgen_ceiling"
  "../bench/pktgen_ceiling.pdb"
  "CMakeFiles/pktgen_ceiling.dir/pktgen_ceiling.cpp.o"
  "CMakeFiles/pktgen_ceiling.dir/pktgen_ceiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pktgen_ceiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

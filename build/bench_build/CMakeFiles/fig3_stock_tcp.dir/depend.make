# Empty dependencies file for fig3_stock_tcp.
# This may be replaced when dependencies are built.

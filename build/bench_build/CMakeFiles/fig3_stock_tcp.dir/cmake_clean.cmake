file(REMOVE_RECURSE
  "../bench/fig3_stock_tcp"
  "../bench/fig3_stock_tcp.pdb"
  "CMakeFiles/fig3_stock_tcp.dir/fig3_stock_tcp.cpp.o"
  "CMakeFiles/fig3_stock_tcp.dir/fig3_stock_tcp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stock_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../devtools/calibrate2"
  "../devtools/calibrate2.pdb"
  "CMakeFiles/calibrate2.dir/calibrate2.cpp.o"
  "CMakeFiles/calibrate2.dir/calibrate2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

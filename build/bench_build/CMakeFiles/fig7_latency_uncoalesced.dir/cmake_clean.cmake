file(REMOVE_RECURSE
  "../bench/fig7_latency_uncoalesced"
  "../bench/fig7_latency_uncoalesced.pdb"
  "CMakeFiles/fig7_latency_uncoalesced.dir/fig7_latency_uncoalesced.cpp.o"
  "CMakeFiles/fig7_latency_uncoalesced.dir/fig7_latency_uncoalesced.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_latency_uncoalesced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig5_nonstandard_mtu"
  "../bench/fig5_nonstandard_mtu.pdb"
  "CMakeFiles/fig5_nonstandard_mtu.dir/fig5_nonstandard_mtu.cpp.o"
  "CMakeFiles/fig5_nonstandard_mtu.dir/fig5_nonstandard_mtu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nonstandard_mtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_nonstandard_mtu.
# This may be replaced when dependencies are built.

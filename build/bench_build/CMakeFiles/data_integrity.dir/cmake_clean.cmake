file(REMOVE_RECURSE
  "../bench/data_integrity"
  "../bench/data_integrity.pdb"
  "CMakeFiles/data_integrity.dir/data_integrity.cpp.o"
  "CMakeFiles/data_integrity.dir/data_integrity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for data_integrity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig4_tuned_windows"
  "../bench/fig4_tuned_windows.pdb"
  "CMakeFiles/fig4_tuned_windows.dir/fig4_tuned_windows.cpp.o"
  "CMakeFiles/fig4_tuned_windows.dir/fig4_tuned_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tuned_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

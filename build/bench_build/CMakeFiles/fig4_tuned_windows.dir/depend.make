# Empty dependencies file for fig4_tuned_windows.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_tcp_units.
# This may be replaced when dependencies are built.

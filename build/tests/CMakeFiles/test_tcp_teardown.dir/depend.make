# Empty dependencies file for test_tcp_teardown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_teardown.dir/test_tcp_teardown.cpp.o"
  "CMakeFiles/test_tcp_teardown.dir/test_tcp_teardown.cpp.o.d"
  "test_tcp_teardown"
  "test_tcp_teardown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_teardown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_tcp_endpoint.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_capture_netperf.
# This may be replaced when dependencies are built.

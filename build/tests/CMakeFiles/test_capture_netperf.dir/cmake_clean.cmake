file(REMOVE_RECURSE
  "CMakeFiles/test_capture_netperf.dir/test_capture_netperf.cpp.o"
  "CMakeFiles/test_capture_netperf.dir/test_capture_netperf.cpp.o.d"
  "test_capture_netperf"
  "test_capture_netperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capture_netperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Property-based sweeps over the model invariants.
#include <gtest/gtest.h>

#include "analysis/aimd.hpp"
#include "core/testbed.hpp"
#include "hw/pcix.hpp"
#include "hw/presets.hpp"
#include "net/headers.hpp"
#include "os/kmalloc.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

// --- Allocator invariants ----------------------------------------------------

class KmallocSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KmallocSweep, BlockInvariants) {
  const std::uint32_t size = GetParam();
  const std::uint32_t block = os::kmalloc_block(size);
  // Power of two.
  EXPECT_EQ(block & (block - 1), 0u);
  // Large enough (except beyond the largest cache).
  if (size <= os::kKmallocMaxBlock) {
    EXPECT_GE(block, size);
  }
  // Minimal: half the block would not fit.
  if (block > os::kKmallocMinBlock && size <= os::kKmallocMaxBlock) {
    EXPECT_LT(block / 2, size);
  }
  // truesize strictly exceeds the frame it accounts for.
  if (size >= 64 && size <= 16000) {
    EXPECT_GT(os::skb_truesize(size), size);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KmallocSweep,
                         ::testing::Values(1u, 31u, 32u, 33u, 60u, 1518u,
                                           2048u, 2049u, 4095u, 4096u, 7502u,
                                           8174u, 8192u, 8193u, 9014u, 16018u,
                                           131072u, 200000u));

TEST(KmallocProperties, TruesizeIsMonotonicInFrameSize) {
  // A bigger frame can never be charged less against the socket: truesize
  // (and the underlying data block) is non-decreasing across the whole
  // range the adapters can produce.
  std::uint32_t prev_truesize = 0;
  std::uint32_t prev_block = 0;
  for (std::uint32_t frame = 1; frame <= 17000; ++frame) {
    const std::uint32_t block = os::rx_data_block(frame);
    const std::uint32_t truesize = os::skb_truesize(frame);
    EXPECT_GE(block, prev_block) << "frame=" << frame;
    EXPECT_GE(truesize, prev_truesize) << "frame=" << frame;
    EXPECT_EQ(truesize, block + os::kSkbStructBytes) << "frame=" << frame;
    prev_block = block;
    prev_truesize = truesize;
  }
}

TEST(KmallocProperties, BlockRoundingAtTheMtuBoundaries) {
  // The three MTUs the paper sweeps (§3.3, Fig 5), as full Ethernet frames
  // with the driver's 16-byte skb pad:
  //   8160 -> 8174-byte frame -> 8190 bytes needed -> 8 KB block, 2 spare,
  //   9000 -> 9014-byte frame -> spills into the 16 KB block (~7 KB slack),
  //  16000 -> 16014-byte frame -> fills the 16 KB block snugly again.
  const std::uint32_t frame8160 = 8160 + net::kEthHeaderBytes;
  const std::uint32_t frame9000 = 9000 + net::kEthHeaderBytes;
  const std::uint32_t frame16000 = 16000 + net::kEthHeaderBytes;
  EXPECT_EQ(os::rx_data_block(frame8160), 8192u);
  EXPECT_EQ(os::rx_data_block(frame9000), 16384u);
  EXPECT_EQ(os::rx_data_block(frame16000), 16384u);
  // The exact cliff: frame + pad crosses 8192 at a 8176-byte frame.
  EXPECT_EQ(os::rx_data_block(8192u - os::kSkbDataPad), 8192u);
  EXPECT_EQ(os::rx_data_block(8192u - os::kSkbDataPad + 1), 16384u);
  // The waste the paper quantifies: "roughly 7000 bytes" for 9000-MTU,
  // nearly none for 8160 or 16000.
  EXPECT_LT(os::rx_alloc_waste(frame8160), 16u);
  EXPECT_GT(os::rx_alloc_waste(frame9000), 7000u);
  EXPECT_LT(os::rx_alloc_waste(frame9000), 7500u);
  EXPECT_LT(os::rx_alloc_waste(frame16000), 512u);
}

TEST(KmallocProperties, AllocWasteIsConsistentWithTheBlock) {
  // waste == block - (frame + pad), and the block is minimal: using half
  // the block would not have fit the frame.
  for (std::uint32_t frame = 60; frame <= 16014; frame += 7) {
    const std::uint32_t need = frame + os::kSkbDataPad;
    const std::uint32_t block = os::rx_data_block(frame);
    const std::uint32_t waste = os::rx_alloc_waste(frame);
    ASSERT_EQ(waste + need, block) << "frame=" << frame;
    EXPECT_LT(waste, block) << "frame=" << frame;
    if (block > os::kKmallocMinBlock) {
      EXPECT_LT(block / 2, need) << "frame=" << frame;
    }
  }
}

// --- AIMD model invariants ---------------------------------------------------

struct AimdCase {
  double rtt_s;
  std::uint32_t mss;
};

class AimdSweep : public ::testing::TestWithParam<AimdCase> {};

TEST_P(AimdSweep, RecoveryMonotonicInRttAndMss) {
  const auto [rtt, mss] = GetParam();
  const double t = analysis::recovery_time_s(10e9, rtt, mss);
  EXPECT_GT(t, 0.0);
  // Longer RTT -> strictly longer recovery.
  EXPECT_GT(analysis::recovery_time_s(10e9, rtt * 2, mss), t);
  // Bigger MSS -> strictly shorter recovery.
  EXPECT_LT(analysis::recovery_time_s(10e9, rtt, mss * 2), t);
  // More bandwidth -> longer recovery (bigger window to regain).
  EXPECT_GT(analysis::recovery_time_s(20e9, rtt, mss), t);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AimdSweep,
    ::testing::Values(AimdCase{0.001, 1460}, AimdCase{0.02, 1460},
                      AimdCase{0.12, 1460}, AimdCase{0.18, 1460},
                      AimdCase{0.02, 8960}, AimdCase{0.18, 8960}));

// --- PCI-X model invariants --------------------------------------------------

class PcixFrameSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PcixFrameSweep, ServiceDecomposition) {
  const std::uint32_t bytes = GetParam();
  const hw::PcixSpec s = hw::presets::pe2650().pcix;
  const auto t = hw::dma_read_service_time(s, bytes, 512);
  // Exactly data time + bursts * overhead + descriptor.
  const auto expect =
      sim::transfer_time(bytes, s.rate_bps()) +
      static_cast<sim::SimTime>(hw::burst_count(bytes, 512)) *
          s.burst_overhead +
      s.descriptor_overhead;
  EXPECT_EQ(t, expect);
  // Reads are never cheaper than writes of the same size.
  EXPECT_GE(t, hw::dma_write_service_time(s, bytes));
}

INSTANTIATE_TEST_SUITE_P(Frames, PcixFrameSweep,
                         ::testing::Values(64u, 512u, 513u, 1518u, 8178u,
                                           9018u, 16018u));

// --- End-to-end throughput invariants ----------------------------------------

double nttcp_gbps(const core::TuningProfile& tuning, std::uint32_t payload) {
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = payload;
  opt.count = 800;
  return tools::run_nttcp(tb, conn, a, b, opt).throughput_gbps();
}

class BufferMonotonicity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BufferMonotonicity, ThroughputNonDecreasingInRcvbuf) {
  // At the window-limited payload, growing the socket buffers never hurts.
  const std::uint32_t payload = GetParam();
  double prev = 0.0;
  for (std::uint32_t buf : {65536u, 131072u, 262144u, 524288u}) {
    core::TuningProfile t = core::TuningProfile::with_uniprocessor(9000);
    t.rcvbuf = buf;
    t.sndbuf = buf;
    const double gbps = nttcp_gbps(t, payload);
    EXPECT_GE(gbps, prev * 0.95) << "buf=" << buf;
    prev = gbps;
  }
}

INSTANTIATE_TEST_SUITE_P(Payloads, BufferMonotonicity,
                         ::testing::Values(8000u, 8948u, 16344u));

class MmrbcMonotonicity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MmrbcMonotonicity, ThroughputNonDecreasingInMmrbc) {
  const std::uint32_t payload = GetParam();
  double prev = 0.0;
  for (std::uint32_t mmrbc : {512u, 1024u, 2048u, 4096u}) {
    core::TuningProfile t = core::TuningProfile::with_big_windows(9000);
    t.mmrbc = mmrbc;
    const double gbps = nttcp_gbps(t, payload);
    EXPECT_GE(gbps, prev * 0.95) << "mmrbc=" << mmrbc;
    prev = gbps;
  }
}

INSTANTIATE_TEST_SUITE_P(Payloads, MmrbcMonotonicity,
                         ::testing::Values(8000u, 16344u));

// Loss seeds: for any seed, all data is eventually delivered exactly once.
class LossSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossSeedSweep, ReliableDeliveryUnderLoss) {
  link::LinkSpec lossy;
  lossy.loss_rate = 0.01;
  lossy.loss_seed = GetParam();
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b, lossy);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 600;
  opt.timeout = sim::sec(120);
  auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed) << "seed " << GetParam();
  EXPECT_EQ(r.bytes, 8948ull * 600ull);
  EXPECT_EQ(conn.server->stats().bytes_consumed, 8948ull * 600ull);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 2026u));

}  // namespace
}  // namespace xgbe

// Churn soak: >= 10k short-lived connections across >= 8 seeded wire+host
// fault plans, driven through the full lifecycle (listener accept, handshake
// retry, transfer, FIN teardown, TIME_WAIT) by the core::churn generator,
// asserting for every plan that
//   - every opened connection lands in exactly one terminal bucket
//     (opened == completed + refused + aborted — the connection ledger),
//   - the frame-level drop ledger reconciles exactly at quiescence,
//   - backlog overflow sheds load gracefully: refusals are counted, no
//     endpoint wedges, the watchdog stays quiet,
//   - a rerun of the same plan reproduces bit-identical statistics,
// with a watchdog checking host lifecycle invariants (connection-table
// identity, per-endpoint transient-state budgets) and forward progress.
//
// Set XGBE_CHAOS_SEED to decorrelate every plan's RNG seeds (XOR-folded
// into wire, host, and churn seeds); active seeds are echoed in failures.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/churn.hpp"
#include "core/testbed.hpp"
#include "fault/host_fault.hpp"
#include "sim/watchdog.hpp"
#include "tools/drop_report.hpp"

namespace xgbe {
namespace {

struct ChurnConfig {
  std::string name;
  fault::FaultPlan plan;         // wire faults
  fault::HostFaultPlan host_rx;  // server-side host faults
  fault::HostFaultPlan host_tx;  // client-side host faults
  core::churn::Options churn;
  bool expect_refusals = false;  // overflow plans must count refusals
};

struct ChurnOutcome {
  core::churn::Result result;
  bool tripped = false;
  bool frames_conserved = false;
  bool conns_conserved = false;
  std::string diagnosis;
  std::string ledger;
  std::string fingerprint;
  std::uint64_t listener_refused = 0;
};

bool chaos_seed_override(std::uint64_t& seed) {
  const char* env = std::getenv("XGBE_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return false;
  seed = std::strtoull(env, nullptr, 0);
  return true;
}

void fold_seed_override(std::vector<ChurnConfig>& configs) {
  std::uint64_t s = 0;
  if (!chaos_seed_override(s)) return;
  for (ChurnConfig& c : configs) {
    c.plan.seed ^= s;
    c.host_rx.seed ^= s;
    c.host_tx.seed ^= s;
    c.churn.seed ^= s;
  }
}

std::string trace_line(const ChurnConfig& cfg) {
  std::string line = cfg.name + " [churn seed=" +
                     std::to_string(cfg.churn.seed) +
                     " conns=" + std::to_string(cfg.churn.connections) + "]";
  if (cfg.plan.active()) {
    line += " [wire seed=" + std::to_string(cfg.plan.seed) + " " +
            fault::describe(cfg.plan) + "]";
  }
  if (cfg.host_rx.active()) {
    line += " [host-rx " + fault::describe(cfg.host_rx) + "]";
  }
  if (cfg.host_tx.active()) {
    line += " [host-tx " + fault::describe(cfg.host_tx) + "]";
  }
  std::uint64_t s = 0;
  if (chaos_seed_override(s)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " [XGBE_CHAOS_SEED=0x%llx]",
                  static_cast<unsigned long long>(s));
    line += buf;
  }
  return line;
}

ChurnOutcome run_churn(const ChurnConfig& cfg) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& client = tb.add_host("client", hw::presets::pe2650(), tuning);
  auto& server = tb.add_host("server", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(client, server);
  if (cfg.plan.active()) wire.set_fault_plan(cfg.plan);
  if (cfg.host_tx.active()) client.set_host_fault_plan(cfg.host_tx);
  if (cfg.host_rx.active()) server.set_host_fault_plan(cfg.host_rx);

  // Lifecycle watchdog: stalls are measured against terminal-state
  // progress; backoff gaps between handshake retries can run ~48 s with no
  // global movement, so the stall horizon must exceed the ~93 s give-up.
  core::churn::Result live;
  sim::Watchdog::Options wopt;
  wopt.interval = sim::sec(1);
  wopt.stalled_ticks = 120;
  sim::Watchdog dog(tb.simulator(), wopt);
  dog.watch_progress("terminal", [&live]() {
    return live.completed + live.refused + live.aborted;
  });
  dog.watch_progress("opened", [&live]() { return live.opened; });
  dog.add_invariant("client-lifecycle", [&]() {
    return client.lifecycle_violation(tb.now());
  });
  dog.add_invariant("server-lifecycle", [&]() {
    return server.lifecycle_violation(tb.now());
  });
  dog.add_context("wire-faults", [&]() {
    return wire.fault_counters().total_drops() > 0
               ? fault::describe(wire.fault_counters())
               : std::string();
  });
  dog.arm();

  core::churn::run(tb, client, server, cfg.churn, &live);
  dog.disarm();
  // Quiesce: trailing ACKs, refusal RSTs, reorder hold-backs, duplicate
  // copies all land before the ledgers are harvested.
  tb.run_for(sim::sec(2));

  ChurnOutcome out;
  out.result = live;
  out.tripped = dog.tripped();
  out.diagnosis = dog.diagnosis();

  tools::DropReport ledger;
  ledger.add_host(client);
  ledger.add_host(server);
  ledger.add_link(wire);
  ledger.add_connections(live.opened, live.completed, live.refused,
                         live.aborted);
  out.frames_conserved = ledger.conserved();
  out.conns_conserved = ledger.connections_conserved();
  out.ledger = ledger.render();

  const tcp::Listener* listener = server.listener();
  out.listener_refused = listener->stats().refused_syn_queue +
                         listener->stats().refused_accept_queue;
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "conns{open=%llu done=%llu ref=%llu abort=%llu bytes=%llu "
      "fct_sum=%lld fct_max=%lld last=%lld} "
      "hosts{copen=%llu/%llu cclose=%llu/%llu rst=%llu/%llu "
      "demux=%llu/%llu unclaimed=%llu/%llu} "
      "listener{syn=%llu acc=%llu refq=%llu refacc=%llu half=%llu} "
      "wire{seen=%llu drops=%llu dup=%llu}",
      static_cast<unsigned long long>(live.opened),
      static_cast<unsigned long long>(live.completed),
      static_cast<unsigned long long>(live.refused),
      static_cast<unsigned long long>(live.aborted),
      static_cast<unsigned long long>(live.bytes_acked),
      static_cast<long long>(live.fct_sum),
      static_cast<long long>(live.fct_max),
      static_cast<long long>(live.last_close),
      static_cast<unsigned long long>(client.conn_opens()),
      static_cast<unsigned long long>(server.conn_opens()),
      static_cast<unsigned long long>(client.conn_closes()),
      static_cast<unsigned long long>(server.conn_closes()),
      static_cast<unsigned long long>(client.rsts_sent()),
      static_cast<unsigned long long>(server.rsts_sent()),
      static_cast<unsigned long long>(client.frames_demuxed()),
      static_cast<unsigned long long>(server.frames_demuxed()),
      static_cast<unsigned long long>(client.frames_unclaimed()),
      static_cast<unsigned long long>(server.frames_unclaimed()),
      static_cast<unsigned long long>(listener->stats().syns_received),
      static_cast<unsigned long long>(listener->stats().accepted),
      static_cast<unsigned long long>(listener->stats().refused_syn_queue),
      static_cast<unsigned long long>(
          listener->stats().refused_accept_queue),
      static_cast<unsigned long long>(listener->stats().failed_handshakes),
      static_cast<unsigned long long>(wire.fault_counters().frames_seen),
      static_cast<unsigned long long>(wire.fault_counters().total_drops()),
      static_cast<unsigned long long>(wire.fault_counters().duplicates));
  out.fingerprint = buf;
  return out;
}

void expect_clean_churn(const ChurnConfig& cfg, const ChurnOutcome& out) {
  ASSERT_FALSE(out.tripped) << out.diagnosis;
  EXPECT_EQ(out.result.opened, cfg.churn.connections)
      << "every planned connection must be opened";
  EXPECT_TRUE(out.result.conserved())
      << "opened=" << out.result.opened
      << " completed=" << out.result.completed
      << " refused=" << out.result.refused
      << " aborted=" << out.result.aborted;
  EXPECT_TRUE(out.conns_conserved) << out.ledger;
  EXPECT_TRUE(out.frames_conserved) << out.ledger;
  EXPECT_GT(out.result.completed, 0u);
  if (cfg.expect_refusals) {
    EXPECT_GT(out.listener_refused, 0u)
        << "overflow plan never overflowed the backlog";
  }
}

fault::GilbertElliott lan_burst() {
  fault::GilbertElliott ge;
  ge.p_enter_bad = 5e-4;
  ge.p_exit_bad = 0.25;
  ge.loss_bad = 1.0;
  return ge;
}

std::vector<ChurnConfig> churn_matrix() {
  using fault::FaultPlan;
  using fault::HostFaultPlan;
  std::vector<ChurnConfig> configs;
  auto add = [&](const std::string& name,
                 std::uint32_t connections) -> ChurnConfig& {
    ChurnConfig c;
    c.name = name;
    c.churn.connections = connections;
    c.churn.arrival_rate_hz = 500.0;
    c.churn.seed = 0x10c4a11;
    configs.push_back(c);
    return configs.back();
  };

  // Control: no faults; everything else must stay as well-accounted.
  add("churn-clean", 1300);

  add("churn-uniform-1pct-s71", 1300).plan =
      FaultPlan{}.with_seed(71).with_loss(0.01);
  add("churn-handshake-30pct-s72", 1300).plan =
      FaultPlan{}.with_seed(72).with_handshake_loss(0.3);
  add("churn-burst-s73", 1300).plan =
      FaultPlan{}.with_seed(73).with_burst(lan_burst());
  add("churn-dup-reorder-s74", 1300).plan = FaultPlan{}
                                                .with_seed(74)
                                                .with_duplication(0.01)
                                                .with_reordering(
                                                    0.03, sim::usec(100));
  {
    auto& c = add("churn-hostalloc-irqmiss-s75", 1300);
    c.host_rx =
        HostFaultPlan{}.with_seed(75).with_alloc_failure(0.01).with_irq_miss(
            0.02);
  }
  {
    auto& c = add("churn-combo-s76", 1300);
    c.plan = FaultPlan{}.with_seed(76).with_loss(0.005).with_handshake_loss(
        0.1);
    c.host_rx = HostFaultPlan{}.with_seed(76).with_alloc_failure(0.005);
    c.host_tx = HostFaultPlan{}.with_seed(77).with_sched_pause(
        sim::msec(2), sim::msec(60));
  }
  add("churn-handshake-loss-dup-s78", 1300).plan =
      FaultPlan{}.with_seed(78).with_handshake_loss(0.15).with_duplication(
          0.02);

  // Backlog overflow, refused with RSTs: a two-deep SYN queue against a
  // fast arrival burst sheds most of the load as counted refusals.
  {
    auto& c = add("churn-overflow-rst-s79", 600);
    c.churn.arrival_rate_hz = 5000.0;
    c.churn.max_concurrent = 256;
    c.churn.listener.syn_backlog = 2;
    c.churn.listener.rst_on_overflow = true;
    c.expect_refusals = true;
  }
  // Same overflow with silent drops: clients retry into the wall and get
  // through once slots free up (or give up) — nothing wedges either way.
  {
    auto& c = add("churn-overflow-silent-s80", 300);
    c.churn.arrival_rate_hz = 20000.0;
    c.churn.max_concurrent = 256;
    c.churn.listener.syn_backlog = 2;
    c.churn.listener.rst_on_overflow = false;
    c.expect_refusals = true;
  }
  fold_seed_override(configs);
  return configs;
}

TEST(ChurnSoak, TenThousandConnectionsAcrossFaultPlansReproduceBitIdentically) {
  const auto configs = churn_matrix();
  ASSERT_GE(configs.size(), 9u);  // >= 8 fault plans + the clean control
  std::uint64_t total_opened = 0;
  for (const auto& cfg : configs) {
    SCOPED_TRACE(trace_line(cfg));
    const ChurnOutcome first = run_churn(cfg);
    expect_clean_churn(cfg, first);
    total_opened += first.result.opened;

    const ChurnOutcome rerun = run_churn(cfg);
    EXPECT_EQ(first.fingerprint, rerun.fingerprint)
        << "same plan, same churn, different stats — determinism broke";
  }
  EXPECT_GE(total_opened, 10000u)
      << "the soak must push at least 10k connections through the lifecycle";
}

// The clean control must leave zero aborted connections and an empty
// connection table — and the listener path must not leak endpoints.
TEST(ChurnSoak, CleanChurnLeavesNoResidue) {
  ChurnConfig cfg;
  cfg.name = "clean-residue";
  cfg.churn.connections = 400;
  cfg.churn.arrival_rate_hz = 1000.0;

  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& client = tb.add_host("client", hw::presets::pe2650(), tuning);
  auto& server = tb.add_host("server", hw::presets::pe2650(), tuning);
  tb.connect(client, server);
  const auto res = core::churn::run(tb, client, server, cfg.churn);
  tb.run_for(sim::sec(2));

  EXPECT_EQ(res.opened, 400u);
  EXPECT_EQ(res.completed, 400u);
  EXPECT_EQ(res.refused, 0u);
  EXPECT_EQ(res.aborted, 0u);
  EXPECT_EQ(client.connection_count(), 0u);
  EXPECT_EQ(server.connection_count(), 0u);
  EXPECT_EQ(client.conn_opens(), client.conn_closes());
  EXPECT_EQ(server.conn_opens(), server.conn_closes());
  EXPECT_TRUE(client.lifecycle_violation(tb.now()).empty());
  EXPECT_TRUE(server.lifecycle_violation(tb.now()).empty());
}

}  // namespace
}  // namespace xgbe

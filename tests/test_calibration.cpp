// Calibration regression locks: the headline numbers recorded in
// EXPERIMENTS.md, asserted with tolerances. If a model change moves one of
// these, EXPERIMENTS.md must be re-baselined consciously — these tests make
// silent drift impossible.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"
#include "tools/pktgen.hpp"

namespace xgbe {
namespace {

tools::NttcpResult nttcp(const hw::SystemSpec& sys,
                         const core::TuningProfile& tuning,
                         std::uint32_t payload) {
  core::Testbed tb;
  auto& a = tb.add_host("a", sys, tuning);
  auto& b = tb.add_host("b", sys, tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = payload;
  opt.count = 2000;
  return tools::run_nttcp(tb, conn, a, b, opt);
}

double latency_us(const core::TuningProfile& tuning, bool through_switch) {
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  if (through_switch) {
    auto& sw = tb.add_switch();
    tb.connect_to_switch(a, sw);
    tb.connect_to_switch(b, sw);
  } else {
    tb.connect(a, b);
  }
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::NetpipeOptions opt;
  opt.payload = 1;
  opt.iterations = 60;
  return tools::run_netpipe(tb, conn, opt).latency_us;
}

TEST(CalibrationLock, Stock1500PeaksNear1p8) {
  // Paper Fig 3: ~1.8 Gb/s at the 1500-byte MTU.
  const auto r =
      nttcp(hw::presets::pe2650(), core::TuningProfile::stock(1500), 16344);
  EXPECT_NEAR(r.throughput_gbps(), 1.8, 0.15);
  EXPECT_GT(r.receiver_load, 0.85);  // CPU-bound, paper load ~0.9
}

TEST(CalibrationLock, Stock9000PeaksNear2p7) {
  // Paper Fig 3: ~2.7 Gb/s, CPU load ~0.4 — TX PCI-X bound at MMRBC 512.
  const auto r =
      nttcp(hw::presets::pe2650(), core::TuningProfile::stock(9000), 8000);
  EXPECT_NEAR(r.throughput_gbps(), 2.7, 0.2);
  EXPECT_LT(r.receiver_load, 0.65);
}

TEST(CalibrationLock, StockJumboDipAtMssPayloads) {
  // Paper Fig 3: the marked throughput dip around jumbo-MSS payloads.
  const auto peak =
      nttcp(hw::presets::pe2650(), core::TuningProfile::stock(9000), 8000);
  const auto dip =
      nttcp(hw::presets::pe2650(), core::TuningProfile::stock(9000), 8948);
  EXPECT_GT(peak.throughput_bps, dip.throughput_bps * 1.3);
}

TEST(CalibrationLock, Tuned8160PeaksNear4Gbps) {
  // Paper Fig 5: 4.11 Gb/s with the 8160-byte MTU, fully tuned.
  const auto r = nttcp(hw::presets::pe2650(),
                       core::TuningProfile::lan_tuned(8160), 8000);
  EXPECT_NEAR(r.throughput_gbps(), 4.2, 0.35);
}

TEST(CalibrationLock, LatencyMatchesFigs6And7) {
  const double coalesced = latency_us(core::TuningProfile::lan_tuned(9000),
                                      /*through_switch=*/false);
  EXPECT_NEAR(coalesced, 18.5, 1.5);  // paper: 19 us

  auto uncoalesced_tuning = core::TuningProfile::lan_tuned(9000);
  uncoalesced_tuning.intr_delay = 0;
  const double uncoalesced = latency_us(uncoalesced_tuning, false);
  EXPECT_NEAR(uncoalesced, 13.5, 1.5);  // paper: 14 us

  const double switched =
      latency_us(core::TuningProfile::lan_tuned(9000), true);
  EXPECT_NEAR(switched, 24.5, 1.5);  // paper: 25 us
}

TEST(CalibrationLock, PktgenCeilingNear88kPps) {
  // Paper §3.5.2: ~88,400 packets/s at 8160-byte packets, CPU mostly idle.
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  tools::PktgenOptions opt;
  opt.duration = sim::msec(50);
  const auto r = tools::run_pktgen(tb, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.packets_per_sec, 88400.0, 3500.0);
}

TEST(CalibrationLock, E7505OutOfBoxNear4p5) {
  // Paper §3.4: 4.64 Gb/s essentially out of the box, timestamps disabled.
  auto t = core::TuningProfile::stock(9000);
  t.timestamps = false;
  const auto r = nttcp(hw::presets::intel_e7505(), t, 8000);
  EXPECT_NEAR(r.throughput_gbps(), 4.5, 0.35);
}

}  // namespace
}  // namespace xgbe

// Fleet fault-matrix suite: fabric topology, scenario matrix, and
// tools::fleet_doctor localization.
//
// The contract under test, end to end:
//  - a clean fabric runs the whole scenario matrix with a conserved ledger
//    and a silent doctor;
//  - every catalogue fault, run through the same matrix, is localized to
//    the exact component (the fabric's canonical name) with the right
//    cause class;
//  - verdicts are bit-identical across reruns, shard counts, and thread
//    counts, and ECMP path choice never depends on the partition;
//  - overdriving the incast past the ToR port buffer collapses visibly in
//    the per-port counters while the fleet-wide ledger stays exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "core/fleet.hpp"
#include "obs/registry.hpp"
#include "tools/drop_report.hpp"
#include "tools/fleet_doctor.hpp"

namespace {

using xgbe::core::Fabric;
using xgbe::core::FabricOptions;
using xgbe::fault::FleetFault;
using xgbe::fault::FleetPlan;
using xgbe::tools::FleetDoctorOptions;
using xgbe::tools::FleetDoctorReport;
using xgbe::tools::run_fleet_doctor;
namespace fleet = xgbe::core::fleet;
namespace sim = xgbe::sim;
namespace obs = xgbe::obs;

/// 2 racks x 3 hosts, 1 spine, 2-trunk bundles, sharded. Propagation is
/// kept long-ish: it is also the engine lookahead, so it bounds how many
/// barrier windows a simulated second costs.
FabricOptions test_fabric(std::size_t shards = 2) {
  FabricOptions o;
  o.racks = 2;
  o.hosts_per_rack = 3;
  o.spines = 1;
  o.trunks_per_spine = 2;
  o.shards = shards;
  o.host_propagation = sim::usec(10);
  o.trunk_propagation = sim::usec(20);
  return o;
}

FleetDoctorReport run_matrix(const FabricOptions& fabric) {
  FleetDoctorOptions opt;
  opt.fabric = fabric;  // empty scenario list = the canonical three
  return run_fleet_doctor(opt);
}

void expect_conserved(const FleetDoctorReport& rep, const std::string& label) {
  EXPECT_TRUE(rep.ledger.conserved())
      << label << "\n"
      << rep.ledger.render();
  EXPECT_TRUE(rep.ledger.connections_conserved())
      << label << "\n"
      << rep.ledger.render();
}

TEST(FleetDoctor, CleanMatrixIsSilent) {
  const FleetDoctorReport rep = run_matrix(test_fabric());
  ASSERT_EQ(rep.scenarios.size(), 3u);
  for (const auto& s : rep.scenarios) {
    EXPECT_TRUE(s.completed) << s.name << " consumed " << s.bytes_consumed
                             << "/" << s.bytes_expected;
  }
  expect_conserved(rep, "clean matrix");
  EXPECT_TRUE(rep.verdict.clean()) << rep.verdict.render();
}

TEST(FleetDoctor, LocalizesEveryCatalogueFault) {
  struct Cell {
    const char* label;
    FleetPlan plan;
    std::string component;
    std::string cause;
  };
  std::vector<Cell> matrix;
  {
    Cell c;
    c.label = "bad cable on a trunk";
    c.plan.bad_cable_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/0);
    c.component = "trunk-tor1-spine0-0";
    c.cause = "bad-cable";
    matrix.push_back(c);
  }
  {
    Cell c;
    c.label = "flapping trunk";
    c.plan.flapping_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/1);
    c.component = "trunk-tor1-spine0-1";
    c.cause = "carrier-flap";
    matrix.push_back(c);
  }
  {
    Cell c;
    c.label = "half-speed trunk";
    c.plan.half_speed_trunk(/*rack=*/0, /*spine=*/0, /*trunk=*/1, 5e9);
    c.component = "trunk-tor0-spine0-1";
    c.cause = "half-speed-link";
    matrix.push_back(c);
  }
  {
    Cell c;
    c.label = "DMA-throttled straggler host";
    c.plan.dma_throttled_host(/*rack=*/1, /*host=*/1, sim::msec(1),
                              sim::msec(60));
    c.component = "r1h1";
    c.cause = "host-dma-throttle";
    matrix.push_back(c);
  }
  {
    Cell c;
    c.label = "bad cable on an access link";
    c.plan.bad_cable_host_link(/*rack=*/0, /*host=*/2);
    c.component = "r0h2-tor0";
    c.cause = "bad-cable";
    matrix.push_back(c);
  }

  for (const Cell& cell : matrix) {
    FabricOptions fabric = test_fabric();
    fabric.faults = cell.plan;
    const FleetDoctorReport rep = run_matrix(fabric);
    // The canonical component name the plan targets (checked through the
    // fabric so a naming drift fails loudly here, not silently in docs).
    const Fabric named(test_fabric());
    ASSERT_EQ(cell.plan.faults.size(), 1u);
    EXPECT_EQ(named.fault_component(cell.plan.faults[0]), cell.component);

    expect_conserved(rep, cell.label);
    ASSERT_FALSE(rep.verdict.clean())
        << cell.label << ": doctor saw nothing\n"
        << rep.transcript();
    const xgbe::tools::Finding& top = rep.verdict.findings.front();
    EXPECT_EQ(top.component, cell.component)
        << cell.label << "\n"
        << rep.verdict.render();
    EXPECT_EQ(top.cause, cell.cause) << cell.label << "\n"
                                     << rep.verdict.render();
  }
}

TEST(FleetDoctor, VerdictBitIdenticalAcrossPartitionsAndReruns) {
  fleet::Options incast;
  incast.scenario = fleet::Scenario::kIncast;

  std::string base_verdict;
  std::string base_transcript;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 3u}) {
    for (const unsigned threads : {1u, 4u}) {
      FleetDoctorOptions opt;
      opt.fabric = test_fabric(shards);
      opt.fabric.threads = threads;
      opt.fabric.faults.half_speed_trunk(1, 0, 0, 5e9);
      opt.scenarios = {incast};
      const FleetDoctorReport rep = run_fleet_doctor(opt);
      const std::string label = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
      if (first) {
        first = false;
        base_verdict = rep.verdict.to_json();
        base_transcript = rep.transcript();
        EXPECT_FALSE(rep.verdict.clean()) << rep.transcript();
      } else {
        EXPECT_EQ(rep.verdict.to_json(), base_verdict) << label;
        EXPECT_EQ(rep.transcript(), base_transcript) << label;
      }
    }
  }
  // Rerun of the base configuration: same session, same verdict.
  FleetDoctorOptions opt;
  opt.fabric = test_fabric(1);
  opt.fabric.threads = 1;
  opt.fabric.faults.half_speed_trunk(1, 0, 0, 5e9);
  opt.scenarios = {incast};
  const FleetDoctorReport again = run_fleet_doctor(opt);
  EXPECT_EQ(again.verdict.to_json(), base_verdict) << "rerun";
  EXPECT_EQ(again.transcript(), base_transcript) << "rerun";
}

TEST(Fabric, EcmpPathChoiceIsPartitionInvariant) {
  // Same fabric, same scenario, different shard counts: every trunk must
  // carry the exact same frame counts — the ECMP hash may depend only on
  // packet fields and table order, never on where components landed.
  fleet::Options a2a;
  a2a.scenario = fleet::Scenario::kAllToAll;

  std::vector<std::uint64_t> base_counts;
  std::uint64_t base_fp = 0;
  for (const std::size_t shards : {1u, 2u, 3u}) {
    Fabric fabric(test_fabric(shards));
    const fleet::Result res = fleet::run(fabric, a2a);
    EXPECT_TRUE(res.completed) << "shards=" << shards;
    std::vector<std::uint64_t> counts;
    for (std::size_t r = 0; r < fabric.racks(); ++r) {
      for (std::size_t k = 0; k < fabric.options().trunks_per_spine; ++k) {
        counts.push_back(fabric.trunk(r, 0, k).frames_delivered());
      }
    }
    const std::uint64_t fp = fabric.fingerprint();
    if (shards == 1) {
      base_counts = counts;
      base_fp = fp;
      // The hash must actually spread flows: with 12 flows over 2-trunk
      // bundles, every trunk should have seen traffic.
      for (std::size_t i = 0; i < counts.size(); ++i) {
        EXPECT_GT(counts[i], 0u) << "trunk " << i << " never used — ECMP "
                                 << "degenerated to a single path";
      }
    } else {
      EXPECT_EQ(counts, base_counts) << "shards=" << shards;
      EXPECT_EQ(fp, base_fp) << "shards=" << shards;
    }
  }
}

TEST(Fabric, OverdrivenIncastCollapsesAtTheTorPort) {
  // Push the synchronized rounds past the ToR egress buffer: with a shallow
  // 48 KiB port (commodity-switch territory) the 5-worker synchronized burst
  // overflows the aggregator's 4:1-oversubscribed access port, while the
  // milder 3:2 trunk funnel at tor1 stays inside its buffer. The collapse must be
  // visible in the per-port counters, the ledger must still balance to the
  // frame, and the doctor must call it incast-collapse at that port.
  FabricOptions fopt = test_fabric();
  fopt.tor_port_buffer_bytes = 48 * 1024;
  Fabric fabric(fopt);
  // Several rounds so slow start opens the workers' windows: the early
  // rounds are cwnd-limited, the later ones arrive as full-size bursts.
  fleet::Options incast;
  incast.scenario = fleet::Scenario::kIncast;
  incast.incast_bytes = 64 * 1024;
  incast.incast_rounds = 6;
  const fleet::Result res = fleet::run(fabric, incast);
  EXPECT_TRUE(res.completed) << "TCP must recover the tail drops; consumed "
                             << res.bytes_consumed << "/"
                             << res.bytes_expected;

  // Port 0 of tor0 is the first access link wired: the aggregator's.
  auto& tor = fabric.tor(0);
  ASSERT_EQ(tor.port_link_name(0), "r0h0-tor0");
  EXPECT_GT(tor.port_dropped_queue_full(0), 0u)
      << "overdriven incast did not overflow the ToR port";
  EXPECT_GT(tor.port_peak_queued(0), 0u);
  EXPECT_LE(tor.port_peak_queued(0), fopt.tor_port_buffer_bytes);

  xgbe::tools::DropReport ledger;
  ledger.add_testbed(fabric.testbed());
  EXPECT_TRUE(ledger.conserved()) << ledger.render();

  obs::Registry reg;
  fabric.register_metrics(reg);
  xgbe::tools::MetricMap merged;
  xgbe::tools::accumulate(merged, reg.snapshot());
  const auto verdict = xgbe::tools::diagnose(merged, ledger);
  ASSERT_FALSE(verdict.clean());
  EXPECT_EQ(verdict.findings.front().component, "tor0:r0h0-tor0")
      << verdict.render();
  EXPECT_EQ(verdict.findings.front().cause, "incast-collapse")
      << verdict.render();
}

TEST(FleetScenarios, ListenerBacklogPeaksAreObservable) {
  // The RPC-churn scenario exercises the server's listener; its SYN/accept
  // backlog high-water marks must surface as registry gauges and in the
  // drop-report rendering (opt-in by listener presence, so topologies
  // without a listener keep byte-identical snapshots).
  Fabric fabric(test_fabric());
  fleet::Options rpc;
  rpc.scenario = fleet::Scenario::kRpcChurn;
  const fleet::Result res = fleet::run(fabric, rpc);
  EXPECT_TRUE(res.rpc.conserved());
  EXPECT_GT(res.rpc.completed, 0u);

  obs::Registry reg;
  fabric.register_metrics(reg);
  const obs::Snapshot snap = reg.snapshot();
  const obs::Sample* peak = snap.find("r1h2/listener/half_open_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_GT(peak->value, 0.0);
  const obs::Sample* aq_peak = snap.find("r1h2/listener/accept_queue_peak");
  ASSERT_NE(aq_peak, nullptr);  // on_accept dispatches immediately: stays 0

  xgbe::tools::DropReport ledger;
  ledger.add_testbed(fabric.testbed());
  EXPECT_NE(ledger.render().find("listener r1h2:"), std::string::npos)
      << ledger.render();
}

}  // namespace

// Time-resolved telemetry suite: obs::MetricScraper + TimeSeriesStore +
// obs::detect, armed through core::Testbed's sim::TimeHook seam.
//
// The contract under test:
//  - arming a scraper perturbs NOTHING: an armed run is bit-identical to an
//    unarmed one — executed-event counts included — in classic mode and
//    under ShardedEngine at shard counts {1,2,4} and several thread counts;
//  - the scraped series themselves are deterministic: identical across
//    reruns, shard counts, and thread counts (store fingerprint equality);
//  - the ring bound evicts oldest-first by folding deltas into the base, so
//    the retained tail decodes exactly and eviction is deterministic;
//  - the detectors pin a seeded flapping trunk's carrier-flap episodes
//    inside the fault plan's flap window;
//  - the fleet doctor's timeline mode stamps findings with onset/clear and
//    classifies the flap as transient, byte-identical across partitions;
//  - scraping survives listener churn: a Registry armed before a re-listen
//    keeps sampling the retired listener's counters (the Host::listen()
//    retire rule — a use-after-free regression test under ASan).
#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/churn.hpp"
#include "core/fabric.hpp"
#include "core/fleet.hpp"
#include "core/testbed.hpp"
#include "obs/detect.hpp"
#include "obs/registry.hpp"
#include "obs/scrape.hpp"
#include "tools/drop_report.hpp"
#include "tools/fleet_doctor.hpp"

namespace xgbe {
namespace {

namespace fleet = core::fleet;

using obs::MetricScraper;
using obs::ScrapeOptions;
using obs::SeriesPoint;
using obs::TimeSeriesStore;

// ---------------------------------------------------------------------------
// TimeSeriesStore

TEST(TimeSeriesStore, RingEvictionFoldsOldestIntoBase) {
  TimeSeriesStore store(4);
  // Non-uniform steps so a decode bug (base not folded, prefix sums off)
  // cannot cancel out.
  const std::int64_t values[] = {3, 7, 7, 20, 19, 100, 101, 150};
  for (int i = 0; i < 8; ++i) {
    store.append("s", sim::usec(10 * (i + 1)), values[i]);
  }
  EXPECT_EQ(store.series_count(), 1u);
  EXPECT_EQ(store.total_points(), 4u);
  EXPECT_EQ(store.evicted("s"), 4u);

  const std::vector<SeriesPoint> pts = store.points("s");
  ASSERT_EQ(pts.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pts[i].at, sim::usec(10 * (i + 5))) << i;
    EXPECT_EQ(pts[i].value, values[i + 4]) << i;
  }
}

TEST(TimeSeriesStore, SinglePointRingKeepsNewest) {
  TimeSeriesStore store(1);
  store.append("s", sim::usec(1), 5);
  store.append("s", sim::usec(2), 9);
  store.append("s", sim::usec(3), 4);
  EXPECT_EQ(store.total_points(), 1u);
  EXPECT_EQ(store.evicted("s"), 2u);
  const std::vector<SeriesPoint> pts = store.points("s");
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].at, sim::usec(3));
  EXPECT_EQ(pts[0].value, 4);
}

TEST(TimeSeriesStore, ExportsAreDeterministic) {
  auto build = []() {
    TimeSeriesStore store(8);
    store.append("b/gauge", sim::usec(1), 250, "milli");
    store.append("a/counter", sim::usec(1), 0);
    store.append("a/counter", sim::usec(2), 3);
    store.append("b/gauge", sim::usec(2), 125, "milli");
    return store;
  };
  const TimeSeriesStore one = build();
  const TimeSeriesStore two = build();
  EXPECT_EQ(one.to_csv(), two.to_csv());
  EXPECT_EQ(one.to_jsonl(), two.to_jsonl());
  EXPECT_EQ(one.series_json(), two.series_json());
  EXPECT_EQ(one.fingerprint(), two.fingerprint());

  // Exports iterate the map: path order, "a/counter" first.
  EXPECT_EQ(one.to_csv().rfind("series,unit,at_ps,value\n", 0), 0u)
      << one.to_csv();
  EXPECT_LT(one.to_csv().find("a/counter"), one.to_csv().find("b/gauge"));
  EXPECT_EQ(one.unit("b/gauge"), "milli");
}

// ---------------------------------------------------------------------------
// Detector semantics on synthetic series

std::vector<SeriesPoint> synth(std::initializer_list<std::int64_t> values) {
  std::vector<SeriesPoint> pts;
  sim::SimTime at = 0;
  for (const std::int64_t v : values) {
    at += sim::msec(1);
    pts.push_back({at, v});
  }
  return pts;
}

TEST(Detect, IncreaseOpensOnDeltaAndClearsAfterQuietIntervals) {
  // Deltas: +2 at 2ms, quiet 3-4ms (clears at 3ms), +1 at 6ms, never quiet
  // long enough again -> second episode uncleared.
  const auto pts = synth({0, 2, 2, 2, 2, 3, 3});
  const auto eps = obs::detect::detect_increase(pts, "s", "carrier-flap");
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].onset, sim::msec(2));
  EXPECT_TRUE(eps[0].cleared);
  EXPECT_EQ(eps[0].clear, sim::msec(3));
  EXPECT_EQ(eps[0].severity, 2);
  EXPECT_EQ(eps[1].onset, sim::msec(6));
  EXPECT_FALSE(eps[1].cleared);
}

TEST(Detect, ThresholdTracksPeakSeverity) {
  const auto pts = synth({10, 90, 100, 40, 95, 10});
  const auto eps = obs::detect::detect_threshold(pts, "q", "queue-saturation",
                                                 /*threshold=*/80);
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].onset, sim::msec(2));
  EXPECT_EQ(eps[0].clear, sim::msec(4));
  EXPECT_EQ(eps[0].severity, 100);
  EXPECT_EQ(eps[1].onset, sim::msec(5));
  EXPECT_EQ(eps[1].severity, 95);
}

// ---------------------------------------------------------------------------
// Armed == unarmed, classic mode

struct ClassicOutcome {
  std::uint64_t executed = 0;
  std::string registry_json;
  std::string ledger;
  // Armed runs only:
  std::uint64_t scrapes = 0;
  std::size_t scrape_series = 0;
  std::uint64_t scrape_points = 0;
  std::uint64_t scrape_fp = 0;
};

ClassicOutcome run_classic(bool armed) {
  core::Testbed tb;  // classic: single event queue, between-event hook
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& client = tb.add_host("client", hw::presets::pe2650(), tuning);
  auto& server = tb.add_host("server", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(client, server);

  obs::Registry scrape_reg;
  std::unique_ptr<MetricScraper> scraper;
  if (armed) {
    tb.register_metrics(scrape_reg);
    ScrapeOptions so;
    so.period = sim::usec(100);
    scraper = std::make_unique<MetricScraper>(scrape_reg, so);
    tb.set_metric_scraper(scraper.get());
  }

  auto conn = tb.open_connection(client, server, client.endpoint_config(),
                                 server.endpoint_config());
  EXPECT_TRUE(tb.run_until_established(conn));
  conn.client->app_send(512 * 1024, nullptr);
  tb.run_for(sim::msec(20));
  tb.set_metric_scraper(nullptr);

  ClassicOutcome out;
  out.executed = tb.simulator().executed_events();
  obs::Registry reg;
  tb.register_metrics(reg);
  out.registry_json = reg.snapshot().to_json();
  tools::DropReport ledger;
  ledger.add_host(client);
  ledger.add_host(server);
  ledger.add_link(wire);
  out.ledger = ledger.render();
  if (scraper != nullptr) {
    out.scrapes = scraper->scrapes();
    out.scrape_series = scraper->store().series_count();
    out.scrape_points = scraper->store().total_points();
    out.scrape_fp = scraper->store().fingerprint();
  }
  return out;
}

TEST(MetricScraper, ArmedClassicRunIsBitIdenticalToUnarmed) {
  const ClassicOutcome unarmed = run_classic(false);
  const ClassicOutcome armed = run_classic(true);

  EXPECT_EQ(armed.executed, unarmed.executed)
      << "arming the scraper changed the event schedule";
  EXPECT_EQ(armed.registry_json, unarmed.registry_json);
  EXPECT_EQ(armed.ledger, unarmed.ledger);

  // And the scraper actually sampled: a 20 ms run at 100 us cadence.
  EXPECT_GE(armed.scrapes, 100u);
  EXPECT_GT(armed.scrape_series, 0u);
  EXPECT_GT(armed.scrape_points, 0u);
}

TEST(MetricScraper, ClassicScrapeIsRerunDeterministic) {
  const ClassicOutcome one = run_classic(true);
  const ClassicOutcome two = run_classic(true);
  EXPECT_EQ(one.scrape_fp, two.scrape_fp);
  EXPECT_EQ(one.scrape_points, two.scrape_points);
  EXPECT_GT(one.scrape_points, 0u);
}

// ---------------------------------------------------------------------------
// Armed == unarmed under ShardedEngine, any partition

core::FabricOptions incast_fabric(std::size_t shards, unsigned threads) {
  core::FabricOptions o;
  o.racks = 2;
  o.hosts_per_rack = 3;
  o.spines = 1;
  o.trunks_per_spine = 2;
  o.shards = shards;
  o.threads = threads;
  o.tor_port_buffer_bytes = 48 * 1024;  // overdriven: drops to scrape
  o.host_propagation = sim::usec(10);
  o.trunk_propagation = sim::usec(20);
  return o;
}

struct FleetOutcome {
  std::uint64_t executed = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t bytes = 0;
  bool completed = false;
  std::uint64_t scrape_fp = 0;
  std::uint64_t scrape_points = 0;
};

FleetOutcome run_incast(std::size_t shards, unsigned threads, bool armed) {
  core::Fabric fabric(incast_fabric(shards, threads));
  fleet::Options opt;
  opt.scenario = fleet::Scenario::kIncast;
  opt.incast_bytes = 64 * 1024;
  opt.incast_rounds = 6;

  obs::Registry reg;
  std::unique_ptr<MetricScraper> scraper;
  if (armed) {
    fabric.register_metrics(reg);
    ScrapeOptions so;
    so.period = sim::usec(100);
    scraper = std::make_unique<MetricScraper>(reg, so);
    opt.scraper = scraper.get();
  }
  const fleet::Result res = fleet::run(fabric, opt);

  FleetOutcome out;
  out.executed = fabric.testbed().engine().executed_events();
  out.fingerprint = fabric.fingerprint();
  out.bytes = res.bytes_consumed;
  out.completed = res.completed;
  if (scraper != nullptr) {
    out.scrape_fp = scraper->store().fingerprint();
    out.scrape_points = scraper->store().total_points();
  }
  return out;
}

TEST(MetricScraper, ArmedShardedRunIsBitIdenticalToUnarmed) {
  // The tentpole invariant: for every partition, arming changes nothing —
  // executed-event count included — and the scrape itself is identical
  // across all partitions (barriers are partition-invariant).
  std::uint64_t base_scrape_fp = 0;
  std::uint64_t base_fabric_fp = 0;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const unsigned threads : {1u, 4u}) {
      const std::string label = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
      const FleetOutcome unarmed = run_incast(shards, threads, false);
      const FleetOutcome armed = run_incast(shards, threads, true);
      EXPECT_EQ(armed.executed, unarmed.executed) << label;
      EXPECT_EQ(armed.fingerprint, unarmed.fingerprint) << label;
      EXPECT_EQ(armed.bytes, unarmed.bytes) << label;
      EXPECT_EQ(armed.completed, unarmed.completed) << label;
      EXPECT_GT(armed.scrape_points, 0u) << label;
      if (first) {
        first = false;
        base_scrape_fp = armed.scrape_fp;
        base_fabric_fp = armed.fingerprint;
      } else {
        EXPECT_EQ(armed.scrape_fp, base_scrape_fp) << label;
        EXPECT_EQ(armed.fingerprint, base_fabric_fp) << label;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Detector pinning: seeded flapping trunks

TEST(Detect, FlappingTrunkEpisodesPinnedToFaultWindow) {
  // Both trunks of the rack-1 bundle flap on the default schedule: down
  // windows [5,6) [15,16) [25,26) [35,36) ms. Cross-rack streams run the
  // whole span (sends every 1 ms), so every down window sees traffic — the
  // flap counter increments lazily, on the first frame a down carrier
  // drops. At a 1 ms scrape cadence the first flap lands on the 6 ms
  // boundary and every carrier-flap onset stays inside [5, 37] ms.
  core::FabricOptions fopt = incast_fabric(/*shards=*/2, /*threads=*/0);
  fopt.faults.flapping_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/0);
  fopt.faults.flapping_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/1);
  core::Fabric fabric(fopt);
  core::Testbed& tb = fabric.testbed();

  obs::Registry reg;
  fabric.register_metrics(reg);
  ScrapeOptions so;
  so.period = sim::msec(1);
  so.prefixes = {"link/trunk-"};
  MetricScraper scraper(reg, so);
  tb.set_metric_scraper(&scraper);

  // 9 cross-rack flows (every rack-1 host to every rack-0 host), each
  // sending 24 KiB every 1 ms for 40 ms — continuous trunk traffic.
  std::vector<core::Testbed::Connection> flows;
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t d = 0; d < 3; ++d) {
      core::Host& src = fabric.host(1, s);
      core::Host& dst = fabric.host(0, d);
      flows.push_back(tb.open_connection(src, dst, src.endpoint_config(),
                                         dst.endpoint_config()));
    }
  }
  for (auto& f : flows) tb.run_until_established(f);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    tcp::Endpoint* ep = flows[i].client;
    core::Host& src = fabric.host(1, i / 3);
    for (int k = 0; k < 40; ++k) {
      tb.simulator_for(src).schedule(
          sim::msec(k), [ep]() { ep->app_send(24 * 1024, nullptr); });
    }
  }
  tb.run_until(sim::msec(45));
  tb.set_metric_scraper(nullptr);

  const auto episodes = obs::detect::run_detectors(scraper.store());
  std::vector<obs::detect::Episode> flaps;
  for (const auto& e : episodes) {
    if (e.cause == "carrier-flap") flaps.push_back(e);
  }
  ASSERT_FALSE(flaps.empty()) << obs::detect::episodes_json(episodes);
  sim::SimTime first_onset = flaps.front().onset;
  for (const auto& e : flaps) {
    EXPECT_GE(e.onset, sim::msec(5)) << e.series;
    EXPECT_LE(e.onset, sim::msec(37)) << e.series;
    if (e.onset < first_onset) first_onset = e.onset;
  }
  // The first down window is [5, 6) ms; with traffic in it, the first
  // scrape boundary that can see the flap is 6 ms, and 7 ms at the latest.
  EXPECT_GE(first_onset, sim::msec(5));
  EXPECT_LE(first_onset, sim::msec(7))
      << obs::detect::episodes_json(flaps);
}

// ---------------------------------------------------------------------------
// Fleet doctor timeline mode

TEST(FleetDoctorTimeline, FlapFindingCarriesOnsetAndTransient) {
  // Timeline mode pins the *when*: the carrier-flap finding must carry an
  // onset inside the plan's flap window [5, 37] ms and classify the flap as
  // transient (it cleared and recurred). The /2 verdict JSON must be
  // byte-identical across reruns, shard counts, and thread counts.
  fleet::Options incast;
  incast.scenario = fleet::Scenario::kIncast;
  // Rounds every 2.5 ms: rounds 2, 6, 10, 14 fire at ~5, 15, 25, 35 ms —
  // inside the plan's 1 ms down windows, so the lazily-counted flaps see
  // traffic in every window. 16 rounds span the whole [0, 37.5] ms plan.
  incast.round_period = sim::usec(2500);
  incast.incast_rounds = 16;

  std::string base_json;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const unsigned threads : {1u, 4u}) {
      tools::FleetDoctorOptions opt;
      opt.fabric = incast_fabric(shards, threads);
      opt.fabric.faults.flapping_trunk(1, 0, 0);
      opt.fabric.faults.flapping_trunk(1, 0, 1);
      opt.scenarios = {incast};
      opt.scrape_period = sim::msec(1);
      const tools::FleetDoctorReport rep = tools::run_fleet_doctor(opt);
      const std::string label = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);

      ASSERT_FALSE(rep.verdict.clean()) << label << "\n" << rep.transcript();
      const tools::Finding* flap = nullptr;
      for (const auto& f : rep.verdict.findings) {
        if (f.cause == "carrier-flap") {
          flap = &f;
          break;
        }
      }
      ASSERT_NE(flap, nullptr) << label << "\n" << rep.verdict.render();
      EXPECT_TRUE(flap->timed) << label;
      EXPECT_GE(flap->onset, sim::msec(5)) << label;
      EXPECT_LE(flap->onset, sim::msec(37)) << label;
      EXPECT_TRUE(flap->transient)
          << label << "\n" << rep.verdict.render();
      EXPECT_GT(flap->episodes, 1u) << label;

      const std::string json = rep.verdict.to_json();
      EXPECT_NE(json.find("\"schema\":\"xgbe-fleet-doctor/2\""),
                std::string::npos)
          << json;
      if (first) {
        first = false;
        base_json = json;
      } else {
        EXPECT_EQ(json, base_json) << label;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Listener churn: scraping across teardown (ASan regression)

TEST(MetricScraper, SurvivesListenerChurnTeardown) {
  // A Registry armed before churn::run holds probe closures over the
  // server's *current* listener; churn::run re-listens, which used to
  // destroy that listener and leave the closures dangling. Host::listen()
  // now retires the old listener instead, so the scraper keeps sampling it
  // across the re-listen and the final snapshot stays valid (ASan turns a
  // regression here into a hard failure).
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& client = tb.add_host("client", hw::presets::pe2650(), tuning);
  auto& server = tb.add_host("server", hw::presets::pe2650(), tuning);
  tb.connect(client, server);
  server.listen(tcp::ListenerConfig{}, server.endpoint_config());

  obs::Registry reg;
  tb.register_metrics(reg);  // probes over the pre-churn listener
  ScrapeOptions so;
  so.period = sim::msec(1);
  MetricScraper scraper(reg, so);
  tb.set_metric_scraper(&scraper);

  core::churn::Options copt;
  copt.connections = 40;
  copt.arrival_rate_hz = 1000.0;
  copt.max_bytes = 32 * 1024;
  const core::churn::Result res = core::churn::run(tb, client, server, copt);
  tb.run_for(sim::sec(1));  // scrape across TIME_WAIT teardown
  tb.set_metric_scraper(nullptr);

  EXPECT_TRUE(res.conserved());
  EXPECT_GT(res.completed, 0u);
  EXPECT_GT(scraper.scrapes(), 0u);
  EXPECT_GT(scraper.store().total_points(), 0u);
  // The retired listener's probes must still answer.
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_NE(snap.find("server/listener/half_open_peak"), nullptr);
}

}  // namespace
}  // namespace xgbe

// Unit tests for the hardware models: PCI-X bus, memory subsystem, presets.
#include <gtest/gtest.h>

#include "hw/memory.hpp"
#include "hw/pcix.hpp"
#include "hw/presets.hpp"

namespace xgbe::hw {
namespace {

TEST(Pcix, RateFromClockAndWidth) {
  PcixSpec s;
  s.clock_mhz = 133.0;
  s.width_bits = 64;
  // The paper's 8.5 Gb/s PCI-X figure.
  EXPECT_NEAR(s.rate_bps(), 8.512e9, 1e6);
}

TEST(Pcix, BurstCount) {
  EXPECT_EQ(burst_count(0, 512), 0u);
  EXPECT_EQ(burst_count(512, 512), 1u);
  EXPECT_EQ(burst_count(513, 512), 2u);
  // A 9018-byte jumbo frame: 18 bursts at MMRBC 512, 3 at 4096 (§3.3).
  EXPECT_EQ(burst_count(9018, 512), 18u);
  EXPECT_EQ(burst_count(9018, 4096), 3u);
}

TEST(Pcix, ValidMmrbcValues) {
  EXPECT_TRUE(is_valid_mmrbc(512));
  EXPECT_TRUE(is_valid_mmrbc(4096));
  EXPECT_FALSE(is_valid_mmrbc(0));
  EXPECT_FALSE(is_valid_mmrbc(1000));
  EXPECT_FALSE(is_valid_mmrbc(8192));
}

TEST(Pcix, ReadServiceTimeDropsWithMmrbc) {
  const PcixSpec s = presets::pe2650().pcix;
  const auto t512 = dma_read_service_time(s, 9018, 512);
  const auto t4096 = dma_read_service_time(s, 9018, 4096);
  EXPECT_LT(t4096, t512);
  // The amortization saves 15 bursts of overhead.
  EXPECT_EQ(t512 - t4096, 15 * s.burst_overhead);
}

TEST(Pcix, WriteSideIgnoresMmrbc) {
  const PcixSpec s = presets::pe2650().pcix;
  EXPECT_LT(dma_write_service_time(s, 9018),
            dma_read_service_time(s, 9018, 4096));
}

TEST(Pcix, Pe2650StockJumboCeilingNear2p7) {
  // The calibrated model must keep the paper's stock bottleneck: the TX DMA
  // read path at MMRBC 512 caps a 9018-byte frame stream at ~2.7 Gb/s.
  const PcixSpec s = presets::pe2650().pcix;
  const double gbps = effective_read_rate_bps(s, 9018, 512) / 1e9;
  EXPECT_NEAR(gbps, 2.72, 0.15);
}

TEST(Pcix, EffectiveRateMonotonicInFrameSize) {
  const PcixSpec s = presets::pe2650().pcix;
  double prev = 0.0;
  for (std::uint32_t bytes : {512u, 1518u, 4096u, 9018u, 16018u}) {
    const double rate = effective_read_rate_bps(s, bytes, 4096);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(Memory, StreamCopyIsHalfTraversal) {
  MemorySpec m;
  m.traversal_bytes_per_sec = 2.15e9;
  EXPECT_NEAR(m.stream_copy_bytes_per_sec(), 1.075e9, 1e3);
}

TEST(Memory, BusTimeScalesWithTraversals) {
  MemorySpec m;
  m.traversal_bytes_per_sec = 2e9;
  EXPECT_EQ(bus_time(m, 1000, 2), 2 * bus_time(m, 1000, 1));
  EXPECT_EQ(cpu_copy_time(m, 1000), bus_time(m, 1000, 2));
}

TEST(Presets, Pe2650Shape) {
  const SystemSpec s = presets::pe2650();
  EXPECT_EQ(s.cpu_count, 2);
  EXPECT_DOUBLE_EQ(s.cpu_ghz, 2.2);
  EXPECT_DOUBLE_EQ(s.fsb_mhz, 400.0);
  EXPECT_EQ(s.default_mmrbc, 512u);
  EXPECT_DOUBLE_EQ(s.cpu_scale(), 1.0);
  EXPECT_DOUBLE_EQ(s.fsb_scale(), 1.0);
  // STREAM ~8.6 Gb/s on the PE2650 (inferred in §3.5.2).
  EXPECT_NEAR(s.memory.stream_copy_bytes_per_sec() * 8 / 1e9, 8.6, 0.1);
}

TEST(Presets, Pe4600HasMoreMemoryBandwidthLessPci) {
  const SystemSpec a = presets::pe2650();
  const SystemSpec b = presets::pe4600();
  EXPECT_GT(b.memory.traversal_bytes_per_sec, a.memory.traversal_bytes_per_sec);
  EXPECT_LT(b.pcix.rate_bps(), a.pcix.rate_bps());  // 100 vs 133 MHz
  // STREAM 12.8 Gb/s on the GC-HE (§3.5.2).
  EXPECT_NEAR(b.memory.stream_copy_bytes_per_sec() * 8 / 1e9, 12.8, 0.1);
}

TEST(Presets, E7505FasterFsb) {
  const SystemSpec s = presets::intel_e7505();
  EXPECT_DOUBLE_EQ(s.fsb_mhz, 533.0);
  EXPECT_LT(s.fsb_scale(), 0.8);
  // STREAM "within a few percent" of the PE2650 (§3.5.2).
  const double pe = presets::pe2650().memory.stream_copy_bytes_per_sec();
  EXPECT_NEAR(s.memory.stream_copy_bytes_per_sec() / pe, 1.0, 0.1);
}

TEST(Presets, ItaniumQuad) {
  const SystemSpec s = presets::itanium2_quad();
  EXPECT_EQ(s.cpu_count, 4);
  EXPECT_GT(s.memory.traversal_bytes_per_sec, 6e9);
}

TEST(Presets, WanEndpointMatchesPaper) {
  const SystemSpec s = presets::wan_endpoint();
  EXPECT_DOUBLE_EQ(s.cpu_ghz, 2.4);
  EXPECT_NEAR(s.pcix.rate_bps(), 8.512e9, 1e6);  // 133 MHz PCI-X (§4.1)
}

// Property sweep: read service time is non-increasing in MMRBC for any
// frame size.
class MmrbcSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MmrbcSweep, ServiceTimeNonIncreasingInMmrbc) {
  const PcixSpec s = presets::pe2650().pcix;
  const std::uint32_t bytes = GetParam();
  sim::SimTime prev = dma_read_service_time(s, bytes, 512);
  for (std::uint32_t mmrbc : {1024u, 2048u, 4096u}) {
    const sim::SimTime t = dma_read_service_time(s, bytes, mmrbc);
    EXPECT_LE(t, prev) << "bytes=" << bytes << " mmrbc=" << mmrbc;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(FrameSizes, MmrbcSweep,
                         ::testing::Values(64u, 512u, 1518u, 4096u, 8178u,
                                           9018u, 16018u));

}  // namespace
}  // namespace xgbe::hw

// Pool: free-list reuse, exhaustion fallback, and handle-outlives-pool
// teardown. The CI ASan job running this suite is the leak check.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/pool.hpp"

namespace {

using xgbe::sim::Pool;

TEST(Pool, ReusesReleasedNodes) {
  Pool<int> pool;
  {
    auto h = pool.acquire();
    *h = 41;
  }
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.free_size(), 1u);
  auto h = pool.acquire();
  EXPECT_EQ(pool.allocated(), 1u) << "second acquire must not hit the heap";
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(*h, 41) << "reused values are handed back as-is";
}

TEST(Pool, VectorKeepsCapacityAcrossReuse) {
  Pool<std::vector<int>> pool;
  std::size_t cap = 0;
  {
    auto h = pool.acquire();
    h->resize(1000);
    cap = h->capacity();
  }
  auto h = pool.acquire();
  EXPECT_GE(h->capacity(), cap) << "recycling should preserve the buffer";
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(Pool, SteadyStateStopsAllocating) {
  Pool<int> pool;
  for (int round = 0; round < 100; ++round) {
    auto a = pool.acquire();
    auto b = pool.acquire();
  }
  EXPECT_EQ(pool.allocated(), 2u);
  EXPECT_EQ(pool.reused(), 198u);
}

TEST(Pool, ExhaustionFallsBackToHeap) {
  Pool<int> pool(/*max_free=*/2);
  {
    std::vector<Pool<int>::Handle> handles;
    for (int i = 0; i < 10; ++i) handles.push_back(pool.acquire());
    EXPECT_EQ(pool.allocated(), 10u) << "past the cap acquire() still works";
    EXPECT_EQ(pool.live(), 10u);
  }
  // Only max_free nodes are retained; the rest were freed on release.
  EXPECT_EQ(pool.free_size(), 2u);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, CopiedHandlesShareOneNode) {
  Pool<int> pool;
  auto a = pool.acquire();
  *a = 7;
  auto b = a;        // copy
  auto c = std::move(a);  // move: a releases nothing extra
  EXPECT_EQ(*b, 7);
  EXPECT_EQ(*c, 7);
  EXPECT_EQ(pool.live(), 1u);
  b.reset();
  EXPECT_EQ(pool.live(), 1u) << "node lives while any handle does";
  c.reset();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.free_size(), 1u);
}

TEST(Pool, HandleOutlivesPool) {
  // Events queued at teardown can hold handles after the owning component
  // (and its pool) died; the control block must survive until the last
  // handle releases. ASan verifies nothing leaks on either path.
  Pool<int>::Handle survivor;
  {
    Pool<int> pool;
    survivor = pool.acquire();
    *survivor = 13;
    auto transient = pool.acquire();
  }
  EXPECT_EQ(*survivor, 13) << "value must stay valid past the pool";
  survivor.reset();  // releases the node and the control block
}

TEST(Pool, ResetIsIdempotentAndNullHandleSafe) {
  Pool<int> pool;
  Pool<int>::Handle h;
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_EQ(h.get(), nullptr);
  h.reset();  // no-op on a null handle
  h = pool.acquire();
  EXPECT_TRUE(static_cast<bool>(h));
  h.reset();
  h.reset();
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace

// Tests for the tcpdump-style capture, netperf, and the data-integrity
// (checksum placement) model.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "tools/netperf.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"
#include "tools/tcpdump.hpp"

namespace xgbe {
namespace {

TEST(Capture, RecordsHandshakeAndData) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);

  tools::Capture cap(tb.simulator());
  cap.attach(wire);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 5;
  ASSERT_TRUE(tools::run_nttcp(tb, conn, a, b, opt).completed);
  cap.detach(wire);

  const std::string text = cap.text();
  // SYN with options, data with seq ranges, ACKs with windows.
  EXPECT_NE(text.find("Flags [S]"), std::string::npos);
  EXPECT_NE(text.find("options [mss 8960,wscale,TS]"), std::string::npos);
  EXPECT_NE(text.find("length 8948"), std::string::npos);
  EXPECT_NE(text.find("win "), std::string::npos);
  EXPECT_GE(cap.frames_seen(), 10u);  // 3 handshake + 5 data + acks
}

TEST(Capture, FilterAndRingLimit) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);

  tools::CaptureOptions copt;
  copt.max_lines = 8;
  copt.filter = [](const obs::TraceEvent& ev) { return ev.len > 0; };
  tools::Capture cap(tb.simulator(), copt);
  cap.attach(wire);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 4096;
  opt.count = 50;
  ASSERT_TRUE(tools::run_nttcp(tb, conn, a, b, opt).completed);

  EXPECT_EQ(cap.frames_recorded(), 50u);  // data only, ACKs filtered
  EXPECT_EQ(cap.lines().size(), 8u);      // ring bounded
}

TEST(Capture, FormatsRetransmissions) {
  net::Packet p;
  p.protocol = net::Protocol::kTcp;
  p.src = 1;
  p.dst = 2;
  p.payload_bytes = 100;
  p.frame_bytes = net::tcp_frame_bytes(100, false);
  p.tcp.seq = 1000;
  p.tcp.ack = 2000;
  p.tcp.flags.ack = true;
  p.tcp.window = 65535;
  p.tcp.is_retransmit = true;
  const std::string line = tools::format_frame(sim::usec(5), p);
  EXPECT_NE(line.find("seq 1000:1100"), std::string::npos);
  EXPECT_NE(line.find("ack 2000"), std::string::npos);
  EXPECT_NE(line.find("retransmission"), std::string::npos);
}

TEST(Capture, LongLinesAreNotTruncated) {
  // append_format used to drop everything past its 256-byte stack buffer
  // because the snprintf return value was ignored.
  std::string out = "prefix:";
  const std::string big(1000, 'x');
  obs::append_format(out, "[%s]%d", big.c_str(), 42);
  EXPECT_EQ(out, "prefix:[" + big + "]42");

  obs::TraceEvent ev;
  ev.type = obs::EventType::kWireDrop;
  ev.proto = static_cast<std::uint8_t>(net::Protocol::kTcp);
  ev.src = 1;
  ev.dst = 2;
  ev.len = 100;
  const std::string cause(400, 'c');
  ev.detail = cause.c_str();
  const std::string line = tools::format_wire_event(ev);
  EXPECT_NE(line.find("** dropped (" + cause + ")"), std::string::npos);
}

TEST(Netperf, StreamCorrespondsToNttcp) {
  // §3.2: netperf results "correspond" to NTTCP/Iperf.
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cfg = a.endpoint_config();
  cfg.push_per_write = false;
  auto conn = tb.open_connection(a, b, cfg, b.endpoint_config());
  auto s = tools::run_netperf_stream(tb, conn, a, b, {});
  ASSERT_TRUE(s.completed);

  core::Testbed tb2;
  auto& c = tb2.add_host("c", hw::presets::pe2650(), tuning);
  auto& d = tb2.add_host("d", hw::presets::pe2650(), tuning);
  tb2.connect(c, d);
  auto conn2 =
      tb2.open_connection(c, d, c.endpoint_config(), d.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 2000;
  auto n = tools::run_nttcp(tb2, conn2, c, d, opt);
  ASSERT_TRUE(n.completed);
  EXPECT_NEAR(s.throughput_gbps() / n.throughput_gbps(), 1.0, 0.25);
}

TEST(Netperf, RrMatchesNetpipeLatency) {
  // A 1-byte TCP_RR transaction is one netpipe round trip.
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  auto rr = tools::run_netperf_rr(tb, conn, {});
  ASSERT_TRUE(rr.completed);
  // ~36-38 us per transaction (2 x ~18 us one-way) -> ~27k trans/s.
  EXPECT_NEAR(rr.mean_latency_us, 36.5, 4.0);
  EXPECT_GT(rr.transactions_per_sec, 20000.0);
}

TEST(Integrity, HostChecksumDetectsWhatOffloadMisses) {
  auto run = [](bool offload) {
    core::Testbed tb;
    auto tuning = core::TuningProfile::lan_tuned(9000);
    tuning.rx_corruption_rate = 2e-3;
    tuning.csum_offload = offload;
    auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
    auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
    tb.connect(a, b);
    auto conn =
        tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
    tools::NttcpOptions opt;
    opt.payload = 8948;
    opt.count = 2000;
    opt.timeout = sim::sec(300);
    auto r = tools::run_nttcp(tb, conn, a, b, opt);
    EXPECT_TRUE(r.completed);
    struct Out {
      std::uint64_t silent, detected;
    };
    return Out{conn.server->stats().corrupted_delivered,
               b.kernel().csum_drops()};
  };
  const auto offloaded = run(true);
  const auto host = run(false);
  // Offloaded checksums let the damage through silently.
  EXPECT_GT(offloaded.silent, 0u);
  EXPECT_EQ(offloaded.detected, 0u);
  // Host checksums catch it; nothing corrupt reaches the application.
  EXPECT_EQ(host.silent, 0u);
  EXPECT_GT(host.detected, 0u);
}

TEST(Integrity, DetectionCostsCpuButPreservesGoodput) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(9000);
  tuning.rx_corruption_rate = 1e-3;
  tuning.csum_offload = false;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 1500;
  opt.timeout = sim::sec(300);
  auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  // Every byte arrived intact: drops became retransmissions.
  EXPECT_EQ(r.bytes, 8948ull * 1500ull);
  EXPECT_EQ(conn.server->stats().corrupted_delivered, 0u);
  EXPECT_GT(conn.client->stats().retransmits, 0u);
}

}  // namespace
}  // namespace xgbe

// Tests for the observability layer: metrics registry snapshots, the trace
// ring / flight recorder, and the bench helpers built on top of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/churn.hpp"
#include "core/testbed.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/watchdog.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

TEST(Registry, SnapshotIsSortedAndSearchable) {
  obs::Registry reg;
  std::uint64_t hits = 7;
  double load = 0.25;
  sim::OnlineStats lat;
  lat.add(1.0);
  lat.add(3.0);
  reg.gauge("z/cpu_load", [&] { return load; });
  reg.counter("a/hits", [&] { return hits; });
  reg.distribution("m/latency", [&] { return lat; });
  ASSERT_EQ(reg.size(), 3u);

  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].path, "a/hits");
  EXPECT_EQ(snap.samples[1].path, "m/latency");
  EXPECT_EQ(snap.samples[2].path, "z/cpu_load");

  const obs::Sample* s = snap.find("a/hits");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 7u);
  s = snap.find("m/latency");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_DOUBLE_EQ(s->value, 2.0);
  EXPECT_EQ(snap.find("missing"), nullptr);

  // Probes are live: the next snapshot sees the new values.
  hits = 9;
  load = 0.5;
  EXPECT_EQ(reg.snapshot().find("a/hits")->count, 9u);
  EXPECT_DOUBLE_EQ(reg.snapshot().find("z/cpu_load")->value, 0.5);
}

TEST(Registry, ReRegisteringAPathReplacesTheProbe) {
  obs::Registry reg;
  reg.counter("x", [] { return std::uint64_t{1}; });
  reg.counter("x", [] { return std::uint64_t{2}; });
  ASSERT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.snapshot().find("x")->count, 2u);
}

TEST(Registry, RenderingHandlesNonFiniteAndEscapes) {
  obs::Registry reg;
  reg.gauge("bad\"name", [] { return std::nan(""); });
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"bad\\\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":\"nan\""), std::string::npos);
  const std::string csv = reg.snapshot().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "path,kind,value,count,min,max,stddev");
}

// One full transfer with every metric registered; returns the rendered
// snapshot so runs can be compared byte-for-byte.
std::string traced_run_json(obs::TraceSink* sink) {
  core::Testbed tb;
  if (sink != nullptr) tb.set_trace_sink(sink);
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 300;
  EXPECT_TRUE(tools::run_nttcp(tb, conn, a, b, opt).completed);
  obs::Registry reg;
  tb.register_metrics(reg);
  return reg.snapshot().to_json() + "\n@" + std::to_string(tb.now());
}

TEST(Registry, TestbedSnapshotIsDeterministicAcrossRuns) {
  const std::string first = traced_run_json(nullptr);
  const std::string second = traced_run_json(nullptr);
  EXPECT_EQ(first, second);
  // Sanity: the testbed actually exposed the interesting counters.
  EXPECT_NE(first.find("a/tcp/flow1/bytes_acked"), std::string::npos);
  EXPECT_NE(first.find("link/a<->b/frames_delivered"), std::string::npos);
  EXPECT_NE(first.find("b/nic0/rx_frames"), std::string::npos);
}

// Connection-lifecycle counters only appear on hosts that listen (or opt in
// via set_lifecycle_metrics), so the golden fig6/sim_core snapshots never
// grow new paths. This test covers the other side of that bargain: when a
// bench *does* drive a Listener, the lifecycle counters must flow through
// the --json envelope as schema-valid integer counters.
TEST(Registry, LifecycleCountersFlowThroughBenchJson) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& client = tb.add_host("client", hw::presets::pe2650(), tuning);
  auto& server = tb.add_host("server", hw::presets::pe2650(), tuning);
  tb.connect(client, server);
  core::churn::Options opt;
  opt.connections = 30;
  opt.arrival_rate_hz = 2000.0;
  opt.max_bytes = 32768;
  const core::churn::Result res = core::churn::run(tb, client, server, opt);
  ASSERT_EQ(res.completed, 30u);
  ASSERT_TRUE(res.conserved());

  obs::Registry reg;
  tb.register_metrics(reg);
  const obs::Snapshot snap = reg.snapshot();
  const obs::Sample* opens = snap.find("client/conn_opens");
  ASSERT_NE(opens, nullptr);
  EXPECT_EQ(opens->count, 30u);
  const obs::Sample* accepted = snap.find("server/listener/accepted");
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->count, 30u);
  EXPECT_NE(snap.find("server/conn_opens"), nullptr);
  EXPECT_NE(snap.find("server/conn_closes"), nullptr);
  EXPECT_NE(snap.find("server/listener/half_open"), nullptr);

  // Route the snapshot through ResultLog exactly as a bench --json run
  // would, then check the written file by hand against the contract that
  // scripts/check_bench_schema.py enforces: counters are bare integers.
  const char* out_path = "lifecycle_snapshot.json";
  std::string json_flag = std::string("--json=") + out_path;
  char arg0[] = "test_obs";
  char* argv[] = {arg0, json_flag.data()};
  bench::ResultLog& log = bench::ResultLog::instance();
  ASSERT_EQ(log.consume_json_flag(2, argv), 1);
  log.add_snapshot("churn-lan", snap);
  ASSERT_TRUE(log.write());

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string file = buf.str();
  EXPECT_NE(file.find("\"schema\":\"xgbe-bench/3\""), std::string::npos);
  EXPECT_NE(file.find("\"label\":\"churn-lan\""), std::string::npos);
  EXPECT_NE(file.find("\"path\":\"server/listener/accepted\","
                      "\"kind\":\"counter\",\"value\":30}"),
            std::string::npos);
  EXPECT_NE(file.find("\"path\":\"client/conn_opens\","
                      "\"kind\":\"counter\",\"value\":30}"),
            std::string::npos);
  std::remove(out_path);
}

TEST(Trace, ArmingASinkDoesNotPerturbTheSimulation) {
  // The emission sites are pointer-gated and consume no randomness: a traced
  // run must match an untraced one byte-for-byte (metrics and sim clock).
  obs::TraceSink sink(512);
  const std::string untraced = traced_run_json(nullptr);
  const std::string traced = traced_run_json(&sink);
  EXPECT_EQ(untraced, traced);
  EXPECT_GT(sink.recorded(), 0u);
}

TEST(Trace, RingRetainsTheTailInOrder) {
  obs::TraceSink sink(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.type = obs::EventType::kSegTx;
    ev.seq = i;
    sink.record(ev);
  }
  EXPECT_EQ(sink.offered(), 10u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.event(0).seq, 6u);  // oldest retained
  EXPECT_EQ(sink.event(3).seq, 9u);  // newest
  const auto tail = sink.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 8u);
  EXPECT_EQ(tail[1].seq, 9u);
  const auto all = sink.tail(100);  // clamped to what's retained
  ASSERT_EQ(all.size(), 4u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.tail(5).empty());
}

TEST(Trace, FilterSeparatesOfferedFromRecorded) {
  obs::TraceSink sink(16);
  sink.filter = [](const obs::TraceEvent& ev) {
    return ev.type == obs::EventType::kRto;
  };
  obs::TraceEvent rto;
  rto.type = obs::EventType::kRto;
  obs::TraceEvent tx;
  tx.type = obs::EventType::kSegTx;
  sink.record(tx);
  sink.record(rto);
  sink.record(tx);
  EXPECT_EQ(sink.offered(), 3u);
  EXPECT_EQ(sink.recorded(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.event(0).type, obs::EventType::kRto);
}

TEST(Trace, FormatTailAndJsonl) {
  obs::TraceSink sink(8);
  EXPECT_EQ(obs::format_tail(sink, 4), "");  // empty sink: no autopsy noise
  std::ostringstream jsonl;
  sink.stream_to(&jsonl);
  obs::TraceEvent ev;
  ev.at = sim::usec(3);
  ev.type = obs::EventType::kSegDrop;
  ev.src = 1;
  ev.dst = 2;
  ev.flow = 1;
  ev.seq = 100;
  ev.len = 8948;
  ev.where = "nic0";
  ev.detail = "rx-ring-full";
  sink.record(ev);
  ev.type = obs::EventType::kRto;
  ev.detail = "";
  sink.record(ev);

  const std::string tail = obs::format_tail(sink, 8);
  EXPECT_NE(tail.find("last 2 events: "), std::string::npos);
  EXPECT_NE(tail.find("seg-drop"), std::string::npos);
  EXPECT_NE(tail.find("@nic0"), std::string::npos);
  EXPECT_NE(tail.find("(rx-ring-full)"), std::string::npos);
  EXPECT_NE(tail.find(" | "), std::string::npos);
  EXPECT_NE(tail.find("rto"), std::string::npos);

  const std::string lines = jsonl.str();
  EXPECT_NE(lines.find("\"type\":\"seg-drop\""), std::string::npos);
  EXPECT_NE(lines.find("\"detail\":\"rx-ring-full\""), std::string::npos);
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

TEST(Trace, FlightRecorderFeedsWatchdogAutopsy) {
  sim::Simulator sim;
  std::function<void()> spin = [&]() { sim.schedule(sim::usec(10), spin); };
  sim.schedule(0, spin);

  obs::TraceSink sink(16);
  obs::TraceEvent ev;
  ev.type = obs::EventType::kRingStall;
  ev.where = "nic0";
  ev.detail = "rx-ring";
  sink.record(ev);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(10);
  opt.stalled_ticks = 3;
  sim::Watchdog dog(sim, opt);
  std::uint64_t progress = 0;
  dog.watch_progress("bytes", [&]() { return progress; });
  obs::attach_flight_recorder(dog, sink, 8);
  dog.arm();
  sim.run_until(sim::sec(5));
  ASSERT_TRUE(dog.tripped());
  EXPECT_NE(dog.diagnosis().find("flight-recorder"), std::string::npos);
  EXPECT_NE(dog.diagnosis().find("ring-stall"), std::string::npos);
}

TEST(DriveFlows, DeadPathReportsZeroInsteadOfDividingByZero) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);
  std::vector<core::Testbed::Connection> conns;
  conns.push_back(
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config()));
  ASSERT_TRUE(tb.run_until_established(conns[0]));

  // Carrier dies before the measurement: nothing will ever be consumed.
  fault::FaultPlan dead;
  dead.flaps.push_back(fault::LinkFlap{tb.now(), -1});
  wire.set_fault_plan(dead);

  bool progressed = true;
  const double gbps = bench::drive_flows_gbps(tb, conns, sim::msec(5),
                                              sim::msec(20), &progressed);
  EXPECT_EQ(gbps, 0.0);
  EXPECT_FALSE(progressed);
  EXPECT_TRUE(std::isfinite(gbps));
}

TEST(DriveFlows, HealthyPathStillMeasures) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  std::vector<core::Testbed::Connection> conns;
  conns.push_back(
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config()));
  bool progressed = false;
  const double gbps = bench::drive_flows_gbps(tb, conns, sim::msec(5),
                                              sim::msec(20), &progressed);
  EXPECT_GT(gbps, 1.0);
  EXPECT_TRUE(progressed);
}

}  // namespace
}  // namespace xgbe

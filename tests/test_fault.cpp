// Unit tests for the deterministic fault-injection layer: seeded
// reproducibility, Gilbert–Elliott burst structure, carrier flap windows,
// forced-drop scripting, and per-cause counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/host_fault.hpp"
#include "sim/random.hpp"

namespace xgbe {
namespace {

net::Packet data_frame(std::uint32_t payload = 8948) {
  net::Packet pkt;
  pkt.protocol = net::Protocol::kTcp;
  pkt.payload_bytes = payload;
  pkt.frame_bytes = payload + 78;
  return pkt;
}

net::Packet ack_frame() { return data_frame(0); }

std::string decision_fingerprint(fault::FaultInjector& inj, int frames,
                                 sim::SimTime step = sim::usec(10)) {
  std::string out;
  sim::SimTime now = 0;
  for (int i = 0; i < frames; ++i) {
    const auto d = inj.decide(data_frame(), now);
    out += d.drop ? 'D' : '.';
    out += static_cast<char>('0' + static_cast<int>(d.cause));
    if (d.corrupt) out += 'c';
    if (d.duplicate) out += '+';
    out += std::to_string(d.extra_delay);
    out += '/';
    out += std::to_string(d.duplicate_delay);
    out += ' ';
    now += step;
  }
  return out;
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.loss_rate = 0.05;
  plan.corrupt_rate = 0.02;
  plan.duplicate_rate = 0.02;
  plan.reorder_rate = 0.05;
  plan.burst.p_enter_bad = 0.01;
  fault::FaultInjector one(plan);
  fault::FaultInjector two(plan);
  EXPECT_EQ(decision_fingerprint(one, 2000), decision_fingerprint(two, 2000));

  fault::FaultPlan other = plan;
  other.seed = 43;
  fault::FaultInjector three(other);
  EXPECT_NE(decision_fingerprint(one, 2000),
            decision_fingerprint(three, 2000));
}

TEST(FaultInjector, InactivePlanTouchesNothing) {
  fault::FaultInjector inj;
  EXPECT_FALSE(inj.active());
  for (int i = 0; i < 100; ++i) {
    const auto d = inj.decide(data_frame(), sim::usec(i));
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.corrupt);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay, 0);
  }
  EXPECT_EQ(inj.counters().frames_seen, 100u);
  EXPECT_EQ(inj.counters().total_drops(), 0u);
}

TEST(FaultInjector, LossOnlyPlanMatchesRawRngDrawSequence) {
  // The Link's legacy loss knob relied on one chance(loss_rate) draw per
  // frame; a loss-only plan must reproduce that sequence exactly so
  // pre-fault-layer seeds keep their traces.
  fault::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.loss_rate = 0.01;
  fault::FaultInjector inj(plan);
  sim::Rng reference(0x5eed);
  for (int i = 0; i < 5000; ++i) {
    const bool expect_drop = reference.chance(0.01);
    const auto d = inj.decide(data_frame(), 0);
    ASSERT_EQ(d.drop, expect_drop) << "frame " << i;
    if (d.drop) {
      EXPECT_EQ(d.cause, fault::DropCause::kUniform);
    }
  }
  EXPECT_EQ(inj.counters().drops_uniform, inj.counters().total_drops());
}

TEST(FaultInjector, GilbertElliottLossComesInBursts) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.burst.p_enter_bad = 0.002;
  plan.burst.p_exit_bad = 0.25;  // expected burst length 4 frames
  plan.burst.loss_bad = 1.0;
  fault::FaultInjector inj(plan);

  int bursts = 0;
  std::uint64_t lost = 0;
  bool in_burst = false;
  for (int i = 0; i < 200000; ++i) {
    const bool drop = inj.decide(data_frame(), 0).drop;
    lost += drop ? 1 : 0;
    if (drop && !in_burst) ++bursts;
    in_burst = drop;
  }
  ASSERT_GT(bursts, 50);
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_GT(mean_burst, 2.5);  // uniform loss at this rate would give ~1.0
  EXPECT_LT(mean_burst, 6.5);
  EXPECT_EQ(inj.counters().drops_burst, lost);
}

TEST(FaultInjector, FlapDropsExactlyInsideTheWindow) {
  fault::FaultPlan plan;
  plan.flaps.push_back(fault::LinkFlap{sim::msec(10), sim::msec(20)});
  fault::FaultInjector inj(plan);
  EXPECT_TRUE(inj.active());

  EXPECT_FALSE(inj.decide(data_frame(), sim::msec(9)).drop);
  const auto in_window = inj.decide(data_frame(), sim::msec(10));
  EXPECT_TRUE(in_window.drop);
  EXPECT_EQ(in_window.cause, fault::DropCause::kCarrier);
  EXPECT_TRUE(inj.decide(ack_frame(), sim::msec(15)).drop);  // carrier is L1
  EXPECT_FALSE(inj.decide(data_frame(), sim::msec(20)).drop);
  EXPECT_EQ(inj.counters().flaps, 1u);
  EXPECT_EQ(inj.counters().drops_carrier, 2u);
}

TEST(FaultInjector, ForeverFlapNeverComesBack) {
  fault::FaultPlan plan;
  plan.flaps.push_back(fault::LinkFlap{sim::msec(5), -1});
  fault::FaultInjector inj(plan);
  EXPECT_FALSE(inj.decide(data_frame(), 0).drop);
  for (int i = 5; i < 50; i += 5) {
    EXPECT_TRUE(inj.decide(data_frame(), sim::msec(i)).drop);
  }
  EXPECT_EQ(inj.counters().flaps, 1u);
}

TEST(FaultInjector, ForcedDropsHitDataNotAcks) {
  fault::FaultInjector inj;
  inj.inject_drops(2);
  EXPECT_TRUE(inj.active());
  EXPECT_FALSE(inj.decide(ack_frame(), 0).drop);  // ACKs spared
  const auto first = inj.decide(data_frame(), 0);
  EXPECT_TRUE(first.drop);
  EXPECT_EQ(first.cause, fault::DropCause::kForced);
  EXPECT_EQ(inj.pending_forced_drops(), 1);
  EXPECT_TRUE(inj.decide(data_frame(), 0).drop);
  EXPECT_FALSE(inj.decide(data_frame(), 0).drop);
  EXPECT_EQ(inj.counters().drops_forced, 2u);
}

TEST(FaultInjector, CorruptionTargetsPayloadOnly) {
  fault::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  fault::FaultInjector inj(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.decide(data_frame(), 0).corrupt);
    EXPECT_FALSE(inj.decide(ack_frame(), 0).corrupt);
  }
  EXPECT_EQ(inj.counters().corruptions, 50u);
}

TEST(FaultInjector, DuplicateAndReorderDelaysAreBounded) {
  fault::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  plan.reorder_rate = 1.0;
  plan.jitter_max = sim::usec(50);
  fault::FaultInjector inj(plan);
  for (int i = 0; i < 200; ++i) {
    const auto d = inj.decide(data_frame(), 0);
    EXPECT_FALSE(d.drop);
    ASSERT_TRUE(d.duplicate);
    EXPECT_GT(d.duplicate_delay, 0);
    EXPECT_LE(d.duplicate_delay, sim::usec(50));
    EXPECT_GT(d.extra_delay, 0);
    EXPECT_LE(d.extra_delay, sim::usec(50));
  }
  EXPECT_EQ(inj.counters().duplicates, 200u);
  EXPECT_EQ(inj.counters().reorders, 200u);
}

TEST(FaultInjector, DataOnlySparesAcks) {
  fault::FaultPlan plan;
  plan.loss_rate = 1.0;
  plan.data_only = true;
  fault::FaultInjector inj(plan);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(inj.decide(ack_frame(), 0).drop);
    EXPECT_TRUE(inj.decide(data_frame(), 0).drop);
  }
}

TEST(FaultInjector, SetPlanResetsCountersAndState) {
  fault::FaultPlan plan;
  plan.loss_rate = 1.0;
  fault::FaultInjector inj(plan);
  inj.decide(data_frame(), 0);
  EXPECT_EQ(inj.counters().total_drops(), 1u);
  inj.set_plan(fault::FaultPlan{});
  EXPECT_EQ(inj.counters().frames_seen, 0u);
  EXPECT_EQ(inj.counters().total_drops(), 0u);
  EXPECT_FALSE(inj.decide(data_frame(), 0).drop);
}

TEST(FaultCounters, AggregationSumsEveryField) {
  fault::FaultCounters a;
  a.frames_seen = 10;
  a.drops_uniform = 2;
  a.corruptions = 1;
  fault::FaultCounters b;
  b.frames_seen = 5;
  b.drops_burst = 3;
  b.duplicates = 4;
  b.flaps = 1;
  a += b;
  EXPECT_EQ(a.frames_seen, 15u);
  EXPECT_EQ(a.drops_uniform, 2u);
  EXPECT_EQ(a.drops_burst, 3u);
  EXPECT_EQ(a.duplicates, 4u);
  EXPECT_EQ(a.flaps, 1u);
  EXPECT_EQ(a.total_drops(), 5u);
}

// --- Host-path fault injector ------------------------------------------------

TEST(HostFaultInjector, InactivePlanNeverDrawsOrCounts) {
  fault::HostFaultInjector inj;
  EXPECT_FALSE(inj.active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.alloc_fails(16384, /*rx=*/true));
    EXPECT_FALSE(inj.interrupt_missed(sim::usec(i)));
    EXPECT_FALSE(inj.rx_ring_stalled(sim::usec(i)));
    EXPECT_FALSE(inj.dma_throttled(sim::usec(i)));
    EXPECT_EQ(inj.sched_resume_at(sim::usec(i)), 0);
  }
  EXPECT_EQ(inj.counters().allocs_seen, 0u);
}

TEST(HostFaultInjector, AllocBudgetCapsFailures) {
  fault::HostFaultPlan plan;
  plan.with_seed(7).with_alloc_failure(1.0, /*budget=*/3);
  fault::HostFaultInjector inj(plan);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    if (inj.alloc_fails(16384, /*rx=*/true)) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(inj.counters().alloc_fail_rx, 3u);
  EXPECT_EQ(inj.counters().allocs_seen, 50u);
}

TEST(HostFaultInjector, AllocMinBlockSparesSmallOrders) {
  fault::HostFaultPlan plan;
  plan.with_seed(8).with_alloc_failure(1.0, -1, /*min_block=*/8192);
  fault::HostFaultInjector inj(plan);
  EXPECT_FALSE(inj.alloc_fails(256, /*rx=*/true));
  EXPECT_FALSE(inj.alloc_fails(4096, /*rx=*/false));
  EXPECT_TRUE(inj.alloc_fails(8192, /*rx=*/true));
  EXPECT_TRUE(inj.alloc_fails(16384, /*rx=*/false));
  EXPECT_EQ(inj.counters().alloc_fail_rx, 1u);
  EXPECT_EQ(inj.counters().alloc_fail_tx, 1u);
}

TEST(HostFaultInjector, WindowsAreHalfOpenAndPure) {
  fault::HostFaultPlan plan;
  plan.with_rx_ring_stall(sim::msec(10), sim::msec(20))
      .with_dma_throttle(sim::msec(30), sim::msec(40))
      .with_sched_pause(sim::msec(50), sim::msec(60));
  fault::HostFaultInjector inj(plan);
  EXPECT_FALSE(inj.rx_ring_stalled(sim::msec(10) - 1));
  EXPECT_TRUE(inj.rx_ring_stalled(sim::msec(10)));
  EXPECT_TRUE(inj.rx_ring_stalled(sim::msec(20) - 1));
  EXPECT_FALSE(inj.rx_ring_stalled(sim::msec(20)));
  EXPECT_EQ(inj.rx_stall_end(sim::msec(15)), sim::msec(20));
  EXPECT_EQ(inj.rx_stall_end(sim::msec(25)), 0);
  EXPECT_TRUE(inj.dma_throttled(sim::msec(35)));
  EXPECT_FALSE(inj.dma_throttled(sim::msec(45)));
  EXPECT_EQ(inj.sched_resume_at(sim::msec(55)), sim::msec(60));
  EXPECT_EQ(inj.sched_resume_at(sim::msec(65)), 0);
}

TEST(HostFaultInjector, SameSeedSamePlanSameDecisions) {
  fault::HostFaultPlan plan;
  plan.with_seed(99).with_alloc_failure(0.3).with_irq_miss(0.2);
  fault::HostFaultInjector x(plan);
  fault::HostFaultInjector y(plan);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(x.alloc_fails(16384, i % 2 == 0),
              y.alloc_fails(16384, i % 2 == 0));
    EXPECT_EQ(x.interrupt_missed(sim::usec(i)),
              y.interrupt_missed(sim::usec(i)));
  }
  EXPECT_EQ(x.counters().alloc_fail_rx, y.counters().alloc_fail_rx);
  EXPECT_EQ(x.counters().irq_missed, y.counters().irq_missed);
}

TEST(HostFaultInjector, SetPlanResetsCountersBudgetAndRng) {
  fault::HostFaultPlan plan;
  plan.with_seed(5).with_alloc_failure(1.0, /*budget=*/2);
  fault::HostFaultInjector inj(plan);
  while (inj.alloc_fails(16384, true)) {
  }
  EXPECT_EQ(inj.counters().alloc_fail_rx, 2u);
  inj.set_plan(plan);  // re-arm: budget and counters start over
  EXPECT_EQ(inj.counters().alloc_fail_rx, 0u);
  EXPECT_TRUE(inj.alloc_fails(16384, true));
}

TEST(HostFaultCounters, AggregationSumsEveryField) {
  fault::HostFaultCounters a;
  a.allocs_seen = 10;
  a.alloc_fail_rx = 2;
  a.irq_missed = 1;
  fault::HostFaultCounters b;
  b.allocs_seen = 5;
  b.alloc_fail_tx = 3;
  b.ring_stall_drops = 4;
  b.sched_defers = 6;
  a += b;
  EXPECT_EQ(a.allocs_seen, 15u);
  EXPECT_EQ(a.alloc_fail_rx, 2u);
  EXPECT_EQ(a.alloc_fail_tx, 3u);
  EXPECT_EQ(a.ring_stall_drops, 4u);
  EXPECT_EQ(a.irq_missed, 1u);
  EXPECT_EQ(a.sched_defers, 6u);
}

TEST(HostFaultDescribe, RendersPlansAndCounters) {
  fault::HostFaultPlan plan;
  EXPECT_FALSE(fault::describe(plan).empty());
  plan.with_alloc_failure(0.01, 10)
      .with_rx_ring_stall(0, sim::msec(1))
      .with_irq_miss(0.05)
      .with_sched_pause(0, sim::msec(1));
  const std::string text = fault::describe(plan);
  EXPECT_NE(text.find("alloc-fail"), std::string::npos);
  EXPECT_NE(text.find("rx-ring"), std::string::npos);
  EXPECT_NE(text.find("irq-miss"), std::string::npos);
  EXPECT_NE(text.find("sched"), std::string::npos);

  fault::HostFaultCounters c;
  EXPECT_EQ(fault::describe(c), "clean");
  c.alloc_fail_rx = 2;
  c.irq_missed = 1;
  const std::string counters = fault::describe(c);
  EXPECT_NE(counters.find("alloc-fail-rx"), std::string::npos);
  EXPECT_NE(counters.find("irq missed"), std::string::npos);
}

TEST(FaultDescribe, RendersPlansAndCounters) {
  fault::FaultPlan plan;
  EXPECT_FALSE(fault::describe(plan).empty());
  plan.loss_rate = 0.01;
  plan.burst.p_enter_bad = 0.001;
  plan.flaps.push_back(fault::LinkFlap{0, sim::msec(1)});
  const std::string text = fault::describe(plan);
  EXPECT_NE(text.find("loss"), std::string::npos);

  fault::FaultCounters c;
  c.drops_uniform = 2;
  c.corruptions = 1;
  EXPECT_FALSE(fault::describe(c).empty());
}

}  // namespace
}  // namespace xgbe

// Watchdog tests: stalls become clean diagnostic failures instead of hung
// or silently-incomplete runs, and invariant violations trip immediately.
#include <gtest/gtest.h>

#include <string>

#include "core/testbed.hpp"
#include "fault/host_fault.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/watchdog.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

TEST(Watchdog, LivelockTripsWithDiagnosis) {
  sim::Simulator sim;
  // A component livelocked on self-rescheduling events: the queue never
  // drains and no useful work happens.
  std::function<void()> spin = [&]() { sim.schedule(sim::usec(10), spin); };
  sim.schedule(0, spin);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(10);
  opt.stalled_ticks = 5;
  sim::Watchdog dog(sim, opt);
  std::uint64_t progress = 0;
  dog.watch_progress("bytes", [&]() { return progress; });
  std::string reported;
  dog.on_trip = [&](const std::string& why) { reported = why; };
  dog.arm();

  sim.run_until(sim::sec(10));
  EXPECT_TRUE(dog.tripped());
  EXPECT_LT(sim.now(), sim::sec(1));  // stopped at the trip, not the horizon
  EXPECT_NE(dog.diagnosis().find("no forward progress"), std::string::npos);
  EXPECT_NE(dog.diagnosis().find("bytes=0"), std::string::npos);
  EXPECT_EQ(reported, dog.diagnosis());
}

TEST(Watchdog, ProgressSuppressesTripping) {
  sim::Simulator sim;
  std::uint64_t work = 0;
  std::function<void()> tickwork = [&]() {
    ++work;
    sim.schedule(sim::msec(15), tickwork);
  };
  sim.schedule(0, tickwork);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(10);
  opt.stalled_ticks = 3;
  sim::Watchdog dog(sim, opt);
  dog.watch_progress("work", [&]() { return work; });
  dog.arm();
  sim.run_until(sim::sec(5));
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(sim.now(), sim::sec(5));
  dog.disarm();
}

TEST(Watchdog, InvariantViolationTripsImmediately) {
  sim::Simulator sim;
  bool broken = false;
  sim.schedule(sim::msec(55), [&]() { broken = true; });
  // Keep the queue alive past the breakage.
  std::function<void()> spin = [&]() { sim.schedule(sim::msec(1), spin); };
  sim.schedule(0, spin);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(10);
  sim::Watchdog dog(sim, opt);
  dog.add_invariant("snd_una<=snd_nxt", [&]() -> std::string {
    return broken ? "snd_una 5 ahead of snd_nxt 3" : "";
  });
  dog.arm();
  sim.run_until(sim::sec(10));
  ASSERT_TRUE(dog.tripped());
  // First tick after the violation (t=60ms), not the 10 s horizon.
  EXPECT_EQ(sim.now(), sim::msec(60));
  EXPECT_NE(dog.diagnosis().find("snd_una<=snd_nxt"), std::string::npos);
  EXPECT_NE(dog.diagnosis().find("snd_una 5"), std::string::npos);
}

TEST(Watchdog, DisarmedDogNeverFires) {
  sim::Simulator sim;
  std::function<void()> spin = [&]() { sim.schedule(sim::msec(1), spin); };
  sim.schedule(0, spin);
  sim::Watchdog::Options opt;
  opt.interval = sim::msec(10);
  opt.stalled_ticks = 2;
  sim::Watchdog dog(sim, opt);
  std::uint64_t zero = 0;
  dog.watch_progress("none", [&]() { return zero; });
  dog.arm();
  dog.disarm();
  sim.run_until(sim::msec(500));
  EXPECT_FALSE(dog.tripped());
}

// The acceptance scenario: a transfer stalled by a dead link must become a
// clean failure with a diagnosis, not a hang or a silent partial result.
TEST(Watchdog, DeadCarrierConvertsHangIntoDiagnosticFailure) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  ASSERT_TRUE(tb.run_until_established(conn));

  // Total blackout from now on: the carrier goes down and never returns.
  fault::FaultPlan dead;
  dead.flaps.push_back(fault::LinkFlap{tb.now(), -1});
  wire.set_fault_plan(dead);

  for (int i = 0; i < 32; ++i) conn.client->app_send(8948, nullptr);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(100);
  opt.stalled_ticks = 20;  // 2 s without progress = stalled
  sim::Watchdog dog(tb.simulator(), opt);
  dog.watch_progress("acked", [&]() {
    return conn.client->stats().bytes_acked;
  });
  dog.watch_progress("delivered", [&]() {
    return conn.server->stats().bytes_delivered;
  });
  dog.add_invariant("client", [&]() {
    return conn.client->invariant_violation();
  });
  dog.add_invariant("server", [&]() {
    return conn.server->invariant_violation();
  });
  dog.arm();

  tb.run_for(sim::sec(120));
  ASSERT_TRUE(dog.tripped());
  EXPECT_LT(tb.now(), sim::sec(10));  // failed fast, long before the horizon
  EXPECT_NE(dog.diagnosis().find("no forward progress"), std::string::npos);
  EXPECT_EQ(wire.fault_counters().flaps, 1u);
  EXPECT_GT(wire.fault_counters().drops_carrier, 0u);

  // The endpoints were healthy — just cut off. The invariants held.
  EXPECT_EQ(conn.client->invariant_violation(), "");
  EXPECT_EQ(conn.server->invariant_violation(), "");
}

// A permanently stalled rx descriptor ring wedges the transfer; the trip
// autopsy must carry the flight-recorder tail showing *what* was happening
// at the wedge (ring-full drops at the receiver's NIC), not just "no
// progress".
TEST(Watchdog, AutopsyIncludesFlightRecorderTail) {
  core::Testbed tb;
  obs::TraceSink sink(64);
  tb.set_trace_sink(&sink);

  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  // A tiny rx ring on the receiver so the stall fills it within a handful
  // of frames.
  nic::AdapterSpec small;
  small.rx_ring = 8;
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning, small);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  ASSERT_TRUE(tb.run_until_established(conn));

  // The driver stops replenishing the receive ring from now on — forever.
  fault::HostFaultPlan stall;
  stall.with_rx_ring_stall(tb.now(), sim::sec(3600));
  b.set_host_fault_plan(stall);

  for (int i = 0; i < 64; ++i) conn.client->app_send(8948, nullptr);

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(100);
  opt.stalled_ticks = 20;
  sim::Watchdog dog(tb.simulator(), opt);
  dog.watch_progress("delivered", [&]() {
    return conn.server->stats().bytes_delivered;
  });
  obs::attach_flight_recorder(dog, sink, 16);
  dog.arm();

  tb.run_for(sim::sec(120));
  ASSERT_TRUE(dog.tripped());
  const std::string& why = dog.diagnosis();
  EXPECT_NE(why.find("no forward progress"), std::string::npos);
  EXPECT_NE(why.find("flight-recorder"), std::string::npos);
  // The tail names the mechanism: the retransmission loop slamming into the
  // receiver NIC's full ring. (The one-shot kRingStall event from the stall
  // onset has aged out of the tail by trip time — the tail shows the steady
  // state, which is the point.)
  EXPECT_NE(why.find("rx-ring-full"), std::string::npos) << why;
  EXPECT_NE(why.find("retransmission"), std::string::npos) << why;
  EXPECT_GT(b.adapter(0).rx_dropped_ring(), 0u);
}

// A healthy transfer under the same watchdog must never trip it and must
// keep every endpoint invariant green at each tick.
TEST(Watchdog, HealthyTransferNeverTrips) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());

  sim::Watchdog::Options opt;
  opt.interval = sim::msec(5);
  opt.stalled_ticks = 10;
  sim::Watchdog dog(tb.simulator(), opt);
  dog.watch_progress("acked", [&]() {
    return conn.client->stats().bytes_acked;
  });
  dog.add_invariant("client", [&]() {
    return conn.client->invariant_violation();
  });
  dog.add_invariant("server", [&]() {
    return conn.server->invariant_violation();
  });
  dog.arm();

  tools::NttcpOptions nttcp;
  nttcp.payload = 8948;
  nttcp.count = 500;
  const auto r = tools::run_nttcp(tb, conn, a, b, nttcp);
  dog.disarm();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(dog.tripped()) << dog.diagnosis();
}

}  // namespace
}  // namespace xgbe

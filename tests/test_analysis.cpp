// Unit tests for the closed-form models: AIMD recovery (Table 1), window
// alignment (Fig 8), BDP arithmetic, interconnect comparison data.
#include <gtest/gtest.h>

#include "analysis/aimd.hpp"
#include "analysis/bdp.hpp"
#include "analysis/interconnects.hpp"
#include "analysis/window_model.hpp"

namespace xgbe::analysis {
namespace {

TEST(Aimd, WindowSegments) {
  // 10 Gb/s * 120 ms / 8 / 1460 B ~= 102,740 segments.
  EXPECT_NEAR(window_segments(10e9, 0.120, 1460), 102740.0, 100.0);
}

TEST(Aimd, GenevaChicagoStandardMtu) {
  // Table 1: ~1 hr 42-43 min to recover at 10 Gb/s, 120 ms RTT, 1460 MSS.
  const double t = recovery_time_s(10e9, 0.120, 1460);
  EXPECT_NEAR(t / 3600.0, 1.71, 0.05);
}

TEST(Aimd, GenevaChicagoJumbo) {
  // Jumbo frames cut recovery to ~17 minutes.
  const double t = recovery_time_s(10e9, 0.120, 8960);
  EXPECT_NEAR(t / 60.0, 16.7, 0.5);
}

TEST(Aimd, GenevaSunnyvaleStandardMtu) {
  // ~3 hr 51 min at 180 ms RTT.
  const double t = recovery_time_s(10e9, 0.180, 1460);
  EXPECT_NEAR(t / 3600.0, 3.85, 0.1);
}

TEST(Aimd, GenevaSunnyvaleJumbo) {
  const double t = recovery_time_s(10e9, 0.180, 8960);
  EXPECT_NEAR(t / 60.0, 37.7, 1.0);
}

TEST(Aimd, LanRecoveryIsMilliseconds) {
  const double t = recovery_time_s(10e9, 0.04e-3, 1460);
  EXPECT_LT(t, 0.01);
  EXPECT_GT(t, 1e-5);
}

TEST(Aimd, RecoveryQuadraticInRtt) {
  const double t1 = recovery_time_s(10e9, 0.1, 1460);
  const double t2 = recovery_time_s(10e9, 0.2, 1460);
  EXPECT_NEAR(t2 / t1, 4.0, 0.01);  // T ~ B*RTT^2 / (16*MSS)
}

TEST(Aimd, RecoveryInverseInMss) {
  const double t1 = recovery_time_s(10e9, 0.1, 1460);
  const double t2 = recovery_time_s(10e9, 0.1, 2920);
  EXPECT_NEAR(t1 / t2, 2.0, 0.01);
}

TEST(Aimd, DeficitPositiveAndBounded) {
  const double d = deficit_bytes(2.5e9, 0.180, 8960);
  EXPECT_GT(d, 0.0);
  // Cannot exceed what the full rate would have moved in the window.
  const double t = recovery_time_s(2.5e9, 0.180, 8960);
  EXPECT_LT(d, 2.5e9 / 8.0 * t);
}

TEST(Aimd, Table1HasFiveRows) {
  const auto rows = table1_scenarios();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].path, "LAN");
  EXPECT_EQ(rows[1].mss_bytes, 1460u);
  EXPECT_EQ(rows[2].mss_bytes, 8960u);
  EXPECT_DOUBLE_EQ(rows[3].rtt_s, 180e-3);
}

TEST(Aimd, FormatDuration) {
  EXPECT_EQ(format_duration(0.0007), "0.7 ms");
  EXPECT_EQ(format_duration(2.5), "2.5 s");
  EXPECT_EQ(format_duration(1004.0), "17 min");
  EXPECT_EQ(format_duration(6164.0), "1 hr 43 min");
}

TEST(WindowModel, PaperExample) {
  // §3.5.1: 33,000 bytes available, receiver MSS estimate 8948, sender MSS
  // 8960 -> 26,844 advertised (19% loss), 17,920 usable (~50% total loss).
  const WindowAlignment w = align_window(33000, 8948, 8960);
  EXPECT_EQ(w.receiver_window, 26844u);
  EXPECT_EQ(w.sender_window, 17920u);
  EXPECT_NEAR(w.receiver_efficiency, 0.81, 0.01);
  EXPECT_NEAR(w.end_to_end_efficiency, 0.54, 0.01);
}

TEST(WindowModel, Fig8Example) {
  // Fig 8: ~26 KB theoretical window, ~9 KB MSS -> best window 2 segments
  // (18 KB), 31% below the allowance.
  const WindowAlignment w = align_window(26624, 9000, 9000);
  EXPECT_EQ(w.sender_window, 18000u);
  EXPECT_NEAR(w.end_to_end_efficiency, 0.69, 0.02);
}

TEST(WindowModel, MatchedMssSingleRounding) {
  const WindowAlignment w = align_window(65535, 1448, 1448);
  EXPECT_EQ(w.receiver_window, w.sender_window);
  EXPECT_EQ(w.receiver_window % 1448, 0u);
}

TEST(WindowModel, SmallMssNearlyLossless) {
  const WindowAlignment w = align_window(65535, 536, 536);
  EXPECT_GT(w.end_to_end_efficiency, 0.99);
}

TEST(WindowModel, ScaleQuantize) {
  EXPECT_EQ(scale_quantize(0xffffu, 4), 0xfff0u);
  EXPECT_EQ(scale_quantize(1 << 20, 10), 1u << 20);
}

TEST(WindowModel, SegmentsPerWindow) {
  // "about 5.5 packets per window" for 48 KB / 8948 (§3.5.1).
  EXPECT_NEAR(segments_per_window(48000, 8948), 5.4, 0.2);
}

TEST(Bdp, LanIdealWindow) {
  // 10 Gb/s at 19 us one-way -> ~48 KB (§3.3.1).
  EXPECT_NEAR(lan_ideal_window_bytes() / 1024.0, 46.4, 1.0);
}

TEST(Bdp, WanWindow) {
  // OC-48 payload at 180 ms: ~52-54 MB.
  EXPECT_NEAR(bdp_bytes(2.4e9, 0.180) / 1e6, 54.0, 1.0);
}

TEST(Bdp, RcvbufCoversWindow) {
  const std::uint32_t buf = rcvbuf_for_bdp(10e9, 38e-6);
  EXPECT_GT(buf, bdp_bytes(10e9, 38e-6));
}

TEST(Interconnects, PublishedSet) {
  const auto all = published_interconnects();
  ASSERT_EQ(all.size(), 5u);
  // Myrinet/GM: 1.984 Gb/s sustained within 3% of the 2 Gb/s limit.
  EXPECT_NEAR(all[1].bandwidth_gbps / all[1].theoretical_gbps, 0.99, 0.01);
  // QsNet Elan3 latency 4.9 us.
  EXPECT_DOUBLE_EQ(all[3].latency_us, 4.9);
  // TCP/IP rows never require code changes; native APIs do.
  for (const auto& e : all) {
    EXPECT_EQ(e.requires_code_change, e.api != "TCP/IP") << e.name;
  }
}

TEST(Interconnects, PaperSummaryRatios) {
  // "4.11 Gb/s ... over 115% better than Myrinet [TCP/IP]" (§3.5.4 uses
  // 1.853); and latency 19 us ~40% better than GbE's ~32 us.
  EXPECT_NEAR(bandwidth_advantage(4.11, 1.853), 122.0, 5.0);
  EXPECT_NEAR(bandwidth_advantage(4.11, 0.95), 333.0, 10.0);
  EXPECT_NEAR(latency_advantage(19.0, 32.0), 68.0, 5.0);
  EXPECT_LT(latency_advantage(19.0, 4.9), 0.0);  // QsNet native is faster
}

}  // namespace
}  // namespace xgbe::analysis

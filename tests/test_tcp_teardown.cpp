// Tests for connection teardown (FIN state machine) and the zero-window
// persist timer.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct Pair {
  core::Testbed tb;
  core::Host* a = nullptr;
  core::Host* b = nullptr;
  core::Testbed::Connection conn;

  explicit Pair(const core::TuningProfile& tuning,
                const link::LinkSpec& wire = link::LinkSpec{}) {
    a = &tb.add_host("a", hw::presets::pe2650(), tuning);
    b = &tb.add_host("b", hw::presets::pe2650(), tuning);
    tb.connect(*a, *b, wire);
    conn = tb.open_connection(*a, *b, a->endpoint_config(),
                              b->endpoint_config());
    EXPECT_TRUE(tb.run_until_established(conn));
  }
};

TEST(Teardown, ActiveCloseWalksTheStates) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  p.conn.client->close();
  p.tb.run_for(sim::msec(1));
  // Peer acked and sent its own FIN? It has no close() call yet, so the
  // client sits in FIN_WAIT_2 and the server in CLOSE_WAIT (half-close).
  EXPECT_EQ(p.conn.client->state(), tcp::TcpState::kFinWait2);
  EXPECT_EQ(p.conn.server->state(), tcp::TcpState::kCloseWait);

  p.conn.server->close();
  p.tb.run_for(sim::msec(1));
  EXPECT_EQ(p.conn.server->state(), tcp::TcpState::kClosed);
  EXPECT_EQ(p.conn.client->state(), tcp::TcpState::kTimeWait);
  p.tb.run_for(sim::sec(2));  // 2MSL
  EXPECT_EQ(p.conn.client->state(), tcp::TcpState::kClosed);
}

TEST(Teardown, CloseCallbacksFire) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  int closed = 0;
  p.conn.client->on_closed = [&] { ++closed; };
  p.conn.server->on_closed = [&] { ++closed; };
  p.conn.client->close();
  p.conn.server->close();
  p.tb.run_for(sim::sec(3));
  EXPECT_EQ(closed, 2);
}

TEST(Teardown, FinWaitsForQueuedData) {
  // close() right after a large write: every byte must still arrive.
  Pair p(core::TuningProfile::lan_tuned(9000));
  std::uint64_t consumed = 0;
  p.conn.server->on_consumed = [&](std::uint64_t b) { consumed += b; };
  for (int i = 0; i < 50; ++i) p.conn.client->app_send(8948, nullptr);
  p.conn.client->close();
  EXPECT_NE(p.conn.client->state(), tcp::TcpState::kFinWait1)
      << "FIN must not overtake queued data";
  p.tb.run_for(sim::msec(50));
  EXPECT_EQ(consumed, 50ull * 8948ull);
  EXPECT_EQ(p.conn.client->state(), tcp::TcpState::kFinWait2);
}

TEST(Teardown, HalfCloseStillDelivers) {
  // After the client closes, the server side can still push data back
  // (CLOSE_WAIT carries data).
  Pair p(core::TuningProfile::lan_tuned(9000));
  p.conn.client->close();
  p.tb.run_for(sim::msec(1));
  ASSERT_EQ(p.conn.server->state(), tcp::TcpState::kCloseWait);
  std::uint64_t consumed = 0;
  p.conn.client->on_consumed = [&](std::uint64_t b) { consumed += b; };
  p.conn.server->app_send(4096, nullptr);
  p.tb.run_for(sim::msec(5));
  EXPECT_EQ(consumed, 4096u);
}

TEST(Teardown, FinSurvivesLoss) {
  link::LinkSpec lossy;
  lossy.loss_rate = 0.0;  // deterministic: drop exactly the FIN
  Pair p(core::TuningProfile::lan_tuned(9000), lossy);
  // No direct handle to the link here; use a fresh pair with forced drops.
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  ASSERT_TRUE(tb.run_until_established(conn));
  (void)wire;
  // FIN carries no payload so inject_drops (data-only) won't hit it; use a
  // short random-loss window instead: close repeatedly retransmits FIN
  // until acknowledged, so eventually both sides close.
  conn.client->close();
  conn.server->close();
  tb.run_for(sim::sec(5));
  EXPECT_EQ(conn.server->state(), tcp::TcpState::kClosed);
}

TEST(Persist, ZeroWindowProbesUnstick) {
  // Receiver app reads in rare large gulps: the window slams shut, the
  // sender must probe, and every byte still arrives.
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto ca = a.endpoint_config();
  auto cb = b.endpoint_config();
  cb.rcvbuf = 40000;  // tiny buffer: two jumbo truesizes close it
  auto conn = tb.open_connection(a, b, ca, cb);
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 60;
  opt.timeout = sim::sec(120);
  auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 60ull);
}

TEST(Persist, ProbeCounterAdvancesWhenReaderStops) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cb = b.endpoint_config();
  cb.app_reader = false;  // window will close and stay closed
  auto conn = tb.open_connection(a, b, a.endpoint_config(), cb);
  ASSERT_TRUE(tb.run_until_established(conn));
  for (int i = 0; i < 40; ++i) conn.client->app_send(8948, nullptr);
  tb.run_for(sim::sec(10));
  EXPECT_GT(conn.client->stats().window_probes, 0u);
  EXPECT_GT(conn.server->stats().out_of_window, 0u);
  // The connection is stalled, not livelocked: data stopped flowing.
  EXPECT_LT(conn.server->stats().bytes_delivered, 40ull * 8948ull);
}

}  // namespace
}  // namespace xgbe

// Tests for the core facade: tuning profiles, host assembly, testbed
// topology building.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "link/wan.hpp"

namespace xgbe::core {
namespace {

TEST(TuningProfile, StockDefaults) {
  const auto t = TuningProfile::stock(9000);
  EXPECT_EQ(t.mtu, 9000u);
  EXPECT_EQ(t.mmrbc, 0u);  // system default (512 on the Dells)
  EXPECT_EQ(t.kernel, os::KernelMode::kSmp);
  EXPECT_EQ(t.rcvbuf, 87380u);
  EXPECT_TRUE(t.timestamps);
  EXPECT_EQ(t.intr_delay, sim::usec(5));
  EXPECT_FALSE(t.header_splitting);
}

TEST(TuningProfile, LadderOrderAndKnobs) {
  const auto ladder = TuningProfile::ladder(9000);
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_EQ(ladder[0].mmrbc, 0u);
  EXPECT_EQ(ladder[1].mmrbc, 4096u);
  EXPECT_EQ(ladder[1].kernel, os::KernelMode::kSmp);
  EXPECT_EQ(ladder[2].kernel, os::KernelMode::kUniprocessor);
  EXPECT_EQ(ladder[2].rcvbuf, 87380u);
  EXPECT_EQ(ladder[3].rcvbuf, 256u * 1024u);
  // Labels carry the configuration, like the paper's figure legends.
  EXPECT_NE(ladder[3].label.find("256kbuf"), std::string::npos);
}

TEST(TuningProfile, WanProfile) {
  const auto t = TuningProfile::wan(64u * 1024 * 1024);
  EXPECT_EQ(t.mtu, 9000u);
  EXPECT_EQ(t.rcvbuf, 64u * 1024 * 1024);
  EXPECT_GT(t.sndbuf, t.rcvbuf);  // retransmit queue truesize headroom
  EXPECT_EQ(t.txqueuelen, 10000u);
}

TEST(TuningProfile, FutureOffload) {
  const auto t = TuningProfile::future_offload(9000);
  EXPECT_TRUE(t.header_splitting);
  EXPECT_TRUE(t.adapter_on_mch);
  EXPECT_EQ(t.intr_delay, 0);
}

TEST(Host, EndpointConfigDerivesFromTuning) {
  Testbed tb;
  auto t = TuningProfile::with_big_windows(8160);
  t.timestamps = false;
  t.tso = true;
  auto& h = tb.add_host("h", hw::presets::pe2650(), t);
  const auto cfg = h.endpoint_config();
  EXPECT_EQ(cfg.mtu, 8160u);
  EXPECT_FALSE(cfg.timestamps);
  EXPECT_TRUE(cfg.tso);
  EXPECT_EQ(cfg.rcvbuf, 256u * 1024u);
}

TEST(Host, MmrbcFallsBackToSystemDefault) {
  Testbed tb;
  auto& dell = tb.add_host("dell", hw::presets::pe2650(),
                           TuningProfile::stock(9000));
  EXPECT_EQ(dell.adapter().mmrbc(), 512u);
  auto& intel = tb.add_host("intel", hw::presets::intel_e7505(),
                            TuningProfile::stock(9000));
  EXPECT_EQ(intel.adapter().mmrbc(), 4096u);
  auto& tuned = tb.add_host("tuned", hw::presets::pe2650(),
                            TuningProfile::with_pci_burst(9000));
  EXPECT_EQ(tuned.adapter().mmrbc(), 4096u);
}

TEST(Host, AddAdapterReturnsIndices) {
  Testbed tb;
  auto& h = tb.add_host("h", hw::presets::pe2650(),
                        TuningProfile::lan_tuned(9000));
  EXPECT_EQ(h.adapter_count(), 1u);
  const auto second = h.add_adapter(nic::intel_pro10gbe());
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(h.adapter_count(), 2u);
  // Independent PCI-X segments.
  EXPECT_NE(&h.adapter(0).pci_bus(), &h.adapter(1).pci_bus());
}

TEST(Testbed, NodeIdsUnique) {
  Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(),
                        TuningProfile::stock(1500));
  auto& b = tb.add_host("b", hw::presets::pe2650(),
                        TuningProfile::stock(1500));
  auto& c = tb.add_host("c", hw::presets::pe2650(),
                        TuningProfile::stock(1500));
  EXPECT_NE(a.node(), b.node());
  EXPECT_NE(b.node(), c.node());
}

TEST(Testbed, EstablishTimesOutWithoutTopology) {
  Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(),
                        TuningProfile::stock(1500));
  auto& b = tb.add_host("b", hw::presets::pe2650(),
                        TuningProfile::stock(1500));
  // No link: the SYN goes nowhere; establishment must fail, not hang.
  auto conn = tb.open_connection(a, b, a.endpoint_config(),
                                 b.endpoint_config());
  EXPECT_FALSE(tb.run_until_established(conn, sim::msec(50)));
  EXPECT_GE(tb.now(), sim::msec(50));
}

TEST(Testbed, WanPathConnectsEndToEnd) {
  Testbed tb;
  const auto tuning = TuningProfile::wan(32u * 1024 * 1024);
  auto& a = tb.add_host("a", hw::presets::wan_endpoint(), tuning);
  auto& b = tb.add_host("b", hw::presets::wan_endpoint(), tuning);
  const auto circuits = tb.build_wan_path(
      a, b,
      {link::wan::oc192_pos(100.0), link::wan::oc48_pos(100.0)},
      link::wan::router_spec());
  ASSERT_EQ(circuits.size(), 2u);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  ASSERT_TRUE(tb.run_until_established(conn));
  // Data crosses both circuits.
  bool done = false;
  conn.server->on_consumed = [&](std::uint64_t) { done = true; };
  conn.client->app_send(8948, nullptr);
  tb.run_for(sim::msec(50));
  EXPECT_TRUE(done);
  EXPECT_GT(circuits[0]->frames_delivered(), 0u);
  EXPECT_GT(circuits[1]->frames_delivered(), 0u);
}

TEST(Testbed, SwitchTopologyLearnsHosts) {
  Testbed tb;
  const auto tuning = TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& sw = tb.add_switch();
  tb.connect_to_switch(a, sw);
  tb.connect_to_switch(b, sw);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  EXPECT_TRUE(tb.run_until_established(conn));
  EXPECT_EQ(sw.dropped_no_route(), 0u);
  EXPECT_GT(sw.forwarded(), 0u);
}

}  // namespace
}  // namespace xgbe::core

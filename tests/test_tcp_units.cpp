// Unit tests for TCP building blocks: RTT estimation, congestion control,
// window advertising, reassembly.
#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "tcp/cwnd.hpp"
#include "tcp/reassembly.hpp"
#include "tcp/rtt.hpp"
#include "tcp/window.hpp"

namespace xgbe::tcp {
namespace {

TEST(Rtt, FirstSampleInitializes) {
  RttEstimator r;
  EXPECT_FALSE(r.has_estimate());
  EXPECT_EQ(r.rto(), RttEstimator::kInitialRto);
  r.sample(sim::msec(100));
  EXPECT_TRUE(r.has_estimate());
  EXPECT_EQ(r.srtt(), sim::msec(100));
  EXPECT_EQ(r.rttvar(), sim::msec(50));
}

TEST(Rtt, ConvergesToSteadyRtt) {
  RttEstimator r;
  for (int i = 0; i < 100; ++i) r.sample(sim::msec(10));
  EXPECT_NEAR(static_cast<double>(r.srtt()),
              static_cast<double>(sim::msec(10)), sim::msec(1));
  EXPECT_LT(r.rttvar(), sim::msec(1));
}

TEST(Rtt, RtoClampedToMinimum) {
  RttEstimator r;
  for (int i = 0; i < 50; ++i) r.sample(sim::usec(20));
  EXPECT_EQ(r.rto(), RttEstimator::kMinRto);  // Linux 200 ms floor
}

TEST(Rtt, BackoffDoublesAndResets) {
  RttEstimator r;
  r.sample(sim::msec(100));
  const auto base = r.rto();
  r.backoff();
  EXPECT_EQ(r.rto(), 2 * base);
  r.backoff();
  EXPECT_EQ(r.rto(), 4 * base);
  r.sample(sim::msec(100));
  // Backoff cleared; rttvar has decayed slightly, so rto is at or below
  // the original base.
  EXPECT_LE(r.rto(), base);
  EXPECT_GE(r.rto(), base / 2);
}

TEST(Rtt, MinRttTracksFloor) {
  RttEstimator r;
  r.sample(sim::msec(30));
  r.sample(sim::msec(10));
  r.sample(sim::msec(50));
  EXPECT_EQ(r.min_rtt(), sim::msec(10));
}

TEST(Cwnd, SlowStartDoublesPerWindow) {
  CongestionControl cc(2);
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ack(2);  // acking a full window doubles it
  EXPECT_EQ(cc.cwnd(), 4u);
  cc.on_ack(4);
  EXPECT_EQ(cc.cwnd(), 8u);
}

TEST(Cwnd, CongestionAvoidanceLinear) {
  CongestionControl cc(2);
  cc.on_fast_retransmit(20);  // ssthresh = 10
  cc.on_recovery_exit();
  EXPECT_EQ(cc.cwnd(), 10u);
  EXPECT_FALSE(cc.in_slow_start());
  cc.on_ack(10);  // one window's worth of ACKs -> +1
  EXPECT_EQ(cc.cwnd(), 11u);
  cc.on_ack(11);
  EXPECT_EQ(cc.cwnd(), 12u);
}

TEST(Cwnd, FastRetransmitHalvesWindow) {
  CongestionControl cc(2);
  cc.on_ack(62);  // grow to 64 in slow start
  EXPECT_EQ(cc.cwnd(), 64u);
  EXPECT_TRUE(cc.on_fast_retransmit(64));
  EXPECT_TRUE(cc.in_recovery());
  EXPECT_EQ(cc.ssthresh(), 32u);
  EXPECT_EQ(cc.cwnd(), 32u);
  EXPECT_EQ(cc.usable_cwnd(), 35u);  // +3 dupacks inflation
  EXPECT_FALSE(cc.on_fast_retransmit(64));  // no re-entry
}

TEST(Cwnd, RecoveryInflationAndExit) {
  CongestionControl cc(2);
  cc.on_ack(30);
  cc.on_fast_retransmit(32);
  cc.on_dupack_in_recovery();
  cc.on_dupack_in_recovery();
  EXPECT_EQ(cc.usable_cwnd(), cc.cwnd() + 5);
  cc.on_recovery_exit();
  EXPECT_FALSE(cc.in_recovery());
  EXPECT_EQ(cc.usable_cwnd(), cc.cwnd());
  EXPECT_EQ(cc.cwnd(), cc.ssthresh());
}

TEST(Cwnd, TimeoutCollapsesToOne) {
  CongestionControl cc(2);
  cc.on_ack(62);
  cc.on_timeout(64);
  EXPECT_EQ(cc.cwnd(), 1u);
  EXPECT_EQ(cc.ssthresh(), 32u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Cwnd, SsthreshNeverBelowTwo) {
  CongestionControl cc(2);
  cc.on_timeout(1);
  EXPECT_EQ(cc.ssthresh(), 2u);
}

TEST(Cwnd, ClampStopsGrowth) {
  CongestionControl cc(2);
  cc.set_clamp(16);
  cc.on_ack(100);
  EXPECT_EQ(cc.cwnd(), 16u);
}

TEST(Cwnd, GrowthSuspendedInRecovery) {
  CongestionControl cc(2);
  cc.on_ack(30);
  cc.on_fast_retransmit(32);
  const auto w = cc.cwnd();
  cc.on_ack(10);
  EXPECT_EQ(cc.cwnd(), w);
}

TEST(WindowAdvertiser, RoundsDownToMss) {
  WindowAdvertiser w(true, 1 << 30);
  // The paper's §3.5.1 example: 33000 bytes available, 8948-byte MSS
  // estimate -> 26844 advertised.
  EXPECT_EQ(w.select(33000, 8948, 0), 26844u);
}

TEST(WindowAdvertiser, NoRoundingWhenDisabled) {
  WindowAdvertiser w(false, 1 << 30);
  EXPECT_EQ(w.select(33000, 8948, 0), 33000u);
}

TEST(WindowAdvertiser, NeverShrinksRightEdge) {
  WindowAdvertiser w(true, 1 << 30);
  EXPECT_EQ(w.select(50000, 1000, 0), 50000u);
  // Free space collapsed but the edge was already promised.
  EXPECT_EQ(w.select(10000, 1000, 20000), 30000u);
}

TEST(WindowAdvertiser, EdgeAdvancesWithRcvNxt) {
  WindowAdvertiser w(true, 1 << 30);
  w.select(50000, 1000, 0);
  // rcv_nxt advanced past old edge; full space available again.
  EXPECT_EQ(w.select(50000, 1000, 60000), 50000u);
  EXPECT_EQ(w.rcv_adv(), 110000u);
}

TEST(WindowAdvertiser, ClampAppliesBeforeRounding) {
  WindowAdvertiser w(true, 65535);
  EXPECT_EQ(w.select(1000000, 8948, 0), 62636u);  // 7 * 8948
}

TEST(SenderWindow, PaperFig8Example) {
  // Receiver advertises 26844 (rounded with MSS 8948); the sender's own MSS
  // is 8960, leaving 2 * 8960 = 17920 usable — "nearly 50% smaller than the
  // actual available socket memory" (§3.5.1).
  EXPECT_EQ(sender_usable_window(26844, 8960), 17920u);
}

TEST(Reassembly, InOrderDelivery) {
  Reassembly r(100);
  EXPECT_EQ(r.offer(100, 50), 50u);
  EXPECT_EQ(r.rcv_nxt(), 150u);
  EXPECT_EQ(r.offer(150, 50), 50u);
  EXPECT_EQ(r.rcv_nxt(), 200u);
}

TEST(Reassembly, OutOfOrderHeldThenDrained) {
  Reassembly r(0);
  EXPECT_EQ(r.offer(100, 100), 0u);  // hole at 0
  EXPECT_EQ(r.ooo_bytes(), 100u);
  EXPECT_EQ(r.offer(0, 100), 200u);  // fills the hole, drains the range
  EXPECT_EQ(r.rcv_nxt(), 200u);
  EXPECT_EQ(r.ooo_bytes(), 0u);
}

TEST(Reassembly, DuplicateDetection) {
  Reassembly r(0);
  r.offer(0, 100);
  EXPECT_TRUE(r.is_duplicate(0, 100));
  EXPECT_TRUE(r.is_duplicate(50, 50));
  EXPECT_FALSE(r.is_duplicate(50, 100));
  r.offer(200, 100);
  EXPECT_TRUE(r.is_duplicate(200, 100));
  EXPECT_FALSE(r.is_duplicate(150, 100));
}

TEST(Reassembly, OverlapTrimming) {
  Reassembly r(0);
  r.offer(0, 100);
  EXPECT_EQ(r.offer(50, 100), 50u);  // first half duplicate
  EXPECT_EQ(r.rcv_nxt(), 150u);
}

TEST(Reassembly, CoalescesAdjacentRanges) {
  Reassembly r(0);
  r.offer(100, 100);
  r.offer(300, 100);
  EXPECT_EQ(r.ooo_ranges(), 2u);
  r.offer(200, 100);  // bridges the two
  EXPECT_EQ(r.ooo_ranges(), 1u);
  EXPECT_EQ(r.offer(0, 100), 400u);
}

// Property: any permutation of segment arrival delivers every byte once.
class ReassemblyShuffle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReassemblyShuffle, AllBytesDeliveredExactlyOnce) {
  sim::Rng rng(GetParam());
  constexpr std::uint32_t kSegments = 64;
  constexpr std::uint32_t kSegLen = 1000;
  std::vector<std::uint32_t> order(kSegments);
  for (std::uint32_t i = 0; i < kSegments; ++i) order[i] = i;
  for (std::uint32_t i = kSegments - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(i + 1)]);
  }
  Reassembly r(0);
  std::uint64_t delivered = 0;
  for (std::uint32_t idx : order) {
    delivered += r.offer(idx * kSegLen, kSegLen);
    // Duplicates must deliver nothing.
    delivered += r.offer(idx * kSegLen, kSegLen);
  }
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kSegments) * kSegLen);
  EXPECT_EQ(r.rcv_nxt(), kSegments * kSegLen);
  EXPECT_EQ(r.ooo_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyShuffle,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 9999u));

// Property: window rounding loses less than one MSS, never goes negative,
// and is idempotent.
struct WindowCase {
  std::uint32_t space;
  std::uint32_t mss;
};

class WindowRounding : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowRounding, LosesLessThanOneMss) {
  const auto [space, mss] = GetParam();
  WindowAdvertiser w(true, 1 << 30);
  const std::uint32_t win = w.select(space, mss, 0);
  EXPECT_LE(win, space);
  EXPECT_EQ(win % mss, 0u);
  EXPECT_LT(space - win, mss);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowRounding,
    ::testing::Values(WindowCase{65535, 1448}, WindowCase{65535, 8948},
                      WindowCase{48000, 8948}, WindowCase{196608, 8948},
                      WindowCase{196608, 1448}, WindowCase{33000, 8948},
                      WindowCase{8947, 8948}, WindowCase{8948, 8948},
                      WindowCase{1000000, 15948}));

}  // namespace
}  // namespace xgbe::tcp

// Unit tests for links, the switch, and WAN circuit presets.
#include <gtest/gtest.h>

#include <vector>

#include "link/device.hpp"
#include "link/link.hpp"
#include "link/switch.hpp"
#include "link/wan.hpp"
#include "net/headers.hpp"

namespace xgbe::link {
namespace {

class SinkDevice : public NetDevice {
 public:
  void deliver(const net::Packet& pkt) override {
    packets.push_back(pkt);
    if (on_deliver) on_deliver(pkt);
  }
  std::vector<net::Packet> packets;
  std::function<void(const net::Packet&)> on_deliver;
};

net::Packet tcp_frame(std::uint32_t payload, net::NodeId src = 1,
                      net::NodeId dst = 2) {
  net::Packet p;
  p.protocol = net::Protocol::kTcp;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = payload;
  p.frame_bytes = net::tcp_frame_bytes(payload, true);
  return p;
}

TEST(Link, SerializationPlusPropagation) {
  sim::Simulator s;
  LinkSpec spec;
  spec.rate_bps = 10e9;
  spec.propagation = sim::nsec(450);
  Link l(s, spec, "x");
  SinkDevice a, b;
  l.attach_a(&a);
  l.attach_b(&b);

  const net::Packet p = tcp_frame(1448);  // frame 1518, wire 1538
  sim::SimTime arrival = -1;
  b.on_deliver = [&](const net::Packet&) { arrival = s.now(); };
  l.transmit(&a, p);
  s.run();
  EXPECT_EQ(arrival, 1538 * 800 + sim::nsec(450));
}

TEST(Link, FullDuplexDirectionsIndependent) {
  sim::Simulator s;
  Link l(s, LinkSpec{}, "x");
  SinkDevice a, b;
  l.attach_a(&a);
  l.attach_b(&b);
  l.transmit(&a, tcp_frame(8948));
  l.transmit(&b, tcp_frame(8948, 2, 1));
  s.run();
  // Both directions delivered; neither serialized behind the other.
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(Link, BackToBackFramesQueueOnWire) {
  sim::Simulator s;
  Link l(s, LinkSpec{}, "x");
  SinkDevice a, b;
  l.attach_a(&a);
  l.attach_b(&b);
  std::vector<sim::SimTime> arrivals;
  b.on_deliver = [&](const net::Packet&) { arrivals.push_back(s.now()); };
  const net::Packet p = tcp_frame(1448);
  l.transmit(&a, p);
  l.transmit(&a, p);
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 1538 * 800);  // one wire time apart
}

TEST(Link, QueueLimitTailDrops) {
  sim::Simulator s;
  LinkSpec spec;
  spec.rate_bps = 1e9;
  spec.queue_limit_bytes = 4000;
  Link l(s, spec, "x");
  SinkDevice a, b;
  l.attach_a(&a);
  l.attach_b(&b);
  for (int i = 0; i < 5; ++i) l.transmit(&a, tcp_frame(1448));
  s.run();
  EXPECT_GT(l.drops_queue(), 0u);
  EXPECT_LT(b.packets.size(), 5u);
  EXPECT_EQ(b.packets.size() + l.drops_queue(), 5u);
}

TEST(Link, RandomLossDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator s;
    LinkSpec spec;
    spec.loss_rate = 0.1;
    spec.loss_seed = seed;
    Link l(s, spec, "x");
    SinkDevice a, b;
    l.attach_a(&a);
    l.attach_b(&b);
    for (int i = 0; i < 1000; ++i) l.transmit(&a, tcp_frame(100));
    s.run();
    return l.drops_random();
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NEAR(static_cast<double>(run_once(5)), 100.0, 40.0);
}

TEST(Link, PosFramingReplacesEthernet) {
  sim::Simulator s;
  LinkSpec spec = wan::oc48_pos(1.0);
  Link l(s, spec, "x");
  const net::Packet p = tcp_frame(8948);
  // POS occupancy: IP packet (frame - 18 eth) + 9 POS bytes.
  EXPECT_EQ(l.occupancy_bytes(p), p.frame_bytes - 18 + 9);
  EXPECT_LT(l.effective_rate_bps(), wan::kOc48LineRateBps);
  EXPECT_NEAR(l.effective_rate_bps(), 2.388e9, 2e7);
}

TEST(Wan, PropagationMatchesFiber) {
  // ~4.9 us per km.
  EXPECT_EQ(wan::propagation_for_km(1000.0), sim::usec_f(4900));
}

TEST(Wan, RecordPathRttNear180ms) {
  const sim::SimTime one_way =
      wan::propagation_for_km(wan::kSunnyvaleChicagoKm) +
      wan::propagation_for_km(wan::kChicagoGenevaKm);
  EXPECT_NEAR(2 * sim::to_seconds(one_way), 0.176, 0.01);
}

class SwitchFixture : public ::testing::Test {
 protected:
  SwitchFixture() : sw_(s_, SwitchSpec{}, "sw") {
    for (int i = 0; i < 3; ++i) {
      links_.push_back(std::make_unique<Link>(s_, LinkSpec{}, "l"));
      hosts_.push_back(std::make_unique<SinkDevice>());
      links_.back()->attach_a(hosts_.back().get());
      sw_.add_port(links_.back().get(), /*side_a=*/false);
      sw_.learn(static_cast<net::NodeId>(i + 1), i);
    }
  }
  sim::Simulator s_;
  EthernetSwitch sw_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SinkDevice>> hosts_;
};

TEST_F(SwitchFixture, ForwardsByDestination) {
  links_[0]->transmit(hosts_[0].get(), tcp_frame(100, 1, 3));
  s_.run();
  EXPECT_EQ(hosts_[2]->packets.size(), 1u);
  EXPECT_EQ(hosts_[1]->packets.size(), 0u);
  EXPECT_EQ(sw_.forwarded(), 1u);
}

TEST_F(SwitchFixture, DropsUnknownDestination) {
  links_[0]->transmit(hosts_[0].get(), tcp_frame(100, 1, 99));
  s_.run();
  EXPECT_EQ(sw_.dropped_no_route(), 1u);
  EXPECT_EQ(sw_.forwarded(), 0u);
}

TEST_F(SwitchFixture, AddsFabricLatency) {
  sim::SimTime direct = 0, switched = 0;
  {
    sim::Simulator s;
    Link l(s, LinkSpec{}, "d");
    SinkDevice a, b;
    l.attach_a(&a);
    l.attach_b(&b);
    b.on_deliver = [&](const net::Packet&) { direct = s.now(); };
    l.transmit(&a, tcp_frame(1));
    s.run();
  }
  hosts_[1]->on_deliver = [&](const net::Packet&) { switched = s_.now(); };
  links_[0]->transmit(hosts_[0].get(), tcp_frame(1, 1, 2));
  s_.run();
  // Through-switch latency adds store-and-forward + fabric: the paper's
  // 19 us vs 25 us delta.
  EXPECT_GT(switched, direct + sim::usec(5));
  EXPECT_LT(switched, direct + sim::usec(8));
}

TEST_F(SwitchFixture, PortBufferTailDrop) {
  // Shrink the egress buffer and flood one output from another port.
  sim::Simulator s;
  SwitchSpec spec;
  spec.port_buffer_bytes = 8000;
  EthernetSwitch sw(s, spec, "small");
  Link in(s, LinkSpec{}, "in"), out(s, LinkSpec{.rate_bps = 1e8}, "out");
  SinkDevice src, dst;
  in.attach_a(&src);
  out.attach_a(&dst);
  sw.add_port(&in, false);
  sw.add_port(&out, false);
  sw.learn(1, 0);
  sw.learn(2, 1);
  for (int i = 0; i < 20; ++i) in.transmit(&src, tcp_frame(1448, 1, 2));
  s.run();
  EXPECT_GT(sw.dropped_queue_full(), 0u);
  EXPECT_EQ(dst.packets.size() + sw.dropped_queue_full(), 20u);
}

TEST(SwitchAggregation, ManyInputsToOneOutput) {
  // Fan-in: three senders to one receiver through the switch; all frames
  // arrive, serialized on the single egress wire.
  sim::Simulator s;
  EthernetSwitch sw(s, SwitchSpec{}, "sw");
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<SinkDevice>> hosts;
  for (int i = 0; i < 4; ++i) {
    links.push_back(std::make_unique<Link>(s, LinkSpec{}, "l"));
    hosts.push_back(std::make_unique<SinkDevice>());
    links.back()->attach_a(hosts.back().get());
    sw.add_port(links.back().get(), false);
    sw.learn(static_cast<net::NodeId>(i + 1), i);
  }
  for (int sender = 1; sender < 4; ++sender) {
    for (int k = 0; k < 10; ++k) {
      links[static_cast<size_t>(sender)]->transmit(
          hosts[static_cast<size_t>(sender)].get(),
          tcp_frame(8948, static_cast<net::NodeId>(sender + 1), 1));
    }
  }
  s.run();
  EXPECT_EQ(hosts[0]->packets.size(), 30u);
}

}  // namespace
}  // namespace xgbe::link

// Chaos soak: drives NTTCP transfers across LAN and WAN-profile links under
// >= 20 seeded wire-fault plans (uniform and bursty loss, payload
// corruption, duplication, reordering, carrier flaps, and combinations) and
// >= 15 seeded host-fault plans (skb allocation failure, descriptor-ring
// stalls, missed/storming interrupts, DMA throttling, scheduler pauses, and
// wire+host combinations), asserting for every plan that
//   - every byte is delivered exactly once, in order (integrity oracle),
//   - nothing is silently corrupted while checksums are on,
//   - the connection always reaches a clean teardown,
//   - the drop ledger reconciles exactly: every frame offered to the
//     network is delivered or accounted to a named drop cause,
//   - a rerun of the same plan reproduces bit-identical statistics,
// with a watchdog checking endpoint invariants and forward progress at
// every tick, so a stall or a broken invariant becomes a readable failure
// instead of a hang. A fault that can never recover (a permanent ring
// stall) must trip the watchdog with an autopsy naming the injected cause.
//
// Set XGBE_CHAOS_SEED to decorrelate every plan's RNG seed (the value is
// XOR-folded into each seed); the active seeds are echoed in every failure
// message so a CI hit is reproducible locally.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/host_fault.hpp"
#include "fault/oracle.hpp"
#include "sim/watchdog.hpp"
#include "tools/drop_report.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct SoakConfig {
  std::string name;
  fault::FaultPlan plan;           // wire faults (link-hosted)
  fault::HostFaultPlan host_rx;    // host faults armed on the receiver
  fault::HostFaultPlan host_tx;    // host faults armed on the sender
  bool wan = false;        // long-propagation bottleneck profile
  bool host_csum = false;  // software checksums (required for corruption)
  std::uint32_t payload = 8948;
  std::uint32_t count = 600;
  std::uint32_t rx_ring = 0;  // override adapter ring depth (0 = default)
  sim::SimTime timeout = sim::sec(600);
};

struct SoakOutcome {
  bool completed = false;
  bool client_closed = false;
  bool server_closed = false;
  bool tripped = false;
  bool conserved = false;
  std::string diagnosis;
  std::string ledger;
  fault::IntegrityReport integrity;
  std::string fingerprint;
};

/// XGBE_CHAOS_SEED, parsed once per call; returns false when unset.
bool chaos_seed_override(std::uint64_t& seed) {
  const char* env = std::getenv("XGBE_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return false;
  seed = std::strtoull(env, nullptr, 0);
  return true;
}

std::string stats_fingerprint(const tcp::EndpointStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "seg=%llu/%llu bytes=%llu/%llu/%llu/%llu retx=%llu fast=%llu "
      "rto=%llu dupack=%llu/%llu acks=%llu wup=%llu drops=%llu probes=%llu "
      "oow=%llu corrupt=%llu",
      static_cast<unsigned long long>(s.segments_sent),
      static_cast<unsigned long long>(s.segments_received),
      static_cast<unsigned long long>(s.bytes_sent),
      static_cast<unsigned long long>(s.bytes_acked),
      static_cast<unsigned long long>(s.bytes_delivered),
      static_cast<unsigned long long>(s.bytes_consumed),
      static_cast<unsigned long long>(s.retransmits),
      static_cast<unsigned long long>(s.fast_retransmits),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.dupacks_received),
      static_cast<unsigned long long>(s.dupacks_sent),
      static_cast<unsigned long long>(s.acks_sent),
      static_cast<unsigned long long>(s.window_update_acks),
      static_cast<unsigned long long>(s.rcv_buffer_drops),
      static_cast<unsigned long long>(s.window_probes),
      static_cast<unsigned long long>(s.out_of_window),
      static_cast<unsigned long long>(s.corrupted_delivered));
  return buf;
}

std::string fault_fingerprint(const fault::FaultCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seen=%llu f=%llu u=%llu b=%llu c=%llu corrupt=%llu "
                "dup=%llu reord=%llu flap=%llu",
                static_cast<unsigned long long>(c.frames_seen),
                static_cast<unsigned long long>(c.drops_forced),
                static_cast<unsigned long long>(c.drops_uniform),
                static_cast<unsigned long long>(c.drops_burst),
                static_cast<unsigned long long>(c.drops_carrier),
                static_cast<unsigned long long>(c.corruptions),
                static_cast<unsigned long long>(c.duplicates),
                static_cast<unsigned long long>(c.reorders),
                static_cast<unsigned long long>(c.flaps));
  return buf;
}

std::string host_fault_fingerprint(const fault::HostFaultCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seen=%llu afrx=%llu aftx=%llu rstall=%llu tstall=%llu "
                "im=%llu ir=%llu storm=%llu dma=%llu sched=%llu",
                static_cast<unsigned long long>(c.allocs_seen),
                static_cast<unsigned long long>(c.alloc_fail_rx),
                static_cast<unsigned long long>(c.alloc_fail_tx),
                static_cast<unsigned long long>(c.ring_stall_drops),
                static_cast<unsigned long long>(c.tx_ring_stalls),
                static_cast<unsigned long long>(c.irq_missed),
                static_cast<unsigned long long>(c.irq_recovered),
                static_cast<unsigned long long>(c.irq_storm_interrupts),
                static_cast<unsigned long long>(c.dma_throttled),
                static_cast<unsigned long long>(c.sched_defers));
  return buf;
}

/// One SCOPED_TRACE line that reproduces the run: plan name, the active
/// seeds (after any XGBE_CHAOS_SEED fold), and every armed fault knob.
std::string trace_line(const SoakConfig& cfg) {
  std::string line = cfg.name + " [wire seed=" +
                     std::to_string(cfg.plan.seed) + " " +
                     fault::describe(cfg.plan) + "]";
  if (cfg.host_rx.active()) {
    line += " [host-rx " + fault::describe(cfg.host_rx) + "]";
  }
  if (cfg.host_tx.active()) {
    line += " [host-tx " + fault::describe(cfg.host_tx) + "]";
  }
  std::uint64_t s = 0;
  if (chaos_seed_override(s)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " [XGBE_CHAOS_SEED=0x%llx]",
                  static_cast<unsigned long long>(s));
    line += buf;
  }
  return line;
}

SoakOutcome run_soak(const SoakConfig& cfg) {
  core::Testbed tb;
  auto tuning = cfg.wan ? core::TuningProfile::with_big_windows(9000)
                        : core::TuningProfile::lan_tuned(9000);
  if (cfg.host_csum) tuning.csum_offload = false;
  nic::AdapterSpec aspec = nic::intel_pro10gbe();
  if (cfg.rx_ring != 0) aspec.rx_ring = cfg.rx_ring;
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning, aspec);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning, aspec);
  link::LinkSpec wire_spec;
  if (cfg.wan) {
    wire_spec.propagation = sim::usec(2500);  // 5 ms RTT bottleneck
    wire_spec.queue_limit_bytes = 2u << 20;
  }
  auto& wire = tb.connect(a, b, wire_spec);
  wire.set_fault_plan(cfg.plan);
  if (cfg.host_tx.active()) a.set_host_fault_plan(cfg.host_tx);
  if (cfg.host_rx.active()) b.set_host_fault_plan(cfg.host_rx);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());

  sim::Watchdog::Options wopt;
  wopt.interval = sim::msec(100);
  wopt.stalled_ticks = 100;  // 10 s with no progress = stalled
  sim::Watchdog dog(tb.simulator(), wopt);
  dog.watch_progress("acked", [&]() {
    return conn.client->stats().bytes_acked;
  });
  dog.watch_progress("delivered", [&]() {
    return conn.server->stats().bytes_delivered;
  });
  dog.watch_progress("client_segments", [&]() {
    return conn.client->stats().segments_sent +
           conn.client->stats().segments_received;
  });
  dog.add_invariant("client", [&]() {
    return conn.client->invariant_violation();
  });
  dog.add_invariant("server", [&]() {
    return conn.server->invariant_violation();
  });
  // The autopsy line names the injected causes: fault-counter snapshots of
  // both hosts plus whatever piled up at the receiver's ring.
  dog.add_context("tx-host-faults", [&]() {
    return a.host_faults().active()
               ? fault::describe(a.host_fault_counters())
               : std::string();
  });
  dog.add_context("rx-host-faults", [&]() {
    return b.host_faults().active()
               ? fault::describe(b.host_fault_counters())
               : std::string();
  });
  dog.add_context("rx-ring", [&]() {
    return b.adapter().rx_dropped_ring() > 0
               ? std::to_string(b.adapter().rx_dropped_ring()) +
                     " frames dropped at full ring"
               : std::string();
  });
  dog.arm();

  tools::NttcpOptions opt;
  opt.payload = cfg.payload;
  opt.count = cfg.count;
  opt.timeout = cfg.timeout;
  const auto result = tools::run_nttcp(tb, conn, a, b, opt);

  SoakOutcome out;
  out.completed = result.completed;

  // Every connection must reach a clean teardown, faults notwithstanding.
  if (result.completed && !dog.tripped()) {
    conn.client->close();
    conn.server->close();
    for (int i = 0; i < 600 && !dog.tripped(); ++i) {
      if (conn.client->closed() && conn.server->closed()) break;
      tb.run_for(sim::msec(100));
    }
  }
  dog.disarm();
  // Drain in-flight frames (reorder hold-backs, duplicate copies, recovery
  // polls, trailing ACKs) so the drop ledger sees a quiescent network.
  tb.run_for(sim::sec(2));

  tools::DropReport ledger;
  ledger.add_host(a);
  ledger.add_host(b);
  ledger.add_link(wire);
  out.conserved = ledger.conserved();
  out.ledger = ledger.render();

  out.client_closed = conn.client->closed();
  out.server_closed = conn.server->closed();
  out.tripped = dog.tripped();
  out.diagnosis = dog.diagnosis();
  out.integrity = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(),
      static_cast<std::uint64_t>(cfg.payload) * cfg.count,
      /*checksums_on=*/true);
  out.fingerprint = "client{" + stats_fingerprint(conn.client->stats()) +
                    "} server{" + stats_fingerprint(conn.server->stats()) +
                    "} faults{" + fault_fingerprint(wire.fault_counters()) +
                    "} host_tx{" + host_fault_fingerprint(a.host_fault_counters()) +
                    "} host_rx{" + host_fault_fingerprint(b.host_fault_counters()) +
                    "} ring_drops=" + std::to_string(b.adapter().rx_dropped_ring()) +
                    " csum_drops=" + std::to_string(b.kernel().csum_drops());
  return out;
}

/// Shared assertion battery: exactly-once in-order delivery, clean
/// teardown, conserved ledger, no watchdog trip.
void expect_clean_soak(const SoakOutcome& out) {
  ASSERT_FALSE(out.tripped) << out.diagnosis;
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.integrity.ok) << out.integrity.detail;
  EXPECT_TRUE(out.client_closed);
  EXPECT_TRUE(out.server_closed);
  EXPECT_TRUE(out.conserved) << out.ledger;
}

fault::GilbertElliott lan_burst() {
  fault::GilbertElliott ge;
  ge.p_enter_bad = 5e-4;
  ge.p_exit_bad = 0.25;
  ge.loss_bad = 1.0;
  return ge;
}

/// Folds the CI-provided override into every plan seed so one env var
/// re-randomizes the whole matrix without touching the source.
void fold_seed_override(std::vector<SoakConfig>& configs) {
  std::uint64_t s = 0;
  if (!chaos_seed_override(s)) return;
  for (SoakConfig& c : configs) {
    c.plan.seed ^= s;
    c.host_rx.seed ^= s;
    c.host_tx.seed ^= s;
  }
}

std::vector<SoakConfig> soak_matrix() {
  using fault::FaultPlan;
  std::vector<SoakConfig> configs;
  auto lan = [&](const std::string& name, const FaultPlan& plan,
                 bool host_csum = false) {
    SoakConfig c;
    c.name = name;
    c.plan = plan;
    c.host_csum = host_csum;
    configs.push_back(c);
  };
  auto wan = [&](const std::string& name, const FaultPlan& plan,
                 bool host_csum = false) {
    SoakConfig c;
    c.name = name;
    c.plan = plan;
    c.wan = true;
    c.host_csum = host_csum;
    c.count = 400;
    configs.push_back(c);
  };

  // Control: no faults at all; everything else must look this clean.
  lan("lan-clean", FaultPlan{});

  lan("lan-uniform-1pct-s1", FaultPlan{}.with_seed(1).with_loss(0.01));
  lan("lan-uniform-1pct-s2", FaultPlan{}.with_seed(2).with_loss(0.01));
  lan("lan-uniform-3pct-s3", FaultPlan{}.with_seed(3).with_loss(0.03));
  lan("lan-ack-loss-s4", FaultPlan{}.with_seed(4).with_loss(0.02));
  lan("lan-burst-s5", FaultPlan{}.with_seed(5).with_burst(lan_burst()));
  lan("lan-burst-s6", FaultPlan{}.with_seed(6).with_burst(lan_burst()));
  lan("lan-corrupt-s7", FaultPlan{}.with_seed(7).with_corruption(0.003),
      /*host_csum=*/true);
  lan("lan-corrupt-s8", FaultPlan{}.with_seed(8).with_corruption(0.01),
      /*host_csum=*/true);
  lan("lan-dup-s9", FaultPlan{}.with_seed(9).with_duplication(0.02));
  lan("lan-reorder-s10",
      FaultPlan{}.with_seed(10).with_reordering(0.05, sim::usec(100)));
  lan("lan-dup-reorder-s11",
      FaultPlan{}.with_seed(11).with_duplication(0.01).with_reordering(
          0.03, sim::usec(100)));
  lan("lan-flap-s12",
      FaultPlan{}.with_seed(12).with_flap(sim::msec(40), sim::msec(140)));
  lan("lan-flap-loss-s13",
      FaultPlan{}.with_seed(13).with_loss(0.01).with_flap(sim::msec(60),
                                                          sim::msec(160)));
  lan("lan-kitchen-s14",
      FaultPlan{}
          .with_seed(14)
          .with_loss(0.005)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.01, sim::usec(100))
          .with_corruption(0.002),
      /*host_csum=*/true);
  lan("lan-kitchen-s15",
      FaultPlan{}
          .with_seed(15)
          .with_loss(0.005)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.01, sim::usec(100))
          .with_corruption(0.002),
      /*host_csum=*/true);

  wan("wan-uniform-halfpct-s16", FaultPlan{}.with_seed(16).with_loss(0.005));
  wan("wan-uniform-1pct-s17", FaultPlan{}.with_seed(17).with_loss(0.01));
  wan("wan-burst-s18", FaultPlan{}.with_seed(18).with_burst(lan_burst()));
  wan("wan-reorder-s19",
      FaultPlan{}.with_seed(19).with_reordering(0.1, sim::usec(500)));
  wan("wan-dup-reorder-s20",
      FaultPlan{}.with_seed(20).with_duplication(0.01).with_reordering(
          0.05, sim::usec(500)));
  wan("wan-kitchen-s21",
      FaultPlan{}
          .with_seed(21)
          .with_loss(0.003)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.02, sim::usec(500))
          .with_corruption(0.001),
      /*host_csum=*/true);
  wan("wan-flap-s22",
      FaultPlan{}.with_seed(22).with_flap(sim::msec(80), sim::msec(280)));
  fold_seed_override(configs);
  return configs;
}

/// Host-resource fault matrix: each class alone (several severities and
/// seeds), the host kitchen sink, and wire+host combinations.
std::vector<SoakConfig> host_soak_matrix() {
  using fault::FaultPlan;
  using fault::HostFaultPlan;
  std::vector<SoakConfig> configs;
  auto add = [&](const std::string& name, const HostFaultPlan& rx,
                 const HostFaultPlan& tx = HostFaultPlan{}) -> SoakConfig& {
    SoakConfig c;
    c.name = name;
    c.host_rx = rx;
    c.host_tx = tx;
    configs.push_back(c);
    return configs.back();
  };

  // (1) allocation failure: receive-side drops recovered by retransmission,
  // a budgeted burst of pressure, and transmit-side -ENOBUFS retries.
  add("host-alloc-rx-1pct-s41",
      HostFaultPlan{}.with_seed(41).with_alloc_failure(0.01));
  add("host-alloc-rx-5pct-s42",
      HostFaultPlan{}.with_seed(42).with_alloc_failure(0.05));
  add("host-alloc-rx-budget-s43",
      HostFaultPlan{}.with_seed(43).with_alloc_failure(0.25, /*budget=*/25));
  add("host-alloc-rx-bigblocks-s44",
      HostFaultPlan{}.with_seed(44).with_alloc_failure(0.02, -1,
                                                       /*min_block=*/8192));
  add("host-alloc-tx-s45", HostFaultPlan{},
      HostFaultPlan{}.with_seed(45).with_alloc_failure(0.02));

  // (2) descriptor-ring stalls: a shallow ring plus sustained 10GbE traffic
  // makes the stall window overflow the ring and forces real drops.
  {
    auto& c = add("host-rxring-stall-s46",
                  HostFaultPlan{}.with_seed(46).with_rx_ring_stall(
                      sim::msec(4), sim::msec(9)));
    c.rx_ring = 128;
    c.count = 3000;
  }
  {
    auto& c = add("host-rxring-double-stall-s47",
                  HostFaultPlan{}
                      .with_seed(47)
                      .with_rx_ring_stall(sim::msec(3), sim::msec(6))
                      .with_rx_ring_stall(sim::msec(12), sim::msec(15)));
    c.rx_ring = 128;
    c.count = 3000;
  }
  add("host-txring-stall-s48", HostFaultPlan{},
      HostFaultPlan{}.with_seed(48).with_tx_ring_stall(sim::msec(2),
                                                       sim::msec(5)));

  // (3) interrupt faults: missed interrupts rescued by the recovery poll,
  // and a coalescing-off storm window.
  add("host-irqmiss-s49",
      HostFaultPlan{}.with_seed(49).with_irq_miss(0.05));
  add("host-irqmiss-heavy-s50",
      HostFaultPlan{}.with_seed(50).with_irq_miss(0.3, sim::msec(1)));
  add("host-irqstorm-s51",
      HostFaultPlan{}.with_seed(51).with_irq_storm(sim::msec(1),
                                                   sim::msec(4)));

  // (4) DMA throttling: sender-side MMRBC degradation (512-byte bursts) and
  // receiver-side arbitration freezes.
  add("host-dma-mmrbc-s52", HostFaultPlan{},
      HostFaultPlan{}.with_seed(52).with_dma_throttle(0, sim::msec(20),
                                                      /*mmrbc=*/512));
  add("host-dma-freeze-s53",
      HostFaultPlan{}.with_seed(53).with_dma_throttle(
          sim::msec(1), sim::msec(6), /*mmrbc=*/4096,
          /*freeze=*/sim::usec(3)));

  // (5) scheduler pauses: the receiver stops draining (sockbuf pressure,
  // shrinking window) or the sender stops feeding.
  add("host-sched-pause-rx-s54",
      HostFaultPlan{}.with_seed(54).with_sched_pause(sim::msec(2),
                                                     sim::msec(120)));
  add("host-sched-pause-tx-s55", HostFaultPlan{},
      HostFaultPlan{}.with_seed(55).with_sched_pause(sim::msec(2),
                                                     sim::msec(60)));

  // Everything at once on the receiving host.
  {
    auto& c = add("host-kitchen-s56",
                  HostFaultPlan{}
                      .with_seed(56)
                      .with_alloc_failure(0.005)
                      .with_irq_miss(0.02)
                      .with_rx_ring_stall(sim::msec(5), sim::msec(8))
                      .with_dma_throttle(sim::msec(10), sim::msec(14),
                                         /*mmrbc=*/4096,
                                         /*freeze=*/sim::usec(2)));
    c.rx_ring = 128;
    c.count = 3000;
  }

  // Wire + host combinations: loss on the link while the host is also
  // starved; the two fault domains must compose without double counting.
  {
    SoakConfig c;
    c.name = "combo-wireloss-hostalloc-s57";
    c.plan = FaultPlan{}.with_seed(57).with_loss(0.01);
    c.host_rx = HostFaultPlan{}.with_seed(57).with_alloc_failure(0.01);
    configs.push_back(c);
  }
  {
    SoakConfig c;
    c.name = "combo-wireburst-irqmiss-schedtx-s58";
    c.plan = FaultPlan{}.with_seed(58).with_burst(lan_burst());
    c.host_rx = HostFaultPlan{}.with_seed(58).with_irq_miss(0.05);
    c.host_tx = HostFaultPlan{}.with_seed(59).with_sched_pause(
        sim::msec(2), sim::msec(40));
    configs.push_back(c);
  }
  fold_seed_override(configs);
  return configs;
}

TEST(ChaosSoak, EveryPlanDeliversExactlyOnceAndReproducesBitIdentically) {
  const auto configs = soak_matrix();
  ASSERT_GE(configs.size(), 21u);  // >= 20 fault plans + the clean control
  for (const auto& cfg : configs) {
    SCOPED_TRACE(trace_line(cfg));
    const SoakOutcome first = run_soak(cfg);
    expect_clean_soak(first);

    const SoakOutcome rerun = run_soak(cfg);
    EXPECT_EQ(first.fingerprint, rerun.fingerprint)
        << "same plan, same traffic, different stats — determinism broke";
  }
}

TEST(ChaosSoak, HostFaultPlansDegradeGracefullyAndReproduceBitIdentically) {
  const auto configs = host_soak_matrix();
  ASSERT_GE(configs.size(), 15u);  // every class alone + combinations
  for (const auto& cfg : configs) {
    SCOPED_TRACE(trace_line(cfg));
    const SoakOutcome first = run_soak(cfg);
    expect_clean_soak(first);

    const SoakOutcome rerun = run_soak(cfg);
    EXPECT_EQ(first.fingerprint, rerun.fingerprint)
        << "same plan, same traffic, different stats — determinism broke";
  }
}

// The no-plan control is the bit-identity gate: arming nothing must leave
// every statistic byte-for-byte identical to a build that never heard of
// host faults. (The benches assert the same property against their golden
// outputs; this keeps the gate inside the test suite too.)
TEST(ChaosSoak, UnarmedHostFaultsChangeNothing) {
  SoakConfig clean;
  clean.name = "control";
  const SoakOutcome first = run_soak(clean);
  expect_clean_soak(first);
  EXPECT_NE(first.fingerprint.find("host_rx{seen=0"), std::string::npos)
      << "inactive injector consumed RNG draws or counted faults: "
      << first.fingerprint;
  const SoakOutcome rerun = run_soak(clean);
  EXPECT_EQ(first.fingerprint, rerun.fingerprint);
}

// A fault that can never recover must not hang: the watchdog has to trip
// with a one-line autopsy that names the injected cause. A receive ring
// that is never replenished starves the connection completely once the
// ring's slots are consumed.
TEST(ChaosSoak, PermanentRxRingStallTripsWatchdogWithAutopsy) {
  SoakConfig cfg;
  cfg.name = "host-rxring-permanent-s60";
  cfg.host_rx = fault::HostFaultPlan{}.with_seed(60).with_rx_ring_stall(
      sim::msec(5), sim::sec(3600));
  cfg.rx_ring = 128;
  cfg.count = 3000;
  cfg.timeout = sim::sec(60);
  SCOPED_TRACE(trace_line(cfg));
  const SoakOutcome out = run_soak(cfg);
  ASSERT_TRUE(out.tripped)
      << "permanent ring stall neither tripped the watchdog nor hung";
  EXPECT_FALSE(out.completed);
  EXPECT_NE(out.diagnosis.find("no forward progress"), std::string::npos)
      << out.diagnosis;
  EXPECT_NE(out.diagnosis.find("ring"), std::string::npos)
      << "autopsy does not name the injected cause: " << out.diagnosis;
}

// The same soak discipline through a switch whose fabric misbehaves: the
// switch-hosted injector must be just as recoverable and countable, and the
// ledger must reconcile across the extra hop.
TEST(ChaosSoak, SwitchHostedFaultsRecover) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  auto& sw = tb.add_switch();
  auto& wire_a = tb.connect_to_switch(a, sw);
  auto& wire_b = tb.connect_to_switch(b, sw);
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.loss_rate = 0.01;
  plan.duplicate_rate = 0.01;
  sw.set_fault_plan(plan);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 500;
  opt.timeout = sim::sec(600);
  const auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 500ull);
  EXPECT_GT(sw.fault_counters().drops_uniform, 0u);
  const auto verdict = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(), 8948ull * 500ull, true);
  EXPECT_TRUE(verdict.ok) << verdict.detail;

  tb.run_for(sim::sec(2));  // quiesce before reconciling
  tools::DropReport ledger;
  ledger.add_host(a);
  ledger.add_host(b);
  ledger.add_link(wire_a);
  ledger.add_link(wire_b);
  ledger.add_switch(sw);
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
}

// And through a flaky adapter MAC: the NIC-hosted injector sits in front of
// the receive ring, so losses there look like wire losses to TCP.
TEST(ChaosSoak, AdapterHostedFaultsRecover) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);
  fault::FaultPlan plan;
  plan.seed = 32;
  plan.loss_rate = 0.01;
  b.adapter().set_rx_fault_plan(plan);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 500;
  opt.timeout = sim::sec(600);
  const auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 500ull);
  EXPECT_GT(b.adapter().rx_fault_counters().drops_uniform, 0u);
  const auto verdict = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(), 8948ull * 500ull, true);
  EXPECT_TRUE(verdict.ok) << verdict.detail;

  tb.run_for(sim::sec(2));
  tools::DropReport ledger;
  ledger.add_host(a);
  ledger.add_host(b);
  ledger.add_link(wire);
  EXPECT_TRUE(ledger.conserved()) << ledger.render();
}

}  // namespace
}  // namespace xgbe

// Chaos soak: drives NTTCP transfers across LAN and WAN-profile links under
// >= 20 seeded fault plans (uniform and bursty loss, payload corruption,
// duplication, reordering, carrier flaps, and combinations), asserting for
// every plan that
//   - every byte is delivered exactly once, in order (integrity oracle),
//   - nothing is silently corrupted while checksums are on,
//   - the connection always reaches a clean teardown,
//   - a rerun of the same plan reproduces bit-identical statistics,
// with a watchdog checking endpoint invariants and forward progress at
// every tick, so a stall or a broken invariant becomes a readable failure
// instead of a hang.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/oracle.hpp"
#include "sim/watchdog.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct SoakConfig {
  std::string name;
  fault::FaultPlan plan;
  bool wan = false;        // long-propagation bottleneck profile
  bool host_csum = false;  // software checksums (required for corruption)
  std::uint32_t payload = 8948;
  std::uint32_t count = 600;
};

struct SoakOutcome {
  bool completed = false;
  bool client_closed = false;
  bool server_closed = false;
  bool tripped = false;
  std::string diagnosis;
  fault::IntegrityReport integrity;
  std::string fingerprint;
};

std::string stats_fingerprint(const tcp::EndpointStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "seg=%llu/%llu bytes=%llu/%llu/%llu/%llu retx=%llu fast=%llu "
      "rto=%llu dupack=%llu/%llu acks=%llu wup=%llu drops=%llu probes=%llu "
      "oow=%llu corrupt=%llu",
      static_cast<unsigned long long>(s.segments_sent),
      static_cast<unsigned long long>(s.segments_received),
      static_cast<unsigned long long>(s.bytes_sent),
      static_cast<unsigned long long>(s.bytes_acked),
      static_cast<unsigned long long>(s.bytes_delivered),
      static_cast<unsigned long long>(s.bytes_consumed),
      static_cast<unsigned long long>(s.retransmits),
      static_cast<unsigned long long>(s.fast_retransmits),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.dupacks_received),
      static_cast<unsigned long long>(s.dupacks_sent),
      static_cast<unsigned long long>(s.acks_sent),
      static_cast<unsigned long long>(s.window_update_acks),
      static_cast<unsigned long long>(s.rcv_buffer_drops),
      static_cast<unsigned long long>(s.window_probes),
      static_cast<unsigned long long>(s.out_of_window),
      static_cast<unsigned long long>(s.corrupted_delivered));
  return buf;
}

std::string fault_fingerprint(const fault::FaultCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seen=%llu f=%llu u=%llu b=%llu c=%llu corrupt=%llu "
                "dup=%llu reord=%llu flap=%llu",
                static_cast<unsigned long long>(c.frames_seen),
                static_cast<unsigned long long>(c.drops_forced),
                static_cast<unsigned long long>(c.drops_uniform),
                static_cast<unsigned long long>(c.drops_burst),
                static_cast<unsigned long long>(c.drops_carrier),
                static_cast<unsigned long long>(c.corruptions),
                static_cast<unsigned long long>(c.duplicates),
                static_cast<unsigned long long>(c.reorders),
                static_cast<unsigned long long>(c.flaps));
  return buf;
}

SoakOutcome run_soak(const SoakConfig& cfg) {
  core::Testbed tb;
  auto tuning = cfg.wan ? core::TuningProfile::with_big_windows(9000)
                        : core::TuningProfile::lan_tuned(9000);
  if (cfg.host_csum) tuning.csum_offload = false;
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  link::LinkSpec wire_spec;
  if (cfg.wan) {
    wire_spec.propagation = sim::usec(2500);  // 5 ms RTT bottleneck
    wire_spec.queue_limit_bytes = 2u << 20;
  }
  auto& wire = tb.connect(a, b, wire_spec);
  wire.set_fault_plan(cfg.plan);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());

  sim::Watchdog::Options wopt;
  wopt.interval = sim::msec(100);
  wopt.stalled_ticks = 100;  // 10 s with no progress = stalled
  sim::Watchdog dog(tb.simulator(), wopt);
  dog.watch_progress("acked", [&]() {
    return conn.client->stats().bytes_acked;
  });
  dog.watch_progress("delivered", [&]() {
    return conn.server->stats().bytes_delivered;
  });
  dog.watch_progress("client_segments", [&]() {
    return conn.client->stats().segments_sent +
           conn.client->stats().segments_received;
  });
  dog.add_invariant("client", [&]() {
    return conn.client->invariant_violation();
  });
  dog.add_invariant("server", [&]() {
    return conn.server->invariant_violation();
  });
  dog.arm();

  tools::NttcpOptions opt;
  opt.payload = cfg.payload;
  opt.count = cfg.count;
  opt.timeout = sim::sec(600);
  const auto result = tools::run_nttcp(tb, conn, a, b, opt);

  SoakOutcome out;
  out.completed = result.completed;

  // Every connection must reach a clean teardown, faults notwithstanding.
  if (result.completed && !dog.tripped()) {
    conn.client->close();
    conn.server->close();
    for (int i = 0; i < 600 && !dog.tripped(); ++i) {
      if (conn.client->closed() && conn.server->closed()) break;
      tb.run_for(sim::msec(100));
    }
  }
  dog.disarm();

  out.client_closed = conn.client->closed();
  out.server_closed = conn.server->closed();
  out.tripped = dog.tripped();
  out.diagnosis = dog.diagnosis();
  out.integrity = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(),
      static_cast<std::uint64_t>(cfg.payload) * cfg.count,
      /*checksums_on=*/true);
  out.fingerprint = "client{" + stats_fingerprint(conn.client->stats()) +
                    "} server{" + stats_fingerprint(conn.server->stats()) +
                    "} faults{" + fault_fingerprint(wire.fault_counters()) +
                    "} csum_drops=" + std::to_string(b.kernel().csum_drops());
  return out;
}

fault::GilbertElliott lan_burst() {
  fault::GilbertElliott ge;
  ge.p_enter_bad = 5e-4;
  ge.p_exit_bad = 0.25;
  ge.loss_bad = 1.0;
  return ge;
}

std::vector<SoakConfig> soak_matrix() {
  using fault::FaultPlan;
  std::vector<SoakConfig> configs;
  auto lan = [&](const std::string& name, const FaultPlan& plan,
                 bool host_csum = false) {
    SoakConfig c;
    c.name = name;
    c.plan = plan;
    c.host_csum = host_csum;
    configs.push_back(c);
  };
  auto wan = [&](const std::string& name, const FaultPlan& plan,
                 bool host_csum = false) {
    SoakConfig c;
    c.name = name;
    c.plan = plan;
    c.wan = true;
    c.host_csum = host_csum;
    c.count = 400;
    configs.push_back(c);
  };

  // Control: no faults at all; everything else must look this clean.
  lan("lan-clean", FaultPlan{});

  lan("lan-uniform-1pct-s1", FaultPlan{}.with_seed(1).with_loss(0.01));
  lan("lan-uniform-1pct-s2", FaultPlan{}.with_seed(2).with_loss(0.01));
  lan("lan-uniform-3pct-s3", FaultPlan{}.with_seed(3).with_loss(0.03));
  lan("lan-ack-loss-s4", FaultPlan{}.with_seed(4).with_loss(0.02));
  lan("lan-burst-s5", FaultPlan{}.with_seed(5).with_burst(lan_burst()));
  lan("lan-burst-s6", FaultPlan{}.with_seed(6).with_burst(lan_burst()));
  lan("lan-corrupt-s7", FaultPlan{}.with_seed(7).with_corruption(0.003),
      /*host_csum=*/true);
  lan("lan-corrupt-s8", FaultPlan{}.with_seed(8).with_corruption(0.01),
      /*host_csum=*/true);
  lan("lan-dup-s9", FaultPlan{}.with_seed(9).with_duplication(0.02));
  lan("lan-reorder-s10",
      FaultPlan{}.with_seed(10).with_reordering(0.05, sim::usec(100)));
  lan("lan-dup-reorder-s11",
      FaultPlan{}.with_seed(11).with_duplication(0.01).with_reordering(
          0.03, sim::usec(100)));
  lan("lan-flap-s12",
      FaultPlan{}.with_seed(12).with_flap(sim::msec(40), sim::msec(140)));
  lan("lan-flap-loss-s13",
      FaultPlan{}.with_seed(13).with_loss(0.01).with_flap(sim::msec(60),
                                                          sim::msec(160)));
  lan("lan-kitchen-s14",
      FaultPlan{}
          .with_seed(14)
          .with_loss(0.005)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.01, sim::usec(100))
          .with_corruption(0.002),
      /*host_csum=*/true);
  lan("lan-kitchen-s15",
      FaultPlan{}
          .with_seed(15)
          .with_loss(0.005)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.01, sim::usec(100))
          .with_corruption(0.002),
      /*host_csum=*/true);

  wan("wan-uniform-halfpct-s16", FaultPlan{}.with_seed(16).with_loss(0.005));
  wan("wan-uniform-1pct-s17", FaultPlan{}.with_seed(17).with_loss(0.01));
  wan("wan-burst-s18", FaultPlan{}.with_seed(18).with_burst(lan_burst()));
  wan("wan-reorder-s19",
      FaultPlan{}.with_seed(19).with_reordering(0.1, sim::usec(500)));
  wan("wan-dup-reorder-s20",
      FaultPlan{}.with_seed(20).with_duplication(0.01).with_reordering(
          0.05, sim::usec(500)));
  wan("wan-kitchen-s21",
      FaultPlan{}
          .with_seed(21)
          .with_loss(0.003)
          .with_burst(lan_burst())
          .with_duplication(0.005)
          .with_reordering(0.02, sim::usec(500))
          .with_corruption(0.001),
      /*host_csum=*/true);
  wan("wan-flap-s22",
      FaultPlan{}.with_seed(22).with_flap(sim::msec(80), sim::msec(280)));
  return configs;
}

TEST(ChaosSoak, EveryPlanDeliversExactlyOnceAndReproducesBitIdentically) {
  const auto configs = soak_matrix();
  ASSERT_GE(configs.size(), 21u);  // >= 20 fault plans + the clean control
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.name + " [" + fault::describe(cfg.plan) + "]");
    const SoakOutcome first = run_soak(cfg);
    ASSERT_FALSE(first.tripped) << first.diagnosis;
    ASSERT_TRUE(first.completed);
    EXPECT_TRUE(first.integrity.ok) << first.integrity.detail;
    EXPECT_TRUE(first.client_closed);
    EXPECT_TRUE(first.server_closed);

    const SoakOutcome rerun = run_soak(cfg);
    EXPECT_EQ(first.fingerprint, rerun.fingerprint)
        << "same plan, same traffic, different stats — determinism broke";
  }
}

// The same soak discipline through a switch whose fabric misbehaves: the
// switch-hosted injector must be just as recoverable and countable.
TEST(ChaosSoak, SwitchHostedFaultsRecover) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  auto& sw = tb.add_switch();
  tb.connect_to_switch(a, sw);
  tb.connect_to_switch(b, sw);
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.loss_rate = 0.01;
  plan.duplicate_rate = 0.01;
  sw.set_fault_plan(plan);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 500;
  opt.timeout = sim::sec(600);
  const auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 500ull);
  EXPECT_GT(sw.fault_counters().drops_uniform, 0u);
  const auto verdict = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(), 8948ull * 500ull, true);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

// And through a flaky adapter MAC: the NIC-hosted injector sits in front of
// the receive ring, so losses there look like wire losses to TCP.
TEST(ChaosSoak, AdapterHostedFaultsRecover) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  fault::FaultPlan plan;
  plan.seed = 32;
  plan.loss_rate = 0.01;
  b.adapter().set_rx_fault_plan(plan);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 500;
  opt.timeout = sim::sec(600);
  const auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 500ull);
  EXPECT_GT(b.adapter().rx_fault_counters().drops_uniform, 0u);
  const auto verdict = fault::verify_stream_integrity(
      conn.client->stats(), conn.server->stats(), 8948ull * 500ull, true);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

}  // namespace
}  // namespace xgbe

// Endpoint-level TCP tests over real simulated hosts: negotiation,
// segmentation semantics, flow control, loss recovery.
#include <gtest/gtest.h>

#include <memory>

#include "core/testbed.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct Pair {
  core::Testbed tb;
  core::Host* a = nullptr;
  core::Host* b = nullptr;

  explicit Pair(const core::TuningProfile& tuning,
                const link::LinkSpec& wire = link::LinkSpec{}) {
    a = &tb.add_host("a", hw::presets::pe2650(), tuning);
    b = &tb.add_host("b", hw::presets::pe2650(), tuning);
    tb.connect(*a, *b, wire);
  }
};

TEST(Handshake, NegotiatesMinimumMss) {
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(),
                        core::TuningProfile::stock(9000));
  auto& b = tb.add_host("b", hw::presets::pe2650(),
                        core::TuningProfile::stock(1500));
  tb.connect(a, b);
  auto ca = a.endpoint_config();
  auto cb = b.endpoint_config();
  auto conn = tb.open_connection(a, b, ca, cb);
  ASSERT_TRUE(tb.run_until_established(conn));
  // Sender limited by the peer's 1460 MSS option minus 12 timestamp bytes.
  EXPECT_EQ(conn.client->mss_payload(), 1448u);
  EXPECT_EQ(conn.server->mss_payload(), 1448u);
}

TEST(Handshake, TimestampsRequireBothEnds) {
  Pair p(core::TuningProfile::stock(9000));
  auto ca = p.a->endpoint_config();
  auto cb = p.b->endpoint_config();
  cb.timestamps = false;
  auto conn = p.tb.open_connection(*p.a, *p.b, ca, cb);
  ASSERT_TRUE(p.tb.run_until_established(conn));
  // No timestamp option -> the full 8960 MSS is usable.
  EXPECT_EQ(conn.client->mss_payload(), 8960u);
}

TEST(Handshake, TimestampsCost12Bytes) {
  Pair p(core::TuningProfile::stock(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  ASSERT_TRUE(p.tb.run_until_established(conn));
  EXPECT_EQ(conn.client->mss_payload(), 8948u);  // the paper's MSS
}

TEST(Segmentation, PushPerWriteSendsOneSegmentPerWrite) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 4000;  // sub-MSS writes
  opt.count = 100;
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.segments_sent, 100u);  // exactly one segment per write
}

TEST(Segmentation, LargeWritesSplitAtMss) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 9000;  // 8948 + 52 per write
  opt.count = 100;
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.segments_sent, 200u);
}

TEST(Segmentation, StreamModeCoalescesToFullMss) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto cfg = p.a->endpoint_config();
  cfg.push_per_write = false;  // iperf semantics
  auto conn = p.tb.open_connection(*p.a, *p.b, cfg, p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 4000;
  opt.count = 100;  // 400000 bytes => ceil(400000/8948) = 45 segments
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.segments_sent, 46u);
  EXPECT_GE(r.segments_sent, 45u);
}

TEST(FlowControl, ClosedWindowStallsWithoutReader) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto ca = p.a->endpoint_config();
  auto cb = p.b->endpoint_config();
  cb.app_reader = false;  // the receiving application never reads
  auto conn = p.tb.open_connection(*p.a, *p.b, ca, cb);
  ASSERT_TRUE(p.tb.run_until_established(conn));
  // Stream far more than the receive buffer can hold.
  for (int i = 0; i < 200; ++i) conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::msec(500));
  // The receiver queue is bounded by its buffer accounting; most data is
  // still waiting at the sender (in the socket or in unadmitted writes).
  EXPECT_LT(conn.server->stats().bytes_delivered, 600u * 1024u);
  EXPECT_LT(conn.client->stats().bytes_sent, 200ull * 8948ull / 2ull);
}

TEST(FlowControl, WindowReopensWhenReaderResumes) {
  // Same as above, but reading resumes: verify delivery completes via the
  // window-update path.
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto cb = p.b->endpoint_config();
  cb.read_chunk = 16384;  // slow reader in small chunks
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(), cb);
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 300;
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948u * 300u);
}

TEST(Loss, FastRetransmitRecovers) {
  link::LinkSpec lossy;
  lossy.loss_rate = 0.002;
  lossy.loss_seed = 1234;
  Pair p(core::TuningProfile::lan_tuned(9000), lossy);
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 2000;
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);  // all data delivered despite loss
  EXPECT_EQ(r.bytes, 8948ull * 2000ull);
  EXPECT_GT(conn.client->stats().retransmits, 0u);
  EXPECT_GT(conn.client->stats().fast_retransmits, 0u);
}

TEST(Loss, HeavyLossFallsBackToRto) {
  link::LinkSpec lossy;
  lossy.loss_rate = 0.25;
  lossy.loss_seed = 77;
  Pair p(core::TuningProfile::lan_tuned(9000), lossy);
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 50;
  opt.timeout = sim::sec(300);
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(conn.client->stats().timeouts, 0u);
}

TEST(Loss, CongestionWindowHalvesOnFastRetransmit) {
  link::LinkSpec lossy;
  lossy.loss_rate = 0.01;
  lossy.loss_seed = 5;
  Pair p(core::TuningProfile::lan_tuned(9000), lossy);
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  ASSERT_TRUE(p.tb.run_until_established(conn));
  std::uint32_t max_before_drop = 0;
  bool saw_halving = false;
  std::uint32_t prev = 0;
  conn.client->cwnd_trace = [&](sim::SimTime, std::uint32_t cwnd) {
    if (prev != 0 && cwnd < prev && cwnd <= prev / 2 + 1) saw_halving = true;
    prev = cwnd;
    max_before_drop = std::max(max_before_drop, cwnd);
  };
  for (int i = 0; i < 1000; ++i) conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::msec(200));
  EXPECT_TRUE(saw_halving);
}

TEST(DelayedAck, AcksRoughlyEveryOtherSegment) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 400;
  auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  const double acks = static_cast<double>(conn.server->stats().acks_sent);
  // Delayed ACK: between 1/2 and ~1 ack per segment (window updates add).
  EXPECT_GT(acks, 400 * 0.45);
  EXPECT_LT(acks, 400 * 1.2);
}

TEST(Mechanism, TruesizeWindowCollapseAtJumboMss) {
  // The paper's Fig 3 dip: with default buffers, jumbo-MSS-sized writes
  // throttle well below the 8000-byte-write rate because each segment
  // charges a 16 KB block against an 87380-byte rcvbuf.
  auto run = [](std::uint32_t payload) {
    Pair p(core::TuningProfile::with_pci_burst(9000));
    auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                     p.b->endpoint_config());
    tools::NttcpOptions opt;
    opt.payload = payload;
    opt.count = 1500;
    return tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt).throughput_gbps();
  };
  const double at8000 = run(8000);
  const double at8948 = run(8948);
  EXPECT_GT(at8000, at8948 * 1.4);
}

TEST(Mechanism, OversizedWindowsCureTheDip) {
  auto run = [](const core::TuningProfile& t) {
    Pair p(t);
    auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                     p.b->endpoint_config());
    tools::NttcpOptions opt;
    opt.payload = 8948;
    opt.count = 1500;
    return tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt).throughput_gbps();
  };
  const double small = run(core::TuningProfile::with_uniprocessor(9000));
  const double big = run(core::TuningProfile::with_big_windows(9000));
  EXPECT_GT(big, small * 1.3);  // §3.3: the 256 KB buffers remove the dip
}

TEST(Tso, OffloadReducesSenderSegmentWork) {
  auto run = [](bool tso) {
    core::TuningProfile t = core::TuningProfile::lan_tuned(9000);
    t.tso = tso;
    Pair p(t);
    auto cfg = p.a->endpoint_config();
    cfg.push_per_write = false;
    auto conn =
        p.tb.open_connection(*p.a, *p.b, cfg, p.b->endpoint_config());
    tools::NttcpOptions opt;
    opt.payload = 32768;
    opt.count = 200;
    auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
    EXPECT_TRUE(r.completed);
    return r;
  };
  const auto without = run(false);
  const auto with = run(true);
  // TSO reduces the sender CPU load ("should reduce the CPU load on
  // transmitting systems, and in many cases, will increase throughput").
  EXPECT_LT(with.sender_load, without.sender_load);
  EXPECT_GE(with.throughput_bps, without.throughput_bps * 0.95);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  auto run = []() {
    Pair p(core::TuningProfile::lan_tuned(9000));
    auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                     p.b->endpoint_config());
    tools::NttcpOptions opt;
    opt.payload = 8192;
    opt.count = 500;
    return tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.elapsed_s, r2.elapsed_s);
  EXPECT_EQ(r1.segments_sent, r2.segments_sent);
  EXPECT_DOUBLE_EQ(r1.throughput_bps, r2.throughput_bps);
}

}  // namespace
}  // namespace xgbe

// Unit tests for the OS model: kmalloc classes, socket-buffer accounting,
// kernel cost model, kernel runtime paths.
#include <gtest/gtest.h>

#include "fault/host_fault.hpp"
#include "hw/presets.hpp"
#include "net/headers.hpp"
#include "os/costs.hpp"
#include "os/kernel.hpp"
#include "os/kmalloc.hpp"
#include "os/sockbuf.hpp"
#include "sim/simulator.hpp"

namespace xgbe::os {
namespace {

TEST(Kmalloc, PowerOfTwoClasses) {
  EXPECT_EQ(kmalloc_block(1), 32u);
  EXPECT_EQ(kmalloc_block(32), 32u);
  EXPECT_EQ(kmalloc_block(33), 64u);
  EXPECT_EQ(kmalloc_block(8192), 8192u);
  EXPECT_EQ(kmalloc_block(8193), 16384u);
  EXPECT_EQ(kmalloc_block(200000), 131072u);  // clamped to largest cache
}

TEST(Kmalloc, PaperBlockFacts) {
  // "An 8160-byte MTU allows an entire packet ... to fit in a single
  // [8192]-byte block whereas a 9000-byte MTU requires the kernel to
  // allocate a [16384]-byte block, thus wasting roughly 7000 bytes" (§3.3).
  const std::uint32_t frame8160 = 8160 + net::kEthHeaderBytes;  // 8174
  const std::uint32_t frame9000 = 9000 + net::kEthHeaderBytes;  // 9014
  EXPECT_EQ(rx_data_block(frame8160), 8192u);
  EXPECT_EQ(rx_data_block(frame9000), 16384u);
  EXPECT_NEAR(rx_alloc_waste(frame9000), 7000.0, 500.0);
  EXPECT_LT(rx_alloc_waste(frame8160), 32u);
}

TEST(Kmalloc, TruesizeIncludesSkbStruct) {
  EXPECT_EQ(skb_truesize(9014), 16384u + kSkbStructBytes);
  EXPECT_EQ(skb_truesize(1518), 2048u + kSkbStructBytes);
}

TEST(RxSockBuf, DefaultBufferAdvertises64K) {
  // Linux 2.4 default rcvbuf 87380 with adv_win_scale=2 -> 64 KB window.
  RxSocketBuffer b(87380);
  EXPECT_EQ(b.full_window_space(2), 65535u);
}

TEST(RxSockBuf, ChargeAndRelease) {
  RxSocketBuffer b(87380);
  EXPECT_TRUE(b.charge_frame(9014, 8948));
  EXPECT_EQ(b.rmem_alloc(), skb_truesize(9014));
  EXPECT_EQ(b.payload_queued(), 8948u);
  b.release_payload(8948);
  EXPECT_EQ(b.rmem_alloc(), 0u);
  EXPECT_EQ(b.payload_queued(), 0u);
}

TEST(RxSockBuf, PartialReleaseProportional) {
  RxSocketBuffer b(262144);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.charge_frame(9014, 8948));
  const std::uint32_t full = b.rmem_alloc();
  b.release_payload(8948 * 2);
  EXPECT_NEAR(b.rmem_alloc(), full / 2.0, 8.0);
}

TEST(RxSockBuf, PureAckChargesNothingDurably) {
  RxSocketBuffer b(87380);
  EXPECT_TRUE(b.charge_frame(66, 0));
  EXPECT_EQ(b.rmem_alloc(), 0u);
}

TEST(RxSockBuf, DropsOnlyBeyondPressureCeiling) {
  RxSocketBuffer b(20000);
  // Fill past rcvbuf: accepted (prune semantics), until 2x rcvbuf.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (b.charge_frame(9014, 8948)) ++accepted;
  }
  EXPECT_GE(accepted, 2);
  EXPECT_LT(accepted, 10);
  EXPECT_GT(b.drops(), 0u);
  EXPECT_LE(b.rmem_alloc(), 2u * 20000u + skb_truesize(9014));
}

TEST(RxSockBuf, WindowSpaceShrinksWithAllocation) {
  RxSocketBuffer b(262144);
  const std::uint32_t before = b.window_space(2);
  EXPECT_TRUE(b.charge_frame(9014, 8948));
  EXPECT_LT(b.window_space(2), before);
}

TEST(TxSockBuf, ChargeReleaseAndFull) {
  TxSocketBuffer b(65536);
  EXPECT_FALSE(b.full());
  b.charge(40000);
  b.charge(30000);
  EXPECT_TRUE(b.full());
  b.release(40000);
  EXPECT_FALSE(b.full());
  b.release(100000);  // over-release clamps at zero
  EXPECT_EQ(b.wmem_alloc(), 0u);
}

TEST(TxSockBuf, WritablePayloadUsesTruesize) {
  TxSocketBuffer b(65536);
  // 9014-byte frames: truesize 16544 -> 3 segments fit in 64 KB.
  EXPECT_EQ(b.writable_payload(9014, 8948), 3u * 8948u);
}

TEST(Costs, ScalingDirections) {
  const auto base = KernelCosts::scaled_for(hw::presets::pe2650());
  const auto fast = KernelCosts::scaled_for(hw::presets::intel_e7505());
  EXPECT_LT(fast.rx_proto, base.rx_proto);      // faster clock
  EXPECT_LT(fast.irq_entry, base.irq_entry);    // faster FSB
  EXPECT_LT(fast.rx_copy_factor, base.rx_copy_factor);
  EXPECT_LT(fast.alloc_ghost_factor, base.alloc_ghost_factor);
}

TEST(Costs, AllocCostGrowsWithBlockOrder) {
  const auto c = KernelCosts::scaled_for(hw::presets::pe2650());
  EXPECT_LT(c.alloc_cost(2048), c.alloc_cost(8192));
  EXPECT_LT(c.alloc_cost(8192), c.alloc_cost(16384));
}

TEST(Costs, SmpFactorOnlyInSmpMode) {
  const auto c = KernelCosts::scaled_for(hw::presets::pe2650());
  EXPECT_DOUBLE_EQ(c.mode_factor(KernelMode::kUniprocessor), 1.0);
  EXPECT_GT(c.mode_factor(KernelMode::kSmp), 1.3);
}

class KernelFixture : public ::testing::Test {
 protected:
  Kernel make(KernelMode mode) {
    KernelConfig cfg;
    cfg.mode = mode;
    return Kernel(sim_, hw::presets::pe2650(), cfg);
  }
  sim::Simulator sim_;
};

TEST_F(KernelFixture, UpKernelUsesOneCpu) {
  auto k = make(KernelMode::kUniprocessor);
  EXPECT_EQ(k.active_cpus(), 1);
  EXPECT_EQ(&k.irq_cpu(), &k.app_cpu());
}

TEST_F(KernelFixture, SmpKernelSplitsCpus) {
  auto k = make(KernelMode::kSmp);
  EXPECT_EQ(k.active_cpus(), 2);
  EXPECT_NE(&k.irq_cpu(), &k.app_cpu());
}

TEST_F(KernelFixture, AppWriteCompletesAndChargesCpu) {
  auto k = make(KernelMode::kUniprocessor);
  bool done = false;
  k.app_write(65536, 8, 16384, [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_GT(k.app_cpu().busy_time(), sim::usec(50));  // ~61 us of copy
  EXPECT_GT(k.membus().busy_time(), 0);
}

TEST_F(KernelFixture, AppReadIncludesWakeupDelay) {
  auto k = make(KernelMode::kUniprocessor);
  sim::SimTime done_at = 0;
  k.app_read(1, [&] { done_at = sim_.now(); });
  sim_.run();
  // Wakeup latency is dead time before the (tiny) copy.
  EXPECT_GT(done_at, k.costs().wakeup);
  // But wakeup must not be charged as CPU busy time.
  EXPECT_LT(k.app_cpu().busy_time(), k.costs().wakeup);
}

TEST_F(KernelFixture, RxInterruptDeliversInOrder) {
  auto k = make(KernelMode::kSmp);
  std::vector<std::uint64_t> seen;
  std::vector<net::Packet> batch(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    batch[i].id = i;
    batch[i].protocol = net::Protocol::kTcp;
    batch[i].payload_bytes = 1448;
    batch[i].frame_bytes = 1518;
  }
  k.rx_interrupt(batch, true, [&](const net::Packet& p) {
    seen.push_back(p.id);
  });
  sim_.run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST_F(KernelFixture, RxAllocFailureDropsFrameWithAccounting) {
  auto k = make(KernelMode::kUniprocessor);
  fault::HostFaultPlan plan;
  plan.with_alloc_failure(1.0, /*budget=*/1);  // exactly one kmalloc NULL
  fault::HostFaultInjector inj(plan);
  k.set_host_faults(&inj);
  std::vector<std::uint64_t> seen;
  std::vector<net::Packet> batch(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    batch[i].id = i;
    batch[i].protocol = net::Protocol::kTcp;
    batch[i].payload_bytes = 1448;
    batch[i].frame_bytes = 1518;
  }
  k.rx_interrupt(batch, true, [&](const net::Packet& p) {
    seen.push_back(p.id);
  });
  sim_.run();
  // The first frame hits the failed allocation and is dropped; the rest
  // flow once the budget is spent. Order is preserved.
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(inj.counters().alloc_fail_rx, 1u);
}

TEST_F(KernelFixture, TxAllocFailureBacksOffAndRetries) {
  auto k = make(KernelMode::kUniprocessor);
  fault::HostFaultPlan plan;
  plan.with_alloc_failure(1.0, /*budget=*/2);
  plan.alloc_retry_backoff = sim::usec(50);
  fault::HostFaultInjector inj(plan);
  k.set_host_faults(&inj);
  sim::SimTime done_at = -1;
  k.app_write(65536, 8, 16384, [&] { done_at = sim_.now(); });
  sim_.run();
  // Nothing is lost: the write completes, delayed by two backoff rounds.
  EXPECT_GE(done_at, sim::usec(100));
  EXPECT_EQ(inj.counters().alloc_fail_tx, 2u);
}

TEST_F(KernelFixture, SchedPauseDefersReaderAndWriter) {
  auto k = make(KernelMode::kUniprocessor);
  fault::HostFaultPlan plan;
  plan.with_sched_pause(0, sim::msec(5));
  fault::HostFaultInjector inj(plan);
  k.set_host_faults(&inj);
  sim::SimTime write_done = -1;
  sim::SimTime read_done = -1;
  k.app_write(8948, 1, 16384, [&] { write_done = sim_.now(); });
  k.app_read(8948, [&] { read_done = sim_.now(); });
  sim_.run();
  // Both syscalls enter the kernel only after the process runs again.
  EXPECT_GE(write_done, sim::msec(5));
  EXPECT_GE(read_done, sim::msec(5));
  EXPECT_EQ(inj.counters().sched_defers, 2u);
}

TEST_F(KernelFixture, InactiveHostFaultsLeaveTimingBitIdentical) {
  auto charge = [&](bool armed) {
    Kernel k = make(KernelMode::kUniprocessor);
    fault::HostFaultInjector inj;  // default plan: inactive
    if (armed) k.set_host_faults(&inj);
    bool done = false;
    k.app_write(65536, 8, 16384, [&] { done = true; });
    net::Packet p;
    p.protocol = net::Protocol::kTcp;
    p.payload_bytes = 8948;
    p.frame_bytes = 9014;
    k.rx_interrupt({p}, true, [](const net::Packet&) {});
    sim_.run();
    EXPECT_TRUE(done);
    return k.app_cpu().busy_time() + k.irq_cpu().busy_time() +
           k.membus().busy_time();
  };
  EXPECT_EQ(charge(true), charge(false));
}

TEST_F(KernelFixture, ChecksumOffloadSavesCpu) {
  auto charge = [&](bool offload) {
    Kernel k = make(KernelMode::kUniprocessor);
    net::Packet p;
    p.protocol = net::Protocol::kTcp;
    p.payload_bytes = 8948;
    p.frame_bytes = 9014;
    k.rx_interrupt({p}, offload, [](const net::Packet&) {});
    sim_.run();
    return k.irq_cpu().busy_time();
  };
  EXPECT_GT(charge(false), charge(true) + sim::usec(2));
}

TEST_F(KernelFixture, GhostTrafficOnlyForOversizedBlocks) {
  auto ghost = [&](std::uint32_t frame) {
    Kernel k = make(KernelMode::kUniprocessor);
    net::Packet p;
    p.protocol = net::Protocol::kTcp;
    p.payload_bytes = frame - 66;
    p.frame_bytes = frame;
    k.rx_interrupt({p}, true, [](const net::Packet&) {});
    sim_.run();
    return k.membus().busy_time();
  };
  // A 9014-byte frame wastes ~7 KB of its 16 KB block; an 8174-byte frame
  // wastes almost nothing.
  EXPECT_GT(ghost(9014), ghost(8174) + sim::usec(2));
}

}  // namespace
}  // namespace xgbe::os

// Connection-lifecycle robustness: RST generation and classification,
// close() in pre-established states, handshake give-up, simultaneous close
// through kClosing, TIME_WAIT absorbing replayed FINs (with a restarted
// 2MSL), and listener SYN-queue overflow shedding load gracefully.
#include <gtest/gtest.h>

#include <string>

#include "core/churn.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"
#include "sim/watchdog.hpp"

namespace xgbe {
namespace {

struct Rig {
  core::Testbed tb;
  core::Host* a = nullptr;
  core::Host* b = nullptr;
  link::Link* wire = nullptr;

  explicit Rig(const fault::FaultPlan& plan = fault::FaultPlan{},
               sim::SimTime propagation = 0) {
    const auto tuning = core::TuningProfile::lan_tuned(9000);
    a = &tb.add_host("a", hw::presets::pe2650(), tuning);
    b = &tb.add_host("b", hw::presets::pe2650(), tuning);
    link::LinkSpec spec;
    if (propagation > 0) spec.propagation = propagation;
    wire = &tb.connect(*a, *b, spec);
    if (plan.active()) wire->set_fault_plan(plan);
  }
};

// --- Satellite 1: close() before establishment -----------------------------

TEST(TcpLifecycle, CloseInSynSentTearsDownDeterministically) {
  Rig rig;
  // No listener on b: but close before the SYN's fate matters.
  auto& ep = rig.a->create_endpoint(rig.a->endpoint_config(), 7,
                                    rig.b->node());
  bool closed_fired = false;
  ep.on_closed = [&]() { closed_fired = true; };
  ep.connect();
  ASSERT_EQ(ep.state(), tcp::TcpState::kSynSent);
  EXPECT_EQ(rig.a->connection_count(), 1u);

  ep.close();
  EXPECT_TRUE(ep.closed());
  EXPECT_TRUE(closed_fired) << "close() in SYN_SENT must fire on_closed";
  EXPECT_EQ(ep.close_reason(), tcp::CloseReason::kGraceful);
  EXPECT_EQ(rig.a->connection_count(), 0u)
      << "closed endpoint must leave the connection table";

  // The armed handshake timer must be gone: the queue drains (run()
  // returns) instead of retransmitting SYNs from a dead endpoint forever.
  rig.tb.run();
  EXPECT_TRUE(ep.closed());
  EXPECT_EQ(rig.a->adapter().tx_frames(), 1u)
      << "no SYN retransmit after close";
  EXPECT_TRUE(ep.stuck_violation(rig.tb.now()).empty());
}

TEST(TcpLifecycle, CloseInListenReleasesImmediately) {
  Rig rig;
  auto& ep = rig.b->create_endpoint(rig.b->endpoint_config(), 7,
                                    rig.a->node());
  ep.listen();
  bool closed_fired = false;
  ep.on_closed = [&]() { closed_fired = true; };
  ep.close();
  EXPECT_TRUE(ep.closed());
  EXPECT_TRUE(closed_fired);
  EXPECT_EQ(rig.b->connection_count(), 0u);
  rig.tb.run();  // nothing pending
}

// --- RST generation and classification -------------------------------------

TEST(TcpLifecycle, SynToHostWithoutListenerIsRefused) {
  Rig rig;
  auto& ep = rig.a->create_endpoint(rig.a->endpoint_config(), 9,
                                    rig.b->node());
  ep.connect();
  rig.tb.run_for(sim::msec(10));

  EXPECT_TRUE(ep.closed());
  EXPECT_EQ(ep.close_reason(), tcp::CloseReason::kRefused);
  EXPECT_EQ(ep.stats().rsts_received, 1u);
  EXPECT_EQ(rig.b->rsts_sent(), 1u)
      << "the target host answers an unmatched SYN with one RST";
  EXPECT_EQ(rig.a->rsts_sent(), 0u)
      << "a RST must never be answered with a RST";
}

TEST(TcpLifecycle, AbortSendsRstAndPeerClassifiesReset) {
  Rig rig;
  auto conn = rig.tb.open_connection(*rig.a, *rig.b,
                                     rig.a->endpoint_config(),
                                     rig.b->endpoint_config());
  ASSERT_TRUE(rig.tb.run_until_established(conn));

  conn.client->abort();
  EXPECT_TRUE(conn.client->closed());
  EXPECT_EQ(conn.client->close_reason(), tcp::CloseReason::kAborted);
  EXPECT_EQ(conn.client->stats().aborts, 1u);
  EXPECT_EQ(conn.client->stats().rsts_sent, 1u);

  rig.tb.run_for(sim::msec(10));
  EXPECT_TRUE(conn.server->closed());
  EXPECT_EQ(conn.server->close_reason(), tcp::CloseReason::kReset);
  EXPECT_EQ(conn.server->stats().rsts_received, 1u);
}

TEST(TcpLifecycle, HandshakeRetriesBackOffThenGiveUp) {
  // Drop every lifecycle segment: the SYN can never get through, so the
  // client must retransmit with doubling backoff and eventually give up
  // instead of wedging in SYN_SENT forever.
  Rig rig(fault::FaultPlan{}.with_seed(3).with_handshake_loss(1.0));
  auto& ep = rig.a->create_endpoint(rig.a->endpoint_config(), 11,
                                    rig.b->node());
  ep.connect();

  rig.tb.run_for(sim::sec(60));
  EXPECT_EQ(ep.state(), tcp::TcpState::kSynSent) << "still retrying at 60 s";
  EXPECT_TRUE(ep.stuck_violation(rig.tb.now()).empty())
      << "retry phase is within the handshake budget";

  rig.tb.run_for(sim::sec(60));  // give-up lands at ~93 s
  EXPECT_TRUE(ep.closed());
  EXPECT_EQ(ep.close_reason(), tcp::CloseReason::kHandshakeTimeout);
  EXPECT_EQ(ep.stats().handshake_failures, 1u);
  EXPECT_EQ(rig.a->adapter().tx_frames(), 5u)
      << "initial SYN + 4 backed-off retransmits";
  EXPECT_EQ(rig.a->connection_count(), 0u);
}

// --- Satellite 3a: simultaneous close walks kClosing ------------------------

struct SimultaneousCloseOutcome {
  bool saw_closing_client = false;
  bool saw_closing_server = false;
  std::string fingerprint;
};

SimultaneousCloseOutcome run_simultaneous_close() {
  // 5 ms of propagation keeps the crossed FINs (and the kClosing windows
  // they open) wide enough to observe with coarse polling.
  Rig rig(fault::FaultPlan{}, sim::msec(5));
  auto conn = rig.tb.open_connection(*rig.a, *rig.b,
                                     rig.a->endpoint_config(),
                                     rig.b->endpoint_config());
  EXPECT_TRUE(rig.tb.run_until_established(conn));

  // Both ends close in the same event slot: the FINs cross on the wire.
  conn.client->close();
  conn.server->close();

  SimultaneousCloseOutcome out;
  for (int i = 0; i < 40000; ++i) {
    if (conn.client->state() == tcp::TcpState::kClosing) {
      out.saw_closing_client = true;
    }
    if (conn.server->state() == tcp::TcpState::kClosing) {
      out.saw_closing_server = true;
    }
    if (conn.client->closed() && conn.server->closed()) break;
    rig.tb.run_for(sim::usec(100));
  }
  EXPECT_TRUE(conn.client->closed());
  EXPECT_TRUE(conn.server->closed());
  EXPECT_EQ(conn.client->close_reason(), tcp::CloseReason::kGraceful);
  EXPECT_EQ(conn.server->close_reason(), tcp::CloseReason::kGraceful);
  out.fingerprint =
      "c_seg=" + std::to_string(conn.client->stats().segments_sent) + "/" +
      std::to_string(conn.client->stats().segments_received) +
      " s_seg=" + std::to_string(conn.server->stats().segments_sent) + "/" +
      std::to_string(conn.server->stats().segments_received) +
      " acks=" + std::to_string(conn.client->stats().acks_sent) + "/" +
      std::to_string(conn.server->stats().acks_sent) +
      " closed_at=" + std::to_string(rig.tb.now());
  return out;
}

TEST(TcpLifecycle, SimultaneousCloseWalksClosingAndIsBitIdentical) {
  const auto first = run_simultaneous_close();
  EXPECT_TRUE(first.saw_closing_client && first.saw_closing_server)
      << "crossed FINs must pass through kClosing on both ends";
  const auto rerun = run_simultaneous_close();
  EXPECT_EQ(first.fingerprint, rerun.fingerprint)
      << "simultaneous close replayed differently — determinism broke";
}

// --- Satellite 3b: TIME_WAIT absorbs a replayed FIN -------------------------

struct TimeWaitOutcome {
  std::uint64_t absorbed = 0;
  bool restarted_2msl = false;
  std::string fingerprint;
};

TimeWaitOutcome run_time_wait_replay() {
  Rig rig;
  auto conn = rig.tb.open_connection(*rig.a, *rig.b,
                                     rig.a->endpoint_config(),
                                     rig.b->endpoint_config());
  EXPECT_TRUE(rig.tb.run_until_established(conn));

  // Record the server's FIN off the client host's receive path so it can be
  // replayed later, exactly as a retransmission would look.
  net::Packet server_fin;
  bool have_fin = false;
  rig.a->packet_tap = [&](const net::Packet& pkt) {
    if (pkt.tcp.flags.fin && !have_fin) {
      server_fin = pkt;
      have_fin = true;
    }
  };

  conn.client->close();
  rig.tb.run_for(sim::msec(5));
  conn.server->close();
  TimeWaitOutcome out;
  for (int i = 0; i < 1000; ++i) {
    if (conn.client->state() == tcp::TcpState::kTimeWait) break;
    rig.tb.run_for(sim::usec(100));
  }
  EXPECT_EQ(conn.client->state(), tcp::TcpState::kTimeWait);
  EXPECT_TRUE(have_fin);

  // Half the 2MSL period in, replay the FIN: it must be absorbed (ACKed,
  // counted) and the quiet period must restart from the replay.
  rig.tb.run_for(sim::msec(500));
  EXPECT_EQ(conn.client->state(), tcp::TcpState::kTimeWait);
  conn.client->on_packet(server_fin);
  out.absorbed = conn.client->stats().time_wait_absorbed;

  // 0.9 s later the original expiry (at +0.5 s) has long passed; only the
  // restarted clock keeps the endpoint in TIME_WAIT.
  rig.tb.run_for(sim::msec(900));
  out.restarted_2msl = conn.client->state() == tcp::TcpState::kTimeWait;
  rig.tb.run_for(sim::msec(200));  // past the restarted 2MSL
  EXPECT_TRUE(conn.client->closed());
  EXPECT_EQ(conn.client->close_reason(), tcp::CloseReason::kGraceful);
  out.fingerprint =
      "absorbed=" + std::to_string(out.absorbed) +
      " acks=" + std::to_string(conn.client->stats().acks_sent) +
      " seg=" + std::to_string(conn.client->stats().segments_sent) + "/" +
      std::to_string(conn.client->stats().segments_received) +
      " now=" + std::to_string(rig.tb.now());
  rig.a->packet_tap = nullptr;
  return out;
}

TEST(TcpLifecycle, TimeWaitAbsorbsReplayedFinAndRestarts2Msl) {
  const auto first = run_time_wait_replay();
  EXPECT_EQ(first.absorbed, 1u);
  EXPECT_TRUE(first.restarted_2msl)
      << "replayed FIN must restart the 2MSL quiet period";
  const auto rerun = run_time_wait_replay();
  EXPECT_EQ(first.fingerprint, rerun.fingerprint)
      << "TIME_WAIT replay scenario is not bit-identical across reruns";
}

// --- Listener backlog overflow ----------------------------------------------

TEST(TcpLifecycle, SynQueueOverflowRefusesGracefully) {
  Rig rig;
  tcp::ListenerConfig lcfg;
  lcfg.syn_backlog = 2;
  lcfg.rst_on_overflow = true;
  auto& listener = rig.b->listen(lcfg, rig.b->endpoint_config());
  listener.on_accept = [](tcp::Endpoint& ep) {
    ep.on_peer_fin = [&ep]() { ep.close(); };
  };

  sim::Watchdog dog(rig.tb.simulator());
  dog.add_invariant("a", [&]() {
    return rig.a->lifecycle_violation(rig.tb.now());
  });
  dog.add_invariant("b", [&]() {
    return rig.b->lifecycle_violation(rig.tb.now());
  });
  dog.watch_progress("segments", [&]() {
    return rig.a->frames_demuxed() + rig.b->frames_demuxed();
  });
  dog.arm();

  // Eight SYNs in the same burst against a two-deep SYN queue: two half-open
  // slots win, six are refused with a RST each — counted, no wedge.
  std::vector<tcp::Endpoint*> clients;
  for (int i = 0; i < 8; ++i) {
    auto& ep = rig.a->create_endpoint(rig.a->endpoint_config(),
                                      rig.tb.next_flow(), rig.b->node());
    ep.connect();
    clients.push_back(&ep);
  }
  rig.tb.run_for(sim::msec(50));

  int established = 0;
  int refused = 0;
  for (tcp::Endpoint* ep : clients) {
    if (ep->established()) ++established;
    if (ep->close_reason() == tcp::CloseReason::kRefused) ++refused;
  }
  EXPECT_EQ(established, 2);
  EXPECT_EQ(refused, 6);
  EXPECT_EQ(listener.stats().syns_received, 8u);
  EXPECT_EQ(listener.stats().accepted, 2u);
  EXPECT_EQ(listener.stats().refused_syn_queue, 6u);
  EXPECT_FALSE(dog.tripped()) << dog.diagnosis();

  // Every endpoint is either live-and-legal or terminally closed; none are
  // stuck in a transient state.
  EXPECT_TRUE(rig.a->lifecycle_violation(rig.tb.now()).empty());
  EXPECT_TRUE(rig.b->lifecycle_violation(rig.tb.now()).empty());
  dog.disarm();
}

// --- The whole lifecycle through the listener, end to end -------------------

TEST(TcpLifecycle, ChurnSmokeCompletesAndConserves) {
  Rig rig;
  core::churn::Options opt;
  opt.seed = 0x5eed;
  opt.connections = 50;
  opt.arrival_rate_hz = 1000.0;
  opt.max_bytes = 32768;
  const auto res = core::churn::run(rig.tb, *rig.a, *rig.b, opt);
  EXPECT_EQ(res.opened, 50u);
  EXPECT_EQ(res.completed, 50u);
  EXPECT_TRUE(res.conserved());
  EXPECT_GT(res.connections_per_sec(), 0.0);
  EXPECT_GT(res.fct_mean_seconds(), 0.0);
  EXPECT_EQ(rig.a->connection_count(), 0u) << "no live connections remain";
  EXPECT_EQ(rig.b->connection_count(), 0u);
  EXPECT_EQ(rig.a->conn_opens(), 50u);
  EXPECT_EQ(rig.a->conn_closes(), 50u);
}

}  // namespace
}  // namespace xgbe

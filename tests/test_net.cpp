// Unit tests for the header/framing size model and sequence arithmetic.
#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/seq.hpp"

namespace xgbe::net {
namespace {

TEST(Headers, MssForStandardMtus) {
  EXPECT_EQ(mss_for_mtu(1500), 1460u);
  EXPECT_EQ(mss_for_mtu(9000), 8960u);
  EXPECT_EQ(mss_for_mtu(8160), 8120u);
  EXPECT_EQ(mss_for_mtu(16000), 15960u);
}

TEST(Headers, TimestampsCost12BytesPerSegment) {
  EXPECT_EQ(payload_per_segment(9000, false), 8960u);
  // The paper's 8948-byte MSS: 9000 MTU with timestamps enabled (§3.5.1).
  EXPECT_EQ(payload_per_segment(9000, true), 8948u);
}

TEST(Headers, TcpFrameBytes) {
  // 1448 payload + 20 IP + 20 TCP + 12 TS + 14 ETH + 4 CRC = 1518.
  EXPECT_EQ(tcp_frame_bytes(1448, true), 1518u);
  EXPECT_EQ(tcp_frame_bytes(1460, false), 1518u);
  EXPECT_EQ(tcp_frame_bytes(0, false), 58u);
}

TEST(Headers, UdpFrameBytes) {
  EXPECT_EQ(udp_frame_bytes(8132), 8178u);  // 8160-byte IP packet + eth
}

TEST(Headers, WireOccupancyEnforcesMinFrame) {
  EXPECT_EQ(wire_occupancy_bytes(10), kEthMinFrameBytes + kEthWireGapBytes);
  EXPECT_EQ(wire_occupancy_bytes(1518), 1518u + 20u);
}

TEST(Headers, WireEfficiencyImprovesWithMtu) {
  const double e1500 = tcp_wire_efficiency(1500, true);
  const double e9000 = tcp_wire_efficiency(9000, true);
  const double e16000 = tcp_wire_efficiency(16000, true);
  EXPECT_LT(e1500, e9000);
  EXPECT_LT(e9000, e16000);
  EXPECT_GT(e1500, 0.90);
  EXPECT_GT(e9000, 0.98);
}

TEST(Seq, BasicComparisons) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_le(2, 2));
  EXPECT_TRUE(seq_gt(3, 2));
  EXPECT_TRUE(seq_ge(3, 3));
}

TEST(Seq, WrapAround) {
  const Seq near_max = 0xfffffff0u;
  const Seq wrapped = near_max + 0x20u;  // wraps past zero
  EXPECT_TRUE(seq_lt(near_max, wrapped));
  EXPECT_TRUE(seq_gt(wrapped, near_max));
  EXPECT_EQ(seq_span(near_max, wrapped), 0x20u);
}

TEST(Seq, MinMaxAndIn) {
  EXPECT_EQ(seq_max(5u, 9u), 9u);
  EXPECT_EQ(seq_min(5u, 9u), 5u);
  EXPECT_TRUE(seq_in(5, 5, 10));
  EXPECT_FALSE(seq_in(10, 5, 10));
  const Seq hi = 0xfffffffau;
  EXPECT_TRUE(seq_in(2, hi, 10));  // interval spanning the wrap
}

TEST(Packet, WireBytesUsesFraming) {
  Packet p;
  p.frame_bytes = 1518;
  EXPECT_EQ(p.wire_bytes(), 1538u);
  p.frame_bytes = 20;
  EXPECT_EQ(p.wire_bytes(), 84u);  // min frame + gap
}

// Property: seq comparisons are a strict weak order within a half-space.
class SeqOrderTest : public ::testing::TestWithParam<Seq> {};

TEST_P(SeqOrderTest, OrderConsistentUnderOffset) {
  const Seq base = GetParam();
  for (std::uint32_t d = 1; d < 0x40000000u; d <<= 3) {
    EXPECT_TRUE(seq_lt(base, base + d)) << base << " " << d;
    EXPECT_TRUE(seq_gt(base + d, base));
    EXPECT_FALSE(seq_lt(base + d, base));
    EXPECT_EQ(seq_span(base, base + d), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, SeqOrderTest,
                         ::testing::Values(0u, 1u, 0x7fffffffu, 0x80000000u,
                                           0xfffffff0u, 0xffffffffu));

}  // namespace
}  // namespace xgbe::net

// Unit tests for the adapter model: DMA timing, coalescing, TSO, rings.
#include <gtest/gtest.h>

#include <vector>

#include "fault/host_fault.hpp"
#include "hw/presets.hpp"
#include "link/link.hpp"
#include "net/headers.hpp"
#include "nic/adapter.hpp"

namespace xgbe::nic {
namespace {

class SinkDevice : public link::NetDevice {
 public:
  void deliver(const net::Packet& pkt) override { packets.push_back(pkt); }
  std::vector<net::Packet> packets;
};

class AdapterFixture : public ::testing::Test {
 protected:
  AdapterFixture()
      : membus_(sim_, "membus"),
        spec_(intel_pro10gbe()),
        sys_(hw::presets::pe2650()) {}

  std::unique_ptr<Adapter> make(std::uint32_t mmrbc,
                                sim::SimTime intr_delay = sim::usec(5)) {
    AdapterSpec s = spec_;
    s.intr_delay = intr_delay;
    return std::make_unique<Adapter>(sim_, s, sys_.pcix, sys_.memory, mmrbc,
                                     membus_, "eth0");
  }

  net::Packet data_packet(std::uint32_t payload) {
    net::Packet p;
    p.protocol = net::Protocol::kTcp;
    p.payload_bytes = payload;
    p.frame_bytes = net::tcp_frame_bytes(payload, true);
    p.tcp.timestamps = true;
    p.tcp.flags.ack = true;
    return p;
  }

  sim::Simulator sim_;
  sim::Resource membus_;
  AdapterSpec spec_;
  hw::SystemSpec sys_;
};

TEST_F(AdapterFixture, TxDmaTimeMatchesBusModel) {
  auto nic = make(4096);
  link::Link wire(sim_, link::LinkSpec{}, "w");
  SinkDevice peer;
  nic->connect(&wire, true);
  wire.attach_b(&peer);

  const net::Packet p = data_packet(8948);
  nic->transmit(p);
  sim_.run();
  ASSERT_EQ(peer.packets.size(), 1u);
  EXPECT_EQ(nic->pci_bus().busy_time(),
            hw::dma_read_service_time(sys_.pcix, p.frame_bytes, 4096));
  EXPECT_GT(membus_.busy_time(), 0);
}

TEST_F(AdapterFixture, MmrbcChangesApply) {
  auto nic = make(512);
  EXPECT_EQ(nic->mmrbc(), 512u);
  nic->set_mmrbc(4096);
  EXPECT_EQ(nic->mmrbc(), 4096u);
  nic->set_mmrbc(777);  // invalid, ignored
  EXPECT_EQ(nic->mmrbc(), 4096u);
}

TEST_F(AdapterFixture, CoalescingBatchesPackets) {
  auto nic = make(4096, sim::usec(5));
  std::vector<std::size_t> batch_sizes;
  nic->set_rx_handler([&](net::PacketBatch batch) {
    batch_sizes.push_back(batch->size());
  });
  // Three frames arrive 1 us apart: all inside the 5 us coalescing window.
  for (int i = 0; i < 3; ++i) {
    sim_.schedule(sim::usec(i), [&, i] { nic->deliver(data_packet(1448)); });
  }
  sim_.run();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 3u);
  EXPECT_EQ(nic->interrupts_raised(), 1u);
}

TEST_F(AdapterFixture, CoalescingDisabledInterruptsPerPacket) {
  auto nic = make(4096, 0);
  std::vector<std::size_t> batch_sizes;
  nic->set_rx_handler([&](net::PacketBatch batch) {
    batch_sizes.push_back(batch->size());
  });
  for (int i = 0; i < 3; ++i) {
    sim_.schedule(sim::usec(i), [&] { nic->deliver(data_packet(1448)); });
  }
  sim_.run();
  EXPECT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(nic->interrupts_raised(), 3u);
}

TEST_F(AdapterFixture, CoalescingDelayBoundsLatency) {
  auto nic = make(4096, sim::usec(5));
  sim::SimTime irq_at = -1;
  nic->set_rx_handler([&](net::PacketBatch) { irq_at = sim_.now(); });
  nic->deliver(data_packet(1));
  sim_.run();
  // DMA first, then the 5 us delay.
  const sim::SimTime dma =
      hw::dma_write_service_time(sys_.pcix, data_packet(1).frame_bytes);
  EXPECT_EQ(irq_at, dma + sim::usec(5));
}

TEST_F(AdapterFixture, FullBatchRaisesEarly) {
  AdapterSpec s = spec_;
  s.intr_delay = sim::msec(10);  // long delay: only the cap can fire
  s.max_coalesce = 4;
  Adapter nic(sim_, s, sys_.pcix, sys_.memory, 4096, membus_, "eth0");
  std::vector<std::size_t> batch_sizes;
  nic.set_rx_handler([&](net::PacketBatch batch) {
    batch_sizes.push_back(batch->size());
  });
  for (int i = 0; i < 4; ++i) nic.deliver(data_packet(1448));
  sim_.run_until(sim::msec(1));
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
}

TEST_F(AdapterFixture, RxRingOverflowDrops) {
  AdapterSpec s = spec_;
  s.rx_ring = 8;
  s.intr_delay = sim::msec(100);  // interrupt never fires in time
  s.max_coalesce = 1000;
  Adapter nic(sim_, s, sys_.pcix, sys_.memory, 4096, membus_, "eth0");
  nic.set_rx_handler([](net::PacketBatch) {});
  for (int i = 0; i < 20; ++i) nic.deliver(data_packet(1448));
  sim_.run_until(sim::usec(1));
  EXPECT_GT(nic.rx_dropped_ring(), 0u);
}

TEST_F(AdapterFixture, TsoSplitsSuperSegment) {
  auto nic = make(4096);
  link::Link wire(sim_, link::LinkSpec{}, "w");
  SinkDevice peer;
  nic->connect(&wire, true);
  wire.attach_b(&peer);

  net::Packet super = data_packet(30000);
  super.tcp.seq = 1000;
  super.tcp.tso_mss = 8948;
  super.tcp.push = true;
  nic->transmit(super);
  sim_.run();

  ASSERT_EQ(peer.packets.size(), 4u);  // 8948*3 + 3156
  net::Seq expect_seq = 1000;
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < peer.packets.size(); ++i) {
    const net::Packet& f = peer.packets[i];
    EXPECT_EQ(f.tcp.seq, expect_seq);
    EXPECT_LE(f.payload_bytes, 8948u);
    EXPECT_EQ(f.frame_bytes, net::tcp_frame_bytes(f.payload_bytes, true));
    EXPECT_EQ(f.tcp.tso_mss, 0u);
    EXPECT_EQ(f.tcp.push, i + 1 == peer.packets.size());
    expect_seq += f.payload_bytes;
    total += f.payload_bytes;
  }
  EXPECT_EQ(total, 30000u);
  // One DMA for the whole super-segment.
  EXPECT_EQ(nic->pci_bus().jobs_completed(), 1u);
}

TEST_F(AdapterFixture, TxFifoBackpressureStallsDma) {
  // A slow wire (1 Gb/s) behind a fast bus: the FIFO fills and DMA stalls,
  // but every frame is eventually delivered.
  AdapterSpec s = intel_e1000();
  s.tx_fifo_bytes = 16 * 1024;
  Adapter nic(sim_, s, sys_.pcix, sys_.memory, 4096, membus_, "eth0");
  link::LinkSpec ls;
  ls.rate_bps = 1e9;
  link::Link wire(sim_, ls, "w");
  SinkDevice peer;
  nic.connect(&wire, true);
  wire.attach_b(&peer);
  for (int i = 0; i < 50; ++i) nic.transmit(data_packet(8948));
  sim_.run();
  EXPECT_EQ(peer.packets.size(), 50u);
  EXPECT_EQ(nic.tx_frames(), 50u);
}

// --- Host-path faults at the device layer ------------------------------------

TEST_F(AdapterFixture, RxRingStallDropsThenRecovers) {
  AdapterSpec s = spec_;
  s.rx_ring = 8;
  s.intr_delay = sim::usec(5);
  s.max_coalesce = 4;
  Adapter nic(sim_, s, sys_.pcix, sys_.memory, 4096, membus_, "eth0");
  fault::HostFaultPlan plan;
  plan.with_rx_ring_stall(0, sim::usec(200));
  fault::HostFaultInjector inj(plan);
  nic.set_host_faults(&inj);
  std::size_t delivered = 0;
  nic.set_rx_handler([&](net::PacketBatch batch) {
    delivered += batch->size();
  });
  // Fill the ring during the stall: consumed slots are not replenished...
  for (int i = 0; i < 8; ++i) {
    sim_.schedule(sim::usec(i), [&] { nic.deliver(data_packet(1448)); });
  }
  // ...so these arrivals find the ring full and drop.
  for (int i = 0; i < 6; ++i) {
    sim_.schedule(sim::usec(20 + i), [&] { nic.deliver(data_packet(1448)); });
  }
  // After the window the refill catches up and frames flow again.
  for (int i = 0; i < 4; ++i) {
    sim_.schedule(sim::usec(300 + i), [&] { nic.deliver(data_packet(1448)); });
  }
  sim_.run();
  EXPECT_EQ(nic.rx_dropped_ring(), 6u);
  EXPECT_EQ(inj.counters().ring_stall_drops, 6u);
  EXPECT_EQ(delivered, 12u);  // everything that reached the ring
}

TEST_F(AdapterFixture, TxRingStallPausesDmaThenRecovers) {
  auto nic = make(4096);
  link::Link wire(sim_, link::LinkSpec{}, "w");
  SinkDevice peer;
  nic->connect(&wire, true);
  wire.attach_b(&peer);
  fault::HostFaultPlan plan;
  plan.with_tx_ring_stall(0, sim::usec(100));
  fault::HostFaultInjector inj(plan);
  nic->set_host_faults(&inj);

  for (int i = 0; i < 3; ++i) nic->transmit(data_packet(8948));
  sim_.run_until(sim::usec(50));
  EXPECT_EQ(peer.packets.size(), 0u);  // DMA paused mid-stall
  EXPECT_EQ(nic->tx_backlog(), 3u);
  EXPECT_GT(inj.counters().tx_ring_stalls, 0u);
  sim_.run();
  EXPECT_EQ(peer.packets.size(), 3u);  // recovery drains the backlog
}

TEST_F(AdapterFixture, MissedInterruptRescuedByRecoveryPoll) {
  auto nic = make(4096, sim::usec(5));
  fault::HostFaultPlan plan;
  plan.with_irq_miss(1.0, sim::msec(2));
  fault::HostFaultInjector inj(plan);
  nic->set_host_faults(&inj);
  sim::SimTime irq_at = -1;
  std::size_t delivered = 0;
  nic->set_rx_handler([&](net::PacketBatch batch) {
    irq_at = sim_.now();
    delivered += batch->size();
  });
  nic->deliver(data_packet(1448));
  sim_.run();
  EXPECT_EQ(delivered, 1u);  // the frame is late, never lost
  EXPECT_GE(irq_at, sim::msec(2));
  EXPECT_GE(inj.counters().irq_missed, 1u);
  EXPECT_EQ(inj.counters().irq_recovered, 1u);
}

TEST_F(AdapterFixture, IrqStormForcesPerFrameInterrupts) {
  auto nic = make(4096, sim::usec(5));  // coalescing normally batches these
  fault::HostFaultPlan plan;
  plan.with_irq_storm(0, sim::msec(10));
  fault::HostFaultInjector inj(plan);
  nic->set_host_faults(&inj);
  std::vector<std::size_t> batch_sizes;
  nic->set_rx_handler([&](net::PacketBatch batch) {
    batch_sizes.push_back(batch->size());
  });
  for (int i = 0; i < 3; ++i) {
    sim_.schedule(sim::usec(i), [&] { nic->deliver(data_packet(1448)); });
  }
  sim_.run();
  EXPECT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(nic->interrupts_raised(), 3u);
  EXPECT_EQ(inj.counters().irq_storm_interrupts, 3u);
}

TEST_F(AdapterFixture, DmaThrottleClampsMmrbcAndAddsFreeze) {
  auto nic = make(4096);
  link::Link wire(sim_, link::LinkSpec{}, "w");
  SinkDevice peer;
  nic->connect(&wire, true);
  wire.attach_b(&peer);
  fault::HostFaultPlan plan;
  plan.with_dma_throttle(0, sim::msec(10), /*mmrbc=*/512,
                         /*freeze=*/sim::usec(5));
  fault::HostFaultInjector inj(plan);
  nic->set_host_faults(&inj);

  const net::Packet p = data_packet(8948);
  nic->transmit(p);
  sim_.run();
  ASSERT_EQ(peer.packets.size(), 1u);
  // Degraded service: the 512-byte-burst read plus the arbitration freeze.
  EXPECT_EQ(nic->pci_bus().busy_time(),
            hw::dma_read_service_time(sys_.pcix, p.frame_bytes, 512) +
                sim::usec(5));
  EXPECT_EQ(inj.counters().dma_throttled, 1u);
  EXPECT_EQ(nic->mmrbc(), 4096u);  // the register itself is untouched
}

TEST(AdapterSpecs, GbeVsTenGig) {
  const AdapterSpec ten = intel_pro10gbe();
  const AdapterSpec one = intel_e1000();
  EXPECT_DOUBLE_EQ(ten.line_rate_bps, 10e9);
  EXPECT_DOUBLE_EQ(one.line_rate_bps, 1e9);
  EXPECT_EQ(ten.max_mtu, 16000u);  // the 82597EX maximum (§3.3)
  EXPECT_TRUE(ten.csum_offload);
  EXPECT_TRUE(ten.tso_capable);
}

}  // namespace
}  // namespace xgbe::nic

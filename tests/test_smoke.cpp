// End-to-end smoke tests: the full stack must move data between two hosts.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

TEST(Smoke, HandshakeEstablishes) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::stock(net::kMtuJumbo);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn = tb.open_connection(a, b, a.endpoint_config(),
                                 b.endpoint_config());
  ASSERT_TRUE(tb.run_until_established(conn));
  EXPECT_GT(conn.client->mss_payload(), 8000u);
}

TEST(Smoke, NttcpMovesData) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::stock(net::kMtuJumbo);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn = tb.open_connection(a, b, a.endpoint_config(),
                                 b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8192;
  opt.count = 500;
  auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8192u * 500u);
  EXPECT_GT(r.throughput_gbps(), 0.3);
  EXPECT_LT(r.throughput_gbps(), 10.0);
}

TEST(Smoke, NetpipeLatencyIsMicroseconds) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(net::kMtuJumbo);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::NetpipeOptions opt;
  opt.payload = 1;
  opt.iterations = 50;
  auto r = tools::run_netpipe(tb, conn, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.latency_us, 5.0);
  EXPECT_LT(r.latency_us, 60.0);
}

}  // namespace
}  // namespace xgbe

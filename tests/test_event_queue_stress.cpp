// Randomized differential test: the indexed-heap EventQueue against a naive
// reference implementation (a flat vector scanned for the minimum), driven
// by seeded schedule/cancel/pop interleavings. Covers the hazards the heap's
// handle table must get right: cancel-after-fire, duplicate cancels, and
// slot reuse aliasing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace xgbe::sim {
namespace {

// Reference model: every scheduled event, with the same (time, insertion
// order) total order as the real queue.
struct RefEvent {
  SimTime time = 0;
  std::uint64_t tag = 0;  // insertion order; doubles as the tie-breaker
  bool live = false;
};

std::size_t ref_min(const std::vector<RefEvent>& ref) {
  std::size_t best = ref.size();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (!ref[i].live) continue;
    if (best == ref.size() || ref[i].time < ref[best].time ||
        (ref[i].time == ref[best].time && ref[i].tag < ref[best].tag)) {
      best = i;
    }
  }
  return best;
}

std::size_t ref_live(const std::vector<RefEvent>& ref) {
  std::size_t n = 0;
  for (const auto& e : ref) n += e.live ? 1 : 0;
  return n;
}

TEST(EventQueueStress, MatchesNaiveReference) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 777ull, 123456789ull}) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    EventQueue q;
    std::vector<RefEvent> ref;
    std::vector<EventId> ids;
    std::uint64_t last_fired = ~0ull;

    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t roll = rng.next_below(100);
      if (roll < 45 || ref_live(ref) == 0) {
        const auto time = static_cast<SimTime>(rng.next_below(1u << 20));
        const std::uint64_t tag = ref.size();
        ids.push_back(q.schedule(time, [tag, &last_fired] {
          last_fired = tag;
        }));
        ref.push_back({time, tag, true});
      } else if (roll < 70) {
        // Cancel a random event — live, already fired, or already
        // cancelled. The latter two must be exact no-ops.
        const std::size_t k = rng.next_below(ids.size());
        q.cancel(ids[k]);
        ref[k].live = false;
      } else if (roll < 75 && !ids.empty()) {
        // Duplicate cancel of something guaranteed dead.
        const std::size_t k = rng.next_below(ids.size());
        if (!ref[k].live) q.cancel(ids[k]);
      } else {
        const std::size_t expect = ref_min(ref);
        ASSERT_LT(expect, ref.size());
        ASSERT_FALSE(q.empty());
        auto fired = q.pop();
        EXPECT_EQ(fired.time, ref[expect].time);
        last_fired = ~0ull;
        fired.cb();
        EXPECT_EQ(last_fired, ref[expect].tag);
        ref[expect].live = false;
      }
      ASSERT_EQ(q.size(), ref_live(ref));
    }

    // Drain: the remaining pop order must match the reference exactly.
    while (!q.empty()) {
      const std::size_t expect = ref_min(ref);
      ASSERT_LT(expect, ref.size());
      auto fired = q.pop();
      last_fired = ~0ull;
      fired.cb();
      EXPECT_EQ(last_fired, ref[expect].tag);
      EXPECT_EQ(fired.time, ref[expect].time);
      ref[expect].live = false;
    }
    EXPECT_EQ(ref_live(ref), 0u);
  }
}

// After an event fires, its handle slot may be reused by a new event; the
// old id's generation must no longer match, so cancelling it leaves the
// new tenant untouched even under heavy reuse.
TEST(EventQueueStress, StaleCancelsNeverKillNewTenants) {
  EventQueue q;
  std::vector<EventId> fired_ids;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    auto id = q.schedule(round, [&fired] { ++fired; });
    q.pop().cb();
    fired_ids.push_back(id);
  }
  EXPECT_EQ(fired, 100);
  // Fresh events, then stale cancels aimed at every retired handle.
  std::vector<EventId> live_ids;
  for (int i = 0; i < 100; ++i) {
    live_ids.push_back(q.schedule(1000 + i, [&fired] { ++fired; }));
  }
  for (auto id : fired_ids) q.cancel(id);
  EXPECT_EQ(q.size(), 100u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 200);
}

}  // namespace
}  // namespace xgbe::sim

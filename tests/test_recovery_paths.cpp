// Targeted recovery-path tests the chaos soak leans on: RTO exponential
// backoff and Karn's rule under a sustained ACK blackout, persist probes
// rescuing a lost window update, and the fast-retransmit vs timeout split
// in EndpointStats.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/testbed.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct Pair {
  core::Testbed tb;
  core::Host* a = nullptr;
  core::Host* b = nullptr;
  link::Link* wire = nullptr;

  explicit Pair(const core::TuningProfile& tuning) {
    a = &tb.add_host("a", hw::presets::pe2650(), tuning);
    b = &tb.add_host("b", hw::presets::pe2650(), tuning);
    wire = &tb.connect(*a, *b);
  }
};

TEST(RtoBackoff, DoublesUnderAckBlackoutAndKarnProtectsSrtt) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  ASSERT_TRUE(p.tb.run_until_established(conn));

  // Warm the RTT estimator with one clean exchange; before the first data
  // sample the RTO sits at the 3 s initial value, which would hide the
  // backoff progression this test is after.
  conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::msec(100));
  ASSERT_EQ(conn.client->stats().bytes_acked, 8948u);
  const sim::SimTime srtt_before = conn.client->srtt();
  ASSERT_GT(srtt_before, 0);
  ASSERT_LT(srtt_before, sim::msec(1));  // LAN-scale estimate

  // Black-hole the ACK path (b -> a) for two seconds, starting now. Data
  // keeps arriving at the receiver; every acknowledgment dies on the return
  // wire, so the sender can only recover through its retransmission timer.
  fault::FaultPlan blackout;
  blackout.flaps.push_back(
      fault::LinkFlap{p.tb.now(), p.tb.now() + sim::sec(2)});
  p.wire->set_fault_plan(blackout, /*from_a=*/false);

  // Record when each retransmission hits the wire.
  std::vector<sim::SimTime> retx_times;
  p.wire->tap = [&](const net::Packet& pkt, bool from_a) {
    if (from_a && pkt.tcp.is_retransmit && pkt.payload_bytes > 0) {
      retx_times.push_back(p.tb.now());
    }
  };

  conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::sec(8));
  p.wire->tap = nullptr;

  // Every recovery was timer-driven: no duplicate ACKs ever came back.
  EXPECT_EQ(conn.client->stats().fast_retransmits, 0u);
  EXPECT_GE(conn.client->stats().timeouts, 3u);
  ASSERT_GE(retx_times.size(), 3u);

  // Successive RTO intervals must grow exponentially (2x, within jitter).
  for (std::size_t i = 2; i < retx_times.size(); ++i) {
    const double prev =
        sim::to_seconds(retx_times[i - 1] - retx_times[i - 2]);
    const double cur = sim::to_seconds(retx_times[i] - retx_times[i - 1]);
    EXPECT_GT(cur, prev * 1.5)
        << "interval " << i << " did not back off (" << prev << "s -> "
        << cur << "s)";
  }

  // Karn's rule: the ACK that finally arrives acknowledges a segment that
  // was retransmitted seconds after its first transmission. Measuring that
  // ambiguous ACK would blow srtt up to seconds; it must stay at LAN scale.
  EXPECT_EQ(conn.client->stats().bytes_acked, 2u * 8948u);
  EXPECT_LT(conn.client->srtt(), sim::msec(50));
  EXPECT_GE(conn.client->srtt(), srtt_before / 4);
}

TEST(Persist, ProbesRescueALostWindowUpdate) {
  // The textbook deadlock the persist timer exists for: the reader stops,
  // the window closes, and when the reader comes back the reopening
  // window-update ACK is lost. Without probes both ends would wait
  // forever; the probe (and its retransmissions) must notice the reopened
  // window and rescue the transfer.
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto cb = p.b->endpoint_config();
  cb.app_reader = false;  // reader is away; the window will slam shut
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(), cb);
  ASSERT_TRUE(p.tb.run_until_established(conn));

  const std::uint64_t total = 40ull * 8948ull;
  for (int i = 0; i < 40; ++i) conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::sec(2));
  // The window closed and probing began while the reader was away.
  ASSERT_GT(conn.client->stats().window_probes, 0u);
  ASSERT_LT(conn.server->stats().bytes_delivered, total);

  // The reader returns — but every ACK it sends for the next two seconds
  // (including the window update that reopens the transfer) is lost.
  fault::FaultPlan blackout;
  blackout.flaps.push_back(
      fault::LinkFlap{p.tb.now(), p.tb.now() + sim::sec(2)});
  p.wire->set_fault_plan(blackout, /*from_a=*/false);
  conn.server->set_app_reader(true);

  p.tb.run_for(sim::sec(60));
  EXPECT_EQ(conn.server->stats().bytes_consumed, total);
  EXPECT_EQ(conn.client->stats().bytes_acked, total);
  EXPECT_GT(p.wire->fault_counters().drops_carrier, 0u);
  EXPECT_EQ(conn.client->invariant_violation(), "");
  EXPECT_EQ(conn.server->invariant_violation(), "");
}

TEST(Accounting, SingleDropInAPipelineIsAFastRetransmit) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  ASSERT_TRUE(p.tb.run_until_established(conn));
  // Lose one data frame once the pipeline is deep enough for three
  // duplicate ACKs to come back.
  p.tb.simulator().schedule(sim::msec(2), [&]() {
    p.wire->fault_injector(true).inject_drops(1);
  });
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 400;
  const auto r = tools::run_nttcp(p.tb, conn, *p.a, *p.b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 8948ull * 400ull);
  EXPECT_EQ(conn.client->stats().retransmits, 1u);
  EXPECT_EQ(conn.client->stats().fast_retransmits, 1u);
  EXPECT_EQ(conn.client->stats().timeouts, 0u);
  EXPECT_EQ(p.wire->fault_injector(true).counters().drops_forced, 1u);
}

TEST(Accounting, SingleDropWithNothingInFlightNeedsTheTimer) {
  Pair p(core::TuningProfile::lan_tuned(9000));
  auto conn = p.tb.open_connection(*p.a, *p.b, p.a->endpoint_config(),
                                   p.b->endpoint_config());
  ASSERT_TRUE(p.tb.run_until_established(conn));
  // One lone write, dropped: no later segments, so no duplicate ACKs can
  // trigger fast retransmit — only the RTO recovers it.
  p.wire->fault_injector(true).inject_drops(1);
  std::uint64_t consumed = 0;
  conn.server->on_consumed = [&](std::uint64_t bytes) { consumed += bytes; };
  conn.client->app_send(8948, nullptr);
  p.tb.run_for(sim::sec(5));
  EXPECT_EQ(consumed, 8948u);
  EXPECT_EQ(conn.client->stats().timeouts, 1u);
  EXPECT_EQ(conn.client->stats().fast_retransmits, 0u);
  EXPECT_EQ(conn.client->stats().retransmits, 1u);
}

}  // namespace
}  // namespace xgbe

// Regression tests for the repo's reproducibility contract: identical
// inputs give bit-identical simulations, whether runs happen back to back
// in one process or fanned across parallel_sweep worker threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bench/parallel_sweep.hpp"
#include "core/testbed.hpp"
#include "sim/recorder.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

struct RunCapture {
  std::uint64_t executed_events = 0;
  double gbps = 0.0;
  std::uint64_t retransmits = 0;
  std::vector<std::pair<sim::SimTime, double>> samples;

  bool operator==(const RunCapture&) const = default;
};

// One Fig 2a NTTCP run (back-to-back PE2650s, stock tuning), instrumented
// with a Recorder sampling the sender's acked-byte curve.
RunCapture fig2a_run(std::uint32_t payload) {
  core::Testbed tb;
  const auto tuning = core::TuningProfile::stock(9000);
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  sim::Recorder rec(tb.simulator(), sim::usec(200), [&conn] {
    return static_cast<double>(conn.client->stats().bytes_acked);
  });
  rec.start();
  tools::NttcpOptions opt;
  opt.payload = payload;
  opt.count = 400;
  const auto result = tools::run_nttcp(tb, conn, a, b, opt);
  rec.stop();
  RunCapture cap;
  cap.executed_events = tb.simulator().executed_events();
  cap.gbps = result.throughput_gbps();
  cap.retransmits = result.retransmits;
  cap.samples = rec.samples();
  return cap;
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const RunCapture first = fig2a_run(8000);
  const RunCapture second = fig2a_run(8000);
  EXPECT_GT(first.executed_events, 0u);
  EXPECT_GT(first.gbps, 0.0);
  EXPECT_FALSE(first.samples.empty());
  EXPECT_EQ(first, second);
}

// The same contract must survive the bench sweep runner: worker threads may
// execute points in any order, but per-point results are committed by index
// and each simulation is self-contained, so thread count cannot change them.
TEST(Determinism, ParallelSweepMatchesSerial) {
  const std::vector<std::uint32_t> payloads = {1024, 8000, 8948};
  auto runner = [](const std::uint32_t& payload) { return fig2a_run(payload); };
  const auto serial = bench::parallel_sweep(payloads, runner, 1);
  const auto parallel = bench::parallel_sweep(payloads, runner, 4);
  ASSERT_EQ(serial.size(), payloads.size());
  EXPECT_EQ(serial, parallel);
  // And against a fresh in-thread run, so the sweep itself is not just
  // self-consistent but agrees with the plain call.
  EXPECT_EQ(serial[1], fig2a_run(8000));
}

}  // namespace
}  // namespace xgbe

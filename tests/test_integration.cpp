// Cross-module integration tests: topologies, conservation, the tuning
// ladder, multi-flow aggregation, WAN behaviour, tool semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "link/wan.hpp"
#include "tools/iperf.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"
#include "tools/pktgen.hpp"
#include "tools/stream.hpp"

namespace xgbe {
namespace {

double nttcp_gbps(const core::TuningProfile& tuning, std::uint32_t payload,
                  std::uint32_t count = 1500) {
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = payload;
  opt.count = count;
  return tools::run_nttcp(tb, conn, a, b, opt).throughput_gbps();
}

TEST(Ladder, EachRungImprovesJumboPeak) {
  // §3.3 at the favourable payload: every optimization rung must help.
  const double stock = nttcp_gbps(core::TuningProfile::stock(9000), 8000);
  const double pci =
      nttcp_gbps(core::TuningProfile::with_pci_burst(9000), 8000);
  const double buf =
      nttcp_gbps(core::TuningProfile::with_big_windows(9000), 8000);
  EXPECT_GT(pci, stock * 1.2);
  EXPECT_GT(buf, pci * 0.95);
  EXPECT_GT(buf, stock * 1.4);
}

TEST(Ladder, MmrbcMarginalForStandardMtu) {
  // §3.3: the burst-size fix barely moves 1500-byte-MTU throughput.
  const double stock = nttcp_gbps(core::TuningProfile::stock(1500), 8000);
  const double pci =
      nttcp_gbps(core::TuningProfile::with_pci_burst(1500), 8000);
  EXPECT_LT(pci / stock, 1.15);
}

TEST(Ladder, JumboBeatsStandardMtu) {
  const double mtu1500 = nttcp_gbps(core::TuningProfile::stock(1500), 8000);
  const double mtu9000 = nttcp_gbps(core::TuningProfile::stock(9000), 8000);
  EXPECT_GT(mtu9000, mtu1500 * 1.3);  // paper: 40-60% better
}

TEST(Conservation, EveryByteDeliveredOnce) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 7777;
  opt.count = 700;
  auto r = tools::run_nttcp(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  const std::uint64_t total = 7777ull * 700ull;
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(conn.client->stats().bytes_sent, total);
  EXPECT_EQ(conn.client->stats().bytes_acked, total);
  EXPECT_EQ(conn.server->stats().bytes_delivered, total);
  EXPECT_EQ(conn.server->stats().bytes_consumed, total);
}

TEST(Switch, ThroughSwitchMatchesBackToBack) {
  // Fig 2b: indirect single flow loses little bandwidth through the switch.
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  const double b2b = nttcp_gbps(tuning, 8000);

  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& sw = tb.add_switch();
  tb.connect_to_switch(a, sw);
  tb.connect_to_switch(b, sw);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8000;
  opt.count = 1500;
  const double sw_gbps =
      tools::run_nttcp(tb, conn, a, b, opt).throughput_gbps();
  EXPECT_GT(sw_gbps, b2b * 0.9);
}

TEST(Switch, LatencyHigherThanBackToBack) {
  auto latency = [](bool through_switch) {
    core::Testbed tb;
    auto tuning = core::TuningProfile::lan_tuned(9000);
    auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
    auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
    if (through_switch) {
      auto& sw = tb.add_switch();
      tb.connect_to_switch(a, sw);
      tb.connect_to_switch(b, sw);
    } else {
      tb.connect(a, b);
    }
    auto cfg = tools::netpipe_config(a.endpoint_config());
    auto conn = tb.open_connection(a, b, cfg, cfg);
    tools::NetpipeOptions opt;
    opt.payload = 1;
    opt.iterations = 30;
    return tools::run_netpipe(tb, conn, opt).latency_us;
  };
  const double direct = latency(false);
  const double switched = latency(true);
  // The paper's 19 vs 25 us: ~6 us of switch latency.
  EXPECT_NEAR(switched - direct, 6.0, 1.5);
}

TEST(Iperf, AgreesWithNttcp) {
  // §3.2: "the performance difference between the two is within 2-3%"; we
  // allow a slightly wider band since write sizes differ.
  const auto tuning = core::TuningProfile::lan_tuned(9000);

  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cfg = tools::iperf_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, b.endpoint_config());
  tools::IperfOptions opt;
  auto r = tools::run_iperf(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  const double nttcp = nttcp_gbps(tuning, 8948, 2000);
  EXPECT_NEAR(r.throughput_gbps() / nttcp, 1.0, 0.25);
}

TEST(Pktgen, BypassesStackAndBeatsTcp) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  tools::PktgenOptions opt;
  opt.duration = sim::msec(50);
  auto r = tools::run_pktgen(tb, a, b, opt);
  ASSERT_TRUE(r.completed);
  // ~5.5 Gb/s on the PE2650 at 8160-byte packets (§3.5.2), CPU mostly idle.
  EXPECT_NEAR(r.throughput_gbps(), 5.7, 0.4);
  EXPECT_NEAR(r.packets_per_sec, 88400.0, 4000.0);
  EXPECT_LT(r.sender_load, 0.3);
}

TEST(Stream, MatchesMemorySpec) {
  core::Testbed tb;
  auto& a = tb.add_host("a", hw::presets::pe2650(),
                        core::TuningProfile::stock(1500));
  auto r = tools::run_stream(tb, a);
  EXPECT_NEAR(r.copy_gbps(), 8.6, 0.2);  // PE2650 STREAM copy

  core::Testbed tb2;
  auto& c = tb2.add_host("c", hw::presets::pe4600(),
                         core::TuningProfile::stock(1500));
  auto r2 = tools::run_stream(tb2, c);
  EXPECT_NEAR(r2.copy_gbps(), 12.8, 0.3);  // PE4600 STREAM (§3.5.2)
}

TEST(DualAdapter, SecondAdapterDoesNotHelp) {
  // §3.5.2: splitting flows across two adapters on independent buses is
  // statistically identical to one adapter — the host, not the bus, is the
  // bottleneck. Run two flows into one host, one or two adapters.
  auto aggregate = [](bool two_adapters) {
    core::Testbed tb;
    auto tuning = core::TuningProfile::lan_tuned(9000);
    auto& rx = tb.add_host("rx", hw::presets::pe2650(), tuning);
    std::size_t second = 0;
    if (two_adapters) second = rx.add_adapter(nic::intel_pro10gbe());
    auto& tx1 = tb.add_host("tx1", hw::presets::pe2650(), tuning);
    auto& tx2 = tb.add_host("tx2", hw::presets::pe2650(), tuning);
    tb.connect(tx1, rx, link::LinkSpec{}, 0, 0);
    tb.connect(tx2, rx, link::LinkSpec{}, 0, two_adapters ? second : 0);
    // Two adapters on one link port is impossible; with one adapter we need
    // a switch. Use a switch for the single-adapter case instead.
    auto c1 = tools::iperf_config(tx1.endpoint_config());
    auto conn1 = tb.open_connection(tx1, rx, c1, rx.endpoint_config());
    auto conn2 = tb.open_connection(tx2, rx, c1, rx.endpoint_config(), 0,
                                    two_adapters ? second : 0);
    tb.run_until_established(conn1);
    tb.run_until_established(conn2);
    auto consumed = std::make_shared<std::uint64_t>(0);
    std::vector<std::shared_ptr<std::function<void()>>> writers;
    for (auto* conn : {&conn1, &conn2}) {
      conn->server->on_consumed = [consumed](std::uint64_t b) {
        *consumed += b;
      };
      auto writer = std::make_shared<std::function<void()>>();
      auto* client = conn->client;
      *writer = [writer, client]() {
        client->app_send(65536, [writer]() { (*writer)(); });
      };
      (*writer)();
      writers.push_back(writer);
    }
    tb.run_for(sim::msec(30));
    const std::uint64_t base = *consumed;
    const sim::SimTime t0 = tb.now();
    tb.run_for(sim::msec(100));
    for (auto& w : writers) *w = nullptr;  // break self-reference cycles
    return static_cast<double>(*consumed - base) * 8.0 /
           sim::to_seconds(tb.now() - t0) / 1e9;
  };
  const double two = aggregate(true);
  EXPECT_GT(two, 2.5);
  EXPECT_LT(two, 5.5);  // host-bound, nowhere near 2x one adapter's line
}

TEST(Wan, BdpBuffersReachOc48PayloadRate) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::wan(80u * 1024 * 1024);
  auto& a = tb.add_host("sv", hw::presets::wan_endpoint(), tuning);
  auto& b = tb.add_host("ge", hw::presets::wan_endpoint(), tuning);
  tb.build_wan_path(
      a, b,
      {link::wan::oc192_pos(link::wan::kSunnyvaleChicagoKm),
       link::wan::oc48_pos(link::wan::kChicagoGenevaKm)},
      link::wan::router_spec());
  auto cfg = tools::iperf_config(a.endpoint_config());
  cfg.read_chunk = 1 << 20;
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::IperfOptions opt;
  opt.write_size = 256 * 1024;
  opt.warmup = sim::sec(8);
  opt.duration = sim::sec(4);
  auto r = tools::run_iperf(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.throughput_gbps(), 2.38, 0.05);  // the LSR figure
  EXPECT_EQ(conn.client->stats().retransmits, 0u);
}

TEST(Wan, SmallBuffersThrottleByWindow) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::wan(8u * 1024 * 1024);
  auto& a = tb.add_host("sv", hw::presets::wan_endpoint(), tuning);
  auto& b = tb.add_host("ge", hw::presets::wan_endpoint(), tuning);
  tb.build_wan_path(
      a, b,
      {link::wan::oc192_pos(link::wan::kSunnyvaleChicagoKm),
       link::wan::oc48_pos(link::wan::kChicagoGenevaKm)},
      link::wan::router_spec());
  auto cfg = tools::iperf_config(a.endpoint_config());
  cfg.read_chunk = 1 << 20;
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::IperfOptions opt;
  opt.write_size = 256 * 1024;
  opt.warmup = sim::sec(8);
  opt.duration = sim::sec(4);
  auto r = tools::run_iperf(tb, conn, a, b, opt);
  ASSERT_TRUE(r.completed);
  // ~6 MB window / 176 ms RTT ~= 0.27 Gb/s.
  EXPECT_LT(r.throughput_gbps(), 0.5);
}

TEST(MultiFlow, GbeClientsAggregateThroughSwitch) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::with_big_windows(9000);
  auto& head = tb.add_host("head", hw::presets::pe2650(), tuning);
  auto& sw = tb.add_switch();
  tb.connect_to_switch(head, sw);
  link::LinkSpec gbe;
  gbe.rate_bps = 1e9;
  std::vector<core::Testbed::Connection> conns;
  std::vector<core::Host*> clients;
  for (int i = 0; i < 4; ++i) {
    auto& c = tb.add_host("c" + std::to_string(i), hw::presets::gbe_client(),
                          tuning, nic::intel_e1000());
    tb.connect_to_switch(c, sw, gbe);
    clients.push_back(&c);
    conns.push_back(tb.open_connection(
        c, head, tools::iperf_config(c.endpoint_config()),
        head.endpoint_config()));
  }
  for (auto& conn : conns) ASSERT_TRUE(tb.run_until_established(conn));
  auto consumed = std::make_shared<std::uint64_t>(0);
  std::vector<std::shared_ptr<std::function<void()>>> writers;
  for (auto& conn : conns) {
    conn.server->on_consumed = [consumed](std::uint64_t b) { *consumed += b; };
    auto writer = std::make_shared<std::function<void()>>();
    auto* client = conn.client;
    *writer = [writer, client]() {
      client->app_send(65536, [writer]() { (*writer)(); });
    };
    (*writer)();
    writers.push_back(writer);
  }
  tb.run_for(sim::msec(30));
  const std::uint64_t base = *consumed;
  const sim::SimTime t0 = tb.now();
  tb.run_for(sim::msec(100));
  for (auto& w : writers) *w = nullptr;  // break self-reference cycles
  const double gbps = static_cast<double>(*consumed - base) * 8.0 /
                      sim::to_seconds(tb.now() - t0) / 1e9;
  // Four GbE clients aggregate to most of 4 Gb/s into one 10GbE host.
  EXPECT_GT(gbps, 2.5);
  EXPECT_LT(gbps, 4.0);
}

TEST(Netpipe, LatencyGrowsWithPayload) {
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::NetpipeOptions opt;
  opt.iterations = 30;
  double prev = 0.0;
  for (std::uint32_t payload : {1u, 128u, 512u, 1024u}) {
    opt.payload = payload;
    auto r = tools::run_netpipe(tb, conn, opt);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.latency_us, prev * 0.98);
    prev = r.latency_us;
  }
  // Paper Fig 6: ~20% growth from 1 byte to 1 KB.
  EXPECT_LT(prev, 30.0);
}

}  // namespace
}  // namespace xgbe

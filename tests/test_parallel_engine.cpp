// Parallel engine determinism suite.
//
// The sharded engine's contract is bit-identical results for any shard or
// thread count. These tests run the canonical pair cluster (core/cluster)
// at shard counts 1/2/4/8 — serial and with a worker pool, clean and under
// chaos fault plans — and compare full metrics-registry fingerprints, event
// totals, and merged per-shard traces. The TSan CI job runs this binary
// (label `parallel`) to sweep the worker pool for races.
//
// Set XGBE_CHAOS_SEED to decorrelate the fault plans' RNG seeds (the value
// is XOR-folded in); the active seed is echoed on failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"
#include "hw/presets.hpp"
#include "net/headers.hpp"
#include "obs/trace.hpp"
#include "sim/shard.hpp"

namespace {

using xgbe::core::cluster::build;
using xgbe::core::cluster::Cluster;
using xgbe::core::cluster::drive;
using xgbe::core::cluster::fingerprint;
using xgbe::core::cluster::Options;

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

std::uint64_t chaos_seed() {
  const char* env = std::getenv("XGBE_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 0);
}

struct RunResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  std::uint64_t exchanged = 0;
  std::uint64_t consumed = 0;
  xgbe::sim::SimTime now = 0;
};

RunResult run_cluster(Options opt,
                      xgbe::sim::SimTime window = xgbe::sim::msec(4)) {
  auto c = build(opt);
  drive(*c, xgbe::sim::msec(1), window);
  RunResult r;
  r.fingerprint = fingerprint(*c);
  r.events = c->tb.engine().executed_events();
  r.exchanged = c->tb.engine().exchanged();
  r.consumed = c->consumed;
  r.now = c->tb.now();
  return r;
}

void expect_identical(const RunResult& base, const RunResult& got,
                      const std::string& label) {
  EXPECT_EQ(base.fingerprint, got.fingerprint) << label;
  EXPECT_EQ(base.events, got.events) << label;
  EXPECT_EQ(base.exchanged, got.exchanged) << label;
  EXPECT_EQ(base.consumed, got.consumed) << label;
  EXPECT_EQ(base.now, got.now) << label;
}

TEST(ParallelEngine, BitIdenticalAcrossShardCounts) {
  Options opt;
  opt.hosts = 8;
  RunResult base;
  for (const std::size_t shards : kShardCounts) {
    opt.shards = shards;
    const RunResult got = run_cluster(opt);
    if (shards == 1) {
      base = got;
      EXPECT_GT(base.consumed, 0u) << "workload must actually move bytes";
      continue;
    }
    expect_identical(base, got, "shards=" + std::to_string(shards));
  }
}

TEST(ParallelEngine, BitIdenticalWithWorkerThreads) {
  // hardware_concurrency is 1 on small CI runners, which would pick the
  // serial path; force a real worker pool so TSan has something to watch.
  Options opt;
  opt.hosts = 8;
  opt.shards = 1;
  opt.threads = 1;
  const RunResult base = run_cluster(opt);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    opt.shards = shards;
    opt.threads = 4;
    expect_identical(base, run_cluster(opt),
                     "threads=4 shards=" + std::to_string(shards));
  }
}

TEST(ParallelEngine, BitIdenticalUnderChaosFaultPlans) {
  Options opt;
  opt.hosts = 8;
  opt.link_fault = xgbe::fault::FaultPlan{}
                       .with_seed(0xc4a05eedULL ^ chaos_seed())
                       .with_loss(0.005)
                       .with_duplication(0.002)
                       .with_reordering(0.002, xgbe::sim::usec(30));
  RunResult base;
  for (const std::size_t shards : kShardCounts) {
    opt.shards = shards;
    opt.threads = shards > 1 ? 4 : 0;
    const RunResult got = run_cluster(opt);
    if (shards == 1) {
      base = got;
      continue;
    }
    expect_identical(base, got,
                     "chaos shards=" + std::to_string(shards) +
                         " [XGBE_CHAOS_SEED=" + std::to_string(chaos_seed()) +
                         "]");
  }
}

TEST(ParallelEngine, SingleHostTimerLoadIsShardCountInvariant) {
  Options opt;
  opt.hosts = 1;
  RunResult base;
  for (const std::size_t shards : kShardCounts) {
    opt.shards = shards;
    const RunResult got = run_cluster(opt);
    if (shards == 1) {
      base = got;
      EXPECT_GT(base.events, 0u);
      continue;
    }
    expect_identical(base, got,
                     "solo host shards=" + std::to_string(shards));
  }
}

// Merged per-shard traces must be a partition-invariant timeline: the same
// events, in the same (time, payload) order, whichever shard recorded them.
TEST(ParallelEngine, MergedShardTracesAreIdentical) {
  std::uint64_t base_fp = 0;
  std::uint64_t base_count = 0;
  for (const std::size_t shards : kShardCounts) {
    std::vector<std::unique_ptr<xgbe::obs::TraceSink>> sinks;
    std::vector<xgbe::obs::TraceSink*> raw;
    std::vector<const xgbe::obs::TraceSink*> craw;
    for (std::size_t i = 0; i < shards; ++i) {
      // Large enough to retain the whole run: the merge sees everything.
      sinks.push_back(std::make_unique<xgbe::obs::TraceSink>(1 << 16));
      raw.push_back(sinks.back().get());
      craw.push_back(sinks.back().get());
    }
    Options opt;
    opt.hosts = 8;
    opt.shards = shards;
    opt.shard_traces = raw;  // armed before the topology: links record too
    auto c = build(opt);
    drive(*c, xgbe::sim::msec(1), xgbe::sim::msec(4));
    const auto merged = xgbe::obs::merge_sorted(craw);
    const std::uint64_t fp = xgbe::obs::fingerprint(merged);
    std::uint64_t total = 0;
    for (const auto& sink : sinks) total += sink->recorded();
    if (shards == 1) {
      base_fp = fp;
      base_count = total;
      EXPECT_GT(base_count, 0u) << "trace must capture the workload";
      continue;
    }
    EXPECT_EQ(base_fp, fp) << "shards=" << shards;
    EXPECT_EQ(base_count, total) << "shards=" << shards;
  }
}

// The engine watchdog evaluates at barriers only: arming it must not
// perturb the simulation in any way.
TEST(ParallelEngine, ArmedWatchdogIsBitIdenticalToUnarmed) {
  Options opt;
  opt.hosts = 4;
  opt.shards = 2;
  const RunResult unarmed = run_cluster(opt);

  auto c = build(opt);
  auto& engine = c->tb.engine();
  // Sum the live per-pair counters: progress functions run at barriers, so
  // reading every shard's counter from one thread is safe by construction.
  auto* pairs = &c->pair_consumed;
  engine.watch_progress("consumed_bytes", [pairs]() {
    std::uint64_t total = 0;
    for (const std::uint64_t b : *pairs) total += b;
    return total;
  });
  engine.arm_watchdog({/*interval=*/xgbe::sim::usec(200),
                       /*stalled_ticks=*/10});
  drive(*c, xgbe::sim::msec(1), xgbe::sim::msec(4));
  EXPECT_FALSE(engine.tripped()) << engine.diagnosis();
  RunResult armed;
  armed.fingerprint = fingerprint(*c);
  armed.events = engine.executed_events();
  armed.exchanged = engine.exchanged();
  armed.consumed = c->consumed;
  armed.now = c->tb.now();
  expect_identical(unarmed, armed, "armed watchdog");
}

TEST(ParallelEngine, WatchdogTripsOnStalledProgress) {
  xgbe::sim::ShardedEngine engine(2);
  engine.set_lookahead(xgbe::sim::usec(1));
  // A self-rescheduling tick keeps the event supply alive while the watched
  // counter stays flat — the "wedged component, live event loop" signature.
  auto tick = std::make_shared<std::function<void()>>();
  xgbe::sim::Simulator& s0 = engine.shard(0);
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [&s0, weak]() {
    s0.schedule(xgbe::sim::usec(1), [weak]() {
      if (auto t = weak.lock()) (*t)();
    });
  };
  (*tick)();
  engine.watch_progress("bytes_delivered", []() { return 0; });
  engine.add_trip_context("topology", []() { return "2-shard stall rig"; });
  int trips = 0;
  engine.on_trip = [&trips](const std::string&) { ++trips; };
  engine.arm_watchdog({/*interval=*/xgbe::sim::usec(100),
                       /*stalled_ticks=*/3});
  engine.run_until(xgbe::sim::msec(10));
  EXPECT_TRUE(engine.tripped());
  EXPECT_TRUE(engine.stopped());
  EXPECT_EQ(trips, 1);
  EXPECT_NE(engine.diagnosis().find("bytes_delivered"), std::string::npos)
      << engine.diagnosis();
  EXPECT_NE(engine.diagnosis().find("2-shard stall rig"), std::string::npos)
      << engine.diagnosis();
  EXPECT_LT(engine.now(), xgbe::sim::msec(1))
      << "trip must fire after ~stalled_ticks intervals, not at the horizon";
}

TEST(ParallelEngine, RunUntilAdvancesDrainedShardsToHorizon) {
  xgbe::sim::ShardedEngine engine(3);
  bool fired = false;
  engine.shard(1).schedule(xgbe::sim::usec(5), [&fired]() { fired = true; });
  engine.run_until(xgbe::sim::msec(1));
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.now(), xgbe::sim::msec(1));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.shard(i).now(), xgbe::sim::msec(1)) << "shard " << i;
  }
}

TEST(ParallelEngine, StopRequestHaltsAtBarrier) {
  xgbe::sim::ShardedEngine engine(2);
  engine.set_lookahead(xgbe::sim::usec(1));
  auto tick = std::make_shared<std::function<void()>>();
  xgbe::sim::Simulator& s0 = engine.shard(0);
  std::weak_ptr<std::function<void()>> weak = tick;
  int count = 0;
  *tick = [&s0, weak, &count, &engine]() {
    if (++count == 50) engine.stop();
    s0.schedule(xgbe::sim::usec(1), [weak]() {
      if (auto t = weak.lock()) (*t)();
    });
  };
  (*tick)();
  engine.run();
  EXPECT_TRUE(engine.stopped());
  EXPECT_GE(count, 50);
  EXPECT_LT(engine.now(), xgbe::sim::msec(1));
}

TEST(ParallelEngine, ExchangeCommitOrderBreaksTimestampTies) {
  // Three source shards land frames on shard 0 with IDENTICAL timestamps.
  // The engine's contract: cross-shard deliveries commit in (timestamp,
  // channel-id, append-index) order, and channel ids follow link creation
  // order — never submission order or thread completion order. The sends
  // are armed in reverse shard order so submission order disagrees with
  // the required commit order, and the sweep covers serial and pooled
  // execution.
  std::vector<std::vector<xgbe::net::NodeId>> orders;
  std::vector<xgbe::net::NodeId> expected;
  for (const unsigned threads : {0u, 4u}) {
    xgbe::core::Testbed tb(4);
    if (threads != 0) tb.engine().set_threads(threads);
    const auto system = xgbe::hw::presets::pe2650();
    const auto tuning = xgbe::core::TuningProfile::with_big_windows(9000);
    xgbe::core::Host& rx = tb.add_host_on(0, "rx", system, tuning);
    std::vector<xgbe::core::Host*> txs;
    for (std::size_t s = 1; s <= 3; ++s) {
      xgbe::core::Host& tx =
          tb.add_host_on(s, "tx" + std::to_string(s), system, tuning);
      xgbe::link::LinkSpec spec;
      spec.rate_bps = 10e9;
      spec.propagation = xgbe::sim::usec(5);
      tb.connect(tx, rx, spec);  // creation order fixes the channel ids
      txs.push_back(&tx);
    }
    expected.clear();
    for (const auto* tx : txs) expected.push_back(tx->node());

    std::vector<xgbe::net::NodeId> order;
    rx.raw_sink = [&order](const xgbe::net::Packet& pkt) {
      order.push_back(pkt.src);
    };
    for (std::size_t i = txs.size(); i-- > 0;) {
      xgbe::core::Host* tx = txs[i];
      xgbe::net::Packet pkt;
      pkt.protocol = xgbe::net::Protocol::kUdp;
      pkt.src = tx->node();
      pkt.dst = rx.node();
      pkt.flow = tb.next_flow();
      pkt.payload_bytes = 1024;
      pkt.frame_bytes = xgbe::net::udp_frame_bytes(1024);
      tb.shard_simulator(i + 1).schedule(
          xgbe::sim::usec(50), [tx, pkt]() { tx->raw_transmit(pkt); });
    }
    tb.run_for(xgbe::sim::msec(1));
    rx.raw_sink = nullptr;
    ASSERT_EQ(order.size(), 3u) << "threads=" << threads;
    orders.push_back(order);
  }
  // Identical frames at identical timestamps: the tie must break by channel
  // id (link creation order), identically for every thread count.
  EXPECT_EQ(orders[0], expected);
  EXPECT_EQ(orders[1], expected);
}

}  // namespace

// Unit tests for the simulation core: event queue, simulator, resources,
// RNG, statistics.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace xgbe::sim {
namespace {

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(usec(1), 1'000'000);
  EXPECT_EQ(msec(1), 1000 * usec(1));
  EXPECT_EQ(sec(1), 1000 * msec(1));
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_microseconds(usec(7)), 7.0);
  EXPECT_EQ(from_seconds(2.5), sec(2) + msec(500));
}

TEST(TimeUnits, TransferTimeExactAt10G) {
  // One byte at 10 Gb/s is exactly 800 ps.
  EXPECT_EQ(transfer_time(1, 10e9), 800);
  EXPECT_EQ(transfer_time(1500, 10e9), 1500 * 800);
}

TEST(TimeUnits, TransferTimeRoundsUp) {
  // 1 byte at 3 Gb/s = 2666.67 ps -> 2667.
  EXPECT_EQ(transfer_time(1, 3e9), 2667);
}

TEST(TimeUnits, RateComputation) {
  EXPECT_DOUBLE_EQ(rate_bps(1250, usec(1)), 10e9);
  EXPECT_DOUBLE_EQ(rate_bps(100, 0), 0.0);
}

TEST(InlineCallback, InvokesAndReportsEmpty) {
  InlineCallback empty;
  EXPECT_FALSE(empty);
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(cb);
  cb();
  cb();
  EXPECT_EQ(hits, 2);
  cb = nullptr;
  EXPECT_FALSE(cb);
}

TEST(InlineCallback, HotPathCaptureSetsStayInline) {
  // The capture sets the simulator schedules millions of times: a timer
  // lambda (`this`), and completion continuations holding 1-2 shared_ptrs.
  // These must never hit the allocator.
  struct Dummy {
    void fire() {}
  } d;
  auto timer = [&d] { d.fire(); };
  static_assert(InlineCallback::fits_inline<decltype(timer)>());
  auto sp1 = std::make_shared<int>(0);
  auto sp2 = std::make_shared<int>(0);
  auto continuation = [sp1, sp2] { ++*sp1; };
  static_assert(InlineCallback::fits_inline<decltype(continuation)>());
  auto three = [sp1, sp2, i = std::size_t{0}]() mutable { *sp2 += (int)i++; };
  static_assert(InlineCallback::fits_inline<decltype(three)>());
}

TEST(InlineCallback, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineCallback a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  InlineCallback b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(*counter, 1);
  b = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed exactly once
}

TEST(InlineCallback, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[200];
  };
  Big big{};
  big.bytes[199] = 42;
  int seen = 0;
  auto fat = [big, &seen] { seen = big.bytes[199]; };
  static_assert(!InlineCallback::fits_inline<decltype(fat)>());
  InlineCallback cb(std::move(fat));
  InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, HoldsMoveOnlyCaptures) {
  // std::function cannot hold this; a continuation owning another callback
  // is exactly the link-layer tx_done pattern.
  auto flag = std::make_shared<bool>(false);
  InlineCallback inner([flag] { *flag = true; });
  InlineCallback outer([inner = std::move(inner)]() mutable { inner(); });
  outer();
  EXPECT_TRUE(*flag);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(300, [&] { order.push_back(3); });
  q.schedule(100, [&] { order.push_back(1); });
  q.schedule(200, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule(100, [&] { ++fired; });
  q.schedule(200, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DoubleCancelHarmless) {
  EventQueue q;
  auto id = q.schedule(100, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule(100, [&] { ++fired; });
  q.schedule(200, [&] { ++fired; });
  q.pop().cb();   // fires the id=100 event
  q.cancel(id);   // stale handle: must not disturb the live event
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleReuseDoesNotAliasStaleIds) {
  EventQueue q;
  int fired = 0;
  auto stale = q.schedule(100, [&] { fired += 1; });
  q.cancel(stale);
  // The freed handle slot is reused by the next schedule; the stale id must
  // not be able to cancel the new event.
  auto fresh = q.schedule(200, [&] { fired += 10; });
  q.cancel(stale);
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 10);
  (void)fresh;
}

// Retransmit-timer churn: nearly every scheduled event is cancelled before
// it fires (the TCP endpoint's RTO/delayed-ACK pattern). Ordering and the
// live count must survive thousands of interleaved cancels.
TEST(EventQueue, CancelChurn) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ids.push_back(q.schedule(10 * (i + 1), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) q.cancel(ids[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(q.size(), static_cast<size_t>(n) / 2);
  SimTime last = 0;
  while (!q.empty()) {
    SimTime t = q.next_time();
    EXPECT_GE(t, last);
    last = t;
    q.pop().cb();
  }
  ASSERT_EQ(fired.size(), static_cast<size_t>(n) / 2);
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
  }
}

TEST(Simulator, AdvancesClockMonotonically) {
  Simulator s;
  std::vector<SimTime> times;
  s.schedule(usec(5), [&] { times.push_back(s.now()); });
  s.schedule(usec(1), [&] {
    times.push_back(s.now());
    s.schedule(usec(1), [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], usec(1));
  EXPECT_EQ(times[1], usec(2));
  EXPECT_EQ(times[2], usec(5));
}

TEST(Simulator, RunUntilHorizonStopsClock) {
  Simulator s;
  int fired = 0;
  s.schedule(usec(10), [&] { ++fired; });
  s.run_until(usec(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now(), usec(5));
  s.run_until(usec(20));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsExecution) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  SimTime when = -1;
  s.schedule(usec(1), [&] {
    s.schedule(-100, [&] { when = s.now(); });
  });
  s.run();
  EXPECT_EQ(when, usec(1));
}

TEST(Resource, SerializesJobs) {
  Simulator s;
  Resource r(s, "bus");
  std::vector<SimTime> completions;
  r.submit(usec(10), [&] { completions.push_back(s.now()); });
  r.submit(usec(5), [&] { completions.push_back(s.now()); });
  s.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], usec(10));
  EXPECT_EQ(completions[1], usec(15));
}

TEST(Resource, IdleGapsDoNotAccumulate) {
  Simulator s;
  Resource r(s, "bus");
  r.submit(usec(10));
  s.run();
  // Schedule a new job after an idle gap.
  s.schedule(usec(90), [&] { r.submit(usec(10)); });
  s.run();
  EXPECT_EQ(r.busy_time(), usec(20));
  EXPECT_EQ(s.now(), usec(110));
}

TEST(Resource, UtilizationWindow) {
  Simulator s;
  Resource r(s, "cpu");
  r.mark_window();
  r.submit(usec(30));
  s.schedule(usec(100), [] {});
  s.run();
  EXPECT_NEAR(r.utilization(), 0.3, 1e-9);
  r.mark_window();
  s.schedule(usec(100), [] {});
  s.run();
  EXPECT_NEAR(r.utilization(), 0.0, 1e-9);
}

TEST(Resource, SaturatedUtilizationCapsAtOne) {
  Simulator s;
  Resource r(s, "cpu");
  r.mark_window();
  for (int i = 0; i < 100; ++i) r.submit(usec(10));
  s.schedule(usec(50), [&] { s.stop(); });
  s.run();
  EXPECT_LE(r.utilization(), 1.0);
  EXPECT_GT(r.utilization(), 0.99);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.variance(), 6.0, 1e-12);  // sample variance of 1..8
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to bucket 0
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_low(5), 5.0);
}

TEST(Histogram, NonFiniteSamplesClampDeterministically) {
  // Casting NaN or an out-of-range double to size_t is UB; these must land
  // in the edge buckets instead.
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket_count(0), 2u);  // NaN and -inf clamp low
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf clamps high
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ZeroSpanRangeNeverDividesByZero) {
  Histogram h(5.0, 5.0, 3);  // degenerate [5,5): span == 0
  h.add(5.0);
  h.add(4.0);
  h.add(6.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket_count(0), 4u);  // finite samples land in bucket 0
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ExactUpperEdgeStaysInRange) {
  // x == hi maps to pos == buckets; the cast must clamp, not index
  // one-past-the-end.
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(SampleSet, EmptyAndSingleSample) {
  SampleSet empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.summary().count(), 0u);

  SampleSet one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(one.summary().mean(), 42.0);
}

TEST(SampleSet, AllEqualSamples) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.summary().stddev(), 0.0);
}

TEST(SampleSet, SummaryIsIndependentOfQuantileCalls) {
  // summary() accumulates in insertion order; the lazy sorted cache that
  // quantile() builds must never leak into the (order-sensitive) Welford
  // result. Use values whose FP sums differ between orderings.
  SampleSet a, b;
  const std::vector<double> xs = {1e16, 3.14159, -1e16, 2.71828, 1.0, 1e-9};
  for (double x : xs) {
    a.add(x);
    b.add(x);
  }
  (void)b.quantile(0.5);  // sorts b's cache
  const OnlineStats sa = a.summary();
  const OnlineStats sb = b.summary();
  EXPECT_EQ(sa.mean(), sb.mean());
  EXPECT_EQ(sa.variance(), sb.variance());
  // And quantile still answers from sorted data after more adds.
  b.add(-1e20);
  EXPECT_DOUBLE_EQ(b.quantile(0.0), -1e20);
}

TEST(SampleSet, CopyDropsSortCacheButKeepsSamples) {
  SampleSet a;
  a.add(3.0);
  a.add(1.0);
  (void)a.quantile(0.5);  // build the cache
  SampleSet b = a;
  b.add(2.0);
  EXPECT_DOUBLE_EQ(b.median(), 2.0);
  SampleSet c;
  c = a;
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
}

// Property sweep: resource completion time equals sum of costs regardless of
// submission pattern.
class ResourceBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(ResourceBatchTest, TotalBusyEqualsSumOfCosts) {
  Simulator s;
  Resource r(s, "x");
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  SimTime total = 0;
  for (int i = 0; i < 50; ++i) {
    const SimTime cost = static_cast<SimTime>(rng.next_below(10000)) + 1;
    total += cost;
    r.submit(cost);
  }
  s.run();
  EXPECT_EQ(r.busy_time(), total);
  EXPECT_EQ(s.now(), total);
  EXPECT_EQ(r.jobs_completed(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceBatchTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace xgbe::sim

// Tests for the time-series Recorder.
#include <gtest/gtest.h>

#include "sim/recorder.hpp"
#include "sim/simulator.hpp"

namespace xgbe::sim {
namespace {

TEST(Recorder, SamplesAtFixedInterval) {
  Simulator s;
  double value = 0.0;
  Recorder rec(s, usec(10), [&] { return value; });
  rec.start();
  s.schedule(usec(25), [&] { value = 5.0; });
  s.schedule(usec(100), [&] { s.stop(); });
  s.run();
  rec.stop();
  // Samples at 10..90 us; the simulator stops before the t=100 sample.
  ASSERT_EQ(rec.samples().size(), 9u);
  EXPECT_EQ(rec.samples()[0].first, usec(10));
  EXPECT_EQ(rec.samples()[0].second, 0.0);
  EXPECT_EQ(rec.samples()[2].first, usec(30));
  EXPECT_EQ(rec.samples()[2].second, 5.0);
}

TEST(Recorder, StopCancelsPendingSample) {
  Simulator s;
  Recorder rec(s, usec(10), [] { return 1.0; });
  rec.start();
  s.schedule(usec(35), [&] { rec.stop(); });
  s.schedule(usec(100), [] {});
  s.run();
  EXPECT_EQ(rec.samples().size(), 3u);
}

TEST(Recorder, PeakAndTimeToReach) {
  Simulator s;
  double value = 0.0;
  Recorder rec(s, usec(10), [&] { return value; });
  rec.start();
  s.schedule(usec(15), [&] { value = 3.0; });
  s.schedule(usec(45), [&] { value = 7.0; });
  s.schedule(usec(80), [&] {
    rec.stop();
    s.stop();
  });
  s.run();
  EXPECT_DOUBLE_EQ(rec.peak(), 7.0);
  EXPECT_EQ(rec.time_to_reach(3.0), usec(20));
  EXPECT_EQ(rec.time_to_reach(7.0), usec(50));
  EXPECT_EQ(rec.time_to_reach(100.0), -1);
}

TEST(Recorder, RestartContinues) {
  Simulator s;
  Recorder rec(s, usec(10), [] { return 1.0; });
  rec.start();
  s.schedule(usec(25), [&] { rec.stop(); });
  s.schedule(usec(50), [&] { rec.start(); });
  s.schedule(usec(85), [&] {
    rec.stop();
    s.stop();
  });
  s.run();
  EXPECT_EQ(rec.samples().size(), 5u);  // 10,20 then 60,70,80
}

}  // namespace
}  // namespace xgbe::sim

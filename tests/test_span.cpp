// Tests for the span profiler (per-segment latency attribution) and the
// flow time-series sampler.
//
// The two load-bearing contracts:
//  - Attribution is a ledger, not an estimate: integer-picosecond stage
//    durations telescope, so they sum to the end-to-end time *exactly*.
//  - Observation is free: arming either tool must not change simulation
//    results (the profiler is fully passive and even leaves the executed
//    event count untouched; the sampler schedules read-only probe ticks,
//    so everything except the event count stays bit-identical).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/testbed.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

// ---------------------------------------------------------------------------
// NetPipe harness: ping-pong is the workload where the ledger is exact by
// construction — every measured iteration is two journeys (ping + pong) and
// the profiler resets at the warmup boundary, so summed journey time equals
// summed measured RTTs.

struct PingPongRun {
  tools::NetpipeResult result;
  std::string fingerprint;  // metrics snapshot + final sim clock
  std::uint64_t executed_events = 0;
};

PingPongRun ping_pong(std::uint32_t payload, bool through_switch,
                      bool coalesce, obs::SpanProfiler* spans) {
  core::Testbed tb;
  if (spans != nullptr) tb.set_span_profiler(spans);
  auto tuning = core::TuningProfile::lan_tuned(9000);
  if (!coalesce) tuning.intr_delay = 0;
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  if (through_switch) {
    auto& sw = tb.add_switch();
    tb.connect_to_switch(a, sw);
    tb.connect_to_switch(b, sw);
  } else {
    tb.connect(a, b);
  }
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::NetpipeOptions opt;
  opt.payload = payload;
  opt.iterations = 40;
  opt.spans = spans;
  PingPongRun run;
  run.result = tools::run_netpipe(tb, conn, opt);
  obs::Registry reg;
  tb.register_metrics(reg);
  run.fingerprint = reg.snapshot().to_json() + "\n@" + std::to_string(tb.now());
  run.executed_events = tb.simulator().executed_events();
  return run;
}

TEST(SpanProfiler, StageTotalsSumToEndToEndExactly) {
  obs::SpanProfiler spans;
  const PingPongRun run = ping_pong(1, /*through_switch=*/false,
                                    /*coalesce=*/true, &spans);
  ASSERT_TRUE(run.result.completed);
  const obs::SpanBreakdown b = spans.breakdown();
  // 40 measured iterations, two journeys (ping + pong) each.
  EXPECT_EQ(b.journeys, 80u);
  EXPECT_EQ(b.aborted, 0u);
  EXPECT_EQ(b.overflowed, 0u);
  EXPECT_EQ(spans.open_journeys(), 0u);
  // The ledger contract: exact integer conservation, no epsilon.
  EXPECT_EQ(b.stage_sum_ps(), b.end_to_end_total_ps);
  // Summed journey time == summed RTTs, so the means agree to rounding.
  EXPECT_NEAR(b.end_to_end_mean_us(), run.result.latency_us, 1e-9);
}

TEST(SpanProfiler, SwitchPathChargesTheSwitchQueueStage) {
  obs::SpanProfiler direct_spans;
  const PingPongRun direct = ping_pong(1, false, true, &direct_spans);
  obs::SpanProfiler switched_spans;
  const PingPongRun switched = ping_pong(1, true, true, &switched_spans);
  ASSERT_TRUE(direct.result.completed);
  ASSERT_TRUE(switched.result.completed);

  const obs::SpanBreakdown bd = direct_spans.breakdown();
  const obs::SpanBreakdown bs = switched_spans.breakdown();
  EXPECT_EQ(bd.stage_mean_us(obs::Stage::kSwitchQueue), 0.0);
  EXPECT_GT(bs.stage_mean_us(obs::Stage::kSwitchQueue), 0.0);
  // Conservation holds on the multi-hop path too.
  EXPECT_EQ(bs.stage_sum_ps(), bs.end_to_end_total_ps);
  // And the switch's added latency shows up end to end.
  EXPECT_GT(switched.result.latency_us, direct.result.latency_us);
}

TEST(SpanProfiler, TheCoalescingStageExplainsTheFig6Fig7Delta) {
  // Paper §3.2: the default 5 us interrupt-coalescing delay is the single
  // biggest line item at one byte (19 us vs 14 us with `rx-usecs 0`). The
  // attribution must place that delta in the intr-coalesce stage, not
  // smear it across the pipeline.
  obs::SpanProfiler coalesced;
  const PingPongRun fig6 = ping_pong(1, false, /*coalesce=*/true, &coalesced);
  obs::SpanProfiler uncoalesced;
  const PingPongRun fig7 = ping_pong(1, false, /*coalesce=*/false,
                                     &uncoalesced);
  ASSERT_TRUE(fig6.result.completed);
  ASSERT_TRUE(fig7.result.completed);

  const double delta_latency =
      fig6.result.latency_us - fig7.result.latency_us;
  EXPECT_GT(delta_latency, 3.0);
  EXPECT_LT(delta_latency, 7.0);

  const double delta_intr =
      coalesced.breakdown().stage_mean_us(obs::Stage::kIntrCoalesce) -
      uncoalesced.breakdown().stage_mean_us(obs::Stage::kIntrCoalesce);
  EXPECT_NEAR(delta_intr, delta_latency, 0.2 * delta_latency);
}

TEST(SpanProfiler, ArmedRunIsBitIdenticalToUnarmed) {
  const PingPongRun unarmed = ping_pong(1024, true, true, nullptr);
  obs::SpanProfiler spans;
  const PingPongRun armed = ping_pong(1024, true, true, &spans);
  EXPECT_EQ(unarmed.fingerprint, armed.fingerprint);
  // The profiler is fully passive: not even the event count moves.
  EXPECT_EQ(unarmed.executed_events, armed.executed_events);
  EXPECT_GT(spans.breakdown().journeys, 0u);
}

TEST(SpanProfiler, DroppedSegmentsAbortInsteadOfCorrupting) {
  core::Testbed tb;
  obs::SpanProfiler spans;
  tb.set_span_profiler(&spans);
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);
  wire.inject_drops(2);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 200;
  ASSERT_TRUE(tools::run_nttcp(tb, conn, a, b, opt).completed);

  const obs::SpanBreakdown breakdown = spans.breakdown();
  // The drops (and the retransmissions that replace them) abort journeys.
  EXPECT_GT(breakdown.aborted, 0u);
  EXPECT_GT(breakdown.journeys, 0u);
  // Every journey is opened exactly once and retired exactly once.
  EXPECT_EQ(breakdown.opened,
            breakdown.journeys + breakdown.aborted + spans.open_journeys());
  // Aborted journeys leave no residue in the ledger.
  EXPECT_EQ(breakdown.stage_sum_ps(), breakdown.end_to_end_total_ps);
}

TEST(SpanProfiler, ResetClearsAggregatesAndOpenJourneys) {
  obs::SpanProfiler spans;
  const PingPongRun run = ping_pong(1, false, true, &spans);
  ASSERT_TRUE(run.result.completed);
  ASSERT_GT(spans.breakdown().journeys, 0u);
  spans.reset();
  const obs::SpanBreakdown b = spans.breakdown();
  EXPECT_EQ(b.journeys, 0u);
  EXPECT_EQ(b.opened, 0u);
  EXPECT_EQ(b.stage_sum_ps(), 0);
  EXPECT_EQ(b.end_to_end_total_ps, 0);
  EXPECT_EQ(spans.open_journeys(), 0u);
  EXPECT_EQ(spans.end_to_end_histogram().total(), 0u);
}

TEST(SpanProfiler, BreakdownRenderingsAreConsistent) {
  obs::SpanProfiler spans;
  const PingPongRun run = ping_pong(1, false, true, &spans);
  ASSERT_TRUE(run.result.completed);
  const obs::SpanBreakdown b = spans.breakdown();

  const std::string table =
      obs::format_breakdown_table(b, run.result.latency_us);
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    EXPECT_NE(table.find(obs::stage_name(static_cast<obs::Stage>(i))),
              std::string::npos);
  }
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
  EXPECT_NE(table.find("measured"), std::string::npos);

  const std::string json = obs::breakdown_json(b);
  EXPECT_NE(json.find("\"journeys\":" + std::to_string(b.journeys)),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"intr-coalesce\""), std::string::npos);
  // Deterministic rendering: same breakdown, same bytes.
  EXPECT_EQ(json, obs::breakdown_json(spans.breakdown()));
}

// ---------------------------------------------------------------------------
// FlowSampler: a bulk-transfer harness with the sampler armed.

struct SampledRun {
  std::string fingerprint;  // metrics snapshot + final sim clock
  std::string csv;
  std::string jsonl;
  std::size_t rows = 0;
};

SampledRun bulk_transfer(obs::FlowSampler* sampler) {
  core::Testbed tb;
  if (sampler != nullptr) tb.set_flow_sampler(sampler);
  const auto tuning = core::TuningProfile::lan_tuned(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 500;
  EXPECT_TRUE(tools::run_nttcp(tb, conn, a, b, opt).completed);
  if (sampler != nullptr) sampler->stop();
  SampledRun run;
  obs::Registry reg;
  tb.register_metrics(reg);
  run.fingerprint = reg.snapshot().to_json() + "\n@" + std::to_string(tb.now());
  if (sampler != nullptr) {
    run.csv = sampler->to_csv();
    run.jsonl = sampler->to_jsonl();
    run.rows = sampler->rows().size();
  }
  return run;
}

TEST(FlowSampler, ArmedRunLeavesSimulationResultsUnchanged) {
  // The sampler schedules its own (read-only) timer events, so the
  // executed-event count legitimately differs — but every simulation
  // result (metrics, clock) must match an unarmed run bit for bit.
  const SampledRun unarmed = bulk_transfer(nullptr);
  obs::FlowSampler sampler(sim::usec(200));
  const SampledRun armed = bulk_transfer(&sampler);
  EXPECT_EQ(unarmed.fingerprint, armed.fingerprint);
  EXPECT_GT(armed.rows, 0u);
}

TEST(FlowSampler, RerunsProduceIdenticalSeries) {
  obs::FlowSampler first(sim::usec(200));
  const SampledRun one = bulk_transfer(&first);
  obs::FlowSampler second(sim::usec(200));
  const SampledRun two = bulk_transfer(&second);
  ASSERT_GT(one.rows, 0u);
  EXPECT_EQ(one.csv, two.csv);
  EXPECT_EQ(one.jsonl, two.jsonl);
  // The renderings carry the same row count and start with the header.
  EXPECT_EQ(one.csv.substr(0, one.csv.find('\n')),
            "at_ps,flow,cwnd_segments,ssthresh_segments,flight_bytes,"
            "srtt_us,rwnd_bytes,cc_state");
  EXPECT_EQ(obs::series_json(first), obs::series_json(second));
}

TEST(FlowSampler, SamplesCarryLiveTcpState) {
  obs::FlowSampler sampler(sim::usec(200));
  const SampledRun run = bulk_transfer(&sampler);
  ASSERT_GT(run.rows, 2u);
  bool saw_flight = false;
  bool saw_srtt = false;
  for (const obs::FlowSampler::Row& row : sampler.rows()) {
    EXPECT_EQ(row.flow, 1u);
    EXPECT_GT(row.sample.cwnd_segments, 0u);
    if (row.sample.flight_bytes > 0) saw_flight = true;
    if (row.sample.srtt > 0) saw_srtt = true;
  }
  EXPECT_TRUE(saw_flight);
  EXPECT_TRUE(saw_srtt);
  // Rows are appended in time order.
  for (std::size_t i = 1; i < sampler.rows().size(); ++i) {
    EXPECT_GT(sampler.rows()[i].at, sampler.rows()[i - 1].at);
  }
}

TEST(FlowSampler, MaxSamplesBoundsTheSeries) {
  obs::FlowSampler sampler(sim::usec(200), /*max_samples=*/5);
  const SampledRun run = bulk_transfer(&sampler);
  EXPECT_EQ(run.rows, 5u);
}

TEST(FlowSampler, ResetAllowsReuseAgainstAFreshTestbed) {
  obs::FlowSampler sampler(sim::usec(200));
  const SampledRun one = bulk_transfer(&sampler);
  ASSERT_GT(one.rows, 0u);
  sampler.reset();
  EXPECT_TRUE(sampler.rows().empty());
  const SampledRun two = bulk_transfer(&sampler);
  EXPECT_EQ(one.csv, two.csv);
}

}  // namespace
}  // namespace xgbe

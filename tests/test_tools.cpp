// Tests for the measurement tools: MAGNET path profiling and the §3.5.3
// offload extensions, plus tool semantics not covered elsewhere.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "tools/magnet.hpp"
#include "tools/netpipe.hpp"
#include "tools/nttcp.hpp"

namespace xgbe {
namespace {

core::Testbed::Connection make_pair(core::Testbed& tb,
                                    const core::TuningProfile& tuning,
                                    core::Host** a, core::Host** b) {
  *a = &tb.add_host("a", hw::presets::pe2650(), tuning);
  *b = &tb.add_host("b", hw::presets::pe2650(), tuning);
  tb.connect(**a, **b);
  return tb.open_connection(**a, **b, (*a)->endpoint_config(),
                            (*b)->endpoint_config());
}

TEST(Magnet, SamplesExpectedFraction) {
  core::Testbed tb;
  core::Host *a, *b;
  auto conn = make_pair(tb, core::TuningProfile::lan_tuned(9000), &a, &b);
  tools::MagnetOptions opt;
  opt.payload = 8000;
  opt.count = 1000;
  opt.sample_every = 10;
  auto m = tools::run_magnet(tb, conn, *a, *b, opt);
  ASSERT_TRUE(m.completed);
  // One segment per write; every 10th sampled.
  EXPECT_EQ(m.sampled_packets, 100u);
  ASSERT_EQ(m.stages.size(), 6u);
  for (const auto& s : m.stages) {
    EXPECT_EQ(s.us.count(), 100u) << s.name;
    EXPECT_GE(s.us.min(), 0.0) << s.name;
  }
}

TEST(Magnet, StageStructureIsPhysical) {
  core::Testbed tb;
  core::Host *a, *b;
  auto conn = make_pair(tb, core::TuningProfile::lan_tuned(9000), &a, &b);
  tools::MagnetOptions opt;
  opt.payload = 8948;
  opt.count = 1000;
  auto m = tools::run_magnet(tb, conn, *a, *b, opt);
  ASSERT_TRUE(m.completed);
  // Wire time for a 9018-byte frame at 10 Gb/s is fixed: ~7 us + 450 ns.
  const auto* wire = m.stage("wire");
  ASSERT_NE(wire, nullptr);
  EXPECT_NEAR(wire->us.mean(), 7.7, 0.5);  // 9038B serialization + 450ns fiber
  EXPECT_LT(wire->us.stddev(), 0.1);  // serialization is deterministic
  // Coalescing stage equals the configured 5 us interrupt delay.
  const auto* coalesce = m.stage("coalesce");
  ASSERT_NE(coalesce, nullptr);
  EXPECT_NEAR(coalesce->us.mean(), 5.0, 0.8);
  // Under load the queue-bearing stages dominate — the paper's observation
  // that host software, not the wire, is where the time goes.
  const auto* hottest = m.hottest();
  ASSERT_NE(hottest, nullptr);
  EXPECT_TRUE(hottest->name == "rx_kernel" || hottest->name == "tx_dma");
}

TEST(Magnet, SamplingOffByDefault) {
  core::Testbed tb;
  core::Host *a, *b;
  auto conn = make_pair(tb, core::TuningProfile::lan_tuned(9000), &a, &b);
  std::uint64_t traced = 0;
  b->packet_tap = [&](const net::Packet& pkt) {
    traced += pkt.trace.enabled ? 1 : 0;
  };
  tools::NttcpOptions opt;
  opt.payload = 8000;
  opt.count = 200;
  ASSERT_TRUE(tools::run_nttcp(tb, conn, *a, *b, opt).completed);
  b->packet_tap = nullptr;
  EXPECT_EQ(traced, 0u);
}

TEST(FutureOffload, HeaderSplittingCutsCpuLoad) {
  auto run = [](bool rddp) {
    core::Testbed tb;
    core::Host *a, *b;
    auto t = core::TuningProfile::lan_tuned(9000);
    t.header_splitting = rddp;
    auto conn = make_pair(tb, t, &a, &b);
    tools::NttcpOptions opt;
    opt.payload = 8948;
    opt.count = 1500;
    return tools::run_nttcp(tb, conn, *a, *b, opt);
  };
  const auto base = run(false);
  const auto rddp = run(true);
  ASSERT_TRUE(base.completed && rddp.completed);
  // "virtually eliminating processing load from the host CPU" (§3.5.3).
  EXPECT_LT(rddp.receiver_load, base.receiver_load * 0.5);
  EXPECT_GT(rddp.throughput_bps, base.throughput_bps * 1.2);
}

TEST(FutureOffload, CsaAloneDoesNotHelpThroughput) {
  // §3.5.2's conclusion: the I/O bus is NOT the primary bottleneck once
  // MMRBC is tuned, so moving the adapter to the MCH without fixing the
  // copy path changes little.
  auto run = [](bool csa) {
    core::Testbed tb;
    core::Host *a, *b;
    auto t = core::TuningProfile::lan_tuned(9000);
    t.adapter_on_mch = csa;
    auto conn = make_pair(tb, t, &a, &b);
    tools::NttcpOptions opt;
    opt.payload = 8948;
    opt.count = 1500;
    return tools::run_nttcp(tb, conn, *a, *b, opt).throughput_gbps();
  };
  EXPECT_NEAR(run(true) / run(false), 1.0, 0.1);
}

TEST(FutureOffload, CombinedMeetsPaperProjection) {
  // §5: "throughput approaching 8 Gb/s, end-to-end latencies below 10 us,
  // and a CPU load approaching zero".
  core::Testbed tb;
  core::Host *a, *b;
  auto conn =
      make_pair(tb, core::TuningProfile::future_offload(9000), &a, &b);
  tools::NttcpOptions opt;
  opt.payload = 8948;
  opt.count = 1500;
  auto r = tools::run_nttcp(tb, conn, *a, *b, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.throughput_gbps(), 8.0);
  EXPECT_LT(r.receiver_load, 0.55);

  core::Testbed tb2;
  core::Host *c, *d;
  auto t2 = core::TuningProfile::future_offload(9000);
  c = &tb2.add_host("c", hw::presets::pe2650(), t2);
  d = &tb2.add_host("d", hw::presets::pe2650(), t2);
  tb2.connect(*c, *d);
  auto cfg = tools::netpipe_config(c->endpoint_config());
  auto conn2 = tb2.open_connection(*c, *d, cfg, cfg);
  tools::NetpipeOptions no;
  no.payload = 1;
  no.iterations = 40;
  auto l = tools::run_netpipe(tb2, conn2, no);
  ASSERT_TRUE(l.completed);
  EXPECT_LT(l.latency_us, 10.0);
}

}  // namespace
}  // namespace xgbe

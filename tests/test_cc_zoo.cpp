// Congestion-control zoo conformance (ISSUE 9): state transitions for the
// NewReno / CUBIC / DCTCP strategies, the RTT-estimator floor-division
// regression, the usable_cwnd()/clamp bugfix pins, per-algorithm rerun
// determinism on the fabric, and the DCTCP-vs-Reno incast comparison the
// zoo exists to demonstrate.
#include <gtest/gtest.h>

#include "core/fabric.hpp"
#include "core/fleet.hpp"
#include "link/switch.hpp"
#include "tcp/cwnd.hpp"
#include "tcp/rtt.hpp"
#include "tools/drop_report.hpp"

namespace xgbe::tcp {
namespace {

// --- Selection plumbing -----------------------------------------------------

TEST(CcZoo, NameRoundTrip) {
  CcAlgorithm alg = CcAlgorithm::kCubic;
  EXPECT_TRUE(cc_from_name("newreno", &alg));
  EXPECT_EQ(alg, CcAlgorithm::kNewReno);
  EXPECT_TRUE(cc_from_name("reno", &alg));  // Linux-style alias
  EXPECT_EQ(alg, CcAlgorithm::kNewReno);
  EXPECT_TRUE(cc_from_name("cubic", &alg));
  EXPECT_EQ(alg, CcAlgorithm::kCubic);
  EXPECT_TRUE(cc_from_name("dctcp", &alg));
  EXPECT_EQ(alg, CcAlgorithm::kDctcp);
  EXPECT_FALSE(cc_from_name("vegas", &alg));
  EXPECT_FALSE(cc_from_name(nullptr, &alg));
  EXPECT_STREQ(cc_name(CcAlgorithm::kNewReno), "newreno");
  EXPECT_STREQ(cc_name(CcAlgorithm::kCubic), "cubic");
  EXPECT_STREQ(cc_name(CcAlgorithm::kDctcp), "dctcp");
}

TEST(CcZoo, FactoryBuildsRequestedAlgorithm) {
  EXPECT_STREQ(make_congestion_control(CcAlgorithm::kNewReno, 2)->name(),
               "newreno");
  EXPECT_STREQ(make_congestion_control(CcAlgorithm::kCubic, 2)->name(),
               "cubic");
  EXPECT_STREQ(make_congestion_control(CcAlgorithm::kDctcp, 2)->name(),
               "dctcp");
}

// The default selection must stay NewReno with ECN off — that is the
// contract that keeps bench/golden/fig6.json and bench/golden/sim_core.json
// byte-identical (CI's `cmp` and bench_diff gates enforce the file half;
// this pins the config half so a default drift fails here first).
TEST(CcZoo, DefaultsPreserveGoldenContract) {
  const EndpointConfig config;
  EXPECT_EQ(config.cc, CcAlgorithm::kNewReno);
  EXPECT_FALSE(config.ecn);
  const core::TuningProfile tuning;
  EXPECT_EQ(tuning.cc, CcAlgorithm::kNewReno);
  EXPECT_FALSE(tuning.ecn);
  const core::FabricOptions fabric;
  EXPECT_EQ(fabric.cc, CcAlgorithm::kNewReno);
  EXPECT_FALSE(fabric.ecn);
  EXPECT_FALSE(fabric.tor_aqm.active());
  const link::SwitchSpec sw;
  EXPECT_FALSE(sw.aqm.active());
}

// A factory-built default must track the directly instantiated base class
// through every transition (the strategy refactor may not perturb the
// algorithm the goldens were recorded under).
TEST(CcZoo, DefaultMatchesExplicitNewReno) {
  CongestionControl base(2);
  auto made = make_congestion_control(CcAlgorithm::kNewReno, 2);
  const auto expect_same = [&]() {
    EXPECT_EQ(base.cwnd(), made->cwnd());
    EXPECT_EQ(base.ssthresh(), made->ssthresh());
    EXPECT_EQ(base.usable_cwnd(), made->usable_cwnd());
    EXPECT_EQ(base.in_recovery(), made->in_recovery());
  };
  for (int i = 0; i < 6; ++i) {  // slow start
    base.on_ack(2);
    made->on_ack(2);
    expect_same();
  }
  base.on_fast_retransmit(base.cwnd());
  made->on_fast_retransmit(made->cwnd());
  expect_same();
  base.on_dupack_in_recovery();
  made->on_dupack_in_recovery();
  base.on_partial_ack();
  made->on_partial_ack();
  expect_same();
  base.on_recovery_exit();
  made->on_recovery_exit();
  expect_same();
  for (int i = 0; i < 40; ++i) {  // congestion avoidance
    base.on_ack(1);
    made->on_ack(1);
    expect_same();
  }
  base.on_timeout(base.cwnd());
  made->on_timeout(made->cwnd());
  expect_same();
}

// --- NewReno (base) ECN reaction -------------------------------------------

TEST(CcZoo, ClassicEcnHalvesOncePerWindow) {
  CongestionControl cc(2);
  cc.on_ack(14);  // slow start to 16
  ASSERT_EQ(cc.cwnd(), 16u);
  EXPECT_FALSE(cc.on_ecn_window(16, 0, 0));  // clean window: no response
  EXPECT_EQ(cc.cwnd(), 16u);
  EXPECT_TRUE(cc.on_ecn_window(16, 3, 0));  // any mark: halve like a loss
  EXPECT_EQ(cc.cwnd(), 8u);
  EXPECT_EQ(cc.ssthresh(), 8u);
  EXPECT_EQ(cc.state_gauge(), 0);  // Reno-family exports no extra state
}

TEST(CcZoo, EcnIgnoredDuringRecovery) {
  CongestionControl cc(2);
  cc.on_ack(14);
  cc.on_fast_retransmit(cc.cwnd());
  const std::uint32_t during = cc.cwnd();
  EXPECT_FALSE(cc.on_ecn_window(4, 4, 0));  // recovery already reduced
  EXPECT_EQ(cc.cwnd(), during);
}

// --- Bugfix pins: usable_cwnd() clamp and accumulator-at-clamp --------------

TEST(CcZoo, RecoveryInflationNeverExceedsClamp) {
  CongestionControl cc(2);
  cc.set_clamp(10);
  cc.on_ack(8);  // slow start to the clamp
  ASSERT_EQ(cc.cwnd(), 10u);
  cc.on_fast_retransmit(10);
  for (int i = 0; i < 12; ++i) cc.on_dupack_in_recovery();
  // Pre-fix: cwnd + inflation = 5 + 15 = 20 sailed past snd_cwnd_clamp.
  EXPECT_LE(cc.usable_cwnd(), 10u);
}

TEST(CcZoo, ClampProcessesWholeAckAndKeepsAccumulatorCycling) {
  CongestionControl cc(8);
  cc.on_fast_retransmit(8);  // ssthresh 4
  cc.on_recovery_exit();     // cwnd 4, congestion avoidance from here
  ASSERT_EQ(cc.cwnd(), 4u);
  cc.set_clamp(4);
  // Six ACKed segments at the clamp: the pre-fix early-return dropped all
  // of them and froze cwnd_cnt_; fixed, the accumulator keeps cycling
  // (4 -> reset, 2 left over) with only the increment suppressed.
  cc.on_ack(6);
  EXPECT_EQ(cc.cwnd(), 4u);
  // Raising the clamp: two more ACKs complete the in-flight cycle.
  cc.set_clamp(8);
  cc.on_ack(2);
  EXPECT_EQ(cc.cwnd(), 5u);
}

// --- RTT estimator floor-division regression -------------------------------

TEST(RttFloor, SrttConvergesDownwardAfterStepDecrease) {
  RttEstimator r;
  for (int i = 0; i < 30; ++i) r.sample(sim::msec(100));
  ASSERT_EQ(r.srtt(), sim::msec(100));  // err is 0 once converged
  // err decays by 7/8 per sample; 400 samples close the 50 ms step and the
  // final picoseconds that truncation-toward-zero could never cross.
  for (int i = 0; i < 400; ++i) r.sample(sim::msec(50));
  // Truncation-toward-zero left a permanent upward bias; floor division
  // must walk srtt all the way down to the new path RTT.
  EXPECT_EQ(r.srtt(), sim::msec(50));
}

TEST(RttFloor, SmallNegativeErrorsStillDecreaseSrtt) {
  RttEstimator r;
  for (int i = 0; i < 30; ++i) r.sample(sim::msec(10));
  ASSERT_EQ(r.srtt(), sim::msec(10));
  // A 5 ps decrease: err/8 truncates to 0, so the pre-fix estimator was
  // stuck 5 ps high forever. Floor division contributes -1 per sample.
  const sim::SimTime lower = sim::msec(10) - 5;
  for (int i = 0; i < 10; ++i) r.sample(lower);
  EXPECT_EQ(r.srtt(), lower);
}

// --- CUBIC ------------------------------------------------------------------

TEST(CcZoo, CubicSlowStartMatchesReno) {
  Cubic cc(2);
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ack(2, sim::msec(1));
  cc.on_ack(4, sim::msec(2));
  EXPECT_EQ(cc.cwnd(), 8u);  // one segment per ACKed segment
}

TEST(CcZoo, CubicLossUsesBetaAndArmsEpoch) {
  Cubic cc(2);
  cc.on_ack(8, sim::msec(1));  // slow start to 10
  ASSERT_EQ(cc.cwnd(), 10u);
  EXPECT_TRUE(cc.on_fast_retransmit(10));
  // beta = 717/1024: ssthresh from the window, not half the flight.
  EXPECT_EQ(cc.ssthresh(), 10u * 717u / 1024u);
  EXPECT_EQ(cc.cwnd(), cc.ssthresh());
  cc.on_recovery_exit();
  // First CA ACK opens the cubic epoch aimed back at W_max = 10; K > 0.
  cc.on_ack(1, sim::msec(10));
  EXPECT_GT(cc.state_gauge(), 0);
}

TEST(CcZoo, CubicGrowsBackPastPlateau) {
  Cubic cc(2);
  cc.on_ack(8, sim::msec(1));
  cc.on_fast_retransmit(10);
  cc.on_recovery_exit();
  ASSERT_LT(cc.cwnd(), 10u);
  // Time-driven growth: with ACKs arriving across several simulated
  // seconds the cubic must cross its old plateau (RTT-independence is the
  // algorithm's point). Window never decreases on an ACK.
  std::uint32_t prev = cc.cwnd();
  for (int ms = 2; ms <= 8000; ms += 2) {
    cc.on_ack(1, sim::msec(ms));
    EXPECT_GE(cc.cwnd(), prev);
    prev = cc.cwnd();
  }
  EXPECT_GT(cc.cwnd(), 10u);
}

TEST(CcZoo, CubicClassicEcnReductionUsesBeta) {
  Cubic cc(2);
  cc.on_ack(8, sim::msec(1));  // slow start to 10
  ASSERT_EQ(cc.cwnd(), 10u);
  EXPECT_TRUE(cc.on_ecn_window(10, 1, sim::msec(2)));
  EXPECT_EQ(cc.cwnd(), 10u * 717u / 1024u);
}

TEST(CcZoo, CubicTimeoutCollapsesToOne) {
  Cubic cc(2);
  cc.on_ack(8, sim::msec(1));
  cc.on_timeout(10);
  EXPECT_EQ(cc.cwnd(), 1u);
  EXPECT_FALSE(cc.in_recovery());
}

TEST(CcZoo, CubicIsDeterministic) {
  const auto run = []() {
    Cubic cc(2);
    cc.on_ack(8, sim::msec(1));
    cc.on_fast_retransmit(10);
    cc.on_recovery_exit();
    std::uint64_t trace = 0;
    for (int ms = 2; ms <= 4000; ms += 3) {
      cc.on_ack(1, sim::msec(ms));
      trace = trace * 1099511628211ULL + cc.cwnd();
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// --- DCTCP ------------------------------------------------------------------

TEST(CcZoo, DctcpAlphaDecaysOnCleanWindows) {
  Dctcp cc(2);
  EXPECT_EQ(cc.state_gauge(), 1024);  // pessimistic start, Linux-style
  EXPECT_FALSE(cc.on_ecn_window(16, 0, 0));
  EXPECT_EQ(cc.state_gauge(), 1024 - (1024 >> 4));  // alpha *= 15/16
}

TEST(CcZoo, DctcpFullyMarkedWindowHalves) {
  Dctcp cc(2);
  cc.on_ack(20);  // slow start to 22
  ASSERT_EQ(cc.cwnd(), 22u);
  // Every segment marked keeps alpha at 1024, so the cut is cwnd/2.
  EXPECT_TRUE(cc.on_ecn_window(22, 22, 0));
  EXPECT_EQ(cc.state_gauge(), 1024);
  EXPECT_EQ(cc.cwnd(), 11u);
  EXPECT_EQ(cc.ssthresh(), 11u);
}

TEST(CcZoo, DctcpLightMarkingCutsProportionally) {
  Dctcp cc(2);
  cc.on_ack(30);  // slow start to 32
  // Converge alpha down with clean windows first.
  for (int i = 0; i < 24; ++i) cc.on_ecn_window(32, 0, 0);
  ASSERT_LT(cc.state_gauge(), 300);
  const std::uint32_t before = cc.cwnd();
  EXPECT_TRUE(cc.on_ecn_window(32, 1, 0));
  // A lightly marked window barely backs off — far less than Reno's halving.
  EXPECT_GT(cc.cwnd(), before * 3 / 4);
  EXPECT_LT(cc.cwnd(), before);
}

TEST(CcZoo, DctcpLossHandlingInheritsNewReno) {
  Dctcp cc(2);
  cc.on_ack(14);  // slow start to 16
  EXPECT_TRUE(cc.on_fast_retransmit(16));
  EXPECT_EQ(cc.ssthresh(), 8u);  // flight/2, the Reno response
  cc.on_timeout(8);
  EXPECT_EQ(cc.cwnd(), 1u);
}

// --- Fabric-level: rerun determinism and the incast comparison --------------

core::FabricOptions zoo_fabric(CcAlgorithm alg, bool aqm) {
  core::FabricOptions opt;
  opt.racks = 2;
  opt.hosts_per_rack = 3;
  opt.spines = 1;
  opt.trunks_per_spine = 2;
  opt.tor_port_buffer_bytes = 48 * 1024;
  opt.host_propagation = sim::usec(10);
  opt.trunk_propagation = sim::usec(20);
  opt.cc = alg;
  if (alg == CcAlgorithm::kDctcp) opt.ecn = true;
  if (aqm) {
    opt.tor_aqm.mode = link::AqmMode::kEcnThreshold;
    opt.tor_aqm.mark_threshold_bytes = 16 * 1024;
  }
  return opt;
}

std::uint64_t incast_fingerprint(CcAlgorithm alg, bool aqm) {
  core::Fabric fabric(zoo_fabric(alg, aqm));
  core::fleet::Options opt;
  opt.scenario = core::fleet::Scenario::kIncast;
  opt.incast_bytes = 64 * 1024;
  opt.incast_rounds = 3;
  const auto res = core::fleet::run(fabric, opt);
  EXPECT_TRUE(res.completed) << cc_name(alg);
  return fabric.fingerprint();
}

TEST(CcZoo, EveryAlgorithmRerunsBitIdentical) {
  const std::uint64_t reno = incast_fingerprint(CcAlgorithm::kNewReno, false);
  const std::uint64_t cubic = incast_fingerprint(CcAlgorithm::kCubic, false);
  const std::uint64_t dctcp = incast_fingerprint(CcAlgorithm::kDctcp, true);
  EXPECT_EQ(reno, incast_fingerprint(CcAlgorithm::kNewReno, false));
  EXPECT_EQ(cubic, incast_fingerprint(CcAlgorithm::kCubic, false));
  EXPECT_EQ(dctcp, incast_fingerprint(CcAlgorithm::kDctcp, true));
  // The algorithms genuinely diverge on an overdriven fabric.
  EXPECT_NE(reno, cubic);
  EXPECT_NE(reno, dctcp);
}

TEST(CcZoo, DctcpCutsIncastTailDropsVsReno) {
  core::fleet::Options opt;
  opt.scenario = core::fleet::Scenario::kIncast;
  opt.incast_bytes = 64 * 1024;
  opt.incast_rounds = 6;

  core::Fabric reno(zoo_fabric(CcAlgorithm::kNewReno, false));
  const auto reno_res = core::fleet::run(reno, opt);
  tools::DropReport reno_ledger;
  reno_ledger.add_testbed(reno.testbed());
  const std::uint64_t reno_drops = reno.tor(0).port_dropped_queue_full(0);

  core::Fabric dctcp(zoo_fabric(CcAlgorithm::kDctcp, true));
  const auto dctcp_res = core::fleet::run(dctcp, opt);
  tools::DropReport dctcp_ledger;
  dctcp_ledger.add_testbed(dctcp.testbed());
  const std::uint64_t dctcp_drops = dctcp.tor(0).port_dropped_queue_full(0);

  // Both runs complete with the byte ledger exactly conserved...
  EXPECT_TRUE(reno_res.completed);
  EXPECT_TRUE(dctcp_res.completed);
  EXPECT_TRUE(reno_ledger.conserved());
  EXPECT_TRUE(dctcp_ledger.conserved());
  EXPECT_EQ(reno_res.bytes_consumed, dctcp_res.bytes_consumed);
  // ...the overdriven burst overflows the Reno aggregator port...
  EXPECT_GT(reno_drops, 0u);
  // ...and DCTCP's ECN-proportional backoff keeps it under the buffer.
  EXPECT_LT(dctcp_drops, reno_drops);
  EXPECT_GT(dctcp.tor(0).ce_marked(), 0u);
}

}  // namespace
}  // namespace xgbe::tcp

// Automated fault localization on the two-rack fabric: inject one fault
// from the catalogue, run the canonical scenario matrix (incast,
// all-to-all, RPC churn), and let tools::fleet_doctor name the culprit
// from nothing but registry snapshots and the conservation ledgers. A
// clean fabric runs first — the doctor's silence there is as much a part
// of the contract as the localization.
#include <cstdio>

#include "core/fabric.hpp"
#include "tools/fleet_doctor.hpp"

namespace {

void doctor(const char* title, const xgbe::core::FabricOptions& fabric,
            xgbe::sim::SimTime scrape_period = 0) {
  xgbe::tools::FleetDoctorOptions opt;
  opt.fabric = fabric;
  // Timeline mode: every scenario runs under a MetricScraper at this
  // cadence, obs::detect turns the series into episodes, and findings gain
  // onset/clear timestamps plus transient-vs-persistent classification.
  opt.scrape_period = scrape_period;
  const auto report = xgbe::tools::run_fleet_doctor(opt);
  std::printf("=== %s ===\n%s\n\n", title, report.transcript().c_str());
  if (scrape_period > 0) {
    std::printf("verdict JSON:\n%s\n\n", report.verdict.to_json().c_str());
  }
}

}  // namespace

int main() {
  using namespace xgbe;

  core::FabricOptions clean;  // 2 racks x 3 hosts, 1 spine, 2-trunk bundles
  doctor("clean fabric", clean);

  core::FabricOptions bad_cable = clean;
  bad_cable.faults.bad_cable_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/0);
  doctor("bad cable on trunk-tor1-spine0-0", bad_cable);

  core::FabricOptions throttled = clean;
  throttled.faults.dma_throttled_host(/*rack=*/1, /*host=*/1,
                                      /*start=*/sim::msec(1),
                                      /*end=*/sim::msec(60));
  doctor("DMA-throttled straggler r1h1", throttled);

  // Timeline mode: the same localization, now with *when* — the flapping
  // trunk's carrier-flap finding carries onset/clear timestamps and a
  // transient classification (it cleared and recurred; a dead cable would
  // read persistent).
  core::FabricOptions flapping = clean;
  flapping.faults.flapping_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/0);
  flapping.faults.flapping_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/1);
  doctor("flapping trunks, timeline mode (1 ms scrape)", flapping,
         sim::msec(1));
  return 0;
}

// Automated fault localization on the two-rack fabric: inject one fault
// from the catalogue, run the canonical scenario matrix (incast,
// all-to-all, RPC churn), and let tools::fleet_doctor name the culprit
// from nothing but registry snapshots and the conservation ledgers. A
// clean fabric runs first — the doctor's silence there is as much a part
// of the contract as the localization.
#include <cstdio>

#include "core/fabric.hpp"
#include "tools/fleet_doctor.hpp"

namespace {

void doctor(const char* title, const xgbe::core::FabricOptions& fabric) {
  xgbe::tools::FleetDoctorOptions opt;
  opt.fabric = fabric;
  const auto report = xgbe::tools::run_fleet_doctor(opt);
  std::printf("=== %s ===\n%s\n\n", title, report.transcript().c_str());
}

}  // namespace

int main() {
  using namespace xgbe;

  core::FabricOptions clean;  // 2 racks x 3 hosts, 1 spine, 2-trunk bundles
  doctor("clean fabric", clean);

  core::FabricOptions bad_cable = clean;
  bad_cable.faults.bad_cable_trunk(/*rack=*/1, /*spine=*/0, /*trunk=*/0);
  doctor("bad cable on trunk-tor1-spine0-0", bad_cable);

  core::FabricOptions throttled = clean;
  throttled.faults.dma_throttled_host(/*rack=*/1, /*host=*/1,
                                      /*start=*/sim::msec(1),
                                      /*end=*/sim::msec(60));
  doctor("DMA-throttled straggler r1h1", throttled);
  return 0;
}

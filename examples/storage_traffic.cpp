// Storage-area-network traffic (the "network-attached storage" motivation
// of the paper's abstract): NFS/iSCSI-style request/response — small read
// requests answered with large data blocks — over tuned 10GbE, measured
// with the netperf TCP_RR machinery at asymmetric sizes.
#include <cstdio>

#include "core/testbed.hpp"
#include "tools/netperf.hpp"
#include "tools/netpipe.hpp"

namespace {

struct StorageResult {
  double iops = 0.0;
  double gbps = 0.0;
  double latency_us = 0.0;
};

StorageResult run(const xgbe::core::TuningProfile& tuning,
                  std::uint32_t block_bytes) {
  using namespace xgbe;
  core::Testbed tb;
  auto& initiator = tb.add_host("initiator", hw::presets::pe2650(), tuning);
  auto& target = tb.add_host("target", hw::presets::pe2650(), tuning);
  // Through the FastIron, as a SAN would be (Fig 2b).
  auto& sw = tb.add_switch();
  tb.connect_to_switch(initiator, sw);
  tb.connect_to_switch(target, sw);

  auto cfg = tools::netpipe_config(initiator.endpoint_config());
  auto conn = tb.open_connection(initiator, target, cfg, cfg);

  tools::NetperfRrOptions opt;
  opt.request_size = 512;  // READ command
  opt.response_size = block_bytes;
  opt.transactions = 400;
  opt.warmup_transactions = 40;
  const auto rr = tools::run_netperf_rr(tb, conn, opt);

  StorageResult out;
  if (rr.completed) {
    out.iops = rr.transactions_per_sec;
    out.gbps = rr.transactions_per_sec * block_bytes * 8.0 / 1e9;
    out.latency_us = rr.mean_latency_us;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Synchronous block reads over 10GbE through the switch\n");
  std::printf("(512-byte READ command, block-sized response)\n\n");
  std::printf("%10s %16s %14s %14s\n", "block", "config", "IOPS",
              "throughput");
  for (std::uint32_t block : {4096u, 16384u, 65536u, 131072u}) {
    const auto stock = run(xgbe::core::TuningProfile::stock(1500), block);
    const auto tuned = run(xgbe::core::TuningProfile::lan_tuned(8160), block);
    std::printf("%8u B %16s %12.0f/s %11.2f Gb/s\n", block, "stock-1500",
                stock.iops, stock.gbps);
    std::printf("%10s %16s %12.0f/s %11.2f Gb/s  (%.0f us/op)\n", "",
                "tuned-8160", tuned.iops, tuned.gbps, tuned.latency_us);
  }
  std::printf(
      "\nSmall blocks are latency-bound (tuning buys little); large blocks\n"
      "are bandwidth-bound and inherit the full §3.3 tuning gains — the\n"
      "paper's case that one commodity fabric can serve LAN, SAN, and WAN.\n");
  return 0;
}

// NetPipe-style latency exploration (Figs 6-7): end-to-end latency across
// payload sizes, topologies, and the interrupt-coalescing knob — plus the
// faster-FSB system that reached the paper's 12 us floor.
#include <cstdio>

#include "core/testbed.hpp"
#include "tools/netpipe.hpp"

namespace {

double latency_us(const xgbe::hw::SystemSpec& sys, xgbe::sim::SimTime coalesce,
                  std::uint32_t payload, bool through_switch) {
  using namespace xgbe;
  core::Testbed tb;
  auto tuning = core::TuningProfile::lan_tuned(9000);
  tuning.intr_delay = coalesce;
  auto& a = tb.add_host("a", sys, tuning);
  auto& b = tb.add_host("b", sys, tuning);
  if (through_switch) {
    auto& sw = tb.add_switch();
    tb.connect_to_switch(a, sw);
    tb.connect_to_switch(b, sw);
  } else {
    tb.connect(a, b);
  }
  auto cfg = tools::netpipe_config(a.endpoint_config());
  auto conn = tb.open_connection(a, b, cfg, cfg);
  tools::NetpipeOptions opt;
  opt.payload = payload;
  opt.iterations = 60;
  return tools::run_netpipe(tb, conn, opt).latency_us;
}

}  // namespace

int main() {
  using xgbe::sim::usec;
  const auto pe2650 = xgbe::hw::presets::pe2650();

  std::printf("PE2650 latency vs payload (us):\n");
  std::printf("%8s %14s %14s %14s\n", "payload", "b2b/coalesce", "b2b/no-coal",
              "switch/coal");
  for (std::uint32_t p : {1u, 64u, 128u, 256u, 512u, 768u, 1024u}) {
    std::printf("%8u %14.1f %14.1f %14.1f\n", p,
                latency_us(pe2650, usec(5), p, false),
                latency_us(pe2650, 0, p, false),
                latency_us(pe2650, usec(5), p, true));
  }
  std::printf("\npaper: 19 us b2b, 14 us without coalescing, 25 us through "
              "the switch;\nrising ~20%% by 1 KB payloads (Figs 6-7)\n");

  std::printf("\nFaster FSB (Intel E7505, 533 MHz): %.1f us b2b at 1 byte "
              "(paper: ~12-17 us)\n",
              latency_us(xgbe::hw::presets::intel_e7505(), usec(5), 1, false));
  std::printf("Same system without coalescing:    %.1f us\n",
              latency_us(xgbe::hw::presets::intel_e7505(), 0, 1, false));
  return 0;
}

// Wire-level protocol tracing (§3.2/§3.5.1): the paper used tcpdump to see
// the window/MSS interaction on the wire — "Using tcpdump and by monitoring
// the kernel's internal state variables with MAGNET, we trace the causes of
// this behavior to inefficient window use by both the sender and receiver."
//
// This example captures the handshake and the first data exchanges of a
// stock-configuration jumbo-frame connection, where the MSS-aligned
// advertised window is visible directly in the trace.
#include <cstdio>

#include "core/testbed.hpp"
#include "tools/nttcp.hpp"
#include "tools/tcpdump.hpp"

int main() {
  using namespace xgbe;
  core::Testbed tb;
  const auto tuning = core::TuningProfile::stock(9000);
  auto& a = tb.add_host("a", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("b", hw::presets::pe2650(), tuning);
  auto& wire = tb.connect(a, b);

  tools::CaptureOptions copt;
  copt.max_lines = 40;
  tools::Capture cap(tb.simulator(), copt);
  cap.attach(wire);

  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());
  tools::NttcpOptions opt;
  opt.payload = 8948;  // exactly one (timestamped) jumbo MSS per write
  opt.count = 12;
  const auto r = tools::run_nttcp(tb, conn, a, b, opt);
  cap.detach(wire);

  std::printf("%s", cap.text().c_str());
  std::printf("\n%llu frames on the wire, %.2f Gb/s application throughput\n",
              static_cast<unsigned long long>(cap.frames_seen()),
              r.throughput_gbps());
  std::printf(
      "\nNote the advertised windows: multiples of the receiver's MSS\n"
      "estimate (the SWS-avoidance rounding of §3.5.1), shrinking as the\n"
      "16 KB-per-frame truesize accounting eats the 87380-byte buffer.\n");
  return 0;
}

// MAGNET per-packet path profiling (§3.2, §5): where does the time go on
// the 10GbE data path? The paper closes by instrumenting the Linux TCP
// stack with MAGNET to get "an unprecedentedly high-resolution picture of
// the most expensive aspects of TCP processing overhead" — this example
// produces that picture for the simulated PE2650 path, before and after
// the §3.3 tuning, and under the §3.5.3 future offloads.
#include <cstdio>

#include "core/testbed.hpp"
#include "tools/magnet.hpp"

namespace {

void profile(const char* title, const xgbe::core::TuningProfile& tuning) {
  using namespace xgbe;
  core::Testbed tb;
  auto& a = tb.add_host("tx", hw::presets::pe2650(), tuning);
  auto& b = tb.add_host("rx", hw::presets::pe2650(), tuning);
  tb.connect(a, b);
  auto conn =
      tb.open_connection(a, b, a.endpoint_config(), b.endpoint_config());

  tools::MagnetOptions opt;
  opt.payload = 8948;
  opt.count = 2000;
  opt.sample_every = 10;
  const tools::MagnetReport m = tools::run_magnet(tb, conn, a, b, opt);
  if (!m.completed) {
    std::printf("%s: run failed\n", title);
    return;
  }

  std::printf("\n=== %s (%.2f Gb/s, %llu packets sampled) ===\n", title,
              m.throughput_gbps,
              static_cast<unsigned long long>(m.sampled_packets));
  std::printf("%-12s %10s %10s %10s\n", "stage", "mean us", "min us",
              "max us");
  for (const auto& s : m.stages) {
    std::printf("%-12s %10.2f %10.2f %10.2f\n", s.name.c_str(), s.us.mean(),
                s.us.min(), s.us.max());
  }
  std::printf("%-12s %10.2f   (hottest: %s)\n", "total", m.total_us_mean,
              m.hottest()->name.c_str());
}

}  // namespace

int main() {
  using xgbe::core::TuningProfile;
  std::printf("Per-packet path residence times include queueing — under\n"
              "load the queue in front of the bottleneck dominates,\n"
              "which is exactly how MAGNET exposed the host-software\n"
              "bottleneck in the paper.\n");
  profile("stock (SMP, MMRBC 512)", TuningProfile::stock(9000));
  profile("fully tuned (Fig 5 config)", TuningProfile::lan_tuned(9000));
  profile("future: RDDP + CSA (§5 projection)",
          TuningProfile::future_offload(9000));
  return 0;
}

// Quickstart: two Dell PE2650s back-to-back over 10GbE, fully tuned, one
// NTTCP bulk transfer — the paper's headline LAN configuration in ~30 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/testbed.hpp"
#include "tools/nttcp.hpp"

int main() {
  using namespace xgbe;

  // A testbed owns the simulation clock and the topology.
  core::Testbed tb;

  // Two identical hosts with the paper's fully tuned profile: 8160-byte
  // MTU, MMRBC 4096, uniprocessor kernel, 256 KB socket buffers.
  const auto tuning = core::TuningProfile::lan_tuned(8160);
  auto& sender = tb.add_host("sender", hw::presets::pe2650(), tuning);
  auto& receiver = tb.add_host("receiver", hw::presets::pe2650(), tuning);

  // Crossover fiber (Fig 2a) and a TCP connection across it.
  tb.connect(sender, receiver);
  auto conn = tb.open_connection(sender, receiver, sender.endpoint_config(),
                                 receiver.endpoint_config());

  // NTTCP: 2000 writes of 8000 bytes, timed application-to-application.
  tools::NttcpOptions options;
  options.payload = 8000;
  options.count = 2000;
  const tools::NttcpResult result =
      tools::run_nttcp(tb, conn, sender, receiver, options);

  std::printf("throughput : %.2f Gb/s\n", result.throughput_gbps());
  std::printf("elapsed    : %.3f ms (simulated)\n", result.elapsed_s * 1e3);
  std::printf("cpu load   : tx %.2f, rx %.2f\n", result.sender_load,
              result.receiver_load);
  std::printf("segments   : %llu (retransmits: %llu)\n",
              static_cast<unsigned long long>(result.segments_sent),
              static_cast<unsigned long long>(result.retransmits));
  return result.completed ? 0 : 1;
}
